package pageforgesim

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (run with: go test -bench=. -benchmem). One benchmark exists
// per artifact; its custom metrics are the figure's headline numbers, so a
// benchmark run is a compact reproduction report. The Ablation benchmarks
// cover the design choices Section 4 of the paper discusses. Substrate
// micro-benchmarks at the bottom measure the building blocks themselves.
//
// Benchmarks use a scaled-down suite so the full sweep completes in
// minutes; the cmd/pageforge binary runs the paper-scale versions.

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/diffengine"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/esx"
	"repro/internal/experiments"
	"repro/internal/hash"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/pageforge"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/rbtree"
	"repro/internal/sim"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// benchSuite builds the scaled suite used by the per-figure benchmarks.
func benchSuite(apps ...string) *experiments.Suite {
	s := experiments.NewFastSuite()
	s.Cfg.MeasureIntervals = 12
	if len(apps) > 0 {
		var sel []tailbench.Profile
		for _, p := range s.Apps {
			for _, n := range apps {
				if p.Name == n {
					sel = append(sel, p)
				}
			}
		}
		s.Apps = sel
	}
	return s
}

// BenchmarkFigure7 regenerates the memory-savings figure. Paper headline:
// 48% average footprint reduction; zero pages collapse to one frame.
func BenchmarkFigure7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("img_dnn", "silo", "moses")
		r, err := experiments.Figure7(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgSavings*100, "savings_%")
		b.ReportMetric(r.AvgNonZeroCompressed*100, "dup_distinct_%")
	}
}

// BenchmarkFigure8 regenerates the hash-key accuracy comparison. Paper
// headline: ECC keys add ~3.7% false-positive matches, for 75% less
// key-generation traffic.
func BenchmarkFigure8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("img_dnn")
		r, err := experiments.Figure8(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgExtraECCMatch*100, "extra_match_%")
		b.ReportMetric(r.FootprintReduction*100, "key_traffic_saved_%")
	}
}

// BenchmarkTable4 regenerates the KSM characterization. Paper headline:
// the kthread consumes 6.8% of machine cycles (33.4% of the busiest
// core), 52% of them comparing pages; L3 miss rate rises ~5 points.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("silo", "img_dnn")
		r, err := experiments.Table4(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Avg.AvgKSMCyclesPct, "ksm_cycles_%")
		b.ReportMetric(r.Avg.PageCompPct, "compare_%")
		b.ReportMetric(r.Avg.KSML3Miss-r.Avg.BaselineL3Miss, "l3_miss_delta_pts")
	}
}

// BenchmarkFigure9 and BenchmarkFigure10 regenerate the latency figures.
// Paper headline: KSM inflates mean sojourn latency 1.68x and the 95th
// percentile 2.36x; PageForge only 1.10x and 1.11x.
func BenchmarkFigure9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("silo", "moses")
		r, err := experiments.Latency(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgKSMMean, "ksm_mean_x")
		b.ReportMetric(r.AvgPageForgeMean, "pf_mean_x")
	}
}

// BenchmarkFigure10 reports the tail-latency metrics from the same runs.
func BenchmarkFigure10(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("silo", "moses")
		r, err := experiments.Latency(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgKSMP95, "ksm_p95_x")
		b.ReportMetric(r.AvgPageForgeP95, "pf_p95_x")
	}
}

// BenchmarkFigure11 regenerates the bandwidth figure. Paper headline:
// ~2 GB/s baseline grows to ~10 (KSM) and ~12 (PageForge) GB/s during the
// most memory-intensive dedup phase.
func BenchmarkFigure11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("img_dnn")
		r, err := experiments.Figure11(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.AvgBaseline, "baseline_GBps")
		b.ReportMetric(r.AvgKSM, "ksm_GBps")
		b.ReportMetric(r.AvgPageForge, "pf_GBps")
	}
}

// BenchmarkTable5 regenerates the PageForge design characteristics. Paper
// headline: ~7,486 cycles to process the Scan Table; 0.029mm² and 0.037W.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("img_dnn", "silo")
		r, err := experiments.Table5(s)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ScanTableAvgCycles, "batch_cycles")
		b.ReportMetric(r.Power.Total.AreaMM2*1000, "area_milli_mm2")
		b.ReportMetric(r.Power.Total.PowerW*1000, "power_mW")
	}
}

// benchmarkSuiteMatrix measures the wall-clock of the full fast-suite
// (mode × app) matrix at the given worker-pool width. Comparing the
// Sequential and Parallel variants gives the runner's speedup; on a
// multicore host Parallel4 should be ≥2x faster (runs are hermetic and
// CPU-bound). Results are bit-identical at any width (see the
// TestParallelMatchesSequential determinism test).
func benchmarkSuiteMatrix(b *testing.B, parallel int) {
	for i := 0; i < b.N; i++ {
		s := benchSuite("img_dnn", "silo")
		s.Parallelism = parallel
		if err := s.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSequential runs the matrix one simulation at a time.
func BenchmarkSuiteSequential(b *testing.B) { benchmarkSuiteMatrix(b, 1) }

// BenchmarkSuiteParallel4 runs the matrix through a 4-worker pool.
func BenchmarkSuiteParallel4(b *testing.B) { benchmarkSuiteMatrix(b, 4) }

// --- Ablations (Section 4's design discussion) ------------------------------

// buildAblationWorld creates a converged deployment and a fresh PageForge
// driver over it with the given config tweak.
func ablationDriver(b *testing.B, tweak func(*pageforge.DriverConfig), fetchWrap func(pageforge.LineFetcher) pageforge.LineFetcher) (*pageforge.Driver, *tailbench.Image) {
	b.Helper()
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 300
	img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 3)
	if err != nil {
		b.Fatal(err)
	}
	mc := memctrl.New(dram.New(dram.DefaultConfig()), img.HV.Phys, nil)
	var fetcher pageforge.LineFetcher = mc
	if fetchWrap != nil {
		fetcher = fetchWrap(mc)
	}
	cfg := pageforge.DefaultDriverConfig()
	if tweak != nil {
		tweak(&cfg)
	}
	drv := pageforge.NewDriver(ksm.NewAlgorithm(img.HV, ksm.NewECCHasher()), pageforge.NewEngine(fetcher), cfg)
	return drv, img
}

// BenchmarkAblationScanTableSize compares a 31-entry Scan Table against
// smaller tables: fewer entries mean more refill round-trips per search
// (more OS polls per scanned page).
func BenchmarkAblationScanTableSize(b *testing.B) {
	for _, entries := range []int{31, 15, 7, 3} {
		b.Run(sizeName(entries), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drv, _ := ablationDriver(b, func(c *pageforge.DriverConfig) { c.BatchEntries = entries }, nil)
				drv.RunToSteadyState(12)
				pages := drv.Alg.Stats.PagesScanned
				b.ReportMetric(float64(drv.Batches)/float64(pages), "batches/page")
				b.ReportMetric(float64(drv.Polls)/float64(pages), "polls/page")
			}
		})
	}
}

func sizeName(n int) string {
	return string(rune('0'+n/10)) + string(rune('0'+n%10)) + "entries"
}

// BenchmarkAblationPollInterval varies the OS checking period (Table 5:
// 12,000 cycles): longer periods cost scan throughput, shorter ones burn
// core cycles on polling.
func BenchmarkAblationPollInterval(b *testing.B) {
	for _, poll := range []uint64{6000, 12000, 24000} {
		b.Run(pollName(poll), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				drv, _ := ablationDriver(b, func(c *pageforge.DriverConfig) { c.PollInterval = poll }, nil)
				var now uint64
				scanned := 0
				for scanned < 3000 {
					_, t, ok := drv.ScanOne(now)
					if !ok {
						break
					}
					now = t
					scanned++
				}
				b.ReportMetric(float64(now)/float64(scanned), "cycles/page")
				b.ReportMetric(float64(drv.CoreCycles)/float64(now)*100, "core_busy_%")
			}
		})
	}
}

func pollName(p uint64) string {
	switch p {
	case 6000:
		return "poll6k"
	case 12000:
		return "poll12k"
	default:
		return "poll24k"
	}
}

// remoteFetcher adds an interconnect round trip to every line fetch,
// modeling a PageForge module whose request targets memory homed on the
// other controller (§4.1's placement discussion: pages spread across
// controllers, so remote fetches are the common case with per-MC modules).
type remoteFetcher struct {
	inner   pageforge.LineFetcher
	penalty uint64
}

func (r remoteFetcher) FetchLine(pfn mem.PFN, li int, now uint64, src dram.Source) memctrl.FetchResult {
	res := r.inner.FetchLine(pfn, li, now+r.penalty/2, src)
	res.Latency += r.penalty
	return res
}

// BenchmarkAblationRemoteMemory quantifies §4.1: scan throughput when the
// module's fetches cross the on-chip interconnect to the other memory
// controller versus staying local.
func BenchmarkAblationRemoteMemory(b *testing.B) {
	for _, penalty := range []uint64{0, 40, 80} {
		b.Run(penaltyName(penalty), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var wrap func(pageforge.LineFetcher) pageforge.LineFetcher
				if penalty > 0 {
					p := penalty
					wrap = func(f pageforge.LineFetcher) pageforge.LineFetcher {
						return remoteFetcher{inner: f, penalty: p}
					}
				}
				drv, _ := ablationDriver(b, nil, wrap)
				drv.RunToSteadyState(8)
				b.ReportMetric(drv.HW.BatchCycles.Mean(), "batch_cycles")
			}
		})
	}
}

func penaltyName(p uint64) string {
	switch p {
	case 0:
		return "local"
	case 40:
		return "remote40"
	default:
		return "remote80"
	}
}

// BenchmarkAblationECCOffsets measures update_ECC_offset sensitivity: how
// often keys from different sampling offsets miss a partial page write.
func BenchmarkAblationECCOffsets(b *testing.B) {
	configs := map[string]ecc.KeyOffsets{
		"line0":    {0, 0, 0, 0},
		"default":  ecc.DefaultKeyOffsets,
		"lastline": {15, 15, 15, 15},
	}
	for name, offs := range configs {
		offs := offs
		b.Run(name, func(b *testing.B) {
			rng := sim.NewRNG(9)
			page := make([]byte, ecc.PageSize)
			missed := 0
			const writes = 2000
			for i := 0; i < b.N; i++ {
				missed = 0
				for w := 0; w < writes; w++ {
					rng.FillBytes(page)
					before := ecc.PageKey(page, offs)
					// A 256B partial write biased toward the page head.
					off := rng.Intn(1024 - 256)
					if rng.Bool(0.3) {
						off = 1024 + rng.Intn(ecc.PageSize-1024-256)
					}
					part := make([]byte, 256)
					rng.FillBytes(part)
					copy(page[off:], part)
					if ecc.PageKey(page, offs) == before {
						missed++
					}
				}
			}
			b.ReportMetric(float64(missed)/writes*100, "missed_writes_%")
		})
	}
}

// BenchmarkAblationInOrderCore contrasts §4.3's alternative design: an
// A9-class in-order core running the software algorithm versus the
// PageForge module, in area and power.
func BenchmarkAblationInOrderCore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pf := power.PageForgeModule(power.Tech22HP).Total
		a9 := power.InOrderCore(power.Tech22LOP)
		b.ReportMetric(a9.PowerW/pf.PowerW, "power_ratio")
		b.ReportMetric(a9.AreaMM2/pf.AreaMM2, "area_ratio")
	}
}

// --- Substrate micro-benchmarks ---------------------------------------------

// BenchmarkECCEncodeLine measures the SECDED encoder over 64B lines.
func BenchmarkECCEncodeLine(b *testing.B) {
	line := make([]byte, ecc.LineSize)
	for i := range line {
		line[i] = byte(i)
	}
	b.SetBytes(int64(len(line)))
	for i := 0; i < b.N; i++ {
		_ = ecc.EncodeLine(line)
	}
}

// BenchmarkJHash2Page measures KSM's per-page hash (jhash2 over 1KB).
func BenchmarkJHash2Page(b *testing.B) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i * 31)
	}
	b.SetBytes(hash.KSMDigestBytes)
	for i := 0; i < b.N; i++ {
		_ = hash.PageHash(page)
	}
}

// BenchmarkECCPageKey measures PageForge's key generation path in software.
func BenchmarkECCPageKey(b *testing.B) {
	page := make([]byte, ecc.PageSize)
	for i := range page {
		page[i] = byte(i * 17)
	}
	b.SetBytes(int64(ecc.Sections * ecc.LineSize))
	for i := 0; i < b.N; i++ {
		_ = ecc.PageKey(page, ecc.DefaultKeyOffsets)
	}
}

// BenchmarkPageCompare measures the byte-wise content comparison that
// dominates KSM's cycles.
func BenchmarkPageCompare(b *testing.B) {
	phys := mem.New(16 * mem.PageSize)
	a, _ := phys.Alloc()
	c, _ := phys.Alloc()
	pa, pc := phys.Page(a), phys.Page(c)
	for i := range pa {
		pa[i] = byte(i)
		pc[i] = byte(i)
	}
	pc[mem.PageSize-1] ^= 1 // diverge at the last byte: worst case
	b.SetBytes(mem.PageSize)
	for i := 0; i < b.N; i++ {
		_, _ = phys.ComparePage(a, c)
	}
}

// BenchmarkRBTreeInsert measures content-indexed tree insertion.
func BenchmarkRBTreeInsert(b *testing.B) {
	phys := mem.New(4096 * mem.PageSize)
	rng := sim.NewRNG(5)
	var pfns []mem.PFN
	for i := 0; i < 2048; i++ {
		pfn, err := phys.Alloc()
		if err != nil {
			b.Fatal(err)
		}
		rng.FillBytes(phys.Page(pfn))
		pfns = append(pfns, pfn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := rbtree.New(func(x, y mem.PFN) (int, int) { return phys.ComparePage(x, y) })
		for _, pfn := range pfns {
			t.InsertOrGet(pfn, nil)
		}
	}
}

// BenchmarkEngineBatch measures one hardware Scan Table batch end to end
// (full-page duplicate comparison through the memory-controller model).
func BenchmarkEngineBatch(b *testing.B) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	eng := pageforge.NewEngine(mc)
	a, _ := phys.Alloc()
	c, _ := phys.Alloc()
	copy(phys.Page(a), phys.Page(c))
	now := uint64(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.InsertPPN(0, c, pageforge.InvalidIndex, pageforge.InvalidIndex)
		eng.InsertPFE(a, true, 0)
		eng.Trigger(now)
		now = eng.DoneAt() + 1
	}
}

// BenchmarkKSMScanPass measures a full software scan pass over a 10-VM
// deployment (the functional cost of the simulator itself).
func BenchmarkKSMScanPass(b *testing.B) {
	app := *tailbench.ProfileByName("silo")
	app.PagesPerVM = 300
	img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), ksm.DefaultCosts())
	pages := s.Alg.MergeablePages()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < pages; j++ {
			s.ScanOne()
		}
	}
}

// BenchmarkQueueingSim measures the open-loop latency simulator.
func BenchmarkQueueingSim(b *testing.B) {
	p := *tailbench.ProfileByName("silo")
	sched := &tailbench.BurstSchedule{
		IntervalCycles: 10_000_000, MeanCycles: 6e6, StdCycles: 1e6,
		ZipfS: 1.2, Cores: 10, Share: 0.5,
	}
	for i := 0; i < b.N; i++ {
		_ = tailbench.SimulateQueueing(p, 10, 1.05, sched, sim.CyclesPerSecond, uint64(i))
	}
}

// BenchmarkPlatformRun measures one full (mode, app) simulation.
func BenchmarkPlatformRun(b *testing.B) {
	cfg := platform.DefaultConfig()
	cfg.ConvergePasses = 8
	cfg.MeasureIntervals = 8
	cfg.PagesToScan = 200
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 300
	for i := 0; i < b.N; i++ {
		if _, err := platform.Run(platform.KSM, app, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlgorithmESXvsKSM contrasts the two merging algorithms the
// hardware supports (§4.2): KSM's content-indexed trees versus ESX-style
// hash-indexed hints, on identical deployments. The metrics show the
// trade: ESX does ~50x fewer comparisons but hashes whole pages.
func BenchmarkAlgorithmESXvsKSM(b *testing.B) {
	app := *tailbench.ProfileByName("masstree")
	app.PagesPerVM = 400
	b.Run("ksm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 21)
			if err != nil {
				b.Fatal(err)
			}
			s := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), ksm.DefaultCosts())
			s.RunToSteadyState(12)
			f := img.MeasureFootprint()
			b.ReportMetric(f.Savings()*100, "savings_%")
			cmps := s.Alg.Stable.Comparisons() + s.Alg.Unstable.Comparisons()
			b.ReportMetric(float64(cmps)/float64(f.TotalGuestPages), "compares/page")
		}
	})
	b.Run("esx", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 21)
			if err != nil {
				b.Fatal(err)
			}
			t := esx.New(img.HV, esx.SoftwareComparer{Phys: img.HV.Phys})
			t.RunToSteadyState(10)
			f := img.MeasureFootprint()
			b.ReportMetric(f.Savings()*100, "savings_%")
			b.ReportMetric(float64(t.Stats.Comparisons)/float64(f.TotalGuestPages), "compares/page")
		}
	})
}

// BenchmarkAblationKSMOptions measures the post-paper Linux KSM features:
// use_zero_pages removes zero pages from the trees and smart scan skips
// stable candidates, both cutting steady-state kthread cycles.
func BenchmarkAblationKSMOptions(b *testing.B) {
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 300
	run := func(b *testing.B, opts ksm.Options) {
		for i := 0; i < b.N; i++ {
			img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 5)
			if err != nil {
				b.Fatal(err)
			}
			s := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), ksm.DefaultCosts())
			s.Alg.SetOptions(opts)
			s.RunToSteadyState(10)
			// Steady-state cost: cycles per page over four more passes.
			before := s.Cycles.Total()
			pages := s.Alg.MergeablePages()
			for p := 0; p < 4; p++ {
				for j := 0; j < pages; j++ {
					s.ScanOne()
				}
				img.ChurnVolatile()
			}
			b.ReportMetric(float64(s.Cycles.Total()-before)/float64(4*pages), "cycles/page")
			b.ReportMetric(img.MeasureFootprint().Savings()*100, "savings_%")
		}
	}
	b.Run("plain", func(b *testing.B) { run(b, ksm.Options{}) })
	b.Run("zeropages", func(b *testing.B) { run(b, ksm.Options{UseZeroPages: true}) })
	b.Run("smartscan", func(b *testing.B) { run(b, ksm.Options{SmartScan: true}) })
	b.Run("both", func(b *testing.B) { run(b, ksm.Options{UseZeroPages: true, SmartScan: true}) })
}

// BenchmarkAblationTwoModules quantifies §4.1's argument against one
// PageForge module per memory controller: two modules scanning disjoint
// halves of the VMs double the scan rate, but cross-partition duplicates
// stay unmerged (the coordination problem), costing memory savings.
func BenchmarkAblationTwoModules(b *testing.B) {
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 300

	b.Run("one-module", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 17)
			if err != nil {
				b.Fatal(err)
			}
			mc := memctrl.New(dram.New(dram.DefaultConfig()), img.HV.Phys, nil)
			drv := pageforge.NewDriver(ksm.NewAlgorithm(img.HV, ksm.NewECCHasher()),
				pageforge.NewEngine(mc), pageforge.DefaultDriverConfig())
			drv.RunToSteadyState(10)
			b.ReportMetric(img.MeasureFootprint().Savings()*100, "savings_%")
		}
	})
	b.Run("two-modules-partitioned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 17)
			if err != nil {
				b.Fatal(err)
			}
			// Each module scans half the VMs: restrict each algorithm's
			// madvise view by un-advising the other half, scan, re-advise.
			dramModel := dram.New(dram.DefaultConfig())
			half := img.HV.NumVMs() / 2
			run := func(lo, hi int) {
				for v := 0; v < img.HV.NumVMs(); v++ {
					img.HV.VM(v).Madvise(0, app.PagesPerVM, v >= lo && v < hi)
				}
				mc := memctrl.New(dramModel, img.HV.Phys, nil)
				drv := pageforge.NewDriver(ksm.NewAlgorithm(img.HV, ksm.NewECCHasher()),
					pageforge.NewEngine(mc), pageforge.DefaultDriverConfig())
				drv.RunToSteadyState(10)
			}
			run(0, half)
			run(half, img.HV.NumVMs())
			for v := 0; v < img.HV.NumVMs(); v++ {
				img.HV.VM(v).Madvise(0, app.PagesPerVM, true)
			}
			b.ReportMetric(img.MeasureFootprint().Savings()*100, "savings_%")
		}
	})
}

// BenchmarkDifferenceEngine compares plain same-page merging (KSM) against
// Difference Engine-style sub-page sharing + compression (§7.2 of the
// paper: "over 65% memory footprint reductions") on a deployment where a
// third of the unique pages are per-VM *variants* of common contents —
// sharable only at sub-page granularity.
func BenchmarkDifferenceEngine(b *testing.B) {
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 300
	mkImage := func() *tailbench.Image {
		img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 13)
		if err != nil {
			b.Fatal(err)
		}
		if err := img.AddSimilarity(0.5); err != nil {
			b.Fatal(err)
		}
		return img
	}
	b.Run("ksm-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			img := mkImage()
			s := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), ksm.DefaultCosts())
			s.RunToSteadyState(12)
			b.ReportMetric(img.MeasureFootprint().Savings()*100, "savings_%")
		}
	})
	b.Run("difference-engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			img := mkImage()
			m := diffengine.New(img.HV, diffengine.DefaultConfig())
			// Identical sharing + similarity patching + compressing the
			// non-volatile remainder (cold pages).
			volatileSet := map[vm.PageID]bool{}
			for _, id := range img.Volatile {
				volatileSet[id] = true
			}
			m.Sweep(func(id vm.PageID) bool { return !volatileSet[id] })
			s := m.MeasureSavings()
			b.ReportMetric(s.Fraction*100, "savings_%")
			b.ReportMetric(float64(m.Stats.PatchedPages), "patched")
			b.ReportMetric(float64(m.Stats.CompressedPages), "compressed")
		}
	})
}

// BenchmarkSatoriExtension measures short-lived-sharing capture (§7.2's
// Satori discussion): at aggressive scan rates, KSM's core cost explodes
// while PageForge's stays marginal.
func BenchmarkSatoriExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewFastSuite()
		r, err := experiments.Satori(s)
		if err != nil {
			b.Fatal(err)
		}
		var ksmHi, pfHi experiments.SatoriRow
		for _, row := range r.Rows {
			if row.PagesToScan == 6400 {
				if row.Engine == "ksm" {
					ksmHi = row
				} else {
					pfHi = row
				}
			}
		}
		b.ReportMetric(ksmHi.CoreBusyPct, "ksm_core_%")
		b.ReportMetric(pfHi.CoreBusyPct, "pf_core_%")
		b.ReportMetric(pfHi.CapturedPct, "pf_captured_%")
	}
}

// BenchmarkAblationHugePages quantifies §7.3: duplicate pages under 2MB
// mappings are invisible to merging; proactively breaking the mappings
// (Guo et al., VEE 2015) recovers the savings.
func BenchmarkAblationHugePages(b *testing.B) {
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 300
	run := func(b *testing.B, hugeFrac float64, breakThem bool) {
		for i := 0; i < b.N; i++ {
			img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 23)
			if err != nil {
				b.Fatal(err)
			}
			hugePages := int(hugeFrac * float64(app.PagesPerVM))
			for _, v := range img.VMs {
				if hugePages > 0 {
					if err := v.MapHuge(0, hugePages); err != nil {
						b.Fatal(err)
					}
				}
			}
			if breakThem {
				for _, v := range img.VMs {
					v.BreakAllHuge()
				}
			}
			s := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), ksm.DefaultCosts())
			s.RunToSteadyState(12)
			b.ReportMetric(img.MeasureFootprint().Savings()*100, "savings_%")
		}
	}
	b.Run("base-pages", func(b *testing.B) { run(b, 0, false) })
	b.Run("half-huge", func(b *testing.B) { run(b, 0.5, false) })
	b.Run("half-huge-broken", func(b *testing.B) { run(b, 0.5, true) })
}

// BenchmarkLLCDedup exercises §7.1's cache-line deduplication (Tian et
// al.) with line traffic drawn from a consolidated-VM image: identical
// lines across VM pages let the dedup LLC back more tags with fewer data
// blocks, cutting its miss rate — orthogonal to PageForge's page merging.
func BenchmarkLLCDedup(b *testing.B) {
	app := *tailbench.ProfileByName("img_dnn")
	app.PagesPerVM = 200
	img, err := tailbench.BuildImage(app, 10, 10*app.PagesPerVM*2, 7)
	if err != nil {
		b.Fatal(err)
	}
	// Collect the deployment's resident lines.
	type rec struct {
		addr    uint64
		content []byte
	}
	var lines []rec
	for _, v := range img.VMs {
		for g := 0; g < v.Pages(); g++ {
			if pfn, ok := v.Resolve(vm.GFN(g)); ok {
				// One representative line per page, past the zero prefix.
				lines = append(lines, rec{uint64(pfn.LineAddr(32)), img.HV.Phys.ReadLine(pfn, 32)})
			}
		}
	}
	run := func(b *testing.B, tags, blocks int) {
		for i := 0; i < b.N; i++ {
			c := cache.NewDedupCache(tags, blocks)
			for pass := 0; pass < 2; pass++ {
				for _, r := range lines {
					c.Access(r.addr, r.content)
				}
			}
			b.ReportMetric(c.MissRate()*100, "miss_%")
			b.ReportMetric(c.EffectiveCapacityFactor(), "capacity_x")
		}
	}
	b.Run("conventional", func(b *testing.B) { run(b, 1024, 1024) })
	b.Run("dedup-2x-tags", func(b *testing.B) { run(b, 2048, 1024) })
}

// BenchmarkComparePage contrasts the word-at-a-time early-exit comparison
// against the byte-wise reference on the two interesting shapes: identical
// pages (full 4KB examined) and pages diverging midway.
func BenchmarkComparePage(b *testing.B) {
	p := mem.New(4 * mem.PageSize)
	eqA, _ := p.Alloc()
	eqB, _ := p.Alloc()
	mid, _ := p.Alloc()
	r := sim.NewRNG(2)
	r.FillBytes(p.Page(eqA))
	p.CopyPage(eqB, eqA)
	p.CopyPage(mid, eqA)
	p.Page(mid)[mem.PageSize/2] ^= 1
	for _, bc := range []struct {
		name string
		mode mem.CompareMode
	}{{"word", mem.CompareWord}, {"byte", mem.CompareByte}} {
		p.SetCompareMode(bc.mode)
		b.Run(bc.name+"/equal", func(b *testing.B) {
			b.SetBytes(mem.PageSize)
			for i := 0; i < b.N; i++ {
				p.ComparePage(eqA, eqB)
			}
		})
		b.Run(bc.name+"/mid-diverge", func(b *testing.B) {
			b.SetBytes(mem.PageSize / 2)
			for i := 0; i < b.N; i++ {
				p.ComparePage(eqA, mid)
			}
		})
	}
	p.SetCompareMode(mem.CompareWord)
}

// BenchmarkPageHash contrasts the allocation-free byte-slice hash against
// the legacy allocating words-conversion path (same keys, different cost).
func BenchmarkPageHash(b *testing.B) {
	page := make([]byte, mem.PageSize)
	sim.NewRNG(3).FillBytes(page)
	b.Run("bytes", func(b *testing.B) {
		b.SetBytes(hash.KSMDigestBytes)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			hash.PageHash(page)
		}
	})
	b.Run("alloc-words", func(b *testing.B) {
		b.SetBytes(hash.KSMDigestBytes)
		b.ReportAllocs()
		h := experiments.AllocHasher{}
		for i := 0; i < b.N; i++ {
			h.PageKey(page)
		}
	})
}

// BenchmarkScanPass measures whole-pass scan throughput: the legacy
// implementation (byte compare, allocating hash, sequential single shard)
// against the optimized one (word compare, allocation-free hash, sharded
// pass) on identical dup-heavy deployments. `pageforge bench` records the
// same measurement into BENCH_suite.json and `pageforge perfcheck` gates
// on its speedup ratio.
func BenchmarkScanPass(b *testing.B) {
	cfg := experiments.DefaultScanPassConfig()
	cfg.Repeats = 1
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunScanPassBench(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.LegacyPagesPerSec, "legacy_pages/s")
		b.ReportMetric(res.OptimizedPagesPerSec, "opt_pages/s")
		b.ReportMetric(res.Speedup, "speedup_x")
	}
}
