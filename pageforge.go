// Package pageforgesim is a complete, simulation-based reproduction of
// "PageForge: A Near-Memory Content-Aware Page-Merging Architecture"
// (Skarlatos, Kim, Torrellas — MICRO-50, 2017).
//
// It provides, built from scratch on the Go standard library:
//
//   - The PageForge hardware model: the Scan Table (PFE + 31 Other Pages
//     entries), the pairwise page-comparison state machine in the memory
//     controller, background ECC-based hash-key generation, and the
//     five-function OS interface of the paper's Table 1.
//   - Every substrate the paper's evaluation depends on: a SECDED (72,64)
//     ECC engine, the Linux jhash2 function, a hypervisor with
//     guest-to-host page mappings and copy-on-write, RedHat's KSM
//     algorithm (stable/unstable content-indexed red-black trees), a MESI
//     cache hierarchy, a DDR bank/row DRAM model with demand-priority
//     scheduling, TailBench-like latency-critical workloads, and an
//     analytical area/power model.
//   - Experiment runners that regenerate every table and figure of the
//     paper's evaluation (Figures 7-11, Tables 4-5).
//
// The type aliases below re-export the internal packages' APIs so that the
// whole system is reachable through this single import:
//
//	import pageforgesim "repro"
//
//	suite := pageforgesim.NewSuite()
//	fig7, err := pageforgesim.Figure7(suite)
//	fmt.Println(fig7)
//
// See DESIGN.md for the system inventory and the paper-to-module map, and
// EXPERIMENTS.md for measured-vs-paper results.
package pageforgesim

import (
	"io"

	"repro/internal/check"
	"repro/internal/diffengine"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/esx"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/migrate"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/placement"
	"repro/internal/platform"
	"repro/internal/power"
	"repro/internal/tailbench"
	"repro/internal/vm"
	"repro/internal/workload"
)

// --- Simulated machine and configurations ---------------------------------

// Mode selects one of the paper's three configurations.
type Mode = platform.Mode

// The three evaluated configurations (§5.3 of the paper).
const (
	Baseline  = platform.Baseline  // no page merging
	KSM       = platform.KSM       // RedHat's software algorithm
	PageForge = platform.PageForge // the hardware architecture
)

// Config assembles the Table 2 machine and engine parameters.
type Config = platform.Config

// Result carries every measured statistic of one (mode, application) run.
type Result = platform.Result

// DefaultConfig is the paper's setup: 10 cores at 2GHz, 32KB/256KB/32MB
// caches, 2-channel DDR, sleep_millisecs=5, pages_to_scan=400.
func DefaultConfig() Config { return platform.DefaultConfig() }

// Run simulates one configuration running one application deployment
// (10 VMs, one per core) through convergence and steady-state measurement.
func Run(mode Mode, app Profile, cfg Config) (*Result, error) {
	return platform.Run(mode, app, cfg)
}

// Runtime is the tick-driven streaming form of Run: Start, then Step one
// convergence pass or measurement interval at a time, Injecting live events
// (VM spawns and kills, phase flips, host crashes) between ticks. Drain is
// batch completion; Run itself is a thin driver over this loop, so a
// streamed run with the same event schedule is bit-identical to batch.
type Runtime = platform.Runtime

// NewRuntime builds a streaming runtime over one (mode, application) world.
func NewRuntime(mode Mode, app Profile, cfg Config) *Runtime {
	return platform.NewRuntime(mode, app, cfg)
}

// Event is one live perturbation, scheduled via Config.Events or delivered
// mid-run with Runtime.Inject.
type Event = platform.Event

// EventKind discriminates live events.
type EventKind = platform.EventKind

// The live-event kinds.
const (
	EvVMSpawn      = platform.EvVMSpawn      // spawn one VM mid-run
	EvVMKill       = platform.EvVMKill       // tear down VM (field VM)
	EvPhaseChange  = platform.EvPhaseChange  // rewrite a fraction of pages (field Frac)
	EvBalloonStorm = platform.EvBalloonStorm // balloon burst window (Pages, Passes)
	EvFaultStorm   = platform.EvFaultStorm   // fault-rate boost window (Boost, Passes)
	EvCrash        = platform.EvCrash        // host crash at this pass boundary
)

// Latency runs the sojourn-latency phase (Figures 9 and 10) for a measured
// system against its Baseline reference.
func Latency(app Profile, base, system *Result, cfg Config, minQueries int, seed uint64) LatencyResult {
	return platform.Latency(app, base, system, cfg, minQueries, seed)
}

// --- Workloads -------------------------------------------------------------

// Profile describes one TailBench application (Table 3).
type Profile = tailbench.Profile

// LatencyResult aggregates per-VM sojourn latencies.
type LatencyResult = tailbench.LatencyResult

// Image is a generated 10-VM deployment with its page-duplication profile.
type Image = tailbench.Image

// Footprint classifies a deployment's pages in Figure 7's taxonomy.
type Footprint = tailbench.Footprint

// Profiles returns the five TailBench applications with Table 3's loads.
func Profiles() []Profile { return tailbench.Profiles() }

// ProfileByName finds an application profile ("img_dnn", "masstree",
// "moses", "silo", "sphinx"), or nil.
func ProfileByName(name string) *Profile { return tailbench.ProfileByName(name) }

// BuildImage deploys numVMs copies of the application with its measured
// cross-VM page-duplication profile.
func BuildImage(p Profile, numVMs, physFrames int, seed uint64) (*Image, error) {
	return tailbench.BuildImage(p, numVMs, physFrames, seed)
}

// --- Virtualization and deduplication substrates ---------------------------

// Hypervisor owns physical memory and VMs and implements the page-merging
// primitives (remapping, CoW, write protection).
type Hypervisor = vm.Hypervisor

// VM is one virtual machine with its guest-to-host page table.
type VM = vm.VM

// PageID names one guest page (VM index + guest frame number).
type PageID = vm.PageID

// GFN is a guest frame number.
type GFN = vm.GFN

// PFN is a host physical frame number.
type PFN = mem.PFN

// NewHypervisor creates a hypervisor with the given physical memory size.
func NewHypervisor(physBytes uint64) *Hypervisor { return vm.NewHypervisor(physBytes) }

// Scanner is the software KSM engine (Algorithm 1 of the paper).
type Scanner = ksm.Scanner

// Algorithm is the engine-independent KSM state shared by the software
// scanner and the PageForge driver.
type Algorithm = ksm.Algorithm

// KSMOptions are the optional Linux KSM behaviours (use_zero_pages, smart
// scan) supported by both the software scanner and the PageForge driver.
type KSMOptions = ksm.Options

// NewKSMScanner builds a software KSM scanner over a hypervisor, hashing
// pages with jhash2 like the Linux implementation.
func NewKSMScanner(hv *Hypervisor) *Scanner {
	return ksm.NewScanner(ksm.NewAlgorithm(hv, ksm.JHasher{}), ksm.DefaultCosts())
}

// --- The ESX-style algorithm (§4.2 generality) ------------------------------

// ESXTable is the hash-indexed same-page merging algorithm in the style of
// VMware's ESX Server, runnable in software or on the PageForge hardware
// in list mode.
type ESXTable = esx.Table

// NewESXSoftware builds the ESX-style algorithm with software comparisons.
func NewESXSoftware(hv *Hypervisor) *ESXTable {
	return esx.New(hv, esx.SoftwareComparer{Phys: hv.Phys})
}

// NewESXOnPageForge builds the ESX-style algorithm with its exhaustive
// comparisons executed by the PageForge engine in list mode (every Scan
// Table entry's Less and More point at the next entry).
func NewESXOnPageForge(hv *Hypervisor, engine *Engine) *ESXTable {
	return esx.New(hv, esx.NewHardwareComparer(engine))
}

// --- Beyond-the-paper extensions (its §7.2 related-work systems) ------------

// DiffEngine is Difference Engine-style sub-page sharing: identical pages
// merge, similar pages become patches against references, cold pages are
// compressed.
type DiffEngine = diffengine.Manager

// NewDiffEngine builds the sub-page sharing engine over a hypervisor.
func NewDiffEngine(hv *Hypervisor) *DiffEngine {
	return diffengine.New(hv, diffengine.DefaultConfig())
}

// MigrationPlan analyzes a gang of VMs for dedup-aware migration: distinct
// pages cross the wire once, preserving the sharing structure.
type MigrationPlan = migrate.Plan

// PlanGangMigration analyzes the VMs (by ID) for migration.
func PlanGangMigration(hv *Hypervisor, vmIDs []int) *MigrationPlan {
	return migrate.PlanGang(hv, vmIDs)
}

// ReceiveMigration rebuilds a migrated gang on the destination hypervisor.
func ReceiveMigration(r io.Reader, dest *Hypervisor) ([]*VM, error) {
	return migrate.Receive(r, dest)
}

// Fingerprint is a Bloom-filter summary of a VM's page contents for
// sharing-aware placement (Memory Buddies-style).
type Fingerprint = placement.Fingerprint

// FingerprintVM summarizes a VM's resident pages in m filter bits with k
// hash functions.
func FingerprintVM(hv *Hypervisor, vmID int, m uint64, k int) *Fingerprint {
	return placement.FingerprintVM(hv, vmID, m, k)
}

// EstimateSharedDistinct estimates two VMs' common distinct page contents
// from their fingerprints alone.
func EstimateSharedDistinct(a, b *Fingerprint) float64 {
	return placement.EstimateSharedDistinct(a, b)
}

// Colocate greedily packs VMs onto hosts (perHost each), maximizing the
// estimated intra-host sharing.
func Colocate(fps []*Fingerprint, perHost int) placement.Assignment {
	return placement.Colocate(fps, perHost)
}

// --- The PageForge hardware -------------------------------------------------

// Engine is the PageForge hardware module (Scan Table + comparison FSM +
// ECC key generation) hosted in a memory controller.
type Engine = pageforge.Engine

// Driver is the OS side of PageForge: the KSM algorithm driven through the
// hardware's five-function interface.
type Driver = pageforge.Driver

// ScanTable is the hardware table (PFE + 31 Other Pages entries).
type ScanTable = pageforge.ScanTable

// KeyOffsets selects the per-1KB-section lines sampled into the ECC-based
// page hash key (update_ECC_offset).
type KeyOffsets = ecc.KeyOffsets

// PFEInfo is what the get_PFE_info call returns to the OS: the hash key,
// the traversal pointer, and the Scanned/Duplicate/HashReady bits.
type PFEInfo = pageforge.PFEInfo

// InvalidIndex marks a Less/More Scan Table pointer with no target.
const InvalidIndex = pageforge.InvalidIndex

// NumOtherPages is the Scan Table's comparison-entry count (31).
const NumOtherPages = pageforge.NumOtherPages

// NewEngine builds a PageForge hardware module over the hypervisor's
// physical memory, behind a default memory controller and DDR model. Use
// the Table 1 methods (InsertPPN, InsertPFE, UpdatePFE, GetPFEInfo,
// UpdateECCOffset) plus Trigger to drive it directly.
func NewEngine(hv *Hypervisor) *Engine {
	mc := memctrl.New(dram.New(dram.DefaultConfig()), hv.Phys, nil)
	return pageforge.NewEngine(mc)
}

// NewPageForgeDriver builds the OS-side driver running the KSM algorithm
// on the given engine, with hash keys generated by the hardware.
func NewPageForgeDriver(hv *Hypervisor, engine *Engine) *Driver {
	return pageforge.NewDriver(ksm.NewAlgorithm(hv, ksm.NewECCHasher()), engine, pageforge.DefaultDriverConfig())
}

// ECCPageKey computes the 32-bit ECC-based hash key of a 4KB page, the
// reference for what the hardware assembles from snatched ECC codes.
func ECCPageKey(page []byte, offsets KeyOffsets) uint32 { return ecc.PageKey(page, offsets) }

// DefaultKeyOffsets is the profiled sampling configuration.
var DefaultKeyOffsets = ecc.DefaultKeyOffsets

// --- RAS: faults, patrol scrub, degradation ------------------------------

// FaultConfig describes a deterministic injected DRAM fault population:
// transient single/double-bit upsets, stuck-at cells and words, latent
// retention errors, and row-correlated burst windows. The zero value
// injects nothing. Set it on Config.Faults to run a platform configuration
// on faulty silicon.
type FaultConfig = faults.Config

// FaultModel is the seeded fault generator a memory controller consults on
// every ECC-decoded line read (memctrl.Controller.Faults).
type FaultModel = faults.Model

// NewFaultModel builds a fault model; identical configs replay identical
// fault schedules.
func NewFaultModel(cfg FaultConfig) *FaultModel { return faults.NewModel(cfg) }

// DegradeTrip is the UE-rate hysteresis policy that demotes PageForge to
// software KSM when the uncorrectable-error rate on the fetch path climbs.
type DegradeTrip = faults.Trip

// DefaultDegradeTrip trips above ~1% UEs per decode and re-arms below 0.1%.
func DefaultDegradeTrip() DegradeTrip { return faults.DefaultTrip() }

// Scrubber is the controller's patrol-scrub engine: background-priority
// line walks that rewrite correctable errors and log uncorrectable ones.
type Scrubber = memctrl.Scrubber

// --- Experiments -------------------------------------------------------------

// Suite shares simulation runs across the paper's experiments. Its Result
// cache is concurrency-safe (singleflight), its RunAll method fans the
// (mode × app) matrix across a worker pool bounded by Suite.Parallelism,
// and parallel execution is bit-identical to sequential for the same
// seeds.
type Suite = experiments.Suite

// SuiteReporter observes experiment-suite run lifecycle events; attach one
// via Suite.Reporter. Implementations must be safe for concurrent use.
type SuiteReporter = experiments.Reporter

// SuiteProgressReporter streams per-run progress lines and collects a
// wall-clock duration summary across a (possibly parallel) suite run.
type SuiteProgressReporter = experiments.ProgressReporter

// NewSuite builds the full-scale experiment suite (all five applications,
// paper-sized parameters).
func NewSuite() *Suite { return experiments.NewSuite() }

// NewFastSuite is a scaled-down suite for quick demos and CI.
func NewFastSuite() *Suite { return experiments.NewFastSuite() }

// NewSuiteProgressReporter builds a progress reporter writing per-run
// lines to w; its Summary method renders the duration table afterwards.
func NewSuiteProgressReporter(w io.Writer) *SuiteProgressReporter {
	return experiments.NewProgressReporter(w)
}

// AllModes is the paper's full configuration matrix, in run order.
func AllModes() []Mode { return experiments.AllModes() }

// Figure7 measures memory allocation with and without page merging.
func Figure7(s *Suite) (*experiments.Fig7Result, error) { return experiments.Figure7(s) }

// Figure8 compares jhash-based and ECC-based hash-key accuracy.
func Figure8(s *Suite) (*experiments.Fig8Result, error) { return experiments.Figure8(s) }

// Table4 characterizes the software KSM configuration.
func Table4(s *Suite) (*experiments.Table4Result, error) { return experiments.Table4(s) }

// LatencyExperiment produces Figures 9 (mean sojourn latency) and 10 (tail
// latency) for all three configurations.
func LatencyExperiment(s *Suite) (*experiments.LatencyResult, error) { return experiments.Latency(s) }

// Figure11 reports memory bandwidth during the most memory-intensive
// deduplication phase.
func Figure11(s *Suite) (*experiments.Fig11Result, error) { return experiments.Figure11(s) }

// DemandLatency reports the demand-access latency distribution (mean, p50,
// p95, p99, max cycles) for every (application, mode) pair, from the
// measurement phase's latency histogram.
func DemandLatency(s *Suite) (*experiments.DemandLatResult, error) {
	return experiments.DemandLatency(s)
}

// NewDoc starts a machine-readable (-json) experiment document for the
// suite; Add experiment results to it and Encode it to a writer.
func NewDoc(s *Suite) *experiments.Doc { return experiments.NewDoc(s) }

// NewMetricsDoc collects every completed run's full metrics snapshot
// (counters, gauges, latency histograms) into one encodable document.
func NewMetricsDoc(s *Suite) *experiments.MetricsDoc { return experiments.NewMetricsDoc(s) }

// Table5 reports PageForge's operation timing and hardware cost.
func Table5(s *Suite) (*experiments.Table5Result, error) { return experiments.Table5(s) }

// Satori runs the extension experiment on short-lived sharing capture
// versus scanning aggressiveness (the paper's §7.2 discussion of Satori).
func Satori(s *Suite) (*experiments.SatoriResult, error) { return experiments.Satori(s) }

// RASExperiment sweeps DRAM fault rate against merge coverage, bounded
// re-read and patrol-scrub overhead, and the PageForge→KSM degradation
// trip point. A nil or empty rates slice uses DefaultRASRates.
func RASExperiment(s *Suite, rates []float64) (*experiments.RASResult, error) {
	return experiments.RAS(s, rates)
}

// DefaultRASRates spans clean silicon to an always-faulting DIMM.
func DefaultRASRates() []float64 { return experiments.DefaultRASRates() }

// PressureExperiment sweeps the overcommit ratio through an allocation-burst
// storm against the memory-pressure resilience layer: graceful-OOM stalls,
// balloon reclaim, scan backpressure, and the degradation ladder, with the
// invariant checker attached throughout. A nil or empty ratios slice uses
// DefaultPressureRatios.
func PressureExperiment(s *Suite, ratios []float64) (*experiments.PressureResult, error) {
	return experiments.Pressure(s, ratios)
}

// DefaultPressureRatios spans comfortable capacity to a 2x overcommit.
func DefaultPressureRatios() []float64 { return experiments.DefaultPressureRatios() }

// CrashExperiment sweeps host-crash point x checkpoint interval through the
// crash-tolerance layer: deterministic checkpoints, a drawn host crash,
// hint-then-verify recovery of the dedup index, and replay of the lost
// passes — asserting the recovered run is bit-identical to an uninterrupted
// same-seed run at every grid point. Nil or empty slices use the default
// sweeps.
func CrashExperiment(s *Suite, crashPasses, intervals []int) (*experiments.CrashResult, error) {
	return experiments.Crash(s, crashPasses, intervals)
}

// DefaultCrashPasses spans the guaranteed-to-fire convergence window.
func DefaultCrashPasses() []int { return experiments.DefaultCrashPasses() }

// DefaultCheckpointIntervals spans boot-only through every-pass cadence.
func DefaultCheckpointIntervals() []int { return experiments.DefaultCheckpointIntervals() }

// StreamExperiment runs the batch ≡ streaming equivalence sweep: every
// world shape (both engines, the sharded index, a crash-with-recovery
// world) runs once through batch Run with a config-scheduled live-event
// stream and once through a manually stepped Runtime with the same events
// Injected live — asserting Result, per-pass series points, and
// provenance-ledger event streams are all deeply equal.
func StreamExperiment(s *Suite) (*experiments.StreamResult, error) {
	return experiments.Stream(s)
}

// RunStreamBench times the tick-driven streaming runtime against batch Run
// on an identical world — the overhead and bit-identity gate `pageforge
// perfcheck` enforces.
func RunStreamBench(seed uint64) (experiments.StreamBenchResult, error) {
	return experiments.RunStreamBench(seed)
}

// EfficiencyExperiment runs the scan-efficiency attribution sweep: every
// (engine, app) point runs with the provenance ledger and per-pass series
// attached, reporting where the scan budget went (productive merges vs
// churn, checksum instability, fault retries, backpressure sheds) and how
// fast savings converged — then re-runs bare and proves the instrumented
// Result bit-identical.
func EfficiencyExperiment(s *Suite) (*experiments.EfficiencyResult, error) {
	return experiments.Efficiency(s)
}

// RunLedgerOverheadBench times identical sharded scan passes with and
// without a provenance ledger attached — the fresh, baseline-free overhead
// gate `pageforge perfcheck` enforces.
func RunLedgerOverheadBench() (experiments.LedgerOverheadResult, error) {
	return experiments.RunLedgerOverheadBench(experiments.DefaultScanPassConfig())
}

// Timeline measures the savings convergence ramp of both engines on one
// application under identical tunables.
func Timeline(s *Suite, app Profile, intervals int) (*experiments.TimelineResult, error) {
	return experiments.Timeline(s, app, intervals)
}

// --- Model-based verification -----------------------------------------------

// Scenario is one randomized verification case: a compact seed + deployment
// shape + engine tunables + fault rate that maps to one bit-reproducible
// platform run (see internal/workload).
type Scenario = workload.Scenario

// VerifyReport summarizes one verified scenario: the checker's audit
// counters for both engines and the differential-equivalence outcome.
type VerifyReport = check.Report

// GenerateScenario draws a random verification scenario from the seed.
func GenerateScenario(seed uint64) Scenario { return workload.Generate(seed) }

// RunScenario runs one scenario through both dedup engines with the
// reference-model invariant checker attached at every scan interval, plus
// the KSM ≡ PageForge merge-set equivalence on fault-free converged runs.
func RunScenario(sc Scenario) (*VerifyReport, error) { return check.RunScenario(sc) }

// ShrinkScenario greedily minimizes a failing scenario; fails must be a
// deterministic predicate (true = still fails). It returns the smallest
// failing scenario found and the number of probe runs spent.
func ShrinkScenario(sc Scenario, fails func(Scenario) bool, maxProbes int) (Scenario, int) {
	return workload.Shrink(sc, fails, maxProbes)
}

// VerifyExperiment runs n randomized scenarios (n <= 0 uses the default of
// 200) with full invariant checking; on failure the offending scenario is
// shrunk and the error carries a ready-to-paste regression test.
func VerifyExperiment(s *Suite, n int) (*experiments.VerifyResult, error) {
	return experiments.Verify(s, n)
}

// --- Observability ----------------------------------------------------------

// Tracer is the bounded ring buffer of simulation events behind
// Config.Trace; WriteJSON serializes it to Chrome trace_event JSON
// (loadable in Perfetto or chrome://tracing). A nil Tracer is off.
type Tracer = obs.Tracer

// MetricsSnapshot is one run's full metric registry state (counters,
// gauges, latency histograms), carried on Result.Metrics.
type MetricsSnapshot = obs.Snapshot

// DefaultTraceCapacity is a ring size comfortably holding a full-scale
// suite run's events.
const DefaultTraceCapacity = obs.DefaultTraceCapacity

// NewTracer builds a tracer with the given event capacity (the ring keeps
// the newest events and counts drops). One tracer may serve many parallel
// runs; each run appears as its own trace process.
func NewTracer(capacity int) *Tracer { return obs.NewTracer(capacity) }

// Series is the per-pass time-series collector behind Config.Series: at
// every convergence-pass and measurement-interval boundary the platform
// samples the run's full metric registry into a bounded ring of per-window
// counter deltas and gauge values. One Series may serve many parallel runs
// (one track each); WriteJSON emits the -series artifact. A nil Series is
// off, and an attached one never perturbs the simulation (test-enforced
// bit-identity).
type Series = obs.Series

// SeriesTrack is one run's ring of sampled windows within a Series.
type SeriesTrack = obs.SeriesTrack

// SeriesPoint is one sampled window: counter deltas since the previous
// sample plus instantaneous gauges.
type SeriesPoint = obs.SeriesPoint

// DefaultSeriesCapacity comfortably holds a full-scale run's pass and
// interval boundaries per track.
const DefaultSeriesCapacity = obs.DefaultSeriesCapacity

// NewSeries builds a series collector whose tracks retain the last
// capacity points each (<= 0 uses DefaultSeriesCapacity).
func NewSeries(capacity int) *Series { return obs.NewSeries(capacity) }

// Ledger is the merge-lifecycle provenance stream behind Config.Ledger: a
// bounded per-run ring of lifecycle events (scanned, merged, CoW-broken,
// quarantined, ballooned, ...) with wasted-work cause attribution. Its
// FrameHistory replay is what `pageforge explain` renders, and the verify
// sweep cross-checks the replay against the page tables. A nil Ledger is
// off, and an attached one never perturbs the simulation (test-enforced
// bit-identity).
type Ledger = obs.Ledger

// LedgerEvent is one recorded lifecycle transition.
type LedgerEvent = obs.LedgerEvent

// LedgerAttribution aggregates a ledger's events by kind and wasted-work
// cause — the scan-budget attribution of the efficiency report.
type LedgerAttribution = obs.Attribution

// LedgerNoPFN marks ledger events that are not about a specific frame.
const LedgerNoPFN = obs.LedgerNoPFN

// DefaultLedgerCapacity bounds the event ring when NewLedger is given no
// size.
const DefaultLedgerCapacity = obs.DefaultLedgerCapacity

// NewLedger builds a provenance ledger retaining the last capacity events
// (<= 0 uses DefaultLedgerCapacity).
func NewLedger(capacity int) *Ledger { return obs.NewLedger(capacity) }

// ReadSeriesJSON parses a -series artifact (schema-checked).
func ReadSeriesJSON(r io.Reader) (*obs.SeriesFile, error) { return obs.ReadSeriesJSON(r) }

// ReadLedgerJSON parses a ledger artifact written by `pageforge explain
// -json` (schema-checked).
func ReadLedgerJSON(r io.Reader) (*obs.LedgerFile, error) { return obs.ReadLedgerJSON(r) }

// --- Hardware cost model ------------------------------------------------------

// Estimate is an area/power figure from the analytical model.
type Estimate = power.Estimate

// PageForgeHardware estimates the module's area and power at 22nm
// (Table 5: 0.029 mm², 0.037 W).
func PageForgeHardware() power.PageForgeBreakdown {
	return power.PageForgeModule(power.Tech22HP)
}
