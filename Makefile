GO ?= go
FUZZTIME ?= 5s

.PHONY: build test race vet bench fuzz ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# fuzz gives the ECC decoder and page-key contracts a short native-fuzzing
# budget per target (raise FUZZTIME for a real campaign). Any ≤2-bit
# corruption must be corrected or detected, never silently miscorrected.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -run='^$$' -fuzz='^FuzzPageKey$$' -fuzztime=$(FUZZTIME) ./internal/ecc/

# ci is the gate every change must pass: compile, static checks, the full
# test suite under the race detector (the experiment suite runs its
# simulations through a concurrent worker pool), and the short fuzz budget.
ci: build vet race fuzz
