GO ?= go
FUZZTIME ?= 5s
COVER_FLOOR ?= 75

.PHONY: build test race vet bench fuzz smoke cover perfcheck ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the Go micro-benchmarks, then the end-to-end suite benchmark
# that snapshots per-run wall times and key metrics into BENCH_suite.json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/pageforge bench -out BENCH_suite.json

# perfcheck guards the scan hot path: it re-runs the legacy-vs-optimized
# scan-throughput benchmark and fails when the speedup ratio regresses more
# than 10% against the committed BENCH_suite.json baseline, or drops below
# the 2x floor. The ratio (not absolute throughput) is what gets compared,
# so the gate is meaningful across machines. It then times the same scan
# passes with the merge-lifecycle ledger attached — a fresh absolute
# on-vs-off comparison, no baseline involved — and fails when provenance
# costs more than the tolerance.
perfcheck:
	$(GO) run ./cmd/pageforge perfcheck -baseline BENCH_suite.json -tol 0.10

# smoke exercises the CLI's machine-readable path end to end: a fast
# two-app table4 run must emit a JSON document with populated rows, and the
# efficiency run must prove zero perturbation while writing a well-formed
# per-pass series artifact.
smoke:
	$(GO) run ./cmd/pageforge run -exp table4 -fast -quiet -json -apps img_dnn,silo \
		| jq -e '.experiments.table4.Rows | length > 0' > /dev/null
	$(GO) run ./cmd/pageforge run -exp pressure -fast -quiet -json \
		| jq -e '.experiments.pressure.Rows | map(select(.Ratio >= 1.5)) | all(.Recovered) and length > 0' > /dev/null
	$(GO) run ./cmd/pageforge run -exp crash -fast -quiet -json -crash-passes 2 -ckpt-every 0,2 \
		| jq -e '.experiments.crash.Rows | all(.Identical) and length > 0' > /dev/null
	$(GO) run ./cmd/pageforge run -exp efficiency -fast -quiet -json -apps img_dnn \
		-series /tmp/pageforge-smoke-series.json \
		| jq -e '.experiments.efficiency.Rows | all(.Identical) and length > 0' > /dev/null
	jq -e '.schema == "pageforge-series/v1" and (.tracks | length > 0) and ([.tracks[].points | length] | add > 0)' /tmp/pageforge-smoke-series.json > /dev/null
	$(GO) run ./cmd/pageforge run -exp stream -fast -quiet -json \
		| jq -e '.experiments.stream.Rows | all(.Identical) and length > 0' > /dev/null
	@echo smoke OK

# fuzz gives the ECC decoder, page-key, and snapshot-codec contracts a short
# native-fuzzing budget per target (raise FUZZTIME for a real campaign). Any
# ≤2-bit corruption must be corrected or detected, never silently
# miscorrected; any mutated snapshot envelope must be rejected with a typed
# error, never decoded into garbage or a panic.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -run='^$$' -fuzz='^FuzzPageKey$$' -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotDecode$$' -fuzztime=$(FUZZTIME) ./internal/snapshot/

# cover measures cross-package statement coverage over the whole test
# suite and fails when the total drops below COVER_FLOOR percent (the
# suite currently sits above 80%; the floor leaves slack for refactors,
# not for untested subsystems).
cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./... > /dev/null
	@$(GO) tool cover -func=coverage.out | awk -v floor=$(COVER_FLOOR) '\
		/^total:/ { v = $$3; sub(/%/, "", v); total = v } \
		END { printf "total coverage: %.1f%% (floor %d%%)\n", total, floor; \
		      if (total + 0 < floor + 0) { print "FAIL: coverage below floor"; exit 1 } }'

# ci is the gate every change must pass: compile, static checks, the full
# test suite under the race detector (the experiment suite runs its
# simulations through a concurrent worker pool), the short fuzz budget,
# the CLI JSON smoke run, the coverage floor, and the scan-throughput
# regression gate.
ci: build vet race fuzz smoke cover perfcheck
