GO ?= go
FUZZTIME ?= 5s

.PHONY: build test race vet bench fuzz smoke ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the Go micro-benchmarks, then the end-to-end suite benchmark
# that snapshots per-run wall times and key metrics into BENCH_suite.json.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/pageforge bench -out BENCH_suite.json

# smoke exercises the CLI's machine-readable path end to end: a fast
# two-app table4 run must emit a JSON document with populated rows.
smoke:
	$(GO) run ./cmd/pageforge run -exp table4 -fast -quiet -json -apps img_dnn,silo \
		| jq -e '.experiments.table4.Rows | length > 0' > /dev/null
	@echo smoke OK

# fuzz gives the ECC decoder and page-key contracts a short native-fuzzing
# budget per target (raise FUZZTIME for a real campaign). Any ≤2-bit
# corruption must be corrected or detected, never silently miscorrected.
fuzz:
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/ecc/
	$(GO) test -run='^$$' -fuzz='^FuzzPageKey$$' -fuzztime=$(FUZZTIME) ./internal/ecc/

# ci is the gate every change must pass: compile, static checks, the full
# test suite under the race detector (the experiment suite runs its
# simulations through a concurrent worker pool), the short fuzz budget,
# and the CLI JSON smoke run.
ci: build vet race fuzz smoke
