GO ?= go

.PHONY: build test race vet bench ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# ci is the gate every change must pass: compile, static checks, and the
# full test suite under the race detector (the experiment suite runs its
# simulations through a concurrent worker pool).
ci: build vet race
