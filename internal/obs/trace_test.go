package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 20; i++ {
		tr.Emit(Event{TS: uint64(i), Ph: 'i', Name: fmt.Sprintf("e%d", i)})
	}
	if got := tr.Len(); got != 8 {
		t.Fatalf("Len=%d want 8", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("Dropped=%d want 12", got)
	}
	evs := tr.Events()
	if len(evs) != 8 {
		t.Fatalf("Events len=%d want 8", len(evs))
	}
	// The survivors are the last 8, in emission order.
	for i, e := range evs {
		if want := uint64(12 + i); e.TS != want {
			t.Fatalf("event %d: TS=%d want %d", i, e.TS, want)
		}
	}
}

// TestTracerDroppedSurfacesInJSON: a wrapped ring must disclose its loss at
// the artifact boundary — otherwise a truncated trace reads as a complete
// one. The count rides the Chrome trace_event otherData section.
func TestTracerDroppedSurfacesInJSON(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 9; i++ {
		tr.Emit(Event{TS: uint64(i), Ph: 'i', Name: "e"})
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if got, _ := doc.OtherData["droppedEvents"].(float64); got != 5 {
		t.Fatalf("otherData.droppedEvents=%v want 5", doc.OtherData["droppedEvents"])
	}

	// And an unwrapped trace must NOT claim drops.
	clean := NewTracer(16)
	clean.Emit(Event{Ph: 'i', Name: "e"})
	buf.Reset()
	if err := clean.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc2 struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc2); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc2.OtherData["droppedEvents"]; ok {
		t.Fatal("clean trace reports droppedEvents")
	}
}

func TestTracerNilIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Emit(Event{Name: "x"}) // must not panic
	tr.NameThread(1, 1, "t")
	if tr.NewProcess("p") != 0 || tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer leaked state")
	}
	var s Scope
	s.Complete(TIDEngine, "c", "n", 0, 1, "", 0)
	s.Instant(TIDEngine, "c", "n", 0, "", 0)
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer JSON invalid: %v", err)
	}
}

// TestTraceJSONRoundTrip validates the serialized shape against what the
// Chrome trace_event loader (Perfetto's JSON importer) requires: an object
// with a traceEvents array whose entries carry name/ph/ts/pid/tid, 'X'
// events a dur, metadata events their args.name.
func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTracer(64)
	pid := tr.NewProcess("PageForge/img_dnn")
	if pid != 1 {
		t.Fatalf("pid=%d want 1", pid)
	}
	tr.NameThread(pid, TIDEngine, "pfe-engine")
	sc := Scope{T: tr, PID: pid}
	sc.Complete(TIDEngine, "pfe", "batch", 1000, 7486, "compared", 31)
	sc.Instant(TIDRAS, "ras", "poison", 2500, "pfn", 77)
	sc.Complete(TIDPlatform, "interval", "interval", 0, 10_000_000, "k", 0)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if doc.Unit != "ms" {
		t.Errorf("displayTimeUnit=%q", doc.Unit)
	}
	if len(doc.TraceEvents) != 5 { // 2 metadata + 3 events
		t.Fatalf("traceEvents len=%d want 5", len(doc.TraceEvents))
	}
	var sawMeta, sawX, sawI bool
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if _, ok := e["name"].(string); !ok {
			t.Fatalf("event missing name: %v", e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event missing pid: %v", e)
		}
		switch ph {
		case "M":
			sawMeta = true
			args, ok := e["args"].(map[string]any)
			if !ok || args["name"] == nil {
				t.Fatalf("metadata without args.name: %v", e)
			}
		case "X":
			sawX = true
			if _, ok := e["dur"].(float64); !ok {
				t.Fatalf("'X' event without dur: %v", e)
			}
			if _, ok := e["ts"].(float64); !ok {
				t.Fatalf("'X' event without ts: %v", e)
			}
		case "i":
			sawI = true
			if e["s"] != "t" {
				t.Fatalf("instant without scope: %v", e)
			}
		default:
			t.Fatalf("unexpected phase %q", ph)
		}
	}
	if !sawMeta || !sawX || !sawI {
		t.Fatalf("missing phases: M=%v X=%v i=%v", sawMeta, sawX, sawI)
	}
	// Timestamp scaling: 1000 cycles at 2GHz is 0.5us.
	for _, e := range doc.TraceEvents {
		if e["name"] == "batch" {
			if ts := e["ts"].(float64); ts != 0.5 {
				t.Errorf("batch ts=%g want 0.5us", ts)
			}
			if dur := e["dur"].(float64); dur != 7486.0/2000 {
				t.Errorf("batch dur=%g", dur)
			}
			args := e["args"].(map[string]any)
			if args["compared"].(float64) != 31 {
				t.Errorf("batch args=%v", args)
			}
		}
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pid := tr.NewProcess(fmt.Sprintf("run-%d", g))
			sc := Scope{T: tr, PID: pid}
			for i := 0; i < 200; i++ {
				sc.Instant(TIDDriver, "merge", "merge", uint64(i), "", 0)
			}
		}(g)
	}
	wg.Wait()
	if got := tr.Len(); got != 1024 {
		t.Fatalf("Len=%d want 1024 (ring full)", got)
	}
	if tr.Dropped() != 8*200-1024 {
		t.Fatalf("Dropped=%d", tr.Dropped())
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace serialized to invalid JSON")
	}
}
