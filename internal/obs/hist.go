package obs

import (
	"math"
	"sort"
)

// The histogram is log-bucketed: each power-of-two octave is split into
// subBuckets linear sub-buckets, so bucket width is at most 1/subBuckets
// of the bucket's lower bound (6.25% relative resolution at 16). That is
// the whole accuracy contract: any quantile is within one bucket of the
// exact-sort answer, i.e. within ~6.25% relative error, at O(1) memory
// per octave instead of retaining samples (sim.Sample) — which matters
// for the measurement phase's per-access demand-latency stream.
const (
	subBucketBits = 4
	subBuckets    = 1 << subBucketBits
	// expBias keeps bucket keys positive across float64's full exponent
	// range so integer key order equals numeric value order.
	expBias = 1100
)

// bucketKey maps a positive value to its bucket.
func bucketKey(v float64) int32 {
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	sub := int32((frac - 0.5) * (2 * subBuckets))
	if sub >= subBuckets {
		sub = subBuckets - 1
	}
	return (int32(exp)+expBias)<<subBucketBits | sub
}

// bucketBounds is the inverse: the half-open value range [lo, hi) of a key.
func bucketBounds(key int32) (lo, hi float64) {
	exp := int(key>>subBucketBits) - expBias
	sub := float64(key & (subBuckets - 1))
	lo = math.Ldexp(0.5+sub/(2*subBuckets), exp)
	hi = math.Ldexp(0.5+(sub+1)/(2*subBuckets), exp)
	return lo, hi
}

// Histogram is a streaming log-bucketed histogram over non-negative
// observations (negative and NaN values are folded into the zero bucket).
// It reports mean, min, max exactly and quantiles to within one bucket.
type Histogram struct {
	count   uint64
	zeros   uint64 // observations <= 0 (and NaN)
	sum     float64
	min     float64
	max     float64
	buckets map[int32]uint64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{buckets: make(map[int32]uint64)}
}

// Add folds one observation in.
func (h *Histogram) Add(v float64) {
	h.count++
	if h.count == 1 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	if !(v > 0) { // catches 0, negatives, and NaN
		h.zeros++
		return
	}
	h.sum += v
	h.buckets[bucketKey(v)]++
}

// N reports the number of observations.
func (h *Histogram) N() uint64 { return h.count }

// Mean reports the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest observation (0 when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max reports the largest observation (0 when empty).
func (h *Histogram) Max() float64 { return h.max }

// Sum reports the sum of positive observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Reset discards all state but keeps the backing map.
func (h *Histogram) Reset() {
	for k := range h.buckets {
		delete(h.buckets, k)
	}
	h.count, h.zeros, h.sum, h.min, h.max = 0, 0, 0, 0, 0
}

// sortedKeys returns the occupied bucket keys in ascending value order.
func (h *Histogram) sortedKeys() []int32 {
	keys := make([]int32, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Quantile reports the q-quantile (q in [0, 1]) by linear interpolation
// inside the containing bucket, clamped to the exact observed [min, max].
// The clamp makes degenerate distributions exact: a constant stream
// reports every quantile equal to that constant.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	cum := float64(h.zeros)
	if cum >= target {
		return h.clamp(0)
	}
	for _, k := range h.sortedKeys() {
		n := float64(h.buckets[k])
		if cum+n >= target {
			lo, hi := bucketBounds(k)
			return h.clamp(lo + (target-cum)/n*(hi-lo))
		}
		cum += n
	}
	return h.max
}

func (h *Histogram) clamp(v float64) float64 {
	if v < h.min {
		return h.min
	}
	if v > h.max {
		return h.max
	}
	return v
}

// P50 reports the median.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 reports the 95th percentile, the paper's tail metric.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 reports the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// HistBucket is one occupied bucket in a snapshot: the half-open value
// range [Lo, Hi) and its observation count. Key is the internal bucket
// index, retained so Diff can subtract bucket-wise.
type HistBucket struct {
	Key int32   `json:"key"`
	Lo  float64 `json:"lo"`
	Hi  float64 `json:"hi"`
	N   uint64  `json:"n"`
}

// HistogramSnapshot is the serializable summary of a histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Zeros uint64  `json:"zeros,omitempty"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Buckets are ordered by value (ascending Lo).
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot summarizes the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count,
		Zeros: h.zeros,
		Sum:   h.sum,
		Mean:  h.Mean(),
		Min:   h.min,
		Max:   h.max,
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
	}
	for _, k := range h.sortedKeys() {
		lo, hi := bucketBounds(k)
		s.Buckets = append(s.Buckets, HistBucket{Key: k, Lo: lo, Hi: hi, N: h.buckets[k]})
	}
	return s
}

// Diff subtracts prev bucket-wise and recomputes the distribution summary
// over the window. The exact per-window min/max are not recoverable from
// cumulative state, so they report the window's occupied bucket bounds.
func (s HistogramSnapshot) Diff(prev HistogramSnapshot) HistogramSnapshot {
	prevN := make(map[int32]uint64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		prevN[b.Key] = b.N
	}
	w := &Histogram{buckets: make(map[int32]uint64)}
	for _, b := range s.Buckets {
		if n := b.N - prevN[b.Key]; n > 0 {
			w.buckets[b.Key] = n
		}
	}
	w.count = s.Count - prev.Count
	w.zeros = s.Zeros - prev.Zeros
	w.sum = s.Sum - prev.Sum
	if keys := w.sortedKeys(); len(keys) > 0 {
		w.min, _ = bucketBounds(keys[0])
		_, w.max = bucketBounds(keys[len(keys)-1])
		if w.zeros > 0 {
			w.min = 0
		}
	}
	return w.Snapshot()
}
