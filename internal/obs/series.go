package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// SeriesSchema versions the -series artifact's JSON shape.
const SeriesSchema = "pageforge-series/v1"

// DefaultSeriesCapacity bounds a track's point ring when NewSeries is given
// no size: comfortably every convergence pass plus every measurement
// interval of a full-scale run, per track.
const DefaultSeriesCapacity = 4096

// Series is the windowed time-series layer: at every convergence-pass
// boundary (and every measurement interval) the platform publishes its
// cumulative counters into the run's registry and samples them into a
// bounded ring of per-window deltas. Like the Tracer, one Series may serve
// many concurrently executing runs — registration is synchronized and each
// run samples through its own SeriesTrack, whose handle follows the
// registry ownership model (single-goroutine, race-free by construction).
// A nil *Series is the disabled state: every method no-ops.
type Series struct {
	mu     sync.Mutex
	cap    int
	tracks map[string]*SeriesTrack
	order  []string // registration order, for deterministic default listing
}

// NewSeries returns a collector whose tracks retain the last capacity
// points each (DefaultSeriesCapacity if capacity <= 0).
func NewSeries(capacity int) *Series {
	if capacity <= 0 {
		capacity = DefaultSeriesCapacity
	}
	return &Series{cap: capacity, tracks: make(map[string]*SeriesTrack)}
}

// Enabled reports whether series collection is on; nil-safe.
func (s *Series) Enabled() bool { return s != nil }

// Track returns the named per-run track, registering it on first use. Track
// names follow the suite's run naming ("Mode/app"). The returned handle is
// not synchronized — it belongs to the run's goroutine.
func (s *Series) Track(name string) *SeriesTrack {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tracks[name]
	if !ok {
		t = &SeriesTrack{name: name, buf: make([]SeriesPoint, 0, s.cap), cap: s.cap}
		s.tracks[name] = t
		s.order = append(s.order, name)
	}
	return t
}

// TrackNames returns the registered track names, sorted.
func (s *Series) TrackNames() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.order))
	copy(names, s.order)
	sort.Strings(names)
	return names
}

// SeriesPoint is one sampled window: the counter deltas accumulated since
// the previous sample on the same track (zero deltas elided), plus the
// instantaneous gauge values. Phase is "converge" during convergence passes
// and "measure" during steady-state measurement; Index is the pass or
// interval number; Cycles is the phase clock at the sample and WindowCycles
// the elapsed cycles since the previous sample (zero on the first sample of
// a phase — the phases run on different clock epochs, so a cross-phase
// delta would be meaningless).
type SeriesPoint struct {
	Phase        string             `json:"phase"`
	Index        int                `json:"index"`
	Cycles       uint64             `json:"cycles"`
	WindowCycles uint64             `json:"windowCycles"`
	Counters     map[string]uint64  `json:"counters,omitempty"`
	Gauges       map[string]float64 `json:"gauges,omitempty"`
}

// SeriesTrack is one run's ring of sampled windows. The zero value is not
// usable; obtain tracks from Series.Track. A nil *SeriesTrack no-ops.
type SeriesTrack struct {
	name    string
	cap     int
	buf     []SeriesPoint
	next    int
	full    bool
	dropped uint64

	prevCounters map[string]uint64
	prevCycles   uint64
	prevPhase    string
}

// Enabled reports whether this track samples; nil-safe.
func (t *SeriesTrack) Enabled() bool { return t != nil }

// Name reports the track's registration name.
func (t *SeriesTrack) Name() string { return t.name }

// Dropped reports how many points the ring has overwritten.
func (t *SeriesTrack) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Sample reads the registry's current counters and gauges and records one
// window: counter deltas against the previous sample (a counter missing
// from the previous sample counts from zero; zero deltas are elided so
// points stay compact), gauges as-is. The caller must have published every
// cumulative statistic into the registry first — the platform does this by
// re-running its end-of-run metric publication at each boundary, which is
// safe because publication is idempotent overwrite of monotonic values.
func (t *SeriesTrack) Sample(phase string, index int, nowCycles uint64, reg *Registry) {
	if t == nil {
		return
	}
	snap := reg.Snapshot()
	window := nowCycles - t.prevCycles
	if phase != t.prevPhase || nowCycles < t.prevCycles {
		window = 0
	}
	pt := SeriesPoint{
		Phase:        phase,
		Index:        index,
		Cycles:       nowCycles,
		WindowCycles: window,
	}
	for name, v := range snap.Counters {
		d := v - t.prevCounters[name]
		if d != 0 {
			if pt.Counters == nil {
				pt.Counters = make(map[string]uint64)
			}
			pt.Counters[name] = d
		}
	}
	if len(snap.Gauges) > 0 {
		pt.Gauges = make(map[string]float64, len(snap.Gauges))
		for name, v := range snap.Gauges {
			pt.Gauges[name] = v
		}
	}
	t.prevCounters = snap.Counters
	t.prevCycles = nowCycles
	t.prevPhase = phase
	t.push(pt)
}

// push appends to the ring, overwriting the oldest point when full.
func (t *SeriesTrack) push(pt SeriesPoint) {
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, pt)
		return
	}
	t.dropped++
	t.buf[t.next] = pt
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.full = true
}

// Points returns the retained points in sample order.
func (t *SeriesTrack) Points() []SeriesPoint {
	if t == nil {
		return nil
	}
	if !t.full {
		out := make([]SeriesPoint, len(t.buf))
		copy(out, t.buf)
		return out
	}
	out := make([]SeriesPoint, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// --- Crash-checkpoint state --------------------------------------------------
//
// A track is part of the simulated world: a checkpointed run must restore
// its sample ring and delta baseline bit-exactly so replayed passes
// re-sample identically. The state types are map-free (sorted parallel
// slices) because the snapshot codec requires byte-deterministic encoding.

// SeriesPointState is one point in codec-safe form.
type SeriesPointState struct {
	Phase        string
	Index        int
	Cycles       uint64
	WindowCycles uint64
	CtrNames     []string
	CtrVals      []uint64
	GaugeNames   []string
	GaugeVals    []float64
}

// SeriesTrackState is a track's full checkpointable state.
type SeriesTrackState struct {
	Points     []SeriesPointState // sample order
	Dropped    uint64
	PrevNames  []string
	PrevVals   []uint64
	PrevCycles uint64
	PrevPhase  string
}

func sortedCounterKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// State captures the track for a checkpoint.
func (t *SeriesTrack) State() SeriesTrackState {
	if t == nil {
		return SeriesTrackState{}
	}
	st := SeriesTrackState{Dropped: t.dropped, PrevCycles: t.prevCycles, PrevPhase: t.prevPhase}
	for _, pt := range t.Points() {
		ps := SeriesPointState{
			Phase:        pt.Phase,
			Index:        pt.Index,
			Cycles:       pt.Cycles,
			WindowCycles: pt.WindowCycles,
		}
		for _, k := range sortedCounterKeys(pt.Counters) {
			ps.CtrNames = append(ps.CtrNames, k)
			ps.CtrVals = append(ps.CtrVals, pt.Counters[k])
		}
		gkeys := make([]string, 0, len(pt.Gauges))
		for k := range pt.Gauges {
			gkeys = append(gkeys, k)
		}
		sort.Strings(gkeys)
		for _, k := range gkeys {
			ps.GaugeNames = append(ps.GaugeNames, k)
			ps.GaugeVals = append(ps.GaugeVals, pt.Gauges[k])
		}
		st.Points = append(st.Points, ps)
	}
	for _, k := range sortedCounterKeys(t.prevCounters) {
		st.PrevNames = append(st.PrevNames, k)
		st.PrevVals = append(st.PrevVals, t.prevCounters[k])
	}
	return st
}

// SetState rewinds the track to a checkpointed state.
func (t *SeriesTrack) SetState(st SeriesTrackState) {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.next = 0
	t.full = false
	t.dropped = st.Dropped
	t.prevCycles = st.PrevCycles
	t.prevPhase = st.PrevPhase
	t.prevCounters = nil
	if len(st.PrevNames) > 0 {
		t.prevCounters = make(map[string]uint64, len(st.PrevNames))
		for i, k := range st.PrevNames {
			t.prevCounters[k] = st.PrevVals[i]
		}
	}
	for _, ps := range st.Points {
		pt := SeriesPoint{
			Phase:        ps.Phase,
			Index:        ps.Index,
			Cycles:       ps.Cycles,
			WindowCycles: ps.WindowCycles,
		}
		if len(ps.CtrNames) > 0 {
			pt.Counters = make(map[string]uint64, len(ps.CtrNames))
			for i, k := range ps.CtrNames {
				pt.Counters[k] = ps.CtrVals[i]
			}
		}
		if len(ps.GaugeNames) > 0 {
			pt.Gauges = make(map[string]float64, len(ps.GaugeNames))
			for i, k := range ps.GaugeNames {
				pt.Gauges[k] = ps.GaugeVals[i]
			}
		}
		// Points restored this way never exceed cap: the ring they were
		// captured from was itself bounded by the same capacity.
		t.buf = append(t.buf, pt)
	}
}

// --- JSON export -------------------------------------------------------------

// seriesPointJSON augments a point with derived per-megacycle rates so the
// artifact is directly plottable without a post-processing step.
type seriesPointJSON struct {
	SeriesPoint
	Rates map[string]float64 `json:"ratesPerMcycle,omitempty"`
}

type seriesTrackJSON struct {
	Name    string            `json:"name"`
	Dropped uint64            `json:"dropped"`
	Points  []seriesPointJSON `json:"points"`
}

type seriesFileJSON struct {
	Schema string            `json:"schema"`
	Tracks []seriesTrackJSON `json:"tracks"`
}

// fileValue builds the artifact shape: every track, sorted by name, with
// per-window rates (counter delta per million cycles) derived at export
// time. Windows with zero elapsed cycles (possible when an engine's wall
// clock does not advance) carry no rates.
func (s *Series) fileValue() seriesFileJSON {
	out := seriesFileJSON{Schema: SeriesSchema}
	if s != nil {
		s.mu.Lock()
		names := make([]string, len(s.order))
		copy(names, s.order)
		tracks := make(map[string]*SeriesTrack, len(s.tracks))
		for k, v := range s.tracks {
			tracks[k] = v
		}
		s.mu.Unlock()
		sort.Strings(names)
		for _, name := range names {
			t := tracks[name]
			tj := seriesTrackJSON{Name: name, Dropped: t.Dropped(), Points: []seriesPointJSON{}}
			for _, pt := range t.Points() {
				pj := seriesPointJSON{SeriesPoint: pt}
				if pt.WindowCycles > 0 && len(pt.Counters) > 0 {
					pj.Rates = make(map[string]float64, len(pt.Counters))
					for k, d := range pt.Counters {
						pj.Rates[k] = float64(d) * 1e6 / float64(pt.WindowCycles)
					}
				}
				tj.Points = append(tj.Points, pj)
			}
			out.Tracks = append(out.Tracks, tj)
		}
	}
	if out.Tracks == nil {
		out.Tracks = []seriesTrackJSON{}
	}
	return out
}

// WriteJSON serializes the series as a -series artifact.
func (s *Series) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(s.fileValue())
}

// MarshalJSON renders the same shape as WriteJSON, so a Series embedded in
// an experiment's -json result is byte-compatible with the -series artifact.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.fileValue())
}
