package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile is the sort-based reference: nearest-rank with the same
// target convention the histogram uses (rank q*n, 1-indexed cumulative).
func exactQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return 0
	}
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// maxRelErr is the histogram's accuracy contract: one bucket of 16
// sub-buckets per octave is 6.25% wide relative to its lower bound, plus
// interpolation slack against the nearest-rank reference.
const maxRelErr = 0.08

func checkQuantiles(t *testing.T, name string, xs []float64) {
	t.Helper()
	h := NewHistogram()
	for _, x := range xs {
		h.Add(x)
	}
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999} {
		got := h.Quantile(q)
		want := exactQuantile(xs, q)
		if want == 0 {
			if got > 1e-9 {
				t.Errorf("%s q=%g: got %g, want 0", name, q, got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > maxRelErr {
			t.Errorf("%s q=%g: got %g, exact %g (rel err %.3f > %.3f)", name, q, got, want, rel, maxRelErr)
		}
	}
	// Exact aggregates.
	var sum, mn, mx float64
	for i, x := range xs {
		sum += math.Max(x, 0)
		if i == 0 {
			mn, mx = x, x
		} else {
			mn = math.Min(mn, x)
			mx = math.Max(mx, x)
		}
	}
	if h.N() != uint64(len(xs)) {
		t.Errorf("%s: N=%d want %d", name, h.N(), len(xs))
	}
	if len(xs) > 0 {
		if math.Abs(h.Mean()-sum/float64(len(xs))) > 1e-6*math.Abs(h.Mean())+1e-9 {
			t.Errorf("%s: mean %g want %g", name, h.Mean(), sum/float64(len(xs)))
		}
		if h.Min() != mn || h.Max() != mx {
			t.Errorf("%s: min/max %g/%g want %g/%g", name, h.Min(), h.Max(), mn, mx)
		}
	}
}

func TestQuantileRandomDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	uniform := make([]float64, 20000)
	for i := range uniform {
		uniform[i] = rng.Float64() * 1e6
	}
	checkQuantiles(t, "uniform", uniform)

	lognormal := make([]float64, 20000)
	for i := range lognormal {
		lognormal[i] = math.Exp(rng.NormFloat64()*1.5 + 5)
	}
	checkQuantiles(t, "lognormal", lognormal)

	// Latency-shaped: a hit mode plus a heavy miss tail (the demand-latency
	// stream the measurement phase feeds this histogram).
	latency := make([]float64, 20000)
	for i := range latency {
		if rng.Float64() < 0.7 {
			latency[i] = 20
		} else {
			latency[i] = 150 + rng.Float64()*400
		}
	}
	checkQuantiles(t, "latency", latency)
}

func TestQuantileAdversarialDistributions(t *testing.T) {
	// Constant stream: every quantile must be exactly the constant (the
	// min/max clamp guarantees it despite bucket width).
	constant := make([]float64, 1000)
	for i := range constant {
		constant[i] = 100
	}
	h := NewHistogram()
	for _, x := range constant {
		h.Add(x)
	}
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("constant q=%g: got %g want 100", q, got)
		}
	}
	if h.P95() < h.Mean() {
		t.Errorf("constant: p95 %g < mean %g", h.P95(), h.Mean())
	}

	// Two-point mass at bucket boundaries.
	twoPoint := make([]float64, 0, 2000)
	for i := 0; i < 1900; i++ {
		twoPoint = append(twoPoint, 64) // exact power of two: bucket lower bound
	}
	for i := 0; i < 100; i++ {
		twoPoint = append(twoPoint, 65536)
	}
	checkQuantiles(t, "two-point", twoPoint)

	// Values straddling every sub-bucket boundary of one octave.
	var boundary []float64
	for i := 0; i < subBuckets; i++ {
		v := math.Ldexp(0.5+float64(i)/(2*subBuckets), 10)
		boundary = append(boundary, v, math.Nextafter(v, 0), math.Nextafter(v, math.Inf(1)))
	}
	checkQuantiles(t, "sub-bucket boundaries", boundary)

	// Zeros and negatives fold into the zero bucket and never panic.
	h2 := NewHistogram()
	for _, v := range []float64{0, -5, math.NaN(), 10, 10, 10} {
		h2.Add(v)
	}
	if h2.N() != 6 {
		t.Fatalf("N=%d want 6", h2.N())
	}
	if got := h2.Quantile(0.99); got != 10 {
		t.Errorf("q99 with zeros: got %g want 10", got)
	}
	if got := h2.Quantile(0.25); got != 0 { // the zero bucket
		t.Errorf("q25 with zeros: got %g want 0", got)
	}

	// Empty histogram.
	e := NewHistogram()
	if e.Quantile(0.95) != 0 || e.Mean() != 0 || e.N() != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestQuantileMonotonicAndOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	for i := 0; i < 50000; i++ {
		h.Add(math.Exp(rng.NormFloat64() * 2))
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
	if !(h.P50() <= h.P95() && h.P95() <= h.P99() && h.P99() <= h.Max()) {
		t.Fatalf("ordering violated: p50=%g p95=%g p99=%g max=%g", h.P50(), h.P95(), h.P99(), h.Max())
	}
}

func TestHistogramSnapshotDiff(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 100; i++ {
		h.Add(100)
	}
	before := h.Snapshot()
	for i := 0; i < 400; i++ {
		h.Add(1000)
	}
	diff := h.Snapshot().Diff(before)
	if diff.Count != 400 {
		t.Fatalf("diff count %d want 400", diff.Count)
	}
	// The window contains only the 1000s: its p50 must sit in their bucket.
	lo, hi := bucketBounds(bucketKey(1000))
	if diff.P50 < lo || diff.P50 > hi {
		t.Errorf("diff p50 %g outside window bucket [%g,%g)", diff.P50, lo, hi)
	}
	if diff.Sum != 400*1000 {
		t.Errorf("diff sum %g want 400000", diff.Sum)
	}
	var n uint64
	for _, b := range diff.Buckets {
		n += b.N
	}
	if n != 400 {
		t.Errorf("diff bucket mass %d want 400", n)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Add(50)
	h.Reset()
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.95) != 0 || len(h.Snapshot().Buckets) != 0 {
		t.Fatal("reset did not clear state")
	}
	h.Add(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("post-reset min/max wrong")
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Add(float64(20 + i%600))
	}
}

// TestQuantileEdgeCases pins the boundary behaviour of Quantile against the
// sort-based reference where the reference is defined, and against the
// documented contract (clamped to [Min, Max], monotone in q) where the
// reference's total order breaks down (NaN inputs).
func TestQuantileEdgeCases(t *testing.T) {
	qs := []float64{-1, 0, 0.001, 0.25, 0.5, 0.75, 0.999, 1, 2}

	t.Run("empty", func(t *testing.T) {
		h := NewHistogram()
		for _, q := range qs {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%g) = %g, want 0", q, got)
			}
		}
	})

	t.Run("single-sample", func(t *testing.T) {
		for _, v := range []float64{0, 1e-9, 3.7, 1e12} {
			h := NewHistogram()
			h.Add(v)
			for _, q := range qs {
				if got, want := h.Quantile(q), exactQuantile([]float64{v}, q); got != want {
					t.Errorf("single(%g) Quantile(%g) = %g, want %g", v, q, got, want)
				}
			}
		}
	})

	t.Run("extremes-are-exact-min-max", func(t *testing.T) {
		h := NewHistogram()
		xs := []float64{5, 0.2, 19, 7, 0.9, 300}
		for _, x := range xs {
			h.Add(x)
		}
		for _, q := range []float64{-3, 0} {
			if got := h.Quantile(q); got != exactQuantile(xs, q) || got != h.Min() {
				t.Errorf("Quantile(%g) = %g, want exact min %g", q, got, h.Min())
			}
		}
		for _, q := range []float64{1, 1.5} {
			if got := h.Quantile(q); got != exactQuantile(xs, q) || got != h.Max() {
				t.Errorf("Quantile(%g) = %g, want exact max %g", q, got, h.Max())
			}
		}
	})

	t.Run("zero-mass", func(t *testing.T) {
		// Half the stream is exactly zero: quantiles inside the zero mass
		// must report 0 exactly, matching the reference.
		h := NewHistogram()
		var xs []float64
		for i := 0; i < 50; i++ {
			xs = append(xs, 0, float64(i+1))
		}
		for _, x := range xs {
			h.Add(x)
		}
		for _, q := range []float64{0.1, 0.3, 0.5} {
			if got, want := h.Quantile(q), exactQuantile(xs, q); got != want {
				t.Errorf("zero-mass Quantile(%g) = %g, want %g", q, got, want)
			}
		}
	})

	t.Run("negative-and-nan-fold", func(t *testing.T) {
		// Negative and NaN observations fold into the zero bucket. A total
		// order over the inputs no longer exists, so the contract is the
		// documented one: results stay within [Min, Max] (when those are
		// well-defined) and are monotone in q.
		h := NewHistogram()
		for _, x := range []float64{4, -2, 1, math.NaN(), 9, -7} {
			h.Add(x)
		}
		if h.Min() != -7 || h.Max() != 9 {
			t.Fatalf("min/max = %g/%g, want -7/9", h.Min(), h.Max())
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1} {
			got := h.Quantile(q)
			if math.IsNaN(got) || got < h.Min() || got > h.Max() {
				t.Fatalf("Quantile(%g) = %g escapes [%g, %g]", q, got, h.Min(), h.Max())
			}
			if got < prev {
				t.Fatalf("Quantile not monotone: q=%g gives %g after %g", q, got, prev)
			}
			prev = got
		}
	})
}
