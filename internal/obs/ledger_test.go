package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestLedgerAppendAndWrap(t *testing.T) {
	l := NewLedger(4)
	l.SetPass(2)
	for i := 0; i < 7; i++ {
		l.Append(LedgerEvent{Kind: LKScanned, VM: 0, GFN: uint64(i), PFN: uint64(100 + i)})
	}
	if l.Len() != 4 {
		t.Fatalf("len=%d want 4", l.Len())
	}
	if l.Dropped() != 3 {
		t.Fatalf("dropped=%d want 3", l.Dropped())
	}
	evs := l.Events()
	for i, e := range evs {
		if want := uint64(4 + i); e.Seq != want {
			t.Fatalf("event %d seq=%d want %d (order broken)", i, e.Seq, want)
		}
		if e.Pass != 2 {
			t.Fatalf("pass=%d want 2", e.Pass)
		}
	}
}

func TestLedgerFrameHistory(t *testing.T) {
	l := NewLedger(0)
	l.Append(LedgerEvent{Kind: LKScanned, VM: 0, GFN: 1, PFN: 10})
	l.Append(LedgerEvent{Kind: LKMerged, VM: 0, GFN: 1, PFN: 10, Arg: 20}) // 10 merged onto 20
	l.Append(LedgerEvent{Kind: LKScanned, VM: 1, GFN: 9, PFN: 30})         // unrelated
	l.Append(LedgerEvent{Kind: LKCoWBroken, VM: 0, GFN: 1, PFN: 20, Arg: 40})

	// Frame 20's history includes events where it is the subject AND the
	// merge that targeted it.
	hist := l.FrameHistory(20)
	if len(hist) != 2 {
		t.Fatalf("history len=%d want 2: %+v", len(hist), hist)
	}
	if hist[0].Kind != LKMerged || hist[1].Kind != LKCoWBroken {
		t.Fatalf("history kinds wrong: %+v", hist)
	}
	// Frame 40 appears only as a CoW destination.
	if got := l.FrameHistory(40); len(got) != 1 || got[0].Kind != LKCoWBroken {
		t.Fatalf("cow destination history: %+v", got)
	}
	if got := l.FrameHistory(999); len(got) != 0 {
		t.Fatalf("unknown frame has history: %+v", got)
	}
}

func TestLedgerAttribution(t *testing.T) {
	l := NewLedger(0)
	l.Append(LedgerEvent{Kind: LKScanned})
	l.Append(LedgerEvent{Kind: LKScanned})
	l.Append(LedgerEvent{Kind: LKChurned, Cause: CauseContentChurn})
	l.Append(LedgerEvent{Kind: LKMergeFailed, Cause: CauseChecksumInstability})
	at := l.Attribution()
	if at.Events != 4 || at.Dropped != 0 {
		t.Fatalf("events=%d dropped=%d", at.Events, at.Dropped)
	}
	if at.Kinds["scanned"] != 2 || at.Kinds["churned"] != 1 {
		t.Fatalf("kinds=%v", at.Kinds)
	}
	if at.Causes["content_churn"] != 1 || at.Causes["checksum_instability"] != 1 {
		t.Fatalf("causes=%v", at.Causes)
	}
	if _, ok := at.Causes["none"]; ok {
		t.Fatal("productive events must not appear on the cause axis")
	}
}

func TestLedgerStateRoundTrip(t *testing.T) {
	l := NewLedger(8)
	l.SetPass(1)
	for i := 0; i < 5; i++ {
		l.Append(LedgerEvent{Kind: LKScanned, PFN: uint64(i)})
	}
	st := l.State()
	other := NewLedger(8)
	other.SetState(st)
	if !reflect.DeepEqual(l.Events(), other.Events()) {
		t.Fatal("events diverged after round trip")
	}
	// Sequence numbering and pass stamping must continue identically.
	l.Append(LedgerEvent{Kind: LKStable, PFN: 9})
	other.Append(LedgerEvent{Kind: LKStable, PFN: 9})
	if !reflect.DeepEqual(l.Events(), other.Events()) {
		t.Fatal("post-restore append diverged")
	}
}

func TestLedgerNilIsNoop(t *testing.T) {
	var l *Ledger
	if l.Enabled() {
		t.Fatal("nil ledger enabled")
	}
	l.SetPass(3)
	l.Append(LedgerEvent{Kind: LKScanned}) // must not panic
	l.AppendAll([]LedgerEvent{{Kind: LKScanned}})
	l.SetState(LedgerState{})
	if l.Len() != 0 || l.Dropped() != 0 || l.Events() != nil || l.FrameHistory(0) != nil {
		t.Fatal("nil ledger leaked state")
	}
	if at := l.Attribution(); at.Events != 0 {
		t.Fatal("nil ledger attributed events")
	}
}

// TestLedgerJSONRoundTrip writes the artifact and parses it back through
// the exported reader: kinds and causes must come out as names.
func TestLedgerJSONRoundTrip(t *testing.T) {
	l := NewLedger(0)
	l.SetPass(3)
	l.Append(LedgerEvent{Kind: LKMerged, VM: 1, GFN: 7, PFN: 10, Arg: 20})
	l.Append(LedgerEvent{Kind: LKChurned, VM: 0, GFN: 2, PFN: 11, Cause: CauseContentChurn})

	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadLedgerJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != LedgerSchema {
		t.Fatalf("schema=%q", f.Schema)
	}
	if len(f.Events) != 2 {
		t.Fatalf("events=%d want 2", len(f.Events))
	}
	e := f.Events[0]
	if e.Kind != "merged" || e.Cause != "" || e.VM != 1 || e.GFN != 7 || e.PFN != 10 || e.Arg != 20 || e.Pass != 3 {
		t.Fatalf("merged event wrong: %+v", e)
	}
	if f.Events[1].Kind != "churned" || f.Events[1].Cause != "content_churn" {
		t.Fatalf("churned event wrong: %+v", f.Events[1])
	}
	if f.Attribution.Kinds["merged"] != 1 {
		t.Fatalf("attribution=%v", f.Attribution)
	}
	if _, err := ReadLedgerJSON(bytes.NewBufferString(`{"schema":"other/v9"}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
