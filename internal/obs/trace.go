package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// CyclesPerMicrosecond converts simulation cycles (2 GHz core clock) to
// the microsecond timestamps the Chrome trace_event format expects.
const CyclesPerMicrosecond = 2000.0

// Thread lanes within one trace process (= one simulation run). Perfetto
// renders each as a named track.
const (
	TIDPlatform int32 = 1 // converge passes, measurement intervals, churn
	TIDDriver   int32 = 2 // OS-side driver / KSM kthread: fills, walks, merges
	TIDEngine   int32 = 3 // PageForge hardware: scan-table batch processing
	TIDRAS      int32 = 4 // UE/poison incidents, retries, degradation trips
	TIDScrub    int32 = 5 // patrol-scrub slices
)

// Event is one typed simulation event. TS and Dur are in cycles; Ph is
// the Chrome phase ('X' complete, 'i' instant). An optional single
// key/value argument covers the taxonomy's payloads (pass index, entry
// counts, frame numbers) without allocating a map per event.
type Event struct {
	TS     uint64
	Dur    uint64
	Ph     byte
	PID    int32
	TID    int32
	Cat    string
	Name   string
	ArgKey string
	ArgVal uint64
}

// Tracer records events into a bounded ring buffer. A nil *Tracer is the
// disabled state: every method no-ops, so call sites need no guards
// (hot paths may still branch on Enabled to avoid building Event values).
// Emission is synchronized — concurrently executing runs share one tracer,
// each under its own process id from NewProcess.
type Tracer struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
	meta    []metaEvent
	nextPID int32
}

// metaEvent names a process or thread ('M' phase). Kept outside the ring
// so wraparound never drops naming.
type metaEvent struct {
	name string // "process_name" or "thread_name"
	pid  int32
	tid  int32
	arg  string
}

// DefaultTraceCapacity bounds the ring when NewTracer is given no size.
const DefaultTraceCapacity = 1 << 16

// NewTracer returns a tracer retaining the last capacity events
// (DefaultTraceCapacity if capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// Enabled reports whether tracing is on; nil-safe, so hot paths can guard
// event construction with one branch.
func (t *Tracer) Enabled() bool { return t != nil }

// NewProcess allocates a process id for one simulation run and names it.
func (t *Tracer) NewProcess(name string) int32 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextPID++
	pid := t.nextPID
	t.meta = append(t.meta, metaEvent{name: "process_name", pid: pid, arg: name})
	return pid
}

// NameThread labels a thread lane within a process.
func (t *Tracer) NameThread(pid, tid int32, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.meta = append(t.meta, metaEvent{name: "thread_name", pid: pid, tid: tid, arg: name})
}

// Emit records one event, overwriting the oldest when the ring is full.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.full {
		t.dropped++
	}
	t.buf[t.next] = e
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Dropped reports how many events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports how many events the ring currently retains.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.buf)
	}
	return t.next
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Event, t.next)
		copy(out, t.buf[:t.next])
		return out
	}
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.next:]...)
	out = append(out, t.buf[:t.next]...)
	return out
}

// traceEvent is the Chrome trace_event JSON shape.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int32          `json:"pid"`
	TID  int32          `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON Object Format of the trace_event spec; Perfetto
// and chrome://tracing both accept it.
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteJSON serializes the trace in Chrome trace_event JSON object format.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	meta := append([]metaEvent(nil), t.meta...)
	dropped := t.dropped
	t.mu.Unlock()
	events := t.Events()

	out := traceFile{DisplayTimeUnit: "ms", TraceEvents: make([]traceEvent, 0, len(meta)+len(events))}
	if dropped > 0 {
		out.OtherData = map[string]any{"droppedEvents": dropped}
	}
	for _, m := range meta {
		out.TraceEvents = append(out.TraceEvents, traceEvent{
			Name: m.name,
			Ph:   "M",
			PID:  m.pid,
			TID:  m.tid,
			Args: map[string]any{"name": m.arg},
		})
	}
	for _, e := range events {
		te := traceEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   string(e.Ph),
			TS:   float64(e.TS) / CyclesPerMicrosecond,
			PID:  e.PID,
			TID:  e.TID,
		}
		if e.Ph == 'X' {
			dur := float64(e.Dur) / CyclesPerMicrosecond
			te.Dur = &dur
		}
		if e.Ph == 'i' {
			te.S = "t" // thread-scoped instant
		}
		if e.ArgKey != "" {
			te.Args = map[string]any{e.ArgKey: e.ArgVal}
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Scope binds a tracer to one run's process id so instrumented components
// hold a single value. The zero Scope is disabled.
type Scope struct {
	T   *Tracer
	PID int32
}

// Enabled reports whether this scope traces.
func (s Scope) Enabled() bool { return s.T != nil }

// Complete emits an 'X' (duration) event.
func (s Scope) Complete(tid int32, cat, name string, start, dur uint64, argKey string, argVal uint64) {
	if s.T == nil {
		return
	}
	s.T.Emit(Event{TS: start, Dur: dur, Ph: 'X', PID: s.PID, TID: tid, Cat: cat, Name: name, ArgKey: argKey, ArgVal: argVal})
}

// Instant emits an 'i' (point-in-time) event.
func (s Scope) Instant(tid int32, cat, name string, ts uint64, argKey string, argVal uint64) {
	if s.T == nil {
		return
	}
	s.T.Emit(Event{TS: ts, Ph: 'i', PID: s.PID, TID: tid, Cat: cat, Name: name, ArgKey: argKey, ArgVal: argVal})
}
