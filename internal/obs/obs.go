// Package obs is the unified observability layer of the simulator: a
// metrics registry (typed counters, gauges, and a streaming log-bucketed
// histogram with cheap snapshot/diff semantics), and an event tracer that
// records typed simulation events into a bounded ring buffer and
// serializes them as Chrome trace_event JSON loadable in Perfetto.
//
// Ownership model: one Registry belongs to one simulation run and its
// metric handles are NOT synchronized — a run is single-goroutine, and
// the parallel suite runner gives every run its own registry, so snapshots
// are race-free by construction. The Tracer, in contrast, IS shared across
// concurrently executing runs (each registers its own trace process), so
// it synchronizes internally. A nil *Tracer is fully functional and free:
// every method is nil-safe and tracing-off costs one predicted branch.
package obs

import "sync"

// Counter is a monotonically increasing uint64 metric. Handles are owned
// by a single goroutine (see the package comment).
type Counter struct {
	v uint64
}

// Add increases the counter by delta.
func (c *Counter) Add(delta uint64) { c.v += delta }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.v++ }

// Set overwrites the value — used when publishing an externally maintained
// cumulative statistic (a module's stats struct) into the registry.
func (c *Counter) Set(v uint64) { c.v = v }

// Value reports the current value.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous float64 metric (a rate, a ratio, a level).
type Gauge struct {
	v float64
}

// Set overwrites the gauge.
func (g *Gauge) Set(v float64) { g.v = v }

// Value reports the current value.
func (g *Gauge) Value() float64 { return g.v }

// Registry is a named bag of metrics. Registration (the Counter / Gauge /
// Histogram lookups) is synchronized so layers can lazily register from
// anywhere; the returned handles are not — they belong to the run's
// goroutine.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram()
		r.hists[name] = h
	}
	return h
}

// HasCounter reports whether a counter with the name has been registered.
// Publishers that elide zero-valued families on first publish use it to
// keep re-publishing a name once it exists: a replayed pass after a crash
// restore would otherwise leave a stale future value in the registry.
func (r *Registry) HasCounter(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.counters[name]
	return ok
}

// SetCounter is shorthand for Counter(name).Set(v), the idiom for
// publishing a module's cumulative stats struct at end of run.
func (r *Registry) SetCounter(name string, v uint64) { r.Counter(name).Set(v) }

// SetGauge is shorthand for Gauge(name).Set(v).
func (r *Registry) SetGauge(name string, v float64) { r.Gauge(name).Set(v) }

// Snapshot captures every registered metric. The result is deterministic
// for a deterministic run (map key order does not leak: JSON encoding
// sorts keys, and Diff matches by name).
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a registry's metrics, the unit of
// machine-readable metric output (platform.Result.Metrics, -metrics).
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Diff returns the change from prev to s: counters subtract (a name
// missing from prev counts from zero), gauges keep their current value
// (instantaneous by nature), histograms subtract bucket-wise with the
// distribution summary recomputed over the window's buckets.
func (s *Snapshot) Diff(prev *Snapshot) *Snapshot {
	out := &Snapshot{
		Counters:   make(map[string]uint64, len(s.Counters)),
		Gauges:     make(map[string]float64, len(s.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		var p uint64
		if prev != nil {
			p = prev.Counters[name]
		}
		out.Counters[name] = v - p
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Histograms {
		var p HistogramSnapshot
		if prev != nil {
			p = prev.Histograms[name]
		}
		out.Histograms[name] = h.Diff(p)
	}
	return out
}
