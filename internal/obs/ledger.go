package obs

import (
	"encoding/json"
	"io"
)

// LedgerSchema versions the explain/ledger artifact's JSON shape.
const LedgerSchema = "pageforge-ledger/v1"

// LedgerKind is one merge-lifecycle transition of a physical frame (or of
// one guest mapping of it).
type LedgerKind uint8

const (
	LKScanned     LedgerKind = iota // candidate entered Algorithm 1
	LKUnstable                      // inserted into the unstable tree
	LKStable                        // frame promoted into the stable tree
	LKMerged                        // guest page remapped onto a duplicate frame
	LKMergeFailed                   // a positive match failed the final verify
	LKChurned                       // hash key changed since last pass; dropped
	LKCoWBroken                     // guest write gave the mapping a private copy
	LKQuarantined                   // UE policy withdrew the frame from hardware
	LKEvicted                       // mapping released (teardown, churn)
	LKBallooned                     // mapping reclaimed by the balloon under pressure
	LKShed                          // a whole scan pass shed by backpressure
	LKRestored                      // crash-recovery marker: replay resumes here
)

var ledgerKindNames = [...]string{
	"scanned", "unstable", "stable", "merged", "merge_failed", "churned",
	"cow_broken", "quarantined", "evicted", "ballooned", "shed", "restored",
}

// String names the kind for reports and JSON.
func (k LedgerKind) String() string {
	if int(k) < len(ledgerKindNames) {
		return ledgerKindNames[k]
	}
	return "unknown"
}

// LedgerCause classifies why scan work was wasted — the attribution axis of
// the efficiency report. CauseNone marks productive transitions.
type LedgerCause uint8

const (
	CauseNone                LedgerCause = iota
	CauseContentChurn                    // page contents changed between passes
	CauseChecksumInstability             // match found, final verify lost the race
	CauseFaultRetry                      // hardware aborted on an uncorrectable error
	CauseBackpressureShed                // pressure ladder paused scanning
)

var ledgerCauseNames = [...]string{
	"none", "content_churn", "checksum_instability", "fault_retry", "backpressure_shed",
}

// String names the cause for reports and JSON.
func (c LedgerCause) String() string {
	if int(c) < len(ledgerCauseNames) {
		return ledgerCauseNames[c]
	}
	return "unknown"
}

// LedgerNoPFN marks events that are not about a specific frame (pass-level
// sheds, restore markers).
const LedgerNoPFN = ^uint64(0)

// LedgerEvent is one recorded transition. Seq is the global emission order
// and Pass the convergence pass (or ConvergePasses+interval during
// measurement) it happened in; both are stamped by Append. PFN is the frame
// the event is about; for merges and CoW breaks Arg carries the destination
// frame, so a frame's history alone reconstructs where its mappings went.
// VM/GFN name the guest mapping involved (VM is -1 when unknown).
type LedgerEvent struct {
	Seq   uint64
	Pass  int
	Kind  LedgerKind
	Cause LedgerCause
	VM    int
	GFN   uint64
	PFN   uint64
	Arg   uint64
}

// MarshalJSON renders kind/cause as names, not enum ordinals.
func (e LedgerEvent) MarshalJSON() ([]byte, error) {
	out := struct {
		Seq   uint64 `json:"seq"`
		Pass  int    `json:"pass"`
		Kind  string `json:"kind"`
		Cause string `json:"cause,omitempty"`
		VM    int    `json:"vm"`
		GFN   uint64 `json:"gfn"`
		PFN   uint64 `json:"pfn"`
		Arg   uint64 `json:"arg,omitempty"`
	}{Seq: e.Seq, Pass: e.Pass, Kind: e.Kind.String(), VM: e.VM, GFN: e.GFN, PFN: e.PFN, Arg: e.Arg}
	if e.Cause != CauseNone {
		out.Cause = e.Cause.String()
	}
	return json.Marshal(out)
}

// DefaultLedgerCapacity bounds the event ring when NewLedger is given no
// size.
const DefaultLedgerCapacity = 1 << 17

// Ledger is one run's merge-lifecycle event log: a bounded ring of
// LedgerEvents in emission order, with drop counting when it wraps. Like a
// Registry it is per-run and unsynchronized — the platform owns it on the
// run goroutine, and parallel scan workers never touch it directly (their
// events ride per-shard accumulators that the scanner flushes in canonical
// shard order at the join, so the event sequence is deterministic at any
// worker count). A nil *Ledger is the disabled state: every method no-ops.
type Ledger struct {
	buf     []LedgerEvent
	next    int
	full    bool
	seq     uint64
	pass    int
	dropped uint64
}

// NewLedger returns a ledger retaining the last capacity events
// (DefaultLedgerCapacity if capacity <= 0).
func NewLedger(capacity int) *Ledger {
	if capacity <= 0 {
		capacity = DefaultLedgerCapacity
	}
	return &Ledger{buf: make([]LedgerEvent, 0, capacity)}
}

// Enabled reports whether the ledger records; nil-safe, so seams guard
// event construction with one branch.
func (l *Ledger) Enabled() bool { return l != nil }

// SetPass sets the pass stamp for subsequently appended events.
func (l *Ledger) SetPass(p int) {
	if l != nil {
		l.pass = p
	}
}

// Append records one event, stamping its sequence number and current pass.
func (l *Ledger) Append(e LedgerEvent) {
	if l == nil {
		return
	}
	l.seq++
	e.Seq = l.seq
	e.Pass = l.pass
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, e)
		return
	}
	l.dropped++
	l.buf[l.next] = e
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
	}
	l.full = true
}

// AppendAll records a batch of buffered events in order — the flush path
// for per-shard scan accumulators.
func (l *Ledger) AppendAll(evs []LedgerEvent) {
	if l == nil {
		return
	}
	for _, e := range evs {
		l.Append(e)
	}
}

// Dropped reports how many events the ring has overwritten.
func (l *Ledger) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Len reports how many events the ring currently retains.
func (l *Ledger) Len() int {
	if l == nil {
		return 0
	}
	return len(l.buf)
}

// Events returns the retained events in emission order.
func (l *Ledger) Events() []LedgerEvent {
	if l == nil {
		return nil
	}
	if !l.full {
		out := make([]LedgerEvent, len(l.buf))
		copy(out, l.buf)
		return out
	}
	out := make([]LedgerEvent, 0, len(l.buf))
	out = append(out, l.buf[l.next:]...)
	out = append(out, l.buf[:l.next]...)
	return out
}

// FrameHistory replays the retained events touching one frame — either as
// the subject (PFN) or as the destination of a merge or CoW copy (Arg) — in
// emission order. This is what `pageforge explain -pfn` renders.
func (l *Ledger) FrameHistory(pfn uint64) []LedgerEvent {
	var out []LedgerEvent
	for _, e := range l.Events() {
		if e.PFN == pfn || ((e.Kind == LKMerged || e.Kind == LKCoWBroken) && e.Arg == pfn) {
			out = append(out, e)
		}
	}
	return out
}

// Attribution aggregates the retained events by kind and wasted-work cause.
type Attribution struct {
	Events  uint64            `json:"events"`
	Dropped uint64            `json:"dropped"`
	Kinds   map[string]uint64 `json:"kinds,omitempty"`
	Causes  map[string]uint64 `json:"causes,omitempty"`
}

// Attribution computes the kind/cause breakdown of the retained events.
func (l *Ledger) Attribution() Attribution {
	at := Attribution{Dropped: l.Dropped()}
	evs := l.Events()
	if len(evs) == 0 {
		return at
	}
	at.Kinds = make(map[string]uint64)
	for _, e := range evs {
		at.Events++
		at.Kinds[e.Kind.String()]++
		if e.Cause != CauseNone {
			if at.Causes == nil {
				at.Causes = make(map[string]uint64)
			}
			at.Causes[e.Cause.String()]++
		}
	}
	return at
}

// --- Crash-checkpoint state --------------------------------------------------

// LedgerState is the ledger's full checkpointable state: plain data, no
// maps, byte-deterministic under the snapshot codec.
type LedgerState struct {
	Events  []LedgerEvent // emission order
	Seq     uint64
	Pass    int
	Dropped uint64
}

// State captures the ledger for a checkpoint.
func (l *Ledger) State() LedgerState {
	if l == nil {
		return LedgerState{}
	}
	return LedgerState{Events: l.Events(), Seq: l.seq, Pass: l.pass, Dropped: l.dropped}
}

// SetState rewinds the ledger to a checkpointed state.
func (l *Ledger) SetState(st LedgerState) {
	if l == nil {
		return
	}
	l.buf = l.buf[:0]
	l.next = 0
	l.full = false
	l.seq = st.Seq
	l.pass = st.Pass
	l.dropped = st.Dropped
	l.buf = append(l.buf, st.Events...)
}

// --- JSON export -------------------------------------------------------------

type ledgerFileJSON struct {
	Schema      string        `json:"schema"`
	Attribution Attribution   `json:"attribution"`
	Events      []LedgerEvent `json:"events"`
}

// WriteJSON serializes the full ledger with its attribution summary.
func (l *Ledger) WriteJSON(w io.Writer) error {
	out := ledgerFileJSON{Schema: LedgerSchema, Attribution: l.Attribution(), Events: l.Events()}
	if out.Events == nil {
		out.Events = []LedgerEvent{}
	}
	return json.NewEncoder(w).Encode(out)
}
