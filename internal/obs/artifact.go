package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file is the read side of the observability artifacts: `pageforge
// report` consumes a -series file (and optionally an explain-exported ledger
// file) long after the run that produced them is gone, so the on-disk shapes
// get exported parse types with schema validation. The *File types mirror the
// writers' JSON field-for-field; keep them in lockstep with series.go and
// ledger.go.

// SeriesFilePoint is one sampled window as stored in a -series artifact:
// per-window counter deltas, instantaneous gauges, and the derived
// per-megacycle rates the writer adds at export time.
type SeriesFilePoint struct {
	Phase        string             `json:"phase"`
	Index        int                `json:"index"`
	Cycles       uint64             `json:"cycles"`
	WindowCycles uint64             `json:"windowCycles"`
	Counters     map[string]uint64  `json:"counters,omitempty"`
	Gauges       map[string]float64 `json:"gauges,omitempty"`
	Rates        map[string]float64 `json:"ratesPerMcycle,omitempty"`
}

// SeriesFileTrack is one run's point sequence as stored in the artifact.
type SeriesFileTrack struct {
	Name    string            `json:"name"`
	Dropped uint64            `json:"dropped"`
	Points  []SeriesFilePoint `json:"points"`
}

// SeriesFile is a parsed -series artifact.
type SeriesFile struct {
	Schema string            `json:"schema"`
	Tracks []SeriesFileTrack `json:"tracks"`
}

// ReadSeriesJSON parses a -series artifact, rejecting unknown schemas.
func ReadSeriesJSON(r io.Reader) (*SeriesFile, error) {
	var f SeriesFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: series artifact: %w", err)
	}
	if f.Schema != SeriesSchema {
		return nil, fmt.Errorf("obs: series artifact schema %q, want %q", f.Schema, SeriesSchema)
	}
	return &f, nil
}

// LedgerFileEvent is one provenance event as stored in a ledger artifact
// (kind and cause by name, the way LedgerEvent marshals).
type LedgerFileEvent struct {
	Seq   uint64 `json:"seq"`
	Pass  int    `json:"pass"`
	Kind  string `json:"kind"`
	Cause string `json:"cause,omitempty"`
	VM    int    `json:"vm"`
	GFN   uint64 `json:"gfn"`
	PFN   uint64 `json:"pfn"`
	Arg   uint64 `json:"arg,omitempty"`
}

// LedgerFile is a parsed ledger artifact (`pageforge explain -json`).
type LedgerFile struct {
	Schema      string            `json:"schema"`
	Attribution Attribution       `json:"attribution"`
	Events      []LedgerFileEvent `json:"events"`
}

// ReadLedgerJSON parses a ledger artifact, rejecting unknown schemas.
func ReadLedgerJSON(r io.Reader) (*LedgerFile, error) {
	var f LedgerFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("obs: ledger artifact: %w", err)
	}
	if f.Schema != LedgerSchema {
		return nil, fmt.Errorf("obs: ledger artifact schema %q, want %q", f.Schema, LedgerSchema)
	}
	return &f, nil
}
