package obs

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"
)

func TestRegistrySnapshotDeterminism(t *testing.T) {
	build := func() *Snapshot {
		r := NewRegistry()
		r.Counter("memctrl/demand_reads").Add(100)
		r.Counter("dram/row_hits").Set(42)
		r.SetCounter("cache/l3_misses", 7)
		r.SetGauge("faults/ue_rate", 1e-6)
		h := r.Histogram("platform/demand_latency_cycles")
		for i := 0; i < 1000; i++ {
			h.Add(float64(20 + i%300))
		}
		return r.Snapshot()
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical runs produced different snapshots")
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("snapshot JSON not byte-identical")
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("counter handle not stable")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("gauge handle not stable")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram handle not stable")
	}
	r.Counter("x").Inc()
	r.Counter("x").Add(4)
	if got := r.Counter("x").Value(); got != 5 {
		t.Fatalf("counter=%d want 5", got)
	}
}

func TestSnapshotDiff(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reads")
	g := r.Gauge("rate")
	c.Add(10)
	g.Set(0.5)
	before := r.Snapshot()
	c.Add(90)
	g.Set(0.9)
	diff := r.Snapshot().Diff(before)
	if diff.Counters["reads"] != 90 {
		t.Fatalf("diff counter=%d want 90", diff.Counters["reads"])
	}
	if diff.Gauges["rate"] != 0.9 {
		t.Fatalf("diff gauge=%g want 0.9 (instantaneous)", diff.Gauges["rate"])
	}
	// Diff against nil treats prev as zero.
	full := r.Snapshot().Diff(nil)
	if full.Counters["reads"] != 100 {
		t.Fatalf("diff(nil) counter=%d want 100", full.Counters["reads"])
	}
}

// TestRegistryConcurrentRegistration exercises the registration lock under
// -race: many goroutines lazily registering (each mutating only its own
// metric, per the ownership model).
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := string(rune('a' + g))
			c := r.Counter("c/" + name)
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
			h := r.Histogram("h/" + name)
			for i := 0; i < 100; i++ {
				h.Add(float64(i))
			}
			r.Gauge("g/" + name).Set(float64(g))
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if len(s.Counters) != 16 || len(s.Histograms) != 16 || len(s.Gauges) != 16 {
		t.Fatalf("lost registrations: %d/%d/%d", len(s.Counters), len(s.Histograms), len(s.Gauges))
	}
	for name, v := range s.Counters {
		if v != 1000 {
			t.Fatalf("%s=%d want 1000", name, v)
		}
	}
}
