package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestSeriesSampleDeltas(t *testing.T) {
	s := NewSeries(16)
	tr := s.Track("KSM/app")
	reg := NewRegistry()
	reg.SetCounter("a/x", 10)
	reg.SetCounter("a/y", 5)
	reg.SetGauge("g/v", 1.5)
	tr.Sample("converge", 0, 100, reg)

	reg.SetCounter("a/x", 25) // +15
	reg.SetCounter("a/y", 5)  // +0 -> elided
	reg.SetGauge("g/v", 2.5)
	tr.Sample("converge", 1, 160, reg)

	pts := tr.Points()
	if len(pts) != 2 {
		t.Fatalf("points=%d want 2", len(pts))
	}
	// First sample of a phase has no window (no prior sample to delta from);
	// counters still count from zero.
	if pts[0].WindowCycles != 0 {
		t.Fatalf("first window=%d want 0", pts[0].WindowCycles)
	}
	if pts[0].Counters["a/x"] != 10 || pts[0].Counters["a/y"] != 5 {
		t.Fatalf("first counters=%v", pts[0].Counters)
	}
	if pts[1].WindowCycles != 60 {
		t.Fatalf("second window=%d want 60", pts[1].WindowCycles)
	}
	if pts[1].Counters["a/x"] != 15 {
		t.Fatalf("a/x delta=%d want 15", pts[1].Counters["a/x"])
	}
	if _, ok := pts[1].Counters["a/y"]; ok {
		t.Fatal("zero delta not elided")
	}
	if pts[1].Gauges["g/v"] != 2.5 {
		t.Fatalf("gauge=%g want 2.5", pts[1].Gauges["g/v"])
	}
}

// TestSeriesPhaseEpochReset: convergence and measurement run on different
// clock epochs, so the first sample of a new phase must carry a zero window
// instead of a cross-epoch delta.
func TestSeriesPhaseEpochReset(t *testing.T) {
	s := NewSeries(8)
	tr := s.Track("t")
	reg := NewRegistry()
	tr.Sample("converge", 0, 500, reg)
	tr.Sample("measure", 0, 1<<44, reg) // new epoch, far from the converge clock
	tr.Sample("measure", 1, 1<<44+10, reg)
	pts := tr.Points()
	if pts[1].WindowCycles != 0 {
		t.Fatalf("cross-phase window=%d want 0", pts[1].WindowCycles)
	}
	if pts[2].WindowCycles != 10 {
		t.Fatalf("in-phase window=%d want 10", pts[2].WindowCycles)
	}
}

func TestSeriesRingWraparound(t *testing.T) {
	s := NewSeries(4)
	tr := s.Track("t")
	reg := NewRegistry()
	for i := 0; i < 10; i++ {
		tr.Sample("converge", i, uint64(i*10), reg)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped=%d want 6", tr.Dropped())
	}
	pts := tr.Points()
	if len(pts) != 4 {
		t.Fatalf("points=%d want 4", len(pts))
	}
	for i, p := range pts {
		if want := 6 + i; p.Index != want {
			t.Fatalf("point %d index=%d want %d (order broken)", i, p.Index, want)
		}
	}
}

func TestSeriesStateRoundTrip(t *testing.T) {
	s := NewSeries(8)
	tr := s.Track("t")
	reg := NewRegistry()
	reg.SetCounter("a/x", 3)
	reg.SetGauge("g/v", 7)
	tr.Sample("converge", 0, 10, reg)
	reg.SetCounter("a/x", 9)
	tr.Sample("converge", 1, 30, reg)

	st := tr.State()
	other := NewSeries(8).Track("t")
	other.SetState(st)
	if !reflect.DeepEqual(tr.Points(), other.Points()) {
		t.Fatalf("points diverged after round trip:\n%+v\n%+v", tr.Points(), other.Points())
	}
	// The delta baseline must survive too: the next sample on both tracks
	// has to produce identical points.
	reg.SetCounter("a/x", 14)
	tr.Sample("converge", 2, 45, reg)
	other.Sample("converge", 2, 45, reg)
	a, b := tr.Points(), other.Points()
	if !reflect.DeepEqual(a[len(a)-1], b[len(b)-1]) {
		t.Fatalf("post-restore sample diverged: %+v vs %+v", a[len(a)-1], b[len(b)-1])
	}
}

func TestSeriesNilIsNoop(t *testing.T) {
	var s *Series
	if s.Enabled() {
		t.Fatal("nil series enabled")
	}
	if s.Track("x") != nil {
		t.Fatal("nil series returned a track")
	}
	if s.TrackNames() != nil {
		t.Fatal("nil series has track names")
	}
	var tr *SeriesTrack
	tr.Sample("converge", 0, 0, NewRegistry()) // must not panic
	if tr.Enabled() || tr.Points() != nil || tr.Dropped() != 0 {
		t.Fatal("nil track leaked state")
	}
	tr.SetState(SeriesTrackState{})
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestSeriesJSONRoundTrip writes the artifact and parses it back through
// the exported reader, checking schema, rates, and shape.
func TestSeriesJSONRoundTrip(t *testing.T) {
	s := NewSeries(8)
	tr := s.Track("KSM/app")
	reg := NewRegistry()
	reg.SetCounter("vm/merges", 100)
	tr.Sample("converge", 0, 1000, reg)
	reg.SetCounter("vm/merges", 300) // +200 over 1000 cycles
	tr.Sample("converge", 1, 2000, reg)

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	f, err := ReadSeriesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != SeriesSchema {
		t.Fatalf("schema=%q", f.Schema)
	}
	if len(f.Tracks) != 1 || f.Tracks[0].Name != "KSM/app" || len(f.Tracks[0].Points) != 2 {
		t.Fatalf("shape wrong: %+v", f)
	}
	p := f.Tracks[0].Points[1]
	if p.Counters["vm/merges"] != 200 {
		t.Fatalf("delta=%d want 200", p.Counters["vm/merges"])
	}
	// 200 per 1000 cycles = 200000 per Mcycle.
	if rate := p.Rates["vm/merges"]; rate != 200000 {
		t.Fatalf("rate=%g want 200000", rate)
	}

	// MarshalJSON must produce the same artifact shape as WriteJSON.
	var direct bytes.Buffer
	if err := s.WriteJSON(&direct); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSeriesJSON(&direct); err != nil {
		t.Fatal(err)
	}

	// Unknown schemas are rejected.
	if _, err := ReadSeriesJSON(bytes.NewBufferString(`{"schema":"other/v9","tracks":[]}`)); err == nil {
		t.Fatal("unknown schema accepted")
	}
}
