// Package power is a small analytical area/power estimator in the spirit
// of McPAT, which the paper used for Table 5. Components are composed from
// per-technology constants for SRAM arrays, ALUs, and core logic at 22nm,
// with classic scaling rules for other nodes (area ~ node², power ~ node).
//
// Two SRAM densities are distinguished: small cache-like structures are
// dominated by peripheral overhead (tags, comparators, drivers), while
// multi-megabyte arrays amortize it — the reason a 512B Scan Table costs
// 0.020 mm²/KB while a 32MB L3 costs ~0.0016 mm²/KB.
package power

import "math"

// DeviceType selects the transistor flavor.
type DeviceType int

// Device types: high-performance logic vs. low-operating-power.
const (
	HighPerformance DeviceType = iota
	LowOperatingPower
)

// Tech is a technology point.
type Tech struct {
	NodeNM float64
	Type   DeviceType
}

// Tech22HP is the paper's evaluation node for PageForge and the server.
var Tech22HP = Tech{NodeNM: 22, Type: HighPerformance}

// Tech22LOP is the paper's node for the in-order-core comparison.
var Tech22LOP = Tech{NodeNM: 22, Type: LowOperatingPower}

// areaScale and powerScale translate 22nm constants to other nodes.
func (t Tech) areaScale() float64 {
	s := t.NodeNM / 22
	return s * s
}

func (t Tech) powerScale() float64 {
	s := t.NodeNM / 22
	if t.Type == LowOperatingPower {
		return s * 0.45 // LOP devices trade frequency for ~2x lower power
	}
	return s
}

// Estimate is an area/power result.
type Estimate struct {
	AreaMM2 float64
	PowerW  float64
}

// Add composes estimates.
func (e Estimate) Add(o Estimate) Estimate {
	return Estimate{e.AreaMM2 + o.AreaMM2, e.PowerW + o.PowerW}
}

// 22nm HP base constants (calibrated against McPAT-class outputs).
const (
	smallSRAMAreaPerKB  = 0.0195 // mm²/KB, cache-like structure with tags
	smallSRAMPowerPerKB = 0.055  // W/KB at full activity, 2GHz
	denseSRAMAreaPerKB  = 0.0016 // mm²/KB, large banked array
	denseSRAMPowerPerKB = 0.0006 // W/KB averaged (leakage-dominated)
	embeddedALUArea     = 0.019  // mm², 64-bit ALU + operand latches
	embeddedALUPower    = 0.018  // W at full activity, 2GHz
)

// SmallSRAM estimates a cache-like structure of the given size, active a
// fraction of cycles. The PageForge Scan Table is modeled conservatively as
// a 512B structure (Table 5) accessed nearly every cycle while scanning.
func SmallSRAM(t Tech, bytes int, activity float64) Estimate {
	kb := float64(bytes) / 1024
	return Estimate{
		AreaMM2: smallSRAMAreaPerKB * kb * t.areaScale(),
		PowerW:  smallSRAMPowerPerKB * kb * activity * t.powerScale(),
	}
}

// DenseSRAM estimates a large banked array (an L2/L3 slice).
func DenseSRAM(t Tech, bytes int) Estimate {
	kb := float64(bytes) / 1024
	return Estimate{
		AreaMM2: denseSRAMAreaPerKB * kb * t.areaScale(),
		PowerW:  denseSRAMPowerPerKB * kb * t.powerScale(),
	}
}

// ALU estimates one embedded-class 64-bit ALU at the given activity.
func ALU(t Tech, activity float64) Estimate {
	return Estimate{
		AreaMM2: embeddedALUArea * t.areaScale(),
		PowerW:  embeddedALUPower * activity * t.powerScale(),
	}
}

// PageForgeBreakdown is Table 5's decomposition.
type PageForgeBreakdown struct {
	ScanTable Estimate
	ALU       Estimate
	Total     Estimate
}

// PageForgeModule estimates the PageForge hardware: a 512B Scan Table
// (conservative: 31 Other Pages + PFE ≈ 260B of state) plus a 64-bit
// comparator/ALU and control. Activity reflects the near-continuous
// scanning of the deduplication process.
func PageForgeModule(t Tech) PageForgeBreakdown {
	st := SmallSRAM(t, 512, 1.0)
	alu := ALU(t, 0.5)
	return PageForgeBreakdown{ScanTable: st, ALU: alu, Total: st.Add(alu)}
}

// InOrderCore estimates an ARM A9-class in-order core with 32KB I + 32KB D
// L1 caches and no L2 — the paper's §4.3 alternative design point.
func InOrderCore(t Tech) Estimate {
	const coreLogicArea = 0.40 // mm² at 22nm
	const coreLogicPower = 0.52
	logic := Estimate{coreLogicArea * t.areaScale(), coreLogicPower * t.powerScale()}
	l1 := Estimate{
		// L1s are denser than tiny buffers, sparser than an L3.
		AreaMM2: 0.0058 * 64 * t.areaScale(),
		PowerW:  0.0047 * 64 * t.powerScale(),
	}
	return logic.Add(l1)
}

// OoOCore estimates one of the server's out-of-order cores including its
// private L1 and L2.
func OoOCore(t Tech) Estimate {
	return Estimate{8.2 * t.areaScale(), 13.0 * t.powerScale()}
}

// ServerChip estimates the Table 2 machine: cores, shared L3, memory
// controllers and IO.
func ServerChip(t Tech, cores int, l3Bytes int) Estimate {
	e := Estimate{}
	for i := 0; i < cores; i++ {
		e = e.Add(OoOCore(t))
	}
	e = e.Add(DenseSRAM(t, l3Bytes))
	// L3 switching power beyond leakage plus 2 MCs, bus, IO.
	uncore := Estimate{4.2 * t.areaScale(), 14.3 * t.powerScale()}
	return e.Add(uncore)
}

// Round rounds an estimate for table rendering.
func (e Estimate) Round(digits int) Estimate {
	p := math.Pow(10, float64(digits))
	return Estimate{math.Round(e.AreaMM2*p) / p, math.Round(e.PowerW*p) / p}
}
