package power

import (
	"math"
	"testing"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g ± %g", name, got, want, tol)
	}
}

func TestPageForgeModuleMatchesTable5(t *testing.T) {
	b := PageForgeModule(Tech22HP)
	approx(t, "scan table area", b.ScanTable.AreaMM2, 0.010, 0.001)
	approx(t, "scan table power", b.ScanTable.PowerW, 0.028, 0.001)
	approx(t, "ALU area", b.ALU.AreaMM2, 0.019, 0.001)
	approx(t, "ALU power", b.ALU.PowerW, 0.009, 0.001)
	approx(t, "total area", b.Total.AreaMM2, 0.029, 0.001)
	approx(t, "total power", b.Total.PowerW, 0.037, 0.001)
}

func TestInOrderCoreMatchesPaper(t *testing.T) {
	// §6.4.2: "a core similar to an ARM A9 ... requires 0.77 mm² and has a
	// TDP of 0.37 W, at 22nm and with low operating power devices."
	e := InOrderCore(Tech22LOP)
	approx(t, "A9 area", e.AreaMM2, 0.77, 0.02)
	approx(t, "A9 power", e.PowerW, 0.37, 0.02)
}

func TestServerChipMatchesPaper(t *testing.T) {
	// §6.4.2: "a server-grade architecture like ... Table 2 requires a
	// total of 138.6 mm² and has a TDP of 164 W."
	e := ServerChip(Tech22HP, 10, 32<<20)
	approx(t, "server area", e.AreaMM2, 138.6, 1.5)
	approx(t, "server power", e.PowerW, 164, 2)
}

func TestPageForgeIsNegligibleVsServer(t *testing.T) {
	pf := PageForgeModule(Tech22HP).Total
	server := ServerChip(Tech22HP, 10, 32<<20)
	if pf.AreaMM2/server.AreaMM2 > 0.001 {
		t.Fatal("PageForge area not negligible")
	}
	if pf.PowerW/server.PowerW > 0.001 {
		t.Fatal("PageForge power not negligible")
	}
}

func TestPageForgeOrderOfMagnitudeBelowInOrderCore(t *testing.T) {
	// §4.3: "PageForge uses negligible area and requires an order of
	// magnitude less power" than the in-order core alternative.
	pf := PageForgeModule(Tech22HP).Total
	a9 := InOrderCore(Tech22LOP)
	if a9.PowerW/pf.PowerW < 9 {
		t.Fatalf("power ratio %.1f, want ~10x", a9.PowerW/pf.PowerW)
	}
	if a9.AreaMM2/pf.AreaMM2 < 20 {
		t.Fatalf("area ratio %.1f, want >> 1", a9.AreaMM2/pf.AreaMM2)
	}
}

func TestNodeScaling(t *testing.T) {
	t45 := Tech{NodeNM: 45, Type: HighPerformance}
	small22 := SmallSRAM(Tech22HP, 1024, 1)
	small45 := SmallSRAM(t45, 1024, 1)
	wantArea := small22.AreaMM2 * (45.0 / 22) * (45.0 / 22)
	approx(t, "45nm area scaling", small45.AreaMM2, wantArea, 1e-9)
	if small45.PowerW <= small22.PowerW {
		t.Fatal("older node should burn more power")
	}
}

func TestActivityScalesPower(t *testing.T) {
	idle := SmallSRAM(Tech22HP, 512, 0.1)
	busy := SmallSRAM(Tech22HP, 512, 1.0)
	if idle.AreaMM2 != busy.AreaMM2 {
		t.Fatal("activity changed area")
	}
	approx(t, "activity power ratio", busy.PowerW/idle.PowerW, 10, 1e-9)
}

func TestAddAndRound(t *testing.T) {
	e := Estimate{1.234567, 2.345678}.Add(Estimate{1, 1})
	r := e.Round(2)
	approx(t, "rounded area", r.AreaMM2, 2.23, 1e-9)
	approx(t, "rounded power", r.PowerW, 3.35, 1e-9)
}

func TestDenseVsSmallSRAMDensity(t *testing.T) {
	small := SmallSRAM(Tech22HP, 32<<10, 1)
	dense := DenseSRAM(Tech22HP, 32<<10)
	if dense.AreaMM2 >= small.AreaMM2 {
		t.Fatal("dense array not denser than cache-like structure")
	}
}
