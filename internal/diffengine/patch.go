// Package diffengine implements Difference Engine-style memory savings
// (Gupta et al., OSDI 2008), which the paper's related work (§7.2) credits
// with pushing footprint reductions past 65%: identical pages are shared
// (as in KSM), *similar* pages are stored as byte-range patches against a
// reference page, and not-recently-used pages are compressed. The engine
// layers on the same hypervisor substrate as KSM and the ESX-style table,
// so the three approaches are directly comparable on one deployment.
package diffengine

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
)

// Patch encodes a page as byte-range edits against a reference page. The
// wire format is a sequence of (offset uint16, length uint16, data) runs;
// applying them to the reference reconstructs the page exactly.
type Patch struct {
	runs []patchRun
	size int // encoded bytes
}

type patchRun struct {
	off  uint16
	data []byte
}

// MakePatch diffs page against ref, coalescing edits closer than minGap
// bytes into one run (tiny gaps cost more in run headers than in data).
func MakePatch(ref, page []byte, minGap int) *Patch {
	if len(ref) != len(page) {
		panic("diffengine: patch requires equal-size pages")
	}
	if minGap < 1 {
		minGap = 8
	}
	p := &Patch{}
	i := 0
	for i < len(page) {
		if page[i] == ref[i] {
			i++
			continue
		}
		start := i
		last := i // last differing byte seen
		for i < len(page) {
			if page[i] != ref[i] {
				last = i
				i++
				continue
			}
			// Same byte: look ahead; stop the run if the gap is long.
			gap := 0
			for i+gap < len(page) && page[i+gap] == ref[i+gap] {
				gap++
				if gap >= minGap {
					break
				}
			}
			if gap >= minGap {
				break
			}
			i += gap
			// Bytes in the gap are equal but absorbed into the run.
		}
		run := patchRun{off: uint16(start), data: append([]byte(nil), page[start:last+1]...)}
		p.runs = append(p.runs, run)
		i = last + 1
	}
	p.size = p.encodedSize()
	return p
}

func (p *Patch) encodedSize() int {
	n := 2 // run count
	for _, r := range p.runs {
		n += 4 + len(r.data)
	}
	return n
}

// Size reports the encoded patch size in bytes.
func (p *Patch) Size() int { return p.size }

// Runs reports the number of edit runs.
func (p *Patch) Runs() int { return len(p.runs) }

// Apply reconstructs the page from the reference.
func (p *Patch) Apply(ref []byte) []byte {
	out := make([]byte, len(ref))
	copy(out, ref)
	for _, r := range p.runs {
		copy(out[r.off:], r.data)
	}
	return out
}

// Encode serializes the patch (round-trips with DecodePatch).
func (p *Patch) Encode() []byte {
	buf := make([]byte, 0, p.size)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(p.runs)))
	for _, r := range p.runs {
		buf = binary.LittleEndian.AppendUint16(buf, r.off)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.data)))
		buf = append(buf, r.data...)
	}
	return buf
}

// DecodePatch parses an encoded patch.
func DecodePatch(b []byte) (*Patch, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("diffengine: truncated patch header")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	p := &Patch{}
	for i := 0; i < n; i++ {
		if len(b) < 4 {
			return nil, fmt.Errorf("diffengine: truncated run %d header", i)
		}
		off := binary.LittleEndian.Uint16(b)
		l := int(binary.LittleEndian.Uint16(b[2:]))
		b = b[4:]
		if len(b) < l {
			return nil, fmt.Errorf("diffengine: truncated run %d data", i)
		}
		p.runs = append(p.runs, patchRun{off: off, data: append([]byte(nil), b[:l]...)})
		b = b[l:]
	}
	p.size = p.encodedSize()
	return p, nil
}

// Compress deflates a page (the Difference Engine compresses pages that
// are neither shareable nor patchable but have not been touched recently).
func Compress(page []byte) []byte {
	var buf bytes.Buffer
	w, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		panic(err) // invalid level only
	}
	w.Write(page)
	w.Close()
	return buf.Bytes()
}

// Decompress inflates a compressed page.
func Decompress(blob []byte, size int) ([]byte, error) {
	r := flate.NewReader(bytes.NewReader(blob))
	defer r.Close()
	out := make([]byte, size)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("diffengine: decompress: %w", err)
	}
	return out, nil
}
