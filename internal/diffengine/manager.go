package diffengine

import (
	"fmt"

	"repro/internal/esx"
	"repro/internal/mem"
	"repro/internal/vm"
)

// state classifies how a guest page is currently stored.
type state int

const (
	stateRegular    state = iota // its own frame
	stateShared                  // identical-sharing via the hypervisor (CoW)
	statePatched                 // frame released; stored as ref + patch
	stateCompressed              // frame released; stored as a flate blob
)

// record is the per-page Difference Engine bookkeeping.
type record struct {
	st      state
	refPFN  mem.PFN // patch reference frame (statePatched)
	patch   []byte  // encoded patch
	blob    []byte  // compressed page (stateCompressed)
	sigHits int     // similarity-signature matches observed
}

// Config tunes the engine.
type Config struct {
	// MaxPatchBytes: a patch bigger than this is not worth storing
	// (Difference Engine's patch threshold; default half a page).
	MaxPatchBytes int
	// SimilarBlocks is how many 64B block hashes form the similarity
	// signature (HashSimilarityDetector-style); SimilarMatch is how many
	// must coincide to consider two pages similar.
	SimilarBlocks int
	SimilarMatch  int
	// CompressMinRatio: only keep a compressed page if blob size is below
	// this fraction of the page (default 0.75).
	CompressMinRatio float64
	// MinGap coalesces nearby patch edits (see MakePatch).
	MinGap int
}

// DefaultConfig mirrors Difference Engine's published parameters in spirit.
func DefaultConfig() Config {
	return Config{
		MaxPatchBytes:    mem.PageSize / 2,
		SimilarBlocks:    4,
		SimilarMatch:     2,
		CompressMinRatio: 0.75,
		MinGap:           8,
	}
}

// Stats summarizes the engine's effect.
type Stats struct {
	SharedPages     uint64 // identical pages merged (hypervisor CoW)
	PatchedPages    uint64 // pages stored as patches
	CompressedPages uint64 // pages stored compressed
	PatchBytes      uint64 // total encoded patch bytes
	BlobBytes       uint64 // total compressed bytes
	Reconstructions uint64 // faults that rebuilt a patched/compressed page
	PatchRejects    uint64 // similar pair found but patch too large
}

// Manager runs Difference Engine over a hypervisor's mergeable pages.
// Guest accesses to patched/compressed pages must go through Read/Write,
// which reconstructs them (the "fault" path).
type Manager struct {
	HV  *vm.Hypervisor
	Cfg Config

	pages map[vm.PageID]*record
	// identical-sharing index: full-page hash -> shared frame.
	byHash map[uint64]mem.PFN
	// similarity index: block-hash -> reference page candidates.
	bySig map[uint64][]vm.PageID

	Stats Stats
}

// New builds a manager over the hypervisor.
func New(hv *vm.Hypervisor, cfg Config) *Manager {
	return &Manager{
		HV:     hv,
		Cfg:    cfg,
		pages:  make(map[vm.PageID]*record),
		byHash: make(map[uint64]mem.PFN),
		bySig:  make(map[uint64][]vm.PageID),
	}
}

func (m *Manager) rec(id vm.PageID) *record {
	r := m.pages[id]
	if r == nil {
		r = &record{}
		m.pages[id] = r
	}
	return r
}

// signature hashes SimilarBlocks fixed 64B blocks spread across the page.
func (m *Manager) signature(page []byte) []uint64 {
	sig := make([]uint64, m.Cfg.SimilarBlocks)
	stride := len(page) / m.Cfg.SimilarBlocks
	for i := range sig {
		block := page[i*stride : i*stride+64]
		sig[i] = esx.PageHash64(pad(block))
	}
	return sig
}

// pad grows a block to page size for reuse of the page hash (cheap enough
// at this scale and keeps one hash function in the system).
func pad(b []byte) []byte {
	out := make([]byte, mem.PageSize)
	copy(out, b)
	return out
}

// Sweep classifies every mergeable, resident, regular page once:
// identical → share; similar → patch; cold (per coldness predicate) →
// compress; else leave regular. Typical usage runs identical-sharing every
// sweep and passes a predicate selecting not-recently-used pages.
func (m *Manager) Sweep(isCold func(vm.PageID) bool) {
	for i := 0; i < m.HV.NumVMs(); i++ {
		v := m.HV.VM(i)
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			if !v.Mergeable(g) {
				continue
			}
			id := vm.PageID{VM: i, GFN: g}
			r := m.rec(id)
			if r.st != stateRegular {
				continue
			}
			pfn, ok := v.Resolve(g)
			if !ok {
				continue
			}
			frame := m.HV.Phys.Get(pfn)
			if frame.CoW() && frame.Refs() > 1 {
				r.st = stateShared
				continue
			}
			m.classify(id, r, pfn, isCold)
		}
	}
}

func (m *Manager) classify(id vm.PageID, r *record, pfn mem.PFN, isCold func(vm.PageID) bool) {
	page := m.HV.Phys.Page(pfn)

	// 1. Identical sharing.
	h := esx.PageHash64(page)
	if shared, ok := m.byHash[h]; ok && len(m.HV.Mappers(shared)) > 0 && shared != pfn {
		if same, _ := m.HV.Phys.SamePage(pfn, shared); same {
			if _, err := m.HV.Merge(id, shared); err == nil {
				r.st = stateShared
				m.Stats.SharedPages++
				return
			}
		}
	} else {
		m.byHash[h] = pfn
	}

	// 2. Similarity patching against an indexed reference.
	sig := m.signature(page)
	if ref, hits := m.findReference(id, sig); hits >= m.Cfg.SimilarMatch {
		if refPFN, ok := m.HV.Resolve(ref); ok && refPFN != pfn {
			patch := MakePatch(m.HV.Phys.Page(refPFN), page, m.Cfg.MinGap)
			if patch.Size() <= m.Cfg.MaxPatchBytes {
				r.st = statePatched
				r.refPFN = refPFN
				r.patch = patch.Encode()
				m.Stats.PatchedPages++
				m.Stats.PatchBytes += uint64(len(r.patch))
				// Keep the reference frame alive and write-protect it: a
				// guest write to the reference page must CoW away so the
				// patch base stays intact (Difference Engine's rule).
				m.HV.Phys.IncRef(refPFN)
				m.HV.WriteProtect(refPFN)
				m.HV.VM(id.VM).Release(id.GFN)
				return
			}
			m.Stats.PatchRejects++
		}
	}
	for _, s := range sig {
		m.bySig[s] = append(m.bySig[s], id)
	}

	// 3. Compression of cold pages.
	if isCold != nil && isCold(id) {
		blob := Compress(page)
		if float64(len(blob)) < m.Cfg.CompressMinRatio*float64(len(page)) {
			r.st = stateCompressed
			r.blob = blob
			m.Stats.CompressedPages++
			m.Stats.BlobBytes += uint64(len(blob))
			m.HV.VM(id.VM).Release(id.GFN)
		}
	}
}

// findReference returns the indexed page sharing the most signature blocks.
func (m *Manager) findReference(self vm.PageID, sig []uint64) (vm.PageID, int) {
	hits := map[vm.PageID]int{}
	for _, s := range sig {
		for _, cand := range m.bySig[s] {
			if cand != self {
				hits[cand]++
			}
		}
	}
	var best vm.PageID
	bestN := 0
	for id, n := range hits {
		// A reference must still be resident and regular.
		if r := m.pages[id]; r != nil && r.st != stateRegular {
			continue
		}
		if _, ok := m.HV.Resolve(id); !ok {
			continue
		}
		if n > bestN {
			best, bestN = id, n
		}
	}
	return best, bestN
}

// Read returns the page contents, reconstructing patched/compressed pages
// in place (the access fault of the Difference Engine).
func (m *Manager) Read(id vm.PageID) ([]byte, error) {
	if err := m.ensureResident(id); err != nil {
		return nil, err
	}
	return m.HV.VM(id.VM).Page(id.GFN)
}

// Write stores bytes at the offset, reconstructing first if needed.
func (m *Manager) Write(id vm.PageID, off int, data []byte) error {
	if err := m.ensureResident(id); err != nil {
		return err
	}
	_, err := m.HV.VM(id.VM).Write(id.GFN, off, data)
	return err
}

// ensureResident faults a patched or compressed page back into a frame.
func (m *Manager) ensureResident(id vm.PageID) error {
	r := m.rec(id)
	switch r.st {
	case stateRegular, stateShared:
		return nil
	case statePatched:
		patch, err := DecodePatch(r.patch)
		if err != nil {
			return err
		}
		if len(m.HV.Mappers(r.refPFN)) == 0 && m.HV.Phys.Get(r.refPFN).Refs() == 1 {
			// Only our hold remains; still valid as patch base.
			_ = r
		}
		page := patch.Apply(m.HV.Phys.Page(r.refPFN))
		m.Stats.PatchBytes -= uint64(len(r.patch))
		m.HV.Phys.DecRef(r.refPFN)
		r.patch = nil
		r.st = stateRegular
		m.Stats.Reconstructions++
		if _, err := m.HV.VM(id.VM).Write(id.GFN, 0, page); err != nil {
			return fmt.Errorf("diffengine: refault patched page: %w", err)
		}
		return nil
	case stateCompressed:
		page, err := Decompress(r.blob, mem.PageSize)
		if err != nil {
			return err
		}
		m.Stats.BlobBytes -= uint64(len(r.blob))
		r.blob = nil
		r.st = stateRegular
		m.Stats.Reconstructions++
		if _, err := m.HV.VM(id.VM).Write(id.GFN, 0, page); err != nil {
			return fmt.Errorf("diffengine: refault compressed page: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("diffengine: unknown state %d", r.st)
	}
}

// Savings reports the footprint reduction: physical frames plus patch and
// blob bytes, against one frame per resident-or-stored guest page.
type Savings struct {
	GuestPages     int
	Frames         int
	PatchKB        int
	BlobKB         int
	EffectivePages float64 // frames + (patch+blob bytes)/page size
	Fraction       float64
}

// MeasureSavings accounts the deployment's current footprint.
func (m *Manager) MeasureSavings() Savings {
	s := Savings{}
	for i := 0; i < m.HV.NumVMs(); i++ {
		v := m.HV.VM(i)
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			if !v.Mergeable(g) {
				continue
			}
			id := vm.PageID{VM: i, GFN: g}
			if _, ok := v.Resolve(g); ok {
				s.GuestPages++
			} else if r := m.pages[id]; r != nil && (r.st == statePatched || r.st == stateCompressed) {
				s.GuestPages++
			}
		}
	}
	s.Frames = m.HV.Phys.AllocatedFrames()
	patchBytes := m.Stats.PatchBytes
	blobBytes := m.Stats.BlobBytes
	s.PatchKB = int(patchBytes / 1024)
	s.BlobKB = int(blobBytes / 1024)
	s.EffectivePages = float64(s.Frames) + float64(patchBytes+blobBytes)/mem.PageSize
	if s.GuestPages > 0 {
		s.Fraction = 1 - s.EffectivePages/float64(s.GuestPages)
	}
	return s
}
