package diffengine

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// --- Patch format ------------------------------------------------------------

func TestPatchRoundTrip(t *testing.T) {
	ref := make([]byte, mem.PageSize)
	page := make([]byte, mem.PageSize)
	for i := range ref {
		ref[i] = byte(i)
		page[i] = byte(i)
	}
	// Three scattered edits.
	copy(page[100:], []byte("edit-one"))
	copy(page[2000:], []byte("second"))
	page[4095] = 0xFF
	p := MakePatch(ref, page, 8)
	if got := p.Apply(ref); !bytes.Equal(got, page) {
		t.Fatal("patch did not reconstruct the page")
	}
	dec, err := DecodePatch(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got := dec.Apply(ref); !bytes.Equal(got, page) {
		t.Fatal("decoded patch did not reconstruct")
	}
	if p.Size() > 200 {
		t.Fatalf("patch size %dB for ~16 edited bytes", p.Size())
	}
}

func TestPatchIdenticalPagesIsEmpty(t *testing.T) {
	ref := bytes.Repeat([]byte{7}, mem.PageSize)
	p := MakePatch(ref, ref, 8)
	if p.Runs() != 0 || p.Size() != 2 {
		t.Fatalf("identical pages: runs=%d size=%d", p.Runs(), p.Size())
	}
}

func TestPatchGapCoalescing(t *testing.T) {
	ref := make([]byte, mem.PageSize)
	page := make([]byte, mem.PageSize)
	// Two edits 4 bytes apart: with minGap 8 they coalesce into one run.
	page[100] = 1
	page[105] = 1
	if p := MakePatch(ref, page, 8); p.Runs() != 1 {
		t.Fatalf("runs = %d, want coalesced 1", p.Runs())
	}
	// With minGap 2 they stay separate.
	if p := MakePatch(ref, page, 2); p.Runs() != 2 {
		t.Fatalf("runs = %d, want 2", p.Runs())
	}
}

func TestPatchQuickRoundTrip(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		ref := make([]byte, mem.PageSize)
		r.FillBytes(ref)
		page := append([]byte(nil), ref...)
		// Random number of random edits.
		for e := 0; e < r.Intn(20); e++ {
			off := r.Intn(mem.PageSize - 32)
			n := 1 + r.Intn(32)
			chunk := make([]byte, n)
			r.FillBytes(chunk)
			copy(page[off:], chunk)
		}
		p := MakePatch(ref, page, 1+r.Intn(16))
		dec, err := DecodePatch(p.Encode())
		if err != nil {
			return false
		}
		return bytes.Equal(dec.Apply(ref), page)
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodePatchRejectsTruncation(t *testing.T) {
	ref := make([]byte, mem.PageSize)
	page := append([]byte(nil), ref...)
	page[10] = 1
	enc := MakePatch(ref, page, 8).Encode()
	for cut := 1; cut < len(enc); cut++ {
		if _, err := DecodePatch(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodePatch(nil); err == nil {
		t.Fatal("empty patch accepted")
	}
}

func TestCompressRoundTrip(t *testing.T) {
	// Compressible page (repeating content).
	page := bytes.Repeat([]byte("abcdefgh"), mem.PageSize/8)
	blob := Compress(page)
	if len(blob) >= mem.PageSize/4 {
		t.Fatalf("repetitive page compressed to %dB only", len(blob))
	}
	got, err := Decompress(blob, mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("decompress mismatch")
	}
}

// --- Manager -----------------------------------------------------------------

// build creates numVMs x pages deployment. Contents come from gen(vm, page)
// which returns a full page.
func build(t testing.TB, numVMs, pages int, gen func(v, g int) []byte) *vm.Hypervisor {
	t.Helper()
	h := vm.NewHypervisor(uint64(numVMs*pages*2+64) * mem.PageSize)
	for i := 0; i < numVMs; i++ {
		v := h.NewVM(uint64(pages) * mem.PageSize)
		v.Madvise(0, pages, true)
		for g := 0; g < pages; g++ {
			if _, err := v.Write(vm.GFN(g), 0, gen(i, g)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

func full(val byte) []byte { return bytes.Repeat([]byte{val}, mem.PageSize) }

// variant returns base content with a small per-VM delta (similar pages).
func variant(base byte, v int) []byte {
	p := full(base)
	copy(p[128*v:], []byte{0xF0, byte(v), 0xF0, byte(v)})
	return p
}

func TestManagerSharesIdenticalPages(t *testing.T) {
	h := build(t, 3, 2, func(v, g int) []byte { return full(byte(g + 1)) })
	m := New(h, DefaultConfig())
	m.Sweep(nil)
	if m.Stats.SharedPages != 4 {
		t.Fatalf("SharedPages = %d, want 4 (2 contents x 2 extra copies)", m.Stats.SharedPages)
	}
	if h.Phys.AllocatedFrames() != 2 {
		t.Fatalf("frames = %d, want 2", h.Phys.AllocatedFrames())
	}
}

func TestManagerPatchesSimilarPages(t *testing.T) {
	// Each VM holds a slightly different variant of the same base page.
	h := build(t, 4, 1, func(v, g int) []byte { return variant(0x33, v) })
	m := New(h, DefaultConfig())
	m.Sweep(nil)
	if m.Stats.PatchedPages == 0 {
		t.Fatalf("no pages patched; stats %+v", m.Stats)
	}
	s := m.MeasureSavings()
	if s.Fraction < 0.5 {
		t.Fatalf("similar-page savings %.2f, want > 0.5 (patches are tiny)", s.Fraction)
	}
	// Reconstruction returns the exact variant.
	for v := 0; v < 4; v++ {
		page, err := m.Read(vm.PageID{VM: v, GFN: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(page, variant(0x33, v)) {
			t.Fatalf("vm%d reconstructed wrong contents", v)
		}
	}
}

func TestManagerCompressesColdPages(t *testing.T) {
	// Unique but highly compressible pages.
	h := build(t, 2, 3, func(v, g int) []byte {
		p := bytes.Repeat([]byte{byte(10*v + g)}, mem.PageSize)
		p[0] = byte(v*16 + g + 1) // unique lead byte
		return p
	})
	m := New(h, DefaultConfig())
	m.Sweep(func(vm.PageID) bool { return true }) // everything is cold
	if m.Stats.CompressedPages == 0 {
		t.Fatalf("nothing compressed; stats %+v", m.Stats)
	}
	s := m.MeasureSavings()
	if s.Fraction < 0.5 {
		t.Fatalf("compression savings %.2f", s.Fraction)
	}
	// Read back one compressed page.
	id := vm.PageID{VM: 1, GFN: 2}
	page, err := m.Read(id)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{12}, mem.PageSize)
	want[0] = byte(1*16 + 2 + 1)
	if !bytes.Equal(page, want) {
		t.Fatal("decompressed page wrong")
	}
	if m.Stats.Reconstructions != 1 {
		t.Fatalf("Reconstructions = %d", m.Stats.Reconstructions)
	}
}

func TestReferenceWriteDoesNotCorruptPatches(t *testing.T) {
	// VM0's page becomes the reference; VM1's is patched against it. A
	// guest write to the reference must CoW away, leaving the patch base
	// intact.
	h := build(t, 2, 1, func(v, g int) []byte { return variant(0x55, v) })
	m := New(h, DefaultConfig())
	m.Sweep(nil)
	if m.Stats.PatchedPages != 1 {
		t.Fatalf("PatchedPages = %d, want 1", m.Stats.PatchedPages)
	}
	// The reference page is whichever is still resident.
	var refID, patchedID vm.PageID
	if _, ok := h.VM(0).Resolve(0); ok {
		refID, patchedID = vm.PageID{VM: 0, GFN: 0}, vm.PageID{VM: 1, GFN: 0}
	} else {
		refID, patchedID = vm.PageID{VM: 1, GFN: 0}, vm.PageID{VM: 0, GFN: 0}
	}
	refVariant := variant(0x55, refID.VM)
	patchedVariant := variant(0x55, patchedID.VM)

	// Scribble over the reference through the guest.
	if err := m.Write(refID, 0, bytes.Repeat([]byte{0xEE}, 256)); err != nil {
		t.Fatal(err)
	}
	// The patched page still reconstructs its original contents.
	page, err := m.Read(patchedID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(page, patchedVariant) {
		t.Fatal("reference write corrupted the patched page")
	}
	// And the reference guest sees its own write.
	refPage, err := m.Read(refID)
	if err != nil {
		t.Fatal(err)
	}
	if refPage[0] != 0xEE {
		t.Fatal("reference lost its write")
	}
	_ = refVariant
}

func TestWriteToPatchedPageReconstructsFirst(t *testing.T) {
	h := build(t, 2, 1, func(v, g int) []byte { return variant(0x21, v) })
	m := New(h, DefaultConfig())
	m.Sweep(nil)
	var patchedID vm.PageID
	if _, ok := h.VM(0).Resolve(0); ok {
		patchedID = vm.PageID{VM: 1, GFN: 0}
	} else {
		patchedID = vm.PageID{VM: 0, GFN: 0}
	}
	if err := m.Write(patchedID, 10, []byte{0xAB}); err != nil {
		t.Fatal(err)
	}
	page, err := m.Read(patchedID)
	if err != nil {
		t.Fatal(err)
	}
	want := variant(0x21, patchedID.VM)
	want[10] = 0xAB
	if !bytes.Equal(page, want) {
		t.Fatal("write-after-patch lost data")
	}
}

func TestPatchRejectsDissimilarPages(t *testing.T) {
	// Pages sharing signature blocks but massively different elsewhere:
	// the patch exceeds MaxPatchBytes and must be rejected.
	r := sim.NewRNG(5)
	base := make([]byte, mem.PageSize)
	r.FillBytes(base)
	h := build(t, 2, 1, func(v, g int) []byte {
		p := append([]byte(nil), base...)
		if v == 1 {
			// Same signature blocks (offsets 0,1024,2048,3072 + 64) but
			// everything else rewritten.
			noise := make([]byte, mem.PageSize)
			r.FillBytes(noise)
			for i := 0; i < mem.PageSize; i++ {
				inSig := false
				for s := 0; s < 4; s++ {
					if i >= s*1024 && i < s*1024+64 {
						inSig = true
					}
				}
				if !inSig {
					p[i] = noise[i]
				}
			}
		}
		return p
	})
	m := New(h, DefaultConfig())
	m.Sweep(nil)
	if m.Stats.PatchedPages != 0 {
		t.Fatal("dissimilar page was patched")
	}
	if m.Stats.PatchRejects == 0 {
		t.Fatal("patch rejection not recorded")
	}
}

func TestSavingsAccountingConsistent(t *testing.T) {
	h := build(t, 4, 2, func(v, g int) []byte {
		if g == 0 {
			return full(9) // identical across VMs
		}
		return variant(0x44, v) // similar across VMs
	})
	m := New(h, DefaultConfig())
	m.Sweep(nil)
	s := m.MeasureSavings()
	if s.GuestPages != 8 {
		t.Fatalf("GuestPages = %d, want 8", s.GuestPages)
	}
	if s.EffectivePages >= float64(s.GuestPages) {
		t.Fatal("no savings measured")
	}
	if s.Fraction <= 0 || s.Fraction >= 1 {
		t.Fatalf("fraction = %g", s.Fraction)
	}
}
