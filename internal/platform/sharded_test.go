package platform

import (
	"reflect"
	"testing"
)

// TestShardedWorkerCountBitIdentical pins the tentpole invariant at the
// platform level: a KSM run whose convergence passes fan out across a
// worker pool must produce Results bit-identical to the same configuration
// with one worker. Run with -race to also certify the fan-out is clean.
func TestShardedWorkerCountBitIdentical(t *testing.T) {
	app := fastApp("img_dnn")
	base := fastConfig()
	base.ShardBits = 3

	cfg1 := base
	cfg1.ShardWorkers = 1
	one, err := Run(KSM, app, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := base
	cfg4.ShardWorkers = 4
	four, err := Run(KSM, app, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(one, four) {
		t.Fatalf("worker count changed results:\n1 worker: %+v\n4 workers: %+v", one, four)
	}
	if one.Footprint.Savings() <= 0 {
		t.Fatal("sharded KSM run produced no savings — nothing was exercised")
	}
}

// TestShardedMatchesMetricsOfSequential checks that turning sharding on
// with a single shard and one worker reproduces the classic sequential
// configuration's KSM scan metrics exactly (the degenerate path).
func TestShardedMatchesMetricsOfSequential(t *testing.T) {
	app := fastApp("silo")
	legacy, err := Run(KSM, app, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.ShardBits = 0
	cfg.ShardWorkers = 1 // parallel code path, single shard
	sharded, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ksm/bytes_touched", "ksm/dram_bytes", "ksm/pages_scanned"} {
		if legacy.Metrics.Counters[key] != sharded.Metrics.Counters[key] {
			t.Errorf("%s: legacy %d, sharded %d", key,
				legacy.Metrics.Counters[key], sharded.Metrics.Counters[key])
		}
	}
	if legacy.Footprint != sharded.Footprint {
		t.Fatalf("footprint diverged: %+v vs %+v", legacy.Footprint, sharded.Footprint)
	}
}
