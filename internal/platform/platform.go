// Package platform wires the full Table 2 machine: 10 out-of-order cores
// with the three-level cache hierarchy, the DDR memory system behind a
// memory controller hosting the PageForge module, 10 VMs (one per core)
// running a TailBench application, and the page-deduplication engine of the
// selected configuration. It runs the paper's three configurations —
// Baseline (no merging), KSM (software), PageForge (hardware) — through a
// converge-then-measure protocol and produces every statistic the
// evaluation section reports.
package platform

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/pressure"
	"repro/internal/sim"
	"repro/internal/tailbench"
)

// Mode selects the evaluated configuration.
type Mode int

// The paper's three configurations (§5.3).
const (
	Baseline Mode = iota
	KSM
	PageForge
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case KSM:
		return "KSM"
	case PageForge:
		return "PageForge"
	default:
		return "?"
	}
}

// Config assembles the machine and engine parameters.
type Config struct {
	Cores int // 10
	VMs   int // 10, one per core

	// SleepMillis and PagesToScan are the dedup tunables shared by KSM and
	// PageForge (Table 2: 5ms, 400).
	SleepMillis float64
	PagesToScan int

	// ShardBits selects 2^ShardBits content-prefix shards for the KSM
	// stable/unstable trees (0 = single tree pair, classic KSM — the
	// default, bit-identical to pre-sharding builds).
	ShardBits int
	// ShardWorkers, when > 0, runs KSM convergence passes through
	// Scanner.ScanPass with that many workers fanning out across shards.
	// Results are bit-identical at any worker count, including 1; 0 keeps
	// the legacy sequential candidate loop. The measurement phase always
	// scans sequentially (its batches interleave with application traffic
	// in simulated time).
	ShardWorkers int

	KSMCosts ksm.Costs
	Driver   pageforge.DriverConfig
	Hier     cache.HierarchyConfig
	DRAM     dram.Config

	// ConvergePasses caps the steady-state convergence phase.
	ConvergePasses int
	// MeasureIntervals is the number of 5ms work intervals in the
	// measurement phase.
	MeasureIntervals int
	// ZipfS is the kthread core-placement skew (Table 4's Max column).
	ZipfS float64

	// KthreadShare is the CPU fraction the dedup kthread receives while
	// resident on a core (CFS equal-weight timesharing: 0.5); KthreadSlice
	// is its scheduler migration granularity in cycles.
	KthreadShare float64
	KthreadSlice uint64

	// MemPeakGBps is the memory system's deliverable bandwidth (2 channels
	// of 1GHz DDR with a 64-bit data path at ~75% efficiency ≈ 24 GB/s),
	// used by the analytical utilization component of the latency model.
	MemPeakGBps float64

	// Faults configures the injected DRAM fault population (RAS). The zero
	// value injects nothing and leaves the machine bit-identical to a
	// fault-free run. When enabled, a patrol scrubber and the
	// PageForge→KSM degradation policy are armed alongside the model.
	Faults faults.Config
	// ScrubLinesPerInterval is the patrol scrubber's line budget per dedup
	// pass/interval (0 disables patrol scrub even under injected faults).
	ScrubLinesPerInterval int
	// DegradeTrip is the UE-rate policy that demotes PageForge to software
	// KSM; zero fields take the faults.DefaultTrip values.
	DegradeTrip faults.Trip

	// Pressure arms the memory-pressure resilience layer: overcommitted
	// arena sizing, an allocation-burst storm, the stall/balloon reclaim
	// protocol, watermark-driven scan backpressure, and the reversible
	// degradation ladder. The zero value (Enabled false) creates nothing
	// and leaves runs bit-identical to pre-pressure builds.
	Pressure pressure.Config

	// Crash schedules deterministic host crashes at convergence-pass
	// boundaries (see internal/faults.CrashConfig); CheckpointEvery
	// checkpoints the full simulator state every N convergence passes
	// (0 = boot checkpoint only). A crashed run restores the newest
	// checkpoint, verifies the recovered dedup index, and replays the lost
	// passes; its Result (minus the Crash report) is bit-identical to the
	// uninterrupted run's. Both zero values create nothing and leave runs
	// bit-identical to pre-crash builds.
	Crash           faults.CrashConfig
	CheckpointEvery int
	// RecoveryFailures injects that many recovery-verification failures
	// (test hook): each consumes one restore attempt, exercising the
	// retry/backoff, cold-rebuild, and KSM-fallback ladder.
	RecoveryFailures int

	// Trace, when non-nil, receives simulation events (batches, merges,
	// intervals, RAS incidents) for Chrome trace_event export. Tracing is
	// purely observational: a traced run produces bit-identical Results to
	// an untraced one. The tracer may be shared by parallel runs; each run
	// registers its own trace process.
	Trace *obs.Tracer

	// Series, when non-nil, receives one sample of the full metric registry
	// at every convergence-pass and measurement-interval boundary — windowed
	// counter deltas plus instantaneous gauges — under a per-run track named
	// "<mode>/<app>". Like Trace it is purely observational: a sampled run
	// produces bit-identical Results to an unsampled one, and the samples
	// live outside Result so the identity stays testable by DeepEqual.
	Series *obs.Series

	// Ledger, when non-nil, records the merge-lifecycle provenance stream:
	// every frame transition (scanned, unstable, stable, merged, CoW-broken,
	// quarantined, ballooned, shed, ...) with a wasted-work cause attached
	// where the transition is a failure. A ledger is per-run, never shared.
	// Purely observational — a ledgered run produces bit-identical Results
	// to an unledgered one.
	Ledger *obs.Ledger

	// Events schedules live workload events — VM spawn/kill, application
	// phase changes, balloon storms, fault storms, host crashes — at
	// convergence-pass boundaries. Each event applies at the top of its
	// pass, in Pass order (ties keep list order), exactly as if the same
	// event had been Injected into a streaming Runtime before that pass ran;
	// EvCrash entries fold into Crash.Passes at Start. Ignored by Baseline
	// (which runs no convergence passes).
	Events []Event

	// Verifier, when non-nil, receives model-based checking callbacks: once
	// at image build (BeginRun) and at every convergence pass and
	// measurement interval (Interval). A failed check aborts the run.
	// Verification is purely observational — a verified run produces
	// bit-identical Results to an unverified one.
	Verifier Verifier

	// MeasureL3 sizes the shared cache used during the measurement phase.
	// The sampled application/kthread streams are ~3 orders of magnitude
	// thinner than real traffic, so pollution fidelity requires scaling the
	// modeled L3 with them; 2MB against the sampled streams corresponds to
	// the 32MB L3 against full-rate traffic (see DESIGN.md).
	MeasureL3 cache.Config

	Seed uint64
}

// DefaultConfig is the paper's setup (Table 2).
func DefaultConfig() Config {
	return Config{
		Cores:                 10,
		VMs:                   10,
		SleepMillis:           5,
		PagesToScan:           400,
		KSMCosts:              ksm.DefaultCosts(),
		Driver:                pageforge.DefaultDriverConfig(),
		Hier:                  cache.DefaultHierarchyConfig(),
		DRAM:                  dram.DefaultConfig(),
		ConvergePasses:        25,
		MeasureIntervals:      40,
		ZipfS:                 1.2,
		MeasureL3:             cache.Config{SizeBytes: 2 << 20, Ways: 16},
		ScrubLinesPerInterval: 512,
		DegradeTrip:           faults.DefaultTrip(),
		KthreadShare:          0.5,
		KthreadSlice:          1_000_000,
		MemPeakGBps:           24,
		Seed:                  1,
	}
}

// IntervalCycles is one dedup work interval in cycles.
func (c Config) IntervalCycles() uint64 { return sim.MillisToCycles(c.SleepMillis) }

// Result carries everything the experiments extract from one run.
type Result struct {
	Mode Mode
	App  tailbench.Profile

	// Footprint is the Figure 7 classification at steady state.
	Footprint tailbench.Footprint
	// Scanner statistics (hash outcomes for Figure 8, merge counts).
	Stats ksm.Stats

	// BurstMean/BurstStd: core cycles the dedup engine steals per interval
	// (drives the queueing model). For PageForge this is the tiny driver
	// overhead; the hardware runs concurrently.
	BurstMean float64
	BurstStd  float64

	// KSMBreakdown attributes the software engine's cycles (Table 4).
	KSMBreakdown ksm.CycleBreakdown

	// L3MissRate is the shared-cache local miss rate during measurement.
	L3MissRate float64
	// AvgDemandLatency is the mean latency of application cache accesses
	// (cycles); the ratio against Baseline dilates service times. The
	// quantiles come from the measurement histogram: tail latency is what
	// the paper's latency experiments are ultimately about, and the mean
	// alone hides the miss tail.
	AvgDemandLatency float64
	DemandLatP50     float64
	DemandLatP95     float64
	DemandLatP99     float64
	DemandLatMax     float64

	// Figure 11 bandwidths. DemandGBps is the applications' DRAM demand
	// (profile input, adjusted by the measured miss-rate ratio); DedupGBps
	// is measured from the engine's byte volume during the mass-merging
	// (most memory-intensive) phase, scaled to the full-size deployment's
	// tree depth; TotalGBps is their sum. SteadyDedupGBps is the engine's
	// bandwidth during the steady-state measurement phase, which feeds the
	// memory-utilization component of the latency model.
	DemandGBps      float64
	DedupGBps       float64
	TotalGBps       float64
	SteadyDedupGBps float64

	// PageForge-only: Scan Table batch processing stats (Table 5) and
	// hardware counters.
	PFBatchMean     float64
	PFBatchStd      float64
	PFBatches       uint64
	PFLinesFetched  uint64
	PFNetworkHits   uint64
	PFDriverCycles  uint64
	MeasuredCycles  uint64
	ConvergedPasses int

	// RAS and resilience. Degraded reports that the run *ended* on the
	// software fallback: the UE-rate policy or the pressure ladder demoted
	// PageForge to software KSM and neither re-armed. DegradedAtPass is the
	// pass of the first demotion (-1: never); RepromotedAtPass is the pass
	// at which the hardware engine was last re-promoted (-1: never).
	Degraded          bool
	DegradedAtPass    int
	RepromotedAtPass  int
	UERate            float64 // smoothed UEs-per-decode estimate at end of run
	ECCCorrected      uint64
	ECCUncorrectable  uint64
	PFLineRetries     uint64
	PFRetriesHealed   uint64
	PFFaultAborts     uint64
	SWFallbacks       uint64
	QuarantinedFrames int
	ScrubLines        uint64
	ScrubCorrected    uint64
	ScrubUEs          uint64

	// Pressure is the resilience layer's end-of-run report (Enabled false
	// when Config.Pressure is off).
	Pressure pressure.Report

	// Crash is the checkpoint/crash/recovery machinery's report (Enabled
	// false when neither Config.Crash nor CheckpointEvery is armed). It is
	// the one Result section excluded from the crash bit-identity contract.
	Crash CrashReport

	// Metrics is the run's full registry snapshot: every counter, gauge,
	// and histogram the simulation layers published, for machine-readable
	// export (-metrics / -json).
	Metrics *obs.Snapshot
}

// Run executes one (mode, application) configuration.
func Run(mode Mode, app tailbench.Profile, cfg Config) (*Result, error) {
	res, _, err := runInternal(mode, app, cfg)
	return res, err
}

// runInternal is the batch driver over the tick-driven Runtime: build the
// world, then step every tick to completion. Batch Run and a streaming
// Runtime stepped to the same horizon are therefore the same code path, and
// their Results are bit-identical by construction.
func runInternal(mode Mode, app tailbench.Profile, cfg Config) (*Result, *dram.DRAM, error) {
	r := NewRuntime(mode, app, cfg)
	if err := r.Start(); err != nil {
		return nil, nil, err
	}
	res, err := r.Drain()
	if err != nil {
		return nil, nil, err
	}
	return res, r.dr, nil
}

// engineState tracks which engine is live across the demote/re-promote
// swaps: the RAS trip and the pressure ladder both demote the hardware
// driver to software KSM, and both are reversible.
type engineState struct {
	degradedAtPass   int
	repromotedAtPass int
}

// rasState bundles the live RAS machinery of one run: the fault model
// attached to the controller, the patrol scrubber, and the UE-rate tracker
// driving the PageForge→KSM degradation policy.
type rasState struct {
	model   *faults.Model
	scrub   *memctrl.Scrubber
	tracker *faults.RateTracker
	mc      *memctrl.Controller
	budget  int
}

// tick runs one patrol-scrub slice starting at now and feeds the
// degradation tracker one observation window from the controller's
// cumulative ECC counters. It returns the cycle the scrub slice finished.
func (r *rasState) tick(now, stamp uint64) uint64 {
	end := r.scrub.Step(now, r.budget)
	r.tracker.Observe(r.mc.Stats.ECCDecodes, r.mc.Stats.ECCUncorrectable, stamp)
	return end
}

// Latency runs the queueing phase (Figures 9 and 10) for a measured
// configuration: service times are dilated by the measured demand-latency
// ratio against Baseline (cache pollution, memory contention), and the
// dedup engine's measured per-interval core-steal drives the burst
// schedule. minQueries controls statistical quality per VM.
func Latency(app tailbench.Profile, base, system *Result, cfg Config, minQueries int, seed uint64) tailbench.LatencyResult {
	dilation := 1.0
	if base != nil && base.AvgDemandLatency > 0 {
		// Two memory-interference components compose: the sampled cache/DRAM
		// simulation captures pollution (extra misses) and non-preemptible
		// bank/bus residuals, while an analytical M/M/1-style factor captures
		// queueing from raw bandwidth utilization — at full scale the dedup
		// engines add several GB/s to the memory system, which the thinned
		// sampled streams cannot reproduce directly.
		ratio := system.AvgDemandLatency / base.AvgDemandLatency
		if ratio < 1 {
			ratio = 1
		}
		ratio *= memQueueFactor(app, system, cfg) / memQueueFactor(app, base, cfg)
		dilation = 1 + app.MemStallFrac*(ratio-1)
	}
	sched := tailbench.NoBursts()
	if system.BurstMean > 0 {
		sched = &tailbench.BurstSchedule{
			IntervalCycles: cfg.IntervalCycles(),
			MeanCycles:     system.BurstMean,
			StdCycles:      system.BurstStd,
			ZipfS:          cfg.ZipfS,
			Cores:          cfg.Cores,
			Share:          cfg.KthreadShare,
			SliceCycles:    cfg.KthreadSlice,
		}
	}
	horizon := tailbench.MeasureCyclesFor(app, minQueries)
	return tailbench.SimulateQueueing(app, cfg.Cores, dilation, sched, horizon, seed)
}

// fullScaleDepthFactor scales dedup traffic volumes measured on the
// scaled-down images (1,600 pages/VM) to the paper's 512MB VMs: the
// per-candidate comparison count grows with the content-tree depth,
// log(131,072·10)/log(1,600·10) ≈ 1.45.
const fullScaleDepthFactor = 1.45

// memQueueFactor is the mean-latency multiplier of an M/M/1-approximated
// memory system at the run's bandwidth utilization.
func memQueueFactor(app tailbench.Profile, r *Result, cfg Config) float64 {
	if cfg.MemPeakGBps <= 0 {
		return 1
	}
	u := (app.DemandGBps + r.SteadyDedupGBps) / cfg.MemPeakGBps
	if u > 0.85 {
		u = 0.85
	}
	return 1 / (1 - u)
}

// RunDebug is Run plus the DRAM statistics snapshot (calibration tooling).
func RunDebug(mode Mode, app tailbench.Profile, cfg Config) (*Result, dram.Stats, error) {
	res, dr, err := runInternal(mode, app, cfg)
	if err != nil {
		return nil, dram.Stats{}, err
	}
	return res, dr.Stats, nil
}
