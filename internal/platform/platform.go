// Package platform wires the full Table 2 machine: 10 out-of-order cores
// with the three-level cache hierarchy, the DDR memory system behind a
// memory controller hosting the PageForge module, 10 VMs (one per core)
// running a TailBench application, and the page-deduplication engine of the
// selected configuration. It runs the paper's three configurations —
// Baseline (no merging), KSM (software), PageForge (hardware) — through a
// converge-then-measure protocol and produces every statistic the
// evaluation section reports.
package platform

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/pressure"
	"repro/internal/sim"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// Mode selects the evaluated configuration.
type Mode int

// The paper's three configurations (§5.3).
const (
	Baseline Mode = iota
	KSM
	PageForge
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case Baseline:
		return "Baseline"
	case KSM:
		return "KSM"
	case PageForge:
		return "PageForge"
	default:
		return "?"
	}
}

// Config assembles the machine and engine parameters.
type Config struct {
	Cores int // 10
	VMs   int // 10, one per core

	// SleepMillis and PagesToScan are the dedup tunables shared by KSM and
	// PageForge (Table 2: 5ms, 400).
	SleepMillis float64
	PagesToScan int

	// ShardBits selects 2^ShardBits content-prefix shards for the KSM
	// stable/unstable trees (0 = single tree pair, classic KSM — the
	// default, bit-identical to pre-sharding builds).
	ShardBits int
	// ShardWorkers, when > 0, runs KSM convergence passes through
	// Scanner.ScanPass with that many workers fanning out across shards.
	// Results are bit-identical at any worker count, including 1; 0 keeps
	// the legacy sequential candidate loop. The measurement phase always
	// scans sequentially (its batches interleave with application traffic
	// in simulated time).
	ShardWorkers int

	KSMCosts ksm.Costs
	Driver   pageforge.DriverConfig
	Hier     cache.HierarchyConfig
	DRAM     dram.Config

	// ConvergePasses caps the steady-state convergence phase.
	ConvergePasses int
	// MeasureIntervals is the number of 5ms work intervals in the
	// measurement phase.
	MeasureIntervals int
	// ZipfS is the kthread core-placement skew (Table 4's Max column).
	ZipfS float64

	// KthreadShare is the CPU fraction the dedup kthread receives while
	// resident on a core (CFS equal-weight timesharing: 0.5); KthreadSlice
	// is its scheduler migration granularity in cycles.
	KthreadShare float64
	KthreadSlice uint64

	// MemPeakGBps is the memory system's deliverable bandwidth (2 channels
	// of 1GHz DDR with a 64-bit data path at ~75% efficiency ≈ 24 GB/s),
	// used by the analytical utilization component of the latency model.
	MemPeakGBps float64

	// Faults configures the injected DRAM fault population (RAS). The zero
	// value injects nothing and leaves the machine bit-identical to a
	// fault-free run. When enabled, a patrol scrubber and the
	// PageForge→KSM degradation policy are armed alongside the model.
	Faults faults.Config
	// ScrubLinesPerInterval is the patrol scrubber's line budget per dedup
	// pass/interval (0 disables patrol scrub even under injected faults).
	ScrubLinesPerInterval int
	// DegradeTrip is the UE-rate policy that demotes PageForge to software
	// KSM; zero fields take the faults.DefaultTrip values.
	DegradeTrip faults.Trip

	// Pressure arms the memory-pressure resilience layer: overcommitted
	// arena sizing, an allocation-burst storm, the stall/balloon reclaim
	// protocol, watermark-driven scan backpressure, and the reversible
	// degradation ladder. The zero value (Enabled false) creates nothing
	// and leaves runs bit-identical to pre-pressure builds.
	Pressure pressure.Config

	// Crash schedules deterministic host crashes at convergence-pass
	// boundaries (see internal/faults.CrashConfig); CheckpointEvery
	// checkpoints the full simulator state every N convergence passes
	// (0 = boot checkpoint only). A crashed run restores the newest
	// checkpoint, verifies the recovered dedup index, and replays the lost
	// passes; its Result (minus the Crash report) is bit-identical to the
	// uninterrupted run's. Both zero values create nothing and leave runs
	// bit-identical to pre-crash builds.
	Crash           faults.CrashConfig
	CheckpointEvery int
	// RecoveryFailures injects that many recovery-verification failures
	// (test hook): each consumes one restore attempt, exercising the
	// retry/backoff, cold-rebuild, and KSM-fallback ladder.
	RecoveryFailures int

	// Trace, when non-nil, receives simulation events (batches, merges,
	// intervals, RAS incidents) for Chrome trace_event export. Tracing is
	// purely observational: a traced run produces bit-identical Results to
	// an untraced one. The tracer may be shared by parallel runs; each run
	// registers its own trace process.
	Trace *obs.Tracer

	// Series, when non-nil, receives one sample of the full metric registry
	// at every convergence-pass and measurement-interval boundary — windowed
	// counter deltas plus instantaneous gauges — under a per-run track named
	// "<mode>/<app>". Like Trace it is purely observational: a sampled run
	// produces bit-identical Results to an unsampled one, and the samples
	// live outside Result so the identity stays testable by DeepEqual.
	Series *obs.Series

	// Ledger, when non-nil, records the merge-lifecycle provenance stream:
	// every frame transition (scanned, unstable, stable, merged, CoW-broken,
	// quarantined, ballooned, shed, ...) with a wasted-work cause attached
	// where the transition is a failure. A ledger is per-run, never shared.
	// Purely observational — a ledgered run produces bit-identical Results
	// to an unledgered one.
	Ledger *obs.Ledger

	// Verifier, when non-nil, receives model-based checking callbacks: once
	// at image build (BeginRun) and at every convergence pass and
	// measurement interval (Interval). A failed check aborts the run.
	// Verification is purely observational — a verified run produces
	// bit-identical Results to an unverified one.
	Verifier Verifier

	// MeasureL3 sizes the shared cache used during the measurement phase.
	// The sampled application/kthread streams are ~3 orders of magnitude
	// thinner than real traffic, so pollution fidelity requires scaling the
	// modeled L3 with them; 2MB against the sampled streams corresponds to
	// the 32MB L3 against full-rate traffic (see DESIGN.md).
	MeasureL3 cache.Config

	Seed uint64
}

// DefaultConfig is the paper's setup (Table 2).
func DefaultConfig() Config {
	return Config{
		Cores:                 10,
		VMs:                   10,
		SleepMillis:           5,
		PagesToScan:           400,
		KSMCosts:              ksm.DefaultCosts(),
		Driver:                pageforge.DefaultDriverConfig(),
		Hier:                  cache.DefaultHierarchyConfig(),
		DRAM:                  dram.DefaultConfig(),
		ConvergePasses:        25,
		MeasureIntervals:      40,
		ZipfS:                 1.2,
		MeasureL3:             cache.Config{SizeBytes: 2 << 20, Ways: 16},
		ScrubLinesPerInterval: 512,
		DegradeTrip:           faults.DefaultTrip(),
		KthreadShare:          0.5,
		KthreadSlice:          1_000_000,
		MemPeakGBps:           24,
		Seed:                  1,
	}
}

// IntervalCycles is one dedup work interval in cycles.
func (c Config) IntervalCycles() uint64 { return sim.MillisToCycles(c.SleepMillis) }

// Result carries everything the experiments extract from one run.
type Result struct {
	Mode Mode
	App  tailbench.Profile

	// Footprint is the Figure 7 classification at steady state.
	Footprint tailbench.Footprint
	// Scanner statistics (hash outcomes for Figure 8, merge counts).
	Stats ksm.Stats

	// BurstMean/BurstStd: core cycles the dedup engine steals per interval
	// (drives the queueing model). For PageForge this is the tiny driver
	// overhead; the hardware runs concurrently.
	BurstMean float64
	BurstStd  float64

	// KSMBreakdown attributes the software engine's cycles (Table 4).
	KSMBreakdown ksm.CycleBreakdown

	// L3MissRate is the shared-cache local miss rate during measurement.
	L3MissRate float64
	// AvgDemandLatency is the mean latency of application cache accesses
	// (cycles); the ratio against Baseline dilates service times. The
	// quantiles come from the measurement histogram: tail latency is what
	// the paper's latency experiments are ultimately about, and the mean
	// alone hides the miss tail.
	AvgDemandLatency float64
	DemandLatP50     float64
	DemandLatP95     float64
	DemandLatP99     float64
	DemandLatMax     float64

	// Figure 11 bandwidths. DemandGBps is the applications' DRAM demand
	// (profile input, adjusted by the measured miss-rate ratio); DedupGBps
	// is measured from the engine's byte volume during the mass-merging
	// (most memory-intensive) phase, scaled to the full-size deployment's
	// tree depth; TotalGBps is their sum. SteadyDedupGBps is the engine's
	// bandwidth during the steady-state measurement phase, which feeds the
	// memory-utilization component of the latency model.
	DemandGBps      float64
	DedupGBps       float64
	TotalGBps       float64
	SteadyDedupGBps float64

	// PageForge-only: Scan Table batch processing stats (Table 5) and
	// hardware counters.
	PFBatchMean     float64
	PFBatchStd      float64
	PFBatches       uint64
	PFLinesFetched  uint64
	PFNetworkHits   uint64
	PFDriverCycles  uint64
	MeasuredCycles  uint64
	ConvergedPasses int

	// RAS and resilience. Degraded reports that the run *ended* on the
	// software fallback: the UE-rate policy or the pressure ladder demoted
	// PageForge to software KSM and neither re-armed. DegradedAtPass is the
	// pass of the first demotion (-1: never); RepromotedAtPass is the pass
	// at which the hardware engine was last re-promoted (-1: never).
	Degraded          bool
	DegradedAtPass    int
	RepromotedAtPass  int
	UERate            float64 // smoothed UEs-per-decode estimate at end of run
	ECCCorrected      uint64
	ECCUncorrectable  uint64
	PFLineRetries     uint64
	PFRetriesHealed   uint64
	PFFaultAborts     uint64
	SWFallbacks       uint64
	QuarantinedFrames int
	ScrubLines        uint64
	ScrubCorrected    uint64
	ScrubUEs          uint64

	// Pressure is the resilience layer's end-of-run report (Enabled false
	// when Config.Pressure is off).
	Pressure pressure.Report

	// Crash is the checkpoint/crash/recovery machinery's report (Enabled
	// false when neither Config.Crash nor CheckpointEvery is armed). It is
	// the one Result section excluded from the crash bit-identity contract.
	Crash CrashReport

	// Metrics is the run's full registry snapshot: every counter, gauge,
	// and histogram the simulation layers published, for machine-readable
	// export (-metrics / -json).
	Metrics *obs.Snapshot
}

// Run executes one (mode, application) configuration.
func Run(mode Mode, app tailbench.Profile, cfg Config) (*Result, error) {
	res, _, err := runInternal(mode, app, cfg)
	return res, err
}

func runInternal(mode Mode, app tailbench.Profile, cfg Config) (*Result, *dram.DRAM, error) {
	// Physical memory: enough headroom for images plus churn copies — or,
	// under an armed pressure layer with overcommit, deliberately less than
	// guest demand: the resident images must fit (the build phase has no
	// reclaim to lean on), but the burst region does not, which is exactly
	// the storm the resilience machinery is there to absorb.
	physFrames := cfg.VMs*app.PagesPerVM*2 + 1024
	if cfg.Pressure.Enabled && cfg.Pressure.OvercommitRatio > 1 {
		demand := cfg.VMs * (app.PagesPerVM + app.BurstPagesPerVM)
		physFrames = int(float64(demand)/cfg.Pressure.OvercommitRatio) + 1
		if floor := cfg.VMs*app.PagesPerVM + 64; physFrames < floor {
			physFrames = floor
		}
	}
	img, err := tailbench.BuildImage(app, cfg.VMs, physFrames, cfg.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("platform: building image: %w", err)
	}
	if cfg.Verifier != nil {
		cfg.Verifier.BeginRun(mode, img)
	}

	// verify delivers one observation point to the configured verifier; the
	// engine arguments are whatever is live at the call (degradation swaps
	// the driver out for a software scanner mid-run).
	verify := func(phase string, idx int, s *ksm.Scanner, d *pageforge.Driver) error {
		if cfg.Verifier == nil {
			return nil
		}
		p := VerifyPoint{Mode: mode, Phase: phase, Index: idx, HV: img.HV, Alg: algOf(s, d)}
		if d != nil {
			p.Quarantined = d.Quarantined
		}
		return cfg.Verifier.Interval(p)
	}

	hierCfg := cfg.Hier
	hierCfg.Cores = cfg.Cores
	if cfg.MeasureL3.SizeBytes > 0 {
		hierCfg.L3 = cfg.MeasureL3
	}
	hier := cache.NewHierarchy(hierCfg)
	dr := dram.New(cfg.DRAM)
	mc := memctrl.New(dr, img.HV.Phys, hier)

	// The hierarchy's misses go to the memory controller; the closure binds
	// the running clock maintained by the measurement loop.
	var clock uint64
	hier.MemAccess = func(addr uint64, write bool) uint64 {
		return mc.DemandAccess(addr, clock, write, dram.SrcCore)
	}

	res := &Result{Mode: mode, App: app, DegradedAtPass: -1, RepromotedAtPass: -1}

	// Observability: one registry per run (single-goroutine handles), and a
	// trace process on the shared tracer when tracing is on. Both are purely
	// observational — they never feed back into simulated time.
	reg := obs.NewRegistry()
	var sc obs.Scope
	if cfg.Trace.Enabled() {
		pid := cfg.Trace.NewProcess(fmt.Sprintf("%s/%s", mode, app.Name))
		sc = obs.Scope{T: cfg.Trace, PID: pid}
		cfg.Trace.NameThread(pid, obs.TIDPlatform, "platform")
		cfg.Trace.NameThread(pid, obs.TIDDriver, "dedup-driver")
		cfg.Trace.NameThread(pid, obs.TIDEngine, "pfe-engine")
		cfg.Trace.NameThread(pid, obs.TIDRAS, "ras")
		cfg.Trace.NameThread(pid, obs.TIDScrub, "scrubber")
	}

	// RAS: attach the fault model to the controller (every ECC-decoded line
	// fetch now passes through it) and arm the patrol scrubber and the
	// degradation tracker. With Faults disabled nothing is created and the
	// machine is bit-identical to earlier fault-free builds.
	var ras *rasState
	if cfg.Faults.Enabled() {
		fc := cfg.Faults
		if fc.Frames == 0 {
			fc.Frames = img.HV.Phys.TotalFrames()
		}
		ras = &rasState{
			model:   faults.NewModel(fc),
			scrub:   &memctrl.Scrubber{MC: mc, Trace: sc},
			tracker: faults.NewRateTracker(cfg.DegradeTrip),
			mc:      mc,
			budget:  cfg.ScrubLinesPerInterval,
		}
		mc.Faults = ras.model
	}

	// Pressure: arm the resilience layer — controller, ladder, balloon, and
	// the hypervisor's stall/reclaim hook. Armed only after the image is
	// built: the build phase sizes within the floor by construction.
	var ps *pressureState
	if cfg.Pressure.Enabled {
		ps = newPressureState(cfg.Pressure, img, ras, sc)
	}
	es := &engineState{degradedAtPass: -1, repromotedAtPass: -1}

	// Deduplication engine for this mode. The PageForge engine's fetches go
	// through a pumped fetcher so the measurement phase can interleave
	// application traffic with the hardware's line requests in time order.
	var scanner *ksm.Scanner
	var driver *pageforge.Driver
	pump := &pumpFetcher{mc: mc}
	switch mode {
	case Baseline:
	case KSM:
		scanner = ksm.NewScanner(ksm.NewAlgorithmSharded(img.HV, ksm.JHasher{}, cfg.ShardBits), cfg.KSMCosts)
		scanner.Trace = sc
		scanner.TraceNow = func() uint64 { return clock }
		scanner.Ledger = cfg.Ledger
	case PageForge:
		engine := pageforge.NewEngine(pump)
		engine.Trace = sc
		driver = pageforge.NewDriver(ksm.NewAlgorithmSharded(img.HV, ksm.NewECCHasher(), cfg.ShardBits), engine, cfg.Driver)
		driver.Trace = sc
		driver.Ledger = cfg.Ledger
	}
	// Provenance: wire the hypervisor seams the engines cannot see — CoW
	// breaks on guest writes, and evictions split into balloon reclaims vs
	// plain releases by the pressure layer's in-reclaim flag. Installed only
	// when ledgering so the unledgered hot paths keep their nil-hook branch.
	if cfg.Ledger.Enabled() {
		ldg := cfg.Ledger
		img.HV.OnCoWBreak = func(id vm.PageID, old, fresh mem.PFN) {
			ldg.Append(obs.LedgerEvent{Kind: obs.LKCoWBroken, VM: id.VM,
				GFN: uint64(id.GFN), PFN: uint64(old), Arg: uint64(fresh)})
		}
		img.HV.OnEvict = func(id vm.PageID, pfn mem.PFN) {
			kind := obs.LKEvicted
			if ps != nil && ps.inReclaim {
				kind = obs.LKBallooned
			}
			ldg.Append(obs.LedgerEvent{Kind: kind, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn)})
		}
	}

	// --- Phase 1: converge to the merging steady state, churning volatile
	// pages between passes so they behave as application write traffic.
	// This mass-merging phase is "the most memory-intensive phase of page
	// deduplication" whose bandwidth Figure 11 reports.
	// pfDriver keeps the hardware driver reachable for statistics even when
	// the degradation policy swaps the live engine to software KSM.
	pfDriver := driver
	// Per-pass time series: one track per run, sampled at every convergence
	// and measurement boundary. A sample re-publishes the cumulative layer
	// counters into the registry — publishMetrics is an idempotent overwrite
	// and the end-of-run publish below rewrites every name, so mid-run
	// publishes cannot perturb the final snapshot — then lets the track
	// window them into deltas.
	var track *obs.SeriesTrack
	if cfg.Series.Enabled() {
		track = cfg.Series.Track(fmt.Sprintf("%s/%s", mode, app.Name))
	}
	sample := func(phase string, idx int, now uint64, sw *ksm.Scanner) {
		if track == nil {
			return
		}
		publishMetrics(reg, mc, dr, hier, sw, pfDriver, ras, ps, img)
		track.Sample(phase, idx, now, reg)
	}
	// Crash tolerance: checkpoint/restore machinery, armed only when a crash
	// schedule or a checkpoint cadence is configured. Baseline has no dedup
	// state to recover (and no convergence phase to crash in).
	var cs *crashState
	if (cfg.Crash.Enabled() || cfg.CheckpointEvery > 0) && mode != Baseline {
		cs = newCrashState(cfg, &crashEnv{
			mode: mode, img: img, hier: hier, dr: dr, mc: mc,
			ras: ras, ps: ps, es: es, sc: sc,
			track: track, ledger: cfg.Ledger,
		})
	}
	if mode != Baseline {
		var passes int
		passes, res.DedupGBps, scanner, driver, err = converge(img, scanner, driver, dr, cfg, ras, ps, es, cs, sc, &clock, verify, sample)
		if err != nil {
			return nil, nil, err
		}
		res.ConvergedPasses = passes
	}
	if cs != nil {
		res.Crash = cs.rep
	}
	res.Footprint = img.MeasureFootprint()

	// --- Phase 2: measurement. Run MeasureIntervals work intervals with
	// application cache traffic and the dedup engine interleaved, recording
	// bursts, pollution, and demand latency.
	meas := newMeasurement(img, hier, dr, mc, cfg, app, &clock, reg)
	meas.pump = pump
	meas.trace = sc
	meas.ps = ps
	meas.ledger = cfg.Ledger
	meas.sample = func(k int, end uint64) { sample("measure", k, end, scanner) }
	if ras != nil {
		// Patrol scrub keeps running through the measurement phase as
		// background DRAM traffic; the tracker keeps refining the UE-rate
		// estimate (the engine swap itself only happens during converge).
		meas.onInterval = func(start uint64) { ras.tick(start, ^uint64(0)) }
	}
	var dedupBytesBefore uint64
	if scanner != nil {
		dedupBytesBefore = scanner.DRAMBytes
	} else {
		dedupBytesBefore = dr.TotalBytes(dram.SrcPageForge)
	}
	meas.verify = func(k int) error { return verify("measure", k, scanner, driver) }
	if err := meas.run(scanner, driver); err != nil {
		return nil, nil, err
	}
	meas.fill(res)

	// Steady-state dedup bandwidth over the whole measurement phase
	// (including warm-up intervals: the engine works identically in both).
	var dedupBytes uint64
	if scanner != nil {
		dedupBytes = scanner.DRAMBytes - dedupBytesBefore
	} else if driver != nil {
		dedupBytes = dr.TotalBytes(dram.SrcPageForge) - dedupBytesBefore
	}
	phaseSeconds := float64(meas.totalIntervals()) * cfg.SleepMillis / 1e3
	if phaseSeconds > 0 {
		res.SteadyDedupGBps = float64(dedupBytes) / 1e9 / phaseSeconds * fullScaleDepthFactor
	}

	// Application DRAM demand: the profile's baseline bandwidth scaled by
	// the measured miss-rate inflation (pollution makes the cores fetch
	// more lines from memory).
	res.DemandGBps = app.DemandGBps
	if app.BaselineL3Miss > 0 && res.L3MissRate > 0 {
		res.DemandGBps = app.DemandGBps * res.L3MissRate / app.BaselineL3Miss
	}
	res.TotalGBps = res.DemandGBps + res.DedupGBps

	if scanner != nil {
		res.Stats = scanner.Alg.Stats
		res.KSMBreakdown = scanner.Cycles
	}
	if pfDriver != nil {
		res.Stats = pfDriver.Alg.Stats
		res.PFBatchMean = pfDriver.HW.BatchCycles.Mean()
		res.PFBatchStd = pfDriver.HW.BatchCycles.Stddev()
		res.PFBatches = pfDriver.Batches
		res.PFLinesFetched = pfDriver.HW.LinesFetched
		res.PFNetworkHits = mc.Stats.PFNetworkHits
		res.PFDriverCycles = pfDriver.CoreCycles
		res.PFLineRetries = pfDriver.HW.LineRetries
		res.PFRetriesHealed = pfDriver.HW.RetriesHealed
		res.PFFaultAborts = pfDriver.HW.FaultAborts
		res.SWFallbacks = pfDriver.SWFallbacks
		res.QuarantinedFrames = pfDriver.QuarantinedFrames()
	}
	res.Degraded = es.degradedAtPass >= 0 && es.repromotedAtPass < 0
	res.DegradedAtPass = es.degradedAtPass
	res.RepromotedAtPass = es.repromotedAtPass
	if ras != nil {
		res.UERate = ras.tracker.Rate()
		res.ECCCorrected = mc.Stats.ECCCorrected
		res.ECCUncorrectable = mc.Stats.ECCUncorrectable
		res.ScrubLines = ras.scrub.Stats.Lines
		res.ScrubCorrected = ras.scrub.Stats.Corrected
		res.ScrubUEs = ras.scrub.Stats.Uncorrectable
	}

	if ps != nil {
		res.Pressure = ps.finalize()
	}

	publishMetrics(reg, mc, dr, hier, scanner, pfDriver, ras, ps, img)
	res.Metrics = reg.Snapshot()
	return res, dr, nil
}

// engineState tracks which engine is live across the demote/re-promote
// swaps: the RAS trip and the pressure ladder both demote the hardware
// driver to software KSM, and both are reversible.
type engineState struct {
	degradedAtPass   int
	repromotedAtPass int
}

// rasState bundles the live RAS machinery of one run: the fault model
// attached to the controller, the patrol scrubber, and the UE-rate tracker
// driving the PageForge→KSM degradation policy.
type rasState struct {
	model   *faults.Model
	scrub   *memctrl.Scrubber
	tracker *faults.RateTracker
	mc      *memctrl.Controller
	budget  int
}

// tick runs one patrol-scrub slice starting at now and feeds the
// degradation tracker one observation window from the controller's
// cumulative ECC counters. It returns the cycle the scrub slice finished.
func (r *rasState) tick(now, stamp uint64) uint64 {
	end := r.scrub.Step(now, r.budget)
	r.tracker.Observe(r.mc.Stats.ECCDecodes, r.mc.Stats.ECCUncorrectable, stamp)
	return end
}

// Latency runs the queueing phase (Figures 9 and 10) for a measured
// configuration: service times are dilated by the measured demand-latency
// ratio against Baseline (cache pollution, memory contention), and the
// dedup engine's measured per-interval core-steal drives the burst
// schedule. minQueries controls statistical quality per VM.
func Latency(app tailbench.Profile, base, system *Result, cfg Config, minQueries int, seed uint64) tailbench.LatencyResult {
	dilation := 1.0
	if base != nil && base.AvgDemandLatency > 0 {
		// Two memory-interference components compose: the sampled cache/DRAM
		// simulation captures pollution (extra misses) and non-preemptible
		// bank/bus residuals, while an analytical M/M/1-style factor captures
		// queueing from raw bandwidth utilization — at full scale the dedup
		// engines add several GB/s to the memory system, which the thinned
		// sampled streams cannot reproduce directly.
		ratio := system.AvgDemandLatency / base.AvgDemandLatency
		if ratio < 1 {
			ratio = 1
		}
		ratio *= memQueueFactor(app, system, cfg) / memQueueFactor(app, base, cfg)
		dilation = 1 + app.MemStallFrac*(ratio-1)
	}
	sched := tailbench.NoBursts()
	if system.BurstMean > 0 {
		sched = &tailbench.BurstSchedule{
			IntervalCycles: cfg.IntervalCycles(),
			MeanCycles:     system.BurstMean,
			StdCycles:      system.BurstStd,
			ZipfS:          cfg.ZipfS,
			Cores:          cfg.Cores,
			Share:          cfg.KthreadShare,
			SliceCycles:    cfg.KthreadSlice,
		}
	}
	horizon := tailbench.MeasureCyclesFor(app, minQueries)
	return tailbench.SimulateQueueing(app, cfg.Cores, dilation, sched, horizon, seed)
}

// fullScaleDepthFactor scales dedup traffic volumes measured on the
// scaled-down images (1,600 pages/VM) to the paper's 512MB VMs: the
// per-candidate comparison count grows with the content-tree depth,
// log(131,072·10)/log(1,600·10) ≈ 1.45.
const fullScaleDepthFactor = 1.45

// memQueueFactor is the mean-latency multiplier of an M/M/1-approximated
// memory system at the run's bandwidth utilization.
func memQueueFactor(app tailbench.Profile, r *Result, cfg Config) float64 {
	if cfg.MemPeakGBps <= 0 {
		return 1
	}
	u := (app.DemandGBps + r.SteadyDedupGBps) / cfg.MemPeakGBps
	if u > 0.85 {
		u = 0.85
	}
	return 1 / (1 - u)
}

// converge runs full passes with inter-pass churn until merges settle, and
// measures the dedup engine's DRAM bandwidth during this mass-merging
// phase: bytes streamed per pages_to_scan batch, over the 5ms interval
// that batch occupies in deployment. Each pass ends with a patrol-scrub
// slice, a degradation-tracker observation, and (when the pressure layer
// is armed) a watermark/ladder observation window. The RAS trip and the
// ladder's fallback rung both demote the PageForge driver to a software
// KSM scanner over the same algorithm state; when both signals clear, the
// retained hardware driver is re-promoted. The (possibly swapped) engines
// are returned to the caller.
func converge(img *tailbench.Image, scanner *ksm.Scanner, driver *pageforge.Driver,
	dr *dram.DRAM, cfg Config, ras *rasState, ps *pressureState, es *engineState,
	cs *crashState, sc obs.Scope, clk *uint64,
	verify func(string, int, *ksm.Scanner, *pageforge.Driver) error,
	sample func(string, int, uint64, *ksm.Scanner)) (int, float64, *ksm.Scanner, *pageforge.Driver, error) {

	var alg *ksm.Algorithm
	if scanner != nil {
		alg = scanner.Alg
	} else {
		alg = driver.Alg
	}
	// hwDriver retains the hardware engine across a demotion so a recovered
	// ladder can re-promote it; fallback is the software scanner standing in
	// for it, created once and reused across demote/re-promote cycles.
	hwDriver := driver
	var fallback *ksm.Scanner
	var now uint64
	var candidates uint64
	prevFrames := -1
	passes := cfg.ConvergePasses
	makeFallback := func() *ksm.Scanner {
		f := ksm.NewScanner(hwDriver.Alg, cfg.KSMCosts)
		f.Trace = sc
		f.TraceNow = func() uint64 { return *clk }
		return f
	}
	if cs != nil {
		// Bind the crash machinery to this loop's locals (restores rewind
		// them in place) and capture the boot checkpoint: recovery always has
		// at least the pre-pass world to fall back to.
		env := cs.env
		env.alg = alg
		env.hwDriver = hwDriver
		env.ksmScanner = scanner
		env.scanner, env.driver, env.fallback = &scanner, &driver, &fallback
		env.makeFallback = makeFallback
		env.now, env.clk, env.candidates, env.prevFrames = &now, clk, &candidates, &prevFrames
		if err := cs.checkpoint(-1); err != nil {
			return 0, 0, scanner, driver, err
		}
	}
	for p := 0; p < cfg.ConvergePasses; p++ {
		cfg.Ledger.SetPass(p)
		if ps != nil {
			if err := ps.beginPass(p, now); err != nil {
				return p + 1, 0, scanner, driver, err
			}
		}
		pages := alg.MergeablePages()
		switch {
		case ps != nil && ps.paused():
			// ScanPaused rung: the engine is shut off entirely this pass;
			// churn and the observation windows keep running so the ladder
			// can see recovery and step back up. The ledger records the whole
			// shed pass as one wasted-work event carrying the page budget the
			// backpressure threw away.
			ps.rep.PausedPasses++
			cfg.Ledger.Append(obs.LedgerEvent{Kind: obs.LKShed, Cause: obs.CauseBackpressureShed,
				VM: -1, PFN: obs.LedgerNoPFN, Arg: uint64(pages)})
		case scanner != nil:
			workers := cfg.ShardWorkers
			if ps != nil {
				workers = ps.ctl.ScanWorkers(workers)
			}
			if workers > 0 {
				res := scanner.ScanPass(workers)
				candidates += uint64(res.Scanned)
			} else {
				for i := 0; i < pages; i++ {
					scanner.ScanOne()
					candidates++
				}
			}
		default:
			for i := 0; i < pages; i++ {
				_, t, ok := driver.ScanOne(now)
				if !ok {
					break
				}
				now = t
				candidates++
			}
		}
		if ras != nil {
			now = ras.tick(now, uint64(p))
		}
		if ps != nil {
			now += ps.takeStallTicks()
			ps.observe(p, now)
		}
		// Unified engine selection: either health signal demotes the
		// hardware driver to software KSM on the same algorithm state (the
		// software path reads through the cache hierarchy, not the poisoned
		// ECC fetch pipe, and costs core cycles the throttled rungs are
		// willing to pay); both clearing re-promotes the retained driver.
		wantSW := (ras != nil && ras.tracker.Degraded()) ||
			(ps != nil && ps.ladder.State() >= pressure.KSMFallback) ||
			(cs != nil && cs.forcedSW)
		switch {
		case wantSW && driver != nil:
			if fallback == nil {
				fallback = makeFallback()
			}
			scanner = fallback
			driver = nil
			if es.degradedAtPass < 0 {
				es.degradedAtPass = p
			}
			es.repromotedAtPass = -1
			sc.Instant(obs.TIDRAS, "ras", "degrade_trip", now, "pass", uint64(p))
		case !wantSW && driver == nil && hwDriver != nil && es.degradedAtPass >= 0:
			driver = hwDriver
			scanner = nil
			es.repromotedAtPass = p
			sc.Instant(obs.TIDRAS, "ras", "repromote", now, "pass", uint64(p))
		}
		if err := img.ChurnVolatile(); err != nil {
			return p + 1, 0, scanner, driver, fmt.Errorf("platform: churn at pass %d: %w", p, err)
		}
		if ps != nil {
			now += ps.takeStallTicks()
		}
		// Expose the pass clock to untimed components (the software
		// scanner's merge events) regardless of tracing — keeping the
		// update unconditional is what makes traced and untraced runs
		// bit-identical. Nothing in the simulation reads it back here.
		*clk = now
		if err := verify("converge", p, scanner, driver); err != nil {
			return p + 1, 0, scanner, driver, err
		}
		frames := img.HV.Phys.AllocatedFrames()
		sc.Instant(obs.TIDPlatform, "interval", "pass", now, "frames", uint64(frames))
		converged := frames == prevFrames && p >= 2 && (ps == nil || ps.quiescent(p))
		prevFrames = frames
		// Sample the series at the pass boundary, before the checkpoint: the
		// track's ring is part of the checkpointed world, so a replayed pass
		// re-takes exactly the samples the crash destroyed. The software
		// engine handle falls back to the retained fallback scanner so its
		// cycle counters stay published across re-promotions.
		sw := scanner
		if sw == nil {
			sw = fallback
		}
		sample("converge", p, now, sw)
		// Close the pass boundary: periodic checkpoint, then the crash plan.
		// A restore rewinds every loop local (including prevFrames and the
		// convergence verdict baked into it) to the checkpointed pass; the
		// loop replays from there and re-reaches this boundary identically.
		if cs != nil {
			resume, restored, err := cs.boundary(p)
			if err != nil {
				return p + 1, 0, scanner, driver, err
			}
			if restored && resume != p {
				p = resume
				continue
			}
			// resume == p means the crash restored the checkpoint captured
			// at this very boundary: the restored world is bit-identical to
			// the state the convergence verdict below was computed from, so
			// fall through rather than replaying a zero-pass window (which
			// would skip the verdict and converge one pass late).
		}
		if converged {
			passes = p + 1
			break
		}
	}

	// A degraded run streamed bytes through both engines; the PageForge
	// side's DRAM volume and the software scanner's add.
	bytes := dr.TotalBytes(dram.SrcPageForge)
	if scanner != nil {
		bytes += scanner.DRAMBytes
	}
	gbps := 0.0
	if candidates > 0 {
		intervals := float64(candidates) / float64(cfg.PagesToScan)
		seconds := intervals * cfg.SleepMillis / 1e3
		gbps = float64(bytes) / 1e9 / seconds * fullScaleDepthFactor
	}
	return passes, gbps, scanner, driver, nil
}

// RunDebug is Run plus the DRAM statistics snapshot (calibration tooling).
func RunDebug(mode Mode, app tailbench.Profile, cfg Config) (*Result, dram.Stats, error) {
	res, dr, err := runInternal(mode, app, cfg)
	if err != nil {
		return nil, dram.Stats{}, err
	}
	return res, dr.Stats, nil
}
