package platform

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/ksm"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/tailbench"
)

// publishMetrics copies every simulation layer's cumulative counters into
// the registry, under stable slash-separated names, so one Snapshot carries
// the whole machine state for -metrics / -json export. The layers keep
// their own plain counters on the hot paths (an atomic per DRAM access
// would be pure overhead) and the registry is the export boundary. Every
// publish is an idempotent overwrite: the end-of-run call produces the
// exported snapshot, and the per-pass series sampler may call it any number
// of times before that without perturbing the final values.
func publishMetrics(reg *obs.Registry, mc *memctrl.Controller, dr *dram.DRAM,
	hier *cache.Hierarchy, scanner *ksm.Scanner, driver *pageforge.Driver, ras *rasState,
	ps *pressureState, img *tailbench.Image) {

	// Memory controller: demand traffic, PageForge fetch routing,
	// coalescing, and the ECC pipe.
	ms := mc.Stats
	reg.SetCounter("memctrl/demand_reads", ms.DemandReads)
	reg.SetCounter("memctrl/demand_writes", ms.DemandWrites)
	reg.SetCounter("memctrl/demand_coalesced", ms.DemandCoalesced)
	reg.SetCounter("memctrl/pf_fetches", ms.PFFetches)
	reg.SetCounter("memctrl/pf_network_hits", ms.PFNetworkHits)
	reg.SetCounter("memctrl/pf_dram_reads", ms.PFDRAMReads)
	reg.SetCounter("memctrl/pf_coalesced", ms.PFCoalesced)
	reg.SetCounter("memctrl/ecc_encodes", ms.ECCEncodes)
	reg.SetCounter("memctrl/ecc_decodes", ms.ECCDecodes)
	reg.SetCounter("memctrl/ecc_corrected", ms.ECCCorrected)
	reg.SetCounter("memctrl/ecc_uncorrectable", ms.ECCUncorrectable)

	// DRAM: row-buffer outcomes, and per-source traffic/queueing (the
	// Figure 11 decomposition).
	ds := dr.Stats
	reg.SetCounter("dram/reads", ds.Reads)
	reg.SetCounter("dram/writes", ds.Writes)
	reg.SetCounter("dram/row_hits", ds.RowHits)
	reg.SetCounter("dram/row_misses", ds.RowMisses)
	reg.SetCounter("dram/row_closeds", ds.RowCloseds)
	reg.SetGauge("dram/row_hit_rate", dr.RowHitRate())
	for _, s := range dram.Sources() {
		reg.SetCounter("dram/bytes/"+s.String(), ds.BytesBySrc[s])
		reg.SetCounter("dram/accesses/"+s.String(), ds.AccessBySrc[s])
		reg.SetCounter("dram/bank_wait_cycles/"+s.String(), ds.BankWaitBySrc[s])
		reg.SetCounter("dram/bus_wait_cycles/"+s.String(), ds.BusWaitBySrc[s])
	}
	// Per-bank counters, zero banks elided on first publish (geometry is 128
	// banks; runs touch a fraction and an all-zeros dump would drown the
	// snapshot). Once a bank's name exists it keeps being republished even
	// at zero: the series sampler publishes mid-run and a crash restore
	// rewinds the bank counters, so a name published in the doomed timeline
	// must be overwritten with the replayed value — skipping it would leak a
	// stale future value into the next sample's delta.
	for ch, banks := range dr.BankAccesses() {
		hits := dr.BankRowHits()[ch]
		for b, n := range banks {
			name := fmt.Sprintf("dram/bank/%d.%d/accesses", ch, b)
			if n == 0 && !reg.HasCounter(name) {
				continue
			}
			reg.SetCounter(name, n)
			reg.SetCounter(fmt.Sprintf("dram/bank/%d.%d/row_hits", ch, b), hits[b])
		}
	}

	// Hypervisor and arena occupancy: the per-pass series plots its
	// convergence curves from these (merges vs CoW breaks vs allocated
	// frames), so they are published here, not derived from Result fields.
	hv := img.HV
	reg.SetCounter("vm/merges", hv.Merges)
	reg.SetCounter("vm/unmerges", hv.Unmerges)
	reg.SetCounter("vm/alloc_stalls", hv.AllocStalls)
	reg.SetGauge("platform/frames_allocated", float64(hv.Phys.AllocatedFrames()))

	// Shared cache.
	l3 := hier.L3()
	reg.SetCounter("cache/l3_hits", l3.Hits)
	reg.SetCounter("cache/l3_misses", l3.Misses)
	reg.SetGauge("cache/l3_miss_rate", hier.L3MissRate())

	// Dedup algorithm outcomes (shared by both engines; under degradation
	// the software scanner continues on the hardware driver's state, so
	// exactly one Stats is live per run — the caller passes the engine that
	// owns it).
	publishKSMStats := func(prefix string, st ksm.Stats) {
		reg.SetCounter(prefix+"/pages_scanned", st.PagesScanned)
		reg.SetCounter(prefix+"/full_scans", st.FullScans)
		reg.SetCounter(prefix+"/stable_merges", st.StableMerges)
		reg.SetCounter(prefix+"/unstable_merges", st.UnstableMerges)
		reg.SetCounter(prefix+"/zero_merges", st.ZeroMerges)
		reg.SetCounter(prefix+"/failed_merges", st.FailedMerges)
		reg.SetCounter(prefix+"/hash_matches", st.HashMatches)
		reg.SetCounter(prefix+"/hash_mismatches", st.HashMismatches)
		reg.SetCounter(prefix+"/hash_first_seen", st.HashFirstSeen)
		reg.SetCounter(prefix+"/stale_unstable", st.StaleUnstable)
		reg.SetCounter(prefix+"/smart_skips", st.SmartSkips)
		reg.SetCounter(prefix+"/fault_fallbacks", st.FaultFallbacks)
	}
	if scanner != nil {
		publishKSMStats("ksm", scanner.Alg.Stats)
		reg.SetCounter("ksm/cycles_compare", scanner.Cycles.Compare)
		reg.SetCounter("ksm/cycles_hash", scanner.Cycles.Hash)
		reg.SetCounter("ksm/cycles_other", scanner.Cycles.Other)
		reg.SetCounter("ksm/bytes_touched", scanner.BytesTouched)
		reg.SetCounter("ksm/dram_bytes", scanner.DRAMBytes)
	}
	if driver != nil {
		publishKSMStats("ksm", driver.Alg.Stats)
		hw := driver.HW
		reg.SetCounter("pageforge/batches", driver.Batches)
		reg.SetCounter("pageforge/polls", driver.Polls)
		reg.SetCounter("pageforge/driver_core_cycles", driver.CoreCycles)
		reg.SetCounter("pageforge/pages_compared", hw.PagesCompared)
		reg.SetCounter("pageforge/compare_early_exits", hw.CompareEarlyExits)
		reg.SetCounter("pageforge/duplicates", hw.Duplicates)
		reg.SetCounter("pageforge/keys_generated", hw.KeysGenerated)
		reg.SetCounter("pageforge/lines_fetched", hw.LinesFetched)
		reg.SetCounter("pageforge/busy_cycles", hw.BusyCycles)
		reg.SetCounter("pageforge/line_retries", hw.LineRetries)
		reg.SetCounter("pageforge/retries_healed", hw.RetriesHealed)
		reg.SetCounter("pageforge/fault_aborts", hw.FaultAborts)
		reg.SetCounter("pageforge/sw_fallbacks", driver.SWFallbacks)
		reg.SetCounter("pageforge/quarantine_skips", driver.QuarantineSkips)
		reg.SetCounter("pageforge/quarantined_frames", uint64(driver.QuarantinedFrames()))
		reg.SetGauge("pageforge/batch_cycles_mean", hw.BatchCycles.Mean())
	}
	if ras != nil {
		ss := ras.scrub.Stats
		reg.SetCounter("scrub/lines", ss.Lines)
		reg.SetCounter("scrub/corrected", ss.Corrected)
		reg.SetCounter("scrub/uncorrectable", ss.Uncorrectable)
		reg.SetCounter("scrub/rewrites", ss.Rewrites)
		reg.SetCounter("scrub/busy_cycles", ss.BusyCycles)
		reg.SetCounter("scrub/wraps", ss.Wraps)
		reg.SetGauge("faults/ue_rate", ras.tracker.Rate())
		reg.SetCounter("faults/tracker_windows", ras.tracker.Windows())
		reg.SetCounter("faults/tracker_recoveries", ras.tracker.Recoveries())
	}
	if ps != nil {
		rep := ps.finalize()
		reg.SetGauge("pressure/level", float64(rep.FinalLevel))
		reg.SetGauge("pressure/ladder_state", float64(rep.Final))
		reg.SetCounter("pressure/alloc_stalls", rep.AllocStalls)
		reg.SetCounter("pressure/balloon_inflated", rep.BalloonInflated)
		reg.SetCounter("pressure/balloon_reclaimed", rep.BalloonReclaimed)
		reg.SetCounter("pressure/scan_throttle", rep.ThrottledPoints)
		reg.SetCounter("pressure/paused_passes", rep.PausedPasses)
		reg.SetCounter("pressure/transitions", uint64(len(rep.Transitions)))
		reg.SetCounter("pressure/burst_pages", rep.BurstPages)
		reg.SetGauge("pressure/min_free_frames", float64(rep.MinFreeFrames))
	}
}
