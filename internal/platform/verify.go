package platform

import (
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// Verifier observes a platform run for model-based checking (internal/check
// implements it). BeginRun fires once after the image is built, before any
// scanning; Interval fires at every consistent observation point — after
// each convergence pass (post-churn) and after each measurement work
// interval. A non-nil error aborts the run and is returned by Run.
//
// Verifiers must be purely observational: they may read hypervisor,
// physical-memory, and algorithm state but never mutate it, so a verified
// run stays bit-identical to an unverified one.
type Verifier interface {
	BeginRun(mode Mode, img *tailbench.Image)
	Interval(p VerifyPoint) error
}

// VerifyPoint is one consistent observation point handed to the Verifier:
// no scan, merge, or churn is in flight when it is delivered.
type VerifyPoint struct {
	Mode Mode
	// Phase is "converge" (Index = pass) or "measure" (Index = interval,
	// warm-up intervals included).
	Phase string
	Index int

	HV *vm.Hypervisor
	// Alg is the engine-independent KSM state (nil for Baseline).
	Alg *ksm.Algorithm
	// Quarantined reports frames the UE policy withdrew from hardware
	// merging. It is nil whenever the PageForge driver is not the live
	// engine (Baseline, software KSM, or after degradation demoted the
	// hardware) — quarantine exclusion is then not in force.
	Quarantined func(mem.PFN) bool
}
