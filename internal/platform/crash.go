package platform

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/pressure"
	"repro/internal/snapshot"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// Crash tolerance. A checkpoint captures the ENTIRE simulated world at a
// convergence-pass boundary — arena, page tables, rmap, dedup index
// structure, engine counters, DRAM bank state, RAS and pressure policy
// state, RNG streams, and the loop's own clocks — through the versioned
// snapshot codec. A host crash throws the live world away and restores the
// newest checkpoint in place; the convergence loop then replays the lost
// passes. Because the restore is bit-exact and every source of
// nondeterminism is part of the image, the replay reproduces exactly the
// work the crash destroyed: a crashed-and-recovered run finishes with a
// Result deeply equal to the uninterrupted run's (minus the Crash report
// itself). Recovery costs are accounted out-of-band in RecoveryCycles so
// they cannot perturb that identity.
//
// Before a restored index is trusted, ksm.VerifyRecovered audits it against
// the restored memory image (structure, hint-then-verify content audit, and
// the refcount ledger). A failed verification retries with exponential
// backoff, then falls back to the boot checkpoint (cold rebuild), and if
// even that cannot be verified the run permanently demotes to the software
// scanner (KSM-only) — the same degradation rung the pressure ladder uses.

// crashSnapshotVersion is the worldPayload schema version. Version 2 added
// the live-event stream cursor and the balloon/fault storm-window fields.
const crashSnapshotVersion = 2

// Recovery cost model (deterministic, charged only to RecoveryCycles):
// restoring a checkpoint, one backoff quantum (doubled per retry), and the
// per-frame/per-byte cost of the recovery audit.
const (
	maxRecoveryRetries       = 3
	recoveryRestoreCycles    = 250_000
	recoveryBackoffCycles    = 100_000
	recoveryAuditFrameCycles = 40
	recoveryVerifyByteCycles = 2
)

// CrashObserver is the optional checkpoint/restore callback pair a Verifier
// may implement (internal/check does): Checkpoint fires after a checkpoint
// is captured at the given pass (-1 = boot), Restored after a recovery
// rewound the world to that checkpoint's state. A verifier that carries its
// own shadow state must rewind it in Restored or every later audit compares
// against the wrong reference.
type CrashObserver interface {
	Checkpoint(pass int)
	Restored(pass int)
}

// CrashReport summarizes the crash/checkpoint machinery's work during one
// run. It is excluded from the bit-identity contract: zero it before
// comparing a crashed run's Result against an uninterrupted one.
type CrashReport struct {
	Enabled bool
	// Crashes fired, checkpoints captured (replayed boundaries re-capture
	// their checkpoints, so this counts captures, not distinct passes), and
	// effective restores (one per crash).
	Crashes     int
	Checkpoints int
	Restores    int
	// ReplayedPasses is the total convergence passes re-run after restores;
	// RemergedPages the merges the crashes destroyed and replay re-did.
	ReplayedPasses int
	RemergedPages  uint64
	// RecoveryRetries counts failed recovery attempts that were retried;
	// ColdRebuilds counts fallbacks to the boot checkpoint; KSMFallbacks
	// counts terminal demotions to the software scanner.
	RecoveryRetries int
	ColdRebuilds    int
	KSMFallbacks    int
	// RecoveryCycles is the out-of-band recovery latency (restore + backoff
	// + audit cost model); StableVerified/BytesVerified summarize the
	// recovery audits' work.
	RecoveryCycles uint64
	StableVerified int
	BytesVerified  uint64
}

// scanEngineImage is the software scanner's cumulative cost state (the
// algorithm underneath is captured separately).
type scanEngineImage struct {
	Cycles       ksm.CycleBreakdown
	BytesTouched uint64
	DRAMBytes    uint64
}

func captureScanner(s *ksm.Scanner) scanEngineImage {
	return scanEngineImage{Cycles: s.Cycles, BytesTouched: s.BytesTouched, DRAMBytes: s.DRAMBytes}
}

func restoreScanner(s *ksm.Scanner, im scanEngineImage) {
	s.Cycles = im.Cycles
	s.BytesTouched = im.BytesTouched
	s.DRAMBytes = im.DRAMBytes
}

// worldPayload is the full checkpoint image. Plain data only — no maps
// (gob's map iteration order would break encode-determinism); every
// subsystem serializes its maps as sorted slices.
type worldPayload struct {
	Pass int // convergence pass the boundary closed (-1 = boot)

	// Convergence-loop locals.
	Now        uint64
	Clk        uint64
	Candidates uint64
	PrevFrames int

	// Memory, virtualization, workload image, dedup index.
	Phys mem.PhysState
	HV   vm.HypervisorState
	Img  tailbench.ImageState
	Alg  ksm.AlgorithmState

	// Engines. EngineIsSW records which engine was live (the demote/
	// re-promote swaps are part of the world); the hardware driver and the
	// fallback scanner are captured whenever they exist.
	EngineIsSW      bool
	HasDriver       bool
	Engine          pageforge.EngineState
	Driver          pageforge.DriverState
	Scanner         scanEngineImage // KSM-mode scanner
	FallbackCreated bool
	Fallback        scanEngineImage // PageForge-mode software fallback

	// Memory system.
	MC   memctrl.ControllerState
	DRAM dram.DRAMState
	// Cache-hierarchy statistics (the caches themselves are empty during
	// convergence — application traffic only runs in the measurement phase —
	// so the counters are the hierarchy's only mutable state here).
	HierL3Access  []uint64
	HierL3Miss    []uint64
	HierWB        uint64
	HierProbes    uint64
	HierProbeHits uint64

	// RAS (fault model, UE-rate tracker, patrol scrubber).
	HasRAS  bool
	Faults  faults.ModelState
	Tracker faults.TrackerState
	Scrub   memctrl.ScrubberState

	// Pressure (controller, ladder, balloon, window cursors, report).
	HasPressure  bool
	Ctl          pressure.ControllerState
	Ladder       pressure.LadderState
	Balloon      vm.BalloonState
	PSStallTicks uint64
	PSLastStalls uint64
	PSLastAllocs uint64
	PSReport     pressure.Report

	// Engine-selection history.
	DegradedAtPass   int
	RepromotedAtPass int

	// Observability artifacts. The per-pass series track and the provenance
	// ledger are part of the world: replayed passes re-sample and re-append,
	// so the restore must rewind them or the replay would duplicate entries.
	HasSeries bool
	Series    obs.SeriesTrackState
	HasLedger bool
	Ledger    obs.LedgerState

	// Live-event stream: how many scheduled events have been applied, and
	// the storm windows the applied events opened. The windows are constant
	// once applied, but a snapshot restored into a *fresh* runtime (whose
	// events were never applied) needs them to re-derive the fault boost and
	// balloon action for replayed passes.
	EvCursor       int
	EvBalloonStart int
	EvBalloonUntil int
	EvBalloonPages int
	EvFaultStart   int
	EvFaultUntil   int
	EvFaultBoost   float64

	// Convergence verdict as of the captured boundary. Crash checkpoints are
	// always taken before the verdict (false), but the runtime's Snapshot can
	// capture a world whose last pass converged — a fresh runtime restoring
	// that blob must go straight to measurement, not replay a bonus pass.
	Converged  bool
	PassesDone int
}

// crashEnv binds the crash machinery to one run's live objects, including
// pointers into the convergence loop's locals so a restore can rewind them
// in place (the objects keep their identity — every closure wired at build
// time stays valid across a restore).
type crashEnv struct {
	mode Mode
	img  *tailbench.Image
	alg  *ksm.Algorithm
	hier *cache.Hierarchy
	dr   *dram.DRAM
	mc   *memctrl.Controller
	ras  *rasState
	ps   *pressureState
	es   *engineState
	sc   obs.Scope

	hwDriver   *pageforge.Driver
	ksmScanner *ksm.Scanner
	track      *obs.SeriesTrack // per-run series track; may be nil
	ledger     *obs.Ledger      // provenance ledger; may be nil

	scanner      **ksm.Scanner
	driver       **pageforge.Driver
	fallback     **ksm.Scanner
	makeFallback func() *ksm.Scanner

	ev *eventState // live-event stream; may be nil (no runtime armed)

	now        *uint64
	clk        *uint64
	candidates *uint64
	prevFrames *int
	converged  *bool // the loop's early-convergence verdict; may be nil
	passes     *int  // convergence passes recorded for the result; may be nil
}

// crashState is the per-run crash/checkpoint machinery.
type crashState struct {
	plan     *faults.CrashPlan // nil when only checkpointing is armed
	every    int               // checkpoint cadence in passes (0 = boot only)
	failures int               // injected recovery failures remaining (test hook)
	obs      CrashObserver     // may be nil
	env      *crashEnv

	boot     []byte // blob captured before the first pass
	bootPass int
	last     []byte // newest periodic checkpoint blob
	lastPass int

	// forcedSW pins the software engine after recovery verification
	// exhausted every fallback; the converge loop ORs it into wantSW.
	forcedSW bool

	rep CrashReport
}

// newCrashState arms the machinery; env's loop-local pointers are bound by
// converge before the first pass.
func newCrashState(cfg Config, env *crashEnv) *crashState {
	cs := &crashState{every: cfg.CheckpointEvery, failures: cfg.RecoveryFailures, env: env}
	if cfg.Crash.Enabled() {
		cs.plan = faults.NewCrashPlan(cfg.Crash)
	}
	if o, ok := cfg.Verifier.(CrashObserver); ok {
		cs.obs = o
	}
	cs.rep.Enabled = true
	return cs
}

// capture serializes the whole world at the boundary closing pass p. It is
// a crashEnv method (not crashState) so the runtime's Snapshot can reuse it
// without arming the crash machinery.
func (env *crashEnv) capture(p int) ([]byte, error) {
	phys, err := env.img.HV.Phys.State()
	if err != nil {
		return nil, fmt.Errorf("platform: checkpoint at pass %d: %w", p, err)
	}
	algSt, err := env.alg.State()
	if err != nil {
		return nil, fmt.Errorf("platform: checkpoint at pass %d: %w", p, err)
	}
	w := worldPayload{
		Pass:       p,
		Now:        *env.now,
		Clk:        *env.clk,
		Candidates: *env.candidates,
		PrevFrames: *env.prevFrames,
		Phys:       phys,
		HV:         env.img.HV.State(),
		Img:        env.img.State(),
		Alg:        algSt,

		EngineIsSW: *env.driver == nil,

		MC:            env.mc.State(),
		DRAM:          env.dr.State(),
		HierL3Access:  append([]uint64(nil), env.hier.L3AccessBySource[:]...),
		HierL3Miss:    append([]uint64(nil), env.hier.L3MissBySource[:]...),
		HierWB:        env.hier.Writebacks,
		HierProbes:    env.hier.NetworkProbes,
		HierProbeHits: env.hier.NetworkProbeHits,

		DegradedAtPass:   env.es.degradedAtPass,
		RepromotedAtPass: env.es.repromotedAtPass,
	}
	if env.hwDriver != nil {
		w.HasDriver = true
		w.Engine = env.hwDriver.HW.State()
		w.Driver = env.hwDriver.State()
	}
	if env.ksmScanner != nil {
		w.Scanner = captureScanner(env.ksmScanner)
	}
	if *env.fallback != nil {
		w.FallbackCreated = true
		w.Fallback = captureScanner(*env.fallback)
	}
	if env.ras != nil {
		w.HasRAS = true
		w.Faults = env.ras.model.State()
		w.Tracker = env.ras.tracker.State()
		w.Scrub = env.ras.scrub.State()
	}
	if env.ps != nil {
		w.HasPressure = true
		w.Ctl = env.ps.ctl.State()
		w.Ladder = env.ps.ladder.CaptureState()
		w.Balloon = env.ps.balloon.State()
		w.PSStallTicks = env.ps.stallTicks
		w.PSLastStalls = env.ps.lastStalls
		w.PSLastAllocs = env.ps.lastAllocs
		w.PSReport = env.ps.rep
	}
	if env.track != nil {
		w.HasSeries = true
		w.Series = env.track.State()
	}
	if env.ledger.Enabled() {
		w.HasLedger = true
		w.Ledger = env.ledger.State()
	}
	if env.ev != nil {
		w.EvCursor = env.ev.cursor
		w.EvBalloonStart = env.ev.bsStart
		w.EvBalloonUntil = env.ev.bsUntil
		w.EvBalloonPages = env.ev.bsPages
		w.EvFaultStart = env.ev.fsStart
		w.EvFaultUntil = env.ev.fsUntil
		w.EvFaultBoost = env.ev.fsBoost
	}
	if env.converged != nil {
		w.Converged = *env.converged
		w.PassesDone = *env.passes
	}
	return snapshot.Encode(crashSnapshotVersion, w)
}

// restore rewinds the world to a checkpoint blob, in place, and reports the
// pass the blob was captured at (so the runtime's Restore can resume from
// the right boundary; the crash path already knows it).
func (env *crashEnv) restore(blob []byte, pass int) (int, error) {
	var w worldPayload
	if err := snapshot.Decode(blob, crashSnapshotVersion, &w); err != nil {
		return 0, fmt.Errorf("platform: restoring checkpoint at pass %d: %w", pass, err)
	}
	if err := env.img.HV.Phys.SetState(w.Phys); err != nil {
		return 0, err
	}
	if err := env.img.HV.SetState(w.HV); err != nil {
		return 0, err
	}
	env.img.SetState(w.Img)
	if err := env.alg.SetState(w.Alg); err != nil {
		return 0, err
	}

	if env.hwDriver != nil && w.HasDriver {
		env.hwDriver.HW.SetState(w.Engine)
		env.hwDriver.SetState(w.Driver)
	}
	if env.ksmScanner != nil {
		restoreScanner(env.ksmScanner, w.Scanner)
	}
	// The fallback scanner may exist now but not at the checkpoint (it was
	// created during the replayed window): restoring its zero image resets
	// its counters so the replay re-accumulates them identically.
	if *env.fallback == nil && w.FallbackCreated {
		*env.fallback = env.makeFallback()
	}
	if *env.fallback != nil {
		restoreScanner(*env.fallback, w.Fallback)
	}
	// Engine selection is world state: rewind which engine is live.
	if w.EngineIsSW {
		*env.driver = nil
		if env.ksmScanner != nil {
			*env.scanner = env.ksmScanner
		} else {
			*env.scanner = *env.fallback
		}
	} else {
		*env.driver = env.hwDriver
		*env.scanner = nil
	}

	env.mc.SetState(w.MC)
	if err := env.dr.SetState(w.DRAM); err != nil {
		return 0, err
	}
	copy(env.hier.L3AccessBySource[:], w.HierL3Access)
	copy(env.hier.L3MissBySource[:], w.HierL3Miss)
	env.hier.Writebacks = w.HierWB
	env.hier.NetworkProbes = w.HierProbes
	env.hier.NetworkProbeHits = w.HierProbeHits

	if env.ras != nil && w.HasRAS {
		env.ras.model.SetState(w.Faults)
		env.ras.tracker.SetState(w.Tracker)
		env.ras.scrub.SetState(w.Scrub)
	}
	if env.ps != nil && w.HasPressure {
		env.ps.ctl.SetState(w.Ctl)
		env.ps.ladder.SetState(w.Ladder)
		env.ps.balloon.SetState(w.Balloon)
		env.ps.stallTicks = w.PSStallTicks
		env.ps.lastStalls = w.PSLastStalls
		env.ps.lastAllocs = w.PSLastAllocs
		env.ps.rep = w.PSReport
	}
	env.es.degradedAtPass = w.DegradedAtPass
	env.es.repromotedAtPass = w.RepromotedAtPass
	if env.track != nil && w.HasSeries {
		env.track.SetState(w.Series)
	}
	if env.ledger.Enabled() && w.HasLedger {
		env.ledger.SetState(w.Ledger)
	}
	if env.ev != nil {
		env.ev.cursor = w.EvCursor
		env.ev.bsStart = w.EvBalloonStart
		env.ev.bsUntil = w.EvBalloonUntil
		env.ev.bsPages = w.EvBalloonPages
		env.ev.fsStart = w.EvFaultStart
		env.ev.fsUntil = w.EvFaultUntil
		env.ev.fsBoost = w.EvFaultBoost
	}
	if env.converged != nil {
		*env.converged = w.Converged
		*env.passes = w.PassesDone
	}

	*env.now = w.Now
	*env.clk = w.Clk
	*env.candidates = w.Candidates
	*env.prevFrames = w.PrevFrames
	return w.Pass, nil
}

// checkpoint captures the boundary closing pass p and makes it the newest
// restore target.
func (cs *crashState) checkpoint(p int) error {
	blob, err := cs.env.capture(p)
	if err != nil {
		return err
	}
	if p < 0 {
		cs.boot, cs.bootPass = blob, p
	} else {
		cs.last, cs.lastPass = blob, p
		cs.env.sc.Instant(obs.TIDPlatform, "crash", "checkpoint", *cs.env.now, "pass", uint64(p))
	}
	cs.rep.Checkpoints++
	if cs.obs != nil {
		cs.obs.Checkpoint(p)
	}
	return nil
}

// boundary closes convergence pass p: take the periodic checkpoint if one
// is due, then fire the crash plan. It returns the pass to resume from and
// whether a restore happened (the loop then replays from resume+1).
func (cs *crashState) boundary(p int) (resume int, restored bool, err error) {
	if cs.every > 0 && (p+1)%cs.every == 0 {
		if err := cs.checkpoint(p); err != nil {
			return 0, false, err
		}
	}
	if cs.plan != nil && cs.plan.FireAt(p) {
		resume, err = cs.crashAt(p)
		if err != nil {
			return 0, false, err
		}
		return resume, true, nil
	}
	return 0, false, nil
}

// attemptChain runs the bounded restore-verify-retry loop against one
// checkpoint blob. It reports whether a restore was verified; a non-nil
// error is a real (non-injected) failure and aborts the run. Every exit
// leaves the world restored to the blob.
func (cs *crashState) attemptChain(blob []byte, pass int) (bool, error) {
	for attempt := 0; attempt <= maxRecoveryRetries; attempt++ {
		if attempt > 0 {
			cs.rep.RecoveryRetries++
			cs.rep.RecoveryCycles += recoveryBackoffCycles << uint(attempt-1)
		}
		if _, err := cs.env.restore(blob, pass); err != nil {
			// Our own checkpoint failed to decode or re-apply: the harness
			// is corrupt, not the simulated state. Fatal.
			return false, err
		}
		cs.rep.RecoveryCycles += recoveryRestoreCycles
		if cs.failures > 0 {
			// Injected recovery fault (Config.RecoveryFailures test hook):
			// this attempt is declared failed before verification.
			cs.failures--
			continue
		}
		stats, err := cs.env.alg.VerifyRecovered()
		cs.rep.StableVerified += stats.StableNodes
		cs.rep.BytesVerified += stats.BytesVerified
		cs.rep.RecoveryCycles += uint64(stats.FramesAudited)*recoveryAuditFrameCycles +
			stats.BytesVerified*recoveryVerifyByteCycles
		if err != nil {
			// A restored-from-verified-state index that fails its audit is a
			// genuine corruption bug; retrying a deterministic audit cannot
			// help. Surface it.
			return false, fmt.Errorf("platform: recovery verification at pass %d: %w", pass, err)
		}
		return true, nil
	}
	return false, nil
}

// crashAt kills the host at the boundary closing pass p and drives the
// recovery ladder: newest checkpoint with bounded retries, cold rebuild
// from the boot checkpoint, then permanent software fallback. It returns
// the pass the world was rewound to.
func (cs *crashState) crashAt(p int) (int, error) {
	env := cs.env
	cs.rep.Crashes++
	env.sc.Instant(obs.TIDPlatform, "crash", "host_crash", *env.now, "pass", uint64(p))
	mergesAtCrash := env.img.HV.Merges

	primary, primaryPass := cs.last, cs.lastPass
	hasPrimary := primary != nil
	if !hasPrimary {
		primary, primaryPass = cs.boot, cs.bootPass
	}
	restoredPass := primaryPass
	ok, err := cs.attemptChain(primary, primaryPass)
	if err != nil {
		return 0, err
	}
	if !ok && hasPrimary {
		// Retries exhausted on the newest checkpoint: cold rebuild from boot.
		cs.rep.ColdRebuilds++
		restoredPass = cs.bootPass
		if ok, err = cs.attemptChain(cs.boot, cs.bootPass); err != nil {
			return 0, err
		}
	}
	if !ok {
		// Even the boot image could not be verified (injected faults all the
		// way down). The world is left restored to the last attempt's blob;
		// stop trusting the hardware path and pin the software scanner.
		cs.forcedSW = true
		cs.rep.KSMFallbacks++
		if env.ps != nil {
			env.ps.ladder.Force(p, pressure.KSMFallback, "crash-recovery")
		}
		env.sc.Instant(obs.TIDPlatform, "crash", "ksm_fallback", *env.now, "pass", uint64(p))
	}

	cs.rep.Restores++
	cs.rep.ReplayedPasses += p - restoredPass
	cs.rep.RemergedPages += mergesAtCrash - env.img.HV.Merges
	// Mark the rewind in the provenance stream: replayed passes re-append
	// their events on top of the restored ring, and the marker lets ledger
	// consumers (and crashed-vs-uninterrupted comparisons) find the seam.
	// Arg is the restored-to pass + 1, so the boot checkpoint (-1) encodes
	// as 0 in an unsigned field.
	env.ledger.Append(obs.LedgerEvent{Kind: obs.LKRestored, VM: -1,
		PFN: obs.LedgerNoPFN, Arg: uint64(restoredPass + 1)})
	if cs.obs != nil {
		cs.obs.Restored(restoredPass)
	}
	env.sc.Instant(obs.TIDPlatform, "crash", "restored", *env.now, "pass", uint64(p))
	return restoredPass, nil
}
