package platform

import (
	"fmt"
	"sort"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/pressure"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// The tick-driven runtime. Run's converge-then-measure protocol is really a
// sequence of discrete ticks — one convergence pass, then one measurement
// interval — with all state between ticks held in loop locals. Runtime
// hoists those locals into a resumable machine: Start builds the world,
// each Step advances exactly one tick, Inject feeds live workload events
// (VM spawn/kill, phase change, balloon storm, fault storm, host crash)
// into the stream, and Drain steps to completion. Run is a thin driver over
// it, so batch and streaming execution are the same code path and their
// Results are bit-identical by construction.
//
// Live events apply at the top of a convergence pass, in Pass order, before
// the pass scans — exactly where the config-scheduled Events list applies
// them — so a run that Injects an event before stepping past its pass is
// indistinguishable from a run whose Config carried the same schedule. The
// applied-event cursor and the storm windows the events open are part of
// the checkpointed world (worldPayload v2): a crash replay re-applies the
// replayed window's events identically, and a snapshot restored into a
// fresh runtime re-derives the storm actions for the passes it replays.

// EventKind discriminates live workload events.
type EventKind int

// The live-event vocabulary.
const (
	// EvVMSpawn boots one more VM mid-run: a full image region (dup, zero,
	// unique pages) written on the guest demand path, then made mergeable.
	EvVMSpawn EventKind = iota
	// EvVMKill tears down the live VM with ID Event.VM: every present frame
	// is released and the address space leaves the mergeable set.
	EvVMKill
	// EvPhaseChange rewrites Event.Frac of the unique-page population with
	// fresh content and makes the rewritten pages the new volatile set — an
	// application phase boundary that invalidates prior merge work.
	EvPhaseChange
	// EvBalloonStorm opens an allocation-burst window: Event.Pages burst
	// writes per pass for Event.Passes passes, torn down at the window's
	// end. No-op for profiles without a burst region.
	EvBalloonStorm
	// EvFaultStorm multiplies the DRAM fault model's transient rates by
	// Event.Boost for Event.Passes passes. No-op without an armed fault
	// model.
	EvFaultStorm
	// EvCrash kills the host at the boundary closing pass Event.Pass. It
	// never enters the event stream: a config-scheduled EvCrash folds into
	// Config.Crash at Start, an injected one goes straight to the armed
	// crash plan.
	EvCrash
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EvVMSpawn:
		return "vm_spawn"
	case EvVMKill:
		return "vm_kill"
	case EvPhaseChange:
		return "phase_change"
	case EvBalloonStorm:
		return "balloon_storm"
	case EvFaultStorm:
		return "fault_storm"
	case EvCrash:
		return "crash"
	default:
		return "?"
	}
}

// Event is one live workload event, applied at the top of convergence pass
// Pass (before the pass scans). Fields beyond Pass/Kind are per-kind
// parameters; unused ones are ignored.
type Event struct {
	Pass int
	Kind EventKind

	VM     int     // EvVMKill: hypervisor VM ID to tear down
	Pages  int     // EvBalloonStorm: burst pages written per pass
	Passes int     // EvBalloonStorm, EvFaultStorm: window length in passes
	Frac   float64 // EvPhaseChange: fraction of unique pages rewritten
	Boost  float64 // EvFaultStorm: transient fault-rate multiplier
}

// eventBurstDupFrac is the duplicate fraction of event-driven balloon-storm
// writes (the pressure layer's config-scheduled storm has its own knob).
const eventBurstDupFrac = 0.5

// eventState is the live-event stream's mutable state: the schedule, the
// applied cursor, and the storm windows applied events opened. The cursor
// and windows are checkpointed (worldPayload v2) so crash replays and
// fresh-runtime restores re-derive per-pass storm actions identically.
type eventState struct {
	events []Event
	cursor int

	bsStart, bsUntil, bsPages int // balloon storm: [bsStart, bsUntil)
	fsStart, fsUntil          int // fault storm: [fsStart, fsUntil)
	fsBoost                   float64
}

func newEventState() *eventState {
	return &eventState{bsStart: -1, bsUntil: -1, fsStart: -1, fsUntil: -1, fsBoost: 1}
}

// runPhase is the runtime's tick type.
type runPhase int

const (
	phaseConverge runPhase = iota
	phaseMeasure
	phaseDone
)

// Runtime is the resumable tick-driven execution of one (mode, app, cfg)
// run. Not goroutine-safe: one goroutine owns Start/Step/Inject/Drain.
type Runtime struct {
	mode Mode
	app  tailbench.Profile
	cfg  Config

	// World, built by Start.
	res   *Result
	img   *tailbench.Image
	hier  *cache.Hierarchy
	dr    *dram.DRAM
	mc    *memctrl.Controller
	reg   *obs.Registry
	sc    obs.Scope
	ras   *rasState
	ps    *pressureState
	es    *engineState
	cs    *crashState
	env   *crashEnv // non-nil for dedup modes; Snapshot/Restore reuse it
	ev    *eventState
	pump  *pumpFetcher
	clock uint64

	// Engine handles. scanner/driver are the live pair (degradation swaps
	// them); hwDriver retains the hardware engine across demotions and is
	// the statistics source; fallback is the software stand-in, created
	// once.
	scanner      *ksm.Scanner
	driver       *pageforge.Driver
	hwDriver     *pageforge.Driver
	fallback     *ksm.Scanner
	makeFallback func() *ksm.Scanner
	alg          *ksm.Algorithm

	track  *obs.SeriesTrack
	verify func(string, int, *ksm.Scanner, *pageforge.Driver) error
	sample func(string, int, uint64, *ksm.Scanner)

	// Convergence-loop state (the old loop locals, now resumable).
	now            uint64
	candidates     uint64
	prevFrames     int
	passes         int
	p              int // next convergence pass to run
	convergedEarly bool

	// Measurement-phase state.
	meas             *measurement
	k                int // next measurement interval to run
	measScanner      *ksm.Scanner
	measDriver       *pageforge.Driver
	dedupBytesBefore uint64

	phase    runPhase
	started  bool
	stopped  bool
	finished bool
}

// NewRuntime prepares a runtime; Start builds the world.
func NewRuntime(mode Mode, app tailbench.Profile, cfg Config) *Runtime {
	return &Runtime{mode: mode, app: app, cfg: cfg}
}

// Start builds the simulated world — image, memory system, engines, RAS,
// pressure, crash machinery, event stream — leaving the runtime at the top
// of convergence pass 0. It performs exactly the setup the batch Run
// performs, in the same order.
func (r *Runtime) Start() error {
	if r.started {
		return fmt.Errorf("platform: runtime already started")
	}
	r.started = true
	mode, app := r.mode, r.app

	// Fold the config-scheduled event stream: EvCrash entries arm the crash
	// plan (they are boundary actions, not pass-top events); the rest sort
	// stably by pass into the live stream. The cfg copy gets its own Passes
	// slice so the caller's config is never aliased.
	r.ev = newEventState()
	for _, e := range r.cfg.Events {
		if e.Kind == EvCrash {
			r.cfg.Crash.Passes = append(append([]int(nil), r.cfg.Crash.Passes...), e.Pass)
			continue
		}
		r.ev.events = append(r.ev.events, e)
	}
	sort.SliceStable(r.ev.events, func(i, j int) bool {
		return r.ev.events[i].Pass < r.ev.events[j].Pass
	})
	cfg := r.cfg

	// Physical memory: enough headroom for images plus churn copies — or,
	// under an armed pressure layer with overcommit, deliberately less than
	// guest demand: the resident images must fit (the build phase has no
	// reclaim to lean on), but the burst region does not, which is exactly
	// the storm the resilience machinery is there to absorb.
	physFrames := cfg.VMs*app.PagesPerVM*2 + 1024
	if cfg.Pressure.Enabled && cfg.Pressure.OvercommitRatio > 1 {
		demand := cfg.VMs * (app.PagesPerVM + app.BurstPagesPerVM)
		physFrames = int(float64(demand)/cfg.Pressure.OvercommitRatio) + 1
		if floor := cfg.VMs*app.PagesPerVM + 64; physFrames < floor {
			physFrames = floor
		}
	}
	img, err := tailbench.BuildImage(app, cfg.VMs, physFrames, cfg.Seed)
	if err != nil {
		return fmt.Errorf("platform: building image: %w", err)
	}
	r.img = img
	if cfg.Verifier != nil {
		cfg.Verifier.BeginRun(mode, img)
	}

	// verify delivers one observation point to the configured verifier; the
	// engine arguments are whatever is live at the call (degradation swaps
	// the driver out for a software scanner mid-run).
	r.verify = func(phase string, idx int, s *ksm.Scanner, d *pageforge.Driver) error {
		if cfg.Verifier == nil {
			return nil
		}
		p := VerifyPoint{Mode: mode, Phase: phase, Index: idx, HV: img.HV, Alg: algOf(s, d)}
		if d != nil {
			p.Quarantined = d.Quarantined
		}
		return cfg.Verifier.Interval(p)
	}

	hierCfg := cfg.Hier
	hierCfg.Cores = cfg.Cores
	if cfg.MeasureL3.SizeBytes > 0 {
		hierCfg.L3 = cfg.MeasureL3
	}
	hier := cache.NewHierarchy(hierCfg)
	dr := dram.New(cfg.DRAM)
	mc := memctrl.New(dr, img.HV.Phys, hier)
	r.hier, r.dr, r.mc = hier, dr, mc

	// The hierarchy's misses go to the memory controller; the closure binds
	// the runtime's clock.
	hier.MemAccess = func(addr uint64, write bool) uint64 {
		return mc.DemandAccess(addr, r.clock, write, dram.SrcCore)
	}

	r.res = &Result{Mode: mode, App: app, DegradedAtPass: -1, RepromotedAtPass: -1}

	// Observability: one registry per run (single-goroutine handles), and a
	// trace process on the shared tracer when tracing is on. Both are purely
	// observational — they never feed back into simulated time.
	r.reg = obs.NewRegistry()
	if cfg.Trace.Enabled() {
		pid := cfg.Trace.NewProcess(fmt.Sprintf("%s/%s", mode, app.Name))
		r.sc = obs.Scope{T: cfg.Trace, PID: pid}
		cfg.Trace.NameThread(pid, obs.TIDPlatform, "platform")
		cfg.Trace.NameThread(pid, obs.TIDDriver, "dedup-driver")
		cfg.Trace.NameThread(pid, obs.TIDEngine, "pfe-engine")
		cfg.Trace.NameThread(pid, obs.TIDRAS, "ras")
		cfg.Trace.NameThread(pid, obs.TIDScrub, "scrubber")
	}
	sc := r.sc

	// RAS: attach the fault model to the controller (every ECC-decoded line
	// fetch now passes through it) and arm the patrol scrubber and the
	// degradation tracker. With Faults disabled nothing is created and the
	// machine is bit-identical to earlier fault-free builds.
	if cfg.Faults.Enabled() {
		fc := cfg.Faults
		if fc.Frames == 0 {
			fc.Frames = img.HV.Phys.TotalFrames()
		}
		r.ras = &rasState{
			model:   faults.NewModel(fc),
			scrub:   &memctrl.Scrubber{MC: mc, Trace: sc},
			tracker: faults.NewRateTracker(cfg.DegradeTrip),
			mc:      mc,
			budget:  cfg.ScrubLinesPerInterval,
		}
		mc.Faults = r.ras.model
	}

	// Pressure: arm the resilience layer — controller, ladder, balloon, and
	// the hypervisor's stall/reclaim hook. Armed only after the image is
	// built: the build phase sizes within the floor by construction.
	if cfg.Pressure.Enabled {
		r.ps = newPressureState(cfg.Pressure, img, r.ras, sc)
	}
	r.es = &engineState{degradedAtPass: -1, repromotedAtPass: -1}

	// Deduplication engine for this mode. The PageForge engine's fetches go
	// through a pumped fetcher so the measurement phase can interleave
	// application traffic with the hardware's line requests in time order.
	r.pump = &pumpFetcher{mc: mc}
	switch mode {
	case Baseline:
	case KSM:
		r.scanner = ksm.NewScanner(ksm.NewAlgorithmSharded(img.HV, ksm.JHasher{}, cfg.ShardBits), cfg.KSMCosts)
		r.scanner.Trace = sc
		r.scanner.TraceNow = func() uint64 { return r.clock }
		r.scanner.Ledger = cfg.Ledger
	case PageForge:
		engine := pageforge.NewEngine(r.pump)
		engine.Trace = sc
		r.driver = pageforge.NewDriver(ksm.NewAlgorithmSharded(img.HV, ksm.NewECCHasher(), cfg.ShardBits), engine, cfg.Driver)
		r.driver.Trace = sc
		r.driver.Ledger = cfg.Ledger
	}
	// Provenance: wire the hypervisor seams the engines cannot see — CoW
	// breaks on guest writes, and evictions split into balloon reclaims vs
	// plain releases by the pressure layer's in-reclaim flag. Installed only
	// when ledgering so the unledgered hot paths keep their nil-hook branch.
	if cfg.Ledger.Enabled() {
		ldg := cfg.Ledger
		ps := r.ps
		img.HV.OnCoWBreak = func(id vm.PageID, old, fresh mem.PFN) {
			ldg.Append(obs.LedgerEvent{Kind: obs.LKCoWBroken, VM: id.VM,
				GFN: uint64(id.GFN), PFN: uint64(old), Arg: uint64(fresh)})
		}
		img.HV.OnEvict = func(id vm.PageID, pfn mem.PFN) {
			kind := obs.LKEvicted
			if ps != nil && ps.inReclaim {
				kind = obs.LKBallooned
			}
			ldg.Append(obs.LedgerEvent{Kind: kind, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn)})
		}
	}

	// hwDriver keeps the hardware driver reachable for statistics even when
	// the degradation policy swaps the live engine to software KSM.
	r.hwDriver = r.driver
	// Per-pass time series: one track per run, sampled at every convergence
	// and measurement boundary. A sample re-publishes the cumulative layer
	// counters into the registry — publishMetrics is an idempotent overwrite
	// and the end-of-run publish rewrites every name, so mid-run publishes
	// cannot perturb the final snapshot — then lets the track window them
	// into deltas.
	if cfg.Series.Enabled() {
		r.track = cfg.Series.Track(fmt.Sprintf("%s/%s", mode, app.Name))
	}
	r.sample = func(phase string, idx int, now uint64, sw *ksm.Scanner) {
		if r.track == nil {
			return
		}
		publishMetrics(r.reg, r.mc, r.dr, r.hier, sw, r.hwDriver, r.ras, r.ps, r.img)
		r.track.Sample(phase, idx, now, r.reg)
	}

	r.prevFrames = -1
	r.passes = cfg.ConvergePasses
	if mode != Baseline {
		if r.scanner != nil {
			r.alg = r.scanner.Alg
		} else {
			r.alg = r.driver.Alg
		}
		r.makeFallback = func() *ksm.Scanner {
			f := ksm.NewScanner(r.hwDriver.Alg, cfg.KSMCosts)
			f.Trace = sc
			f.TraceNow = func() uint64 { return r.clock }
			return f
		}
		// The world-snapshot environment is bound for every dedup mode so
		// Snapshot/Restore work without arming the crash machinery; the
		// crash machinery reuses it when configured.
		r.env = &crashEnv{
			mode: mode, img: img, alg: r.alg, hier: hier, dr: dr, mc: mc,
			ras: r.ras, ps: r.ps, es: r.es, sc: sc,
			hwDriver: r.hwDriver, ksmScanner: r.scanner,
			track: r.track, ledger: cfg.Ledger,
			scanner: &r.scanner, driver: &r.driver, fallback: &r.fallback,
			makeFallback: r.makeFallback, ev: r.ev,
			now: &r.now, clk: &r.clock, candidates: &r.candidates, prevFrames: &r.prevFrames,
			converged: &r.convergedEarly, passes: &r.passes,
		}
		// Crash tolerance: checkpoint/restore machinery, armed only when a
		// crash schedule or a checkpoint cadence is configured. Baseline has
		// no dedup state to recover (and no convergence phase to crash in).
		if cfg.Crash.Enabled() || cfg.CheckpointEvery > 0 {
			r.cs = newCrashState(cfg, r.env)
			// Boot checkpoint: recovery always has at least the pre-pass
			// world to fall back to.
			if err := r.cs.checkpoint(-1); err != nil {
				return err
			}
		}
	}
	r.phase = phaseConverge
	return nil
}

// Step advances the runtime by exactly one tick — one convergence pass or
// one measurement interval — and reports whether the run is complete. After
// done, Result returns the finished result.
func (r *Runtime) Step() (done bool, err error) {
	if !r.started {
		return false, fmt.Errorf("platform: runtime not started")
	}
	for {
		switch r.phase {
		case phaseConverge:
			if r.mode == Baseline || r.convergedEarly || r.p >= r.cfg.ConvergePasses {
				r.finishConverge()
				r.phase = phaseMeasure
				continue
			}
			if err := r.stepConverge(); err != nil {
				r.phase = phaseDone
				return true, err
			}
			return false, nil
		case phaseMeasure:
			if r.k >= r.meas.totalIntervals() {
				r.finishRun()
				r.phase = phaseDone
				continue
			}
			if err := r.meas.stepInterval(r.k, r.measScanner, r.measDriver); err != nil {
				r.phase = phaseDone
				return true, err
			}
			r.k++
			return false, nil
		default:
			return true, nil
		}
	}
}

// applyEvents applies every pending live event scheduled at or before pass
// p, then drives the storm windows: balloon-storm burst writes inside the
// window (teardown at its end) and the fault model's transient-rate boost,
// both re-derived from the checkpointed window fields every pass so crash
// replays and fresh-runtime restores reproduce them exactly.
func (r *Runtime) applyEvents(p int) error {
	ev := r.ev
	for ev.cursor < len(ev.events) && ev.events[ev.cursor].Pass <= p {
		e := ev.events[ev.cursor]
		ev.cursor++
		if err := r.applyEvent(p, e); err != nil {
			return err
		}
	}
	if ev.bsUntil > ev.bsStart {
		switch {
		case p >= ev.bsStart && p < ev.bsUntil:
			n, err := r.img.BurstWrite(ev.bsPages, eventBurstDupFrac)
			if err != nil {
				return fmt.Errorf("platform: event burst at pass %d: %w", p, err)
			}
			r.sc.Instant(obs.TIDPlatform, "event", "balloon_storm", r.now, "pages", uint64(n))
		case p == ev.bsUntil:
			released := r.img.ReleaseBurst()
			r.sc.Instant(obs.TIDPlatform, "event", "balloon_teardown", r.now, "pages", uint64(released))
		}
	}
	if r.ras != nil {
		boost := 1.0
		if p >= ev.fsStart && p < ev.fsUntil {
			boost = ev.fsBoost
		}
		r.ras.model.SetRateBoost(boost)
	}
	return nil
}

// applyEvent applies one live event at the top of pass p. Topology changes
// refresh the scan order so the engines see the new mergeable population
// (cursor position is preserved when still in range — mid-run arrivals do
// not restart the scan).
func (r *Runtime) applyEvent(p int, e Event) error {
	switch e.Kind {
	case EvVMSpawn:
		v, err := r.img.SpawnVM()
		if err != nil {
			return fmt.Errorf("platform: spawn at pass %d: %w", p, err)
		}
		r.alg.RefreshOrder()
		r.sc.Instant(obs.TIDPlatform, "event", "vm_spawn", r.now, "vm", uint64(v.ID))
	case EvVMKill:
		if err := r.img.KillVM(e.VM); err != nil {
			return fmt.Errorf("platform: kill at pass %d: %w", p, err)
		}
		r.alg.RefreshOrder()
		r.sc.Instant(obs.TIDPlatform, "event", "vm_kill", r.now, "vm", uint64(e.VM))
	case EvPhaseChange:
		if err := r.img.PhaseShift(e.Frac); err != nil {
			return fmt.Errorf("platform: phase shift at pass %d: %w", p, err)
		}
		r.sc.Instant(obs.TIDPlatform, "event", "phase_change", r.now, "pass", uint64(p))
	case EvBalloonStorm:
		r.ev.bsStart, r.ev.bsUntil, r.ev.bsPages = p, p+e.Passes, e.Pages
	case EvFaultStorm:
		r.ev.fsStart, r.ev.fsUntil, r.ev.fsBoost = p, p+e.Passes, e.Boost
	default:
		return fmt.Errorf("platform: event kind %v cannot appear in the pass stream", e.Kind)
	}
	return nil
}

// stepConverge runs one convergence pass: pending live events, the storm
// windows, the pressure storm schedule, one engine pass, the RAS slice, the
// health-driven engine swap, churn, verification, the convergence verdict,
// the series sample, and the checkpoint/crash boundary. It is the batch
// loop's body, statement for statement.
func (r *Runtime) stepConverge() error {
	cfg, img, ps, ras, es, cs, sc := r.cfg, r.img, r.ps, r.ras, r.es, r.cs, r.sc
	p := r.p
	cfg.Ledger.SetPass(p)
	if err := r.applyEvents(p); err != nil {
		return err
	}
	if ps != nil {
		if err := ps.beginPass(p, r.now); err != nil {
			return err
		}
	}
	pages := r.alg.MergeablePages()
	switch {
	case ps != nil && ps.paused():
		// ScanPaused rung: the engine is shut off entirely this pass; churn
		// and the observation windows keep running so the ladder can see
		// recovery and step back up. The ledger records the whole shed pass
		// as one wasted-work event carrying the page budget the backpressure
		// threw away.
		ps.rep.PausedPasses++
		cfg.Ledger.Append(obs.LedgerEvent{Kind: obs.LKShed, Cause: obs.CauseBackpressureShed,
			VM: -1, PFN: obs.LedgerNoPFN, Arg: uint64(pages)})
	case r.scanner != nil:
		workers := cfg.ShardWorkers
		if ps != nil {
			workers = ps.ctl.ScanWorkers(workers)
		}
		if workers > 0 {
			res := r.scanner.ScanPass(workers)
			r.candidates += uint64(res.Scanned)
		} else {
			for i := 0; i < pages; i++ {
				r.scanner.ScanOne()
				r.candidates++
			}
		}
	default:
		for i := 0; i < pages; i++ {
			_, t, ok := r.driver.ScanOne(r.now)
			if !ok {
				break
			}
			r.now = t
			r.candidates++
		}
	}
	if ras != nil {
		r.now = ras.tick(r.now, uint64(p))
	}
	if ps != nil {
		r.now += ps.takeStallTicks()
		ps.observe(p, r.now)
	}
	// Unified engine selection: either health signal demotes the hardware
	// driver to software KSM on the same algorithm state (the software path
	// reads through the cache hierarchy, not the poisoned ECC fetch pipe,
	// and costs core cycles the throttled rungs are willing to pay); both
	// clearing re-promotes the retained driver.
	wantSW := (ras != nil && ras.tracker.Degraded()) ||
		(ps != nil && ps.ladder.State() >= pressure.KSMFallback) ||
		(cs != nil && cs.forcedSW)
	switch {
	case wantSW && r.driver != nil:
		if r.fallback == nil {
			r.fallback = r.makeFallback()
		}
		r.scanner = r.fallback
		r.driver = nil
		if es.degradedAtPass < 0 {
			es.degradedAtPass = p
		}
		es.repromotedAtPass = -1
		sc.Instant(obs.TIDRAS, "ras", "degrade_trip", r.now, "pass", uint64(p))
	case !wantSW && r.driver == nil && r.hwDriver != nil && es.degradedAtPass >= 0:
		r.driver = r.hwDriver
		r.scanner = nil
		es.repromotedAtPass = p
		sc.Instant(obs.TIDRAS, "ras", "repromote", r.now, "pass", uint64(p))
	}
	if err := img.ChurnVolatile(); err != nil {
		return fmt.Errorf("platform: churn at pass %d: %w", p, err)
	}
	if ps != nil {
		r.now += ps.takeStallTicks()
	}
	// Expose the pass clock to untimed components (the software scanner's
	// merge events) regardless of tracing — keeping the update unconditional
	// is what makes traced and untraced runs bit-identical. Nothing in the
	// simulation reads it back here.
	r.clock = r.now
	if err := r.verify("converge", p, r.scanner, r.driver); err != nil {
		return err
	}
	frames := img.HV.Phys.AllocatedFrames()
	sc.Instant(obs.TIDPlatform, "interval", "pass", r.now, "frames", uint64(frames))
	converged := frames == r.prevFrames && p >= 2 && (ps == nil || ps.quiescent(p))
	r.prevFrames = frames
	// Sample the series at the pass boundary, before the checkpoint: the
	// track's ring is part of the checkpointed world, so a replayed pass
	// re-takes exactly the samples the crash destroyed. The software engine
	// handle falls back to the retained fallback scanner so its cycle
	// counters stay published across re-promotions.
	sw := r.scanner
	if sw == nil {
		sw = r.fallback
	}
	r.sample("converge", p, r.now, sw)
	// Close the pass boundary: periodic checkpoint, then the crash plan. A
	// restore rewinds every loop field (including prevFrames and the
	// convergence verdict baked into it) to the checkpointed pass; the loop
	// replays from there and re-reaches this boundary identically.
	if cs != nil {
		resume, restored, err := cs.boundary(p)
		if err != nil {
			return err
		}
		if restored && resume != p {
			r.p = resume + 1
			return nil
		}
		// resume == p means the crash restored the checkpoint captured at
		// this very boundary: the restored world is bit-identical to the
		// state the convergence verdict above was computed from, so fall
		// through rather than replaying a zero-pass window (which would skip
		// the verdict and converge one pass late).
	}
	if converged {
		r.passes = p + 1
		r.convergedEarly = true
	}
	r.p = p + 1
	return nil
}

// finishConverge closes the mass-merging phase — dedup bandwidth, crash
// report, footprint — and arms the measurement phase for interval stepping.
func (r *Runtime) finishConverge() {
	res, cfg := r.res, r.cfg
	if r.mode != Baseline {
		// A degraded run streamed bytes through both engines; the PageForge
		// side's DRAM volume and the software scanner's add.
		bytes := r.dr.TotalBytes(dram.SrcPageForge)
		if r.scanner != nil {
			bytes += r.scanner.DRAMBytes
		}
		gbps := 0.0
		if r.candidates > 0 {
			intervals := float64(r.candidates) / float64(cfg.PagesToScan)
			seconds := intervals * cfg.SleepMillis / 1e3
			gbps = float64(bytes) / 1e9 / seconds * fullScaleDepthFactor
		}
		res.DedupGBps = gbps
		res.ConvergedPasses = r.passes
	}
	if r.cs != nil {
		res.Crash = r.cs.rep
	}
	res.Footprint = r.img.MeasureFootprint()

	// Measurement phase: MeasureIntervals work intervals with application
	// cache traffic and the dedup engine interleaved, recording bursts,
	// pollution, and demand latency. The engine pair is pinned here — the
	// swap policy only acts during convergence.
	meas := newMeasurement(r.img, r.hier, r.dr, r.mc, cfg, r.app, &r.clock, r.reg)
	meas.pump = r.pump
	meas.trace = r.sc
	meas.ps = r.ps
	meas.ledger = cfg.Ledger
	r.measScanner, r.measDriver = r.scanner, r.driver
	meas.sample = func(k int, end uint64) { r.sample("measure", k, end, r.measScanner) }
	if r.ras != nil {
		// Patrol scrub keeps running through the measurement phase as
		// background DRAM traffic; the tracker keeps refining the UE-rate
		// estimate (the engine swap itself only happens during converge).
		ras := r.ras
		meas.onInterval = func(start uint64) { ras.tick(start, ^uint64(0)) }
	}
	if r.measScanner != nil {
		r.dedupBytesBefore = r.measScanner.DRAMBytes
	} else {
		r.dedupBytesBefore = r.dr.TotalBytes(dram.SrcPageForge)
	}
	meas.verify = func(k int) error { return r.verify("measure", k, r.measScanner, r.measDriver) }
	r.meas = meas
	meas.begin()
}

// finishRun extracts every measured statistic into the Result.
func (r *Runtime) finishRun() {
	res, cfg := r.res, r.cfg
	r.meas.finish()
	r.meas.fill(res)

	// Steady-state dedup bandwidth over the whole measurement phase
	// (including warm-up intervals: the engine works identically in both).
	var dedupBytes uint64
	if r.measScanner != nil {
		dedupBytes = r.measScanner.DRAMBytes - r.dedupBytesBefore
	} else if r.measDriver != nil {
		dedupBytes = r.dr.TotalBytes(dram.SrcPageForge) - r.dedupBytesBefore
	}
	phaseSeconds := float64(r.meas.totalIntervals()) * cfg.SleepMillis / 1e3
	if phaseSeconds > 0 {
		res.SteadyDedupGBps = float64(dedupBytes) / 1e9 / phaseSeconds * fullScaleDepthFactor
	}

	// Application DRAM demand: the profile's baseline bandwidth scaled by
	// the measured miss-rate inflation (pollution makes the cores fetch more
	// lines from memory).
	res.DemandGBps = r.app.DemandGBps
	if r.app.BaselineL3Miss > 0 && res.L3MissRate > 0 {
		res.DemandGBps = r.app.DemandGBps * res.L3MissRate / r.app.BaselineL3Miss
	}
	res.TotalGBps = res.DemandGBps + res.DedupGBps

	if r.measScanner != nil {
		res.Stats = r.measScanner.Alg.Stats
		res.KSMBreakdown = r.measScanner.Cycles
	}
	if r.hwDriver != nil {
		res.Stats = r.hwDriver.Alg.Stats
		res.PFBatchMean = r.hwDriver.HW.BatchCycles.Mean()
		res.PFBatchStd = r.hwDriver.HW.BatchCycles.Stddev()
		res.PFBatches = r.hwDriver.Batches
		res.PFLinesFetched = r.hwDriver.HW.LinesFetched
		res.PFNetworkHits = r.mc.Stats.PFNetworkHits
		res.PFDriverCycles = r.hwDriver.CoreCycles
		res.PFLineRetries = r.hwDriver.HW.LineRetries
		res.PFRetriesHealed = r.hwDriver.HW.RetriesHealed
		res.PFFaultAborts = r.hwDriver.HW.FaultAborts
		res.SWFallbacks = r.hwDriver.SWFallbacks
		res.QuarantinedFrames = r.hwDriver.QuarantinedFrames()
	}
	res.Degraded = r.es.degradedAtPass >= 0 && r.es.repromotedAtPass < 0
	res.DegradedAtPass = r.es.degradedAtPass
	res.RepromotedAtPass = r.es.repromotedAtPass
	if r.ras != nil {
		res.UERate = r.ras.tracker.Rate()
		res.ECCCorrected = r.mc.Stats.ECCCorrected
		res.ECCUncorrectable = r.mc.Stats.ECCUncorrectable
		res.ScrubLines = r.ras.scrub.Stats.Lines
		res.ScrubCorrected = r.ras.scrub.Stats.Corrected
		res.ScrubUEs = r.ras.scrub.Stats.Uncorrectable
	}
	if r.ps != nil {
		res.Pressure = r.ps.finalize()
	}

	publishMetrics(r.reg, r.mc, r.dr, r.hier, r.measScanner, r.hwDriver, r.ras, r.ps, r.img)
	res.Metrics = r.reg.Snapshot()
	r.finished = true
}

// Inject schedules one live event into the running stream. Events apply at
// the top of a convergence pass; an event scheduled for a pass the runtime
// has already reached applies at the top of the next pass. EvCrash routes
// to the armed crash plan (Config.Crash or CheckpointEvery must have armed
// the machinery at Start). Only the convergence phase accepts events.
func (r *Runtime) Inject(e Event) error {
	if !r.started {
		return fmt.Errorf("platform: inject: runtime not started")
	}
	if r.mode == Baseline {
		return fmt.Errorf("platform: inject: Baseline runs no convergence passes")
	}
	if r.phase != phaseConverge || r.convergedEarly {
		return fmt.Errorf("platform: inject: run is past the convergence phase")
	}
	if e.Pass < r.p {
		e.Pass = r.p
	}
	if e.Kind == EvCrash {
		if r.cs == nil {
			return fmt.Errorf("platform: inject: crash machinery not armed (set CheckpointEvery or Crash)")
		}
		if r.cs.plan == nil {
			r.cs.plan = faults.NewCrashPlan(faults.CrashConfig{})
		}
		r.cs.plan.Add(e.Pass)
		return nil
	}
	// Insert at the sorted position past the applied cursor, after existing
	// same-pass events: injection order is application order, matching a
	// config schedule listing the same events in the same sequence.
	ev := r.ev
	i := ev.cursor
	for i < len(ev.events) && ev.events[i].Pass <= e.Pass {
		i++
	}
	ev.events = append(ev.events, Event{})
	copy(ev.events[i+1:], ev.events[i:])
	ev.events[i] = e
	return nil
}

// Drain steps the runtime to completion and returns the Result.
func (r *Runtime) Drain() (*Result, error) {
	for {
		done, err := r.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return r.res, nil
		}
	}
}

// Stop abandons the run. Subsequent Steps report done; Result holds
// whatever had been filled in (complete only if the run finished first).
func (r *Runtime) Stop() {
	r.stopped = true
	r.phase = phaseDone
}

// Snapshot serializes the entire simulated world at the last closed
// convergence-pass boundary — the same image the crash machinery
// checkpoints — without arming crash handling. Convergence phase and dedup
// modes only (Baseline has no recoverable dedup state).
func (r *Runtime) Snapshot() ([]byte, error) {
	if r.env == nil {
		return nil, fmt.Errorf("platform: snapshot: no dedup world armed")
	}
	if r.phase != phaseConverge {
		return nil, fmt.Errorf("platform: snapshot: only convergence-phase snapshots are supported")
	}
	blob, err := r.env.capture(r.p - 1)
	if err != nil {
		return nil, err
	}
	if o, ok := r.cfg.Verifier.(CrashObserver); ok {
		o.Checkpoint(r.p - 1)
	}
	return blob, nil
}

// Restore rewinds the world to a Snapshot blob, in place, resuming from the
// pass after the one the blob closed. The receiving runtime must be built
// from the same (mode, app, cfg) — a snapshot is loop state, not
// configuration — but need not be the one that took the snapshot: a Started
// fresh runtime restores to the same world (the blob carries the applied-
// event cursor and storm windows, so replayed passes re-derive live-event
// effects identically). A runtime carrying a stateful Verifier should only
// restore its own snapshots (the verifier's shadow model rewinds through
// the CrashObserver callback, which a fresh verifier has no history for).
func (r *Runtime) Restore(blob []byte) error {
	if r.env == nil {
		return fmt.Errorf("platform: restore: no dedup world armed")
	}
	if r.phase != phaseConverge {
		return fmt.Errorf("platform: restore: only convergence-phase restores are supported")
	}
	pass, err := r.env.restore(blob, r.p-1)
	if err != nil {
		return err
	}
	r.p = pass + 1
	if o, ok := r.cfg.Verifier.(CrashObserver); ok {
		o.Restored(pass)
	}
	return nil
}

// Metrics publishes the cumulative layer counters and returns a live
// registry snapshot — the streaming observability surface between ticks.
// Purely observational (publishMetrics is an idempotent overwrite).
func (r *Runtime) Metrics() *obs.Snapshot {
	sw := r.scanner
	if sw == nil {
		sw = r.fallback
	}
	publishMetrics(r.reg, r.mc, r.dr, r.hier, sw, r.hwDriver, r.ras, r.ps, r.img)
	return r.reg.Snapshot()
}

// Result returns the run's result, fully populated only once Step has
// reported done without error.
func (r *Runtime) Result() *Result { return r.res }

// Pass reports the next convergence pass to run (the number of passes
// completed, while in the convergence phase).
func (r *Runtime) Pass() int { return r.p }

// Done reports whether the run has finished (or was stopped).
func (r *Runtime) Done() bool { return r.phase == phaseDone }
