package platform

import (
	"math"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/pageforge"
	"repro/internal/sim"
	"repro/internal/tailbench"
)

// The measurement phase models traffic at the shared-L3 boundary. The
// sampled application stream represents the accesses that *reach* the L3
// (private-cache misses); each core owns a synthetic warm region — bigger
// than a private L2, resident in the L3 at baseline — plus a cold stream of
// never-reused lines. The application's baseline L3 local miss rate is then
// the profile's cold fraction by construction (Table 4's Baseline column is
// an application property), while the *increase* under KSM — the paper's
// measured pollution — emerges from the kthread's streaming sweep evicting
// warm lines between reuses.
//
// The KSM cache sweep is subsampled by ksmStreamSubsample to match the
// sampled application rate (both streams are ~3 orders of magnitude
// thinner than reality; pollution is a ratio of the two, so they must be
// thinned together). Dedup DRAM *bandwidth* (Figure 11) is instead computed
// from unsampled byte volumes during the mass-merging phase.
const (
	warmLinesPerCore   = 1024 // 64KB per core: L2-scale reuse set at the (scaled) L3
	ksmStreamSubsample = 112
	l3HitLatency       = 20
	warmupIntervals    = 8 // intervals run before statistics reset
)

type measurement struct {
	img   *tailbench.Image
	hier  *cache.Hierarchy
	dr    *dram.DRAM
	mc    *memctrl.Controller
	cfg   Config
	app   tailbench.Profile
	clock *uint64
	rng   *sim.RNG

	coreZipf []float64
	burst    sim.Online
	// demandLat is the full latency distribution of sampled application
	// accesses (registered as platform/demand_latency_cycles): the latency
	// experiments report its mean and tail quantiles, not just the mean.
	demandLat *obs.Histogram
	trace     obs.Scope
	coldNext  uint64 // monotonically fresh cold-line counter
	ksmNext   uint64 // monotonically fresh KSM-stream counter

	// pump interleaves application traffic into the PageForge engine's
	// fetch stream at line granularity.
	pump *pumpFetcher

	// onInterval, when set, runs at each work-interval boundary (RAS: the
	// patrol-scrub slice and UE-rate tracker observation).
	onInterval func(start uint64)

	// ps, when non-nil, is the armed pressure layer: it scales the
	// per-interval scan budget (boost under frame pressure, shed under
	// latency throttling), pauses scanning on the ladder's bottom rung, and
	// receives one observation window per interval.
	ps *pressureState

	// verify, when set, runs after each completed interval (post-churn); a
	// non-nil error aborts the measurement.
	verify func(k int) error

	// ledger, when non-nil, receives the pass stamp for each interval
	// (continuing the converge pass numbering); sample, when set, takes one
	// series sample at each interval boundary. Both are purely observational.
	ledger *obs.Ledger
	sample func(k int, end uint64)

	// Per-phase stepping state, initialized by begin and advanced by
	// stepInterval: the interval length and clock base, the PageForge
	// engine's running timestamp, and the pages scanned since the last
	// churn. Hoisted to fields (rather than loop locals) so the runtime can
	// execute the measurement one interval per tick.
	interval        uint64
	base            uint64
	pfNow           uint64
	pagesSinceChurn int
}

// pumpFetcher wraps the memory controller's fetch service: before each
// PageForge line fetch, pending application accesses with earlier
// timestamps are issued, keeping the DRAM timeline monotonic and the
// contention between the engine and the cores unbiased.
type pumpFetcher struct {
	mc   *memctrl.Controller
	emit func(deadline uint64)
}

// FetchLine implements pageforge.LineFetcher.
func (p *pumpFetcher) FetchLine(pfn mem.PFN, lineIdx int, now uint64, src dram.Source) memctrl.FetchResult {
	if p.emit != nil {
		p.emit(now)
	}
	return p.mc.FetchLine(pfn, lineIdx, now, src)
}

func newMeasurement(img *tailbench.Image, hier *cache.Hierarchy, dr *dram.DRAM,
	mc *memctrl.Controller, cfg Config, app tailbench.Profile, clock *uint64,
	reg *obs.Registry) *measurement {

	m := &measurement{
		img: img, hier: hier, dr: dr, mc: mc, cfg: cfg, app: app, clock: clock,
		rng:       sim.NewRNG(cfg.Seed ^ 0xBEEF),
		demandLat: reg.Histogram("platform/demand_latency_cycles"),
	}
	total := 0.0
	for i := 0; i < cfg.Cores; i++ {
		w := 1.0 / math.Pow(float64(i+1), cfg.ZipfS)
		m.coreZipf = append(m.coreZipf, w)
		total += w
	}
	for i := range m.coreZipf {
		m.coreZipf[i] /= total
	}
	return m
}

func (m *measurement) zipfCore() int {
	u := m.rng.Float64()
	for i, w := range m.coreZipf {
		if u < w {
			return i
		}
		u -= w
	}
	return m.cfg.Cores - 1
}

// Synthetic address regions, all above any real frame address.
const (
	warmRegionBase = uint64(1) << 40
	coldRegionBase = uint64(1) << 41
	ksmRegionBase  = uint64(1) << 42
)

func warmAddr(core int, line int) uint64 {
	return warmRegionBase + uint64(core)<<30 + uint64(line)*mem.LineSize
}

// l3Access services one sampled access at the shared-L3 boundary,
// allocating on miss, and returns its latency.
func (m *measurement) l3Access(addr uint64, t uint64, src dram.Source) uint64 {
	*m.clock = t
	if m.hier.L3().Lookup(addr) != nil {
		return l3HitLatency
	}
	lat := m.mc.DemandAccess(addr, t, false, src)
	m.hier.L3().Insert(addr, cache.Exclusive)
	return l3HitLatency + lat
}

// appAccessesPerInterval is each core's sampled L3-level access count per
// work interval.
func (m *measurement) appAccessesPerInterval() int {
	n := int(m.app.QPS * float64(m.app.LinesPerQuery) * m.cfg.SleepMillis / 1e3)
	if n < 300 {
		n = 300 // background-activity floor for very-low-QPS apps
	}
	if n > 4000 {
		n = 4000
	}
	return n
}

// begin opens the measurement phase: the clock jumps to a base clear of
// convergence timestamps and the stepping state resets. The phase then runs
// as warmupIntervals+MeasureIntervals stepInterval ticks, closed by finish.
func (m *measurement) begin() {
	m.interval = m.cfg.IntervalCycles()
	m.base = uint64(1) << 44 // clock base, clear of convergence timestamps
	*m.clock = m.base
	m.pfNow = m.base
	m.pagesSinceChurn = 0
}

// stepInterval executes work interval k (warm-up intervals included — the
// first warmupIntervals ticks run identically and reset statistics at the
// boundary). Exactly one of scanner/driver is non-nil for the dedup
// configurations.
func (m *measurement) stepInterval(k int, scanner *ksm.Scanner, driver *pageforge.Driver) error {
	interval := m.interval
	base := m.base
	{
		start := base + uint64(k)*interval
		*m.clock = start
		if k == warmupIntervals {
			m.hier.ResetStats()
			m.dr.ResetBandwidthWindows()
			m.burst.Reset()
			m.demandLat.Reset()
		}
		measuring := k >= warmupIntervals
		m.ledger.SetPass(m.cfg.ConvergePasses + k)
		if m.onInterval != nil {
			m.onInterval(start)
		}

		// Application accesses, the kthread's streaming sweep, and the
		// PageForge engine's fetches must reach the DRAM model in time
		// order; the emitter issues app traffic incrementally between
		// dedup-engine steps.
		em := m.newEmitter(start, interval, measuring)
		end := start + interval

		// Pressure backpressure: the controller pulls the page budget up
		// when free frames are scarce (merging is reclaim) and sheds it when
		// demand-path tail latency degrades; the ladder's bottom rung stops
		// scanning entirely. With the layer off, budget is exactly
		// PagesToScan and the interval is bit-identical to older builds.
		budget := m.cfg.PagesToScan
		paused := false
		if m.ps != nil {
			budget = m.ps.ctl.ScanBudget(budget)
			paused = m.ps.paused()
			if paused {
				m.ps.rep.PausedPasses++
			}
		}

		switch {
		case paused:
			if measuring {
				m.burst.Add(0)
			}
		case scanner != nil:
			before := scanner.Cycles.Total()
			bytesBefore := scanner.BytesTouched
			res := scanner.ScanBatch(budget)
			busy := scanner.Cycles.Total() - before
			if measuring {
				m.burst.Add(float64(busy))
			}
			// Replay the batch's streaming as cold L3 traffic across the
			// busy window, interleaved with app accesses.
			lines := int((scanner.BytesTouched - bytesBefore) / mem.LineSize / ksmStreamSubsample)
			if lines > 100_000 {
				lines = 100_000
			}
			if lines > 0 {
				// An overloaded kthread overruns its period; its streaming
				// must still stay inside this interval's timeline so the
				// DRAM model sees monotonic time across intervals.
				window := busy
				if window > interval {
					window = interval
				}
				if window == 0 {
					window = 1
				}
				kstep := window / uint64(lines+1)
				kt := start
				for i := 0; i < lines; i++ {
					em.emitUntil(kt)
					addr := ksmRegionBase + m.ksmNext*mem.LineSize
					m.ksmNext++
					m.l3Access(addr, kt, dram.SrcKSM)
					kt += kstep
				}
			}
			m.pagesSinceChurn += res.Scanned
		case driver != nil:
			if m.pfNow < start {
				m.pfNow = start
			}
			ccBefore := driver.CoreCycles
			// Scan candidates until the page budget or the interval's wall
			// clock runs out. The pump issues app traffic line-by-line in
			// step with the engine's fetches, so DRAM sees one merged,
			// time-ordered stream.
			m.pump.emit = em.emitUntil
			for scanned := 0; scanned < budget && m.pfNow < end; scanned++ {
				_, done, ok := driver.ScanOne(m.pfNow)
				if !ok {
					break
				}
				m.pfNow = done
				m.pagesSinceChurn++
			}
			m.pump.emit = nil
			if measuring {
				m.burst.Add(float64(driver.CoreCycles - ccBefore))
			}
		default:
			if measuring {
				m.burst.Add(0)
			}
		}
		em.emitUntil(end)
		if m.trace.Enabled() {
			name := "interval"
			if !measuring {
				name = "warmup_interval"
			}
			m.trace.Complete(obs.TIDPlatform, "interval", name, start, interval, "k", uint64(k))
		}

		if alg := algOf(scanner, driver); alg != nil && m.pagesSinceChurn >= alg.MergeablePages() {
			if m.trace.Enabled() {
				m.trace.Instant(obs.TIDPlatform, "interval", "churn", end, "pages", uint64(m.pagesSinceChurn))
			}
			if err := m.img.ChurnVolatile(); err != nil {
				return err
			}
			m.pagesSinceChurn = 0
		}
		if m.ps != nil {
			// One observation window per interval: demand-path p99 into the
			// latency backpressure, then watermarks and the ladder. Window
			// stamps continue the converge pass numbering.
			m.ps.observeInterval(m.cfg.ConvergePasses+k, end, m.demandLat.P99())
		}
		if m.sample != nil {
			m.sample(k, end)
		}
		if m.verify != nil {
			if err := m.verify(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// finish closes the measurement phase, parking the clock at the phase's
// end so post-measurement consumers see a fully-elapsed timeline.
func (m *measurement) finish() {
	*m.clock = m.base + uint64(warmupIntervals+m.cfg.MeasureIntervals)*m.interval
}

func algOf(s *ksm.Scanner, d *pageforge.Driver) *ksm.Algorithm {
	if s != nil {
		return s.Alg
	}
	if d != nil {
		return d.Alg
	}
	return nil
}

// appEmitter issues the sampled application L3 traffic incrementally in
// time order: one round (one access per core) every step, so dedup-engine
// activity can be merged into the same monotonic DRAM timeline.
type appEmitter struct {
	m         *measurement
	t         uint64
	step      uint64
	end       uint64
	measuring bool
}

func (m *measurement) newEmitter(start, interval uint64, measuring bool) *appEmitter {
	n := m.appAccessesPerInterval()
	return &appEmitter{
		m:         m,
		t:         start,
		step:      interval / uint64(n+1),
		end:       start + interval,
		measuring: measuring,
	}
}

// emitUntil issues app rounds with timestamps up to the deadline (bounded
// by the interval's end).
func (e *appEmitter) emitUntil(deadline uint64) {
	if deadline > e.end {
		deadline = e.end
	}
	m := e.m
	pCold := m.app.BaselineL3Miss
	for e.t < deadline {
		for core := 0; core < m.cfg.Cores; core++ {
			var addr uint64
			if m.rng.Bool(pCold) {
				// Cold misses land on random rows across the memory system
				// (the row-buffer locality of real demand misses is poor);
				// a random 2^26-line region makes L3 reuse negligible.
				addr = coldRegionBase + (m.rng.Uint64()%(1<<26))*mem.LineSize
			} else {
				addr = warmAddr(core, m.rng.Intn(warmLinesPerCore))
			}
			lat := m.l3Access(addr, e.t, dram.SrcCore)
			if e.measuring {
				m.demandLat.Add(float64(lat))
			}
		}
		e.t += e.step
	}
}

// fill extracts the measured statistics into the result.
func (m *measurement) fill(res *Result) {
	res.BurstMean = m.burst.Mean()
	res.BurstStd = m.burst.Stddev()
	res.L3MissRate = m.hier.L3MissRate()
	res.AvgDemandLatency = m.demandLat.Mean()
	res.DemandLatP50 = m.demandLat.P50()
	res.DemandLatP95 = m.demandLat.P95()
	res.DemandLatP99 = m.demandLat.P99()
	res.DemandLatMax = m.demandLat.Max()
	res.MeasuredCycles = uint64(m.cfg.MeasureIntervals) * m.cfg.IntervalCycles()
}

// ControllerStats exposes the memory-controller counters for experiments.
func (m *measurement) ControllerStats() memctrl.Stats { return m.mc.Stats }

// totalIntervals reports warm-up plus measured work intervals.
func (m *measurement) totalIntervals() int { return warmupIntervals + m.cfg.MeasureIntervals }
