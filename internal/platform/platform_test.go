package platform

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/tailbench"
)

// fastConfig shrinks the machine for quick tests while preserving shape.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.ConvergePasses = 10
	cfg.MeasureIntervals = 8
	cfg.PagesToScan = 200
	return cfg
}

// fastApp shrinks the per-VM image.
func fastApp(name string) tailbench.Profile {
	p := *tailbench.ProfileByName(name)
	p.PagesPerVM = 300
	return p
}

func TestRunBaseline(t *testing.T) {
	res, err := Run(Baseline, fastApp("img_dnn"), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.BurstMean != 0 {
		t.Fatalf("baseline has bursts: %g", res.BurstMean)
	}
	if res.Footprint.Savings() != 0 {
		t.Fatalf("baseline shows savings: %g", res.Footprint.Savings())
	}
	if res.AvgDemandLatency <= 0 {
		t.Fatal("no demand latency measured")
	}
	if res.L3MissRate <= 0 || res.L3MissRate >= 1 {
		t.Fatalf("L3 miss rate %g out of range", res.L3MissRate)
	}
	if res.DedupGBps != 0 {
		t.Fatalf("baseline has dedup bandwidth: %g", res.DedupGBps)
	}
}

func TestRunKSMShape(t *testing.T) {
	cfg := fastConfig()
	app := fastApp("img_dnn")
	base, err := Run(Baseline, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Memory savings in a plausible band around the paper's 48%.
	if s := res.Footprint.Savings(); s < 0.30 || s > 0.65 {
		t.Fatalf("KSM savings = %.2f", s)
	}
	// The kthread steals real core time every interval.
	if res.BurstMean <= 0 {
		t.Fatal("no KSM bursts measured")
	}
	share := res.BurstMean / float64(cfg.IntervalCycles())
	if share < 0.05 || share > 1.0 {
		t.Fatalf("KSM busy share of one core = %.2f", share)
	}
	// Pollution: L3 miss rate above baseline.
	if res.L3MissRate <= base.L3MissRate {
		t.Fatalf("KSM L3 miss %.3f not above baseline %.3f", res.L3MissRate, base.L3MissRate)
	}
	// Demand latency degraded.
	if res.AvgDemandLatency <= base.AvgDemandLatency {
		t.Fatal("KSM did not degrade demand latency")
	}
	// Dedup traffic visible in the bandwidth accounting.
	if res.DedupGBps <= 0 {
		t.Fatal("no dedup bandwidth measured")
	}
	// Cycle breakdown populated with comparison-dominated work.
	if res.KSMBreakdown.Compare == 0 || res.KSMBreakdown.Hash == 0 {
		t.Fatalf("KSM breakdown %+v", res.KSMBreakdown)
	}
}

func TestRunPageForgeShape(t *testing.T) {
	cfg := fastConfig()
	app := fastApp("img_dnn")
	ksmRes, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Identical savings claim (within a couple of pages of noise from
	// volatile churn timing).
	if diff := pf.Footprint.Savings() - ksmRes.Footprint.Savings(); diff < -0.08 || diff > 0.08 {
		t.Fatalf("savings differ: PF %.3f vs KSM %.3f", pf.Footprint.Savings(), ksmRes.Footprint.Savings())
	}
	// The driver's core cost must be tiny compared to the KSM kthread.
	if pf.BurstMean >= ksmRes.BurstMean/5 {
		t.Fatalf("PF bursts %.0f not far below KSM %.0f", pf.BurstMean, ksmRes.BurstMean)
	}
	// Hardware was exercised and timed.
	if pf.PFBatches == 0 || pf.PFBatchMean <= 0 {
		t.Fatal("no PageForge batches recorded")
	}
	if pf.PFLinesFetched == 0 {
		t.Fatal("no PageForge line fetches")
	}
	// PageForge generates dedup DRAM traffic.
	if pf.DedupGBps <= 0 {
		t.Fatal("no PageForge bandwidth")
	}
}

func TestLatencyOrdering(t *testing.T) {
	cfg := fastConfig()
	app := fastApp("silo")
	base, err := Run(Baseline, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ksmRes, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pfRes, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lb := Latency(app, base, base, cfg, 400, 5)
	lk := Latency(app, base, ksmRes, cfg, 400, 5)
	lp := Latency(app, base, pfRes, cfg, 400, 5)
	// The paper's central result: Baseline < PageForge << KSM.
	if !(lb.Mean < lp.Mean && lp.Mean < lk.Mean) {
		t.Fatalf("mean ordering violated: base=%.0f pf=%.0f ksm=%.0f", lb.Mean, lp.Mean, lk.Mean)
	}
	if !(lb.P95 < lp.P95 && lp.P95 < lk.P95) {
		t.Fatalf("tail ordering violated: base=%.0f pf=%.0f ksm=%.0f", lb.P95, lp.P95, lk.P95)
	}
	// PageForge close to baseline, KSM far.
	pfOverhead := lp.Mean/lb.Mean - 1
	ksmOverhead := lk.Mean/lb.Mean - 1
	if pfOverhead > 0.35 {
		t.Fatalf("PageForge mean overhead %.2f too high", pfOverhead)
	}
	if ksmOverhead < 2*pfOverhead {
		t.Fatalf("KSM overhead %.2f not clearly above PageForge %.2f", ksmOverhead, pfOverhead)
	}
}

func TestModeString(t *testing.T) {
	if Baseline.String() != "Baseline" || KSM.String() != "KSM" || PageForge.String() != "PageForge" {
		t.Fatal("mode names wrong")
	}
	if Mode(9).String() != "?" {
		t.Fatal("unknown mode")
	}
}

func TestPageForgeDegradesUnderPathologicalFaults(t *testing.T) {
	cfg := fastConfig()
	cfg.ConvergePasses = 6
	cfg.MeasureIntervals = 4
	app := fastApp("img_dnn")

	// Control: faults enabled at a negligible rate — no degradation.
	cfg.Faults = faults.Config{Seed: 7, TransientPerRead: 0.001}
	ctl, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Degraded {
		t.Fatalf("benign fault rate tripped degradation (UE rate %g)", ctl.UERate)
	}
	if ctl.ECCCorrected == 0 {
		t.Fatal("transient faults never corrected (injection inert)")
	}
	if ctl.ScrubLines == 0 {
		t.Fatal("patrol scrubber never ran")
	}

	// Pathological: every line read is uncorrectable — the UE-rate policy
	// must demote the hardware engine during convergence, and the run must
	// still complete with software KSM doing the merging.
	cfg.Faults = faults.Config{Seed: 7, DoubleBitPerRead: 1}
	bad, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bad.Degraded {
		t.Fatalf("always-UE DIMM did not degrade (UE rate %g, aborts %d)",
			bad.UERate, bad.PFFaultAborts)
	}
	if bad.DegradedAtPass < 0 || bad.DegradedAtPass >= cfg.ConvergePasses {
		t.Fatalf("DegradedAtPass = %d", bad.DegradedAtPass)
	}
	if bad.PFFaultAborts == 0 {
		t.Fatal("no hardware fault aborts recorded before degradation")
	}
	if bad.UERate <= ctl.UERate {
		t.Fatalf("UE rate not elevated: %g vs control %g", bad.UERate, ctl.UERate)
	}
	// Software KSM still merges: savings comparable to a clean run's band.
	if s := bad.Footprint.Savings(); s < 0.20 {
		t.Fatalf("degraded run stopped merging: savings %.2f", s)
	}
	if bad.KSMBreakdown.Compare == 0 {
		t.Fatal("software scanner never ran after degradation")
	}
}

func TestFaultConfigZeroIsIdentical(t *testing.T) {
	cfg := fastConfig()
	cfg.ConvergePasses = 4
	cfg.MeasureIntervals = 4
	app := fastApp("silo")
	a, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical configs diverged:\n%+v\n%+v", a, b)
	}
	if a.ScrubLines != 0 || a.ECCUncorrectable != 0 || a.Degraded {
		t.Fatalf("zero fault config produced RAS activity: %+v", a)
	}
}
