package platform

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/tailbench"
)

// crashTestConfig is fastConfig shrunk further: crash tests run every
// scenario twice (crashed and uninterrupted).
func crashTestConfig() Config {
	cfg := fastConfig()
	cfg.ConvergePasses = 8
	cfg.MeasureIntervals = 4
	return cfg
}

// assertCrashIdentity runs cfg as given (crash machinery armed) and once
// more with the machinery stripped, and requires the two Results to be
// deeply equal once the Crash report — the one section documenting the
// recovery work itself — is zeroed. This is the tentpole invariant:
// checkpoint → crash → restore → resume must be indistinguishable from
// never crashing. It returns the crashed run's report for further checks.
func assertCrashIdentity(t *testing.T, mode Mode, app tailbench.Profile, cfg Config) CrashReport {
	t.Helper()
	crashed, err := Run(mode, app, cfg)
	if err != nil {
		t.Fatalf("crashed run failed: %v", err)
	}
	plain := cfg
	plain.Crash = faults.CrashConfig{}
	plain.CheckpointEvery = 0
	plain.RecoveryFailures = 0
	want, err := Run(mode, app, plain)
	if err != nil {
		t.Fatalf("uninterrupted run failed: %v", err)
	}
	rep := crashed.Crash
	crashed.Crash = CrashReport{}
	want.Crash = CrashReport{}
	if !reflect.DeepEqual(crashed, want) {
		t.Fatalf("crashed run diverged from uninterrupted run\ncrashed: %+v\nplain:   %+v", crashed, want)
	}
	return rep
}

// TestCrashRestoreResultIdentity is the core bit-identity proof across
// engine modes and index shapes, including a run with an armed fault model
// (RNG streams and tracker state must survive the restore too).
func TestCrashRestoreResultIdentity(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		tune func(*Config)
	}{
		{"KSM", KSM, nil},
		{"KSM-sharded", KSM, func(c *Config) { c.ShardBits = 2; c.ShardWorkers = 2 }},
		{"PageForge", PageForge, nil},
		{"PageForge-faults", PageForge, func(c *Config) {
			c.Faults = faults.Config{Seed: 7, TransientPerRead: 0.001}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := crashTestConfig()
			if tc.tune != nil {
				tc.tune(&cfg)
			}
			cfg.CheckpointEvery = 2
			cfg.Crash = faults.CrashConfig{Passes: []int{2}}
			rep := assertCrashIdentity(t, tc.mode, fastApp("img_dnn"), cfg)
			if rep.Crashes != 1 || rep.Restores != 1 {
				t.Fatalf("crashes=%d restores=%d, want 1/1", rep.Crashes, rep.Restores)
			}
			if rep.Checkpoints == 0 {
				t.Fatal("no checkpoints captured")
			}
			if rep.ReplayedPasses != 1 {
				// Checkpoint at pass 1, crash at pass 2: exactly one pass lost.
				t.Fatalf("ReplayedPasses = %d, want 1", rep.ReplayedPasses)
			}
			if rep.StableVerified == 0 || rep.RecoveryCycles == 0 {
				t.Fatalf("recovery did no verification work: %+v", rep)
			}
		})
	}
}

// TestCheckpointingIsPure: capturing checkpoints without ever crashing must
// not perturb the run at all.
func TestCheckpointingIsPure(t *testing.T) {
	for _, mode := range []Mode{KSM, PageForge} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := crashTestConfig()
			cfg.CheckpointEvery = 2
			rep := assertCrashIdentity(t, mode, fastApp("img_dnn"), cfg)
			if rep.Crashes != 0 || rep.Restores != 0 {
				t.Fatalf("no crashes scheduled but crashes=%d restores=%d", rep.Crashes, rep.Restores)
			}
			if rep.Checkpoints < 2 {
				t.Fatalf("Checkpoints = %d, want >= 2 (boot + periodic)", rep.Checkpoints)
			}
		})
	}
}

// TestCrashWithZeroCheckpoints: with no periodic cadence the only restore
// target is the boot checkpoint — the whole convergence phase replays.
func TestCrashWithZeroCheckpoints(t *testing.T) {
	cfg := crashTestConfig()
	cfg.Crash = faults.CrashConfig{Passes: []int{2}}
	rep := assertCrashIdentity(t, PageForge, fastApp("img_dnn"), cfg)
	if rep.Crashes != 1 || rep.Restores != 1 {
		t.Fatalf("crashes=%d restores=%d, want 1/1", rep.Crashes, rep.Restores)
	}
	if rep.Checkpoints != 1 {
		t.Fatalf("Checkpoints = %d, want 1 (boot only)", rep.Checkpoints)
	}
	// Boot checkpoint is pass -1; crash at pass 2 loses passes 0..2.
	if rep.ReplayedPasses != 3 {
		t.Fatalf("ReplayedPasses = %d, want 3", rep.ReplayedPasses)
	}
	if rep.RemergedPages == 0 {
		t.Fatal("boot restore destroyed no merges — crash landed after nothing happened")
	}
}

// TestBackToBackCrashes: two crashes at the same pass exercise restoring
// the same checkpoint twice within one re-arm window.
func TestBackToBackCrashes(t *testing.T) {
	cfg := crashTestConfig()
	cfg.CheckpointEvery = 2
	cfg.Crash = faults.CrashConfig{Passes: []int{2, 2}}
	rep := assertCrashIdentity(t, KSM, fastApp("img_dnn"), cfg)
	if rep.Crashes != 2 || rep.Restores != 2 {
		t.Fatalf("crashes=%d restores=%d, want 2/2", rep.Crashes, rep.Restores)
	}
	if rep.ReplayedPasses != 2 {
		t.Fatalf("ReplayedPasses = %d, want 2 (one pass per crash)", rep.ReplayedPasses)
	}
}

// TestCrashDuringBalloonStorm crashes in the middle of the overcommit
// burst: the restore must rewind the balloon, the ladder, the stall
// accounting, and the half-written burst region along with everything else.
func TestCrashDuringBalloonStorm(t *testing.T) {
	for _, mode := range []Mode{KSM, PageForge} {
		t.Run(mode.String(), func(t *testing.T) {
			app, cfg := stormConfig(7)
			cfg.CheckpointEvery = 2
			cfg.Crash = faults.CrashConfig{Passes: []int{2}} // mid-burst (storm runs passes 1-3)
			rep := assertCrashIdentity(t, mode, app, cfg)
			if rep.Crashes != 1 {
				t.Fatalf("Crashes = %d, want 1", rep.Crashes)
			}
		})
	}
}

// TestRecoveryRetryAndDegradation drives the injected-failure ladder: a few
// failures retry and still preserve identity; enough failures to exhaust
// the newest checkpoint AND the boot fallback force the permanent software
// demotion, and the run still completes and merges.
func TestRecoveryRetryAndDegradation(t *testing.T) {
	app := fastApp("img_dnn")

	// Retries: 2 injected failures burn attempts 0 and 1; attempt 2
	// verifies. The retried restores land on the same state, so identity
	// still holds.
	cfg := crashTestConfig()
	cfg.CheckpointEvery = 2
	cfg.Crash = faults.CrashConfig{Passes: []int{2}}
	cfg.RecoveryFailures = 2
	rep := assertCrashIdentity(t, PageForge, app, cfg)
	if rep.RecoveryRetries != 2 {
		t.Fatalf("RecoveryRetries = %d, want 2", rep.RecoveryRetries)
	}
	if rep.ColdRebuilds != 0 || rep.KSMFallbacks != 0 {
		t.Fatalf("unexpected escalation: %+v", rep)
	}

	// Exhaustion: 8 failures consume all 4 attempts on the newest
	// checkpoint (cold rebuild) and all 4 on boot — terminal KSM fallback.
	cfg.RecoveryFailures = 8
	res, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatalf("run with exhausted recovery failed outright: %v", err)
	}
	rep = res.Crash
	if rep.ColdRebuilds != 1 {
		t.Fatalf("ColdRebuilds = %d, want 1", rep.ColdRebuilds)
	}
	if rep.KSMFallbacks != 1 {
		t.Fatalf("KSMFallbacks = %d, want 1", rep.KSMFallbacks)
	}
	if rep.RecoveryRetries != 6 {
		t.Fatalf("RecoveryRetries = %d, want 6 (3 per chain)", rep.RecoveryRetries)
	}
	// The demoted run must still deduplicate through the software scanner.
	if !res.Degraded {
		t.Fatal("terminal recovery failure did not leave the run degraded")
	}
	if res.KSMBreakdown.Compare == 0 {
		t.Fatal("software scanner never ran after the forced fallback")
	}
	if s := res.Footprint.Savings(); s < 0.20 {
		t.Fatalf("degraded run stopped merging: savings %.2f", s)
	}
}
