package platform

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rbtree"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// The batch≡streaming equivalence harness. Run is a thin driver over the
// tick-driven Runtime, so "batch equals streaming" for an empty event
// schedule is true by construction; what these tests pin is the part that
// is NOT by construction: a live event stream Injected into a manually
// stepped Runtime must be indistinguishable from the same schedule carried
// in Config.Events through batch Run — same Result, same series points,
// same ledger events — in every world shape (plain engines, sharded index,
// injected faults, overcommit storm, crash-with-recovery).

// streamSchedule is a live-event script that exercises every stream kind:
// a mid-run spawn, a mid-run kill, and an application phase flip. The script
// is front-loaded (passes 1..3) because the fast test configs converge
// within a handful of passes — each event perturbs the frame count, which
// postpones the convergence verdict past the next event.
func streamSchedule() []Event {
	return []Event{
		{Pass: 1, Kind: EvVMSpawn},
		{Pass: 2, Kind: EvVMKill, VM: 1},
		{Pass: 3, Kind: EvPhaseChange, Frac: 0.4},
	}
}

// runStreamed executes the runtime tick by tick, injecting each scheduled
// event live just before the runtime reaches its pass — the streaming half
// of the equivalence.
func runStreamed(t *testing.T, mode Mode, app tailbench.Profile, cfg Config, sched []Event) *Result {
	t.Helper()
	r := NewRuntime(mode, app, cfg)
	if err := r.Start(); err != nil {
		t.Fatalf("stream start: %v", err)
	}
	i := 0
	for {
		for i < len(sched) && !r.Done() && sched[i].Pass <= r.Pass() {
			if err := r.Inject(sched[i]); err != nil {
				t.Fatalf("inject %v at pass %d: %v", sched[i].Kind, r.Pass(), err)
			}
			i++
		}
		done, err := r.Step()
		if err != nil {
			t.Fatalf("stream step: %v", err)
		}
		if done {
			break
		}
	}
	if i < len(sched) {
		t.Fatalf("run converged before event %d (%v at pass %d) could be injected; retune the schedule",
			i, sched[i].Kind, sched[i].Pass)
	}
	return r.Result()
}

// TestStreamEquivalence is the headline deliverable: for every world shape,
// batch Run with a config-scheduled event stream is bit-identical — Result,
// per-pass series points, provenance ledger events — to an event stream
// injected live into a stepped Runtime.
func TestStreamEquivalence(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		setup func() (tailbench.Profile, Config)
		sched []Event
	}{
		{"KSM", KSM,
			func() (tailbench.Profile, Config) { return fastApp("silo"), fastConfig() },
			streamSchedule()},
		{"KSM-sharded", KSM,
			func() (tailbench.Profile, Config) {
				cfg := fastConfig()
				cfg.ShardBits = 2
				cfg.ShardWorkers = 3
				return fastApp("silo"), cfg
			},
			streamSchedule()},
		{"PageForge", PageForge,
			func() (tailbench.Profile, Config) { return fastApp("img_dnn"), fastConfig() },
			streamSchedule()},
		{"PageForge-faultstorm", PageForge,
			func() (tailbench.Profile, Config) {
				cfg := fastConfig()
				cfg.Faults = faults.Config{Seed: 7, TransientPerRead: 0.01, DoubleBitPerRead: 0.002}
				return fastApp("img_dnn"), cfg
			},
			[]Event{
				{Pass: 2, Kind: EvFaultStorm, Passes: 3, Boost: 25},
				{Pass: 3, Kind: EvVMKill, VM: 1},
			}},
		{"KSM-storm", KSM,
			func() (tailbench.Profile, Config) { return stormConfig(7) },
			[]Event{
				{Pass: 1, Kind: EvVMKill, VM: 0},
				{Pass: 2, Kind: EvBalloonStorm, Pages: 20, Passes: 2},
			}},
		{"PageForge-crash", PageForge,
			func() (tailbench.Profile, Config) {
				cfg := crashTestConfig()
				cfg.CheckpointEvery = 2
				return fastApp("img_dnn"), cfg
			},
			[]Event{
				{Pass: 2, Kind: EvVMKill, VM: 1},
				{Pass: 3, Kind: EvVMSpawn},
				{Pass: 4, Kind: EvCrash},
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app, batchCfg := tc.setup()
			batchCfg.Events = tc.sched
			batchLdg := instrument(&batchCfg)
			batch, err := Run(tc.mode, app, batchCfg)
			if err != nil {
				t.Fatalf("batch run: %v", err)
			}

			_, streamCfg := tc.setup()
			streamLdg := instrument(&streamCfg)
			stream := runStreamed(t, tc.mode, app, streamCfg, tc.sched)

			if !reflect.DeepEqual(batch, stream) {
				t.Fatalf("streamed run diverged from batch run\nbatch:  %+v\nstream: %+v", batch, stream)
			}
			if !reflect.DeepEqual(batchLdg.Events(), streamLdg.Events()) {
				t.Fatalf("ledger streams diverged (batch %d events, stream %d events)",
					batchLdg.Len(), streamLdg.Len())
			}
			name := tc.mode.String() + "/" + app.Name
			bp := batchCfg.Series.Track(name).Points()
			sp := streamCfg.Series.Track(name).Points()
			if len(bp) == 0 {
				t.Fatal("series sampled nothing")
			}
			if !reflect.DeepEqual(bp, sp) {
				t.Fatalf("series points diverged (batch %d, stream %d)", len(bp), len(sp))
			}
		})
	}
}

// TestSnapshotRestoreFreshRuntime is the N+M resumability property: step N
// passes, Snapshot, Restore into a brand-new runtime built from the same
// config, and drain — the result must equal the uninterrupted N+M run. Run
// with a live-event schedule straddling the snapshot points, so the blob's
// applied-event cursor is what makes the fresh runtime replay correctly.
// No verifier: a fresh runtime's shadow model would have no history of the
// churned contents (see Runtime.Restore).
func TestSnapshotRestoreFreshRuntime(t *testing.T) {
	for _, mode := range []Mode{KSM, PageForge} {
		t.Run(mode.String(), func(t *testing.T) {
			app := fastApp("silo")
			cfg := fastConfig()
			cfg.Events = []Event{
				{Pass: 1, Kind: EvVMSpawn},
				{Pass: 2, Kind: EvVMKill, VM: 1},
				{Pass: 3, Kind: EvPhaseChange, Frac: 0.4},
			}
			want, err := Run(mode, app, cfg)
			if err != nil {
				t.Fatal(err)
			}
			// N=2 snapshots mid-schedule (the phase flip is still pending);
			// N=4 snapshots after every event applied.
			for _, n := range []int{2, 4} {
				a := NewRuntime(mode, app, cfg)
				if err := a.Start(); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < n; i++ {
					done, err := a.Step()
					if err != nil {
						t.Fatal(err)
					}
					if done {
						t.Fatalf("run finished before %d passes", n)
					}
				}
				blob, err := a.Snapshot()
				if err != nil {
					t.Fatalf("snapshot at pass %d: %v", n, err)
				}

				b := NewRuntime(mode, app, cfg)
				if err := b.Start(); err != nil {
					t.Fatal(err)
				}
				if err := b.Restore(blob); err != nil {
					t.Fatalf("restore at pass %d: %v", n, err)
				}
				if b.Pass() != n {
					t.Fatalf("restored runtime resumes at pass %d, want %d", b.Pass(), n)
				}
				got, err := b.Drain()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("snapshot(N=%d)+restore+drain diverged from uninterrupted run\ngot:  %+v\nwant: %+v", n, got, want)
				}

				// The donor runtime is untouched by the snapshot: draining it
				// reproduces the same result too.
				cont, err := a.Drain()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(cont, want) {
					t.Fatalf("donor runtime diverged after snapshot (N=%d)", n)
				}
			}
		})
	}
}

// TestSnapshotBaselineRejected pins the Snapshot/Restore surface contract:
// Baseline has no dedup world to capture.
func TestSnapshotBaselineRejected(t *testing.T) {
	r := NewRuntime(Baseline, fastApp("silo"), fastConfig())
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(); err == nil {
		t.Fatal("Baseline snapshot succeeded")
	}
	if err := r.Restore(nil); err == nil {
		t.Fatal("Baseline restore succeeded")
	}
	if err := r.Inject(Event{Kind: EvVMSpawn}); err == nil {
		t.Fatal("Baseline inject succeeded")
	}
}

// TestVMKillTeardown audits the mid-run kill path: after a drained run
// whose schedule kills a VM, the victim's address space is fully unmapped,
// no stable/unstable tree node holds a freed frame, the frame refcount
// ledger balances (mappers + engine holds), and the kill actually returned
// frames to the arena relative to the same run without it.
func TestVMKillTeardown(t *testing.T) {
	app := fastApp("silo")
	for _, mode := range []Mode{KSM, PageForge} {
		t.Run(mode.String(), func(t *testing.T) {
			plainRT := NewRuntime(mode, app, fastConfig())
			if err := plainRT.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := plainRT.Drain(); err != nil {
				t.Fatal(err)
			}

			cfg := fastConfig()
			cfg.Events = []Event{{Pass: 2, Kind: EvVMKill, VM: 2}}
			r := NewRuntime(mode, app, cfg)
			if err := r.Start(); err != nil {
				t.Fatal(err)
			}
			if _, err := r.Drain(); err != nil {
				t.Fatal(err)
			}

			hv := r.img.HV
			victim := hv.VM(2)
			for g := vm.GFN(0); int(g) < victim.Pages(); g++ {
				if _, ok := victim.Resolve(g); ok {
					t.Fatalf("killed VM still maps GFN %d", g)
				}
				if victim.Mergeable(g) {
					t.Fatalf("killed VM GFN %d still advertised mergeable", g)
				}
			}
			if r.img.LiveVMs() != cfg.VMs-1 {
				t.Fatalf("live VM count %d, want %d", r.img.LiveVMs(), cfg.VMs-1)
			}

			// Engine holds: stable nodes, unstable nodes, the zero frame.
			holds := map[mem.PFN]int{}
			count := func(n *rbtree.Node) bool { holds[n.PFN]++; return true }
			r.alg.Stable.InOrder(count)
			r.alg.Unstable.InOrder(count)
			if zf, ok := r.alg.ZeroPFN(); ok {
				holds[zf]++
			}
			phys := hv.Phys
			for pfn := mem.PFN(0); int(pfn) < phys.TotalFrames(); pfn++ {
				if !phys.Allocated(pfn) {
					if holds[pfn] > 0 {
						t.Fatalf("freed frame %d still held by %d tree node(s)", pfn, holds[pfn])
					}
					continue
				}
				if got, want := phys.Get(pfn).Refs(), len(hv.Mappers(pfn))+holds[pfn]; got != want {
					t.Fatalf("frame %d refcount %d != mappers+holds %d after kill", pfn, got, want)
				}
			}

			killAlloc := phys.AllocatedFrames()
			plainAlloc := plainRT.img.HV.Phys.AllocatedFrames()
			if killAlloc >= plainAlloc {
				t.Fatalf("kill freed nothing: %d allocated frames with kill, %d without", killAlloc, plainAlloc)
			}
		})
	}
}

// TestVMKillLedgerBalanced replays the provenance ledger of a kill run: the
// teardown must be recorded as eviction events for every present frame the
// victim held, and attaching the ledger must not perturb the run.
func TestVMKillLedgerBalanced(t *testing.T) {
	app := fastApp("silo")
	cfg := fastConfig()
	cfg.Events = []Event{{Pass: 2, Kind: EvVMKill, VM: 2}}
	plain, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ldg := instrument(&cfg)
	instrumented, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, instrumented) {
		t.Fatal("ledger instrumentation perturbed the kill run")
	}
	evicted := 0
	for _, e := range ldg.Events() {
		if e.VM == 2 && (e.Kind == obs.LKEvicted || e.Kind == obs.LKBallooned) && e.Pass == 2 {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("kill produced no eviction provenance for the victim VM")
	}
	if evicted > app.PagesPerVM+app.BurstPagesPerVM {
		t.Fatalf("kill evicted %d pages, victim only had %d", evicted, app.PagesPerVM+app.BurstPagesPerVM)
	}
}
