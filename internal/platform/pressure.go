package platform

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/pressure"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// pressureState bundles the live memory-pressure resilience machinery of
// one run: the watermark/latency controller, the degradation ladder, the
// balloon device, and the synthetic allocation-burst storm. It installs the
// hypervisor's Reclaim hook, so every guest-path allocation that finds the
// arena exhausted stalls (simulated backoff) and balloon-reclaims instead
// of failing outright. Everything it does is deterministic: policy state
// advances only on simulation observations, never on wall-clock or
// randomness, so same-seed runs produce deeply-equal pressure.Reports.
type pressureState struct {
	cfg     pressure.Config
	ctl     *pressure.Controller
	ladder  *pressure.Ladder
	balloon *vm.Balloon
	img     *tailbench.Image
	ras     *rasState // UE-rate signal source; may be nil
	sc      obs.Scope

	// stallTicks accumulates the simulated backoff cycles charged by the
	// reclaim hook since the last takeStallTicks; the converge/measure loops
	// fold it into their clocks at pass boundaries.
	stallTicks uint64

	// inReclaim is set while the balloon sweeps guests, so the hypervisor's
	// eviction seam can label those releases as balloon reclaims rather than
	// plain teardown (the provenance ledger's ballooned/evicted split).
	inReclaim bool

	// last* are the previous observation window's cumulative counters, for
	// per-window alloc-failure rates.
	lastStalls uint64
	lastAllocs uint64

	rep pressure.Report
}

// newPressureState arms the resilience layer over a freshly built image and
// installs the stall/balloon reclaim hook.
func newPressureState(cfg pressure.Config, img *tailbench.Image, ras *rasState, sc obs.Scope) *pressureState {
	ps := &pressureState{
		cfg:     cfg,
		ctl:     pressure.NewController(cfg),
		ladder:  pressure.NewLadder(cfg.Ladder),
		balloon: vm.NewBalloon(img.HV),
		img:     img,
		ras:     ras,
		sc:      sc,
	}
	ps.rep.Enabled = true
	ps.rep.MinFreeFrames = img.HV.Phys.FreeFrames()
	img.HV.Reclaim = ps.reclaimHook
	return ps
}

// reclaimHook implements the stall-and-retry protocol consulted by the
// hypervisor on guest-path arena exhaustion: charge one backoff quantum of
// simulated time, balloon-reclaim a batch of frames, and retry. It gives up
// after MaxStallRetries attempts, or immediately when the balloon finds
// nothing to take (with no concurrency, an identical retry cannot succeed)
// — bounded retries are the layer's no-deadlock guarantee.
func (ps *pressureState) reclaimHook(attempt int) bool {
	if attempt > ps.cfg.MaxStallRetries {
		return false
	}
	ps.stallTicks += ps.cfg.StallCycles
	ps.inReclaim = true
	freed := ps.balloon.Reclaim(ps.cfg.BalloonBatch)
	ps.inReclaim = false
	return freed > 0
}

// takeStallTicks drains the accumulated stall backoff for the caller to
// fold into its simulated clock.
func (ps *pressureState) takeStallTicks() uint64 {
	t := ps.stallTicks
	ps.stallTicks = 0
	return t
}

// ueRate reports the RAS tracker's smoothed UE rate (0 without a fault
// model).
func (ps *pressureState) ueRate() float64 {
	if ps.ras == nil {
		return 0
	}
	return ps.ras.tracker.Rate()
}

// stormActive reports whether converge pass p is inside the burst window.
func (ps *pressureState) stormActive(p int) bool {
	return p >= ps.cfg.BurstStart && p < ps.cfg.BurstStart+ps.cfg.BurstPasses
}

// quiescent reports whether the storm is over and the ladder is back to
// Healthy — the gate for converge's early-exit (a run must not declare
// steady state while degraded or mid-storm).
func (ps *pressureState) quiescent(p int) bool {
	return p >= ps.cfg.BurstStart+ps.cfg.BurstPasses && ps.ladder.State() == pressure.Healthy
}

// beginPass drives the storm schedule at the top of converge pass p: burst
// writes inside the window, teardown of the whole burst region at its end.
// Burst writes run on the guest demand path, so they stall and balloon when
// the arena is exhausted; an error here is a genuine OOM (the hook gave up).
func (ps *pressureState) beginPass(p int, now uint64) error {
	switch {
	case ps.stormActive(p):
		n, err := ps.img.BurstWrite(ps.cfg.BurstPages, ps.cfg.BurstDupFrac)
		ps.rep.BurstPages += uint64(n)
		if err != nil {
			return fmt.Errorf("platform: burst at pass %d: %w", p, err)
		}
		ps.sc.Instant(obs.TIDPlatform, "pressure", "burst", now, "pages", uint64(n))
	case p == ps.cfg.BurstStart+ps.cfg.BurstPasses:
		released := ps.img.ReleaseBurst()
		ps.sc.Instant(obs.TIDPlatform, "pressure", "burst_teardown", now, "pages", uint64(released))
	}
	return nil
}

// observe closes one observation window (a converge pass or a measurement
// interval): refresh the watermark level, proactively balloon at critical
// pressure, and feed the degradation ladder one Signal. Transitions are
// traced as instants.
func (ps *pressureState) observe(p int, now uint64) {
	hv := ps.img.HV
	free, total := hv.Phys.FreeFrames(), hv.Phys.TotalFrames()
	if free < ps.rep.MinFreeFrames {
		ps.rep.MinFreeFrames = free
	}
	ps.ctl.ObserveFree(free, total)
	if ps.ctl.Level() == pressure.LevelCritical {
		// Below the critical watermark the next demand allocation is about
		// to stall: reclaim up to the min watermark before it does.
		if want := int(ps.cfg.Watermarks.Min*float64(total)) - free; want > 0 {
			ps.inReclaim = true
			freed := ps.balloon.Reclaim(want)
			ps.inReclaim = false
			if freed > 0 {
				ps.ctl.ObserveFree(hv.Phys.FreeFrames(), total)
				ps.sc.Instant(obs.TIDPlatform, "pressure", "balloon", now, "frames", uint64(freed))
			}
		}
	}

	dStalls := hv.AllocStalls - ps.lastStalls
	dAllocs := hv.Phys.Allocs - ps.lastAllocs
	ps.lastStalls, ps.lastAllocs = hv.AllocStalls, hv.Phys.Allocs
	failRate := 0.0
	if dStalls+dAllocs > 0 {
		failRate = float64(dStalls) / float64(dStalls+dAllocs)
	}

	from := ps.ladder.State()
	to := ps.ladder.Observe(p, pressure.Signal{
		UERate:   ps.ueRate(),
		FailRate: failRate,
		LatRatio: ps.ctl.LatRatio(),
	})
	if to != from {
		ps.sc.Instant(obs.TIDPlatform, "pressure", "ladder_"+to.String(), now, "pass", uint64(p))
	}
}

// observeInterval is the measurement-phase window: feed the demand-path p99
// into the latency backpressure first, then close the window as usual.
func (ps *pressureState) observeInterval(p int, now uint64, p99 float64) {
	ps.ctl.ObserveLatency(p99)
	ps.observe(p, now)
}

// paused reports whether the ladder has scanning stopped entirely.
func (ps *pressureState) paused() bool {
	return ps.ladder.State() == pressure.ScanPaused
}

// finalize snapshots the end-of-run report for Result.Pressure.
func (ps *pressureState) finalize() pressure.Report {
	rep := ps.rep
	rep.AllocStalls = ps.img.HV.AllocStalls
	rep.BalloonInflated = ps.balloon.Inflated
	rep.BalloonReclaimed = ps.balloon.Reclaimed
	rep.ThrottledPoints = ps.ctl.Throttles
	rep.Transitions = ps.ladder.Transitions()
	rep.Final = ps.ladder.State()
	rep.Path = ps.ladder.Path()
	rep.Recovered = len(rep.Transitions) > 0 && rep.Final == pressure.Healthy
	rep.TotalFrames = ps.img.HV.Phys.TotalFrames()
	rep.FinalLevel = ps.ctl.Level()
	return rep
}
