package platform

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestTraceDisabledBitIdentical is the observability layer's core
// guarantee: attaching a tracer never perturbs the simulation. The traced
// and untraced runs must agree on every Result field — including the full
// metrics snapshot, which DeepEqual follows through the pointer.
func TestTraceDisabledBitIdentical(t *testing.T) {
	app := fastApp("silo")
	plain, err := Run(PageForge, app, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.Trace = obs.NewTracer(obs.DefaultTraceCapacity)
	traced, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Trace.Len() == 0 {
		t.Fatal("tracer attached but no events recorded")
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing perturbed the run:\n%+v\n%+v", plain, traced)
	}
}

// TestTracePressureBitIdentical extends the non-perturbation guarantee to
// the memory-pressure machinery: an overcommit storm emits burst, balloon,
// and ladder-transition instants, and the pressure counters land in the
// metrics snapshot, yet the traced run must stay deeply equal to the
// untraced one — stalls, transitions, and all.
func TestTracePressureBitIdentical(t *testing.T) {
	app, cfg := stormConfig(7)
	plain, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	app2, cfg2 := stormConfig(7)
	cfg2.Trace = obs.NewTracer(obs.DefaultTraceCapacity)
	traced, err := Run(KSM, app2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg2.Trace.Len() == 0 {
		t.Fatal("tracer attached but no events recorded")
	}
	if plain.Metrics.Counters["pressure/alloc_stalls"] == 0 {
		t.Fatal("storm recorded no pressure counters")
	}
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("tracing perturbed the pressured run:\n%+v\n%+v", plain, traced)
	}
}

// TestTracePerfettoShape checks the exported trace against the Chrome
// trace_event contract Perfetto loads: a traceEvents array of objects that
// each carry ph/pid/tid/ts, with complete ('X') events adding a dur.
func TestTracePerfettoShape(t *testing.T) {
	cfg := fastConfig()
	cfg.Trace = obs.NewTracer(obs.DefaultTraceCapacity)
	if _, err := Run(PageForge, fastApp("img_dnn"), cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cfg.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	if doc.DisplayUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayUnit)
	}
	var complete, instant int
	for i, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d missing ph: %v", i, ev)
		}
		for _, key := range []string{"pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Fatalf("event %d missing %s: %v", i, key, ev)
			}
		}
		switch ph {
		case "X":
			complete++
			if _, ok := ev["ts"]; !ok {
				t.Fatalf("complete event %d missing ts: %v", i, ev)
			}
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("complete event %d bad dur: %v", i, ev)
			}
		case "i":
			instant++
			if s, _ := ev["s"].(string); s != "t" {
				t.Fatalf("instant event %d scope %q, want thread", i, s)
			}
		case "M":
			// metadata: process/thread names
		default:
			t.Fatalf("event %d unexpected phase %q", i, ph)
		}
	}
	if complete == 0 || instant == 0 {
		t.Fatalf("trace lacks phases: %d complete, %d instant", complete, instant)
	}
}

// TestDemandLatencyQuantiles pins the acceptance criterion on a real run:
// the measured demand-latency distribution is ordered (p50 <= p95 <= p99
// <= max) and right-skewed enough that p95 sits at or above the mean.
func TestDemandLatencyQuantiles(t *testing.T) {
	res, err := Run(PageForge, fastApp("silo"), fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.DemandLatP50 <= 0 {
		t.Fatal("no p50 measured")
	}
	if res.DemandLatP50 > res.DemandLatP95 || res.DemandLatP95 > res.DemandLatP99 ||
		res.DemandLatP99 > res.DemandLatMax {
		t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g max=%g",
			res.DemandLatP50, res.DemandLatP95, res.DemandLatP99, res.DemandLatMax)
	}
	if res.DemandLatP95 < res.AvgDemandLatency {
		t.Fatalf("p95 %g below mean %g", res.DemandLatP95, res.AvgDemandLatency)
	}
}

// TestMetricsSnapshotDeterminism repeats a run and requires the full
// registry snapshot — every counter, gauge, and histogram — to match.
func TestMetricsSnapshotDeterminism(t *testing.T) {
	app := fastApp("img_dnn")
	a, err := Run(PageForge, app, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(PageForge, app, fastConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics == nil || b.Metrics == nil {
		t.Fatal("run produced no metrics snapshot")
	}
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Fatal("metrics snapshots diverged between identical runs")
	}
	if len(a.Metrics.Counters) == 0 {
		t.Fatal("snapshot has no counters")
	}
	for _, name := range []string{
		"memctrl/demand_reads", "dram/reads", "cache/l3_hits",
		"ksm/pages_scanned", "pageforge/lines_fetched", "pageforge/batches",
	} {
		if _, ok := a.Metrics.Counters[name]; !ok {
			t.Fatalf("snapshot missing %s", name)
		}
	}
}
