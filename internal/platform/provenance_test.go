package platform

import (
	"reflect"
	"regexp"
	"testing"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/tailbench"
)

// instrument attaches a fresh ledger and series to a config and returns the
// ledger for inspection (the series track is reachable through cfg.Series).
func instrument(cfg *Config) *obs.Ledger {
	cfg.Ledger = obs.NewLedger(0)
	cfg.Series = obs.NewSeries(0)
	return cfg.Ledger
}

// TestProvenanceBitIdentical is the tentpole invariant extended from the
// tracer to the full provenance stack: attaching the merge-lifecycle ledger
// AND the per-pass series must never perturb the simulation, in any world —
// plain engines, the sharded-parallel index, injected faults, an overcommit
// storm, and a crash-with-recovery run.
func TestProvenanceBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		mode  Mode
		setup func() (tailbench.Profile, Config)
	}{
		{"KSM", KSM, func() (tailbench.Profile, Config) { return fastApp("silo"), fastConfig() }},
		{"KSM-sharded", KSM, func() (tailbench.Profile, Config) {
			cfg := fastConfig()
			cfg.ShardBits = 2
			cfg.ShardWorkers = 3
			return fastApp("silo"), cfg
		}},
		{"PageForge", PageForge, func() (tailbench.Profile, Config) { return fastApp("img_dnn"), fastConfig() }},
		{"PageForge-faults", PageForge, func() (tailbench.Profile, Config) {
			cfg := fastConfig()
			cfg.Faults = faults.Config{Seed: 7, TransientPerRead: 0.01, DoubleBitPerRead: 0.002}
			return fastApp("img_dnn"), cfg
		}},
		{"KSM-storm", KSM, func() (tailbench.Profile, Config) { return stormConfig(7) }},
		{"PageForge-crash", PageForge, func() (tailbench.Profile, Config) {
			cfg := crashTestConfig()
			cfg.CheckpointEvery = 2
			cfg.Crash = faults.CrashConfig{Passes: []int{2}}
			return fastApp("img_dnn"), cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app, plainCfg := tc.setup()
			plain, err := Run(tc.mode, app, plainCfg)
			if err != nil {
				t.Fatal(err)
			}
			_, cfg := tc.setup()
			ldg := instrument(&cfg)
			instrumented, err := Run(tc.mode, app, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ldg.Len() == 0 {
				t.Fatal("ledger attached but recorded nothing")
			}
			track := cfg.Series.Track(tc.mode.String() + "/" + app.Name)
			if len(track.Points()) == 0 {
				t.Fatal("series attached but sampled nothing")
			}
			if !reflect.DeepEqual(plain, instrumented) {
				t.Fatalf("provenance instrumentation perturbed the run:\n%+v\n%+v", plain, instrumented)
			}
		})
	}
}

// TestCrashRoundTripWithProvenance extends the snapshot round-trip proof to
// the observability state itself: a checkpoint → crash → restore → replay
// run with series and ledger enabled must produce the same Result AND the
// same series points AND the same ledger events (modulo the restored
// markers, which exist precisely to document the recovery) as an
// uninterrupted instrumented run.
func TestCrashRoundTripWithProvenance(t *testing.T) {
	app := fastApp("img_dnn")
	mkCfg := func(crash bool) Config {
		cfg := crashTestConfig()
		if crash {
			cfg.CheckpointEvery = 2
			cfg.Crash = faults.CrashConfig{Passes: []int{2}}
		}
		return cfg
	}
	for _, mode := range []Mode{KSM, PageForge} {
		t.Run(mode.String(), func(t *testing.T) {
			crashCfg := mkCfg(true)
			crashLdg := instrument(&crashCfg)
			crashed, err := Run(mode, app, crashCfg)
			if err != nil {
				t.Fatal(err)
			}
			plainCfg := mkCfg(false)
			plainLdg := instrument(&plainCfg)
			plain, err := Run(mode, app, plainCfg)
			if err != nil {
				t.Fatal(err)
			}

			rep := crashed.Crash
			if rep.Crashes != 1 || rep.Restores != 1 {
				t.Fatalf("crash did not fire: %+v", rep)
			}
			crashed.Crash = CrashReport{}
			plain.Crash = CrashReport{}
			if !reflect.DeepEqual(crashed, plain) {
				t.Fatal("crashed instrumented run diverged from uninterrupted instrumented run")
			}

			trackName := mode.String() + "/" + app.Name
			cp := crashCfg.Series.Track(trackName).Points()
			pp := plainCfg.Series.Track(trackName).Points()
			if len(cp) == 0 || !reflect.DeepEqual(cp, pp) {
				t.Fatalf("series points diverged across the crash (%d vs %d points)", len(cp), len(pp))
			}

			// The ledgers must agree event-for-event once the crashed run's
			// restored markers are dropped; sequence numbers differ past the
			// marker, so compare the payload fields.
			strip := func(evs []obs.LedgerEvent) []obs.LedgerEvent {
				out := make([]obs.LedgerEvent, 0, len(evs))
				for _, e := range evs {
					if e.Kind == obs.LKRestored {
						continue
					}
					e.Seq = 0
					out = append(out, e)
				}
				return out
			}
			ce, pe := crashLdg.Events(), plainLdg.Events()
			if len(ce) != len(pe)+1 {
				t.Fatalf("crashed ledger has %d events, want %d (+1 restored marker)", len(ce), len(pe))
			}
			sc, sp := strip(ce), strip(pe)
			if !reflect.DeepEqual(sc, sp) {
				t.Fatal("ledger events diverged across the crash")
			}
		})
	}
}

// metricName is the registry naming contract every published statistic must
// follow: slash-separated area/noun paths of lowercase snake_case segments
// (bank counters add dotted channel.bank indices).
var metricName = regexp.MustCompile(`^[a-z0-9_]+(/[a-z0-9_.]+)+$`)

// TestMetricNameHygiene walks every name a fully armed run publishes —
// faults, pressure, crash, both provenance layers — and enforces the naming
// contract plus cross-kind uniqueness (a counter, gauge, and histogram may
// never share a name: snapshot diffing and the series sampler key on it).
func TestMetricNameHygiene(t *testing.T) {
	app, cfg := stormConfig(11)
	cfg.Faults = faults.Config{Seed: 3, TransientPerRead: 0.01, DoubleBitPerRead: 0.001}
	cfg.CheckpointEvery = 2
	cfg.Crash = faults.CrashConfig{Passes: []int{2}}
	instrument(&cfg)
	res, err := Run(PageForge, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Metrics
	if snap == nil || len(snap.Counters) == 0 {
		t.Fatal("run published no metrics")
	}
	check := func(kind, name string) {
		if !metricName.MatchString(name) {
			t.Errorf("%s %q violates the area/noun naming contract", kind, name)
		}
	}
	for name := range snap.Counters {
		check("counter", name)
		if _, ok := snap.Gauges[name]; ok {
			t.Errorf("%q is both a counter and a gauge", name)
		}
		if _, ok := snap.Histograms[name]; ok {
			t.Errorf("%q is both a counter and a histogram", name)
		}
	}
	for name := range snap.Gauges {
		check("gauge", name)
		if _, ok := snap.Histograms[name]; ok {
			t.Errorf("%q is both a gauge and a histogram", name)
		}
	}
	for name := range snap.Histograms {
		check("histogram", name)
	}
	// The provenance PR's always-published families must be present.
	for _, name := range []string{"vm/merges", "vm/unmerges", "vm/alloc_stalls"} {
		if _, ok := snap.Counters[name]; !ok {
			t.Errorf("counter %q missing from an armed run", name)
		}
	}
	if _, ok := snap.Gauges["platform/frames_allocated"]; !ok {
		t.Error("gauge platform/frames_allocated missing from an armed run")
	}
}
