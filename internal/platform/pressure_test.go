package platform

import (
	"reflect"
	"testing"

	"repro/internal/pressure"
	"repro/internal/tailbench"
)

// stormConfig builds a compact overcommitted deployment: demand (resident
// image + burst region) is ~1.6x the arena, and the storm runs for three
// converge passes. The image is deliberately merge-poor (low dup/zero
// fractions) with churn, so scanning cannot instantly reclaim the burst —
// demand has to outpace merging for the ladder to see sustained pressure.
func stormConfig(seed uint64) (tailbench.Profile, Config) {
	app := *tailbench.ProfileByName("silo")
	app.PagesPerVM = 100
	app.BurstPagesPerVM = 90
	app.DupFrac = 0.15
	app.ZeroFrac = 0.05
	app.VolatileFrac = 0.3
	cfg := DefaultConfig()
	cfg.VMs = 4
	cfg.Cores = 4
	cfg.ConvergePasses = 14
	cfg.MeasureIntervals = 4
	cfg.Seed = seed
	pc := pressure.DefaultConfig()
	pc.Enabled = true
	pc.OvercommitRatio = 1.6
	pc.BurstStart = 1
	pc.BurstPasses = 3
	pc.BurstPages = 30
	pc.BurstDupFrac = 0.5
	cfg.Pressure = pc
	return app, cfg
}

// TestPressureStormSurvival runs the overcommit storm through both dedup
// engines: the run must complete without error, actually exercise the
// stall/balloon path, walk down the degradation ladder, and recover to
// Healthy after the storm ends.
func TestPressureStormSurvival(t *testing.T) {
	for _, mode := range []Mode{KSM, PageForge} {
		t.Run(mode.String(), func(t *testing.T) {
			app, cfg := stormConfig(7)
			res, err := Run(mode, app, cfg)
			if err != nil {
				t.Fatalf("storm run failed: %v", err)
			}
			rep := res.Pressure
			if !rep.Enabled {
				t.Fatal("pressure report not enabled")
			}
			if rep.BurstPages == 0 {
				t.Fatal("storm wrote no burst pages")
			}
			if rep.AllocStalls == 0 {
				t.Fatal("overcommitted storm never stalled an allocation")
			}
			if rep.BalloonReclaimed == 0 {
				t.Fatal("balloon reclaimed nothing")
			}
			if rep.BalloonInflated != rep.BalloonReclaimed {
				t.Fatalf("inflated %d != reclaimed %d: balloon took a shared page",
					rep.BalloonInflated, rep.BalloonReclaimed)
			}
			if len(rep.Transitions) == 0 {
				t.Fatal("ladder never moved under a 1.6x overcommit storm")
			}
			if rep.Final != pressure.Healthy || !rep.Recovered {
				t.Fatalf("did not recover: final=%v path=%s", rep.Final, rep.Path)
			}
			if rep.MinFreeFrames >= res.Footprint.FramesAllocated {
				t.Fatalf("implausible low-water mark %d", rep.MinFreeFrames)
			}
			// The pressure counters must be visible in the metrics snapshot.
			if c := res.Metrics.Counters["pressure/alloc_stalls"]; c != rep.AllocStalls {
				t.Fatalf("pressure/alloc_stalls counter = %d, want %d", c, rep.AllocStalls)
			}
			if _, ok := res.Metrics.Gauges["pressure/level"]; !ok {
				t.Fatal("pressure/level gauge missing")
			}
		})
	}
}

// TestPressureStormParallelScan runs the storm with sharded parallel scan
// passes: balloon reclaim and the deferred-free windows must not interact
// (the balloon only runs between passes). Run under -race in CI.
func TestPressureStormParallelScan(t *testing.T) {
	app, cfg := stormConfig(11)
	cfg.ShardBits = 2
	cfg.ShardWorkers = 3
	res, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatalf("parallel storm run failed: %v", err)
	}
	if res.Pressure.AllocStalls == 0 || res.Pressure.Final != pressure.Healthy {
		t.Fatalf("parallel storm: stalls=%d final=%v", res.Pressure.AllocStalls, res.Pressure.Final)
	}
}

// TestPressureDeterminism: two same-seed storm runs must produce deeply
// equal Results — transitions, stall counts, and all measured statistics
// included.
func TestPressureDeterminism(t *testing.T) {
	run := func() *Result {
		app, cfg := stormConfig(3)
		res, err := Run(PageForge, app, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Pressure, b.Pressure) {
		t.Fatalf("pressure reports diverged:\n%+v\n%+v", a.Pressure, b.Pressure)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same-seed storm results diverged outside the pressure report")
	}
}

// TestPressureOffBitIdentical: an explicit zero Pressure config must leave
// the run bit-identical to one that never heard of the layer (the armed
// code paths are all gated).
func TestPressureOffBitIdentical(t *testing.T) {
	app := *tailbench.ProfileByName("silo")
	app.PagesPerVM = 120
	cfg := DefaultConfig()
	cfg.VMs = 4
	cfg.Cores = 4
	cfg.ConvergePasses = 8
	cfg.MeasureIntervals = 4
	cfg.Seed = 5
	base, err := Run(KSM, app, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Pressure = pressure.Config{} // explicit zero: off
	again, err := Run(KSM, app, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatal("zero pressure config perturbed the run")
	}
}
