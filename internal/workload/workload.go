// Package workload generates randomized, fully deterministic merge
// scenarios for model-based verification: a Scenario is a compact value
// (seed + deployment shape + engine tunables + fault rate) that maps to one
// platform run. Equal Scenarios produce bit-identical runs, which is what
// makes a failing scenario reproducible and shrinkable.
package workload

import (
	"fmt"
	"math"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/pressure"
	"repro/internal/sim"
	"repro/internal/tailbench"
)

// Scenario is one randomized verification case. All fields are plain data
// so a scenario can be printed with %#v into a ready-to-paste repro test.
type Scenario struct {
	// Seed drives image contents, churn, measurement sampling, and the
	// fault schedule.
	Seed uint64

	// Deployment shape.
	VMs        int
	PagesPerVM int

	// Page-content composition (see tailbench.BuildImage).
	DupFrac      float64
	ZeroFrac     float64
	DupCopies    float64
	VolatileFrac float64

	// Engine tunables.
	ConvergePasses   int
	MeasureIntervals int
	PagesToScan      int

	// Dedup-index sharding: 2^ShardBits content shards, and the worker
	// count for parallel convergence passes (0/0 = classic sequential KSM).
	// Sharded-parallel runs must stay bit-identical to sequential ones, so
	// the generator draws these freely.
	ShardBits    int
	ShardWorkers int

	// FaultRate is the uncorrectable-upset probability per line read
	// (0 = fault-free; also scales correctable transients and stuck words,
	// mirroring the RAS experiment's population).
	FaultRate float64

	// Memory-pressure shape (0/0/0 = pressure layer off). Overcommit > 1
	// sizes the arena below guest demand and arms the stall/balloon/ladder
	// machinery; the storm writes BurstPages fresh pages per VM per pass
	// for BurstPasses passes.
	Overcommit  float64
	BurstPages  int
	BurstPasses int

	// Crash shape (0/0/0 = crash layer off). CheckpointEvery checkpoints
	// the world every N convergence passes; CrashPassA/B are 1-based crash
	// passes (0 = none) — recovery is bit-exact, so crashed scenarios stay
	// in the differential equivalence check. Scalars only: the shrinker
	// compares scenarios with ==.
	CheckpointEvery int
	CrashPassA      int
	CrashPassB      int

	// LedgerOn attaches a merge-lifecycle provenance ledger to each
	// verification run; the checker then replays the ledger's mapping-moving
	// events and cross-checks the implied final page locations against the
	// hypervisor's page tables (see check.AuditLedger).
	LedgerOn bool

	// Live-event schedule (0 = none; passes are 1-based like CrashPassA/B).
	// The scenario streams these through platform.Config.Events: a VM spawned
	// mid-run, a live VM killed mid-run, and an application phase flip.
	// Scalars only, same shrinker-== discipline as the crash shape.
	SpawnAtPass     int
	KillVMAtPass    int
	KillVM          int // victim ID when KillVMAtPass > 0
	PhaseFlipAtPass int
}

// Generate draws a random scenario from the given seed. The distribution
// deliberately over-weights stressful corners: high duplication (deep
// trees, many merges), nonzero churn (CoW breaks between passes), and a
// fat-tailed fault rate.
func Generate(seed uint64) Scenario {
	rng := sim.NewRNG(seed ^ 0x5EEDF00D)
	sc := Scenario{
		Seed:       seed,
		VMs:        2 + rng.Intn(5),    // 2..6
		PagesPerVM: 40 + rng.Intn(161), // 40..200
		DupFrac:    0.2 + 0.5*rng.Float64(),
		ZeroFrac:   0.25 * rng.Float64(),
		DupCopies:  float64(2 + rng.Intn(5)), // 2..6

		ConvergePasses:   3 + rng.Intn(6), // 3..8
		MeasureIntervals: 1 + rng.Intn(4), // 1..4
		PagesToScan:      100 + rng.Intn(301),
	}
	if rng.Bool(0.4) {
		sc.VolatileFrac = 0.3 * rng.Float64()
	}
	if rng.Bool(0.5) {
		sc.ShardBits = 1 + rng.Intn(3)    // 2..8 shards
		sc.ShardWorkers = 1 + rng.Intn(4) // 1..4 workers
	}
	if rng.Bool(0.5) {
		// Log-uniform over [1e-4, 1e-1]: most draws are rare-fault regimes,
		// a few are storms.
		sc.FaultRate = math.Pow(10, -4+3*rng.Float64())
	}
	// Pressure draws come last so pre-pressure fields keep their same-seed
	// values (adding draws earlier would silently reshuffle every archived
	// repro scenario).
	if rng.Bool(0.25) {
		sc.Overcommit = 1.1 + 0.8*rng.Float64() // 1.1..1.9
		sc.BurstPages = 5 + rng.Intn(26)        // 5..30 per VM per pass
		sc.BurstPasses = 1 + rng.Intn(3)        // 1..3
		if sc.ConvergePasses < sc.BurstPasses+4 {
			// The storm needs room to start (pass 1), run, and recover.
			sc.ConvergePasses = sc.BurstPasses + 4
		}
	}
	// Crash draws come after the pressure block for the same reason the
	// pressure block comes last: same-seed scenarios keep their pre-crash
	// field values.
	if rng.Bool(0.25) {
		sc.CheckpointEvery = 1 + rng.Intn(3) // 1..3
		sc.CrashPassA = 1 + rng.Intn(sc.ConvergePasses)
		if rng.Bool(0.3) {
			sc.CrashPassB = 1 + rng.Intn(sc.ConvergePasses)
		}
	}
	// The ledger draw comes after the crash block, same append-only
	// discipline: every earlier field keeps its same-seed value.
	sc.LedgerOn = rng.Bool(0.5)
	// Live-event draws come last (append-only discipline again). A spawn
	// allocates a whole image on the demand path, so pressured scenarios —
	// whose arena is deliberately undersized — skip it; kills and phase
	// flips only free or rewrite existing pages and are always safe.
	if !sc.Pressured() && rng.Bool(0.35) {
		sc.SpawnAtPass = 1 + rng.Intn(sc.ConvergePasses)
	}
	if rng.Bool(0.35) {
		sc.KillVMAtPass = 1 + rng.Intn(sc.ConvergePasses)
		sc.KillVM = rng.Intn(sc.VMs)
	}
	if rng.Bool(0.35) {
		sc.PhaseFlipAtPass = 1 + rng.Intn(sc.ConvergePasses)
	}
	return sc
}

// Pressured reports whether the scenario arms the memory-pressure layer.
// Pressured runs balloon-release pages at engine-dependent times, so their
// merge sets are not comparable across modes (the differential equivalence
// and completeness checks are skipped; the per-pass invariants still hold).
func (s Scenario) Pressured() bool { return s.Overcommit > 1 }

// FaultFree reports whether the scenario injects no DRAM faults, which is
// the precondition for the differential KSM ≡ PageForge equivalence check.
func (s Scenario) FaultFree() bool { return s.FaultRate == 0 }

// HasLiveEvents reports whether the scenario schedules mid-run topology or
// phase events. Such runs change the mergeable population at event-relative
// times, so their merge sets are not comparable across engines (the
// differential check is skipped; per-pass invariants still hold, including
// through VM teardown).
func (s Scenario) HasLiveEvents() bool {
	return s.SpawnAtPass > 0 || s.KillVMAtPass > 0 || s.PhaseFlipAtPass > 0
}

// DiffComparable reports whether the scenario's clean merge sets are
// comparable across engines — fault-free, unpressured, no live events, and
// enough passes for the hash gate's deferred first sighting to converge.
// This is the precondition for the KSM ≡ PageForge differential check.
func (s Scenario) DiffComparable() bool {
	return s.FaultFree() && !s.Pressured() && !s.HasLiveEvents() && s.ConvergePasses >= 2
}

// Profile renders the scenario as a small TailBench-style application. The
// service-model numbers are fixed: verification exercises merge semantics,
// not the latency model.
func (s Scenario) Profile() tailbench.Profile {
	return tailbench.Profile{
		Name:              fmt.Sprintf("verify-%x", s.Seed),
		QPS:               500,
		MeanServiceCycles: 1e6,
		ServiceCV:         0.8,
		MemStallFrac:      0.4,
		LinesPerQuery:     120,
		BaselineL3Miss:    0.3,
		DemandGBps:        2,
		ZeroFrac:          s.ZeroFrac,
		DupFrac:           s.DupFrac,
		DupCopies:         s.DupCopies,
		PagesPerVM:        s.PagesPerVM,
		VolatileFrac:      s.VolatileFrac,
		BurstPagesPerVM:   s.BurstPages * s.BurstPasses,
	}
}

// Config renders the scenario as a platform configuration. The machine
// parameters stay at their defaults; only the scenario's shape, engine
// tunables, seed, and fault population are overridden.
func (s Scenario) Config() platform.Config {
	cfg := platform.DefaultConfig()
	cfg.VMs = s.VMs
	cfg.Cores = s.VMs
	cfg.ConvergePasses = s.ConvergePasses
	cfg.MeasureIntervals = s.MeasureIntervals
	cfg.PagesToScan = s.PagesToScan
	cfg.ShardBits = s.ShardBits
	cfg.ShardWorkers = s.ShardWorkers
	cfg.Seed = s.Seed
	if s.FaultRate > 0 {
		// Same population shape as the RAS experiment: correctable
		// transients an order of magnitude denser than UEs, plus a few
		// permanently-stuck words at high rates.
		frames := s.VMs*s.PagesPerVM*2 + 1024
		cfg.Faults = faults.Config{
			Seed:             s.Seed ^ 0x4A5C4A5,
			TransientPerRead: math.Min(1, 10*s.FaultRate),
			DoubleBitPerRead: s.FaultRate,
			StuckUEWords:     int(s.FaultRate * 400),
			Frames:           frames,
		}
	}
	if s.Pressured() {
		pc := pressure.DefaultConfig()
		pc.Enabled = true
		pc.OvercommitRatio = s.Overcommit
		pc.BurstStart = 1
		pc.BurstPasses = s.BurstPasses
		pc.BurstPages = s.BurstPages
		pc.BurstDupFrac = 0.5
		cfg.Pressure = pc
	}
	cfg.CheckpointEvery = s.CheckpointEvery
	if s.CrashPassA > 0 {
		cfg.Crash.Passes = append(cfg.Crash.Passes, s.CrashPassA-1)
	}
	if s.CrashPassB > 0 {
		cfg.Crash.Passes = append(cfg.Crash.Passes, s.CrashPassB-1)
	}
	if s.LedgerOn {
		// A ledger is per-run state, so every Config() call mints a fresh one
		// (Scenario itself stays plain scalars for the shrinker's ==).
		cfg.Ledger = obs.NewLedger(0)
	}
	if s.SpawnAtPass > 0 {
		cfg.Events = append(cfg.Events, platform.Event{Pass: s.SpawnAtPass - 1, Kind: platform.EvVMSpawn})
	}
	if s.KillVMAtPass > 0 {
		cfg.Events = append(cfg.Events, platform.Event{Pass: s.KillVMAtPass - 1, Kind: platform.EvVMKill, VM: s.KillVM})
	}
	if s.PhaseFlipAtPass > 0 {
		cfg.Events = append(cfg.Events, platform.Event{Pass: s.PhaseFlipAtPass - 1, Kind: platform.EvPhaseChange, Frac: 0.3})
	}
	return cfg
}

// String renders the scenario compactly for progress and failure reports.
func (s Scenario) String() string {
	return fmt.Sprintf("seed=%#x vms=%d pages=%d dup=%.2f×%.0f zero=%.2f volatile=%.2f passes=%d intervals=%d scan=%d shards=%d workers=%d fault=%.2g overcommit=%.2f burst=%dx%d ckpt=%d crash=%d/%d ledger=%t spawn@%d kill=%d@%d flip@%d",
		s.Seed, s.VMs, s.PagesPerVM, s.DupFrac, s.DupCopies, s.ZeroFrac,
		s.VolatileFrac, s.ConvergePasses, s.MeasureIntervals, s.PagesToScan,
		1<<s.ShardBits, s.ShardWorkers, s.FaultRate, s.Overcommit, s.BurstPages, s.BurstPasses,
		s.CheckpointEvery, s.CrashPassA, s.CrashPassB, s.LedgerOn,
		s.SpawnAtPass, s.KillVM, s.KillVMAtPass, s.PhaseFlipAtPass)
}
