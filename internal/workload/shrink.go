package workload

import (
	"fmt"
	"strings"
)

// Shrink greedily minimizes a failing scenario: starting from sc (which
// must satisfy fails), it repeatedly tries simplifying moves — zeroing the
// fault rate and churn, shrinking the deployment, cutting passes and
// intervals — and keeps any move that still fails. It stops when a full
// round of moves yields no progress or the probe budget runs out, and
// returns the smallest failing scenario found plus the number of probes
// spent. fails must be deterministic in the scenario (re-running the same
// scenario must reproduce the verdict), which holds for seeded runs.
func Shrink(sc Scenario, fails func(Scenario) bool, maxProbes int) (Scenario, int) {
	probes := 0
	try := func(cand Scenario) bool {
		if probes >= maxProbes || cand == sc {
			return false
		}
		probes++
		if fails(cand) {
			sc = cand
			return true
		}
		return false
	}

	for progress := true; progress && probes < maxProbes; {
		progress = false

		// Remove whole mechanisms first — a repro without faults or churn
		// is categorically simpler than any size reduction.
		for _, move := range []func(*Scenario){
			func(c *Scenario) { c.FaultRate = 0 },
			func(c *Scenario) { c.Overcommit, c.BurstPages, c.BurstPasses = 0, 0, 0 },
			func(c *Scenario) { c.CrashPassA, c.CrashPassB, c.CheckpointEvery = 0, 0, 0 },
			func(c *Scenario) { c.CrashPassB = 0 },
			func(c *Scenario) {
				c.SpawnAtPass, c.KillVMAtPass, c.KillVM, c.PhaseFlipAtPass = 0, 0, 0, 0
			},
			func(c *Scenario) { c.SpawnAtPass = 0 },
			func(c *Scenario) { c.KillVMAtPass, c.KillVM = 0, 0 },
			func(c *Scenario) { c.PhaseFlipAtPass = 0 },
			func(c *Scenario) { c.VolatileFrac = 0 },
			func(c *Scenario) { c.ZeroFrac = 0 },
			func(c *Scenario) { c.MeasureIntervals = 0 },
			func(c *Scenario) { c.ShardBits, c.ShardWorkers = 0, 0 },
		} {
			cand := sc
			move(&cand)
			if try(cand) {
				progress = true
			}
		}

		// Then shrink sizes toward small floors, halving each step.
		for _, m := range []struct {
			get   func(Scenario) int
			set   func(*Scenario, int)
			floor int
		}{
			{func(c Scenario) int { return c.MeasureIntervals }, func(c *Scenario, v int) { c.MeasureIntervals = v }, 1},
			{func(c Scenario) int { return c.ConvergePasses }, func(c *Scenario, v int) { c.ConvergePasses = v }, 2},
			{func(c Scenario) int { return c.VMs }, func(c *Scenario, v int) { c.VMs = v }, 2},
			{func(c Scenario) int { return c.PagesPerVM }, func(c *Scenario, v int) { c.PagesPerVM = v }, 16},
			{func(c Scenario) int { return int(c.DupCopies) }, func(c *Scenario, v int) { c.DupCopies = float64(v) }, 2},
			{func(c Scenario) int { return c.PagesToScan }, func(c *Scenario, v int) { c.PagesToScan = v }, 50},
			{func(c Scenario) int { return c.BurstPages }, func(c *Scenario, v int) { c.BurstPages = v }, 0},
			{func(c Scenario) int { return c.BurstPasses }, func(c *Scenario, v int) { c.BurstPasses = v }, 0},
		} {
			// Binary descent: probe ever-smaller decrements so the result
			// lands on the minimal failing value, not just a power-of-two
			// fraction of the original.
			for delta := (m.get(sc) - m.floor + 1) / 2; delta >= 1; {
				cur := m.get(sc)
				if cur <= m.floor {
					break
				}
				next := cur - delta
				if next < m.floor {
					next = m.floor
				}
				cand := sc
				m.set(&cand, next)
				if try(cand) {
					progress = true
					delta = (m.get(sc) - m.floor + 1) / 2
				} else {
					delta /= 2
				}
			}
		}

		// Finally thin the duplicated region (fewer merge candidates).
		if sc.DupFrac > 0.05 {
			cand := sc
			cand.DupFrac = sc.DupFrac / 2
			if cand.DupFrac < 0.05 {
				cand.DupFrac = 0.05
			}
			if try(cand) {
				progress = true
			}
		}
	}
	return sc, probes
}

// ReproTest renders a failing scenario as a ready-to-paste Go test that
// re-runs it through the checker. failure is the invariant error the
// scenario produced, embedded as a comment so the test documents what it
// reproduces.
func ReproTest(sc Scenario, failure error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// Reproduces: %s\n", failure)
	fmt.Fprintf(&b, "func TestRepro_%X(t *testing.T) {\n", sc.Seed)
	fmt.Fprintf(&b, "\tsc := %#v\n", sc)
	fmt.Fprintf(&b, "\tif _, err := check.RunScenario(sc); err != nil {\n")
	fmt.Fprintf(&b, "\t\tt.Fatal(err)\n")
	fmt.Fprintf(&b, "\t}\n}\n")
	return b.String()
}
