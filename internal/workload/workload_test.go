package workload

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/platform"
)

func TestGenerateDeterministicAndInRange(t *testing.T) {
	for seed := uint64(0); seed < 500; seed++ {
		sc := Generate(seed)
		if sc != Generate(seed) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if sc.VMs < 2 || sc.VMs > 6 {
			t.Fatalf("seed %d: VMs %d out of range", seed, sc.VMs)
		}
		if sc.PagesPerVM < 40 || sc.PagesPerVM > 200 {
			t.Fatalf("seed %d: PagesPerVM %d out of range", seed, sc.PagesPerVM)
		}
		if sc.DupFrac < 0.2 || sc.DupFrac > 0.7 {
			t.Fatalf("seed %d: DupFrac %f out of range", seed, sc.DupFrac)
		}
		if sc.DupFrac+sc.ZeroFrac >= 1 {
			t.Fatalf("seed %d: composition exceeds the image", seed)
		}
		if sc.ConvergePasses < 3 || sc.MeasureIntervals < 1 || sc.PagesToScan < 100 {
			t.Fatalf("seed %d: engine tunables out of range: %+v", seed, sc)
		}
		if sc.FaultRate != 0 && (sc.FaultRate < 1e-4 || sc.FaultRate > 0.1) {
			t.Fatalf("seed %d: FaultRate %g out of range", seed, sc.FaultRate)
		}
		if sc.FaultFree() != (sc.FaultRate == 0) {
			t.Fatalf("seed %d: FaultFree inconsistent", seed)
		}
		if sc.Pressured() != (sc.Overcommit > 1) {
			t.Fatalf("seed %d: Pressured inconsistent", seed)
		}
		if sc.Pressured() {
			if sc.Overcommit < 1.1 || sc.Overcommit > 1.9 {
				t.Fatalf("seed %d: Overcommit %g out of range", seed, sc.Overcommit)
			}
			if sc.BurstPages < 5 || sc.BurstPages > 30 || sc.BurstPasses < 1 || sc.BurstPasses > 3 {
				t.Fatalf("seed %d: burst shape out of range: %+v", seed, sc)
			}
			if sc.ConvergePasses < sc.BurstPasses+4 {
				t.Fatalf("seed %d: storm has no room to start and recover: %+v", seed, sc)
			}
		} else if sc.BurstPages != 0 || sc.BurstPasses != 0 {
			t.Fatalf("seed %d: unpressured scenario carries a burst: %+v", seed, sc)
		}
	}
}

func TestGenerateCoversRegimes(t *testing.T) {
	var faulted, churning, pressured int
	for seed := uint64(0); seed < 200; seed++ {
		sc := Generate(seed)
		if !sc.FaultFree() {
			faulted++
		}
		if sc.VolatileFrac > 0 {
			churning++
		}
		if sc.Pressured() {
			pressured++
		}
	}
	if faulted < 50 || faulted > 150 {
		t.Fatalf("fault regime coverage skewed: %d/200 faulted", faulted)
	}
	if churning < 40 || churning > 140 {
		t.Fatalf("churn regime coverage skewed: %d/200 churning", churning)
	}
	if pressured < 20 || pressured > 90 {
		t.Fatalf("pressure regime coverage skewed: %d/200 pressured", pressured)
	}
}

func TestGenerateDrawsLiveEvents(t *testing.T) {
	var spawns, kills, flips int
	for seed := uint64(0); seed < 300; seed++ {
		sc := Generate(seed)
		if sc.HasLiveEvents() != (sc.SpawnAtPass > 0 || sc.KillVMAtPass > 0 || sc.PhaseFlipAtPass > 0) {
			t.Fatalf("seed %d: HasLiveEvents inconsistent: %+v", seed, sc)
		}
		if sc.SpawnAtPass > 0 {
			spawns++
			if sc.Pressured() {
				t.Fatalf("seed %d: spawn drawn into a pressured scenario (undersized arena): %+v", seed, sc)
			}
			if sc.SpawnAtPass > sc.ConvergePasses {
				t.Fatalf("seed %d: SpawnAtPass %d beyond the run", seed, sc.SpawnAtPass)
			}
		}
		if sc.KillVMAtPass > 0 {
			kills++
			if sc.KillVMAtPass > sc.ConvergePasses {
				t.Fatalf("seed %d: KillVMAtPass %d beyond the run", seed, sc.KillVMAtPass)
			}
			if sc.KillVM < 0 || sc.KillVM >= sc.VMs {
				t.Fatalf("seed %d: KillVM %d is not a built VM", seed, sc.KillVM)
			}
		} else if sc.KillVM != 0 {
			t.Fatalf("seed %d: victim drawn without a kill: %+v", seed, sc)
		}
		if sc.PhaseFlipAtPass > 0 {
			flips++
			if sc.PhaseFlipAtPass > sc.ConvergePasses {
				t.Fatalf("seed %d: PhaseFlipAtPass %d beyond the run", seed, sc.PhaseFlipAtPass)
			}
		}
	}
	if spawns < 30 || spawns > 180 {
		t.Fatalf("spawn regime coverage skewed: %d/300", spawns)
	}
	if kills < 50 || kills > 180 {
		t.Fatalf("kill regime coverage skewed: %d/300", kills)
	}
	if flips < 50 || flips > 180 {
		t.Fatalf("phase-flip regime coverage skewed: %d/300", flips)
	}
}

func TestScenarioConfigRendersEvents(t *testing.T) {
	sc := Generate(3)
	sc.Overcommit, sc.BurstPages, sc.BurstPasses = 0, 0, 0
	sc.SpawnAtPass, sc.KillVMAtPass, sc.KillVM, sc.PhaseFlipAtPass = 2, 3, 1, 4
	want := []platform.Event{
		{Pass: 1, Kind: platform.EvVMSpawn},
		{Pass: 2, Kind: platform.EvVMKill, VM: 1},
		{Pass: 3, Kind: platform.EvPhaseChange, Frac: 0.3},
	}
	if got := sc.Config().Events; !reflect.DeepEqual(got, want) {
		t.Fatalf("events not rendered: got %+v want %+v", got, want)
	}
	sc.SpawnAtPass, sc.KillVMAtPass, sc.KillVM, sc.PhaseFlipAtPass = 0, 0, 0, 0
	if got := sc.Config().Events; len(got) != 0 {
		t.Fatalf("event-free scenario rendered events: %+v", got)
	}
}

func TestScenarioConfigMapsFields(t *testing.T) {
	sc := Generate(3)
	sc.FaultRate = 0.01
	cfg := sc.Config()
	if cfg.VMs != sc.VMs || cfg.Cores != sc.VMs || cfg.Seed != sc.Seed {
		t.Fatalf("deployment shape not mapped: %+v", cfg)
	}
	if cfg.ConvergePasses != sc.ConvergePasses || cfg.MeasureIntervals != sc.MeasureIntervals || cfg.PagesToScan != sc.PagesToScan {
		t.Fatalf("engine tunables not mapped: %+v", cfg)
	}
	if !cfg.Faults.Enabled() {
		t.Fatal("nonzero FaultRate must arm fault injection")
	}
	sc.FaultRate = 0
	if sc.Config().Faults.Enabled() {
		t.Fatal("fault-free scenario must leave injection disarmed")
	}
	p := sc.Profile()
	if p.PagesPerVM != sc.PagesPerVM || p.DupFrac != sc.DupFrac || p.ZeroFrac != sc.ZeroFrac {
		t.Fatalf("profile composition not mapped: %+v", p)
	}

	sc.Overcommit, sc.BurstPages, sc.BurstPasses = 1.5, 20, 2
	pcfg := sc.Config().Pressure
	if !pcfg.Enabled || pcfg.OvercommitRatio != 1.5 || pcfg.BurstPages != 20 || pcfg.BurstPasses != 2 {
		t.Fatalf("pressure shape not mapped: %+v", pcfg)
	}
	if bp := sc.Profile().BurstPagesPerVM; bp != 40 {
		t.Fatalf("burst region not sized for the whole storm: %d", bp)
	}
	sc.Overcommit = 0
	if sc.Config().Pressure.Enabled {
		t.Fatal("unpressured scenario must leave the pressure layer disarmed")
	}
}

// TestShrinkMinimizesSyntheticFailure drives the shrinker with a synthetic
// predicate ("fails whenever VMs ≥ 2 and PagesPerVM ≥ 20") and checks it
// reaches the predicate's floor rather than stopping early.
func TestShrinkMinimizesSyntheticFailure(t *testing.T) {
	sc := Generate(11)
	sc.FaultRate = 0.05
	sc.Overcommit, sc.BurstPages, sc.BurstPasses = 1.6, 25, 3
	fails := func(s Scenario) bool { return s.VMs >= 2 && s.PagesPerVM >= 20 }
	if !fails(sc) {
		t.Fatal("starting scenario must fail")
	}
	shrunk, probes := Shrink(sc, fails, 200)
	if !fails(shrunk) {
		t.Fatal("shrinker returned a passing scenario")
	}
	if shrunk.VMs != 2 {
		t.Fatalf("VMs not minimized: %d (%d probes)", shrunk.VMs, probes)
	}
	if shrunk.PagesPerVM > 20 {
		t.Fatalf("PagesPerVM not minimized: %d", shrunk.PagesPerVM)
	}
	if shrunk.FaultRate != 0 || shrunk.VolatileFrac != 0 {
		t.Fatalf("irrelevant mechanisms not removed: %+v", shrunk)
	}
	if shrunk.Overcommit != 0 || shrunk.BurstPages != 0 || shrunk.BurstPasses != 0 {
		t.Fatalf("irrelevant pressure storm not removed: %+v", shrunk)
	}
	if shrunk.ConvergePasses != 2 || shrunk.MeasureIntervals != 0 {
		t.Fatalf("phases not minimized: %+v", shrunk)
	}
}

// TestShrinkReducesPressureStorm pins the pressure-specific moves: when a
// failure needs the overcommit itself, the all-or-nothing mechanism move
// can't fire, but the burst shape must still descend to its floors.
func TestShrinkReducesPressureStorm(t *testing.T) {
	sc := Generate(11)
	sc.Overcommit, sc.BurstPages, sc.BurstPasses = 1.6, 25, 3
	fails := func(s Scenario) bool { return s.Pressured() }
	shrunk, probes := Shrink(sc, fails, 300)
	if !shrunk.Pressured() {
		t.Fatal("shrinker returned a passing scenario")
	}
	if shrunk.BurstPages != 0 || shrunk.BurstPasses != 0 {
		t.Fatalf("burst shape not minimized: %dx%d (%d probes)",
			shrunk.BurstPages, shrunk.BurstPasses, probes)
	}
}

// TestShrinkRemovesLiveEvents pins the live-event moves: when the failure
// does not depend on the event schedule, the shrinker strips it.
func TestShrinkRemovesLiveEvents(t *testing.T) {
	sc := Generate(11)
	sc.SpawnAtPass, sc.KillVMAtPass, sc.KillVM, sc.PhaseFlipAtPass = 1, 2, 1, 3
	shrunk, probes := Shrink(sc, func(s Scenario) bool { return s.VMs >= 2 }, 200)
	if shrunk.HasLiveEvents() || shrunk.KillVM != 0 {
		t.Fatalf("live events not removed: %+v (%d probes)", shrunk, probes)
	}
}

func TestShrinkRespectsProbeBudget(t *testing.T) {
	sc := Generate(5)
	probesSeen := 0
	_, probes := Shrink(sc, func(Scenario) bool { probesSeen++; return true }, 7)
	if probes != 7 || probesSeen != 7 {
		t.Fatalf("probe budget not honored: reported %d, ran %d", probes, probesSeen)
	}
}

func TestReproTestIsPasteable(t *testing.T) {
	sc := Generate(9)
	out := ReproTest(sc, &testErr{})
	for _, want := range []string{
		"// Reproduces: synthetic invariant failure",
		"func TestRepro_9(t *testing.T)",
		"workload.Scenario{Seed:0x9",
		"check.RunScenario(sc)",
		"t.Fatal(err)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("repro test missing %q:\n%s", want, out)
		}
	}
}

type testErr struct{}

func (*testErr) Error() string { return "synthetic invariant failure" }
