package experiments

import (
	"fmt"
	"time"

	"repro/internal/ksm"
	"repro/internal/obs"
	"repro/internal/tailbench"
)

// LedgerOverheadResult reports the wall-clock cost of merge-lifecycle
// provenance on the scan hot path: the same sharded scan passes timed with
// and without a ledger attached.
type LedgerOverheadResult struct {
	OffPagesPerSec float64 `json:"off_pages_per_sec"`
	OnPagesPerSec  float64 `json:"on_pages_per_sec"`
	// Overhead is the fractional slowdown, (off - on) / off; negative when
	// the instrumented run happened to be faster (pure noise).
	Overhead   float64 `json:"overhead_frac"`
	Events     int     `json:"ledger_events"`
	Candidates int     `json:"candidates_per_run"`
}

// RunLedgerOverheadBench measures provenance overhead with a fresh absolute
// on-vs-off comparison — no committed baseline involved, so the gate is
// meaningful on any machine. Both sides do identical algorithmic work (same
// image, same merge decisions, asserted via merge counts); each side runs
// cfg.Repeats times keeping its best time, the standard defense against
// scheduler noise. The instrumented side also proves the ledger saw real
// traffic: a run that recorded no events would gate nothing.
func RunLedgerOverheadBench(cfg ScanPassConfig) (LedgerOverheadResult, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	run := func(withLedger bool) (cand, events int, merges uint64, minTime time.Duration, err error) {
		for r := 0; r < cfg.Repeats; r++ {
			prof := cfg.Profile
			prof.PagesPerVM = cfg.PagesPerVM
			img, err := tailbench.BuildImage(prof, cfg.VMs, cfg.VMs*cfg.PagesPerVM*2, cfg.Seed)
			if err != nil {
				return 0, 0, 0, 0, err
			}
			s := ksm.NewScanner(ksm.NewAlgorithmSharded(img.HV, ksm.JHasher{}, cfg.ShardBits), ksm.DefaultCosts())
			var ldg *obs.Ledger
			if withLedger {
				ldg = obs.NewLedger(0)
				s.Ledger = ldg
			}
			c := 0
			start := time.Now()
			for p := 0; p < cfg.Passes; p++ {
				ldg.SetPass(p)
				res := s.ScanPass(cfg.Workers)
				c += res.Scanned
				img.ChurnVolatile()
			}
			d := time.Since(start)
			if r == 0 || d < minTime {
				minTime = d
			}
			cand, merges = c, img.HV.Merges
			events = ldg.Len() + int(ldg.Dropped())
		}
		return cand, events, merges, minTime, nil
	}

	offCand, _, offMerges, offTime, err := run(false)
	if err != nil {
		return LedgerOverheadResult{}, err
	}
	onCand, onEvents, onMerges, onTime, err := run(true)
	if err != nil {
		return LedgerOverheadResult{}, err
	}
	if offCand != onCand || offMerges != onMerges {
		return LedgerOverheadResult{}, fmt.Errorf(
			"ledgerbench: instrumented run diverged (candidates %d/%d, merges %d/%d) — the ledger perturbed the scan",
			offCand, onCand, offMerges, onMerges)
	}
	if onEvents == 0 {
		return LedgerOverheadResult{}, fmt.Errorf("ledgerbench: instrumented run recorded no ledger events")
	}
	res := LedgerOverheadResult{
		OffPagesPerSec: float64(offCand) / offTime.Seconds(),
		OnPagesPerSec:  float64(onCand) / onTime.Seconds(),
		Events:         onEvents,
		Candidates:     offCand,
	}
	res.Overhead = (res.OffPagesPerSec - res.OnPagesPerSec) / res.OffPagesPerSec
	return res, nil
}
