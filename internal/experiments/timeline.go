package experiments

import (
	"fmt"
	"strings"

	"repro/internal/dram"
	"repro/internal/ksm"
	"repro/internal/memctrl"
	"repro/internal/pageforge"
	"repro/internal/tailbench"
)

// TimelineResult tracks how fast each engine converges to the steady-state
// memory savings under identical tunables (sleep_millisecs, pages_to_scan).
// The paper never plots this, but it falls out of the model and matters to
// operators: PageForge trades a slower wall-clock ramp (its scan rate is
// bounded by the 12k-cycle polling protocol) for near-zero core cost.
type TimelineResult struct {
	App string
	// SavingsKSM[i] / SavingsPF[i] are the footprint savings after
	// interval i (5ms each).
	SavingsKSM []float64
	SavingsPF  []float64
	// Core busy share of one core, averaged over the ramp.
	KSMCorePct float64
	PFCorePct  float64
}

// Timeline measures the convergence ramp on one application.
func Timeline(s *Suite, app tailbench.Profile, intervals int) (*TimelineResult, error) {
	res := &TimelineResult{App: app.Name}
	interval := s.Cfg.IntervalCycles()

	// Software KSM ramp.
	{
		img, err := tailbench.BuildImage(app, s.Cfg.VMs, s.Cfg.VMs*app.PagesPerVM*2+1024, s.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		sc := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), s.Cfg.KSMCosts)
		var busy uint64
		for k := 0; k < intervals; k++ {
			before := sc.Cycles.Total()
			sc.ScanBatch(s.Cfg.PagesToScan)
			busy += sc.Cycles.Total() - before
			res.SavingsKSM = append(res.SavingsKSM, img.MeasureFootprint().Savings())
		}
		res.KSMCorePct = float64(busy) / float64(uint64(intervals)*interval) * 100
	}

	// PageForge ramp.
	{
		img, err := tailbench.BuildImage(app, s.Cfg.VMs, s.Cfg.VMs*app.PagesPerVM*2+1024, s.Cfg.Seed)
		if err != nil {
			return nil, err
		}
		mc := memctrl.New(dram.New(s.Cfg.DRAM), img.HV.Phys, nil)
		drv := pageforge.NewDriver(ksm.NewAlgorithm(img.HV, ksm.NewECCHasher()),
			pageforge.NewEngine(mc), s.Cfg.Driver)
		pfNow := uint64(0)
		var busy uint64
		for k := 0; k < intervals; k++ {
			start := uint64(k) * interval
			if pfNow < start {
				pfNow = start
			}
			end := start + interval
			cc := drv.CoreCycles
			for scanned := 0; scanned < s.Cfg.PagesToScan && pfNow < end; scanned++ {
				_, t, ok := drv.ScanOne(pfNow)
				if !ok {
					break
				}
				pfNow = t
			}
			busy += drv.CoreCycles - cc
			res.SavingsPF = append(res.SavingsPF, img.MeasureFootprint().Savings())
		}
		res.PFCorePct = float64(busy) / float64(uint64(intervals)*interval) * 100
	}
	return res, nil
}

// String renders the ramp as sampled rows plus a sparkline-style bar.
func (r *TimelineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Convergence timeline (%s): footprint savings per 5ms interval\n", r.App)
	fmt.Fprintf(&b, "%10s %12s %28s %12s %28s\n", "interval", "KSM", "", "PageForge", "")
	bar := func(v float64) string {
		n := int(v * 40)
		return strings.Repeat("#", n)
	}
	step := len(r.SavingsKSM) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(r.SavingsKSM); i += step {
		fmt.Fprintf(&b, "%10d %11.1f%% %-28s %11.1f%% %-28s\n",
			i, r.SavingsKSM[i]*100, bar(r.SavingsKSM[i]),
			r.SavingsPF[i]*100, bar(r.SavingsPF[i]))
	}
	last := len(r.SavingsKSM) - 1
	fmt.Fprintf(&b, "%10d %11.1f%% %-28s %11.1f%% %-28s\n",
		last, r.SavingsKSM[last]*100, bar(r.SavingsKSM[last]),
		r.SavingsPF[last]*100, bar(r.SavingsPF[last]))
	fmt.Fprintf(&b, "\n  core cost during the ramp: KSM %.1f%%, PageForge %.1f%% of one core\n",
		r.KSMCorePct, r.PFCorePct)
	fmt.Fprintf(&b, "  PageForge ramps slower (scan rate bounded by the 12k-cycle polling\n")
	fmt.Fprintf(&b, "  protocol) but reaches the same savings at ~%.0fx less core cost.\n",
		r.KSMCorePct/maxf(r.PFCorePct, 0.01))
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
