package experiments

import (
	"fmt"
	"math"

	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/pageforge"
	"repro/internal/vm"
)

// The RAS experiment (an extension beyond the paper's evaluation): PageForge
// reads pages through the DIMM's ECC pipe, so DRAM reliability is not a
// side concern but part of the datapath. This sweep injects an escalating
// fault population into the memory the engine scans and measures what the
// RAS machinery costs and saves: how much merge coverage survives, what the
// bounded re-read and patrol-scrub overheads amount to, and where the
// UE-rate policy would demote the hardware engine to software KSM.

// RASRow is one fault-rate data point.
type RASRow struct {
	// Rate is the per-read double-bit (uncorrectable) fault probability;
	// correlated transient single-bit upsets and stuck-UE words scale with
	// it (see rasFaultConfig).
	Rate float64
	// CoveragePct is merge coverage relative to the fault-free run: frames
	// reclaimed at this rate as a percentage of frames reclaimed at rate 0.
	CoveragePct float64
	// Merged is the absolute number of frames reclaimed.
	Merged int

	LineRetries   uint64
	RetriesHealed uint64
	FaultAborts   uint64
	SWFallbacks   uint64
	Quarantined   int

	// RetryPct is re-read traffic as a share of all engine line fetches;
	// ScrubPct is patrol-scrub bytes as a share of all DRAM bytes — the
	// bandwidth price of the RAS machinery.
	RetryPct float64
	ScrubPct float64

	// UERate is the tracker's smoothed UEs-per-decode estimate at the end.
	UERate float64
	// DegradeInterval is the scan pass at which the default trip policy
	// fires (-1: never) — the measured time-to-degrade.
	DegradeInterval int
}

// RASResult is the sweep.
type RASResult struct {
	Rows []RASRow
	// Passes is the number of full scan passes each point ran.
	Passes int
}

// DefaultRASRates spans clean silicon to an always-faulting DIMM.
func DefaultRASRates() []float64 {
	return []float64{0, 1e-4, 1e-3, 1e-2, 0.1, 1}
}

// rasFaultConfig maps one sweep rate to a fault population: uncorrectable
// double-bit upsets at the rate itself, correctable single-bit transients
// an order of magnitude denser (the empirical DRAM ratio is larger still),
// and a few permanently-dead words appearing as the rate grows.
func rasFaultConfig(seed uint64, rate float64, frames int) faults.Config {
	return faults.Config{
		Seed:             seed ^ 0x4A5C4A5,
		TransientPerRead: math.Min(1, 10*rate),
		DoubleBitPerRead: rate,
		StuckUEWords:     int(rate * 400),
		Frames:           frames,
	}
}

// rasWorld builds the scanned population: VMs sharing a block of cross-VM
// duplicate pages (the achievable merge target) plus per-VM unique pages.
func rasWorld(seed uint64) *vm.Hypervisor {
	const (
		numVMs  = 6
		dupPgs  = 24
		uniqPgs = 8
	)
	hv := vm.NewHypervisor(uint64(numVMs*(dupPgs+uniqPgs)+256) * mem.PageSize)
	for i := 0; i < numVMs; i++ {
		v := hv.NewVM(uint64(dupPgs+uniqPgs) * mem.PageSize)
		v.Madvise(0, dupPgs+uniqPgs, true)
		for g := 0; g < dupPgs; g++ {
			v.Write(vm.GFN(g), 0, satoriPage(seed+uint64(g)*13+1))
		}
		for g := dupPgs; g < dupPgs+uniqPgs; g++ {
			v.Write(vm.GFN(g), 0, satoriPage(seed+uint64(i*1009+g)*7+5))
		}
	}
	return hv
}

// rasPoint runs one fault rate to steady state and collects the row
// (CoveragePct is filled in by the caller, which owns the rate-0 anchor).
func rasPoint(seed uint64, rate float64, passes, scrubBudget int) RASRow {
	hv := rasWorld(seed)
	dr := dram.New(dram.DefaultConfig())
	mc := memctrl.New(dr, hv.Phys, nil)
	if rate > 0 {
		mc.Faults = faults.NewModel(rasFaultConfig(seed, rate, hv.Phys.TotalFrames()))
	}
	drv := pageforge.NewDriver(ksm.NewAlgorithm(hv, ksm.NewECCHasher()),
		pageforge.NewEngine(mc), pageforge.DefaultDriverConfig())
	scrub := &memctrl.Scrubber{MC: mc}
	tracker := faults.NewRateTracker(faults.DefaultTrip())

	before := hv.Phys.AllocatedFrames()
	degradeAt := -1
	var now uint64
	for pass := 0; pass < passes; pass++ {
		for i, n := 0, drv.Alg.MergeablePages(); i < n; i++ {
			_, t, ok := drv.ScanOne(now)
			if !ok {
				break
			}
			now = t
		}
		now = scrub.Step(now, scrubBudget)
		if tracker.Observe(mc.Stats.ECCDecodes, mc.Stats.ECCUncorrectable, uint64(pass)) && degradeAt < 0 {
			degradeAt = pass
		}
	}

	eng := drv.HW
	row := RASRow{
		Rate:            rate,
		Merged:          before - hv.Phys.AllocatedFrames(),
		LineRetries:     eng.LineRetries,
		RetriesHealed:   eng.RetriesHealed,
		FaultAborts:     eng.FaultAborts,
		SWFallbacks:     drv.SWFallbacks,
		Quarantined:     drv.QuarantinedFrames(),
		UERate:          tracker.Rate(),
		DegradeInterval: degradeAt,
	}
	if eng.LinesFetched > 0 {
		row.RetryPct = float64(eng.LineRetries) / float64(eng.LinesFetched) * 100
	}
	var total uint64
	for _, src := range []dram.Source{dram.SrcCore, dram.SrcKSM, dram.SrcPageForge, dram.SrcScrub} {
		total += dr.TotalBytes(src)
	}
	if total > 0 {
		row.ScrubPct = float64(dr.TotalBytes(dram.SrcScrub)) / float64(total) * 100
	}
	return row
}

// RAS sweeps fault rate against merge coverage and RAS overheads. The
// points are independent hermetic worlds sharing the suite's seed; the
// first rate must be 0 (it anchors the coverage normalization) and is
// prepended if missing.
func RAS(s *Suite, rates []float64) (*RASResult, error) {
	if len(rates) == 0 {
		rates = DefaultRASRates()
	}
	if rates[0] != 0 {
		rates = append([]float64{0}, rates...)
	}
	const (
		passes      = 10
		scrubBudget = 512
	)
	res := &RASResult{Passes: passes}
	for _, rate := range rates {
		if rate < 0 || rate > 1 {
			return nil, fmt.Errorf("experiments: fault rate %g out of [0,1]", rate)
		}
		res.Rows = append(res.Rows, rasPoint(s.Cfg.Seed, rate, passes, scrubBudget))
	}
	anchor := res.Rows[0].Merged
	for i := range res.Rows {
		if anchor > 0 {
			res.Rows[i].CoveragePct = float64(res.Rows[i].Merged) / float64(anchor) * 100
		}
	}
	return res, nil
}

// String renders the sweep as a table.
func (r *RASResult) String() string {
	t := &table{
		title: fmt.Sprintf("RAS: fault rate vs merge coverage and overheads (%d scan passes)", r.Passes),
		header: []string{"ue/read", "coverage", "merged", "retries", "healed", "aborts",
			"sw-fb", "quar", "retry%", "scrub%", "ue-rate", "degrade@"},
	}
	for _, row := range r.Rows {
		deg := "never"
		if row.DegradeInterval >= 0 {
			deg = fmt.Sprintf("pass %d", row.DegradeInterval)
		}
		t.add(
			fmt.Sprintf("%.0e", row.Rate),
			f1(row.CoveragePct)+"%",
			fmt.Sprintf("%d", row.Merged),
			fmt.Sprintf("%d", row.LineRetries),
			fmt.Sprintf("%d", row.RetriesHealed),
			fmt.Sprintf("%d", row.FaultAborts),
			fmt.Sprintf("%d", row.SWFallbacks),
			fmt.Sprintf("%d", row.Quarantined),
			f2(row.RetryPct)+"%",
			f2(row.ScrubPct)+"%",
			fmt.Sprintf("%.2e", row.UERate),
			deg,
		)
	}
	t.notes = append(t.notes,
		"coverage: frames reclaimed vs the fault-free run; bounded re-reads heal",
		"transients, UE aborts fall back to software compare and quarantine the",
		"frame, and the trip policy marks where PageForge degrades to sw KSM.")
	return t.String()
}
