package experiments

import "repro/internal/platform"

// Fig11Row reports memory bandwidth during the most memory-intensive phase
// of page deduplication for one application (GB/s).
type Fig11Row struct {
	App            string
	BaselineGBps   float64
	KSMGBps        float64 // demand + software dedup streaming
	PageForgeGBps  float64 // demand + PageForge engine traffic
	KSMDedupGBps   float64
	PFDedupGBps    float64
	KSMDemandGBps  float64
	PFDemandGBps   float64
	BaselineDemand float64
}

// Fig11Result is Figure 11 plus averages.
type Fig11Result struct {
	Rows []Fig11Row
	// Paper averages: Baseline ~2 GB/s, KSM ~10 GB/s, PageForge ~12 GB/s.
	AvgBaseline  float64
	AvgKSM       float64
	AvgPageForge float64
}

// Figure11 reports the bandwidth consumption of the three configurations.
func Figure11(s *Suite) (*Fig11Result, error) {
	res := &Fig11Result{}
	for _, app := range s.Apps {
		base, err := s.Result(platform.Baseline, app)
		if err != nil {
			return nil, err
		}
		k, err := s.Result(platform.KSM, app)
		if err != nil {
			return nil, err
		}
		pf, err := s.Result(platform.PageForge, app)
		if err != nil {
			return nil, err
		}
		row := Fig11Row{
			App:            app.Name,
			BaselineGBps:   base.TotalGBps,
			KSMGBps:        k.TotalGBps,
			PageForgeGBps:  pf.TotalGBps,
			KSMDedupGBps:   k.DedupGBps,
			PFDedupGBps:    pf.DedupGBps,
			KSMDemandGBps:  k.DemandGBps,
			PFDemandGBps:   pf.DemandGBps,
			BaselineDemand: base.DemandGBps,
		}
		res.Rows = append(res.Rows, row)
		res.AvgBaseline += row.BaselineGBps
		res.AvgKSM += row.KSMGBps
		res.AvgPageForge += row.PageForgeGBps
	}
	n := float64(len(res.Rows))
	res.AvgBaseline /= n
	res.AvgKSM /= n
	res.AvgPageForge /= n
	return res, nil
}

// String renders the figure.
func (r *Fig11Result) String() string {
	t := &table{
		title:  "Figure 11: Memory bandwidth in the most memory-intensive dedup phase (GB/s)",
		header: []string{"App", "Baseline", "KSM", "PageForge", "KSM dedup", "PF dedup"},
	}
	for _, row := range r.Rows {
		t.add(row.App, f2(row.BaselineGBps), f2(row.KSMGBps), f2(row.PageForgeGBps),
			f2(row.KSMDedupGBps), f2(row.PFDedupGBps))
	}
	t.add("average", f2(r.AvgBaseline), f2(r.AvgKSM), f2(r.AvgPageForge), "", "")
	t.notes = append(t.notes,
		"paper: Baseline ~2, KSM ~10, PageForge ~12 GB/s; the reproduction preserves the",
		"ordering Baseline << KSM < PageForge (absolute values depend on testbed intensity)")
	return t.String()
}
