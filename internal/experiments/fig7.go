package experiments

import "repro/internal/platform"

// Fig7Row is one application's memory-allocation breakdown, in fractions of
// the pages allocated without merging (the paper normalizes each pair of
// bars to the without-merging case).
type Fig7Row struct {
	App string
	// Without merging: composition of the original allocation.
	Unmergeable      float64
	MergeableZero    float64
	MergeableNonZero float64
	// With merging: physical frames as a fraction of the original pages.
	// MergedTotal = Unmergeable + zero frames + distinct non-zero frames.
	MergedTotal        float64
	MergedZeroFrames   float64
	MergedNonZeroDist  float64
	SavingsFraction    float64
	FramesBefore       int
	FramesAfter        int
	VMCapacityMultiple float64 // how many VMs fit in the original footprint
}

// Fig7Result is Figure 7 plus the paper's headline averages.
type Fig7Result struct {
	Rows []Fig7Row
	// AvgSavings is the mean footprint reduction (paper: 48%).
	AvgSavings float64
	// AvgUnmergeable/Zero/NonZero are the mean original-composition
	// fractions (paper: 45% / 5% / 50%).
	AvgUnmergeable float64
	AvgZero        float64
	AvgNonZero     float64
	// AvgNonZeroCompressed is what the mergeable non-zero pages compress to
	// (paper: 6.6% of the original pages).
	AvgNonZeroCompressed float64
}

// Figure7 measures memory allocation with and without page merging. KSM and
// PageForge attain identical savings (verified by tests), so the merged
// state comes from the KSM runs.
func Figure7(s *Suite) (*Fig7Result, error) {
	res := &Fig7Result{}
	for _, app := range s.Apps {
		r, err := s.Result(platform.KSM, app)
		if err != nil {
			return nil, err
		}
		f := r.Footprint
		total := float64(f.TotalGuestPages)
		row := Fig7Row{
			App:               app.Name,
			Unmergeable:       float64(f.Unmergeable) / total,
			MergeableZero:     float64(f.MergeableZero) / total,
			MergeableNonZero:  float64(f.MergeableNonZero) / total,
			MergedTotal:       float64(f.FramesAllocated) / total,
			MergedZeroFrames:  float64(f.ZeroFrames) / total,
			MergedNonZeroDist: float64(f.NonZeroShared) / total,
			SavingsFraction:   f.Savings(),
			FramesBefore:      f.TotalGuestPages,
			FramesAfter:       f.FramesAllocated,
		}
		if f.FramesAllocated > 0 {
			row.VMCapacityMultiple = total / float64(f.FramesAllocated)
		}
		res.Rows = append(res.Rows, row)
		res.AvgSavings += row.SavingsFraction
		res.AvgUnmergeable += row.Unmergeable
		res.AvgZero += row.MergeableZero
		res.AvgNonZero += row.MergeableNonZero
		res.AvgNonZeroCompressed += row.MergedNonZeroDist
	}
	n := float64(len(res.Rows))
	res.AvgSavings /= n
	res.AvgUnmergeable /= n
	res.AvgZero /= n
	res.AvgNonZero /= n
	res.AvgNonZeroCompressed /= n
	return res, nil
}

// String renders the figure as a table.
func (r *Fig7Result) String() string {
	t := &table{
		title:  "Figure 7: Memory allocation without and with page merging (fractions of original pages)",
		header: []string{"App", "Unmergeable", "MergZero", "MergNonZero", "WithMerging", "Savings"},
	}
	for _, row := range r.Rows {
		t.add(row.App, pct(row.Unmergeable), pct(row.MergeableZero),
			pct(row.MergeableNonZero), pct(row.MergedTotal), pct(row.SavingsFraction))
	}
	t.add("average", pct(r.AvgUnmergeable), pct(r.AvgZero), pct(r.AvgNonZero),
		pct(1-r.AvgSavings), pct(r.AvgSavings))
	t.notes = append(t.notes,
		"paper: avg 45% unmergeable, 5% zero, 50% non-zero; merged footprint -48%;",
		"       non-zero duplicates compress to 6.6% of original pages; measured "+pct(r.AvgNonZeroCompressed))
	return t.String()
}
