package experiments

import (
	"fmt"

	"repro/internal/dram"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/pageforge"
	"repro/internal/vm"
)

// The Satori experiment (an extension beyond the paper's evaluation, built
// on its §7.2 discussion): Satori (Miłós et al., ATC 2009) observed that
// many sharing opportunities "only last a few seconds" and concluded that
// periodic scanning cannot exploit them. The paper argues PageForge
// changes that calculus — aggressive scan rates cost almost no core
// cycles. This experiment creates transient cross-VM duplicates with a
// bounded lifetime and measures how much of that sharing each engine
// captures at increasing aggressiveness, against its core-cycle price.

// SatoriRow is one (engine, pages_to_scan) data point.
type SatoriRow struct {
	Engine      string
	PagesToScan int
	// CapturedPct is the fraction of achievable transient page-sharing
	// (integrated over time) actually realized.
	CapturedPct float64
	// CoreBusyPct is the engine's core consumption as a share of one core.
	CoreBusyPct float64
}

// SatoriResult is the sweep.
type SatoriResult struct {
	Rows []SatoriRow
	// TransientLifeIntervals is how long each sharing window lasts.
	TransientLifeIntervals int
}

// satoriWorld builds VMs with a stable duplicated region (background) and
// a transient region whose contents flip between globally-identical and
// per-VM-unique every `life` intervals.
type satoriWorld struct {
	hv        *vm.Hypervisor
	vms       []*vm.VM
	stablePgs int
	transPgs  int
	life      int
	phase     int // generation counter for transient contents
	identical bool
}

func newSatoriWorld(numVMs, stablePgs, transPgs, life int) *satoriWorld {
	w := &satoriWorld{
		hv:        vm.NewHypervisor(uint64(numVMs*(stablePgs+transPgs)*2+64) * mem.PageSize),
		stablePgs: stablePgs,
		transPgs:  transPgs,
		life:      life,
	}
	total := stablePgs + transPgs
	for i := 0; i < numVMs; i++ {
		v := w.hv.NewVM(uint64(total) * mem.PageSize)
		v.Madvise(0, total, true)
		for g := 0; g < stablePgs; g++ {
			// Stable cross-VM duplicates (the background KSM workload).
			v.Write(vm.GFN(g), 0, satoriPage(uint64(g)*77+1))
		}
		w.vms = append(w.vms, v)
	}
	w.flip(0) // start divergent
	return w
}

func satoriPage(seed uint64) []byte {
	p := make([]byte, mem.PageSize)
	x := seed*0x9E3779B97F4A7C15 | 1
	for i := 0; i+8 <= len(p); i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		v := x * 0x2545F4914F6CDD1D
		for j := 0; j < 8; j++ {
			p[i+j] = byte(v >> (8 * j))
		}
	}
	return p
}

// flip advances the transient region: odd phases are identical across VMs
// (a shared disk-cache read), even phases unique per VM.
func (w *satoriWorld) flip(phase int) {
	w.phase = phase
	w.identical = phase%2 == 1
	for g := 0; g < w.transPgs; g++ {
		for i, v := range w.vms {
			var seed uint64
			if w.identical {
				seed = uint64(phase)*1000003 + uint64(g)
			} else {
				seed = uint64(phase)*1000003 + uint64(g)*131 + uint64(i+1)*7777777
			}
			v.Write(vm.GFN(w.stablePgs+g), 0, satoriPage(seed))
		}
	}
}

// sharedTransientPages counts transient guest pages currently backed by a
// frame shared with another guest page.
func (w *satoriWorld) sharedTransientPages() int {
	n := 0
	for _, v := range w.vms {
		for g := 0; g < w.transPgs; g++ {
			if pfn, ok := v.Resolve(vm.GFN(w.stablePgs + g)); ok {
				if len(w.hv.Mappers(pfn)) > 1 {
					n++
				}
			}
		}
	}
	return n
}

// Satori runs the sweep. Aggressiveness is pages_to_scan per 5ms interval;
// the transient sharing window lasts `life` intervals.
func Satori(s *Suite) (*SatoriResult, error) {
	const (
		numVMs    = 10
		stablePgs = 120
		transPgs  = 40
		life      = 8
		intervals = 96
	)
	interval := s.Cfg.IntervalCycles()
	res := &SatoriResult{TransientLifeIntervals: life}

	run := func(engine string, pts int) (SatoriRow, error) {
		w := newSatoriWorld(numVMs, stablePgs, transPgs, life)
		var busy uint64
		captured, possible := 0, 0

		var scanner *ksm.Scanner
		var driver *pageforge.Driver
		switch engine {
		case "ksm":
			scanner = ksm.NewScanner(ksm.NewAlgorithm(w.hv, ksm.JHasher{}), s.Cfg.KSMCosts)
		case "pageforge":
			mc := memctrl.New(dram.New(s.Cfg.DRAM), w.hv.Phys, nil)
			driver = pageforge.NewDriver(ksm.NewAlgorithm(w.hv, ksm.NewECCHasher()),
				pageforge.NewEngine(mc), s.Cfg.Driver)
		default:
			return SatoriRow{}, fmt.Errorf("experiments: unknown engine %q", engine)
		}

		pfNow := uint64(0)
		for k := 0; k < intervals; k++ {
			if k%life == 0 {
				w.flip(k/life + 1)
			}
			start := uint64(k) * interval
			if scanner != nil {
				before := scanner.Cycles.Total()
				scanner.ScanBatch(pts)
				busy += scanner.Cycles.Total() - before
			} else {
				if pfNow < start {
					pfNow = start
				}
				end := start + interval
				cc := driver.CoreCycles
				for scanned := 0; scanned < pts && pfNow < end; scanned++ {
					_, t, ok := driver.ScanOne(pfNow)
					if !ok {
						break
					}
					pfNow = t
				}
				busy += driver.CoreCycles - cc
			}
			if w.identical {
				captured += w.sharedTransientPages()
				possible += numVMs * transPgs
			}
		}
		row := SatoriRow{Engine: engine, PagesToScan: pts}
		if possible > 0 {
			row.CapturedPct = float64(captured) / float64(possible) * 100
		}
		row.CoreBusyPct = float64(busy) / float64(uint64(intervals)*interval) * 100
		return row, nil
	}

	for _, engine := range []string{"ksm", "pageforge"} {
		for _, pts := range []int{400, 1600, 6400} {
			row, err := run(engine, pts)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// String renders the sweep.
func (r *SatoriResult) String() string {
	t := &table{
		title: fmt.Sprintf("Satori extension: capturing sharing that lives %d intervals (~%dms)",
			r.TransientLifeIntervals, r.TransientLifeIntervals*5),
		header: []string{"Engine", "pages_to_scan", "captured sharing", "core busy"},
	}
	for _, row := range r.Rows {
		t.add(row.Engine, fmt.Sprintf("%d", row.PagesToScan),
			fmt.Sprintf("%.1f%%", row.CapturedPct), fmt.Sprintf("%.1f%%", row.CoreBusyPct))
	}
	t.notes = append(t.notes,
		"Satori (ATC'09): periodic scanning misses short-lived sharing; the paper (§7.2)",
		"argues PageForge's near-free scanning changes that. Aggressive software scanning",
		"buys capture with core cycles; PageForge buys it with memory-controller time.")
	return t.String()
}
