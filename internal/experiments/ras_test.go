package experiments

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/platform"
)

func TestRASSweepShape(t *testing.T) {
	s := NewFastSuite()
	r, err := RAS(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(DefaultRASRates()) {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	// The fault-free anchor has full coverage and must actually merge the
	// duplicated block; every harder rate keeps (at most) that coverage.
	if r.Rows[0].CoveragePct != 100 || r.Rows[0].Merged == 0 {
		t.Fatalf("anchor row: %+v", r.Rows[0])
	}
	for i := 1; i < len(r.Rows); i++ {
		prev, cur := r.Rows[i-1], r.Rows[i]
		if cur.Rate <= prev.Rate {
			t.Fatalf("rates not increasing at %d", i)
		}
		if cur.CoveragePct > prev.CoveragePct+1e-9 {
			t.Fatalf("coverage not monotone: %.1f%% at %g after %.1f%% at %g",
				cur.CoveragePct, cur.Rate, prev.CoveragePct, prev.Rate)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	if last.CoveragePct >= 10 {
		t.Fatalf("always-UE coverage %.1f%%, want collapse below 10%%", last.CoveragePct)
	}
	if last.DegradeInterval < 0 {
		t.Fatal("always-UE run never hit the degradation trip point")
	}
	if last.FaultAborts == 0 || last.Quarantined == 0 {
		t.Fatalf("always-UE row missing fault activity: %+v", last)
	}
	// Mid-rate rows show the RAS machinery paying for itself: retries that
	// healed, and scrub traffic present in the bandwidth mix.
	var healedSomewhere, scrubSomewhere bool
	for _, row := range r.Rows[1:] {
		if row.RetriesHealed > 0 {
			healedSomewhere = true
		}
		if row.ScrubPct > 0 {
			scrubSomewhere = true
		}
	}
	if !healedSomewhere {
		t.Fatal("no rate produced healed retries")
	}
	if !scrubSomewhere {
		t.Fatal("no rate recorded scrub bandwidth")
	}
	if r.String() == "" {
		t.Fatal("empty rendering")
	}
}

func TestRASSweepDeterminism(t *testing.T) {
	a, err := RAS(NewFastSuite(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RAS(NewFastSuite(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("sweep not deterministic:\n%v\n%v", a, b)
	}
}

func TestRASRateValidation(t *testing.T) {
	if _, err := RAS(NewFastSuite(), []float64{0, 2}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

// TestFaultedSuiteParallelDeterminism verifies the suite-level guarantee
// survives fault injection: with a fault model attached, the parallel and
// sequential (mode × app) matrices are bit-identical.
func TestFaultedSuiteParallelDeterminism(t *testing.T) {
	build := func(par int) *Suite {
		s := NewFastSuite()
		s.Cfg.ConvergePasses = 4
		s.Cfg.MeasureIntervals = 4
		s.Apps = s.Apps[:2]
		s.Cfg.Faults = faults.Config{Seed: 11, TransientPerRead: 0.02, DoubleBitPerRead: 0.002}
		s.Parallelism = par
		return s
	}
	seq, par := build(1), build(4)
	if err := seq.RunAll(platform.PageForge); err != nil {
		t.Fatal(err)
	}
	if err := par.RunAll(platform.PageForge); err != nil {
		t.Fatal(err)
	}
	for _, app := range seq.Apps {
		a, err := seq.Result(platform.PageForge, app)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Result(platform.PageForge, app)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s diverged under parallel execution:\n%+v\n%+v", app.Name, a, b)
		}
	}
}
