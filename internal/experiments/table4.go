package experiments

import (
	"math"

	"repro/internal/platform"
)

// Table4Row characterizes the KSM configuration for one application.
type Table4Row struct {
	App string
	// AvgKSMCyclesPct is the KSM process's share of total machine cycles;
	// MaxKSMCyclesPct is its share of the busiest core's cycles.
	AvgKSMCyclesPct float64
	MaxKSMCyclesPct float64
	// PageCompPct / HashGenPct are the fractions of KSM-process cycles in
	// page comparison and hash-key generation.
	PageCompPct float64
	HashGenPct  float64
	// L3 miss rates under KSM and Baseline.
	KSML3Miss      float64
	BaselineL3Miss float64
}

// Table4Result is Table 4 plus averages.
type Table4Result struct {
	Rows []Table4Row
	Avg  Table4Row
}

// Table4 characterizes the KSM configuration (software page deduplication).
func Table4(s *Suite) (*Table4Result, error) {
	res := &Table4Result{}
	interval := float64(s.Cfg.IntervalCycles())
	// The kthread's Zipf-skewed placement: the busiest core receives
	// weight[0] of its total time.
	maxWeight := zipfTopWeight(s.Cfg.Cores, s.Cfg.ZipfS)

	for _, app := range s.Apps {
		base, err := s.Result(platform.Baseline, app)
		if err != nil {
			return nil, err
		}
		k, err := s.Result(platform.KSM, app)
		if err != nil {
			return nil, err
		}
		busyShare := k.BurstMean / interval // share of one core
		row := Table4Row{
			App:             app.Name,
			AvgKSMCyclesPct: busyShare / float64(s.Cfg.Cores) * 100,
			MaxKSMCyclesPct: busyShare * maxWeight * 100,
			KSML3Miss:       k.L3MissRate * 100,
			BaselineL3Miss:  base.L3MissRate * 100,
		}
		if total := k.KSMBreakdown.Total(); total > 0 {
			row.PageCompPct = float64(k.KSMBreakdown.Compare) / float64(total) * 100
			row.HashGenPct = float64(k.KSMBreakdown.Hash) / float64(total) * 100
		}
		res.Rows = append(res.Rows, row)
		res.Avg.AvgKSMCyclesPct += row.AvgKSMCyclesPct
		res.Avg.MaxKSMCyclesPct += row.MaxKSMCyclesPct
		res.Avg.PageCompPct += row.PageCompPct
		res.Avg.HashGenPct += row.HashGenPct
		res.Avg.KSML3Miss += row.KSML3Miss
		res.Avg.BaselineL3Miss += row.BaselineL3Miss
	}
	n := float64(len(res.Rows))
	res.Avg.App = "average"
	res.Avg.AvgKSMCyclesPct /= n
	res.Avg.MaxKSMCyclesPct /= n
	res.Avg.PageCompPct /= n
	res.Avg.HashGenPct /= n
	res.Avg.KSML3Miss /= n
	res.Avg.BaselineL3Miss /= n
	return res, nil
}

func zipfTopWeight(cores int, s float64) float64 {
	total := 0.0
	for i := 0; i < cores; i++ {
		total += 1 / math.Pow(float64(i+1), s)
	}
	return 1 / total
}

// String renders the table.
func (r *Table4Result) String() string {
	t := &table{
		title: "Table 4: Characterization of the KSM configuration",
		header: []string{"App", "KSM cyc avg%", "KSM cyc max%", "PageComp/KSM%",
			"HashKey/KSM%", "KSM L3 miss%", "Base L3 miss%"},
	}
	for _, row := range append(r.Rows, r.Avg) {
		t.add(row.App, f1(row.AvgKSMCyclesPct), f1(row.MaxKSMCyclesPct),
			f1(row.PageCompPct), f1(row.HashGenPct), f1(row.KSML3Miss), f1(row.BaselineL3Miss))
	}
	t.notes = append(t.notes,
		"paper averages: 6.8% avg / 33.4% max KSM cycles; 51.8% compare, 14.8% hash;",
		"                L3 miss 39.2% (KSM) vs 33.8% (Baseline)")
	return t.String()
}
