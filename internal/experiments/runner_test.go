package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/tailbench"
)

// TestParallelMatchesSequential is the determinism audit: the same fast
// suite run strictly sequentially and with a 4-way worker pool must
// produce bit-identical structured results for every (mode, app) key —
// every run owns its image, cache hierarchy, DRAM model, and RNG streams,
// so scheduling must not leak into the results.
func TestParallelMatchesSequential(t *testing.T) {
	build := func(parallelism int) *Suite {
		s := fastSuiteOneApp(t, "img_dnn", "silo")
		s.Parallelism = parallelism
		return s
	}
	seq := build(1)
	if err := seq.RunAll(); err != nil {
		t.Fatal(err)
	}
	par := build(4)
	if err := par.RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range AllModes() {
		for _, app := range seq.Apps {
			a, err := seq.Result(mode, app)
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.Result(mode, app)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s/%s: parallel result diverged from sequential:\nseq: %+v\npar: %+v",
					mode, app.Name, a, b)
			}
		}
	}
}

// TestSuiteResultSingleflight hammers Result from many goroutines for the
// same and different keys and asserts exactly one platform run per key,
// with every caller receiving the same result pointer.
func TestSuiteResultSingleflight(t *testing.T) {
	s := NewFastSuite()
	var mu sync.Mutex
	runs := map[string]int{}
	s.runFn = func(mode platform.Mode, app tailbench.Profile, _ platform.Config) (*platform.Result, error) {
		key := fmt.Sprintf("%s/%s", mode, app.Name)
		mu.Lock()
		runs[key]++
		mu.Unlock()
		time.Sleep(2 * time.Millisecond) // widen the race window
		return &platform.Result{Mode: mode, App: app}, nil
	}

	keys := 0
	got := make(map[string]map[*platform.Result]bool)
	var gotMu sync.Mutex
	var wg sync.WaitGroup
	for _, mode := range AllModes() {
		for _, app := range s.Apps {
			keys++
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(mode platform.Mode, app tailbench.Profile) {
					defer wg.Done()
					r, err := s.Result(mode, app)
					if err != nil {
						t.Error(err)
						return
					}
					key := fmt.Sprintf("%s/%s", mode, app.Name)
					gotMu.Lock()
					if got[key] == nil {
						got[key] = make(map[*platform.Result]bool)
					}
					got[key][r] = true
					gotMu.Unlock()
				}(mode, app)
			}
		}
	}
	wg.Wait()

	if len(runs) != keys {
		t.Fatalf("%d keys executed, want %d", len(runs), keys)
	}
	for key, n := range runs {
		if n != 1 {
			t.Fatalf("%s: %d executions, want exactly 1", key, n)
		}
		if len(got[key]) != 1 {
			t.Fatalf("%s: callers saw %d distinct results, want 1 shared", key, len(got[key]))
		}
	}
}

// TestSuiteResultSharesErrors verifies a failing run is also executed once
// and its error shared by every caller.
func TestSuiteResultSharesErrors(t *testing.T) {
	s := NewFastSuite()
	boom := errors.New("boom")
	calls := 0
	s.runFn = func(platform.Mode, tailbench.Profile, platform.Config) (*platform.Result, error) {
		calls++
		return nil, boom
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Result(platform.KSM, s.Apps[0]); !errors.Is(err, boom) {
			t.Fatalf("call %d: err = %v, want wrapped boom", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing run executed %d times, want 1 (cached error)", calls)
	}
}

// TestRunAllBoundsWorkers checks the pool never exceeds Parallelism
// concurrent runs.
func TestRunAllBoundsWorkers(t *testing.T) {
	s := NewFastSuite()
	s.Parallelism = 3
	var mu sync.Mutex
	cur, peak := 0, 0
	s.runFn = func(mode platform.Mode, app tailbench.Profile, _ platform.Config) (*platform.Result, error) {
		mu.Lock()
		cur++
		if cur > peak {
			peak = cur
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		cur--
		mu.Unlock()
		return &platform.Result{Mode: mode, App: app}, nil
	}
	if err := s.RunAll(); err != nil {
		t.Fatal(err)
	}
	if peak > 3 {
		t.Fatalf("worker pool peaked at %d concurrent runs, bound is 3", peak)
	}
	if peak < 2 {
		t.Fatalf("worker pool peaked at %d concurrent runs, expected overlap", peak)
	}
}

// TestProgressReporter exercises the reporter through a parallel RunAll
// and the summary rendering.
func TestProgressReporter(t *testing.T) {
	var buf strings.Builder
	s := NewFastSuite()
	s.Apps = s.Apps[:2]
	s.Parallelism = 4
	rep := NewProgressReporter(&buf)
	s.Reporter = rep
	s.runFn = func(mode platform.Mode, app tailbench.Profile, _ platform.Config) (*platform.Result, error) {
		return &platform.Result{Mode: mode, App: app}, nil
	}
	if err := s.RunAll(platform.KSM); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "run  KSM") || !strings.Contains(out, "done KSM") {
		t.Fatalf("progress lines missing:\n%s", out)
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "2 runs") || !strings.Contains(sum, "KSM") {
		t.Fatalf("summary missing runs:\n%s", sum)
	}
}

// TestTableWideRow guards the renderer against rows wider than the header
// (it used to index widths out of range and panic).
func TestTableWideRow(t *testing.T) {
	tb := &table{
		title:  "wide",
		header: []string{"A", "B"},
	}
	tb.add("1", "2", "3-overflows-header")
	tb.add("only-one")
	out := tb.String()
	if !strings.Contains(out, "3-overflows-header") {
		t.Fatalf("overflow cell dropped:\n%s", out)
	}
}
