package experiments

import (
	"repro/internal/ksm"
	"repro/internal/tailbench"
)

// Fig8Row reports the outcome of hash-key comparisons for one application:
// the fraction of candidate-page key checks that matched (page deemed
// unchanged, unstable-tree search proceeds) vs mismatched, for KSM's
// jhash-based keys and PageForge's ECC-based keys.
type Fig8Row struct {
	App            string
	JHashMatch     float64
	JHashMismatch  float64
	ECCMatch       float64
	ECCMismatch    float64
	ExtraECCMatch  float64 // ECCMatch - JHashMatch: the ECC false positives
	JHashBytesRead int
	ECCBytesRead   int
}

// Fig8Result is Figure 8 plus the headline average.
type Fig8Result struct {
	Rows []Fig8Row
	// AvgExtraECCMatch is the average extra match fraction of ECC keys
	// (paper: 3.7% of comparisons are additional false positives).
	AvgExtraECCMatch float64
	// FootprintReduction is the key-generation traffic saving (paper: 75%).
	FootprintReduction float64
}

// Figure8 runs the same deployment twice — once hashing with jhash2 over
// 1KB (KSM) and once with ECC minikeys over 256B (PageForge) — with
// identical content evolution (same seeds drive the volatile churn), and
// compares the key-check outcomes.
func Figure8(s *Suite) (*Fig8Result, error) {
	res := &Fig8Result{}
	for _, app := range s.Apps {
		jm, jmm, err := hashOutcomes(s, app, ksm.JHasher{})
		if err != nil {
			return nil, err
		}
		em, emm, err := hashOutcomes(s, app, ksm.NewECCHasher())
		if err != nil {
			return nil, err
		}
		row := Fig8Row{
			App:            app.Name,
			JHashMatch:     jm,
			JHashMismatch:  jmm,
			ECCMatch:       em,
			ECCMismatch:    emm,
			ExtraECCMatch:  em - jm,
			JHashBytesRead: ksm.JHasher{}.BytesRead(),
			ECCBytesRead:   ksm.NewECCHasher().BytesRead(),
		}
		res.Rows = append(res.Rows, row)
		res.AvgExtraECCMatch += row.ExtraECCMatch
	}
	res.AvgExtraECCMatch /= float64(len(res.Rows))
	res.FootprintReduction = 1 - float64(ksm.NewECCHasher().BytesRead())/float64(ksm.JHasher{}.BytesRead())
	return res, nil
}

// hashOutcomes builds the deployment, converges, then runs extra passes
// with churn, reporting the match/mismatch fractions of hash checks.
func hashOutcomes(s *Suite, app tailbench.Profile, h ksm.Hasher) (match, mismatch float64, err error) {
	physFrames := s.Cfg.VMs*app.PagesPerVM*2 + 1024
	img, err := tailbench.BuildImage(app, s.Cfg.VMs, physFrames, s.Cfg.Seed)
	if err != nil {
		return 0, 0, err
	}
	scanner := ksm.NewScanner(ksm.NewAlgorithm(img.HV, h), s.Cfg.KSMCosts)

	passes := s.Cfg.ConvergePasses
	if passes < 6 {
		passes = 6
	}
	var startMatches, startMismatches uint64
	for p := 0; p < passes; p++ {
		if p == passes/2 {
			// Steady state reached: measure outcomes from here on.
			startMatches = scanner.Alg.Stats.HashMatches
			startMismatches = scanner.Alg.Stats.HashMismatches
		}
		pages := scanner.Alg.MergeablePages()
		for i := 0; i < pages; i++ {
			scanner.ScanOne()
		}
		img.ChurnVolatile()
	}
	m := scanner.Alg.Stats.HashMatches - startMatches
	mm := scanner.Alg.Stats.HashMismatches - startMismatches
	total := float64(m + mm)
	if total == 0 {
		return 0, 0, nil
	}
	return float64(m) / total, float64(mm) / total, nil
}

// String renders the figure as a table.
func (r *Fig8Result) String() string {
	t := &table{
		title:  "Figure 8: Outcome of hash key comparisons (jhash vs ECC-based keys)",
		header: []string{"App", "jhash match", "jhash mismatch", "ECC match", "ECC mismatch", "extra ECC match"},
	}
	for _, row := range r.Rows {
		t.add(row.App, pct(row.JHashMatch), pct(row.JHashMismatch),
			pct(row.ECCMatch), pct(row.ECCMismatch), pct(row.ExtraECCMatch))
	}
	t.notes = append(t.notes,
		"paper: ECC keys show ~3.7% additional (false-positive) matches on average; measured "+pct(r.AvgExtraECCMatch),
		"key-generation footprint: jhash 1024B vs ECC 256B per page ("+pct(r.FootprintReduction)+" reduction; paper 75%)")
	return t.String()
}
