package experiments

import (
	"strings"
	"testing"

	"repro/internal/check"
	"repro/internal/workload"
)

func TestVerifySweepPasses(t *testing.T) {
	s := NewFastSuite()
	s.Parallelism = 4
	res, err := Verify(s, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.FaultFree.Scenarios + res.Faulted.Scenarios; got != 12 {
		t.Fatalf("scenario accounting: %d != 12", got)
	}
	if res.FaultFree.Scenarios == 0 || res.Faulted.Scenarios == 0 {
		t.Fatalf("sweep covered one regime only: %+v", res)
	}
	if res.FaultFree.DiffEligible == 0 {
		t.Fatalf("no diff-eligible scenarios in the sweep: %+v", res.FaultFree)
	}
	if res.FaultFree.DiffChecked != res.FaultFree.DiffEligible {
		t.Fatalf("differential skipped on %d eligible scenarios",
			res.FaultFree.DiffEligible-res.FaultFree.DiffChecked)
	}
	if res.FaultFree.ContentChecks == 0 || res.FaultFree.RefcountChecks == 0 {
		t.Fatalf("checker did no work: %+v", res.FaultFree)
	}
	out := res.String()
	for _, want := range []string{"12 randomized scenarios", "fault-free", "faulted", "diff eq"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestVerifyIsDeterministic(t *testing.T) {
	run := func(par int) *VerifyResult {
		s := NewFastSuite()
		s.Parallelism = par
		res, err := Verify(s, 8)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if a, b := run(1), run(6); *a != *b {
		t.Fatalf("verify sweep depends on parallelism:\n%+v\n%+v", a, b)
	}
}

// TestVerifyShrinksInjectedBug substitutes the scenario runner with one
// carrying an intentional oracle bug — it rejects any scenario with ≥3 VMs
// and a duplicated region — and checks the sweep catches it and shrinks it
// to the minimal reproducing configuration.
func TestVerifyShrinksInjectedBug(t *testing.T) {
	orig := verifyRun
	defer func() { verifyRun = orig }()
	verifyRun = func(sc workload.Scenario) (*check.Report, error) {
		if sc.VMs >= 3 && sc.DupFrac > 0.1 {
			return nil, &injectedBug{}
		}
		return &check.Report{Scenario: sc, FaultFree: sc.FaultFree()}, nil
	}

	s := NewFastSuite()
	s.Parallelism = 2
	_, err := Verify(s, 30)
	if err == nil {
		t.Fatal("injected oracle bug escaped the sweep")
	}
	msg := err.Error()
	for _, want := range []string{"shrunk", "func TestRepro_", "injected oracle bug"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("failure report missing %q:\n%s", want, msg)
		}
	}
	// The shrunk scenario in the report must be at the predicate's floor.
	if !strings.Contains(msg, "vms=3") {
		t.Fatalf("shrinker did not minimize VMs to 3:\n%s", msg)
	}
}

type injectedBug struct{}

func (*injectedBug) Error() string { return "injected oracle bug" }
