package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/check"
	"repro/internal/platform"
	"repro/internal/pressure"
	"repro/internal/tailbench"
)

// The pressure experiment (a robustness extension beyond the paper's
// evaluation): an overcommit-ratio sweep that drives the memory-pressure
// resilience layer through an allocation-burst storm. Each point runs a
// merge-poor overcommitted fleet where demand (resident images + burst
// region) exceeds arena capacity, with the full invariant checker attached
// at every observation point — the claim is not just that the run survives
// graceful-OOM stalls, ballooning, and ladder degradation, but that the
// merge invariants hold *while* those mechanisms are active. Every point
// runs twice and the two pressure reports must be deeply equal: the
// stall/balloon/throttle machinery is bit-deterministic.

// PressureRow is one overcommit-ratio data point.
type PressureRow struct {
	// Ratio is the requested demand/capacity overcommit; EffRatio is the
	// realized ratio after the arena floor (the resident images must fit).
	Ratio    float64
	EffRatio float64
	// Frames is the arena size; MinFreeFrames the freelist low-water mark.
	Frames        int
	MinFreeFrames int

	BurstPages       uint64
	AllocStalls      uint64
	BalloonReclaimed uint64
	ThrottledPoints  uint64
	PausedPasses     uint64

	// SavingsPct is the end-of-run memory savings (merging is reclaim, so
	// it keeps working through the storm).
	SavingsPct float64

	// Ladder trajectory: transition count, rendered path, final rung, and
	// whether the run left Healthy and returned to it.
	Transitions int
	Path        string
	Final       string
	Recovered   bool

	// Oracle work: observation points audited and page-content comparisons
	// performed by the invariant checker during this point's first run.
	Intervals     int
	ContentChecks int
}

// PressureResult is the sweep.
type PressureResult struct {
	Rows []PressureRow
	// Storm is the per-point burst shape (pages/VM/pass x passes).
	StormPages  int
	StormPasses int
}

// DefaultPressureRatios spans comfortable capacity to a 2x overcommit.
func DefaultPressureRatios() []float64 {
	return []float64{1.0, 1.25, 1.5, 2.0}
}

// pressureWorld is the storm deployment: a compact merge-poor fleet (low
// dup/zero fractions, churn) so scanning cannot instantly reclaim the
// burst — demand has to race merging for the ladder to see real pressure.
func pressureWorld() (tailbench.Profile, platform.Config) {
	app := *tailbench.ProfileByName("silo")
	app.PagesPerVM = 100
	app.BurstPagesPerVM = 90
	app.DupFrac = 0.15
	app.ZeroFrac = 0.05
	app.VolatileFrac = 0.3
	cfg := platform.DefaultConfig()
	cfg.VMs = 4
	cfg.Cores = 4
	cfg.ConvergePasses = 14
	cfg.MeasureIntervals = 4
	return app, cfg
}

// pressurePoint runs one overcommit ratio twice — once audited by the
// invariant checker, once bare — and cross-checks the two pressure reports
// for deep equality (the verifier must not perturb the run).
func pressurePoint(seed uint64, ratio float64) (PressureRow, error) {
	app, cfg := pressureWorld()
	cfg.Seed = seed
	pc := pressure.DefaultConfig()
	pc.Enabled = true
	pc.OvercommitRatio = ratio
	pc.BurstStart = 1
	pc.BurstPasses = 3
	pc.BurstPages = 30
	pc.BurstDupFrac = 0.5
	cfg.Pressure = pc

	ck := &check.Checker{}
	cfg.Verifier = ck
	res, err := platform.Run(platform.PageForge, app, cfg)
	if err != nil {
		return PressureRow{}, fmt.Errorf("experiments: pressure ratio %.2f: %w", ratio, err)
	}

	cfg.Verifier = nil
	again, err := platform.Run(platform.PageForge, app, cfg)
	if err != nil {
		return PressureRow{}, fmt.Errorf("experiments: pressure ratio %.2f (replay): %w", ratio, err)
	}
	if !reflect.DeepEqual(res.Pressure, again.Pressure) {
		return PressureRow{}, fmt.Errorf(
			"experiments: pressure ratio %.2f: same-seed pressure reports diverged\n  audited: %+v\n  bare:    %+v",
			ratio, res.Pressure, again.Pressure)
	}

	rep := res.Pressure
	demand := cfg.VMs * (app.PagesPerVM + app.BurstPagesPerVM)
	return PressureRow{
		Ratio:            ratio,
		EffRatio:         float64(demand) / float64(rep.TotalFrames),
		Frames:           rep.TotalFrames,
		MinFreeFrames:    rep.MinFreeFrames,
		BurstPages:       rep.BurstPages,
		AllocStalls:      rep.AllocStalls,
		BalloonReclaimed: rep.BalloonReclaimed,
		ThrottledPoints:  rep.ThrottledPoints,
		PausedPasses:     rep.PausedPasses,
		SavingsPct:       res.Footprint.Savings() * 100,
		Transitions:      len(rep.Transitions),
		Path:             rep.Path,
		Final:            rep.Final.String(),
		Recovered:        rep.Recovered,
		Intervals:        ck.Counters.Intervals,
		ContentChecks:    ck.Counters.ContentChecks,
	}, nil
}

// Pressure sweeps the overcommit ratio against the resilience machinery's
// behavior. Points are independent hermetic worlds sharing the suite seed.
func Pressure(s *Suite, ratios []float64) (*PressureResult, error) {
	if len(ratios) == 0 {
		ratios = DefaultPressureRatios()
	}
	res := &PressureResult{StormPages: 30, StormPasses: 3}
	for _, ratio := range ratios {
		if ratio < 1 {
			return nil, fmt.Errorf("experiments: overcommit ratio %g below 1", ratio)
		}
		row, err := pressurePoint(s.Cfg.Seed, ratio)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the sweep as a table.
func (r *PressureResult) String() string {
	t := &table{
		title: fmt.Sprintf("Pressure: overcommit storm vs resilience ladder (burst %d pages/VM x %d passes)",
			r.StormPages, r.StormPasses),
		header: []string{"ratio", "eff", "frames", "min-free", "burst", "stalls",
			"balloon", "throttle", "paused", "savings", "trans", "final", "path"},
	}
	for _, row := range r.Rows {
		final := row.Final
		if row.Recovered {
			final += "*"
		}
		t.add(
			f2(row.Ratio),
			f2(row.EffRatio),
			fmt.Sprintf("%d", row.Frames),
			fmt.Sprintf("%d", row.MinFreeFrames),
			fmt.Sprintf("%d", row.BurstPages),
			fmt.Sprintf("%d", row.AllocStalls),
			fmt.Sprintf("%d", row.BalloonReclaimed),
			fmt.Sprintf("%d", row.ThrottledPoints),
			fmt.Sprintf("%d", row.PausedPasses),
			f1(row.SavingsPct)+"%",
			fmt.Sprintf("%d", row.Transitions),
			final,
			row.Path,
		)
	}
	t.notes = append(t.notes,
		"each point runs twice (audited by the invariant checker, then bare); the",
		"pressure reports must be deeply equal — stalls, ballooning, and ladder",
		"transitions are bit-deterministic. final '*' = degraded and recovered.")
	return t.String()
}
