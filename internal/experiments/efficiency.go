package experiments

import (
	"fmt"
	"reflect"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tailbench"
)

// The efficiency experiment (an observability extension beyond the paper's
// evaluation): a scan-efficiency attribution sweep. Every (engine, app)
// point runs with the merge-lifecycle ledger and the per-pass series
// attached, so the report can say not only how much memory each engine
// saved but where the scan budget went — productive merges vs work wasted
// to content churn, checksum instability, fault retries, and backpressure
// sheds — and how fast the savings arrived (the pass by which 90% of the
// eventual merges had landed). Each point then re-runs bare and the two
// Results must be deeply equal: provenance instrumentation is load-bearing
// here precisely because it is proven weightless.

// EfficiencyRow is one (engine, application) data point.
type EfficiencyRow struct {
	Mode string
	App  string

	// Convergence outcome: passes to steady state, candidates scanned,
	// merges landed (stable + unstable + zero), end-of-run savings.
	Passes     int
	Scanned    uint64
	Merged     uint64
	SavingsPct float64

	// Wasted-work attribution from the ledger's cause axis.
	Churned    uint64 // content churn: hash key changed between passes
	Unstable   uint64 // checksum instability: match lost the final verify
	FaultRetry uint64 // hardware UE aborts and their fallback merges
	Shed       uint64 // whole passes shed by backpressure

	// MergesPerKScan is the headline efficiency: merges per 1,000 scanned
	// candidates.
	MergesPerKScan float64

	// P90Pass is the first convergence pass by which 90% of the convergence
	// phase's merges had landed, read off the per-pass series (-1 when the
	// run merged nothing).
	P90Pass int

	// LedgerEvents / LedgerDropped size the provenance stream; Identical
	// records the bit-identity cross-check against the bare re-run.
	LedgerEvents  uint64
	LedgerDropped uint64
	Identical     bool
}

// EfficiencyResult is the sweep.
type EfficiencyResult struct {
	Rows []EfficiencyRow
	// Series is the sweep's per-pass time-series bundle, one track per
	// (engine, app) run, for -series export alongside the table.
	Series *obs.Series
}

// efficiencyPoint runs one (engine, app) twice — instrumented with ledger +
// series, then bare — and cross-checks the Results for deep equality.
func efficiencyPoint(base platform.Config, series *obs.Series, mode platform.Mode,
	app tailbench.Profile) (EfficiencyRow, error) {

	cfg := base
	cfg.Ledger = obs.NewLedger(0)
	cfg.Series = series
	res, err := platform.Run(mode, app, cfg)
	if err != nil {
		return EfficiencyRow{}, fmt.Errorf("experiments: efficiency %s/%s: %w", mode, app.Name, err)
	}

	bareCfg := base
	bareCfg.Ledger = nil
	bareCfg.Series = nil
	bare, err := platform.Run(mode, app, bareCfg)
	if err != nil {
		return EfficiencyRow{}, fmt.Errorf("experiments: efficiency %s/%s (bare): %w", mode, app.Name, err)
	}

	at := cfg.Ledger.Attribution()
	st := res.Stats
	row := EfficiencyRow{
		Mode:          mode.String(),
		App:           app.Name,
		Passes:        res.ConvergedPasses,
		Scanned:       st.PagesScanned,
		Merged:        st.StableMerges + st.UnstableMerges + st.ZeroMerges,
		SavingsPct:    res.Footprint.Savings() * 100,
		Churned:       at.Causes["content_churn"],
		Unstable:      at.Causes["checksum_instability"],
		FaultRetry:    at.Causes["fault_retry"],
		Shed:          at.Causes["backpressure_shed"],
		LedgerEvents:  at.Events,
		LedgerDropped: at.Dropped,
		P90Pass:       -1,
		Identical:     reflect.DeepEqual(res, bare),
	}
	if row.Scanned > 0 {
		row.MergesPerKScan = float64(row.Merged) / float64(row.Scanned) * 1000
	}

	// Convergence speed off the series: cumulate the per-pass vm/merges
	// deltas and find the pass crossing 90% of the phase total.
	track := series.Track(fmt.Sprintf("%s/%s", mode, app.Name))
	var cum, total uint64
	for _, p := range track.Points() {
		if p.Phase == "converge" {
			total += p.Counters["vm/merges"]
		}
	}
	if total > 0 {
		for _, p := range track.Points() {
			if p.Phase != "converge" {
				continue
			}
			cum += p.Counters["vm/merges"]
			if cum*10 >= total*9 {
				row.P90Pass = p.Index
				break
			}
		}
	}
	return row, nil
}

// Efficiency sweeps both dedup engines across the suite's applications with
// full provenance instrumentation. Points are independent hermetic worlds
// sharing the suite configuration and seed; they deliberately bypass the
// suite's singleflight cache because each needs its own per-run ledger.
func Efficiency(s *Suite) (*EfficiencyResult, error) {
	res := &EfficiencyResult{Series: obs.NewSeries(0)}
	for _, mode := range []platform.Mode{platform.KSM, platform.PageForge} {
		for _, app := range s.Apps {
			row, err := efficiencyPoint(s.Cfg, res.Series, mode, app)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
			// When the suite carries a shared -series collector, republish
			// this point's track into it under an "efficiency/" prefix — the
			// bare "Mode/app" names belong to the suite's own cached runs.
			if shared := s.Cfg.Series; shared != nil {
				name := fmt.Sprintf("%s/%s", mode, app.Name)
				shared.Track("efficiency/" + name).SetState(res.Series.Track(name).State())
			}
		}
	}
	return res, nil
}

// String renders the sweep as a table.
func (r *EfficiencyResult) String() string {
	t := &table{
		title: "Efficiency: scan-budget attribution and convergence speed (ledger + per-pass series)",
		header: []string{"engine", "app", "passes", "p90", "scanned", "merged",
			"merge/kscan", "churn", "unstable", "fault", "shed", "savings", "events", "identical"},
	}
	for _, row := range r.Rows {
		t.add(
			row.Mode,
			row.App,
			fmt.Sprintf("%d", row.Passes),
			fmt.Sprintf("%d", row.P90Pass),
			fmt.Sprintf("%d", row.Scanned),
			fmt.Sprintf("%d", row.Merged),
			f1(row.MergesPerKScan),
			fmt.Sprintf("%d", row.Churned),
			fmt.Sprintf("%d", row.Unstable),
			fmt.Sprintf("%d", row.FaultRetry),
			fmt.Sprintf("%d", row.Shed),
			f1(row.SavingsPct)+"%",
			fmt.Sprintf("%d", row.LedgerEvents),
			fmt.Sprintf("%t", row.Identical),
		)
	}
	t.notes = append(t.notes,
		"p90 = first convergence pass holding 90% of the phase's merges (per-pass series);",
		"churn/unstable/fault/shed = wasted-work events by ledger cause. every point",
		"re-runs bare; identical=true means the instrumented Result is deeply equal.")
	return t.String()
}
