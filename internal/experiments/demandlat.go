package experiments

// DemandLatRow is one (application, mode) demand-latency distribution: the
// latency of sampled application accesses at the shared-L3 boundary during
// the measurement phase, in cycles. Unlike Figures 9/10 (end-to-end query
// sojourn times), these are raw memory-access latencies — the histogram the
// queueing model's dilation ratio is derived from.
type DemandLatRow struct {
	App  string
	Mode string
	Mean float64
	P50  float64
	P95  float64
	P99  float64
	Max  float64
}

// DemandLatResult is the latency experiment's output.
type DemandLatResult struct {
	Rows []DemandLatRow
}

// DemandLatency reports the demand-access latency distribution for every
// (application, mode) pair: how much the dedup engines' DRAM traffic and
// cache pollution stretch the tail of ordinary application accesses.
func DemandLatency(s *Suite) (*DemandLatResult, error) {
	res := &DemandLatResult{}
	for _, app := range s.Apps {
		for _, mode := range AllModes() {
			r, err := s.Result(mode, app)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, DemandLatRow{
				App:  app.Name,
				Mode: mode.String(),
				Mean: r.AvgDemandLatency,
				P50:  r.DemandLatP50,
				P95:  r.DemandLatP95,
				P99:  r.DemandLatP99,
				Max:  r.DemandLatMax,
			})
		}
	}
	return res, nil
}

// String renders the table.
func (r *DemandLatResult) String() string {
	t := &table{
		title:  "Demand-access latency at the shared L3 (cycles)",
		header: []string{"App", "Mode", "Mean", "p50", "p95", "p99", "Max"},
	}
	for _, row := range r.Rows {
		t.add(row.App, row.Mode, f1(row.Mean), f1(row.P50), f1(row.P95), f1(row.P99), f1(row.Max))
	}
	t.notes = append(t.notes,
		"p95/p99 from the measurement histogram (log-bucketed, <=6.25% bucket width);",
		"the mean alone hides the miss tail that drives Figure 10's 95th-percentile gap")
	return t.String()
}
