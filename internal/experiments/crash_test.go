package experiments

import (
	"strings"
	"testing"
)

// TestCrashSweepShape runs a 2x2 corner of the grid and checks the sweep
// tells the recovery story: the crash fires, a checkpoint restores, replay
// re-merges destroyed work, the recovery audit runs, and the recovered run
// is bit-identical to the uninterrupted one. (crashPoint itself fails on
// any identity violation.)
func TestCrashSweepShape(t *testing.T) {
	r, err := Crash(NewFastSuite(), []int{1, 2}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !row.Identical {
			t.Fatalf("crash@%d every=%d: not identical: %+v", row.CrashPass, row.Every, row)
		}
		if row.Crashes != 1 || row.Restores != 1 {
			t.Fatalf("crash@%d every=%d: crash never fired: %+v", row.CrashPass, row.Every, row)
		}
		if row.RecoveryCycles == 0 {
			t.Fatalf("crash@%d every=%d: recovery charged nothing: %+v", row.CrashPass, row.Every, row)
		}
		// A periodic checkpoint (taken after at least one full pass) holds a
		// populated stable tree for the recovery audit; the boot checkpoint
		// legitimately audits an empty index.
		if row.Every > 0 && row.StableVerified == 0 {
			t.Fatalf("crash@%d every=%d: recovery audit did no work: %+v", row.CrashPass, row.Every, row)
		}
		if row.Intervals == 0 || row.ContentChecks == 0 {
			t.Fatalf("crash@%d every=%d: invariant checker did no work: %+v", row.CrashPass, row.Every, row)
		}
	}
	// Boot-only checkpointing must replay strictly more passes than dense
	// checkpointing for the same late crash point.
	var bootReplay, denseReplay int
	for _, row := range r.Rows {
		if row.CrashPass == 2 && row.Every == 0 {
			bootReplay = row.ReplayedPasses
		}
		if row.CrashPass == 2 && row.Every == 2 {
			denseReplay = row.ReplayedPasses
		}
	}
	if bootReplay <= denseReplay {
		t.Fatalf("boot-only replay %d not worse than every-2 replay %d", bootReplay, denseReplay)
	}
	if out := r.String(); !strings.Contains(out, "identical") {
		t.Fatalf("rendering lost the identity column:\n%s", out)
	}
}

func TestCrashGridValidation(t *testing.T) {
	if _, err := Crash(NewFastSuite(), []int{-1}, nil); err == nil {
		t.Fatal("negative crash pass accepted")
	}
	if _, err := Crash(NewFastSuite(), nil, []int{-2}); err == nil {
		t.Fatal("negative checkpoint interval accepted")
	}
}
