package experiments

import (
	"repro/internal/platform"
)

// LatencyRow holds one application's normalized latencies under the three
// configurations (Baseline always 1.0).
type LatencyRow struct {
	App           string
	KSMMean       float64 // Figure 9
	PageForgeMean float64
	KSMP95        float64 // Figure 10
	PageForgeP95  float64
}

// LatencyResult covers Figures 9 and 10 (they come from the same runs).
type LatencyResult struct {
	Rows []LatencyRow
	// Paper averages: KSM 1.68x mean / 2.36x tail; PageForge 1.10x / 1.11x.
	AvgKSMMean       float64
	AvgPageForgeMean float64
	AvgKSMP95        float64
	AvgPageForgeP95  float64
}

// Latency runs the queueing phase for all three configurations of every
// application and reports sojourn latencies normalized to Baseline.
func Latency(s *Suite) (*LatencyResult, error) {
	res := &LatencyResult{}
	for _, app := range s.Apps {
		base, err := s.Result(platform.Baseline, app)
		if err != nil {
			return nil, err
		}
		k, err := s.Result(platform.KSM, app)
		if err != nil {
			return nil, err
		}
		pf, err := s.Result(platform.PageForge, app)
		if err != nil {
			return nil, err
		}
		seed := s.Cfg.Seed*977 + 13
		lb := platform.Latency(app, base, base, s.Cfg, s.MinQueries, seed)
		lk := platform.Latency(app, base, k, s.Cfg, s.MinQueries, seed)
		lp := platform.Latency(app, base, pf, s.Cfg, s.MinQueries, seed)
		row := LatencyRow{
			App:           app.Name,
			KSMMean:       lk.Mean / lb.Mean,
			PageForgeMean: lp.Mean / lb.Mean,
			KSMP95:        lk.P95 / lb.P95,
			PageForgeP95:  lp.P95 / lb.P95,
		}
		res.Rows = append(res.Rows, row)
		res.AvgKSMMean += row.KSMMean
		res.AvgPageForgeMean += row.PageForgeMean
		res.AvgKSMP95 += row.KSMP95
		res.AvgPageForgeP95 += row.PageForgeP95
	}
	n := float64(len(res.Rows))
	res.AvgKSMMean /= n
	res.AvgPageForgeMean /= n
	res.AvgKSMP95 /= n
	res.AvgPageForgeP95 /= n
	return res, nil
}

// Figure9 renders the mean sojourn latency comparison.
func (r *LatencyResult) Figure9() string {
	t := &table{
		title:  "Figure 9: Mean sojourn latency normalized to Baseline",
		header: []string{"App", "Baseline", "KSM", "PageForge"},
	}
	for _, row := range r.Rows {
		t.add(row.App, "1.00", f2(row.KSMMean), f2(row.PageForgeMean))
	}
	t.add("average", "1.00", f2(r.AvgKSMMean), f2(r.AvgPageForgeMean))
	t.notes = append(t.notes, "paper: KSM 1.68x, PageForge 1.10x on average")
	return t.String()
}

// Figure10 renders the 95th-percentile latency comparison.
func (r *LatencyResult) Figure10() string {
	t := &table{
		title:  "Figure 10: 95th percentile latency normalized to Baseline",
		header: []string{"App", "Baseline", "KSM", "PageForge"},
	}
	for _, row := range r.Rows {
		t.add(row.App, "1.00", f2(row.KSMP95), f2(row.PageForgeP95))
	}
	t.add("average", "1.00", f2(r.AvgKSMP95), f2(r.AvgPageForgeP95))
	t.notes = append(t.notes, "paper: KSM 2.36x, PageForge 1.11x on average; silo's tail >5x under KSM")
	return t.String()
}
