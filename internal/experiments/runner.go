package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/platform"
	"repro/internal/tailbench"
)

// AllModes is the paper's full configuration matrix.
func AllModes() []platform.Mode {
	return []platform.Mode{platform.Baseline, platform.KSM, platform.PageForge}
}

// RunAll executes the (mode × app) matrix across a bounded worker pool and
// returns the first error. With no modes given it runs all three
// configurations. Results land in the suite's cache, so experiments
// consuming them afterwards are pure table rendering; runs already cached
// (or requested concurrently by another experiment) are not duplicated.
func (s *Suite) RunAll(modes ...platform.Mode) error {
	if len(modes) == 0 {
		modes = AllModes()
	}
	type job struct {
		mode platform.Mode
		app  tailbench.Profile
	}
	var jobs []job
	for _, m := range modes {
		for _, app := range s.Apps {
			jobs = append(jobs, job{m, app})
		}
	}
	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	jobCh := make(chan job)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				if _, err := s.Result(j.mode, j.app); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}
		}()
	}
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	wg.Wait()
	return firstErr
}

// Reporter observes suite run lifecycle events. Implementations must be
// safe for concurrent use: with a parallel suite, runs start and finish
// from multiple goroutines.
type Reporter interface {
	RunStarted(mode platform.Mode, app string)
	RunFinished(mode platform.Mode, app string, wall time.Duration, err error)
}

// runRecord is one finished run's wall-clock entry.
type runRecord struct {
	mode platform.Mode
	app  string
	wall time.Duration
	err  error
}

// ProgressReporter streams one line per run start/finish to W and collects
// wall-clock durations for a post-hoc summary table. Safe for concurrent
// use.
type ProgressReporter struct {
	W io.Writer

	mu      sync.Mutex
	started time.Time
	records []runRecord
}

// NewProgressReporter builds a reporter writing progress lines to w.
func NewProgressReporter(w io.Writer) *ProgressReporter {
	return &ProgressReporter{W: w}
}

// RunStarted implements Reporter.
func (p *ProgressReporter) RunStarted(mode platform.Mode, app string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.started.IsZero() {
		p.started = time.Now()
	}
	if p.W != nil {
		fmt.Fprintf(p.W, "run  %-9s %-9s ...\n", mode, app)
	}
}

// RunFinished implements Reporter.
func (p *ProgressReporter) RunFinished(mode platform.Mode, app string, wall time.Duration, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.records = append(p.records, runRecord{mode: mode, app: app, wall: wall, err: err})
	if p.W == nil {
		return
	}
	if err != nil {
		fmt.Fprintf(p.W, "FAIL %-9s %-9s %8.2fs  %v\n", mode, app, wall.Seconds(), err)
		return
	}
	fmt.Fprintf(p.W, "done %-9s %-9s %8.2fs\n", mode, app, wall.Seconds())
}

// Summary renders the collected runs as a duration table, slowest first,
// with the cumulative simulation time against the elapsed wall clock (the
// gap is the parallel speedup).
func (p *ProgressReporter) Summary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := &table{
		title:  "Suite runs by wall-clock duration",
		header: []string{"Mode", "App", "Wall", "Status"},
	}
	recs := make([]runRecord, len(p.records))
	copy(recs, p.records)
	sort.Slice(recs, func(i, j int) bool { return recs[i].wall > recs[j].wall })
	var total time.Duration
	for _, r := range recs {
		status := "ok"
		if r.err != nil {
			status = "FAIL"
		}
		t.add(r.mode.String(), r.app, fmt.Sprintf("%.2fs", r.wall.Seconds()), status)
		total += r.wall
	}
	elapsed := time.Duration(0)
	if !p.started.IsZero() {
		elapsed = time.Since(p.started)
	}
	t.notes = append(t.notes, fmt.Sprintf("%d runs, %.2fs simulation time in %.2fs elapsed",
		len(recs), total.Seconds(), elapsed.Seconds()))
	return t.String()
}
