package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/check"
	"repro/internal/workload"
)

// DefaultVerifyScenarios is the randomized-scenario count of -exp verify.
const DefaultVerifyScenarios = 200

// verifyShrinkProbes bounds the shrinker's re-runs after a failure.
const verifyShrinkProbes = 200

// verifyRun is the scenario entry point; tests substitute it to exercise
// the failure-reporting path without a real oracle bug.
var verifyRun = check.RunScenario

// VerifyRegime aggregates checker work over one class of scenarios.
type VerifyRegime struct {
	Scenarios          int
	Intervals          int // observation points audited (both modes)
	ContentChecks      int
	RefcountChecks     int
	QuarantineChecks   int
	CompletenessGroups int
	// DiffEligible counts scenarios whose merge sets are mode-comparable
	// (fault-free, unpressured, no live events); DiffChecked counts those
	// actually compared — the two must agree, which the sweep test pins.
	// Groups is the total number of equal clean merge groups.
	DiffEligible int
	DiffChecked  int
	Groups       int
}

func (r *VerifyRegime) add(rep *check.Report) {
	r.Scenarios++
	if rep.Scenario.DiffComparable() {
		r.DiffEligible++
	}
	for _, c := range []check.Counters{rep.KSM, rep.PageForge} {
		r.Intervals += c.Intervals
		r.ContentChecks += c.ContentChecks
		r.RefcountChecks += c.RefcountChecks
		r.QuarantineChecks += c.QuarantineChecks
		r.CompletenessGroups += c.CompletenessGroups
	}
	if rep.DiffChecked {
		r.DiffChecked++
		r.Groups += rep.Groups
	}
}

// VerifyResult summarizes a randomized model-based verification sweep.
type VerifyResult struct {
	N         int
	Seed      uint64
	FaultFree VerifyRegime
	Faulted   VerifyRegime
}

// Verify runs n randomized scenarios (see internal/workload) through both
// dedup engines with the full invariant checker attached, plus the
// differential merge-set equivalence on fault-free runs. Scenarios derive
// deterministically from the suite seed and run across the suite's worker
// pool; results are order-independent, and on failure the lowest-index
// failing scenario is selected, shrunk to a minimal reproduction, and
// reported as an error carrying a ready-to-paste regression test.
func Verify(s *Suite, n int) (*VerifyResult, error) {
	if n <= 0 {
		n = DefaultVerifyScenarios
	}
	res := &VerifyResult{N: n, Seed: s.Cfg.Seed}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	scenario := func(i int) workload.Scenario {
		return workload.Generate(s.Cfg.Seed*1_000_003 + uint64(i))
	}

	reports := make([]*check.Report, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				reports[i], errs[i] = verifyRun(scenario(i))
			}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	wg.Wait()

	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, shrinkFailure(scenario(i), errs[i])
		}
		if reports[i].FaultFree {
			res.FaultFree.add(reports[i])
		} else {
			res.Faulted.add(reports[i])
		}
	}
	return res, nil
}

// shrinkFailure minimizes a failing scenario and renders an actionable
// error: the original and shrunk scenarios, and a paste-ready Go test.
func shrinkFailure(sc workload.Scenario, firstErr error) error {
	shrunk, probes := workload.Shrink(sc, func(c workload.Scenario) bool {
		_, err := verifyRun(c)
		return err != nil
	}, verifyShrinkProbes)
	_, err := verifyRun(shrunk)
	if err == nil {
		// Shrinking is deterministic, so this only happens if the predicate
		// itself is broken; fall back to the original failure.
		shrunk, err = sc, firstErr
	}
	return fmt.Errorf("experiments: verify failed\n  scenario: %s\n  shrunk (%d probes): %s\n  failure: %v\n\n%s",
		sc, probes, shrunk, err, workload.ReproTest(shrunk, err))
}

// String renders the sweep in the repo's table style.
func (r *VerifyResult) String() string {
	t := &table{
		title: fmt.Sprintf("Model-based verification: %d randomized scenarios (seed %d)",
			r.N, r.Seed),
		header: []string{"regime", "scenarios", "intervals", "content", "refcount", "quarantine", "dup groups", "diff eq"},
	}
	row := func(name string, g VerifyRegime) {
		t.add(name, fmt.Sprint(g.Scenarios), fmt.Sprint(g.Intervals),
			fmt.Sprint(g.ContentChecks), fmt.Sprint(g.RefcountChecks),
			fmt.Sprint(g.QuarantineChecks), fmt.Sprint(g.CompletenessGroups),
			fmt.Sprint(g.DiffChecked))
	}
	row("fault-free", r.FaultFree)
	row("faulted", r.Faulted)
	t.notes = append(t.notes,
		"each scenario runs KSM and PageForge with all four invariants checked at every interval",
		fmt.Sprintf("differential KSM ≡ PageForge clean merge sets equal on %d/%d eligible scenarios (%d groups)",
			r.FaultFree.DiffChecked, r.FaultFree.DiffEligible, r.FaultFree.Groups),
		"faulted, pressured, and live-event runs skip the differential but keep invariants 1-3")
	return t.String()
}
