package experiments

import (
	"fmt"
	"math"

	"repro/internal/platform"
	"repro/internal/power"
)

// Table5Result is Table 5: PageForge operation timing and hardware cost.
type Table5Result struct {
	// ScanTableAvgCycles is the mean time to process all required entries
	// in the Scan Table (paper: 7,486 cycles); ScanTableStd is the standard
	// deviation across applications (paper: 1,296).
	ScanTableAvgCycles float64
	ScanTableStd       float64
	// OSCheckCycles is the OS polling period (paper: 12,000, an input).
	OSCheckCycles uint64
	// PerApp batch means feeding the cross-application deviation.
	PerAppBatchMean map[string]float64

	// Hardware cost at 22nm HP (paper: Scan table 0.010mm²/0.028W, ALU
	// 0.019mm²/0.009W, total 0.029mm²/0.037W).
	Power power.PageForgeBreakdown
	// Context: the server chip and in-order-core comparison points (§6.4.2).
	ServerChip  power.Estimate
	InOrderCore power.Estimate
}

// Table5 measures Scan Table processing time across applications and
// evaluates the analytical area/power model.
func Table5(s *Suite) (*Table5Result, error) {
	res := &Table5Result{
		OSCheckCycles:   s.Cfg.Driver.PollInterval,
		PerAppBatchMean: make(map[string]float64),
		Power:           power.PageForgeModule(power.Tech22HP),
		ServerChip:      power.ServerChip(power.Tech22HP, s.Cfg.Cores, 32<<20),
		InOrderCore:     power.InOrderCore(power.Tech22LOP),
	}
	var means []float64
	for _, app := range s.Apps {
		r, err := s.Result(platform.PageForge, app)
		if err != nil {
			return nil, err
		}
		res.PerAppBatchMean[app.Name] = r.PFBatchMean
		means = append(means, r.PFBatchMean)
	}
	sum := 0.0
	for _, m := range means {
		sum += m
	}
	res.ScanTableAvgCycles = sum / float64(len(means))
	varsum := 0.0
	for _, m := range means {
		d := m - res.ScanTableAvgCycles
		varsum += d * d
	}
	if len(means) > 1 {
		res.ScanTableStd = math.Sqrt(varsum / float64(len(means)-1))
	}
	return res, nil
}

// String renders the table.
func (r *Table5Result) String() string {
	t := &table{
		title:  "Table 5: PageForge design characteristics",
		header: []string{"Operation / Unit", "Value", "Paper"},
	}
	t.add("Scan table processing (avg cycles)", f1(r.ScanTableAvgCycles), "7486")
	t.add("  std across applications", f1(r.ScanTableStd), "1296")
	t.add("OS checking period (cycles)", f1(float64(r.OSCheckCycles)), "12000")
	t.add("Scan table area (mm^2)", f3(r.Power.ScanTable.AreaMM2), "0.010")
	t.add("Scan table power (W)", f3(r.Power.ScanTable.PowerW), "0.028")
	t.add("ALU area (mm^2)", f3(r.Power.ALU.AreaMM2), "0.019")
	t.add("ALU power (W)", f3(r.Power.ALU.PowerW), "0.009")
	t.add("Total PageForge area (mm^2)", f3(r.Power.Total.AreaMM2), "0.029")
	t.add("Total PageForge power (W)", f3(r.Power.Total.PowerW), "0.037")
	t.add("Server chip area (mm^2)", f1(r.ServerChip.AreaMM2), "138.6")
	t.add("Server chip TDP (W)", f1(r.ServerChip.PowerW), "164")
	t.add("In-order A9-class core area (mm^2)", f2(r.InOrderCore.AreaMM2), "0.77")
	t.add("In-order A9-class core TDP (W)", f2(r.InOrderCore.PowerW), "0.37")
	return t.String()
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
