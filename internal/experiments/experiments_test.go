package experiments

import (
	"strings"
	"testing"
)

// The fast suite trades scale for runtime; shape assertions use wide bands.
// The full-scale reproduction is exercised by the benchmark harness and
// recorded in EXPERIMENTS.md.

func fastSuiteOneApp(t *testing.T, names ...string) *Suite {
	t.Helper()
	s := NewFastSuite()
	if len(names) > 0 {
		var apps = s.Apps[:0]
		for _, a := range NewFastSuite().Apps {
			for _, n := range names {
				if a.Name == n {
					apps = append(apps, a)
				}
			}
		}
		s.Apps = apps
	}
	return s
}

func TestFigure7Shape(t *testing.T) {
	s := fastSuiteOneApp(t, "img_dnn", "silo")
	r, err := Figure7(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	if r.AvgSavings < 0.30 || r.AvgSavings > 0.65 {
		t.Fatalf("avg savings %.2f outside the paper-shaped band", r.AvgSavings)
	}
	for _, row := range r.Rows {
		if sum := row.Unmergeable + row.MergeableZero + row.MergeableNonZero; sum < 0.98 || sum > 1.02 {
			t.Fatalf("%s composition sums to %.3f", row.App, sum)
		}
		if row.MergedTotal >= 1 {
			t.Fatalf("%s merged footprint not reduced", row.App)
		}
		if row.VMCapacityMultiple < 1.5 {
			t.Fatalf("%s VM capacity multiple %.2f (paper: ~2x)", row.App, row.VMCapacityMultiple)
		}
		// Zero pages collapse to (at most) one frame per deployment.
		if row.MergedZeroFrames > 0.001 {
			t.Fatalf("%s zero frames fraction %.4f", row.App, row.MergedZeroFrames)
		}
	}
	out := r.String()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "img_dnn") {
		t.Fatal("rendering broken")
	}
}

func TestFigure8Shape(t *testing.T) {
	s := fastSuiteOneApp(t, "img_dnn")
	r, err := Figure8(s)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	// Keys must mostly match at steady state (pages mostly unchanged).
	if row.JHashMatch < 0.3 || row.ECCMatch < 0.3 {
		t.Fatalf("match rates implausibly low: %+v", row)
	}
	// ECC keys have more false positives than jhash (they sample less of
	// the written region), but the excess is small.
	if row.ExtraECCMatch < 0 {
		t.Fatalf("ECC keys matched less than jhash: %+v", row)
	}
	if row.ExtraECCMatch > 0.20 {
		t.Fatalf("ECC extra matches %.2f implausibly high", row.ExtraECCMatch)
	}
	if r.FootprintReduction != 0.75 {
		t.Fatalf("footprint reduction %.2f, want exactly 0.75 (256B vs 1KB)", r.FootprintReduction)
	}
	if !strings.Contains(r.String(), "Figure 8") {
		t.Fatal("rendering broken")
	}
}

func TestTable4Shape(t *testing.T) {
	s := fastSuiteOneApp(t, "silo")
	r, err := Table4(s)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if row.AvgKSMCyclesPct <= 0 || row.AvgKSMCyclesPct > 15 {
		t.Fatalf("avg KSM cycles %.1f%%", row.AvgKSMCyclesPct)
	}
	if row.MaxKSMCyclesPct <= row.AvgKSMCyclesPct {
		t.Fatal("max core share not above average")
	}
	if row.PageCompPct <= row.HashGenPct {
		t.Fatalf("compare %.0f%% not dominating hash %.0f%%", row.PageCompPct, row.HashGenPct)
	}
	if row.KSML3Miss <= row.BaselineL3Miss {
		t.Fatal("no L3 pollution under KSM")
	}
	if !strings.Contains(r.String(), "Table 4") {
		t.Fatal("rendering broken")
	}
}

func TestLatencyShape(t *testing.T) {
	s := fastSuiteOneApp(t, "silo", "moses")
	r, err := Latency(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgKSMMean <= r.AvgPageForgeMean {
		t.Fatalf("KSM mean %.2f not above PageForge %.2f", r.AvgKSMMean, r.AvgPageForgeMean)
	}
	if r.AvgPageForgeMean < 1.0 || r.AvgPageForgeMean > 1.35 {
		t.Fatalf("PageForge mean overhead %.2f outside band", r.AvgPageForgeMean)
	}
	if r.AvgKSMP95 <= r.AvgPageForgeP95 {
		t.Fatal("tail ordering violated")
	}
	// Tail inflation under KSM tracks the mean inflation.
	if r.AvgKSMP95 < 1.05 || r.AvgKSMP95 < 0.75*r.AvgKSMMean {
		t.Fatalf("KSM tail %.2f too low vs mean %.2f", r.AvgKSMP95, r.AvgKSMMean)
	}
	if !strings.Contains(r.Figure9(), "Figure 9") || !strings.Contains(r.Figure10(), "Figure 10") {
		t.Fatal("rendering broken")
	}
}

func TestFigure11Shape(t *testing.T) {
	s := fastSuiteOneApp(t, "img_dnn")
	r, err := Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	row := r.Rows[0]
	if !(row.BaselineGBps < row.KSMGBps) {
		t.Fatalf("KSM %.2f not above baseline %.2f", row.KSMGBps, row.BaselineGBps)
	}
	if row.PFDedupGBps <= 0 || row.KSMDedupGBps <= 0 {
		t.Fatal("dedup bandwidth missing")
	}
	if !strings.Contains(r.String(), "Figure 11") {
		t.Fatal("rendering broken")
	}
}

func TestTable5Shape(t *testing.T) {
	s := fastSuiteOneApp(t, "img_dnn", "silo")
	r, err := Table5(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.ScanTableAvgCycles <= 0 {
		t.Fatal("no batch timing")
	}
	// Batches must be processed well within one OS polling period on
	// average (Table 5: "typically the table has been fully processed by
	// the time the OS checks").
	if r.ScanTableAvgCycles > float64(r.OSCheckCycles)*1.5 {
		t.Fatalf("batch %.0f cycles vs poll %d", r.ScanTableAvgCycles, r.OSCheckCycles)
	}
	if r.Power.Total.AreaMM2 > 0.05 || r.Power.Total.PowerW > 0.05 {
		t.Fatalf("hardware cost out of band: %+v", r.Power.Total)
	}
	if !strings.Contains(r.String(), "Table 5") {
		t.Fatal("rendering broken")
	}
}

func TestSuiteCachesResults(t *testing.T) {
	s := fastSuiteOneApp(t, "silo")
	a, err := s.Result(0, s.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Result(0, s.Apps[0])
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("results not cached")
	}
}

func TestSatoriShape(t *testing.T) {
	s := NewFastSuite()
	r, err := Satori(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	byKey := map[string]SatoriRow{}
	for _, row := range r.Rows {
		byKey[row.Engine+string(rune('0'+row.PagesToScan/1600))] = row
		if row.CapturedPct < 0 || row.CapturedPct > 100 {
			t.Fatalf("capture out of range: %+v", row)
		}
	}
	// More aggressive scanning captures more (both engines).
	for _, eng := range []string{"ksm", "pageforge"} {
		lo, hi := byKey[eng+"0"], byKey[eng+"4"]
		if hi.CapturedPct <= lo.CapturedPct {
			t.Fatalf("%s: aggressive capture %.1f <= default %.1f",
				eng, hi.CapturedPct, lo.CapturedPct)
		}
	}
	// The claim: at high aggressiveness, KSM's core cost explodes while
	// PageForge's stays marginal.
	ksmHi, pfHi := byKey["ksm4"], byKey["pageforge4"]
	if ksmHi.CoreBusyPct < 50 {
		t.Fatalf("aggressive KSM core cost %.1f%% implausibly low", ksmHi.CoreBusyPct)
	}
	if pfHi.CoreBusyPct > 10 {
		t.Fatalf("aggressive PageForge core cost %.1f%% too high", pfHi.CoreBusyPct)
	}
	if !strings.Contains(r.String(), "Satori") {
		t.Fatal("rendering broken")
	}
}

func TestTimelineShape(t *testing.T) {
	s := NewFastSuite()
	app := s.Apps[0]
	r, err := Timeline(s, app, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SavingsKSM) != 30 || len(r.SavingsPF) != 30 {
		t.Fatalf("series lengths %d/%d", len(r.SavingsKSM), len(r.SavingsPF))
	}
	// Monotone non-decreasing ramps reaching real savings.
	for i := 1; i < 30; i++ {
		if r.SavingsKSM[i]+0.02 < r.SavingsKSM[i-1] || r.SavingsPF[i]+0.02 < r.SavingsPF[i-1] {
			t.Fatalf("non-monotone ramp at %d", i)
		}
	}
	if r.SavingsKSM[29] < 0.3 {
		t.Fatalf("KSM final savings %.2f", r.SavingsKSM[29])
	}
	if r.SavingsPF[29] < 0.2 {
		t.Fatalf("PF final savings %.2f", r.SavingsPF[29])
	}
	// The cost asymmetry.
	if r.PFCorePct > r.KSMCorePct/5 {
		t.Fatalf("PF core %.1f%% not far below KSM %.1f%%", r.PFCorePct, r.KSMCorePct)
	}
	if !strings.Contains(r.String(), "Convergence timeline") {
		t.Fatal("rendering broken")
	}
}
