// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): Figure 7 (memory savings), Figure 8 (hash-key
// accuracy), Table 4 (KSM characterization), Figures 9 and 10 (mean and
// tail latency), Figure 11 (memory bandwidth), and Table 5 (PageForge
// design characteristics). Each experiment returns structured rows plus a
// paper-style text rendering.
package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/platform"
	"repro/internal/tailbench"
)

// Suite shares the expensive (mode, application) simulation runs across
// experiments: Figures 9-11 and Tables 4-5 all consume the same runs.
//
// Result is safe for concurrent use from any number of goroutines: the
// cache is singleflight-style, so two experiments requesting the same
// (mode, app) run share one execution instead of duplicating or racing
// it. RunAll fans the whole matrix out across a bounded worker pool.
type Suite struct {
	Cfg platform.Config
	// Apps are the workloads to evaluate (default: all five TailBench
	// applications of Table 3).
	Apps []tailbench.Profile
	// MinQueries controls queueing-simulation quality per VM.
	MinQueries int
	// Parallelism bounds how many platform runs RunAll executes
	// concurrently (0 means GOMAXPROCS). Each run is hermetic — it owns
	// its image, cache hierarchy, DRAM model, and RNG streams — so
	// parallel execution is bit-identical to sequential for the same
	// seeds.
	Parallelism int
	// Reporter, when non-nil, observes run start/finish events. It must
	// be safe for concurrent use (ProgressReporter is).
	Reporter Reporter

	mu      sync.Mutex
	results map[string]*runEntry

	// runFn is the simulation entry point; tests substitute it to observe
	// scheduling without paying for real runs.
	runFn func(platform.Mode, tailbench.Profile, platform.Config) (*platform.Result, error)
}

// runEntry is one singleflight cache slot: the first goroutine to arrive
// executes the run inside once; every later goroutine for the same key
// blocks on the same once and shares the outcome.
type runEntry struct {
	once sync.Once
	res  *platform.Result
	err  error
}

// NewSuite builds a suite over the paper's default setup.
func NewSuite() *Suite {
	return &Suite{
		Cfg:        platform.DefaultConfig(),
		Apps:       tailbench.Profiles(),
		MinQueries: 2000,
		results:    make(map[string]*runEntry),
		runFn:      platform.Run,
	}
}

// NewFastSuite is a scaled-down suite for tests and quick demos.
func NewFastSuite() *Suite {
	s := NewSuite()
	s.Cfg.ConvergePasses = 10
	s.Cfg.MeasureIntervals = 10
	s.Cfg.PagesToScan = 200
	s.MinQueries = 400
	for i := range s.Apps {
		s.Apps[i].PagesPerVM = 300
	}
	return s
}

// Result returns the cached simulation result for (mode, app), running it
// on first use. Concurrent callers for the same key share one execution.
func (s *Suite) Result(mode platform.Mode, app tailbench.Profile) (*platform.Result, error) {
	key := fmt.Sprintf("%s/%s", mode, app.Name)
	s.mu.Lock()
	if s.results == nil {
		s.results = make(map[string]*runEntry)
	}
	if s.runFn == nil {
		s.runFn = platform.Run
	}
	e, ok := s.results[key]
	if !ok {
		e = &runEntry{}
		s.results[key] = e
	}
	s.mu.Unlock()

	e.once.Do(func() {
		rep := s.Reporter
		if rep != nil {
			rep.RunStarted(mode, app.Name)
		}
		start := time.Now()
		r, err := s.runFn(mode, app, s.Cfg)
		if err != nil {
			e.err = fmt.Errorf("experiments: %s on %s: %w", mode, app.Name, err)
		} else {
			e.res = r
		}
		if rep != nil {
			rep.RunFinished(mode, app.Name, time.Since(start), e.err)
		}
	})
	return e.res, e.err
}

// --- rendering helpers ----------------------------------------------------

type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	// A row may carry more cells than the header; size the widths to the
	// widest row so rendering never indexes out of range.
	ncols := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	dashes := make([]string, len(widths))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
