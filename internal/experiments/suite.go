// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6): Figure 7 (memory savings), Figure 8 (hash-key
// accuracy), Table 4 (KSM characterization), Figures 9 and 10 (mean and
// tail latency), Figure 11 (memory bandwidth), and Table 5 (PageForge
// design characteristics). Each experiment returns structured rows plus a
// paper-style text rendering.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/platform"
	"repro/internal/tailbench"
)

// Suite shares the expensive (mode, application) simulation runs across
// experiments: Figures 9-11 and Tables 4-5 all consume the same runs.
type Suite struct {
	Cfg platform.Config
	// Apps are the workloads to evaluate (default: all five TailBench
	// applications of Table 3).
	Apps []tailbench.Profile
	// MinQueries controls queueing-simulation quality per VM.
	MinQueries int

	results map[string]*platform.Result
}

// NewSuite builds a suite over the paper's default setup.
func NewSuite() *Suite {
	return &Suite{
		Cfg:        platform.DefaultConfig(),
		Apps:       tailbench.Profiles(),
		MinQueries: 2000,
		results:    make(map[string]*platform.Result),
	}
}

// NewFastSuite is a scaled-down suite for tests and quick demos.
func NewFastSuite() *Suite {
	s := NewSuite()
	s.Cfg.ConvergePasses = 10
	s.Cfg.MeasureIntervals = 10
	s.Cfg.PagesToScan = 200
	s.MinQueries = 400
	for i := range s.Apps {
		s.Apps[i].PagesPerVM = 300
	}
	return s
}

// Result returns the cached simulation result for (mode, app), running it
// on first use.
func (s *Suite) Result(mode platform.Mode, app tailbench.Profile) (*platform.Result, error) {
	key := fmt.Sprintf("%s/%s", mode, app.Name)
	if r, ok := s.results[key]; ok {
		return r, nil
	}
	r, err := platform.Run(mode, app, s.Cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", mode, app.Name, err)
	}
	s.results[key] = r
	return r, nil
}

// --- rendering helpers ----------------------------------------------------

type table struct {
	title  string
	header []string
	rows   [][]string
	notes  []string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.title)
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	dashes := make([]string, len(widths))
	for i, w := range widths {
		dashes[i] = strings.Repeat("-", w)
	}
	line(dashes)
	for _, r := range t.rows {
		line(r)
	}
	for _, n := range t.notes {
		fmt.Fprintf(&b, "  %s\n", n)
	}
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", v*100)
}
