package experiments

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/tailbench"
)

// The stream experiment (a service-runtime extension beyond the paper's
// evaluation): batch ≡ streaming equivalence over the tick-driven runtime.
// Each world shape runs twice — once through batch platform.Run with a
// config-scheduled live-event stream (VM spawn, VM kill, phase flip, host
// crash), and once through a manually stepped platform.Runtime with the
// same events Injected live just before their passes. The headline verdict
// is bit-identity: Result, per-pass series points, and provenance-ledger
// event streams must all be deeply equal, so a long-running streaming
// deployment of the simulator produces exactly the numbers the batch
// experiments report.

// StreamRow is one world shape's equivalence verdict.
type StreamRow struct {
	// World names the shape; Mode is the dedup engine under test.
	World string
	Mode  string

	// Events is the live-event schedule length (crash events included);
	// Ticks the total runtime steps (convergence passes + work intervals).
	Events int
	Ticks  int

	// ConvergedPasses, SavingsPct, SeriesPoints, and LedgerEvents summarize
	// the run both sides produced.
	ConvergedPasses int
	SavingsPct      float64
	SeriesPoints    int
	LedgerEvents    int

	// Identical is the tentpole verdict: Result, series, and ledger all
	// deeply equal between the batch and streamed runs.
	Identical bool
}

// StreamResult is the world sweep.
type StreamResult struct {
	Rows []StreamRow
}

// streamSchedule is the base live-event script: a spawn, a kill, and a
// phase flip, front-loaded so every event lands before convergence.
func streamSchedule() []platform.Event {
	return []platform.Event{
		{Pass: 1, Kind: platform.EvVMSpawn},
		{Pass: 2, Kind: platform.EvVMKill, VM: 1},
		{Pass: 3, Kind: platform.EvPhaseChange, Frac: 0.4},
	}
}

// streamPoint runs one world both ways and cross-checks. A divergence is an
// error, not a row: equivalence is a correctness property of the runtime,
// not a measured quantity.
func streamPoint(seed uint64, world string, mode platform.Mode,
	mutate func(*platform.Config), sched []platform.Event) (StreamRow, error) {

	app, base := crashWorld()
	base.Seed = seed
	if mutate != nil {
		mutate(&base)
	}

	batchCfg := base
	batchCfg.Events = append([]platform.Event(nil), sched...)
	batchCfg.Ledger = obs.NewLedger(0)
	batchCfg.Series = obs.NewSeries(0)
	batch, err := platform.Run(mode, app, batchCfg)
	if err != nil {
		return StreamRow{}, fmt.Errorf("experiments: stream world %s (batch): %w", world, err)
	}

	streamCfg := base
	streamCfg.Ledger = obs.NewLedger(0)
	streamCfg.Series = obs.NewSeries(0)
	rt := platform.NewRuntime(mode, app, streamCfg)
	if err := rt.Start(); err != nil {
		return StreamRow{}, fmt.Errorf("experiments: stream world %s: %w", world, err)
	}
	ticks, i := 0, 0
	for {
		for i < len(sched) && !rt.Done() && sched[i].Pass <= rt.Pass() {
			if err := rt.Inject(sched[i]); err != nil {
				return StreamRow{}, fmt.Errorf("experiments: stream world %s: inject %v at pass %d: %w",
					world, sched[i].Kind, rt.Pass(), err)
			}
			i++
		}
		done, err := rt.Step()
		if err != nil {
			return StreamRow{}, fmt.Errorf("experiments: stream world %s (streamed): %w", world, err)
		}
		ticks++
		if done {
			break
		}
	}
	if i < len(sched) {
		return StreamRow{}, fmt.Errorf("experiments: stream world %s: converged before event %d (%v at pass %d) could be injected",
			world, i, sched[i].Kind, sched[i].Pass)
	}
	stream := rt.Result()

	name := mode.String() + "/" + app.Name
	bp := batchCfg.Series.Track(name).Points()
	sp := streamCfg.Series.Track(name).Points()
	identical := reflect.DeepEqual(batch, stream) &&
		reflect.DeepEqual(batchCfg.Ledger.Events(), streamCfg.Ledger.Events()) &&
		reflect.DeepEqual(bp, sp)
	if !identical {
		return StreamRow{}, fmt.Errorf("experiments: stream world %s: streamed run diverged from batch run", world)
	}

	return StreamRow{
		World:           world,
		Mode:            mode.String(),
		Events:          len(sched),
		Ticks:           ticks,
		ConvergedPasses: stream.ConvergedPasses,
		SavingsPct:      stream.Footprint.Savings() * 100,
		SeriesPoints:    len(sp),
		LedgerEvents:    len(streamCfg.Ledger.Events()),
		Identical:       identical,
	}, nil
}

// Stream runs the batch ≡ streaming equivalence sweep over every world
// shape: both engines, the sharded index, and a crash-with-recovery world
// whose host crash is itself delivered as a live event.
func Stream(s *Suite) (*StreamResult, error) {
	crashSched := []platform.Event{
		{Pass: 2, Kind: platform.EvVMKill, VM: 1},
		{Pass: 3, Kind: platform.EvVMSpawn},
		{Pass: 4, Kind: platform.EvCrash},
	}
	worlds := []struct {
		name   string
		mode   platform.Mode
		mutate func(*platform.Config)
		sched  []platform.Event
	}{
		{"ksm", platform.KSM, nil, streamSchedule()},
		{"ksm-sharded", platform.KSM, func(cfg *platform.Config) {
			cfg.ShardBits = 2
			cfg.ShardWorkers = 3
		}, streamSchedule()},
		{"pageforge", platform.PageForge, nil, streamSchedule()},
		{"pageforge-crash", platform.PageForge, func(cfg *platform.Config) {
			cfg.CheckpointEvery = 2
		}, crashSched},
	}
	res := &StreamResult{}
	for _, w := range worlds {
		row, err := streamPoint(s.Cfg.Seed, w.name, w.mode, w.mutate, w.sched)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// StreamBenchResult is the bench artifact's stream section: steady-state
// tick throughput of the streaming runtime against the batch driver on the
// same world — the runtime must cost nothing over batch Run, which is the
// machine-portable quantity perfcheck gates on (plus the bit-identity of
// the two results).
type StreamBenchResult struct {
	ElapsedMs        float64 `json:"elapsed_ms"`
	Ticks            int     `json:"ticks"`
	TicksPerSec      float64 `json:"ticks_per_sec"`
	BatchTicksPerSec float64 `json:"batch_ticks_per_sec"`
	// Overhead is streamed wall-clock over batch wall-clock minus one
	// (min-of-reps on both sides).
	Overhead  float64 `json:"overhead"`
	Identical bool    `json:"identical"`
}

// streamBenchWorld is a steady-state world: more passes and intervals than
// the equivalence sweep so per-tick cost dominates setup.
func streamBenchWorld(seed uint64) (tailbench.Profile, platform.Config) {
	app, cfg := crashWorld()
	cfg.Seed = seed
	cfg.ConvergePasses = 12
	cfg.MeasureIntervals = 4
	return app, cfg
}

// RunStreamBench times the tick-driven runtime against batch Run on an
// identical world, min-of-reps on both sides to shed scheduler noise.
func RunStreamBench(seed uint64) (StreamBenchResult, error) {
	const reps = 3
	app, cfg := streamBenchWorld(seed)

	var want *platform.Result
	batchBest := time.Duration(0)
	for r := 0; r < reps; r++ {
		start := time.Now()
		res, err := platform.Run(platform.PageForge, app, cfg)
		if err != nil {
			return StreamBenchResult{}, fmt.Errorf("experiments: stream bench (batch): %w", err)
		}
		if el := time.Since(start); batchBest == 0 || el < batchBest {
			batchBest = el
		}
		want = res
	}

	var got *platform.Result
	ticks := 0
	streamBest := time.Duration(0)
	for r := 0; r < reps; r++ {
		rt := platform.NewRuntime(platform.PageForge, app, cfg)
		start := time.Now()
		if err := rt.Start(); err != nil {
			return StreamBenchResult{}, fmt.Errorf("experiments: stream bench: %w", err)
		}
		n := 0
		for {
			done, err := rt.Step()
			if err != nil {
				return StreamBenchResult{}, fmt.Errorf("experiments: stream bench (streamed): %w", err)
			}
			n++
			if done {
				break
			}
		}
		if el := time.Since(start); streamBest == 0 || el < streamBest {
			streamBest = el
		}
		got, ticks = rt.Result(), n
	}

	return StreamBenchResult{
		ElapsedMs:        float64(streamBest.Microseconds()) / 1e3,
		Ticks:            ticks,
		TicksPerSec:      float64(ticks) / streamBest.Seconds(),
		BatchTicksPerSec: float64(ticks) / batchBest.Seconds(),
		Overhead:         streamBest.Seconds()/batchBest.Seconds() - 1,
		Identical:        reflect.DeepEqual(want, got),
	}, nil
}

// String renders the sweep as a table.
func (r *StreamResult) String() string {
	t := &table{
		title: "Stream: batch Run vs live-event streamed Runtime, per world shape",
		header: []string{"world", "mode", "events", "ticks", "passes",
			"savings", "series", "ledger", "identical"},
	}
	for _, row := range r.Rows {
		t.add(
			row.World,
			row.Mode,
			fmt.Sprintf("%d", row.Events),
			fmt.Sprintf("%d", row.Ticks),
			fmt.Sprintf("%d", row.ConvergedPasses),
			f1(row.SavingsPct)+"%",
			fmt.Sprintf("%d", row.SeriesPoints),
			fmt.Sprintf("%d", row.LedgerEvents),
			fmt.Sprintf("%v", row.Identical),
		)
	}
	t.notes = append(t.notes,
		"each world runs twice: batch Run with a config-scheduled event stream",
		"(spawn/kill/phase-flip, and a host crash in the crash world), and a",
		"manually stepped Runtime with the same events Injected live. 'identical'",
		"= Result, per-pass series points, and provenance-ledger event streams",
		"are all deeply equal — streaming deployments reproduce batch numbers.")
	return t.String()
}
