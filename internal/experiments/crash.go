package experiments

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/platform"
	"repro/internal/tailbench"
)

// The crash experiment (a robustness extension beyond the paper's
// evaluation): a crash-point x checkpoint-interval sweep over the
// checkpoint/restore machinery. Each point kills the host at a drawn
// convergence pass, restores the newest checkpoint, verifies the recovered
// dedup index (hint-then-verify plus the refcount ledger), and replays the
// lost passes — with the full invariant checker attached at every
// observation point of the crashed run. The headline claim is bit-identity:
// after zeroing the Crash report, the crashed-and-recovered Result must be
// deeply equal to an uninterrupted same-seed run's. The sweep's measured
// trade-off is the classic one: sparser checkpoints cost less capture work
// but lose more passes per crash (re-merge traffic, reconvergence time).

// CrashRow is one (crash pass, checkpoint interval) data point.
type CrashRow struct {
	// CrashPass is the convergence pass the host dies at; Every the
	// checkpoint cadence in passes (0 = boot checkpoint only).
	CrashPass int
	Every     int

	Crashes     int
	Checkpoints int
	Restores    int

	// Recovery cost: passes replayed, merges destroyed and re-done, and the
	// out-of-band recovery latency (restore + backoff + audit cost model).
	ReplayedPasses int
	RemergedPages  uint64
	RecoveryCycles uint64

	// Recovery-audit work on the restored index.
	StableVerified int
	BytesVerified  uint64

	// ConvergedPasses and SavingsPct summarize the run the recovery
	// resumed; Identical is the tentpole bit-identity verdict against the
	// uninterrupted run.
	ConvergedPasses int
	SavingsPct      float64
	Identical       bool

	// Oracle work: observation points audited and page-content comparisons
	// performed by the invariant checker during the crashed run.
	Intervals     int
	ContentChecks int
}

// CrashResult is the sweep.
type CrashResult struct {
	Rows []CrashRow
}

// DefaultCrashPasses spans the convergence window: the early-exit gate
// needs at least three passes (p >= 2), and the pass boundary fires the
// crash plan before the convergence verdict, so every point up to pass 2
// is guaranteed to crash on any world. (A pass scheduled beyond convergence
// would simply never fire and degenerate to a pure checkpointing run.)
func DefaultCrashPasses() []int { return []int{0, 1, 2} }

// DefaultCheckpointIntervals spans boot-only through every-pass
// checkpointing — the sparser the cadence, the more passes a crash loses.
func DefaultCheckpointIntervals() []int { return []int{0, 1, 2} }

// crashWorld is the crash deployment: a compact merge-rich fleet with churn
// (volatile pages CoW-break between passes), so a crash genuinely destroys
// merge work that the replay must re-do.
func crashWorld() (tailbench.Profile, platform.Config) {
	app := *tailbench.ProfileByName("silo")
	app.PagesPerVM = 100
	app.VolatileFrac = 0.3
	cfg := platform.DefaultConfig()
	cfg.VMs = 4
	cfg.Cores = 4
	cfg.ConvergePasses = 8
	cfg.MeasureIntervals = 2
	return app, cfg
}

// crashPoint runs one grid point twice: the crashed run audited by the
// invariant checker (which rides along through the restore via its
// CrashObserver hooks), and an uninterrupted bare run. The two Results
// must be deeply equal once the Crash report is zeroed.
func crashPoint(seed uint64, crashPass, every int) (CrashRow, error) {
	app, cfg := crashWorld()
	cfg.Seed = seed
	cfg.CheckpointEvery = every
	cfg.Crash = faults.CrashConfig{Passes: []int{crashPass}}

	ck := &check.Checker{}
	cfg.Verifier = ck
	res, err := platform.Run(platform.PageForge, app, cfg)
	if err != nil {
		return CrashRow{}, fmt.Errorf("experiments: crash pass %d every %d: %w", crashPass, every, err)
	}

	plain := cfg
	plain.Verifier = nil
	plain.Crash = faults.CrashConfig{}
	plain.CheckpointEvery = 0
	want, err := platform.Run(platform.PageForge, app, plain)
	if err != nil {
		return CrashRow{}, fmt.Errorf("experiments: crash pass %d every %d (uninterrupted): %w", crashPass, every, err)
	}

	rep := res.Crash
	a, b := *res, *want
	a.Crash, b.Crash = platform.CrashReport{}, platform.CrashReport{}
	identical := reflect.DeepEqual(&a, &b)
	if !identical {
		return CrashRow{}, fmt.Errorf(
			"experiments: crash pass %d every %d: recovered run diverged from uninterrupted run",
			crashPass, every)
	}

	return CrashRow{
		CrashPass:       crashPass,
		Every:           every,
		Crashes:         rep.Crashes,
		Checkpoints:     rep.Checkpoints,
		Restores:        rep.Restores,
		ReplayedPasses:  rep.ReplayedPasses,
		RemergedPages:   rep.RemergedPages,
		RecoveryCycles:  rep.RecoveryCycles,
		StableVerified:  rep.StableVerified,
		BytesVerified:   rep.BytesVerified,
		ConvergedPasses: res.ConvergedPasses,
		SavingsPct:      res.Footprint.Savings() * 100,
		Identical:       identical,
		Intervals:       ck.Counters.Intervals,
		ContentChecks:   ck.Counters.ContentChecks,
	}, nil
}

// Crash sweeps crash point x checkpoint interval. Points are independent
// hermetic worlds sharing the suite seed.
func Crash(s *Suite, crashPasses, intervals []int) (*CrashResult, error) {
	if len(crashPasses) == 0 {
		crashPasses = DefaultCrashPasses()
	}
	if len(intervals) == 0 {
		intervals = DefaultCheckpointIntervals()
	}
	res := &CrashResult{}
	for _, every := range intervals {
		if every < 0 {
			return nil, fmt.Errorf("experiments: checkpoint interval %d below 0", every)
		}
		for _, cp := range crashPasses {
			if cp < 0 {
				return nil, fmt.Errorf("experiments: crash pass %d below 0", cp)
			}
			row, err := crashPoint(s.Cfg.Seed, cp, every)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// CrashBenchResult is the bench artifact's crash_recovery section: the
// wall-clock cost of one audited crash-recovery point (including its
// identity cross-check against the uninterrupted run) plus the simulated
// recovery economics.
type CrashBenchResult struct {
	ElapsedMs      float64 `json:"elapsed_ms"`
	Crashes        int     `json:"crashes"`
	Checkpoints    int     `json:"checkpoints"`
	RecoveryCycles uint64  `json:"recovery_cycles"`
	ReplayedPasses int     `json:"replayed_passes"`
	RemergedPages  uint64  `json:"remerged_pages"`
	Identical      bool    `json:"identical"`
}

// RunCrashBench times one mid-convergence crash-recovery point for the
// bench artifact.
func RunCrashBench(seed uint64) (CrashBenchResult, error) {
	start := time.Now()
	row, err := crashPoint(seed, 2, 2)
	if err != nil {
		return CrashBenchResult{}, err
	}
	return CrashBenchResult{
		ElapsedMs:      float64(time.Since(start).Microseconds()) / 1e3,
		Crashes:        row.Crashes,
		Checkpoints:    row.Checkpoints,
		RecoveryCycles: row.RecoveryCycles,
		ReplayedPasses: row.ReplayedPasses,
		RemergedPages:  row.RemergedPages,
		Identical:      row.Identical,
	}, nil
}

// String renders the sweep as a table.
func (r *CrashResult) String() string {
	t := &table{
		title: "Crash: checkpoint/restore recovery vs crash point and checkpoint interval",
		header: []string{"crash@", "every", "crashes", "ckpts", "restores", "replayed",
			"remerged", "rec-cycles", "verified", "savings", "identical"},
	}
	for _, row := range r.Rows {
		every := fmt.Sprintf("%d", row.Every)
		if row.Every == 0 {
			every = "boot"
		}
		t.add(
			fmt.Sprintf("%d", row.CrashPass),
			every,
			fmt.Sprintf("%d", row.Crashes),
			fmt.Sprintf("%d", row.Checkpoints),
			fmt.Sprintf("%d", row.Restores),
			fmt.Sprintf("%d", row.ReplayedPasses),
			fmt.Sprintf("%d", row.RemergedPages),
			fmt.Sprintf("%d", row.RecoveryCycles),
			fmt.Sprintf("%d", row.StableVerified),
			f1(row.SavingsPct)+"%",
			fmt.Sprintf("%v", row.Identical),
		)
	}
	t.notes = append(t.notes,
		"each point crashes the host at the given convergence pass, restores the",
		"newest checkpoint, verifies the recovered index (hint-then-verify + refcount",
		"ledger), and replays; 'identical' = the recovered run's Result is deeply",
		"equal to an uninterrupted same-seed run's (the Crash report aside).",
		"sparser checkpoints replay more passes and re-merge more pages per crash.")
	return t.String()
}
