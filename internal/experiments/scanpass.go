package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/hash"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/tailbench"
)

// AllocHasher reproduces the pre-optimization hash path: it converts the
// page prefix to a fresh []uint32 per call before hashing, exactly as
// PageHash used to. Keys are bit-identical to ksm.JHasher, so a legacy run
// performs the same algorithmic work as an optimized one — only the
// implementation cost differs. The bench suite uses it as the committed
// baseline; it has no place on the hot path.
type AllocHasher struct{}

// PageKey hashes the first 1KB via the allocating words conversion.
func (AllocHasher) PageKey(page []byte) uint32 {
	words := make([]uint32, hash.KSMDigestBytes/4)
	for i := range words {
		words[i] = binary.LittleEndian.Uint32(page[4*i:])
	}
	return hash.JHash2(words, 17)
}

// BytesRead reports the hashed prefix length (matches ksm.JHasher).
func (AllocHasher) BytesRead() int { return hash.KSMDigestBytes }

// ScanPassConfig shapes the scan-throughput measurement. The zero value is
// not useful; use DefaultScanPassConfig.
type ScanPassConfig struct {
	VMs        int
	PagesPerVM int
	Passes     int // full passes per timed run
	Repeats    int // timed runs per mode; the best (min time) is kept
	ShardBits  int // optimized mode: 2^bits content shards
	Workers    int // optimized mode: ScanPass worker count
	Seed       uint64
	Profile    tailbench.Profile // content shape; PagesPerVM is overridden
}

// DefaultScanPassConfig is the committed-baseline configuration: a
// dup-heavy deployment (deep trees, long common prefixes) where compare
// and hash dominate — the workload the hot-path optimizations target.
func DefaultScanPassConfig() ScanPassConfig {
	return ScanPassConfig{
		VMs:        8,
		PagesPerVM: 400,
		Passes:     6,
		Repeats:    3,
		ShardBits:  4,
		Workers:    4,
		Seed:       1,
		Profile: tailbench.Profile{
			Name:         "scanpass-bench",
			DupFrac:      0.55,
			DupCopies:    4,
			ZeroFrac:     0.05,
			VolatileFrac: 0.10,
		},
	}
}

// ScanPassResult is the benchmark's machine-readable outcome.
type ScanPassResult struct {
	LegacyPagesPerSec    float64 `json:"legacy_pages_per_sec"`
	OptimizedPagesPerSec float64 `json:"optimized_pages_per_sec"`
	Speedup              float64 `json:"speedup"`
	CandidatesPerRun     int     `json:"candidates_per_run"`
	LegacyMerges         uint64  `json:"legacy_merges"`
	OptimizedMerges      uint64  `json:"optimized_merges"`
	ShardBits            int     `json:"shard_bits"`
	Workers              int     `json:"workers"`
	Passes               int     `json:"passes"`
}

// scanPassMode runs cfg.Passes full scan passes over a freshly built image
// and reports (candidates scanned, merges, elapsed). legacy selects the
// pre-optimization implementations: byte-wise compare, allocating hash,
// single shard, sequential loop.
func scanPassMode(cfg ScanPassConfig, legacy bool) (int, uint64, time.Duration, error) {
	prof := cfg.Profile
	prof.PagesPerVM = cfg.PagesPerVM
	img, err := tailbench.BuildImage(prof, cfg.VMs, cfg.VMs*cfg.PagesPerVM*2, cfg.Seed)
	if err != nil {
		return 0, 0, 0, err
	}
	var s *ksm.Scanner
	if legacy {
		img.HV.Phys.SetCompareMode(mem.CompareByte)
		s = ksm.NewScanner(ksm.NewAlgorithmSharded(img.HV, AllocHasher{}, 0), ksm.DefaultCosts())
	} else {
		s = ksm.NewScanner(ksm.NewAlgorithmSharded(img.HV, ksm.JHasher{}, cfg.ShardBits), ksm.DefaultCosts())
	}
	candidates := 0
	start := time.Now()
	for p := 0; p < cfg.Passes; p++ {
		if legacy {
			pages := s.Alg.MergeablePages()
			for i := 0; i < pages; i++ {
				s.ScanOne()
			}
			candidates += pages
		} else {
			res := s.ScanPass(cfg.Workers)
			candidates += res.Scanned
		}
		img.ChurnVolatile()
	}
	elapsed := time.Since(start)
	return candidates, img.HV.Merges, elapsed, nil
}

// RunScanPassBench measures legacy versus optimized scan throughput under
// cfg. Both modes do identical algorithmic work (same image, same merge
// decisions); the measured ratio isolates the implementation: word-at-a-time
// early-exit compare, allocation-free hashing, arena-backed pages, and the
// sharded pass. Each mode runs cfg.Repeats times and keeps its best time,
// which is the standard defense against scheduler noise on a shared box.
func RunScanPassBench(cfg ScanPassConfig) (ScanPassResult, error) {
	if cfg.Repeats < 1 {
		cfg.Repeats = 1
	}
	best := func(legacy bool) (int, uint64, time.Duration, error) {
		var (
			cand    int
			merges  uint64
			minTime time.Duration
		)
		for r := 0; r < cfg.Repeats; r++ {
			c, m, d, err := scanPassMode(cfg, legacy)
			if err != nil {
				return 0, 0, 0, err
			}
			if r == 0 || d < minTime {
				minTime = d
			}
			cand, merges = c, m
		}
		return cand, merges, minTime, nil
	}

	lCand, lMerges, lTime, err := best(true)
	if err != nil {
		return ScanPassResult{}, err
	}
	oCand, oMerges, oTime, err := best(false)
	if err != nil {
		return ScanPassResult{}, err
	}
	if lCand != oCand {
		return ScanPassResult{}, fmt.Errorf("scanpass: candidate counts diverged (legacy %d, optimized %d)", lCand, oCand)
	}
	if lMerges != oMerges {
		return ScanPassResult{}, fmt.Errorf("scanpass: merge counts diverged (legacy %d, optimized %d) — modes are not doing identical work", lMerges, oMerges)
	}
	res := ScanPassResult{
		LegacyPagesPerSec:    float64(lCand) / lTime.Seconds(),
		OptimizedPagesPerSec: float64(oCand) / oTime.Seconds(),
		CandidatesPerRun:     lCand,
		LegacyMerges:         lMerges,
		OptimizedMerges:      oMerges,
		ShardBits:            cfg.ShardBits,
		Workers:              cfg.Workers,
		Passes:               cfg.Passes,
	}
	res.Speedup = res.OptimizedPagesPerSec / res.LegacyPagesPerSec
	return res, nil
}
