package experiments

import (
	"strings"
	"testing"
)

// TestPressureSweepShape runs the harshest two points and checks the sweep
// tells the resilience story: the storm stalls, the balloon reclaims, the
// ladder degrades and recovers, and the oracle audited the whole run.
// (pressurePoint itself enforces the audited ≡ bare determinism.)
func TestPressureSweepShape(t *testing.T) {
	r, err := Pressure(NewFastSuite(), []float64{1.5, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The +1 frame in arena sizing rounds the realized ratio a hair
		// below the request; the arena floor can also cap it (2.0 → ~1.64).
		if row.EffRatio < 1.45 {
			t.Fatalf("ratio %.2f: effective overcommit %.2f not a real storm", row.Ratio, row.EffRatio)
		}
		if row.AllocStalls == 0 || row.BalloonReclaimed == 0 {
			t.Fatalf("ratio %.2f: storm never exercised the stall/balloon path: %+v", row.Ratio, row)
		}
		if row.Transitions == 0 || !row.Recovered || row.Final != "healthy" {
			t.Fatalf("ratio %.2f: ladder did not degrade and recover: %+v", row.Ratio, row)
		}
		if row.Intervals == 0 || row.ContentChecks == 0 {
			t.Fatalf("ratio %.2f: invariant checker did no work: %+v", row.Ratio, row)
		}
	}
	if out := r.String(); !strings.Contains(out, "throttled") {
		t.Fatalf("rendering lost the ladder path:\n%s", out)
	}
}

func TestPressureRatioValidation(t *testing.T) {
	if _, err := Pressure(NewFastSuite(), []float64{0.5}); err == nil {
		t.Fatal("ratio < 1 accepted")
	}
}
