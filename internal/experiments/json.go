package experiments

import (
	"encoding/json"
	"io"
	"sort"

	"repro/internal/platform"
)

// DocSchema versions the -json output shape. Bump on breaking changes so
// downstream parsers can reject documents they do not understand.
const DocSchema = "pageforge-repro/v1"

// Doc is the machine-readable experiment output: every selected
// experiment's structured rows under its harness name, plus enough run
// context (seed, apps) to reproduce the document. Experiment result
// structs marshal with their exported field names, so
// .experiments.table4.Rows addresses the same rows the text table renders.
type Doc struct {
	Schema      string         `json:"schema"`
	Seed        uint64         `json:"seed"`
	Apps        []string       `json:"apps"`
	Experiments map[string]any `json:"experiments"`
}

// NewDoc starts a document for the suite's configuration.
func NewDoc(s *Suite) *Doc {
	d := &Doc{
		Schema:      DocSchema,
		Seed:        s.Cfg.Seed,
		Experiments: make(map[string]any),
	}
	for _, app := range s.Apps {
		d.Apps = append(d.Apps, app.Name)
	}
	return d
}

// Add records one experiment's structured result under its harness name.
func (d *Doc) Add(name string, result any) { d.Experiments[name] = result }

// Encode writes the document as indented JSON.
func (d *Doc) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Results returns the suite's completed run cache keyed "Mode/app"
// (platform errors are skipped). Call it after the experiments finish: it
// takes the cache lock, but a concurrently executing run's entry may not
// be populated yet.
func (s *Suite) Results() map[string]*platform.Result {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*platform.Result, len(s.results))
	for key, e := range s.results {
		if e.res != nil {
			out[key] = e.res
		}
	}
	return out
}

// MetricsDoc is the -metrics export: each completed run's full registry
// snapshot, keyed "Mode/app", sorted at encode time via the map keys.
type MetricsDoc struct {
	Schema string                      `json:"schema"`
	Seed   uint64                      `json:"seed"`
	Snaps  map[string]*runMetricsEntry `json:"runs"`
}

// runMetricsEntry pairs a run's headline numbers with its metric snapshot.
type runMetricsEntry struct {
	Mode             string  `json:"mode"`
	App              string  `json:"app"`
	AvgDemandLatency float64 `json:"avg_demand_latency_cycles"`
	DemandLatP95     float64 `json:"demand_latency_p95_cycles"`
	DemandLatP99     float64 `json:"demand_latency_p99_cycles"`
	Metrics          any     `json:"metrics"`
}

// NewMetricsDoc collects every completed run's metrics snapshot.
func NewMetricsDoc(s *Suite) *MetricsDoc {
	d := &MetricsDoc{Schema: DocSchema, Seed: s.Cfg.Seed, Snaps: make(map[string]*runMetricsEntry)}
	for key, r := range s.Results() {
		d.Snaps[key] = &runMetricsEntry{
			Mode:             r.Mode.String(),
			App:              r.App.Name,
			AvgDemandLatency: r.AvgDemandLatency,
			DemandLatP95:     r.DemandLatP95,
			DemandLatP99:     r.DemandLatP99,
			Metrics:          r.Metrics,
		}
	}
	return d
}

// Encode writes the metrics document as indented JSON.
func (d *MetricsDoc) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// RunRecord is one finished suite run's wall-clock entry, exported for
// bench artifacts.
type RunRecord struct {
	Mode        string  `json:"mode"`
	App         string  `json:"app"`
	WallSeconds float64 `json:"wall_seconds"`
	Err         string  `json:"error,omitempty"`
}

// Records returns the finished runs, sorted slowest first (the same order
// Summary renders).
func (p *ProgressReporter) Records() []RunRecord {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]RunRecord, 0, len(p.records))
	for _, r := range p.records {
		rec := RunRecord{Mode: r.mode.String(), App: r.app, WallSeconds: r.wall.Seconds()}
		if r.err != nil {
			rec.Err = r.err.Error()
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WallSeconds > out[j].WallSeconds })
	return out
}
