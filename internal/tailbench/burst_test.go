package tailbench

import (
	"testing"

	"repro/internal/vm"
)

// TestBurstRegionLifecycle pins the allocation-burst API: writes land above
// the resident image, consume frames, and ReleaseBurst returns them all.
func TestBurstRegionLifecycle(t *testing.T) {
	app := *ProfileByName("silo")
	app.PagesPerVM = 40
	app.BurstPagesPerVM = 16
	img, err := BuildImage(app, 3, 3*(40+16)*2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if img.BurstResident() != 0 {
		t.Fatal("burst pages resident at build")
	}
	base := img.HV.Phys.AllocatedFrames()

	n, err := img.BurstWrite(10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 30 {
		t.Fatalf("BurstWrite wrote %d pages, want 30", n)
	}
	if img.BurstResident() != 30 {
		t.Fatalf("burst resident = %d, want 30", img.BurstResident())
	}
	if got := img.HV.Phys.AllocatedFrames(); got != base+30 {
		t.Fatalf("allocated frames %d, want %d", got, base+30)
	}
	// Burst pages are in the madvised (mergeable) range.
	v := img.VMs[0]
	if !v.Mergeable(vm.GFN(app.PagesPerVM)) {
		t.Fatal("burst region not madvised mergeable")
	}

	// The region is capacity-bounded, not wrap-around.
	if n, err = img.BurstWrite(100, 0); err != nil {
		t.Fatal(err)
	}
	if n != 3*6 {
		t.Fatalf("overflow BurstWrite wrote %d pages, want 18", n)
	}

	if released := img.ReleaseBurst(); released != 48 {
		t.Fatalf("released %d pages, want 48", released)
	}
	if got := img.HV.Phys.AllocatedFrames(); got != base {
		t.Fatalf("allocated frames after teardown %d, want %d", got, base)
	}
	// Region is reusable after teardown.
	if n, err = img.BurstWrite(2, 0); err != nil || n != 6 {
		t.Fatalf("reuse after teardown: n=%d err=%v", n, err)
	}
}

// TestBurstDupContents: dup-pool burst pages are byte-identical across VMs
// (mergeable by the scanner mid-storm); unique ones are not.
func TestBurstDupContents(t *testing.T) {
	app := *ProfileByName("silo")
	app.PagesPerVM = 20
	app.BurstPagesPerVM = 8
	img, err := BuildImage(app, 2, 2*(20+8)*2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := img.BurstWrite(8, 0.5); err != nil {
		t.Fatal(err)
	}
	pageOf := func(v *vm.VM, g vm.GFN) string {
		p, err := v.Page(g)
		if err != nil {
			t.Fatal(err)
		}
		return string(p)
	}
	dupG := vm.GFN(app.PagesPerVM) // slot 0: inside the dup half
	if pageOf(img.VMs[0], dupG) != pageOf(img.VMs[1], dupG) {
		t.Fatal("dup-pool burst slot differs across VMs")
	}
	uniqG := vm.GFN(app.PagesPerVM + 7) // slot 7: unique half
	if pageOf(img.VMs[0], uniqG) == pageOf(img.VMs[1], uniqG) {
		t.Fatal("unique burst slot identical across VMs")
	}
}

// TestBurstDeterminism: same seed, same burst schedule, byte-identical
// contents — the storm must not perturb same-seed reproducibility.
func TestBurstDeterminism(t *testing.T) {
	build := func() *Image {
		app := *ProfileByName("silo")
		app.PagesPerVM = 20
		app.BurstPagesPerVM = 8
		img, err := BuildImage(app, 2, 2*(20+8)*2, 23)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := img.BurstWrite(4, 0.3); err != nil {
			t.Fatal(err)
		}
		return img
	}
	a, b := build(), build()
	for i := range a.VMs {
		for g := vm.GFN(0); int(g) < a.VMs[i].Pages(); g++ {
			if a.VMs[i].Present(g) != b.VMs[i].Present(g) {
				t.Fatalf("presence diverged at vm%d gfn%d", i, g)
			}
			if !a.VMs[i].Present(g) {
				continue
			}
			pa, _ := a.VMs[i].Page(g)
			pb, _ := b.VMs[i].Page(g)
			if string(pa) != string(pb) {
				t.Fatalf("contents diverged at vm%d gfn%d", i, g)
			}
		}
	}
}
