package tailbench

// Checkpoint support. The image's own state beyond the hypervisor (captured
// separately) is two RNG streams and the burst-region cursor: churn draws,
// burst contents, and burst occupancy must resume exactly where the
// checkpoint left them or post-restore writes diverge from the
// uninterrupted run.

// ImageState is the serialized image of an Image's mutable state.
type ImageState struct {
	RNG       uint64
	BurstRNG  uint64
	BurstUsed int
}

// State captures the image's RNG streams and burst cursor.
func (img *Image) State() ImageState {
	return ImageState{
		RNG:       img.rng.State(),
		BurstRNG:  img.burstRNG.State(),
		BurstUsed: img.burstUsed,
	}
}

// SetState restores the image's RNG streams and burst cursor.
func (img *Image) SetState(st ImageState) {
	img.rng.SetState(st.RNG)
	img.burstRNG.SetState(st.BurstRNG)
	img.burstUsed = st.BurstUsed
}
