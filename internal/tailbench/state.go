package tailbench

import "repro/internal/vm"

// Checkpoint support. The image's own state beyond the hypervisor (captured
// separately) is its RNG streams, the burst-region cursor, and — once live
// workload events can reshape the deployment mid-run — the live topology:
// which VMs are alive, how many were spawned, and the page-tracking lists
// (volatile/dup/zero/unique membership) that churn, footprint accounting,
// and phase shifts iterate. All of it must resume exactly where the
// checkpoint left it or post-restore writes diverge from the uninterrupted
// run.

// ImageState is the serialized image of an Image's mutable state.
type ImageState struct {
	RNG       uint64
	BurstRNG  uint64
	BurstUsed int

	// Live topology (changed only by SpawnVM/KillVM/PhaseShift; for a
	// static deployment these round-trip the build-time values). LiveVMs
	// holds hypervisor VM IDs — a kill removes a VM from the middle of the
	// live list while the hypervisor keeps the object for ID stability, so
	// membership is identity, not position.
	LiveVMs []int
	Spawned int

	Volatile    []vm.PageID
	DupPages    []vm.PageID
	ZeroPages   []vm.PageID
	UniquePages []vm.PageID
}

// State captures the image's RNG streams, burst cursor, and live topology.
func (img *Image) State() ImageState {
	st := ImageState{
		RNG:         img.rng.State(),
		BurstRNG:    img.burstRNG.State(),
		BurstUsed:   img.burstUsed,
		Spawned:     img.spawned,
		Volatile:    append([]vm.PageID(nil), img.Volatile...),
		DupPages:    append([]vm.PageID(nil), img.DupPages...),
		ZeroPages:   append([]vm.PageID(nil), img.ZeroPages...),
		UniquePages: append([]vm.PageID(nil), img.UniquePages...),
	}
	for _, v := range img.VMs {
		st.LiveVMs = append(st.LiveVMs, v.ID)
	}
	return st
}

// SetState restores the image's RNG streams, burst cursor, and live
// topology. The hypervisor must already be restored (the platform restores
// Phys → HV → Img in that order), so every ID in LiveVMs resolves.
func (img *Image) SetState(st ImageState) {
	img.rng.SetState(st.RNG)
	img.burstRNG.SetState(st.BurstRNG)
	img.burstUsed = st.BurstUsed
	img.spawned = st.Spawned
	img.VMs = img.VMs[:0]
	for _, id := range st.LiveVMs {
		img.VMs = append(img.VMs, img.HV.VM(id))
	}
	img.Volatile = append(img.Volatile[:0], st.Volatile...)
	img.DupPages = append(img.DupPages[:0], st.DupPages...)
	img.ZeroPages = append(img.ZeroPages[:0], st.ZeroPages...)
	img.UniquePages = append(img.UniquePages[:0], st.UniquePages...)
}
