package tailbench

import (
	"math"

	"repro/internal/sim"
)

// Burst is one interval of core time stolen from the applications by the
// page-deduplication process (the KSM kthread's work interval, or the tiny
// PageForge driver bookkeeping).
type Burst struct {
	At     uint64 // cycle at which the kthread wakes on this core
	Core   int
	Cycles uint64 // core time consumed
}

// BurstSchedule generates the dedup process's core occupancy over time.
// Each work interval's busy time is split into scheduler timeslices
// (Linux's CFS preempts and migrates the kthread at millisecond
// granularity), each placed on a Zipf-skewed core: the kthread prefers the
// cores it recently ran on, so one core absorbs a disproportionate share
// (Table 4's "Max" column) while every core sees some interference.
type BurstSchedule struct {
	// IntervalCycles is the kthread period (sleep_millisecs = 5ms).
	IntervalCycles uint64
	// MeanCycles/StdCycles describe the per-interval busy time; samples are
	// drawn log-normally (busy time is a sum of page-scan costs).
	MeanCycles float64
	StdCycles  float64
	// SliceCycles is the scheduler timeslice (0 ⇒ 1M cycles = 0.5ms).
	SliceCycles uint64
	// ZipfS skews the per-slice core placement. 0 disables bursts entirely.
	ZipfS float64
	Cores int
	// Share is the CPU fraction the dedup process receives while resident
	// on a core (CFS gives equal-weight tasks 0.5). The co-located vCPU
	// runs at (1-Share) during the residency window, whose wall-clock
	// length is Cycles/Share. Share 0 or 1 degrades to full blocking.
	Share float64

	weights []float64
}

// NoBursts is the baseline schedule: the dedup engine never runs.
func NoBursts() *BurstSchedule { return &BurstSchedule{} }

func (b *BurstSchedule) slice() uint64 {
	if b.SliceCycles > 0 {
		return b.SliceCycles
	}
	return 1_000_000
}

func (b *BurstSchedule) initWeights() {
	if b.weights != nil {
		return
	}
	total := 0.0
	for i := 0; i < b.Cores; i++ {
		w := 1.0 / math.Pow(float64(i+1), b.ZipfS)
		b.weights = append(b.weights, w)
		total += w
	}
	for i := range b.weights {
		b.weights[i] /= total
	}
}

func (b *BurstSchedule) pickCore(rng *sim.RNG) int {
	u := rng.Float64()
	for i, w := range b.weights {
		if u < w {
			return i
		}
		u -= w
	}
	return b.Cores - 1
}

// Bursts samples the timeslices for interval k (k=0,1,...). The returned
// slice is empty when the schedule is disabled.
func (b *BurstSchedule) Bursts(k uint64, rng *sim.RNG) []Burst {
	if b.MeanCycles <= 0 || b.Cores == 0 {
		return nil
	}
	b.initWeights()
	cv := 0.0
	if b.MeanCycles > 0 {
		cv = b.StdCycles / b.MeanCycles
	}
	busy := rng.LogNormal(b.MeanCycles, cv)
	if busy <= 0 {
		return nil
	}
	sl := b.slice()
	var out []Burst
	start := k * b.IntervalCycles
	remaining := uint64(busy)
	for remaining > 0 {
		d := sl
		if remaining < sl {
			d = remaining
		}
		out = append(out, Burst{At: start, Core: b.pickCore(rng), Cycles: d})
		start += d
		remaining -= d
	}
	return out
}

// CoreShare reports the long-run fraction of core c's cycles consumed by
// the schedule (for validating Table 4's Avg/Max columns).
func (b *BurstSchedule) CoreShare(c int) float64 {
	if b.MeanCycles <= 0 || b.Cores == 0 || b.IntervalCycles == 0 {
		return 0
	}
	b.initWeights()
	return b.weights[c] * b.MeanCycles / float64(b.IntervalCycles)
}

// LatencyResult aggregates sojourn latencies for one deployment (10 VMs of
// one application under one configuration).
type LatencyResult struct {
	// PerVMMean / PerVMP95 are per-VM statistics in cycles.
	PerVMMean []float64
	PerVMP95  []float64
	// Mean and P95 are geometric means across VMs, the aggregation the
	// paper uses in Figures 9 and 10.
	Mean float64
	P95  float64
	// Queries is the total measured query count.
	Queries int
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// window is an interval during which a core's application capacity is
// reduced to rate (the dedup kthread holds the remaining share).
type window struct {
	start, end uint64
	rate       float64
}

// buildWindows converts the burst schedule into per-core slowdown windows.
// Windows on a core never overlap: a residency that would begin before the
// previous one ends is pushed back (the kthread can only be in one place,
// and a core's runqueue serializes).
func buildWindows(sched *BurstSchedule, cores int, horizon uint64, rng *sim.RNG) [][]window {
	byCore := make([][]window, cores)
	if sched == nil || sched.IntervalCycles == 0 {
		return byCore
	}
	share := sched.Share
	if share <= 0 || share >= 1 {
		share = 1 // full blocking: rate 0 over exactly Cycles
	}
	for k := uint64(0); k*sched.IntervalCycles < horizon; k++ {
		for _, b := range sched.Bursts(k, rng) {
			length := uint64(float64(b.Cycles) / share)
			rate := 1 - share
			ws := byCore[b.Core]
			start := b.At
			if n := len(ws); n > 0 && ws[n-1].end > start {
				start = ws[n-1].end
			}
			byCore[b.Core] = append(ws, window{start: start, end: start + length, rate: rate})
		}
	}
	return byCore
}

// advance computes when S cycles of work finish if started at t on a core
// whose capacity follows the window list; wi is the caller's cursor into
// the (time-ordered) windows and is advanced past fully-elapsed windows.
func advance(ws []window, wi *int, t uint64, S float64) uint64 {
	for S > 0 {
		for *wi < len(ws) && ws[*wi].end <= t {
			*wi++
		}
		if *wi >= len(ws) {
			return t + uint64(S)
		}
		w := ws[*wi]
		if t < w.start {
			// Full-speed region before the next window.
			span := float64(w.start - t)
			if S <= span {
				return t + uint64(S)
			}
			S -= span
			t = w.start
			continue
		}
		// Inside a slowdown window.
		if w.rate <= 0 {
			t = w.end
			continue
		}
		span := float64(w.end-t) * w.rate // work achievable inside the window
		if S <= span {
			return t + uint64(S/w.rate)
		}
		S -= span
		t = w.end
	}
	return t
}

// SimulateQueueing runs the open-loop latency simulation: one VM per core,
// Poisson arrivals at the profile's QPS, log-normal service times dilated
// by the configuration's service-dilation factor (cache pollution and
// memory contention), and the dedup kthread timesharing cores per the
// burst schedule. A query's sojourn latency is queueing plus service — the
// paper's "mean sojourn latency".
func SimulateQueueing(p Profile, cores int, dilation float64, sched *BurstSchedule,
	measureCycles uint64, seed uint64) LatencyResult {

	warmup := measureCycles / 5
	horizon := warmup + measureCycles
	rootRNG := sim.NewRNG(seed)
	burstRNG := rootRNG.Fork()
	windowsByCore := buildWindows(sched, cores, horizon, burstRNG)

	res := LatencyResult{}
	meanGap := float64(sim.CyclesPerSecond) / p.QPS
	for core := 0; core < cores; core++ {
		rng := rootRNG.Fork()
		sample := sim.NewSample(1024)
		ws := windowsByCore[core]
		wi := 0
		var serverFree uint64
		var t float64 // next arrival time
		for {
			t += rng.Exp(meanGap)
			arrival := uint64(t)
			if arrival >= horizon {
				break
			}
			start := arrival
			if serverFree > start {
				start = serverFree
			}
			service := rng.LogNormal(p.MeanServiceCycles*dilation, p.ServiceCV)
			complete := advance(ws, &wi, start, service)
			serverFree = complete
			if arrival >= warmup {
				sample.Add(float64(complete - arrival))
			}
		}
		res.PerVMMean = append(res.PerVMMean, sample.Mean())
		res.PerVMP95 = append(res.PerVMP95, sample.P95())
		res.Queries += sample.N()
	}
	res.Mean = geomean(res.PerVMMean)
	res.P95 = geomean(res.PerVMP95)
	return res
}

// MeasureCyclesFor picks a simulation horizon long enough for statistically
// meaningful sojourn estimates: at least minQueries per VM, at least one
// second of simulated time, capped to keep runs fast.
func MeasureCyclesFor(p Profile, minQueries int) uint64 {
	need := float64(minQueries) / p.QPS * float64(sim.CyclesPerSecond)
	if need < 1*float64(sim.CyclesPerSecond) {
		need = 1 * float64(sim.CyclesPerSecond)
	}
	const maxHorizon = 120 * float64(sim.CyclesPerSecond)
	if need > maxHorizon {
		need = maxHorizon
	}
	return uint64(need)
}
