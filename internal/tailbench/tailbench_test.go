package tailbench

import (
	"math"
	"testing"

	"repro/internal/ksm"
	"repro/internal/sim"
)

func TestProfilesWellFormed(t *testing.T) {
	ps := Profiles()
	if len(ps) != 5 {
		t.Fatalf("%d profiles, want 5 (Table 3)", len(ps))
	}
	wantQPS := map[string]float64{
		"img_dnn": 500, "masstree": 500, "moses": 100, "silo": 2000, "sphinx": 1,
	}
	for _, p := range ps {
		if q, ok := wantQPS[p.Name]; !ok || p.QPS != q {
			t.Errorf("%s QPS = %g, want %g (Table 3)", p.Name, p.QPS, q)
		}
		if sum := p.UnmergeableFrac + p.ZeroFrac + p.DupFrac; math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s composition sums to %g", p.Name, sum)
		}
		u := p.Utilization()
		if u <= 0.1 || u >= 0.9 {
			t.Errorf("%s utilization %g outside stable open-loop range", p.Name, u)
		}
	}
	// Composition averages must match Figure 7's system-wide breakdown.
	var unm, zero, dup float64
	for _, p := range ps {
		unm += p.UnmergeableFrac
		zero += p.ZeroFrac
		dup += p.DupFrac
	}
	n := float64(len(ps))
	if math.Abs(unm/n-0.45) > 0.02 || math.Abs(zero/n-0.05) > 0.02 || math.Abs(dup/n-0.50) > 0.02 {
		t.Errorf("average composition %.2f/%.2f/%.2f, want ~0.45/0.05/0.50", unm/n, zero/n, dup/n)
	}
}

func TestProfileByName(t *testing.T) {
	if ProfileByName("moses") == nil {
		t.Fatal("moses not found")
	}
	if ProfileByName("nope") != nil {
		t.Fatal("phantom profile")
	}
}

func smallProfile() Profile {
	p := *ProfileByName("img_dnn")
	p.PagesPerVM = 120
	return p
}

func TestBuildImageComposition(t *testing.T) {
	p := smallProfile()
	img, err := BuildImage(p, 4, 4*120*2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(img.VMs) != 4 {
		t.Fatalf("%d VMs", len(img.VMs))
	}
	wantDup := int(p.DupFrac*120) * 4
	wantZero := int(p.ZeroFrac*120) * 4
	if len(img.DupPages) != wantDup {
		t.Fatalf("dup pages = %d, want %d", len(img.DupPages), wantDup)
	}
	if len(img.ZeroPages) != wantZero {
		t.Fatalf("zero pages = %d, want %d", len(img.ZeroPages), wantZero)
	}
	if len(img.Volatile) == 0 {
		t.Fatal("no volatile pages")
	}
	// All pages mergeable-advised and resident.
	f := img.MeasureFootprint()
	if f.TotalGuestPages != 4*120 {
		t.Fatalf("resident = %d, want %d", f.TotalGuestPages, 4*120)
	}
	// Nothing merged yet: allocation equals resident pages.
	if f.FramesAllocated != f.TotalGuestPages {
		t.Fatalf("pre-merge frames = %d", f.FramesAllocated)
	}
}

func TestImageDedupProducesPaperShapedSavings(t *testing.T) {
	// Run software KSM to steady state on a full 10-VM image and check the
	// Figure 7 shape: roughly half the footprint disappears, zero pages
	// collapse to one frame, duplicates compress by ~DupCopies.
	p := smallProfile()
	img, err := BuildImage(p, 10, 10*120*2, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := ksm.NewScanner(ksm.NewAlgorithm(img.HV, ksm.JHasher{}), ksm.DefaultCosts())
	s.RunToSteadyState(30)
	f := img.MeasureFootprint()
	if f.ZeroFrames != 1 {
		t.Fatalf("zero frames = %d, want 1", f.ZeroFrames)
	}
	sav := f.Savings()
	if sav < 0.35 || sav > 0.60 {
		t.Fatalf("savings = %.2f, want ~0.48 (Figure 7)", sav)
	}
	if f.MergeableNonZero == 0 || f.NonZeroShared == 0 {
		t.Fatal("no non-zero duplicates merged")
	}
	compression := float64(f.NonZeroShared) / float64(f.MergeableNonZero)
	if compression > 0.25 {
		t.Fatalf("dup compression = %.2f distinct/copies, want <= ~1/DupCopies", compression)
	}
	// Unmergeable pages: unique contents must remain private.
	if f.Unmergeable == 0 {
		t.Fatal("no unmergeable pages remained")
	}
}

func TestChurnVolatileChangesContent(t *testing.T) {
	p := smallProfile()
	img, err := BuildImage(p, 2, 2*120*2, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := make(map[int][]byte)
	for i, id := range img.Volatile {
		pfn, _ := img.HV.Resolve(id)
		cp := make([]byte, len(img.HV.Phys.Page(pfn)))
		copy(cp, img.HV.Phys.Page(pfn))
		before[i] = cp
	}
	if err := img.ChurnVolatile(); err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i, id := range img.Volatile {
		pfn, _ := img.HV.Resolve(id)
		after := img.HV.Phys.Page(pfn)
		for j := range after {
			if after[j] != before[i][j] {
				changed++
				break
			}
		}
	}
	// Every volatile page receives either a full rewrite or a 256B random
	// write; virtually all must differ afterwards.
	if changed < len(img.Volatile)*9/10 {
		t.Fatalf("only %d/%d volatile pages changed", changed, len(img.Volatile))
	}
}

func TestBurstScheduleSharesAndSkew(t *testing.T) {
	b := &BurstSchedule{
		IntervalCycles: 10_000_000,
		MeanCycles:     6_800_000, // 68% of one core, i.e. 6.8% of ten
		StdCycles:      1_000_000,
		ZipfS:          1.5,
		Cores:          10,
	}
	total := 0.0
	for c := 0; c < 10; c++ {
		total += b.CoreShare(c)
	}
	if math.Abs(total-0.68) > 0.001 {
		t.Fatalf("total share = %g, want 0.68", total)
	}
	// Table 4: the busiest core absorbs ~a third of its cycles.
	if max := b.CoreShare(0); max < 0.25 || max > 0.45 {
		t.Fatalf("max core share = %g, want ~1/3", max)
	}
	// Sampled slices land on core 0 about half the time under ZipfS=1.5,
	// and every interval's slices sum to its busy time.
	rng := sim.NewRNG(1)
	core0, slices := 0, 0
	for k := uint64(0); k < 2000; k++ {
		bursts := b.Bursts(k, rng)
		if len(bursts) == 0 {
			t.Fatal("schedule empty")
		}
		var sum uint64
		for i, burst := range bursts {
			slices++
			if burst.Core == 0 {
				core0++
			}
			if i == 0 && burst.At != k*b.IntervalCycles {
				t.Fatal("burst timing wrong")
			}
			if burst.Cycles > 1_000_000 {
				t.Fatalf("slice %d cycles exceeds the timeslice", burst.Cycles)
			}
			sum += burst.Cycles
		}
		if sum == 0 {
			t.Fatal("interval with zero busy time")
		}
	}
	frac := float64(core0) / float64(slices)
	if frac < 0.4 {
		t.Fatalf("core 0 received %.2f of slices", frac)
	}
}

func TestNoBurstsSchedule(t *testing.T) {
	if bs := NoBursts().Bursts(0, sim.NewRNG(1)); len(bs) != 0 {
		t.Fatal("NoBursts produced a burst")
	}
	if NoBursts().CoreShare(0) != 0 {
		t.Fatal("NoBursts has core share")
	}
}

func TestQueueingBaselineSanity(t *testing.T) {
	p := *ProfileByName("silo")
	res := SimulateQueueing(p, 4, 1.0, NoBursts(), 2*sim.CyclesPerSecond, 7)
	if res.Queries < 1000 {
		t.Fatalf("only %d queries measured", res.Queries)
	}
	// Open-loop M/G/1 at utilization ~0.44: mean sojourn must exceed the
	// mean service time but stay within a small multiple of it.
	if res.Mean < p.MeanServiceCycles {
		t.Fatalf("mean sojourn %.0f below service time %.0f", res.Mean, p.MeanServiceCycles)
	}
	if res.Mean > 6*p.MeanServiceCycles {
		t.Fatalf("mean sojourn %.0f implausibly high for stable queue", res.Mean)
	}
	if res.P95 <= res.Mean {
		t.Fatal("P95 <= mean")
	}
}

func TestQueueingBurstsInflateLatency(t *testing.T) {
	p := *ProfileByName("silo")
	base := SimulateQueueing(p, 10, 1.0, NoBursts(), 2*sim.CyclesPerSecond, 7)
	ksmSched := &BurstSchedule{
		IntervalCycles: 10_000_000,
		MeanCycles:     6_000_000,
		StdCycles:      1_500_000,
		ZipfS:          1.5,
		Cores:          10,
	}
	loaded := SimulateQueueing(p, 10, 1.05, ksmSched, 2*sim.CyclesPerSecond, 7)
	if loaded.Mean <= base.Mean {
		t.Fatal("bursts did not inflate mean latency")
	}
	if loaded.P95 <= base.P95 {
		t.Fatal("bursts did not inflate tail latency")
	}
	// Tail inflation tracks mean inflation (under the capacity-sharing
	// model both rise together; the tail must not lag far behind).
	meanRatio := loaded.Mean / base.Mean
	tailRatio := loaded.P95 / base.P95
	if tailRatio < 1.15 || tailRatio < 0.6*meanRatio {
		t.Fatalf("tail ratio %.2f too low vs mean ratio %.2f", tailRatio, meanRatio)
	}
}

func TestQueueingDilationScalesService(t *testing.T) {
	p := *ProfileByName("masstree")
	base := SimulateQueueing(p, 2, 1.0, NoBursts(), sim.CyclesPerSecond, 3)
	dilated := SimulateQueueing(p, 2, 1.2, NoBursts(), sim.CyclesPerSecond, 3)
	ratio := dilated.Mean / base.Mean
	if ratio < 1.15 {
		t.Fatalf("dilation 1.2 produced mean ratio %.2f", ratio)
	}
}

func TestQueueingDeterministic(t *testing.T) {
	p := *ProfileByName("img_dnn")
	a := SimulateQueueing(p, 3, 1.0, NoBursts(), sim.CyclesPerSecond, 11)
	b := SimulateQueueing(p, 3, 1.0, NoBursts(), sim.CyclesPerSecond, 11)
	if a.Mean != b.Mean || a.P95 != b.P95 || a.Queries != b.Queries {
		t.Fatal("same seed produced different results")
	}
}

func TestMeasureCyclesFor(t *testing.T) {
	sphinx := *ProfileByName("sphinx")
	got := MeasureCyclesFor(sphinx, 300)
	if got != 120*sim.CyclesPerSecond {
		t.Fatalf("sphinx horizon = %d, want capped at 120s", got)
	}
	silo := *ProfileByName("silo")
	if MeasureCyclesFor(silo, 300) != sim.CyclesPerSecond {
		t.Fatal("fast app should use the 1s floor")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Fatalf("geomean(1,100) = %g", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("geomean(nil) != 0")
	}
	if geomean([]float64{5, 0}) != 0 {
		t.Fatal("geomean with zero must degrade to 0, not NaN")
	}
}

// Guard the scaled-down image against accidental unbounded memory use.
func TestImageMemoryBudget(t *testing.T) {
	p := smallProfile()
	img, err := BuildImage(p, 10, 10*120*2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if img.HV.Phys.AllocatedFrames() > 10*120 {
		t.Fatalf("image allocated %d frames for %d guest pages",
			img.HV.Phys.AllocatedFrames(), 10*120)
	}
}
