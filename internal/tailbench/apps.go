// Package tailbench models the paper's workloads: five latency-critical
// applications from the TailBench suite (Table 3), each running in its own
// VM pinned to a core. The package provides three things: per-application
// profiles (load, service times, memory composition), a VM memory-image
// generator that reproduces each application's page-duplication profile
// across VMs, and an open-loop queueing simulator that measures sojourn
// latencies under interference from the page-deduplication engine.
package tailbench

import "repro/internal/sim"

// Profile describes one TailBench application.
type Profile struct {
	Name string
	// QPS is the offered load per VM (Table 3).
	QPS float64
	// MeanServiceCycles is the mean query service time on an unloaded core
	// (baseline, including its memory-stall component).
	MeanServiceCycles float64
	// ServiceCV is the coefficient of variation of service times.
	ServiceCV float64
	// MemStallFrac is the fraction of service time spent in memory stalls
	// at baseline; interference dilates exactly this component.
	MemStallFrac float64
	// LinesPerQuery is the number of cache-line touches a query makes in
	// the sampled cache simulation (scaled-down representative stream).
	LinesPerQuery int
	// BaselineL3Miss is the application's shared-L3 local miss rate without
	// deduplication running (Table 4, "Baseline" column).
	BaselineL3Miss float64
	// DemandGBps is the application's DRAM bandwidth demand at baseline
	// (Figure 11's Baseline bars average ~2 GB/s). This is an application
	// property the scaled-down sampled streams cannot reproduce directly.
	DemandGBps float64

	// Memory image composition, as fractions of the VM's resident pages.
	// UnmergeableFrac + ZeroFrac + DupFrac == 1.
	UnmergeableFrac float64 // unique or too-frequently-written pages
	ZeroFrac        float64 // zero pages present at any instant
	DupFrac         float64 // cross-VM duplicates (kernels, libraries, data)
	// DupCopies is the mean number of VMs sharing each distinct duplicated
	// content (10 means "in every VM of the consolidated host").
	DupCopies float64
	// PagesPerVM is the resident set in pages for the scaled-down image
	// (the paper's VMs have 512MB; images here are scaled, fractions
	// preserved — see DESIGN.md).
	PagesPerVM int
	// VolatileFrac is the fraction of unmergeable pages rewritten between
	// deduplication passes (they churn hash keys and never merge).
	VolatileFrac float64
	// BurstPagesPerVM reserves extra guest address space above the resident
	// image for allocation bursts (the pressure experiments' overcommit
	// storm). Zero means no burst region; the pages exist but stay
	// untouched until BurstWrite, so they cost no frames at build.
	BurstPagesPerVM int
}

// ms converts milliseconds to cycles at 2 GHz.
func ms(v float64) float64 { return v * 2e6 }

// Profiles returns the five TailBench applications with Table 3's loads.
// Service-time granularities follow the paper's description: sphinx has
// second-level queries, moses millisecond-level; silo is a fast in-memory
// OLTP workload driven at 2000 QPS. Per TailBench methodology the offered
// loads sit near the latency knee (utilizations of 0.72-0.80), which is
// what makes small capacity losses and service dilation produce the
// paper's large sojourn-latency inflation.
func Profiles() []Profile {
	return []Profile{
		{
			Name: "img_dnn", QPS: 500,
			MeanServiceCycles: ms(1.5), ServiceCV: 0.9, MemStallFrac: 0.40,
			LinesPerQuery: 220, BaselineL3Miss: 0.442, DemandGBps: 2.4,
			UnmergeableFrac: 0.42, ZeroFrac: 0.05, DupFrac: 0.53, DupCopies: 8,
			PagesPerVM: 1600, VolatileFrac: 0.30,
		},
		{
			Name: "masstree", QPS: 500,
			MeanServiceCycles: ms(1.45), ServiceCV: 0.7, MemStallFrac: 0.50,
			LinesPerQuery: 260, BaselineL3Miss: 0.267, DemandGBps: 1.8,
			UnmergeableFrac: 0.45, ZeroFrac: 0.06, DupFrac: 0.49, DupCopies: 8,
			PagesPerVM: 1600, VolatileFrac: 0.35,
		},
		{
			Name: "moses", QPS: 100,
			MeanServiceCycles: ms(7.8), ServiceCV: 0.8, MemStallFrac: 0.45,
			LinesPerQuery: 300, BaselineL3Miss: 0.308, DemandGBps: 1.9,
			UnmergeableFrac: 0.54, ZeroFrac: 0.04, DupFrac: 0.42, DupCopies: 7,
			PagesPerVM: 1600, VolatileFrac: 0.30,
		},
		{
			Name: "silo", QPS: 2000,
			MeanServiceCycles: ms(0.40), ServiceCV: 1.0, MemStallFrac: 0.45,
			LinesPerQuery: 150, BaselineL3Miss: 0.265, DemandGBps: 1.7,
			UnmergeableFrac: 0.40, ZeroFrac: 0.05, DupFrac: 0.55, DupCopies: 8,
			PagesPerVM: 1600, VolatileFrac: 0.40,
		},
		{
			Name: "sphinx", QPS: 1,
			MeanServiceCycles: ms(750), ServiceCV: 0.5, MemStallFrac: 0.35,
			LinesPerQuery: 400, BaselineL3Miss: 0.410, DemandGBps: 2.2,
			UnmergeableFrac: 0.44, ZeroFrac: 0.05, DupFrac: 0.51, DupCopies: 8,
			PagesPerVM: 1600, VolatileFrac: 0.25,
		},
	}
}

// ProfileByName finds a profile, or nil.
func ProfileByName(name string) *Profile {
	for _, p := range Profiles() {
		if p.Name == name {
			pp := p
			return &pp
		}
	}
	return nil
}

// Utilization reports the offered load as a fraction of one core.
func (p *Profile) Utilization() float64 {
	return p.QPS * p.MeanServiceCycles / float64(sim.CyclesPerSecond)
}
