package tailbench

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Image is the generated memory layout for one deployment: 10 VMs running
// the same application, with page categories tracked for later accounting
// (Figure 7 classifies pages as Unmergeable / Mergeable-Zero /
// Mergeable-NonZero).
type Image struct {
	Profile Profile
	HV      *vm.Hypervisor
	VMs     []*vm.VM
	// Volatile lists pages that the workload rewrites between scan passes.
	Volatile []vm.PageID
	// dup contents shared across VMs; unique contents per page.
	DupPages    []vm.PageID
	ZeroPages   []vm.PageID
	UniquePages []vm.PageID

	rng *sim.RNG

	// burstUsed is the number of burst slots written (not yet released) per
	// VM; burstRNG drives burst contents on a stream independent of the
	// churn RNG, so enabling a storm does not perturb churn determinism.
	burstUsed int
	burstRNG  *sim.RNG

	// Build-time content-pool parameters, retained so VMs spawned mid-run
	// share the fleet's "library" contents: salt is the image-specific
	// content salt, dupDistinct the distinct duplicated-content pool size,
	// and spawned counts SpawnVM calls (it salts each spawn's unique
	// region). All three are derivable from (Profile, numVMs, seed), so a
	// checkpoint only needs the spawn counter.
	salt        uint64
	dupDistinct int
	spawned     int
}

// BuildImage deploys numVMs copies of the application and fills guest
// memory according to the profile's composition:
//
//   - DupFrac of pages carry contents drawn from a pool of distinct
//     "library/kernel/dataset" pages; each distinct content is mapped into
//     ~DupCopies VMs at the same relative position, which is exactly the
//     cross-VM duplication same-page merging exploits.
//   - ZeroFrac of pages are touched but never written (zero pages).
//   - The rest are unique per-VM contents; VolatileFrac of those churn.
//
// All pages are madvised mergeable, as a KVM deployment would.
func BuildImage(p Profile, numVMs int, physFrames int, seed uint64) (*Image, error) {
	img := &Image{Profile: p, HV: vm.NewHypervisor(uint64(physFrames) * mem.PageSize), rng: sim.NewRNG(seed)}

	dupPerVM := int(p.DupFrac * float64(p.PagesPerVM))
	zeroPerVM := int(p.ZeroFrac * float64(p.PagesPerVM))
	uniqPerVM := p.PagesPerVM - dupPerVM - zeroPerVM

	// Distinct duplicated contents: total dup pages / mean copies.
	distinct := int(float64(dupPerVM*numVMs)/p.DupCopies + 0.5)
	if distinct < 1 {
		distinct = 1
	}
	// Content id c is assigned to dup slot s of VM v when a hash of
	// (c, slot) selects v — realized simply by striding contents across
	// slots so each content lands in ~DupCopies VMs.
	for i := 0; i < numVMs; i++ {
		v := img.HV.NewVM(uint64(p.PagesPerVM+p.BurstPagesPerVM) * mem.PageSize)
		v.Madvise(0, p.PagesPerVM+p.BurstPagesPerVM, true)
		img.VMs = append(img.VMs, v)
	}
	img.burstRNG = sim.NewRNG(seed ^ 0xB0057_F00D)

	page := make([]byte, mem.PageSize)
	// Image-specific salt: two deployments with different seeds must not
	// share any content (their "library" pages are different builds).
	salt := (seed + 1) * 0x9E3779B97F4A7C15
	img.salt, img.dupDistinct = salt, distinct
	// Duplicated region: gfns [0, dupPerVM).
	for slot := 0; slot < dupPerVM; slot++ {
		for i, v := range img.VMs {
			// Deterministic content id: same slot shares content across a
			// window of DupCopies VMs.
			group := (slot*numVMs + i) / max(1, int(p.DupCopies+0.5))
			contentID := group % max(1, distinct)
			fillPage(page, uint64(contentID)*2654435761+salt)
			if _, err := v.Write(vm.GFN(slot), 0, page); err != nil {
				return nil, fmt.Errorf("tailbench: dup page: %w", err)
			}
			img.DupPages = append(img.DupPages, vm.PageID{VM: v.ID, GFN: vm.GFN(slot)})
		}
	}
	// Zero region: gfns [dupPerVM, dupPerVM+zeroPerVM) — touched only.
	for z := 0; z < zeroPerVM; z++ {
		g := vm.GFN(dupPerVM + z)
		for _, v := range img.VMs {
			if err := v.Touch(g); err != nil {
				return nil, fmt.Errorf("tailbench: zero page: %w", err)
			}
			img.ZeroPages = append(img.ZeroPages, vm.PageID{VM: v.ID, GFN: g})
		}
	}
	// Unique region: remaining gfns, globally unique contents.
	next := salt ^ 0xF00D
	for u := 0; u < uniqPerVM; u++ {
		g := vm.GFN(dupPerVM + zeroPerVM + u)
		for _, v := range img.VMs {
			next++
			fillPage(page, next*0x9E3779B97F4A7C15+7)
			if _, err := v.Write(g, 0, page); err != nil {
				return nil, fmt.Errorf("tailbench: unique page: %w", err)
			}
			id := vm.PageID{VM: v.ID, GFN: g}
			img.UniquePages = append(img.UniquePages, id)
			if float64(u) < p.VolatileFrac*float64(uniqPerVM) {
				img.Volatile = append(img.Volatile, id)
			}
		}
	}
	return img, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// fillPage writes deterministic content derived from seed: a zero prefix
// of 64..576 bytes (also seed-derived) followed by pseudo-random data.
// Pages with equal seeds are byte-identical. The zero prefix reproduces the
// structure of real system pages — zero-initialized headers, sparse data,
// common ELF/slab prefixes — which is what makes content-indexed tree
// comparisons walk hundreds of bytes before diverging (the dominant cost
// in Table 4) rather than one byte.
func fillPage(page []byte, seed uint64) {
	// Mix the seed so nearby seeds produce unrelated prefixes and tails.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	prefix := 64 + int(z%1025) // 64..1088 bytes (~576 mean), 8B-aligned below
	prefix &^= 7
	for i := 0; i < prefix; i++ {
		page[i] = 0
	}
	x := z | 1
	for i := prefix; i+8 <= len(page); i += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(page[i:], x*0x2545F4914F6CDD1D)
	}
}

// ChurnVolatile models the application's write traffic between
// deduplication passes. Half the volatile pages are fully rewritten; the
// other half receive a partial 256B write whose offset is biased toward
// the start of the page (applications mutate headers and counters early in
// a page far more often than its tail). Partial writes are what create the
// hash-key false positives Figure 8 studies: a write that lands outside
// the first 1KB escapes KSM's jhash, and one that misses all four sampled
// lines escapes the ECC key.
func (img *Image) ChurnVolatile() error {
	buf := make([]byte, mem.PageSize)
	part := make([]byte, 256)
	for _, id := range img.Volatile {
		v := img.HV.VM(id.VM)
		if img.rng.Bool(0.5) {
			fillPage(buf, img.rng.Uint64())
			if _, err := v.Write(id.GFN, 0, buf); err != nil {
				return err
			}
			continue
		}
		img.rng.FillBytes(part)
		var off int
		if img.rng.Bool(0.7) {
			off = img.rng.Intn(1024 - 256) // header-region write
		} else {
			off = 1024 + img.rng.Intn(mem.PageSize-1024-256)
		}
		if _, err := v.Write(id.GFN, off, part); err != nil {
			return err
		}
	}
	return nil
}

// SpawnVM adds one more VM running the same application image to the live
// deployment — a sandbox spinning up mid-run. Its memory composition
// mirrors BuildImage's: the duplicated region draws from the fleet's
// existing distinct-content pool (offset by the spawn ordinal so copies
// spread across contents), the zero region is written as explicit zeros,
// and the unique region gets fresh contents on a spawn-salted stream. Every
// page is created through Write — never Touch — so the hypervisor's
// write-observer seam sees all of it and an attached verifier's shadow
// model learns the new VM's contents (boot-time pages are snapshotted at
// BeginRun instead; a spawned VM has no such moment). All pages are
// madvised mergeable. The caller owns refreshing any dedup engine's scan
// order afterwards.
func (img *Image) SpawnVM() (*vm.VM, error) {
	p := img.Profile
	dupPerVM := int(p.DupFrac * float64(p.PagesPerVM))
	zeroPerVM := int(p.ZeroFrac * float64(p.PagesPerVM))
	uniqPerVM := p.PagesPerVM - dupPerVM - zeroPerVM

	v := img.HV.NewVM(uint64(p.PagesPerVM+p.BurstPagesPerVM) * mem.PageSize)
	v.Madvise(0, p.PagesPerVM+p.BurstPagesPerVM, true)
	img.spawned++

	page := make([]byte, mem.PageSize)
	for slot := 0; slot < dupPerVM; slot++ {
		contentID := (slot + img.spawned) % max(1, img.dupDistinct)
		fillPage(page, uint64(contentID)*2654435761+img.salt)
		if _, err := v.Write(vm.GFN(slot), 0, page); err != nil {
			return nil, fmt.Errorf("tailbench: spawn dup page: %w", err)
		}
		img.DupPages = append(img.DupPages, vm.PageID{VM: v.ID, GFN: vm.GFN(slot)})
	}
	for i := range page {
		page[i] = 0
	}
	for z := 0; z < zeroPerVM; z++ {
		g := vm.GFN(dupPerVM + z)
		if _, err := v.Write(g, 0, page); err != nil {
			return nil, fmt.Errorf("tailbench: spawn zero page: %w", err)
		}
		img.ZeroPages = append(img.ZeroPages, vm.PageID{VM: v.ID, GFN: g})
	}
	next := img.salt ^ 0xF00D ^ (uint64(img.spawned) * 0x517CC1B727220A95)
	for u := 0; u < uniqPerVM; u++ {
		g := vm.GFN(dupPerVM + zeroPerVM + u)
		next++
		fillPage(page, next*0x9E3779B97F4A7C15+7)
		if _, err := v.Write(g, 0, page); err != nil {
			return nil, fmt.Errorf("tailbench: spawn unique page: %w", err)
		}
		id := vm.PageID{VM: v.ID, GFN: g}
		img.UniquePages = append(img.UniquePages, id)
		if float64(u) < p.VolatileFrac*float64(uniqPerVM) {
			img.Volatile = append(img.Volatile, id)
		}
	}
	img.VMs = append(img.VMs, v)
	return v, nil
}

// KillVM tears down one live VM mid-run — its sandbox exits. Every present
// page (resident image and burst region alike) is released in GFN order,
// the whole guest range is madvised unmergeable so no dedup engine keeps it
// as a scan candidate, and the VM leaves the live list and every tracking
// list. The hypervisor keeps the VM object so IDs of later spawns stay
// stable; the freed frames leave the dedup index's stable/unstable trees at
// the next pass-end prune. The caller owns refreshing any dedup engine's
// scan order afterwards.
func (img *Image) KillVM(id int) error {
	idx := -1
	for i, v := range img.VMs {
		if v.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("tailbench: kill: VM %d is not live", id)
	}
	v := img.VMs[idx]
	for g := vm.GFN(0); int(g) < v.Pages(); g++ {
		if v.Present(g) {
			v.Release(g)
		}
	}
	v.Madvise(0, v.Pages(), false)
	img.VMs = append(img.VMs[:idx], img.VMs[idx+1:]...)
	filter := func(ids []vm.PageID) []vm.PageID {
		out := ids[:0]
		for _, pid := range ids {
			if pid.VM != id {
				out = append(out, pid)
			}
		}
		return out
	}
	img.Volatile = filter(img.Volatile)
	img.DupPages = filter(img.DupPages)
	img.ZeroPages = filter(img.ZeroPages)
	img.UniquePages = filter(img.UniquePages)
	return nil
}

// PhaseShift models an application phase change: the working set moves.
// frac of the unique region (a contiguous window starting at an RNG-drawn
// offset) is rewritten with fresh contents — breaking any merges those
// pages were in — and the volatile set rotates onto the rewritten window,
// so churn follows the new hot set. Contents draw from the image's churn
// RNG stream, which the checkpoint machinery captures, so replayed phase
// shifts are bit-exact.
func (img *Image) PhaseShift(frac float64) error {
	n := int(frac * float64(len(img.UniquePages)))
	if n <= 0 {
		return nil
	}
	if n > len(img.UniquePages) {
		n = len(img.UniquePages)
	}
	start := img.rng.Intn(len(img.UniquePages))
	buf := make([]byte, mem.PageSize)
	img.Volatile = img.Volatile[:0]
	for i := 0; i < n; i++ {
		id := img.UniquePages[(start+i)%len(img.UniquePages)]
		fillPage(buf, img.rng.Uint64())
		if _, err := img.HV.VM(id.VM).Write(id.GFN, 0, buf); err != nil {
			return fmt.Errorf("tailbench: phase shift page %v: %w", id, err)
		}
		img.Volatile = append(img.Volatile, id)
	}
	return nil
}

// LiveVMs reports how many VMs are currently live (spawns minus kills).
func (img *Image) LiveVMs() int { return len(img.VMs) }

// BurstWrite models one window of an allocation burst: every VM writes n
// fresh pages into its burst region (above the resident image), faulting in
// frames on the demand path — with the stall/balloon protocol engaged if
// the arena is exhausted. dupFrac of the writes draw contents from a small
// pool shared across VMs (near-identical serverless sandboxes spinning up),
// so the scanner can merge storm pages away while the storm runs; the rest
// are unique. It returns the number of pages written, stopping early only
// when the burst region is full.
func (img *Image) BurstWrite(n int, dupFrac float64) (int, error) {
	if img.Profile.BurstPagesPerVM == 0 || n <= 0 {
		return 0, nil
	}
	if left := img.Profile.BurstPagesPerVM - img.burstUsed; n > left {
		n = left
	}
	page := make([]byte, mem.PageSize)
	salt := img.burstRNG.Uint64()
	written := 0
	for slot := 0; slot < n; slot++ {
		g := vm.GFN(img.Profile.PagesPerVM + img.burstUsed + slot)
		for i, v := range img.VMs {
			if float64(slot) < dupFrac*float64(n) {
				// Pool content: slot-indexed, shared by every VM this window.
				fillPage(page, salt+uint64(slot)*0x9E3779B97F4A7C15)
			} else {
				fillPage(page, salt^(uint64(i*img.Profile.BurstPagesPerVM+img.burstUsed+slot)*0xA24BAED4963EE407+13))
			}
			if _, err := v.Write(g, 0, page); err != nil {
				return written, fmt.Errorf("tailbench: burst page %v: %w", vm.PageID{VM: v.ID, GFN: g}, err)
			}
			written++
		}
	}
	img.burstUsed += n
	return written, nil
}

// ReleaseBurst tears the burst region down (the storm's sandboxes exit),
// releasing every written burst page in deterministic VM-then-GFN order,
// and returns the number of guest pages released. The burst region is
// reusable afterwards.
func (img *Image) ReleaseBurst() int {
	released := 0
	for _, v := range img.VMs {
		for slot := 0; slot < img.burstUsed; slot++ {
			g := vm.GFN(img.Profile.PagesPerVM + slot)
			if v.Present(g) {
				v.Release(g)
				released++
			}
		}
	}
	img.burstUsed = 0
	return released
}

// BurstResident reports guest pages currently resident in burst regions.
func (img *Image) BurstResident() int {
	resident := 0
	for _, v := range img.VMs {
		for slot := 0; slot < img.burstUsed; slot++ {
			if v.Present(vm.GFN(img.Profile.PagesPerVM + slot)) {
				resident++
			}
		}
	}
	return resident
}

// Footprint classifies the deployment's pages after deduplication, in the
// taxonomy of Figure 7, and reports page counts.
type Footprint struct {
	TotalGuestPages  int // resident guest pages across all VMs
	FramesAllocated  int // physical frames actually in use
	Unmergeable      int // guest pages mapped 1:1 to a private frame
	MergeableZero    int // guest pages sharing a zero frame
	MergeableNonZero int // guest pages sharing a non-zero frame
	ZeroFrames       int // distinct frames backing zero sharers
	NonZeroShared    int // distinct non-zero shared frames
}

// Savings reports the fractional reduction in allocated frames relative to
// one frame per resident guest page.
func (f Footprint) Savings() float64 {
	if f.TotalGuestPages == 0 {
		return 0
	}
	return 1 - float64(f.FramesAllocated)/float64(f.TotalGuestPages)
}

// MeasureFootprint classifies the current mapping state.
func (img *Image) MeasureFootprint() Footprint {
	var f Footprint
	seenFrame := map[mem.PFN]bool{}
	for _, v := range img.VMs {
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			pfn, ok := v.Resolve(g)
			if !ok {
				continue
			}
			f.TotalGuestPages++
			sharers := len(img.HV.Mappers(pfn))
			if sharers <= 1 {
				f.Unmergeable++
				continue
			}
			zero := img.HV.Phys.IsZero(pfn)
			if zero {
				f.MergeableZero++
			} else {
				f.MergeableNonZero++
			}
			if !seenFrame[pfn] {
				seenFrame[pfn] = true
				if zero {
					f.ZeroFrames++
				} else {
					f.NonZeroShared++
				}
			}
		}
	}
	f.FramesAllocated = img.HV.Phys.AllocatedFrames()
	return f
}

// AddSimilarity rewrites a fraction of each VM's unique pages as per-VM
// *variants* of common base contents: byte-identical except for a few
// VM-specific words. Same-page merging cannot exploit these, but sub-page
// techniques (Difference Engine-style patching) can — this models the
// sharing the paper's related work (§7.2) attributes to similar pages.
func (img *Image) AddSimilarity(frac float64) error {
	if frac <= 0 {
		return nil
	}
	// Group unique pages by gfn: each gfn gets one base content, each VM a
	// tiny delta on it.
	byGFN := map[vm.GFN][]vm.PageID{}
	for _, id := range img.UniquePages {
		byGFN[id.GFN] = append(byGFN[id.GFN], id)
	}
	gfns := make([]vm.GFN, 0, len(byGFN))
	for g := range byGFN {
		gfns = append(gfns, g)
	}
	sort.Slice(gfns, func(i, j int) bool { return gfns[i] < gfns[j] })
	limit := int(frac * float64(len(gfns)))
	base := make([]byte, mem.PageSize)
	for i := 0; i < limit; i++ {
		g := gfns[i]
		fillPage(base, uint64(g)*0xA24BAED4963EE407+99)
		for _, id := range byGFN[g] {
			page := append([]byte(nil), base...)
			// A VM-specific delta: 16 bytes at a VM-dependent offset.
			off := 256 + (id.VM*193)%(mem.PageSize-512)
			for k := 0; k < 16; k++ {
				page[off+k] = byte(id.VM*31 + k + 1)
			}
			if _, err := img.HV.VM(id.VM).Write(id.GFN, 0, page); err != nil {
				return fmt.Errorf("tailbench: similarity page %v: %w", id, err)
			}
		}
	}
	return nil
}
