package tailbench

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// queueProfile is a minimal profile for queueing-model tests: only QPS,
// MeanServiceCycles, and ServiceCV matter to SimulateQueueing.
func queueProfile(qps, serviceCycles, cv float64) Profile {
	return Profile{Name: "qtest", QPS: qps, MeanServiceCycles: serviceCycles, ServiceCV: cv}
}

func TestUtilizationTable(t *testing.T) {
	for _, tc := range []struct {
		name    string
		qps     float64
		service float64
		want    float64
	}{
		{"half-loaded", 1000, 1e6, 0.5},
		{"light", 100, 1e6, 0.05},
		{"near-saturation", 1900, 1e6, 0.95},
		{"slow-service", 500, 3e6, 0.75},
	} {
		p := queueProfile(tc.qps, tc.service, 0.5)
		if got := p.Utilization(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: utilization %.4f, want %.4f", tc.name, got, tc.want)
		}
	}
}

// TestLatencyMonotonicInLoad drives the open-loop simulation at increasing
// arrival rates with everything else fixed: mean sojourn latency must rise
// with load, and every point must sit at or above the no-queueing floor
// (the mean service time).
func TestLatencyMonotonicInLoad(t *testing.T) {
	const service = 1e6
	horizon := uint64(20 * sim.CyclesPerSecond)
	var prev float64
	for i, qps := range []float64{200, 800, 1400, 1800} {
		p := queueProfile(qps, service, 0.8)
		r := SimulateQueueing(p, 4, 1.0, NoBursts(), horizon, 7)
		if r.Queries == 0 {
			t.Fatalf("qps %.0f: no queries measured", qps)
		}
		if r.Mean < service*0.9 {
			t.Fatalf("qps %.0f: mean sojourn %.0f below the service floor %.0f", qps, r.Mean, service)
		}
		if r.P95 < r.Mean {
			t.Fatalf("qps %.0f: p95 %.0f below mean %.0f", qps, r.P95, r.Mean)
		}
		if i > 0 && r.Mean <= prev {
			t.Fatalf("qps %.0f: mean sojourn %.0f not above previous load's %.0f", qps, r.Mean, prev)
		}
		prev = r.Mean
	}
}

// TestLatencyMonotonicInDilation checks the other load axis: dilating
// service times (cache pollution) must raise sojourn latency.
func TestLatencyMonotonicInDilation(t *testing.T) {
	p := queueProfile(1000, 1e6, 0.8)
	horizon := uint64(10 * sim.CyclesPerSecond)
	base := SimulateQueueing(p, 4, 1.0, NoBursts(), horizon, 7)
	dilated := SimulateQueueing(p, 4, 1.3, NoBursts(), horizon, 7)
	if dilated.Mean <= base.Mean {
		t.Fatalf("dilation 1.3 did not raise mean sojourn: %.0f vs %.0f", dilated.Mean, base.Mean)
	}
}

// TestEmptyQueueEdgeCases: at negligible load the queue never forms, so
// sojourn ≈ service time; and a disabled burst schedule steals nothing.
func TestEmptyQueueEdgeCases(t *testing.T) {
	const service = 1e6
	// Deterministic service (CV 0) and ~2 arrivals per second of horizon:
	// queueing probability is negligible.
	p := queueProfile(2, service, 0)
	r := SimulateQueueing(p, 2, 1.0, NoBursts(), uint64(30*sim.CyclesPerSecond), 3)
	if r.Queries == 0 {
		t.Fatal("no queries at tiny load")
	}
	if math.Abs(r.Mean-service) > service*0.02 {
		t.Fatalf("idle-system sojourn %.0f should be ~service %.0f", r.Mean, service)
	}
	if math.Abs(r.P95-service) > service*0.02 {
		t.Fatalf("idle-system p95 %.0f should be ~service %.0f", r.P95, service)
	}

	nb := NoBursts()
	if got := nb.Bursts(0, sim.NewRNG(1)); len(got) != 0 {
		t.Fatalf("NoBursts produced %d bursts", len(got))
	}
	if got := nb.CoreShare(0); got != 0 {
		t.Fatalf("NoBursts CoreShare %f, want 0", got)
	}
}

func TestBurstsRaiseLatencyAndCoreShareSums(t *testing.T) {
	p := queueProfile(1200, 1e6, 0.8)
	horizon := uint64(10 * sim.CyclesPerSecond)
	sched := &BurstSchedule{
		IntervalCycles: 10_000_000, // 5ms
		MeanCycles:     2_000_000,  // 20% of the interval
		StdCycles:      500_000,
		ZipfS:          1.2,
		Cores:          4,
		Share:          0.5,
	}
	base := SimulateQueueing(p, 4, 1.0, NoBursts(), horizon, 11)
	loaded := SimulateQueueing(p, 4, 1.0, sched, horizon, 11)
	if loaded.Mean <= base.Mean {
		t.Fatalf("kthread bursts did not raise mean sojourn: %.0f vs %.0f", loaded.Mean, base.Mean)
	}

	// CoreShare across cores must sum to the schedule's duty cycle, with
	// the Zipf skew concentrating it on core 0.
	total := 0.0
	for c := 0; c < sched.Cores; c++ {
		total += sched.CoreShare(c)
	}
	want := sched.MeanCycles / float64(sched.IntervalCycles)
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("CoreShare sum %.4f, want duty cycle %.4f", total, want)
	}
	if sched.CoreShare(0) <= sched.CoreShare(sched.Cores-1) {
		t.Fatal("Zipf skew missing: first core should absorb the largest share")
	}
}

func TestMeasureCyclesForBounds(t *testing.T) {
	// Fast app: floor at one simulated second.
	if got := MeasureCyclesFor(queueProfile(10_000, 1e5, 0.5), 100); got != uint64(sim.CyclesPerSecond) {
		t.Fatalf("floor not applied: %d", got)
	}
	// Slow app with a huge query demand: capped at 120 seconds.
	if got := MeasureCyclesFor(queueProfile(1, 1e6, 0.5), 1_000_000); got != uint64(120*sim.CyclesPerSecond) {
		t.Fatalf("cap not applied: %d", got)
	}
	// In between: horizon covers minQueries at the arrival rate.
	p := queueProfile(100, 1e6, 0.5)
	got := MeasureCyclesFor(p, 1000)
	want := uint64(1000 / p.QPS * float64(sim.CyclesPerSecond))
	if got != want {
		t.Fatalf("horizon %d, want %d", got, want)
	}
}
