package memctrl

import (
	"bytes"
	"testing"

	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/mem"
)

func newCtrl(frames int, withHier bool) (*Controller, *mem.Phys, *cache.Hierarchy) {
	phys := mem.New(uint64(frames) * mem.PageSize)
	var hier *cache.Hierarchy
	if withHier {
		cfg := cache.DefaultHierarchyConfig()
		cfg.Cores = 2
		cfg.L1 = cache.Config{SizeBytes: 4 << 10, Ways: 4}
		cfg.L2 = cache.Config{SizeBytes: 16 << 10, Ways: 4}
		cfg.L3 = cache.Config{SizeBytes: 64 << 10, Ways: 8}
		hier = cache.NewHierarchy(cfg)
	}
	c := New(dram.New(dram.DefaultConfig()), phys, hier)
	return c, phys, hier
}

func fillFrame(p *mem.Phys) mem.PFN {
	pfn, err := p.Alloc()
	if err != nil {
		panic(err)
	}
	pg := p.Page(pfn)
	for i := range pg {
		pg[i] = byte(i * 7)
	}
	return pfn
}

func TestFetchLineFromDRAM(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	res := c.FetchLine(pfn, 3, 0, dram.SrcPageForge)
	if res.FromNetwork {
		t.Fatal("no hierarchy attached but serviced from network")
	}
	if !bytes.Equal(res.Data, phys.ReadLine(pfn, 3)) {
		t.Fatal("wrong line data")
	}
	if res.Code != ecc.EncodeLine(res.Data) {
		t.Fatal("ECC code mismatch")
	}
	if res.Latency == 0 {
		t.Fatal("DRAM fetch with zero latency")
	}
	if c.Stats.PFDRAMReads != 1 || c.Stats.ECCDecodes != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
	if c.DRAM.TotalBytes(dram.SrcPageForge) != 64 {
		t.Fatal("traffic not attributed to PageForge")
	}
}

func TestFetchLineFromNetwork(t *testing.T) {
	c, phys, hier := newCtrl(4, true)
	pfn := fillFrame(phys)
	addr := uint64(pfn.LineAddr(5))
	hier.Access(0, addr, false, cache.SrcApp) // line now cached
	res := c.FetchLine(pfn, 5, 0, dram.SrcPageForge)
	if !res.FromNetwork {
		t.Fatal("cached line not serviced from the network")
	}
	if res.Latency != c.NetworkLatency {
		t.Fatalf("latency = %d, want %d", res.Latency, c.NetworkLatency)
	}
	if c.Stats.PFNetworkHits != 1 {
		t.Fatal("network hit not counted")
	}
	// The controller's encoder produced the code.
	if res.Code != ecc.EncodeLine(res.Data) {
		t.Fatal("encoder code mismatch")
	}
	if c.DRAM.TotalBytes(dram.SrcPageForge) != 0 {
		t.Fatal("network-serviced fetch generated DRAM traffic")
	}
}

func TestFetchLineCoalescing(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	first := c.FetchLine(pfn, 0, 100, dram.SrcPageForge)
	// A second request for the same line while the first is in flight.
	second := c.FetchLine(pfn, 0, 110, dram.SrcPageForge)
	if c.Stats.PFCoalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", c.Stats.PFCoalesced)
	}
	if second.Latency >= first.Latency {
		t.Fatal("coalesced request did not finish with the pending one")
	}
	if 110+second.Latency != 100+first.Latency {
		t.Fatal("coalesced completion time mismatch")
	}
	// After completion, a new fetch is a fresh DRAM access.
	c.FetchLine(pfn, 0, 100+first.Latency+1, dram.SrcPageForge)
	if c.Stats.PFDRAMReads != 2 {
		t.Fatal("post-completion fetch should go to DRAM")
	}
}

func TestDemandCoalescesWithPageForge(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	pf := c.FetchLine(pfn, 0, 100, dram.SrcPageForge)
	lat := c.DemandAccess(uint64(pfn.LineAddr(0)), 110, false, dram.SrcCore)
	if c.Stats.DemandCoalesced != 1 {
		t.Fatal("demand read did not coalesce with in-flight PageForge read")
	}
	if c.Stats.PFCoalesced != 0 {
		t.Fatal("demand-side coalescing miscounted as PageForge coalescing")
	}
	if 110+lat != 100+pf.Latency {
		t.Fatal("coalesced demand completion mismatch")
	}
}

func TestDemandCoalescesWithDemand(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	addr := uint64(pfn.LineAddr(0))
	first := c.DemandAccess(addr, 100, false, dram.SrcCore)
	second := c.DemandAccess(addr, 110, false, dram.SrcCore)
	if c.Stats.DemandCoalesced != 1 || c.Stats.PFCoalesced != 0 {
		t.Fatalf("demand/demand coalescing misattributed: %+v", c.Stats)
	}
	if 110+second != 100+first {
		t.Fatal("coalesced demand completion mismatch")
	}
	if p := c.pending[addr]; p.src != dram.SrcCore {
		t.Fatalf("pending entry tagged %v, want demand source", p.src)
	}
}

func TestFetchCoalescesWithDemand(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	addr := uint64(pfn.LineAddr(0))
	lat := c.DemandAccess(addr, 100, false, dram.SrcCore)
	res := c.FetchLine(pfn, 0, 110, dram.SrcPageForge)
	if c.Stats.PFCoalesced != 1 || c.Stats.DemandCoalesced != 0 {
		t.Fatalf("PageForge-side coalescing misattributed: %+v", c.Stats)
	}
	if 110+res.Latency != 100+lat {
		t.Fatal("coalesced fetch completion mismatch")
	}
}

func TestDemandWriteInvalidatesPending(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	addr := uint64(pfn.LineAddr(0))
	c.DemandAccess(addr, 100, false, dram.SrcCore) // read in flight
	c.DemandAccess(addr, 110, true, dram.SrcCore)  // write to the same line
	if _, ok := c.pending[addr]; ok {
		t.Fatal("write left the pending read entry alive")
	}
	// A later read must be a fresh DRAM access, not a fold into the
	// pre-write read's completion window.
	reads := c.Stats.ECCDecodes
	c.DemandAccess(addr, 120, false, dram.SrcCore)
	if c.Stats.DemandCoalesced != 0 {
		t.Fatal("post-write read coalesced into the stale pending entry")
	}
	if c.Stats.ECCDecodes != reads+1 {
		t.Fatal("post-write read did not go to DRAM")
	}
}

func TestDemandWriteEncodesECC(t *testing.T) {
	c, _, _ := newCtrl(4, false)
	c.DemandAccess(0, 0, true, dram.SrcCore)
	if c.Stats.DemandWrites != 1 || c.Stats.ECCEncodes != 1 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestFaultInjectionPath(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	// Single-bit flip: corrected, and the returned data is the repaired
	// (clean) line with its clean code.
	c.Faults = FaultFunc(func(addr uint64, line []byte) { line[0] ^= 0x01 })
	res := c.FetchLine(pfn, 0, 0, dram.SrcPageForge)
	if c.Stats.ECCCorrected != 1 {
		t.Fatalf("corrected = %d, want 1", c.Stats.ECCCorrected)
	}
	if res.Poisoned {
		t.Fatal("corrected fetch reported poisoned")
	}
	if !bytes.Equal(res.Data, phys.ReadLine(pfn, 0)) {
		t.Fatal("corrected fetch returned corrupted data")
	}
	if res.Code != ecc.EncodeLine(phys.ReadLine(pfn, 0)) {
		t.Fatal("corrected fetch returned a dirty code")
	}
	// Double-bit flip in one word: detected, uncorrectable, poisoned, and
	// the code is zeroed so it can never feed a minikey.
	c.Faults = FaultFunc(func(addr uint64, line []byte) { line[1] ^= 0x03 })
	res = c.FetchLine(pfn, 1, 1_000_000, dram.SrcPageForge)
	if c.Stats.ECCUncorrectable != 1 {
		t.Fatalf("uncorrectable = %d, want 1", c.Stats.ECCUncorrectable)
	}
	if !res.Poisoned {
		t.Fatal("uncorrectable fetch not poisoned")
	}
	if res.Code != (ecc.LineCode{}) {
		t.Fatal("poisoned fetch leaked an ECC code")
	}
}

// rewriteRecorder verifies the controller notifies the fault model of
// line write-backs.
type rewriteRecorder struct {
	rewrites map[uint64]uint64
}

func (r *rewriteRecorder) Corrupt(addr, now uint64, line []byte) {}
func (r *rewriteRecorder) Rewrite(addr, now uint64)              { r.rewrites[addr] = now }

func TestDemandWriteNotifiesFaultModel(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	rec := &rewriteRecorder{rewrites: make(map[uint64]uint64)}
	c.Faults = rec
	addr := uint64(pfn.LineAddr(2))
	c.DemandAccess(addr, 500, true, dram.SrcCore)
	if now, ok := rec.rewrites[addr]; !ok || now != 500 {
		t.Fatalf("write did not reach the fault model: %v", rec.rewrites)
	}
}

func TestPendingMapPruning(t *testing.T) {
	c, phys, _ := newCtrl(8, false)
	pfn := fillFrame(phys)
	// Far more distinct line requests than the prune threshold, spread over
	// time so earlier ones expire.
	now := uint64(0)
	for i := 0; i < 5000; i++ {
		li := i % mem.LinesPerPage
		c.FetchLine(pfn, li, now, dram.SrcPageForge)
		now += 1_000_000
	}
	if len(c.pending) > 4200 {
		t.Fatalf("pending map grew to %d entries", len(c.pending))
	}
}
