package memctrl

import (
	"sort"

	"repro/internal/dram"
)

// Checkpoint support. The controller's only mutable state beyond the stats
// is the in-flight read map, serialized as a sorted slice (maps have no
// stable order); coalescing decisions after a restore then see exactly the
// completion windows the uninterrupted run would have seen.

// PendingState is one serialized in-flight read.
type PendingState struct {
	Addr uint64
	Done uint64
	Src  dram.Source
}

// ControllerState is the serialized image of a Controller.
type ControllerState struct {
	Stats   Stats
	Pending []PendingState
}

// State captures the controller.
func (c *Controller) State() ControllerState {
	st := ControllerState{Stats: c.Stats}
	for addr, p := range c.pending {
		st.Pending = append(st.Pending, PendingState{Addr: addr, Done: p.done, Src: p.src})
	}
	sort.Slice(st.Pending, func(i, j int) bool { return st.Pending[i].Addr < st.Pending[j].Addr })
	return st
}

// SetState restores the controller in place.
func (c *Controller) SetState(st ControllerState) {
	c.Stats = st.Stats
	c.pending = make(map[uint64]pendingRead, len(st.Pending))
	for _, p := range st.Pending {
		c.pending[p.Addr] = pendingRead{done: p.Done, src: p.Src}
	}
}

// ScrubberState is the serialized image of a Scrubber.
type ScrubberState struct {
	Cursor  uint64
	Stats   ScrubStats
	UEAddrs []uint64
}

// State captures the scrubber.
func (s *Scrubber) State() ScrubberState {
	return ScrubberState{
		Cursor:  s.cursor,
		Stats:   s.Stats,
		UEAddrs: append([]uint64(nil), s.UEAddrs...),
	}
}

// SetState restores the scrubber in place.
func (s *Scrubber) SetState(st ScrubberState) {
	s.cursor = st.Cursor
	s.Stats = st.Stats
	s.UEAddrs = append(s.UEAddrs[:0], st.UEAddrs...)
}
