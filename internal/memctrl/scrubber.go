package memctrl

import (
	"repro/internal/dram"
	"repro/internal/mem"
	"repro/internal/obs"
)

// ueLogCap bounds the scrubber's uncorrectable-address log.
const ueLogCap = 64

// ScrubStats counts patrol-scrub activity.
type ScrubStats struct {
	Lines         uint64 // allocated lines read and checked
	Corrected     uint64 // correctable lines found (and rewritten)
	Uncorrectable uint64 // poisoned lines found (logged, left in place)
	Rewrites      uint64 // repair write-backs issued
	BusyCycles    uint64 // DRAM occupancy the scrub walk consumed
	Wraps         uint64 // full passes over the physical array
}

// Scrubber is the controller's patrol-scrub engine: it walks the physical
// array line by line on a per-call budget, issuing background-class DRAM
// reads (dram.SrcScrub — demand traffic preempts them exactly like
// PageForge traffic), re-encoding and writing back lines the SECDED
// engine corrected, and logging uncorrectable lines for policy. Scrubbing
// is what keeps latent retention errors from accumulating past the
// correction capability.
type Scrubber struct {
	MC *Controller

	// Trace receives per-slice and UE-discovery events when enabled.
	Trace obs.Scope

	cursor uint64 // next line index over the physical array
	Stats  ScrubStats
	// UEAddrs logs the first ueLogCap uncorrectable line addresses found.
	UEAddrs []uint64
}

// Step scrubs up to budget allocated lines starting at cycle now and
// returns the cycle at which the last scrub access finished (now itself
// when nothing was scrubbed). Unallocated frames are skipped without DRAM
// traffic; the cursor persists across calls and wraps at the end of the
// array.
func (s *Scrubber) Step(now uint64, budget int) uint64 {
	phys := s.MC.Phys
	totalLines := uint64(phys.TotalFrames()) * uint64(mem.LinesPerPage)
	if totalLines == 0 || budget <= 0 {
		return now
	}
	start := now
	issued := 0
	defer func() {
		if issued > 0 && s.Trace.Enabled() {
			s.Trace.Complete(obs.TIDScrub, "scrub", "scrub_slice", start, now-start, "lines", uint64(issued))
		}
	}()
	// One array's worth of cursor advances per call bounds the skip walk
	// when little memory is allocated.
	for iter := uint64(0); iter < totalLines && issued < budget; iter++ {
		idx := s.cursor % totalLines
		s.cursor++
		if s.cursor%totalLines == 0 {
			s.Stats.Wraps++
		}
		pfn := mem.PFN(idx / uint64(mem.LinesPerPage))
		li := int(idx % uint64(mem.LinesPerPage))
		if !phys.Allocated(pfn) {
			continue
		}
		issued++
		addr := uint64(pfn.LineAddr(li))
		lat := s.MC.DRAM.Access(addr, now, false, dram.SrcScrub)
		s.MC.Stats.ECCDecodes++
		corrBefore := s.MC.Stats.ECCCorrected
		res := s.MC.readDIMM(addr, now, phys.ReadLine(pfn, li))
		s.Stats.Lines++
		now += lat
		s.Stats.BusyCycles += lat
		switch {
		case res.Poisoned:
			// Uncorrectable: the scrubber cannot repair it — log the
			// address so policy (quarantine, degradation) can act.
			s.Stats.Uncorrectable++
			if len(s.UEAddrs) < ueLogCap {
				s.UEAddrs = append(s.UEAddrs, addr)
			}
			if s.Trace.Enabled() {
				s.Trace.Instant(obs.TIDScrub, "ras", "scrub_ue", now, "addr", addr)
			}
		case s.MC.Stats.ECCCorrected > corrBefore:
			// Corrected: write the repaired line back, clearing the
			// array's accumulated soft errors before they compound.
			wlat := s.MC.DRAM.Access(addr, now, true, dram.SrcScrub)
			s.MC.Stats.ECCEncodes++
			if s.MC.Faults != nil {
				s.MC.Faults.Rewrite(addr, now)
			}
			now += wlat
			s.Stats.BusyCycles += wlat
			s.Stats.Corrected++
			s.Stats.Rewrites++
		}
	}
	return now
}
