package memctrl

import (
	"bytes"
	"testing"

	"repro/internal/dram"
	"repro/internal/mem"
)

func TestScrubTrafficIsBackgroundClass(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	fillFrame(phys) // PFN 0
	scrub := &Scrubber{MC: c}

	end := scrub.Step(0, 4)
	if scrub.Stats.Lines != 4 || end == 0 {
		t.Fatalf("scrubbed %d lines, end=%d", scrub.Stats.Lines, end)
	}
	// Attribution: every scrub byte lands on the scrub source, none on the
	// demand or PageForge sources.
	if got := c.DRAM.Stats.BytesBySrc[dram.SrcScrub]; got != 4*mem.LineSize {
		t.Fatalf("scrub bytes = %d, want %d", got, 4*mem.LineSize)
	}
	if c.DRAM.Stats.AccessBySrc[dram.SrcCore] != 0 || c.DRAM.Stats.AccessBySrc[dram.SrcPageForge] != 0 {
		t.Fatal("scrub traffic leaked onto another source")
	}

	// Preemption: a demand read arriving while the scrubber owns the bank
	// waits only for the non-preemptible residual (TCL+TBurst), not the
	// whole reservation.
	dcfg := c.DRAM.Config()
	residual := dcfg.TCL + dcfg.TBurst
	addr := uint64(mem.PFN(0).LineAddr(3)) // the last line scrubbed
	demandAt := end - residual - 20        // raw bank wait would exceed the cap
	c.DemandAccess(addr, demandAt, false, dram.SrcCore)
	if wait := c.DRAM.Stats.BankWaitBySrc[dram.SrcCore]; wait != residual {
		t.Fatalf("demand bank wait = %d, want the %d-cycle residual cap", wait, residual)
	}
}

// healableFault corrupts one line persistently until it is rewritten —
// the retention-error shape patrol scrubbing exists to repair.
type healableFault struct {
	addr   uint64
	healed bool
}

func (h *healableFault) Corrupt(addr, now uint64, line []byte) {
	if addr == h.addr && !h.healed {
		line[0] ^= 0x01
	}
}
func (h *healableFault) Rewrite(addr, now uint64) {
	if addr == h.addr {
		h.healed = true
	}
}

func TestScrubRewritesCorrectableLines(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	fault := &healableFault{addr: uint64(pfn.LineAddr(5))}
	c.Faults = fault

	// The fault is live: a fetch sees a corrected line (clean data).
	res := c.FetchLine(pfn, 5, 0, dram.SrcPageForge)
	if c.Stats.ECCCorrected != 1 || res.Poisoned {
		t.Fatalf("expected one corrected fetch, stats %+v", c.Stats)
	}
	if !bytes.Equal(res.Data, phys.ReadLine(pfn, 5)) {
		t.Fatal("corrected fetch returned dirty data")
	}

	// A scrub pass over the frame finds the line, corrects it, and writes
	// it back, clearing the fault.
	scrub := &Scrubber{MC: c}
	scrub.Step(10_000, mem.LinesPerPage)
	if scrub.Stats.Corrected != 1 || scrub.Stats.Rewrites != 1 {
		t.Fatalf("scrub stats %+v", scrub.Stats)
	}
	if !fault.healed {
		t.Fatal("scrub rewrite did not reach the fault model")
	}
	if scrub.Stats.Uncorrectable != 0 {
		t.Fatal("correctable line logged as UE")
	}

	// Healed: later fetches decode clean.
	corrected := c.Stats.ECCCorrected
	c.FetchLine(pfn, 5, 1_000_000, dram.SrcPageForge)
	if c.Stats.ECCCorrected != corrected {
		t.Fatal("fault still live after scrub rewrite")
	}
}

func TestScrubLogsUncorrectableLines(t *testing.T) {
	c, phys, _ := newCtrl(4, false)
	pfn := fillFrame(phys)
	ueAddr := uint64(pfn.LineAddr(7))
	c.Faults = FaultFunc(func(addr uint64, line []byte) {
		if addr == ueAddr {
			line[0] ^= 0x03 // double-bit: uncorrectable
		}
	})
	scrub := &Scrubber{MC: c}
	scrub.Step(0, mem.LinesPerPage)
	if scrub.Stats.Uncorrectable != 1 {
		t.Fatalf("scrub stats %+v", scrub.Stats)
	}
	if len(scrub.UEAddrs) != 1 || scrub.UEAddrs[0] != ueAddr {
		t.Fatalf("UE log %v, want [%d]", scrub.UEAddrs, ueAddr)
	}
	if scrub.Stats.Rewrites != 0 {
		t.Fatal("scrubber tried to rewrite an uncorrectable line")
	}
}

func TestScrubSkipsUnallocatedFrames(t *testing.T) {
	c, phys, _ := newCtrl(8, false)
	fillFrame(phys) // only PFN 0 allocated
	scrub := &Scrubber{MC: c}
	scrub.Step(0, 1000) // budget far above the allocated line count
	if scrub.Stats.Lines != mem.LinesPerPage {
		t.Fatalf("scrubbed %d lines, want %d (one allocated frame per wrap)",
			scrub.Stats.Lines, mem.LinesPerPage)
	}
	if c.DRAM.Stats.AccessBySrc[dram.SrcScrub] != uint64(mem.LinesPerPage) {
		t.Fatal("unallocated frames generated DRAM traffic")
	}
}
