// Package memctrl models the memory controller of Figure 3: read/write
// request paths with the ECC encode/decode engine on the data path, request
// coalescing between demand traffic and PageForge traffic, and the line
// fetch service the PageForge module uses ("issue each request to the
// on-chip network first; otherwise place it in the Read Request Buffer").
package memctrl

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/mem"
)

// Stats counts controller activity.
type Stats struct {
	DemandReads      uint64
	DemandWrites     uint64
	PFFetches        uint64 // PageForge line fetches requested
	PFNetworkHits    uint64 // serviced by the on-chip network (caches)
	PFDRAMReads      uint64 // serviced by the local DRAM
	PFCoalesced      uint64 // PageForge fetches folded into an in-flight read
	DemandCoalesced  uint64 // demand reads folded into an in-flight read
	ECCEncodes       uint64 // lines encoded (writes + network-serviced fetches)
	ECCDecodes       uint64 // lines decoded (DRAM reads)
	ECCCorrected     uint64
	ECCUncorrectable uint64
}

// pendingRead is one in-flight read: its completion cycle and the source
// that issued it, so coalescing can be attributed to the right side.
type pendingRead struct {
	done uint64
	src  dram.Source
}

// Controller is one memory controller. The platform instantiates two and
// places the PageForge module in one of them (Figure 5).
type Controller struct {
	DRAM *dram.DRAM
	Phys *mem.Phys
	// Hier, when set, is probed for cached copies before going to DRAM on
	// PageForge fetches. Demand traffic arrives *from* the hierarchy, so it
	// never probes.
	Hier *cache.Hierarchy
	// NetworkLatency is the round-trip cost of a network-serviced fetch.
	NetworkLatency uint64
	// FaultInject, when set, flips bits in fetched line data before ECC
	// decoding (testing hook for the SECDED path).
	FaultInject func(addr uint64, line []byte)

	Stats   Stats
	pending map[uint64]pendingRead // line addr -> in-flight read
}

// New wires a controller over a DRAM model and backing store.
func New(d *dram.DRAM, phys *mem.Phys, hier *cache.Hierarchy) *Controller {
	return &Controller{
		DRAM:           d,
		Phys:           phys,
		Hier:           hier,
		NetworkLatency: 40, // bus + L3 tag + transfer on the 512b bus
		pending:        make(map[uint64]pendingRead),
	}
}

// DemandAccess services a cache-hierarchy fill or write-back at cycle now
// and returns its latency. Reads coalesce with any in-flight read for the
// same line — PageForge-issued (Section 3.2.2) or earlier demand traffic —
// counted under Stats.DemandCoalesced; writes invalidate the pending entry
// so later reads cannot fold into a pre-write completion window. src
// attributes the DRAM traffic: core demand, or the software KSM kthread
// streaming pages through the caches.
func (c *Controller) DemandAccess(addr uint64, now uint64, write bool, src dram.Source) uint64 {
	lineAddr := addr &^ uint64(mem.LineSize-1)
	if write {
		c.Stats.DemandWrites++
		c.Stats.ECCEncodes++
		// The write supersedes any in-flight read for this line: a later
		// read must not coalesce into the pre-write read's completion
		// window and observe stale data timing.
		delete(c.pending, lineAddr)
		return c.DRAM.Access(lineAddr, now, true, src)
	}
	c.Stats.DemandReads++
	if p, ok := c.pending[lineAddr]; ok && p.done > now {
		c.Stats.DemandCoalesced++
		return p.done - now
	}
	c.Stats.ECCDecodes++
	lat := c.DRAM.Access(lineAddr, now, false, src)
	c.trackPending(lineAddr, now, now+lat, src)
	return lat
}

// FetchResult describes a PageForge line fetch.
type FetchResult struct {
	Data    []byte
	Code    ecc.LineCode
	Latency uint64
	// FromNetwork reports whether a cache supplied the line; the ECC code
	// was then produced by the controller's encoder rather than the DIMM.
	FromNetwork bool
}

// FetchLine services a PageForge request for one line of a physical frame
// at cycle now, per Section 3.2.2 / 3.3.2: probe the on-chip network first;
// otherwise coalesce with pending requests or access DRAM, attributing the
// traffic to the PageForge source.
func (c *Controller) FetchLine(pfn mem.PFN, lineIdx int, now uint64, src dram.Source) FetchResult {
	c.Stats.PFFetches++
	addr := uint64(pfn.LineAddr(lineIdx))
	data := c.Phys.ReadLine(pfn, lineIdx)

	if c.Hier != nil && c.Hier.ProbeNetwork(addr) {
		// Serviced from a cache: the response passes through the memory
		// controller and the ECC engine generates the code on the fly.
		c.Stats.PFNetworkHits++
		c.Stats.ECCEncodes++
		return FetchResult{Data: data, Code: ecc.EncodeLine(data), Latency: c.NetworkLatency, FromNetwork: true}
	}

	if p, ok := c.pending[addr]; ok && p.done > now {
		// Another request for this line is already in flight: coalesce.
		c.Stats.PFCoalesced++
		return FetchResult{Data: data, Code: c.dimmCode(addr, data), Latency: p.done - now}
	}

	c.Stats.PFDRAMReads++
	c.Stats.ECCDecodes++
	lat := c.DRAM.Access(addr, now, false, src)
	c.trackPending(addr, now, now+lat, src)
	return FetchResult{Data: data, Code: c.dimmCode(addr, data), Latency: lat}
}

// dimmCode produces the ECC code that arrives from the DIMM's spare chip
// alongside the line. The simulation stores no separate ECC array — codes
// are recomputed, which is bit-identical for error-free DIMMs. The fault
// injection hook corrupts the data *after* code generation so the decode
// path sees a genuine mismatch.
func (c *Controller) dimmCode(addr uint64, data []byte) ecc.LineCode {
	code := ecc.EncodeLine(data)
	if c.FaultInject != nil {
		corrupted := make([]byte, len(data))
		copy(corrupted, data)
		c.FaultInject(addr, corrupted)
		if _, st := ecc.DecodeLine(corrupted, code); st == ecc.CorrectedData || st == ecc.CorrectedCheck {
			c.Stats.ECCCorrected++
		} else if st == ecc.DetectedDouble {
			c.Stats.ECCUncorrectable++
		}
	}
	return code
}

// trackPending records an in-flight read and prunes already-completed
// entries so the map stays small.
func (c *Controller) trackPending(addr, now, done uint64, src dram.Source) {
	if len(c.pending) > 4096 {
		for a, p := range c.pending {
			if p.done <= now {
				delete(c.pending, a)
			}
		}
	}
	c.pending[addr] = pendingRead{done: done, src: src}
}
