// Package memctrl models the memory controller of Figure 3: read/write
// request paths with the ECC encode/decode engine on the data path, request
// coalescing between demand traffic and PageForge traffic, and the line
// fetch service the PageForge module uses ("issue each request to the
// on-chip network first; otherwise place it in the Read Request Buffer").
package memctrl

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/mem"
)

// Stats counts controller activity.
type Stats struct {
	DemandReads      uint64
	DemandWrites     uint64
	PFFetches        uint64 // PageForge line fetches requested
	PFNetworkHits    uint64 // serviced by the on-chip network (caches)
	PFDRAMReads      uint64 // serviced by the local DRAM
	PFCoalesced      uint64 // PageForge fetches folded into an in-flight read
	DemandCoalesced  uint64 // demand reads folded into an in-flight read
	ECCEncodes       uint64 // lines encoded (writes + network-serviced fetches)
	ECCDecodes       uint64 // lines decoded (DRAM reads)
	ECCCorrected     uint64
	ECCUncorrectable uint64
}

// pendingRead is one in-flight read: its completion cycle and the source
// that issued it, so coalescing can be attributed to the right side.
type pendingRead struct {
	done uint64
	src  dram.Source
}

// FaultModel corrupts line data arriving from the DRAM array before the
// controller's ECC decoder sees it. Implementations must be deterministic
// for a deterministic access sequence (the RAS experiments depend on it).
// Rewrite tells the model a line was re-encoded and written back — a
// demand write or a patrol-scrub repair — clearing accumulated soft
// errors; hard faults survive it. faults.Model is the production
// implementation; FaultFunc adapts ad-hoc test closures.
type FaultModel interface {
	Corrupt(addr, now uint64, line []byte)
	Rewrite(addr, now uint64)
}

// FaultFunc adapts a plain corruption closure (the old FaultInject test
// hook) to the FaultModel interface; rewrites are ignored.
type FaultFunc func(addr uint64, line []byte)

// Corrupt applies the closure.
func (f FaultFunc) Corrupt(addr, now uint64, line []byte) { f(addr, line) }

// Rewrite is a no-op: closure-injected faults carry no array state.
func (f FaultFunc) Rewrite(addr, now uint64) {}

// Controller is one memory controller. The platform instantiates two and
// places the PageForge module in one of them (Figure 5).
type Controller struct {
	DRAM *dram.DRAM
	Phys *mem.Phys
	// Hier, when set, is probed for cached copies before going to DRAM on
	// PageForge fetches. Demand traffic arrives *from* the hierarchy, so it
	// never probes.
	Hier *cache.Hierarchy
	// NetworkLatency is the round-trip cost of a network-serviced fetch.
	NetworkLatency uint64
	// Faults, when set, corrupts line data fetched from the DIMM before
	// ECC decoding (the RAS layer's DRAM fault model).
	Faults FaultModel

	Stats   Stats
	pending map[uint64]pendingRead // line addr -> in-flight read
}

// New wires a controller over a DRAM model and backing store.
func New(d *dram.DRAM, phys *mem.Phys, hier *cache.Hierarchy) *Controller {
	return &Controller{
		DRAM:           d,
		Phys:           phys,
		Hier:           hier,
		NetworkLatency: 40, // bus + L3 tag + transfer on the 512b bus
		pending:        make(map[uint64]pendingRead),
	}
}

// DemandAccess services a cache-hierarchy fill or write-back at cycle now
// and returns its latency. Reads coalesce with any in-flight read for the
// same line — PageForge-issued (Section 3.2.2) or earlier demand traffic —
// counted under Stats.DemandCoalesced; writes invalidate the pending entry
// so later reads cannot fold into a pre-write completion window. src
// attributes the DRAM traffic: core demand, or the software KSM kthread
// streaming pages through the caches.
func (c *Controller) DemandAccess(addr uint64, now uint64, write bool, src dram.Source) uint64 {
	lineAddr := addr &^ uint64(mem.LineSize-1)
	if write {
		c.Stats.DemandWrites++
		c.Stats.ECCEncodes++
		// The write supersedes any in-flight read for this line: a later
		// read must not coalesce into the pre-write read's completion
		// window and observe stale data timing.
		delete(c.pending, lineAddr)
		if c.Faults != nil {
			// A write re-encodes the line: accumulated soft errors in the
			// array are overwritten along with the data.
			c.Faults.Rewrite(lineAddr, now)
		}
		return c.DRAM.Access(lineAddr, now, true, src)
	}
	c.Stats.DemandReads++
	if p, ok := c.pending[lineAddr]; ok && p.done > now {
		c.Stats.DemandCoalesced++
		return p.done - now
	}
	c.Stats.ECCDecodes++
	lat := c.DRAM.Access(lineAddr, now, false, src)
	c.trackPending(lineAddr, now, now+lat, src)
	return lat
}

// FetchResult describes a PageForge line fetch.
type FetchResult struct {
	Data    []byte
	Code    ecc.LineCode
	Latency uint64
	// FromNetwork reports whether a cache supplied the line; the ECC code
	// was then produced by the controller's encoder rather than the DIMM.
	FromNetwork bool
	// Poisoned reports an uncorrectable ECC error: Data is the raw
	// corrupted read, Code is zeroed, and neither may be consumed — not
	// for comparison verdicts and not for hash minikeys. The requester
	// must retry, fall back to software, or quarantine.
	Poisoned bool
}

// FetchLine services a PageForge request for one line of a physical frame
// at cycle now, per Section 3.2.2 / 3.3.2: probe the on-chip network first;
// otherwise coalesce with pending requests or access DRAM, attributing the
// traffic to the PageForge source.
func (c *Controller) FetchLine(pfn mem.PFN, lineIdx int, now uint64, src dram.Source) FetchResult {
	c.Stats.PFFetches++
	addr := uint64(pfn.LineAddr(lineIdx))
	data := c.Phys.ReadLine(pfn, lineIdx)

	if c.Hier != nil && c.Hier.ProbeNetwork(addr) {
		// Serviced from a cache: the response passes through the memory
		// controller and the ECC engine generates the code on the fly.
		c.Stats.PFNetworkHits++
		c.Stats.ECCEncodes++
		return FetchResult{Data: data, Code: ecc.EncodeLine(data), Latency: c.NetworkLatency, FromNetwork: true}
	}

	if p, ok := c.pending[addr]; ok && p.done > now {
		// Another request for this line is already in flight: coalesce.
		c.Stats.PFCoalesced++
		res := c.readDIMM(addr, now, data)
		res.Latency = p.done - now
		return res
	}

	c.Stats.PFDRAMReads++
	c.Stats.ECCDecodes++
	lat := c.DRAM.Access(addr, now, false, src)
	c.trackPending(addr, now, now+lat, src)
	res := c.readDIMM(addr, now, data)
	res.Latency = lat
	return res
}

// readDIMM models the DIMM read data path. The stored ECC code arrives
// from the spare chip alongside the line (the simulation stores no
// separate ECC array — codes are recomputed, bit-identical for error-free
// cells), the fault model corrupts the wire/array data, and the decode
// engine corrects what it can. An uncorrectable error yields a Poisoned
// result carrying the raw corrupted data and a zero code; a corrected
// error yields the repaired data with the (clean) stored code, so
// minikeys always derive from post-correction content.
func (c *Controller) readDIMM(addr, now uint64, data []byte) FetchResult {
	code := ecc.EncodeLine(data)
	if c.Faults == nil {
		return FetchResult{Data: data, Code: code}
	}
	raw := make([]byte, len(data))
	copy(raw, data)
	c.Faults.Corrupt(addr, now, raw)
	decoded, st := ecc.DecodeLine(raw, code)
	switch st {
	case ecc.OK:
		return FetchResult{Data: data, Code: code}
	case ecc.CorrectedData, ecc.CorrectedCheck:
		c.Stats.ECCCorrected++
		return FetchResult{Data: decoded, Code: code}
	default:
		c.Stats.ECCUncorrectable++
		return FetchResult{Data: raw, Poisoned: true}
	}
}

// trackPending records an in-flight read and prunes already-completed
// entries so the map stays small.
func (c *Controller) trackPending(addr, now, done uint64, src dram.Source) {
	if len(c.pending) > 4096 {
		for a, p := range c.pending {
			if p.done <= now {
				delete(c.pending, a)
			}
		}
	}
	c.pending[addr] = pendingRead{done: done, src: src}
}
