package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

type testPayload struct {
	Name    string
	Passes  int
	Arena   []byte
	Cursors []uint64
}

func samplePayload() testPayload {
	return testPayload{
		Name:    "converge",
		Passes:  7,
		Arena:   bytes.Repeat([]byte{0xAB, 0x00, 0x11}, 1000),
		Cursors: []uint64{3, 1, 4, 1, 5, 9, 2, 6},
	}
}

func TestRoundTrip(t *testing.T) {
	in := samplePayload()
	blob, err := Encode(3, in)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var out testPayload
	if err := Decode(blob, 3, &out); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if out.Name != in.Name || out.Passes != in.Passes ||
		!bytes.Equal(out.Arena, in.Arena) || len(out.Cursors) != len(in.Cursors) {
		t.Fatalf("round trip mismatch: %+v", out)
	}
	if v, err := Version(blob); err != nil || v != 3 {
		t.Fatalf("Version = %d, %v; want 3, nil", v, err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(1, samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(1, samplePayload())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodes of the same payload differ")
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	blob, _ := Encode(2, samplePayload())
	var out testPayload
	if err := Decode(blob, 5, &out); !errors.Is(err, ErrVersion) {
		t.Fatalf("got %v, want ErrVersion", err)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	blob, _ := Encode(1, samplePayload())
	for _, n := range []int{0, 5, headerSize - 1, headerSize, len(blob) - 1} {
		var out testPayload
		err := Decode(blob[:n], 1, &out)
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated to %d bytes: got %v, want ErrTruncated", n, err)
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	blob, _ := Encode(1, samplePayload())
	blob[0] ^= 0xFF
	var out testPayload
	if err := Decode(blob, 1, &out); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	blob, _ := Encode(1, samplePayload())
	blob[headerSize+10] ^= 0x01
	var out testPayload
	if err := Decode(blob, 1, &out); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestDecodeRejectsWrongPayloadType(t *testing.T) {
	blob, _ := Encode(1, samplePayload())
	var out struct{ Totally int }
	if err := Decode(blob, 1, &out); !errors.Is(err, ErrPayload) {
		t.Fatalf("got %v, want ErrPayload", err)
	}
}
