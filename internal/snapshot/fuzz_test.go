package snapshot

import (
	"encoding/binary"
	"testing"
)

// FuzzSnapshotDecode drives the decoder with arbitrary input. The contract
// under test: Decode never panics and never reports success on an envelope
// whose checksum does not cover the payload it hands back. Corrupt,
// truncated, and version-skewed inputs must all surface as errors.
func FuzzSnapshotDecode(f *testing.F) {
	good, err := Encode(1, samplePayload())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good, uint32(1))
	f.Add(good[:len(good)-3], uint32(1))
	f.Add(good[:headerSize], uint32(1))
	f.Add([]byte{}, uint32(0))
	f.Add([]byte("PFSNAP01"), uint32(1))
	skew := append([]byte(nil), good...)
	binary.BigEndian.PutUint32(skew[8:12], 99)
	f.Add(skew, uint32(1))
	flipped := append([]byte(nil), good...)
	flipped[headerSize+1] ^= 0x40
	f.Add(flipped, uint32(1))

	f.Fuzz(func(t *testing.T, blob []byte, version uint32) {
		var out testPayload
		_ = Decode(blob, version, &out) // must not panic
		_, _ = Version(blob)
	})
}
