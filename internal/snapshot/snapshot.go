// Package snapshot is the versioned checkpoint codec: a self-describing
// envelope (magic, version, payload length, checksum) around a gob-encoded
// payload. The codec itself is payload-agnostic; the platform defines what
// a full simulator checkpoint contains.
//
// Determinism contract: encoding the same payload value twice yields
// byte-identical blobs. That requires payloads built from slices, arrays,
// and scalars only — gob serializes map entries in iteration order, which
// Go randomizes, so payload types must not contain maps (state accessors
// across the tree serialize their maps as sorted slices for this reason).
//
// Robustness contract: Decode never panics. Corrupt, truncated, or
// version-skewed input returns a typed error — the recovery pipeline
// treats any decode failure as a lost checkpoint and falls back to an
// older one, so a malformed blob must be a value, not a crash.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/fnv"
)

// magic identifies a snapshot blob: "PFSNAP" plus a two-digit envelope
// revision (the payload schema has its own version field).
var magic = [8]byte{'P', 'F', 'S', 'N', 'A', 'P', '0', '1'}

// headerSize is the envelope length: magic + version + payload length +
// FNV-64a checksum of the payload.
const headerSize = 8 + 4 + 8 + 8

// Typed decode errors, distinguishable by errors.Is.
var (
	// ErrTruncated reports a blob shorter than its header demands.
	ErrTruncated = errors.New("snapshot: truncated blob")
	// ErrBadMagic reports a blob that is not a snapshot at all.
	ErrBadMagic = errors.New("snapshot: bad magic")
	// ErrVersion reports a payload-schema version mismatch.
	ErrVersion = errors.New("snapshot: version mismatch")
	// ErrChecksum reports payload corruption.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrPayload reports a payload the gob decoder rejected (or one whose
	// decoding panicked — the decoder recovers and reports it here).
	ErrPayload = errors.New("snapshot: malformed payload")
)

// Encode serializes the payload under the given schema version.
func Encode(version uint32, payload any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	h := fnv.New64a()
	h.Write(body.Bytes())

	blob := make([]byte, headerSize+body.Len())
	copy(blob[0:8], magic[:])
	binary.BigEndian.PutUint32(blob[8:12], version)
	binary.BigEndian.PutUint64(blob[12:20], uint64(body.Len()))
	binary.BigEndian.PutUint64(blob[20:28], h.Sum64())
	copy(blob[headerSize:], body.Bytes())
	return blob, nil
}

// Decode deserializes a blob produced by Encode into payload (a pointer),
// verifying the envelope first: magic, schema version, declared length,
// and checksum. Any failure — including a panicking gob decode on
// adversarial input — comes back as an error wrapping one of the typed
// sentinels above.
func Decode(blob []byte, version uint32, payload any) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: decoder panic: %v", ErrPayload, r)
		}
	}()
	if len(blob) < headerSize {
		return fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(blob), headerSize)
	}
	if !bytes.Equal(blob[0:8], magic[:]) {
		return ErrBadMagic
	}
	if v := binary.BigEndian.Uint32(blob[8:12]); v != version {
		return fmt.Errorf("%w: blob v%d, want v%d", ErrVersion, v, version)
	}
	n := binary.BigEndian.Uint64(blob[12:20])
	if uint64(len(blob)-headerSize) != n {
		return fmt.Errorf("%w: payload %d bytes, header declares %d", ErrTruncated, len(blob)-headerSize, n)
	}
	body := blob[headerSize:]
	h := fnv.New64a()
	h.Write(body)
	if sum := binary.BigEndian.Uint64(blob[20:28]); h.Sum64() != sum {
		return fmt.Errorf("%w: payload sums to %#x, header declares %#x", ErrChecksum, h.Sum64(), sum)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(payload); err != nil {
		return fmt.Errorf("%w: %v", ErrPayload, err)
	}
	return nil
}

// Version extracts the schema version from a blob without decoding the
// payload (for diagnostics; Decode re-checks it).
func Version(blob []byte) (uint32, error) {
	if len(blob) < 12 {
		return 0, ErrTruncated
	}
	if !bytes.Equal(blob[0:8], magic[:]) {
		return 0, ErrBadMagic
	}
	return binary.BigEndian.Uint32(blob[8:12]), nil
}
