package hash

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestJHash2Deterministic(t *testing.T) {
	k := []uint32{1, 2, 3, 4, 5}
	if JHash2(k, 0) != JHash2(k, 0) {
		t.Fatal("jhash2 not deterministic")
	}
}

func TestJHash2InitvalMatters(t *testing.T) {
	k := []uint32{42}
	if JHash2(k, 0) == JHash2(k, 1) {
		t.Fatal("initval ignored")
	}
}

func TestJHash2EmptyKey(t *testing.T) {
	// Kernel semantics: with zero words, the initialized state's c is
	// returned untouched: JHASH_INITVAL + 0 + initval.
	got := JHash2(nil, 5)
	want := JHashInitval + 5
	if got != want {
		t.Fatalf("JHash2(nil,5) = %#x, want %#x", got, want)
	}
}

func TestJHash2AllTailLengths(t *testing.T) {
	// Lengths 1..12 exercise every switch arm and the mix loop boundary.
	base := []uint32{9, 8, 7, 6, 5, 4, 3, 2, 1, 10, 11, 12}
	seen := map[uint32]int{}
	for n := 1; n <= len(base); n++ {
		h := JHash2(base[:n], 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("lengths %d and %d collide (%#x)", prev, n, h)
		}
		seen[h] = n
	}
}

func TestJHash2SingleBitAvalanche(t *testing.T) {
	// Flipping one input bit should flip a substantial fraction of output
	// bits on average (quality check for the ported mixer).
	r := sim.NewRNG(1)
	totalFlips := 0
	const trials = 500
	for i := 0; i < trials; i++ {
		k := []uint32{r.Uint32(), r.Uint32(), r.Uint32(), r.Uint32()}
		h1 := JHash2(k, 0)
		word, bit := r.Intn(4), uint(r.Intn(32))
		k[word] ^= 1 << bit
		h2 := JHash2(k, 0)
		diff := h1 ^ h2
		for diff != 0 {
			totalFlips += int(diff & 1)
			diff >>= 1
		}
	}
	avg := float64(totalFlips) / trials
	if avg < 12 || avg > 20 {
		t.Fatalf("avalanche average %.1f output bits flipped, want ~16", avg)
	}
}

func TestJHash2BytesMatchesWordForm(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		n := 4 * (1 + r.Intn(64))
		b := make([]byte, n)
		r.FillBytes(b)
		words := make([]uint32, n/4)
		for i := range words {
			words[i] = uint32(b[i*4]) | uint32(b[i*4+1])<<8 | uint32(b[i*4+2])<<16 | uint32(b[i*4+3])<<24
		}
		return JHash2Bytes(b, 7) == JHash2(words, 7)
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJHash2BytesPanicsOnOddLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd length accepted")
		}
	}()
	JHash2Bytes(make([]byte, 5), 0)
}

func TestPageHashUsesOnlyFirstKB(t *testing.T) {
	page := make([]byte, 4096)
	h1 := PageHash(page)
	page[KSMDigestBytes] = 0xFF // just past the digested prefix
	if PageHash(page) != h1 {
		t.Fatal("byte outside the first 1KB changed the page hash")
	}
	page[KSMDigestBytes-1] = 0xFF
	if PageHash(page) == h1 {
		t.Fatal("byte inside the first 1KB did not change the page hash")
	}
}

func TestPageHashPanicsOnShortPage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short page accepted")
		}
	}()
	PageHash(make([]byte, 512))
}

func TestJHash2CollisionRate(t *testing.T) {
	// 32-bit hash over 20k random 1KB buffers: expected collisions ~0.05
	// by birthday bound; more than a handful indicates a porting bug.
	r := sim.NewRNG(99)
	seen := make(map[uint32]bool, 20000)
	collisions := 0
	buf := make([]byte, 1024)
	for i := 0; i < 20000; i++ {
		r.FillBytes(buf)
		h := JHash2Bytes(buf, 17)
		if seen[h] {
			collisions++
		}
		seen[h] = true
	}
	if collisions > 3 {
		t.Fatalf("%d collisions among 20k random inputs", collisions)
	}
}

func TestRol32(t *testing.T) {
	if rol32(1, 1) != 2 {
		t.Fatal("rol32(1,1) != 2")
	}
	if rol32(0x80000000, 1) != 1 {
		t.Fatal("rol32 wraparound broken")
	}
}

// TestJHash2BytesMatchesWords pins the allocation-free byte-slice entry
// point against the reference path — converting to []uint32 and calling
// JHash2 — across every tail length and random contents.
func TestJHash2BytesMatchesWords(t *testing.T) {
	r := sim.NewRNG(0xB17E5)
	for words := 0; words <= 40; words++ {
		for trial := 0; trial < 8; trial++ {
			b := make([]byte, 4*words)
			r.FillBytes(b)
			k := make([]uint32, words)
			for i := range k {
				k[i] = uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
			}
			initval := r.Uint32()
			if got, want := JHash2Bytes(b, initval), JHash2(k, initval); got != want {
				t.Fatalf("words=%d initval=%#x: JHash2Bytes=%#x JHash2=%#x", words, initval, got, want)
			}
		}
	}
}

func TestJHash2BytesRejectsRaggedLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("JHash2Bytes accepted a length not divisible by 4")
		}
	}()
	JHash2Bytes(make([]byte, 7), 0)
}

// TestPageHashZeroAllocs enforces the hot-path contract: hashing a page
// during a scan pass must not allocate.
func TestPageHashZeroAllocs(t *testing.T) {
	page := make([]byte, 4096)
	r := sim.NewRNG(3)
	r.FillBytes(page)
	var sink uint32
	if n := testing.AllocsPerRun(200, func() {
		sink += PageHash(page)
	}); n != 0 {
		t.Fatalf("PageHash allocates %v times per call, want 0", n)
	}
	_ = sink
}
