// Package hash ports the Linux kernel's jhash2 function (Bob Jenkins'
// lookup3 hash over arrays of u32), which KSM uses to compute per-page hash
// keys over the first 1KB of a page's contents.
package hash

import "encoding/binary"

// JHashInitval mirrors the kernel's JHASH_INITVAL (an arbitrary golden
// value) used as the default initial seed.
const JHashInitval uint32 = 0xdeadbeef

func rol32(x uint32, k uint) uint32 {
	return x<<k | x>>(32-k)
}

// mix is the kernel's __jhash_mix: reversible mixing of three 32-bit states.
func mix(a, b, c uint32) (uint32, uint32, uint32) {
	a -= c
	a ^= rol32(c, 4)
	c += b
	b -= a
	b ^= rol32(a, 6)
	a += c
	c -= b
	c ^= rol32(b, 8)
	b += a
	a -= c
	a ^= rol32(c, 16)
	c += b
	b -= a
	b ^= rol32(a, 19)
	a += c
	c -= b
	c ^= rol32(b, 4)
	b += a
	return a, b, c
}

// final is the kernel's __jhash_final: irreversible avalanche of the state.
func final(a, b, c uint32) uint32 {
	c ^= b
	c -= rol32(b, 14)
	a ^= c
	a -= rol32(c, 11)
	b ^= a
	b -= rol32(a, 25)
	c ^= b
	c -= rol32(b, 16)
	a ^= c
	a -= rol32(c, 4)
	b ^= a
	b -= rol32(a, 14)
	c ^= b
	c -= rol32(b, 24)
	return c
}

// JHash2 hashes an array of uint32 values with the given initial value,
// bit-for-bit compatible with the kernel's jhash2().
func JHash2(k []uint32, initval uint32) uint32 {
	length := uint32(len(k))
	a := JHashInitval + length<<2 + initval
	b, c := a, a

	for len(k) > 3 {
		a += k[0]
		b += k[1]
		c += k[2]
		a, b, c = mix(a, b, c)
		k = k[3:]
	}

	switch len(k) {
	case 3:
		c += k[2]
		fallthrough
	case 2:
		b += k[1]
		fallthrough
	case 1:
		a += k[0]
		c = final(a, b, c)
	case 0:
		// Nothing left to add: return c as-is (kernel behaviour).
	}
	return c
}

// JHash2Bytes interprets b as little-endian uint32 words and hashes them,
// bit-for-bit equivalent to converting to []uint32 and calling JHash2 — but
// reading the words in place, so the scan hot path performs no allocation.
// len(b) must be a multiple of 4, matching the kernel call sites.
func JHash2Bytes(b []byte, initval uint32) uint32 {
	if len(b)%4 != 0 {
		panic("hash: JHash2Bytes length must be a multiple of 4")
	}
	length := uint32(len(b) / 4)
	a := JHashInitval + length<<2 + initval
	bb, c := a, a

	for len(b) > 12 {
		a += binary.LittleEndian.Uint32(b)
		bb += binary.LittleEndian.Uint32(b[4:8])
		c += binary.LittleEndian.Uint32(b[8:12])
		a, bb, c = mix(a, bb, c)
		b = b[12:]
	}

	switch len(b) {
	case 12:
		c += binary.LittleEndian.Uint32(b[8:12])
		fallthrough
	case 8:
		bb += binary.LittleEndian.Uint32(b[4:8])
		fallthrough
	case 4:
		a += binary.LittleEndian.Uint32(b)
		c = final(a, bb, c)
	case 0:
		// Nothing left to add: return c as-is (kernel behaviour).
	}
	return c
}

// KSMDigestBytes is how much of the page KSM hashes: the first 1KB
// (calc_checksum in mm/ksm.c hashes PAGE_SIZE/4 bytes... the paper states
// "a per-page hash key is generated based on 1KB of the page's contents").
const KSMDigestBytes = 1024

// PageHash computes KSM's per-page checksum: jhash2 over the first 1KB of
// the page with initval 17, mirroring calc_checksum() in mm/ksm.c.
func PageHash(page []byte) uint32 {
	if len(page) < KSMDigestBytes {
		panic("hash: PageHash needs at least 1KB of page data")
	}
	return JHash2Bytes(page[:KSMDigestBytes], 17)
}
