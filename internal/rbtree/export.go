package rbtree

import "repro/internal/mem"

// Checkpoint support: a tree's exact shape must survive a serialize/restore
// round trip. Rebuilding a tree by re-inserting its pages would produce a
// different (rebalanced) shape, and tree shape determines every later
// lookup's comparison count — which the simulator accounts as DRAM traffic
// and core cycles — so a restored run would silently diverge from the
// uninterrupted one. Export/Import therefore serialize the structure
// verbatim: preorder nodes with color and child-presence flags, enough to
// reconstruct root, parent links, and colors bit-exactly.

// NodeState is one serialized node in preorder.
type NodeState struct {
	PFN      mem.PFN
	Red      bool
	HasLeft  bool
	HasRight bool
}

// TreeState is one tree's full serialized image: preorder structure plus
// the comparison-cost counters (which are part of the simulation state).
type TreeState struct {
	Nodes         []NodeState
	Comparisons   uint64
	BytesCompared uint64
}

// Export captures the tree's exact structure and counters.
func (t *Tree) Export() TreeState {
	st := TreeState{Comparisons: t.Comparisons, BytesCompared: t.BytesCompared}
	if t.size > 0 {
		st.Nodes = make([]NodeState, 0, t.size)
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		st.Nodes = append(st.Nodes, NodeState{
			PFN:      n.PFN,
			Red:      n.red,
			HasLeft:  n.left != nil,
			HasRight: n.right != nil,
		})
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return st
}

// Import rebuilds the tree in place from a captured state, discarding the
// current contents. item supplies each node's payload (KSM reattaches its
// per-shard items); a nil item leaves payloads nil. The comparator and any
// state it captures are untouched — Import never compares pages.
func (t *Tree) Import(st TreeState, item func(pfn mem.PFN) interface{}) {
	t.root = nil
	t.size = len(st.Nodes)
	t.Comparisons = st.Comparisons
	t.BytesCompared = st.BytesCompared
	i := 0
	var build func(parent *Node) *Node
	build = func(parent *Node) *Node {
		ns := st.Nodes[i]
		i++
		n := &Node{PFN: ns.PFN, parent: parent, owner: t, red: ns.Red}
		if item != nil {
			n.Item = item(ns.PFN)
		}
		if ns.HasLeft {
			n.left = build(n)
		}
		if ns.HasRight {
			n.right = build(n)
		}
		return n
	}
	if len(st.Nodes) > 0 {
		t.root = build(nil)
	}
}

// Export captures every shard's state in shard order.
func (s *Sharded) Export() []TreeState {
	out := make([]TreeState, len(s.shards))
	for i, t := range s.shards {
		out[i] = t.Export()
	}
	return out
}

// Import restores every shard in place from a captured state. The shard
// count must match the capture (the route function is configuration, not
// state, so a checkpoint never changes it).
func (s *Sharded) Import(states []TreeState, item func(pfn mem.PFN) interface{}) {
	if len(states) != len(s.shards) {
		panic("rbtree: Sharded.Import shard-count mismatch")
	}
	for i, t := range s.shards {
		t.Import(states[i], item)
	}
}
