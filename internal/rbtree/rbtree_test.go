package rbtree

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// fixture builds a physical memory where frame contents are derived from a
// small integer "content id", so ordering is predictable: page bytes are
// all equal to the id. Distinct ids give distinct contents ordered by id.
type fixture struct {
	phys *mem.Phys
	t    *Tree
}

func newFixture(frames int) *fixture {
	p := mem.New(uint64(frames) * mem.PageSize)
	f := &fixture{phys: p}
	f.t = New(func(a, b mem.PFN) (int, int) { return p.ComparePage(a, b) })
	return f
}

// page allocates a frame filled with byte value id.
func (f *fixture) page(id byte) mem.PFN {
	pfn, err := f.phys.Alloc()
	if err != nil {
		panic(err)
	}
	pg := f.phys.Page(pfn)
	for i := range pg {
		pg[i] = id
	}
	return pfn
}

func TestInsertLookup(t *testing.T) {
	f := newFixture(16)
	ids := []byte{5, 3, 8, 1, 4, 7, 9, 2, 6}
	for _, id := range ids {
		if _, inserted := f.t.InsertOrGet(f.page(id), nil); !inserted {
			t.Fatalf("id %d reported duplicate", id)
		}
	}
	if f.t.Size() != len(ids) {
		t.Fatalf("size = %d, want %d", f.t.Size(), len(ids))
	}
	if err := f.t.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Lookup with a fresh page of identical content must find a node.
	probe := f.page(7)
	n := f.t.Lookup(probe)
	if n == nil {
		t.Fatal("content-equal page not found")
	}
	if c, _ := f.phys.ComparePage(n.PFN, probe); c != 0 {
		t.Fatal("Lookup returned node with different content")
	}
	// Absent content.
	if f.t.Lookup(f.page(100)) != nil {
		t.Fatal("absent content found")
	}
}

func TestInsertOrGetFindsDuplicate(t *testing.T) {
	f := newFixture(8)
	first, _ := f.t.InsertOrGet(f.page(42), "first")
	dup := f.page(42)
	got, inserted := f.t.InsertOrGet(dup, "second")
	if inserted {
		t.Fatal("duplicate content inserted as new node")
	}
	if got != first || got.Item != "first" {
		t.Fatal("duplicate did not return the existing node")
	}
	if f.t.Size() != 1 {
		t.Fatalf("size = %d, want 1", f.t.Size())
	}
}

func TestInOrderIsSorted(t *testing.T) {
	f := newFixture(32)
	r := sim.NewRNG(1)
	for _, i := range r.Perm(20) {
		f.t.InsertOrGet(f.page(byte(i*10)), nil)
	}
	var last byte
	started := false
	f.t.InOrder(func(n *Node) bool {
		b := f.phys.Page(n.PFN)[0]
		if started && b <= last {
			t.Fatalf("in-order not sorted: %d after %d", b, last)
		}
		last, started = b, true
		return true
	})
}

func TestDeleteMaintainsInvariants(t *testing.T) {
	f := newFixture(64)
	nodes := map[byte]*Node{}
	r := sim.NewRNG(2)
	for _, i := range r.Perm(40) {
		id := byte(i)
		n, _ := f.t.InsertOrGet(f.page(id), nil)
		nodes[id] = n
	}
	order := r.Perm(40)
	for k, i := range order {
		f.t.Delete(nodes[byte(i)])
		if err := f.t.CheckInvariants(); err != nil {
			t.Fatalf("after %d deletions: %v", k+1, err)
		}
	}
	if f.t.Size() != 0 || f.t.Root() != nil {
		t.Fatal("tree not empty after deleting everything")
	}
}

func TestDeleteRootRepeatedly(t *testing.T) {
	f := newFixture(32)
	for i := 0; i < 15; i++ {
		f.t.InsertOrGet(f.page(byte(i)), nil)
	}
	for f.t.Root() != nil {
		f.t.Delete(f.t.Root())
		if err := f.t.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestResetEmptiesTree(t *testing.T) {
	f := newFixture(8)
	f.t.InsertOrGet(f.page(1), nil)
	f.t.InsertOrGet(f.page(2), nil)
	f.t.Reset()
	if f.t.Size() != 0 || f.t.Root() != nil {
		t.Fatal("Reset left residue")
	}
}

func TestComparisonAccounting(t *testing.T) {
	f := newFixture(8)
	f.t.InsertOrGet(f.page(1), nil)
	before := f.t.Comparisons
	f.t.InsertOrGet(f.page(2), nil) // one comparison against the root
	if f.t.Comparisons != before+1 {
		t.Fatalf("comparisons = %d, want %d", f.t.Comparisons, before+1)
	}
	if f.t.BytesCompared == 0 {
		t.Fatal("bytes compared not accounted")
	}
	// Pages differing in byte 0 diverge after 1 byte.
	if f.t.BytesCompared != 1 {
		t.Fatalf("bytes = %d, want 1 (diverge at first byte)", f.t.BytesCompared)
	}
}

func TestBFSOrderAndLimit(t *testing.T) {
	f := newFixture(32)
	// Build a balanced 7-node tree: ids 1..7 inserted to produce root 4.
	for _, id := range []byte{40, 20, 60, 10, 30, 50, 70} {
		f.t.InsertOrGet(f.page(id), nil)
	}
	all := BFS(f.t.Root(), 100)
	if len(all) != 7 {
		t.Fatalf("BFS returned %d nodes, want 7", len(all))
	}
	if all[0] != f.t.Root() {
		t.Fatal("BFS does not start at the given root")
	}
	// Level property: children appear after their parents.
	pos := map[*Node]int{}
	for i, n := range all {
		pos[n] = i
	}
	for _, n := range all {
		if n.Left() != nil && pos[n.Left()] < pos[n] {
			t.Fatal("child before parent in BFS order")
		}
		if n.Right() != nil && pos[n.Right()] < pos[n] {
			t.Fatal("child before parent in BFS order")
		}
	}
	limited := BFS(f.t.Root(), 3)
	if len(limited) != 3 {
		t.Fatalf("BFS limit ignored: %d", len(limited))
	}
	if BFS(nil, 5) != nil {
		t.Fatal("BFS(nil) != nil")
	}
	if BFS(f.t.Root(), 0) != nil {
		t.Fatal("BFS(max=0) != nil")
	}
}

func TestRandomOpsInvariantsQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		f := newFixture(256)
		live := map[byte]*Node{}
		for op := 0; op < 120; op++ {
			id := byte(r.Intn(60))
			if n, ok := live[id]; ok && r.Bool(0.4) {
				f.t.Delete(n)
				delete(live, id)
			} else if !ok {
				n, inserted := f.t.InsertOrGet(f.page(id), nil)
				if !inserted {
					return false // no duplicate should exist
				}
				live[id] = n
			}
			if f.t.CheckInvariants() != nil {
				return false
			}
		}
		return f.t.Size() == len(live)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNilComparatorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestDeleteNilPanics(t *testing.T) {
	f := newFixture(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Delete(nil) did not panic")
		}
	}()
	f.t.Delete(nil)
}

func TestInsertAllowsDuplicates(t *testing.T) {
	f := newFixture(8)
	f.t.Insert(f.page(9), nil)
	f.t.Insert(f.page(9), nil)
	if f.t.Size() != 2 {
		t.Fatalf("size = %d, want 2 (Insert permits duplicates)", f.t.Size())
	}
	if err := f.t.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
