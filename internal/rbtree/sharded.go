package rbtree

import (
	"fmt"

	"repro/internal/mem"
)

// RouteFunc maps a frame to its shard index by inspecting page content.
// Routing must be a function of content alone (equal pages route equally)
// and must respect memcmp order: if page a < page b then route(a) <=
// route(b). A content-prefix route (top bits of the first bytes) satisfies
// both, which keeps the concatenation of shard in-order walks globally
// sorted.
type RouteFunc func(mem.PFN) int

// Sharded is a set of content-disjoint trees indexed by a content-prefix
// route. With one shard it degenerates to a plain tree (same shapes, same
// comparison counts); with 2^k shards a scan pass can fan out across
// independent trees because equal-content pages — the only pages a merge
// ever relates — always land in the same shard.
type Sharded struct {
	shards []*Tree
	route  RouteFunc
}

// NewSharded builds n trees with mk (which may capture the shard index for
// per-shard instrumentation) and routes operations with route.
func NewSharded(n int, route RouteFunc, mk func(shard int) *Tree) *Sharded {
	if n < 1 {
		panic("rbtree: NewSharded needs at least one shard")
	}
	s := &Sharded{shards: make([]*Tree, n), route: route}
	for i := range s.shards {
		s.shards[i] = mk(i)
	}
	return s
}

// NumShards reports the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// Shard returns the i-th tree.
func (s *Sharded) Shard(i int) *Tree { return s.shards[i] }

// ShardIndex reports which shard the frame's current content routes to.
func (s *Sharded) ShardIndex(pfn mem.PFN) int {
	if len(s.shards) == 1 {
		return 0
	}
	i := s.route(pfn)
	if i < 0 || i >= len(s.shards) {
		panic(fmt.Sprintf("rbtree: route(%d) = %d out of range (%d shards)", pfn, i, len(s.shards)))
	}
	return i
}

// For returns the tree the frame's content routes to.
func (s *Sharded) For(pfn mem.PFN) *Tree { return s.shards[s.ShardIndex(pfn)] }

// Lookup finds a content-equal node in the frame's shard, or nil.
func (s *Sharded) Lookup(pfn mem.PFN) *Node { return s.For(pfn).Lookup(pfn) }

// InsertOrGet searches the frame's shard, inserting on miss.
func (s *Sharded) InsertOrGet(pfn mem.PFN, item interface{}) (*Node, bool) {
	return s.For(pfn).InsertOrGet(pfn, item)
}

// Insert adds a node for pfn to its content shard.
func (s *Sharded) Insert(pfn mem.PFN, item interface{}) *Node {
	return s.For(pfn).Insert(pfn, item)
}

// Delete removes the node from whichever shard holds it. Dispatch is by the
// node's recorded owner, never by re-routing: an unstable node's page is
// not write-protected, so its content (and hence its route) may have
// changed since insertion.
func (s *Sharded) Delete(n *Node) {
	if n == nil || n.owner == nil {
		panic("rbtree: Sharded.Delete of nil or unowned node")
	}
	n.owner.Delete(n)
}

// Reset discards all nodes of every shard.
func (s *Sharded) Reset() {
	for _, t := range s.shards {
		t.Reset()
	}
}

// Size reports the total node count across shards.
func (s *Sharded) Size() int {
	n := 0
	for _, t := range s.shards {
		n += t.Size()
	}
	return n
}

// Comparisons sums the per-shard comparison counters.
func (s *Sharded) Comparisons() uint64 {
	var n uint64
	for _, t := range s.shards {
		n += t.Comparisons
	}
	return n
}

// BytesCompared sums the per-shard bytes-examined counters.
func (s *Sharded) BytesCompared() uint64 {
	var n uint64
	for _, t := range s.shards {
		n += t.BytesCompared
	}
	return n
}

// InOrder visits all nodes in global content order: shard index order is
// content-prefix order, and each shard walk is in-order.
func (s *Sharded) InOrder(visit func(*Node) bool) {
	for _, t := range s.shards {
		stopped := false
		t.InOrder(func(n *Node) bool {
			if !visit(n) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
	}
}

// CheckInvariants validates every shard's red-black and ordering
// properties, plus the cross-shard ordering: the last node of shard i must
// not exceed the first node of any later shard.
func (s *Sharded) CheckInvariants() error {
	for i, t := range s.shards {
		if err := t.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	var prev *Node
	prevShard := -1
	for i, t := range s.shards {
		var first, last *Node
		t.InOrder(func(n *Node) bool {
			if first == nil {
				first = n
			}
			last = n
			return true
		})
		if first == nil {
			continue
		}
		if prev != nil {
			if c, _ := t.cmp(prev.PFN, first.PFN); c > 0 {
				return fmt.Errorf("rbtree: cross-shard order violation between shard %d (pfn %d) and shard %d (pfn %d)",
					prevShard, prev.PFN, i, first.PFN)
			}
		}
		prev, prevShard = last, i
	}
	return nil
}
