// Package rbtree implements the content-indexed red-black trees at the
// heart of KSM (Section 2.1 of the paper): nodes are physical pages, and
// the tree is ordered by byte-wise comparison of page contents. Every
// comparison's cost (bytes examined before divergence) is accounted, since
// that cost — paid in core cycles by software KSM and in memory-controller
// line reads by PageForge — is what the paper measures.
package rbtree

import (
	"fmt"

	"repro/internal/mem"
)

// CompareFunc three-way-compares the contents of two frames, returning the
// memcmp-style sign and the number of bytes examined.
type CompareFunc func(a, b mem.PFN) (cmp int, bytes int)

// Node is a tree node holding one physical page.
type Node struct {
	PFN  mem.PFN
	Item interface{} // caller payload (KSM attaches its rmap item here)

	left, right, parent *Node
	owner               *Tree // the tree (shard) the node was inserted into
	red                 bool
}

// Owner reports the tree the node currently belongs to (nil after Delete).
// Sharded deletion dispatches on it instead of re-routing by content, which
// matters for unstable nodes: their pages are not write-protected, so the
// content a route would read may have changed since insertion.
func (n *Node) Owner() *Tree { return n.owner }

// Left returns the left child (nil at a leaf).
func (n *Node) Left() *Node { return n.left }

// Right returns the right child (nil at a leaf).
func (n *Node) Right() *Node { return n.right }

// Tree is a content-indexed red-black tree.
type Tree struct {
	root *Node
	size int
	cmp  CompareFunc

	// Comparisons counts three-way content comparisons performed.
	Comparisons uint64
	// BytesCompared counts the total bytes examined across comparisons.
	BytesCompared uint64
}

// New returns an empty tree ordered by cmp.
func New(cmp CompareFunc) *Tree {
	if cmp == nil {
		panic("rbtree: nil comparator")
	}
	return &Tree{cmp: cmp}
}

// Size reports the number of nodes.
func (t *Tree) Size() int { return t.size }

// Root returns the root node (nil when empty).
func (t *Tree) Root() *Node { return t.root }

// Reset discards all nodes; KSM destroys the unstable tree after each pass
// this way ("throw away and regenerate").
func (t *Tree) Reset() {
	t.root = nil
	t.size = 0
}

func (t *Tree) compare(a, b mem.PFN) int {
	c, n := t.cmp(a, b)
	t.Comparisons++
	t.BytesCompared += uint64(n)
	return c
}

// Lookup finds a node whose page contents equal those of pfn, or nil.
func (t *Tree) Lookup(pfn mem.PFN) *Node {
	n := t.root
	for n != nil {
		switch c := t.compare(pfn, n.PFN); {
		case c < 0:
			n = n.left
		case c > 0:
			n = n.right
		default:
			return n
		}
	}
	return nil
}

// InsertOrGet searches for a content-equal node; if none exists it inserts
// a new node for pfn in a single descent and returns (node, true). If a
// duplicate exists, it returns (existing, false) — exactly the
// search-or-insert KSM performs on the unstable tree.
func (t *Tree) InsertOrGet(pfn mem.PFN, item interface{}) (*Node, bool) {
	var parent *Node
	link := &t.root
	for *link != nil {
		parent = *link
		switch c := t.compare(pfn, parent.PFN); {
		case c < 0:
			link = &parent.left
		case c > 0:
			link = &parent.right
		default:
			return parent, false
		}
	}
	n := &Node{PFN: pfn, Item: item, parent: parent, owner: t, red: true}
	*link = n
	t.size++
	t.insertFixup(n)
	return n, true
}

// Insert adds a node for pfn even if a content-equal node exists (ties go
// right). The stable tree can legitimately hold distinct merged pages; KSM
// itself never inserts duplicates, but algorithm experiments may.
func (t *Tree) Insert(pfn mem.PFN, item interface{}) *Node {
	var parent *Node
	link := &t.root
	for *link != nil {
		parent = *link
		if c := t.compare(pfn, parent.PFN); c < 0 {
			link = &parent.left
		} else {
			link = &parent.right
		}
	}
	n := &Node{PFN: pfn, Item: item, parent: parent, owner: t, red: true}
	*link = n
	t.size++
	t.insertFixup(n)
	return n
}

func (t *Tree) rotateLeft(x *Node) {
	y := x.right
	x.right = y.left
	if y.left != nil {
		y.left.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.left:
		x.parent.left = y
	default:
		x.parent.right = y
	}
	y.left = x
	x.parent = y
}

func (t *Tree) rotateRight(x *Node) {
	y := x.left
	x.left = y.right
	if y.right != nil {
		y.right.parent = x
	}
	y.parent = x.parent
	switch {
	case x.parent == nil:
		t.root = y
	case x == x.parent.right:
		x.parent.right = y
	default:
		x.parent.left = y
	}
	y.right = x
	x.parent = y
}

func isRed(n *Node) bool { return n != nil && n.red }

func (t *Tree) insertFixup(z *Node) {
	for isRed(z.parent) {
		g := z.parent.parent // grandparent exists: root is black
		if z.parent == g.left {
			u := g.right
			if isRed(u) {
				z.parent.red = false
				u.red = false
				g.red = true
				z = g
				continue
			}
			if z == z.parent.right {
				z = z.parent
				t.rotateLeft(z)
			}
			z.parent.red = false
			g.red = true
			t.rotateRight(g)
		} else {
			u := g.left
			if isRed(u) {
				z.parent.red = false
				u.red = false
				g.red = true
				z = g
				continue
			}
			if z == z.parent.left {
				z = z.parent
				t.rotateRight(z)
			}
			z.parent.red = false
			g.red = true
			t.rotateLeft(g)
		}
	}
	t.root.red = false
}

func minimum(n *Node) *Node {
	for n.left != nil {
		n = n.left
	}
	return n
}

// transplant replaces subtree u with subtree v (v may be nil).
func (t *Tree) transplant(u, v *Node) {
	switch {
	case u.parent == nil:
		t.root = v
	case u == u.parent.left:
		u.parent.left = v
	default:
		u.parent.right = v
	}
	if v != nil {
		v.parent = u.parent
	}
}

// Delete removes node z from the tree. The node must belong to this tree.
// KSM removes a page from the unstable tree when it merges, and from the
// stable tree when its last sharer CoW-breaks away.
func (t *Tree) Delete(z *Node) {
	if z == nil {
		panic("rbtree: Delete(nil)")
	}
	var x, xParent *Node
	y := z
	yWasRed := y.red
	switch {
	case z.left == nil:
		x = z.right
		xParent = z.parent
		t.transplant(z, z.right)
	case z.right == nil:
		x = z.left
		xParent = z.parent
		t.transplant(z, z.left)
	default:
		y = minimum(z.right)
		yWasRed = y.red
		x = y.right
		if y.parent == z {
			xParent = y
		} else {
			xParent = y.parent
			t.transplant(y, y.right)
			y.right = z.right
			y.right.parent = y
		}
		t.transplant(z, y)
		y.left = z.left
		y.left.parent = y
		y.red = z.red
	}
	t.size--
	if !yWasRed {
		t.deleteFixup(x, xParent)
	}
	z.left, z.right, z.parent, z.owner = nil, nil, nil, nil
}

func (t *Tree) deleteFixup(x, parent *Node) {
	for x != t.root && !isRed(x) {
		if parent == nil {
			break
		}
		if x == parent.left {
			w := parent.right
			if isRed(w) {
				w.red = false
				parent.red = true
				t.rotateLeft(parent)
				w = parent.right
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if !isRed(w.left) && !isRed(w.right) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if !isRed(w.right) {
					if w.left != nil {
						w.left.red = false
					}
					w.red = true
					t.rotateRight(w)
					w = parent.right
				}
				w.red = parent.red
				parent.red = false
				if w.right != nil {
					w.right.red = false
				}
				t.rotateLeft(parent)
				x = t.root
				parent = nil
			}
		} else {
			w := parent.left
			if isRed(w) {
				w.red = false
				parent.red = true
				t.rotateRight(parent)
				w = parent.left
			}
			if w == nil {
				x = parent
				parent = x.parent
				continue
			}
			if !isRed(w.left) && !isRed(w.right) {
				w.red = true
				x = parent
				parent = x.parent
			} else {
				if !isRed(w.left) {
					if w.right != nil {
						w.right.red = false
					}
					w.red = true
					t.rotateLeft(w)
					w = parent.left
				}
				w.red = parent.red
				parent.red = false
				if w.left != nil {
					w.left.red = false
				}
				t.rotateRight(parent)
				x = t.root
				parent = nil
			}
		}
	}
	if x != nil {
		x.red = false
	}
}

// InOrder visits nodes in content order; the visitor returns false to stop.
func (t *Tree) InOrder(visit func(*Node) bool) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if n == nil {
			return true
		}
		return walk(n.left) && visit(n) && walk(n.right)
	}
	walk(t.root)
}

// BFS returns up to max nodes of the subtree rooted at start in
// breadth-first order. This is exactly the batch the OS loads into the
// PageForge Scan Table ("the root of the red-black tree ... and a few
// subsequent levels of the tree in breadth-first order").
func BFS(start *Node, max int) []*Node {
	if start == nil || max <= 0 {
		return nil
	}
	out := make([]*Node, 0, max)
	queue := []*Node{start}
	for len(queue) > 0 && len(out) < max {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		if n.left != nil {
			queue = append(queue, n.left)
		}
		if n.right != nil {
			queue = append(queue, n.right)
		}
	}
	return out
}

// CheckInvariants validates the red-black properties and the content
// ordering; it is used by property-based tests.
func (t *Tree) CheckInvariants() error {
	if isRed(t.root) {
		return fmt.Errorf("rbtree: red root")
	}
	count := 0
	var check func(n *Node) (blackHeight int, err error)
	check = func(n *Node) (int, error) {
		if n == nil {
			return 1, nil
		}
		count++
		if isRed(n) && (isRed(n.left) || isRed(n.right)) {
			return 0, fmt.Errorf("rbtree: red node %d has red child", n.PFN)
		}
		if n.left != nil && n.left.parent != n {
			return 0, fmt.Errorf("rbtree: broken parent link at %d", n.PFN)
		}
		if n.right != nil && n.right.parent != n {
			return 0, fmt.Errorf("rbtree: broken parent link at %d", n.PFN)
		}
		lh, err := check(n.left)
		if err != nil {
			return 0, err
		}
		rh, err := check(n.right)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("rbtree: black-height mismatch at %d (%d vs %d)", n.PFN, lh, rh)
		}
		if isRed(n) {
			return lh, nil
		}
		return lh + 1, nil
	}
	if _, err := check(t.root); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rbtree: size %d but %d reachable nodes", t.size, count)
	}
	// Content ordering.
	var prev *Node
	var orderErr error
	t.InOrder(func(n *Node) bool {
		if prev != nil {
			if c, _ := t.cmp(prev.PFN, n.PFN); c > 0 {
				orderErr = fmt.Errorf("rbtree: order violation between %d and %d", prev.PFN, n.PFN)
				return false
			}
		}
		prev = n
		return true
	})
	return orderErr
}
