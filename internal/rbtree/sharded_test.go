package rbtree

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// shardedFixture routes the id-valued pages of fixture by their top content
// bit: pages with id < 128 land in shard 0, the rest in shard 1. That is a
// content-prefix route, so it respects memcmp order.
type shardedFixture struct {
	phys *mem.Phys
	s    *Sharded
}

func newShardedFixture(frames, shards int) *shardedFixture {
	p := mem.New(uint64(frames) * mem.PageSize)
	f := &shardedFixture{phys: p}
	f.s = NewSharded(shards,
		func(pfn mem.PFN) int { return int(p.Page(pfn)[0]) * shards / 256 },
		func(int) *Tree {
			return New(func(a, b mem.PFN) (int, int) { return p.ComparePage(a, b) })
		})
	return f
}

func (f *shardedFixture) page(id byte) mem.PFN {
	pfn, err := f.phys.Alloc()
	if err != nil {
		panic(err)
	}
	pg := f.phys.Page(pfn)
	for i := range pg {
		pg[i] = id
	}
	return pfn
}

func TestShardedRoutingAndOrder(t *testing.T) {
	f := newShardedFixture(64, 4)
	r := sim.NewRNG(11)
	ids := r.Perm(40)
	for _, id := range ids {
		f.s.Insert(f.page(byte(id*6)), nil)
	}
	if f.s.Size() != len(ids) {
		t.Fatalf("size = %d, want %d", f.s.Size(), len(ids))
	}
	if err := f.s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every shard actually holds something (ids span 0..234).
	for i := 0; i < f.s.NumShards(); i++ {
		if f.s.Shard(i).Size() == 0 {
			t.Fatalf("shard %d empty — routing collapsed", i)
		}
	}
	// InOrder across shards is global content order.
	var prev mem.PFN
	first := true
	f.s.InOrder(func(n *Node) bool {
		if !first {
			if c, _ := f.phys.ComparePage(prev, n.PFN); c >= 0 {
				t.Fatalf("InOrder not globally sorted at pfn %d", n.PFN)
			}
		}
		prev, first = n.PFN, false
		return true
	})
	// Lookup of a content-equal probe lands in the right shard.
	probe := f.page(byte(ids[3] * 6))
	n := f.s.Lookup(probe)
	if n == nil || n.Owner() != f.s.For(probe) {
		t.Fatal("Lookup missed or returned a node from the wrong shard")
	}
}

// TestShardedDeleteByOwner pins the owner-dispatch rule: a node whose page
// content mutated after insertion (unstable pages are not write-protected)
// now routes to a different shard, but Delete must still remove it from the
// shard that holds it.
func TestShardedDeleteByOwner(t *testing.T) {
	f := newShardedFixture(16, 2)
	low := f.page(10) // routes to shard 0
	n := f.s.Insert(low, nil)
	if n.Owner() != f.s.Shard(0) {
		t.Fatal("low page not inserted into shard 0")
	}
	// Mutate content so the route flips to shard 1.
	pg := f.phys.Page(low)
	for i := range pg {
		pg[i] = 200
	}
	if f.s.ShardIndex(low) != 1 {
		t.Fatal("mutated page should route to shard 1")
	}
	f.s.Delete(n)
	if n.Owner() != nil {
		t.Fatal("owner not cleared on delete")
	}
	if f.s.Size() != 0 {
		t.Fatalf("size = %d after delete, want 0", f.s.Size())
	}
	if err := f.s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedDeletePanicsOnUnowned(t *testing.T) {
	f := newShardedFixture(8, 2)
	n := f.s.Insert(f.page(1), nil)
	f.s.Delete(n)
	defer func() {
		if recover() == nil {
			t.Fatal("double Delete of an unowned node did not panic")
		}
	}()
	f.s.Delete(n)
}

// TestShardedSingleShardMatchesPlainTree checks the degenerate case: one
// shard must produce the same shapes and the same comparison/byte counters
// as a plain tree fed the same operations.
func TestShardedSingleShardMatchesPlainTree(t *testing.T) {
	p := mem.New(64 * mem.PageSize)
	mkPage := func(id byte) mem.PFN {
		pfn, _ := p.Alloc()
		pg := p.Page(pfn)
		for i := range pg {
			pg[i] = id
		}
		return pfn
	}
	plain := New(func(a, b mem.PFN) (int, int) { return p.ComparePage(a, b) })
	sh := NewSharded(1,
		func(mem.PFN) int { panic("route must not be consulted with one shard") },
		func(int) *Tree {
			return New(func(a, b mem.PFN) (int, int) { return p.ComparePage(a, b) })
		})
	r := sim.NewRNG(5)
	for _, id := range r.Perm(20) {
		a, b := mkPage(byte(id*12)), mkPage(byte(id*12))
		plain.InsertOrGet(a, nil)
		sh.InsertOrGet(b, nil)
	}
	if plain.Size() != sh.Size() {
		t.Fatalf("size mismatch: plain %d, sharded %d", plain.Size(), sh.Size())
	}
	if plain.Comparisons != sh.Comparisons() || plain.BytesCompared != sh.BytesCompared() {
		t.Fatalf("counter mismatch: plain (%d,%d), sharded (%d,%d)",
			plain.Comparisons, plain.BytesCompared, sh.Comparisons(), sh.BytesCompared())
	}
}

// TestShardedCrossShardViolationDetected ensures CheckInvariants catches a
// route that breaks content-prefix ordering.
func TestShardedCrossShardViolationDetected(t *testing.T) {
	p := mem.New(8 * mem.PageSize)
	mkPage := func(id byte) mem.PFN {
		pfn, _ := p.Alloc()
		pg := p.Page(pfn)
		for i := range pg {
			pg[i] = id
		}
		return pfn
	}
	// Inverted route: big contents to shard 0, small to shard 1.
	s := NewSharded(2,
		func(pfn mem.PFN) int {
			if p.Page(pfn)[0] >= 128 {
				return 0
			}
			return 1
		},
		func(int) *Tree {
			return New(func(a, b mem.PFN) (int, int) { return p.ComparePage(a, b) })
		})
	s.Insert(mkPage(200), nil)
	s.Insert(mkPage(10), nil)
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("cross-shard order violation not detected")
	}
}
