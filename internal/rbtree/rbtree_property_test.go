package rbtree

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// TestPropertyInvariants10k hammers the tree with 10,000 random
// insert/delete operations and re-validates the full red-black contract —
// root blackness, no red-red edges, equal black heights, BST content
// order, parent links, and size accounting — after every mutation.
// Frames are released as nodes leave the tree so the walk runs in bounded
// memory, mirroring how KSM recycles candidate frames across passes.
func TestPropertyInvariants10k(t *testing.T) {
	const (
		ops      = 10_000
		universe = 512 // distinct page contents in play
	)
	phys := mem.New(uint64(universe+64) * mem.PageSize)
	tree := New(func(a, b mem.PFN) (int, int) { return phys.ComparePage(a, b) })

	// makePage allocates a frame whose first two bytes encode the content
	// id; distinct ids give distinct, totally ordered contents.
	makePage := func(id int) mem.PFN {
		pfn, err := phys.Alloc()
		if err != nil {
			t.Fatalf("out of frames: the test leaked allocations (%v)", err)
		}
		pg := phys.Page(pfn)
		pg[0] = byte(id >> 8)
		pg[1] = byte(id)
		return pfn
	}

	r := sim.NewRNG(0xB1ACCED)
	live := map[int]*Node{}
	inserts, deletes := 0, 0
	for op := 0; op < ops; op++ {
		id := r.Intn(universe)
		if n, ok := live[id]; ok && r.Bool(0.45) {
			tree.Delete(n)
			phys.DecRef(n.PFN)
			delete(live, id)
			deletes++
		} else if !ok {
			n, inserted := tree.InsertOrGet(makePage(id), id)
			if !inserted {
				t.Fatalf("op %d: content %d not live but tree found a duplicate", op, id)
			}
			live[id] = n
			inserts++
		} else {
			// Content already present: InsertOrGet must return the existing
			// node, not insert a duplicate.
			pfn := makePage(id)
			got, inserted := tree.InsertOrGet(pfn, nil)
			phys.DecRef(pfn)
			if inserted || got != n {
				t.Fatalf("op %d: duplicate content %d not deduplicated", op, id)
			}
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("op %d (after %d inserts, %d deletes, size %d): %v",
				op, inserts, deletes, tree.Size(), err)
		}
		if tree.Size() != len(live) {
			t.Fatalf("op %d: size %d != %d live nodes", op, tree.Size(), len(live))
		}
	}
	if inserts < ops/10 || deletes < ops/10 {
		t.Fatalf("operation mix degenerate: %d inserts, %d deletes", inserts, deletes)
	}

	// In-order traversal must visit strictly increasing contents and agree
	// with the live set.
	last, started, visited := -1, false, 0
	tree.InOrder(func(n *Node) bool {
		id := int(phys.Page(n.PFN)[0])<<8 | int(phys.Page(n.PFN)[1])
		if started && id <= last {
			t.Fatalf("in-order violation: %d after %d", id, last)
		}
		if live[id] != n {
			t.Fatalf("in-order visited node not in live set: id %d", id)
		}
		last, started = id, true
		visited++
		return true
	})
	if visited != len(live) {
		t.Fatalf("in-order visited %d nodes, live %d", visited, len(live))
	}

	// Drain the tree and verify the fixture leaked no frames.
	for id, n := range live {
		tree.Delete(n)
		phys.DecRef(n.PFN)
		delete(live, id)
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("draining id %d: %v", id, err)
		}
	}
	if tree.Size() != 0 || tree.Root() != nil {
		t.Fatal("tree not empty after drain")
	}
	if phys.AllocatedFrames() != 0 {
		t.Fatalf("%d frames leaked", phys.AllocatedFrames())
	}
}
