package mem

import (
	"testing"

	"repro/internal/sim"
)

// TestZeroFillsCountsOnlyRealWork pins the accounting fix: fresh arena
// frames are already zero, so handing them out must not count as zero-fill
// work; only recycling a frame that actually held data does.
func TestZeroFillsCountsOnlyRealWork(t *testing.T) {
	p := New(4 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	if p.ZeroFills != 0 {
		t.Fatalf("ZeroFills = %d after fresh allocs, want 0", p.ZeroFills)
	}
	p.Page(a)[7] = 0xAA
	p.DecRef(a)
	p.DecRef(b)
	// Both freed frames are marked dirty on free, so the recycled alloc
	// (whichever frame it hands back) must scrub exactly once.
	c, _ := p.Alloc()
	if p.ZeroFills != 1 {
		t.Fatalf("ZeroFills = %d after one recycled alloc, want 1", p.ZeroFills)
	}
	if p.Page(c)[7] != 0 {
		t.Fatal("recycled frame leaked previous contents")
	}
}

// TestAllocForCopySkipsZeroing pins the alloc-for-copy path: the frame is
// not scrubbed (the caller fully overwrites it), and ZeroFills stays put.
func TestAllocForCopySkipsZeroing(t *testing.T) {
	p := New(4 * PageSize)
	src, _ := p.Alloc()
	for i := range p.Page(src) {
		p.Page(src)[i] = byte(i)
	}
	victim, _ := p.Alloc()
	p.Page(victim)[0] = 0xEE
	p.DecRef(victim)

	zf := p.ZeroFills
	dst, err := p.AllocForCopy()
	if err != nil {
		t.Fatal(err)
	}
	if p.ZeroFills != zf {
		t.Fatalf("AllocForCopy zeroed: ZeroFills %d -> %d", zf, p.ZeroFills)
	}
	p.CopyPage(dst, src)
	same, n := p.SamePage(dst, src)
	if !same || n != PageSize {
		t.Fatalf("copy mismatch: same=%v bytes=%d", same, n)
	}
	// The copied-over frame held data; if it is ever freed and re-allocated
	// with Alloc, it must be scrubbed again.
	p.DecRef(dst)
	back, _ := p.Alloc()
	if p.ZeroFills != zf+1 {
		t.Fatalf("recycled copy frame not scrubbed (ZeroFills = %d, want %d)", p.ZeroFills, zf+1)
	}
	if !p.IsZero(back) {
		t.Fatal("recycled copy frame leaked contents")
	}
}

// TestWordCompareMatchesByteReference exhaustively checks the word-at-a-time
// compare against the byte-wise reference at every divergence offset within
// a word, at word boundaries, at page start/end, and on equal pages: the
// memcmp sign and the bytes-examined count must be identical.
func TestWordCompareMatchesByteReference(t *testing.T) {
	p := New(2 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	pa, pb := p.Page(a), p.Page(b)
	r := sim.NewRNG(7)

	positions := []int{0, 1, 6, 7, 8, 9, 15, 16, 63, 64, 100, 2048, 4087, 4088, 4094, 4095}
	check := func() {
		t.Helper()
		p.SetCompareMode(CompareWord)
		wc, wn := p.ComparePage(a, b)
		ws, wsn := p.SamePage(a, b)
		p.SetCompareMode(CompareByte)
		bc, bn := p.ComparePage(a, b)
		bs, bsn := p.SamePage(a, b)
		p.SetCompareMode(CompareWord)
		if wc != bc || wn != bn {
			t.Fatalf("ComparePage: word (%d,%d) != byte (%d,%d)", wc, wn, bc, bn)
		}
		if ws != bs || wsn != bsn {
			t.Fatalf("SamePage: word (%v,%d) != byte (%v,%d)", ws, wsn, bs, bsn)
		}
	}

	for trial := 0; trial < 20; trial++ {
		r.FillBytes(pa)
		copy(pb, pa)
		check() // equal pages
		for _, pos := range positions {
			copy(pb, pa)
			for pb[pos] == pa[pos] {
				pb[pos] = byte(r.Intn(256))
			}
			if pos+1 < PageSize {
				// Trailing garbage after the divergence must not matter.
				pb[pos+1] = byte(r.Intn(256))
			}
			check()
		}
		// Random multi-byte divergence.
		r.FillBytes(pb)
		check()
	}
}

// TestComparePageZeroAlloc enforces the hot-path allocation contract for
// steady-state comparisons (both modes).
func TestComparePageZeroAlloc(t *testing.T) {
	p := New(2 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	p.Page(b)[PageSize-1] = 1 // worst case: full-page scan
	for _, mode := range []CompareMode{CompareWord, CompareByte} {
		p.SetCompareMode(mode)
		if n := testing.AllocsPerRun(100, func() {
			p.ComparePage(a, b)
			p.SamePage(a, b)
		}); n != 0 {
			t.Fatalf("mode %d: %v allocs per compare, want 0", mode, n)
		}
	}
}

func TestFirstNonZero(t *testing.T) {
	for _, size := range []int{0, 1, 7, 8, 9, 63, 64, PageSize} {
		b := make([]byte, size)
		if got := FirstNonZero(b); got != -1 {
			t.Fatalf("len %d all-zero: got %d, want -1", size, got)
		}
		for _, pos := range []int{0, 1, 6, 7, 8, size / 2, size - 2, size - 1} {
			if pos < 0 || pos >= size {
				continue
			}
			for i := range b {
				b[i] = 0
			}
			b[pos] = 3
			if got := FirstNonZero(b); got != pos {
				t.Fatalf("len %d nonzero at %d: got %d", size, pos, got)
			}
		}
	}
}

// TestArenaAliasingRules pins the §10 aliasing contract: Page returns a
// window whose capacity ends at the frame boundary (appends cannot spill
// into a neighbour), neighbouring frames are disjoint, and a frame's
// backing offset is stable across freelist reuse.
func TestArenaAliasingRules(t *testing.T) {
	p := New(4 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	pa, pb := p.Page(a), p.Page(b)
	if len(pa) != PageSize || cap(pa) != PageSize {
		t.Fatalf("Page len/cap = %d/%d, want %d/%d", len(pa), cap(pa), PageSize, PageSize)
	}
	pa[PageSize-1] = 0x11
	if pb[0] != 0 {
		t.Fatal("write to frame a visible in frame b")
	}
	if &p.ReadLine(a, 3)[0] != &pa[3*LineSize] {
		t.Fatal("ReadLine does not alias the Page view")
	}
	// Offset stability: free and re-allocate; the PFN maps to the same
	// backing window, so a stale view aliases the recycled frame's bytes.
	p.DecRef(a)
	a2, _ := p.Alloc()
	if a2 != a {
		t.Fatalf("freelist reuse handed %d, want %d", a2, a)
	}
	if &p.Page(a2)[0] != &pa[0] {
		t.Fatal("frame offset moved across freelist reuse")
	}
}

// TestDeferredFreesCanonicalOrder pins the parallel-pass contract: frames
// freed in any order while deferred surface to the allocator lowest-PFN
// first, exactly like New's initial layout.
func TestDeferredFreesCanonicalOrder(t *testing.T) {
	p := New(8 * PageSize)
	var pfns []PFN
	for i := 0; i < 6; i++ {
		pfn, _ := p.Alloc()
		pfns = append(pfns, pfn)
	}
	p.BeginDeferredFrees()
	for _, i := range []int{3, 0, 5, 1} { // scrambled release order
		p.DecRef(pfns[i])
	}
	if p.FreeFrames() != 2 {
		t.Fatalf("FreeFrames = %d while deferred, want 2 (only never-allocated)", p.FreeFrames())
	}
	p.EndDeferredFrees()
	if p.FreeFrames() != 6 {
		t.Fatalf("FreeFrames = %d after flush, want 6", p.FreeFrames())
	}
	for _, want := range []PFN{0, 1, 3, 5} {
		got, err := p.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("post-flush alloc = %d, want %d (canonical ascending order)", got, want)
		}
	}
}
