package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocZeroesAndCounts(t *testing.T) {
	p := New(16 * PageSize)
	if p.TotalFrames() != 16 {
		t.Fatalf("TotalFrames = %d, want 16", p.TotalFrames())
	}
	pfn, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range p.Page(pfn) {
		if b != 0 {
			t.Fatalf("fresh frame byte %d = %d, want 0", i, b)
		}
	}
	if p.AllocatedFrames() != 1 || p.FreeFrames() != 15 {
		t.Fatalf("alloc accounting wrong: %d/%d", p.AllocatedFrames(), p.FreeFrames())
	}
	if p.Get(pfn).Refs() != 1 {
		t.Fatalf("fresh frame refs = %d, want 1", p.Get(pfn).Refs())
	}
}

func TestAllocExhaustion(t *testing.T) {
	p := New(2 * PageSize)
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("third alloc err = %v, want ErrOutOfMemory", err)
	}
}

func TestRefcountLifecycle(t *testing.T) {
	p := New(4 * PageSize)
	pfn, _ := p.Alloc()
	p.IncRef(pfn)
	p.IncRef(pfn)
	if p.Get(pfn).Refs() != 3 {
		t.Fatalf("refs = %d, want 3", p.Get(pfn).Refs())
	}
	p.DecRef(pfn)
	p.DecRef(pfn)
	if p.AllocatedFrames() != 1 {
		t.Fatal("frame freed while references remain")
	}
	p.DecRef(pfn)
	if p.AllocatedFrames() != 0 {
		t.Fatal("frame not freed at refcount zero")
	}
	if p.Frees != 1 {
		t.Fatalf("Frees = %d, want 1", p.Frees)
	}
}

func TestFreedFrameIsRezeroedOnReuse(t *testing.T) {
	p := New(1 * PageSize)
	pfn, _ := p.Alloc()
	p.Page(pfn)[100] = 0xAB
	p.DecRef(pfn)
	pfn2, err := p.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if p.Page(pfn2)[100] != 0 {
		t.Fatal("reused frame leaked previous contents (information leak)")
	}
}

func TestAccessUnallocatedPanics(t *testing.T) {
	p := New(4 * PageSize)
	pfn, _ := p.Alloc()
	p.DecRef(pfn)
	defer func() {
		if recover() == nil {
			t.Fatal("access to freed frame did not panic")
		}
	}()
	p.Page(pfn)
}

func TestPeakTracksHighWater(t *testing.T) {
	p := New(8 * PageSize)
	var pfns []PFN
	for i := 0; i < 5; i++ {
		pfn, _ := p.Alloc()
		pfns = append(pfns, pfn)
	}
	for _, pfn := range pfns {
		p.DecRef(pfn)
	}
	if p.PeakFrames() != 5 {
		t.Fatalf("peak = %d, want 5", p.PeakFrames())
	}
	if p.AllocatedFrames() != 0 {
		t.Fatalf("allocated = %d, want 0", p.AllocatedFrames())
	}
}

func TestSameAndComparePage(t *testing.T) {
	p := New(4 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	same, n := p.SamePage(a, b)
	if !same || n != PageSize {
		t.Fatalf("identical zero pages: same=%v n=%d", same, n)
	}
	p.Page(b)[10] = 5
	same, n = p.SamePage(a, b)
	if same {
		t.Fatal("different pages reported same")
	}
	if n != 11 {
		t.Fatalf("divergence cost = %d bytes, want 11 (compare stops at first diff)", n)
	}
	cmp, _ := p.ComparePage(a, b)
	if cmp >= 0 {
		t.Fatalf("ComparePage = %d, want negative (0x00 < 0x05)", cmp)
	}
	cmp, _ = p.ComparePage(b, a)
	if cmp <= 0 {
		t.Fatalf("reversed ComparePage = %d, want positive", cmp)
	}
	cmp, n = p.ComparePage(a, a)
	if cmp != 0 || n != PageSize {
		t.Fatalf("self compare = %d/%d", cmp, n)
	}
}

func TestComparePageAntisymmetricQuick(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		p := New(2 * PageSize)
		a, _ := p.Alloc()
		b, _ := p.Alloc()
		r.FillBytes(p.Page(a))
		copy(p.Page(b), p.Page(a))
		// Perturb b at a random position half the time.
		if r.Bool(0.5) {
			p.Page(b)[r.Intn(PageSize)] ^= byte(1 + r.Intn(255))
		}
		ab, _ := p.ComparePage(a, b)
		ba, _ := p.ComparePage(b, a)
		return ab == -ba
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyPageAndIsZero(t *testing.T) {
	p := New(4 * PageSize)
	a, _ := p.Alloc()
	b, _ := p.Alloc()
	if !p.IsZero(a) {
		t.Fatal("fresh frame not zero")
	}
	p.Page(a)[0] = 1
	if p.IsZero(a) {
		t.Fatal("dirty frame reported zero")
	}
	p.CopyPage(b, a)
	if same, _ := p.SamePage(a, b); !same {
		t.Fatal("CopyPage did not copy")
	}
}

func TestCoWFlag(t *testing.T) {
	p := New(2 * PageSize)
	pfn, _ := p.Alloc()
	if p.Get(pfn).CoW() {
		t.Fatal("fresh frame marked CoW")
	}
	p.SetCoW(pfn, true)
	if !p.Get(pfn).CoW() {
		t.Fatal("SetCoW had no effect")
	}
	// CoW state must not survive free/realloc.
	p.DecRef(pfn)
	pfn2, _ := p.Alloc()
	if p.Get(pfn2).CoW() {
		t.Fatal("CoW flag leaked across reallocation")
	}
}

func TestReadLineBounds(t *testing.T) {
	p := New(PageSize)
	pfn, _ := p.Alloc()
	p.Page(pfn)[64] = 0xCD
	line := p.ReadLine(pfn, 1)
	if len(line) != LineSize || line[0] != 0xCD {
		t.Fatal("ReadLine returned wrong slice")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range line index did not panic")
		}
	}()
	p.ReadLine(pfn, LinesPerPage)
}

func TestAddressHelpers(t *testing.T) {
	pfn := PFN(3)
	if pfn.Base() != 3*PageSize {
		t.Fatalf("Base = %d", pfn.Base())
	}
	if pfn.LineAddr(2) != 3*PageSize+128 {
		t.Fatalf("LineAddr = %d", pfn.LineAddr(2))
	}
	a := Addr(3*PageSize + 130)
	if PFNOf(a) != 3 {
		t.Fatalf("PFNOf = %d", PFNOf(a))
	}
	if LineIndexOf(a) != 2 {
		t.Fatalf("LineIndexOf = %d", LineIndexOf(a))
	}
}
