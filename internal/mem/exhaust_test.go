package mem

import (
	"errors"
	"testing"
)

// TestExhaustionTyped pins the exhaustion contract: both Alloc variants
// return ErrOutOfFrames (never panic), the historical ErrOutOfMemory alias
// still matches, and AllocFails counts every failed attempt.
func TestExhaustionTyped(t *testing.T) {
	p := New(4 * PageSize)
	var got []PFN
	for {
		pfn, err := p.Alloc()
		if err != nil {
			if !errors.Is(err, ErrOutOfFrames) {
				t.Fatalf("exhaustion err = %v, want ErrOutOfFrames", err)
			}
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatal("ErrOutOfMemory alias does not match ErrOutOfFrames")
			}
			break
		}
		got = append(got, pfn)
	}
	if len(got) != 4 {
		t.Fatalf("allocated %d frames from a 4-frame arena", len(got))
	}
	if _, err := p.AllocForCopy(); !errors.Is(err, ErrOutOfFrames) {
		t.Fatalf("AllocForCopy exhaustion err = %v, want ErrOutOfFrames", err)
	}
	if p.AllocFails != 2 {
		t.Fatalf("AllocFails = %d, want 2", p.AllocFails)
	}
}

// TestExhaustionRecovery drives the full alloc-fail → free → alloc-succeed
// sequence and checks that recovery preserves the canonical lowest-PFN
// allocation order: after frames are returned in arbitrary order, Alloc
// must hand them back lowest-first, exactly as a fresh freelist would.
func TestExhaustionRecovery(t *testing.T) {
	const frames = 8
	p := New(frames * PageSize)
	all := make([]PFN, 0, frames)
	for i := 0; i < frames; i++ {
		pfn, err := p.Alloc()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		if pfn != PFN(i) {
			t.Fatalf("alloc %d handed frame %d, want lowest-first", i, pfn)
		}
		all = append(all, pfn)
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfFrames) {
		t.Fatalf("exhausted arena err = %v", err)
	}

	// Free a scattered subset in non-canonical order.
	for _, pfn := range []PFN{5, 1, 6, 2} {
		p.DecRef(pfn)
	}
	if p.FreeFrames() != 4 {
		t.Fatalf("FreeFrames = %d after freeing 4", p.FreeFrames())
	}
	// Recovery must succeed and follow PFN order, independent of free order.
	for _, want := range []PFN{1, 2, 5, 6} {
		pfn, err := p.Alloc()
		if err != nil {
			t.Fatalf("post-recovery alloc: %v", err)
		}
		if pfn != want {
			t.Fatalf("post-recovery alloc handed frame %d, want %d", pfn, want)
		}
	}
	if _, err := p.Alloc(); !errors.Is(err, ErrOutOfFrames) {
		t.Fatal("arena should be exhausted again")
	}

	// Same property through a deferred-free window (parallel-pass mode).
	p.BeginDeferredFrees()
	for _, pfn := range []PFN{7, 0, 3} {
		p.DecRef(pfn)
	}
	if p.FreeFrames() != 0 {
		t.Fatal("deferred frees leaked into the freelist before the join")
	}
	p.EndDeferredFrees()
	for _, want := range []PFN{0, 3, 7} {
		pfn, err := p.Alloc()
		if err != nil {
			t.Fatalf("post-join alloc: %v", err)
		}
		if pfn != want {
			t.Fatalf("post-join alloc handed frame %d, want %d", pfn, want)
		}
	}
	_ = all
}
