package mem

import "fmt"

// Checkpoint support. PhysState is a plain-data, gob-friendly image of the
// physical memory: arena bytes, per-frame metadata, the canonical freelist,
// and the allocation counters. Capturing and restoring it is bit-exact —
// the freelist order is preserved verbatim so post-restore allocation order
// matches the uninterrupted run.

// FrameState is the exported image of one frame's metadata.
type FrameState struct {
	Refs  int
	CoW   bool
	Dirty bool
}

// PhysState is the full serialized image of a Phys.
type PhysState struct {
	Arena     []byte
	Frames    []FrameState
	Free      []PFN
	Allocated int
	Peak      int

	Allocs     uint64
	AllocFails uint64
	Frees      uint64
	ZeroFills  uint64
}

// State captures the memory image. It must be called at a quiescent point:
// deferred-free mode (a parallel scan pass in flight) has pending frames
// whose ordering is not yet canonical, so capturing there is an error.
func (p *Phys) State() (PhysState, error) {
	if p.deferFrees || len(p.pending) > 0 {
		return PhysState{}, fmt.Errorf("mem: checkpoint during deferred-free window (%d pending)", len(p.pending))
	}
	st := PhysState{
		Arena:      append([]byte(nil), p.arena...),
		Frames:     make([]FrameState, len(p.frames)),
		Free:       append([]PFN(nil), p.free...),
		Allocated:  p.allocated,
		Peak:       p.peak,
		Allocs:     p.Allocs,
		AllocFails: p.AllocFails,
		Frees:      p.Frees,
		ZeroFills:  p.ZeroFills,
	}
	for i, f := range p.frames {
		st.Frames[i] = FrameState{Refs: f.refs, CoW: f.cow, Dirty: f.dirty}
	}
	return st, nil
}

// SetState restores a previously captured image in place. The frame count
// must match the live machine (capacity is configuration, not state).
func (p *Phys) SetState(st PhysState) error {
	if len(st.Frames) != len(p.frames) || len(st.Arena) != len(p.arena) {
		return fmt.Errorf("mem: restore frame-count mismatch (have %d frames, snapshot %d)",
			len(p.frames), len(st.Frames))
	}
	copy(p.arena, st.Arena)
	for i, f := range st.Frames {
		p.frames[i] = Frame{refs: f.Refs, cow: f.CoW, dirty: f.Dirty}
	}
	p.free = append(p.free[:0], st.Free...)
	p.allocated = st.Allocated
	p.peak = st.Peak
	p.deferFrees = false
	p.pending = p.pending[:0]
	p.Allocs = st.Allocs
	p.AllocFails = st.AllocFails
	p.Frees = st.Frees
	p.ZeroFills = st.ZeroFills
	return nil
}
