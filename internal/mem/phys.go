// Package mem models the host physical memory of the simulated server:
// 4KB frames with reference counts, zero-fill-on-allocate semantics (the
// hypervisor zeroes pages before handing them to a guest, which is what
// makes "mergeable zero" pages exist at all), and copy-on-write sharing
// state used by same-page merging.
package mem

import (
	"errors"
	"fmt"
)

// PageSize is the frame size in bytes.
const PageSize = 4096

// LineSize is the cache-line size in bytes.
const LineSize = 64

// LinesPerPage is the number of cache lines in a frame.
const LinesPerPage = PageSize / LineSize

// PFN is a physical frame number. Frame f spans physical addresses
// [f*PageSize, (f+1)*PageSize).
type PFN uint64

// Addr is a byte-granularity physical address.
type Addr uint64

// Base reports the first physical address of the frame.
func (p PFN) Base() Addr { return Addr(p) * PageSize }

// LineAddr reports the physical address of the i-th line of the frame.
func (p PFN) LineAddr(i int) Addr { return p.Base() + Addr(i*LineSize) }

// PFNOf reports the frame containing the address.
func PFNOf(a Addr) PFN { return PFN(a / PageSize) }

// LineIndexOf reports the within-page line index of the address.
func LineIndexOf(a Addr) int { return int(a % PageSize / LineSize) }

// ErrOutOfMemory is returned by Alloc when no free frames remain.
var ErrOutOfMemory = errors.New("mem: out of physical memory")

// Frame is the per-frame metadata the hypervisor tracks.
type Frame struct {
	data []byte
	refs int  // number of guest mappings pointing at this frame
	cow  bool // write-protected shared frame (merged or pre-CoW)
}

// Refs reports the number of mappings sharing the frame.
func (f *Frame) Refs() int { return f.refs }

// CoW reports whether the frame is write-protected copy-on-write.
func (f *Frame) CoW() bool { return f.cow }

// Phys is the physical memory of the machine.
type Phys struct {
	frames    []Frame
	free      []PFN
	allocated int
	peak      int

	// Statistics of interest to the evaluation.
	Allocs    uint64 // total Alloc calls
	Frees     uint64 // frames returned to the freelist
	ZeroFills uint64 // frames zeroed on allocation
}

// New creates a physical memory of the given capacity in bytes, rounded
// down to whole frames.
func New(capacity uint64) *Phys {
	n := int(capacity / PageSize)
	p := &Phys{frames: make([]Frame, n), free: make([]PFN, 0, n)}
	// Freelist in descending order so allocation hands out ascending PFNs,
	// which makes tests and traces readable.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, PFN(i))
	}
	return p
}

// TotalFrames reports the machine's frame count.
func (p *Phys) TotalFrames() int { return len(p.frames) }

// AllocatedFrames reports the number of frames currently in use.
func (p *Phys) AllocatedFrames() int { return p.allocated }

// PeakFrames reports the high-water mark of allocated frames.
func (p *Phys) PeakFrames() int { return p.peak }

// FreeFrames reports the number of frames available for allocation.
func (p *Phys) FreeFrames() int { return len(p.free) }

// Alloc hands out a zeroed frame with refcount 1.
func (p *Phys) Alloc() (PFN, error) {
	if len(p.free) == 0 {
		return 0, ErrOutOfMemory
	}
	pfn := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	f := &p.frames[pfn]
	if f.data == nil {
		f.data = make([]byte, PageSize)
	} else {
		for i := range f.data {
			f.data[i] = 0
		}
	}
	p.ZeroFills++
	f.refs = 1
	f.cow = false
	p.allocated++
	if p.allocated > p.peak {
		p.peak = p.allocated
	}
	p.Allocs++
	return pfn, nil
}

func (p *Phys) frame(pfn PFN) *Frame {
	if int(pfn) >= len(p.frames) {
		panic(fmt.Sprintf("mem: PFN %d out of range (%d frames)", pfn, len(p.frames)))
	}
	f := &p.frames[pfn]
	if f.refs == 0 {
		panic(fmt.Sprintf("mem: access to unallocated frame %d", pfn))
	}
	return f
}

// Get returns the metadata of an allocated frame.
func (p *Phys) Get(pfn PFN) *Frame { return p.frame(pfn) }

// Allocated reports whether the frame currently backs any mapping. The
// patrol scrubber uses it to walk the array without tripping the
// unallocated-access panic.
func (p *Phys) Allocated(pfn PFN) bool {
	return int(pfn) < len(p.frames) && p.frames[pfn].refs > 0
}

// IncRef adds a mapping reference to the frame (page merging points an
// additional guest page at it).
func (p *Phys) IncRef(pfn PFN) { p.frame(pfn).refs++ }

// DecRef drops a mapping reference; when the last reference is gone the
// frame returns to the freelist.
func (p *Phys) DecRef(pfn PFN) {
	f := p.frame(pfn)
	f.refs--
	if f.refs == 0 {
		f.cow = false
		p.allocated--
		p.Frees++
		p.free = append(p.free, pfn)
	}
}

// SetCoW marks the frame write-protected (shared read-only).
func (p *Phys) SetCoW(pfn PFN, cow bool) { p.frame(pfn).cow = cow }

// Page returns the frame's backing bytes. Callers must treat CoW frames as
// read-only; guest writes go through the hypervisor's fault path.
func (p *Phys) Page(pfn PFN) []byte { return p.frame(pfn).data }

// ReadLine returns the i-th 64B line of the frame.
func (p *Phys) ReadLine(pfn PFN, i int) []byte {
	if i < 0 || i >= LinesPerPage {
		panic(fmt.Sprintf("mem: line index %d out of range", i))
	}
	return p.frame(pfn).data[i*LineSize : (i+1)*LineSize]
}

// CopyPage copies the contents of frame src into frame dst.
func (p *Phys) CopyPage(dst, src PFN) {
	copy(p.frame(dst).data, p.frame(src).data)
}

// SamePage reports whether two frames have byte-identical contents, along
// with the number of bytes that were compared before the verdict (the cost
// a software comparator would pay: compare until first divergence).
func (p *Phys) SamePage(a, b PFN) (bool, int) {
	pa, pb := p.frame(a).data, p.frame(b).data
	for i := 0; i < PageSize; i++ {
		if pa[i] != pb[i] {
			return false, i + 1
		}
	}
	return true, PageSize
}

// ComparePage is a three-way byte-wise content comparison (memcmp order),
// returning <0, 0, >0 and the number of bytes examined. Content-indexed
// tree search uses the sign to branch left or right.
func (p *Phys) ComparePage(a, b PFN) (int, int) {
	pa, pb := p.frame(a).data, p.frame(b).data
	for i := 0; i < PageSize; i++ {
		if pa[i] != pb[i] {
			if pa[i] < pb[i] {
				return -1, i + 1
			}
			return 1, i + 1
		}
	}
	return 0, PageSize
}

// ContentKey is a 64-bit FNV-1a digest of the frame's full contents, used
// by verification tooling to group frames by content cheaply. Equal pages
// have equal keys; distinct keys imply distinct contents (collisions are
// possible in principle but negligible at simulated scales).
func (p *Phys) ContentKey(pfn PFN) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p.frame(pfn).data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// IsZero reports whether the frame is all zeroes.
func (p *Phys) IsZero(pfn PFN) bool {
	for _, b := range p.frame(pfn).data {
		if b != 0 {
			return false
		}
	}
	return true
}
