// Package mem models the host physical memory of the simulated server:
// 4KB frames with reference counts, zero-fill-on-allocate semantics (the
// hypervisor zeroes pages before handing them to a guest, which is what
// makes "mergeable zero" pages exist at all), and copy-on-write sharing
// state used by same-page merging.
//
// Frames are backed by one contiguous arena: Page and ReadLine hand out
// sub-slices of a single []byte allocated up front, so the scan hot path
// creates no garbage and page data is laid out with real spatial locality.
// Frame offsets are fixed by PFN, so views stay stable across freelist
// reuse (see DESIGN.md §10 for the aliasing rules).
package mem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// PageSize is the frame size in bytes.
const PageSize = 4096

// LineSize is the cache-line size in bytes.
const LineSize = 64

// LinesPerPage is the number of cache lines in a frame.
const LinesPerPage = PageSize / LineSize

// PFN is a physical frame number. Frame f spans physical addresses
// [f*PageSize, (f+1)*PageSize).
type PFN uint64

// Addr is a byte-granularity physical address.
type Addr uint64

// Base reports the first physical address of the frame.
func (p PFN) Base() Addr { return Addr(p) * PageSize }

// LineAddr reports the physical address of the i-th line of the frame.
func (p PFN) LineAddr(i int) Addr { return p.Base() + Addr(i*LineSize) }

// PFNOf reports the frame containing the address.
func PFNOf(a Addr) PFN { return PFN(a / PageSize) }

// LineIndexOf reports the within-page line index of the address.
func LineIndexOf(a Addr) int { return int(a % PageSize / LineSize) }

// ErrOutOfFrames is returned by the Alloc variants when no free frames
// remain. Exhaustion is an expected condition under overcommit — callers
// (the hypervisor's fault and CoW-break paths) stall, reclaim, and retry
// rather than treating it as fatal.
var ErrOutOfFrames = errors.New("mem: out of physical frames")

// ErrOutOfMemory is the historical name of ErrOutOfFrames.
var ErrOutOfMemory = ErrOutOfFrames

// Frame is the per-frame metadata the hypervisor tracks.
type Frame struct {
	refs  int  // number of guest mappings pointing at this frame
	cow   bool // write-protected shared frame (merged or pre-CoW)
	dirty bool // arena bytes may be nonzero from a previous owner
}

// Refs reports the number of mappings sharing the frame.
func (f *Frame) Refs() int { return f.refs }

// CoW reports whether the frame is write-protected copy-on-write.
func (f *Frame) CoW() bool { return f.cow }

// CompareMode selects the page-comparison implementation.
type CompareMode int

const (
	// CompareWord is the word-at-a-time early-exit comparison (default):
	// uint64 loads with a bit-scan to locate the first differing byte, so
	// the memcmp sign and the bytes-examined count are bit-identical to the
	// byte-wise loop at ~8x the throughput.
	CompareWord CompareMode = iota
	// CompareByte is the reference byte-wise loop. The bench suite uses it
	// as the committed baseline; property tests pin CompareWord against it.
	CompareByte
)

// Phys is the physical memory of the machine.
type Phys struct {
	arena  []byte
	frames []Frame
	free   []PFN

	allocated int
	peak      int
	cmpMode   CompareMode

	// Deferred-free mode: while a sharded scan pass runs workers in
	// parallel, frames released by merges are parked under mu and flushed
	// to the freelist in canonical PFN order at the pass join, so the
	// freelist state never depends on worker interleaving.
	mu         sync.Mutex
	deferFrees bool
	pending    []PFN

	// Statistics of interest to the evaluation.
	Allocs     uint64 // total successful Alloc calls
	AllocFails uint64 // Alloc calls that found an empty freelist
	Frees      uint64 // frames returned to the freelist
	ZeroFills  uint64 // frames actually zeroed on allocation
}

// New creates a physical memory of the given capacity in bytes, rounded
// down to whole frames.
func New(capacity uint64) *Phys {
	n := int(capacity / PageSize)
	p := &Phys{
		arena:  make([]byte, n*PageSize),
		frames: make([]Frame, n),
		free:   make([]PFN, 0, n),
	}
	// The freelist is kept sorted descending at all times, so Alloc (which
	// pops from the end) always hands out the lowest free PFN. Allocation
	// order is therefore a function of the free SET alone, never of release
	// order — the property that makes a parallel scan pass's frame
	// assignment bit-identical to a sequential one.
	for i := n - 1; i >= 0; i-- {
		p.free = append(p.free, PFN(i))
	}
	return p
}

// insertFree returns pfn to the freelist, preserving descending order.
func (p *Phys) insertFree(pfn PFN) {
	i := sort.Search(len(p.free), func(i int) bool { return p.free[i] < pfn })
	p.free = append(p.free, 0)
	copy(p.free[i+1:], p.free[i:])
	p.free[i] = pfn
}

// SetCompareMode selects the comparison implementation for SamePage and
// ComparePage. Both modes return identical (sign, bytes) results; the bench
// suite switches to CompareByte to measure the legacy baseline.
func (p *Phys) SetCompareMode(m CompareMode) { p.cmpMode = m }

// TotalFrames reports the machine's frame count.
func (p *Phys) TotalFrames() int { return len(p.frames) }

// AllocatedFrames reports the number of frames currently in use.
func (p *Phys) AllocatedFrames() int { return p.allocated }

// PeakFrames reports the high-water mark of allocated frames.
func (p *Phys) PeakFrames() int { return p.peak }

// FreeFrames reports the number of frames available for allocation.
func (p *Phys) FreeFrames() int { return len(p.free) }

// pageAt returns the frame's arena window. The three-index slice caps the
// view at the frame boundary so an erroneous append can never spill into a
// neighbouring frame's bytes.
func (p *Phys) pageAt(pfn PFN) []byte {
	base := int(pfn) * PageSize
	return p.arena[base : base+PageSize : base+PageSize]
}

// take pops a frame off the freelist and marks it allocated (common body of
// the Alloc variants; zeroing policy is the caller's).
func (p *Phys) take() (PFN, error) {
	if len(p.free) == 0 {
		p.AllocFails++
		return 0, ErrOutOfFrames
	}
	pfn := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	f := &p.frames[pfn]
	f.refs = 1
	f.cow = false
	p.allocated++
	if p.allocated > p.peak {
		p.peak = p.allocated
	}
	p.Allocs++
	return pfn, nil
}

// Alloc hands out a zeroed frame with refcount 1. Fresh frames come out of
// the arena already zero; only recycled frames that were actually written
// since are scrubbed, and ZeroFills counts exactly that real zeroing work.
func (p *Phys) Alloc() (PFN, error) {
	pfn, err := p.take()
	if err != nil {
		return 0, err
	}
	f := &p.frames[pfn]
	if f.dirty {
		pg := p.pageAt(pfn)
		for i := range pg {
			pg[i] = 0
		}
		f.dirty = false
		p.ZeroFills++
	}
	return pfn, nil
}

// AllocForCopy hands out a frame with unspecified contents: the caller must
// fully overwrite the page (CopyPage) before exposing it. CoW breaks use it
// to skip the redundant zero-fill that Alloc would pay just before the copy.
func (p *Phys) AllocForCopy() (PFN, error) {
	pfn, err := p.take()
	if err != nil {
		return 0, err
	}
	// Whatever the caller writes, the frame no longer holds zeroes.
	p.frames[pfn].dirty = true
	return pfn, nil
}

func (p *Phys) frame(pfn PFN) *Frame {
	if int(pfn) >= len(p.frames) {
		panic(fmt.Sprintf("mem: PFN %d out of range (%d frames)", pfn, len(p.frames)))
	}
	f := &p.frames[pfn]
	if f.refs == 0 {
		panic(fmt.Sprintf("mem: access to unallocated frame %d", pfn))
	}
	return f
}

// Get returns the metadata of an allocated frame.
func (p *Phys) Get(pfn PFN) *Frame { return p.frame(pfn) }

// Allocated reports whether the frame currently backs any mapping. The
// patrol scrubber uses it to walk the array without tripping the
// unallocated-access panic.
func (p *Phys) Allocated(pfn PFN) bool {
	return int(pfn) < len(p.frames) && p.frames[pfn].refs > 0
}

// IncRef adds a mapping reference to the frame (page merging points an
// additional guest page at it).
func (p *Phys) IncRef(pfn PFN) { p.frame(pfn).refs++ }

// DecRef drops a mapping reference; when the last reference is gone the
// frame returns to the freelist (or the pending list in deferred mode).
func (p *Phys) DecRef(pfn PFN) {
	f := p.frame(pfn)
	f.refs--
	if f.refs != 0 {
		return
	}
	f.cow = false
	// The page held guest data; the next zeroing Alloc must scrub it.
	f.dirty = true
	if p.deferFrees {
		p.mu.Lock()
		p.allocated--
		p.Frees++
		p.pending = append(p.pending, pfn)
		p.mu.Unlock()
		return
	}
	p.allocated--
	p.Frees++
	p.insertFree(pfn)
}

// BeginDeferredFrees switches DecRef to park fully-released frames on a
// pending list instead of the freelist. A parallel scan pass brackets its
// workers with Begin/EndDeferredFrees so freelist order stays canonical.
func (p *Phys) BeginDeferredFrees() { p.deferFrees = true }

// EndDeferredFrees flushes pending frames to the freelist, restoring its
// descending sorted order independent of the order workers released them.
func (p *Phys) EndDeferredFrees() {
	p.deferFrees = false
	p.free = append(p.free, p.pending...)
	sort.Slice(p.free, func(i, j int) bool { return p.free[i] > p.free[j] })
	p.pending = p.pending[:0]
}

// SetCoW marks the frame write-protected (shared read-only).
func (p *Phys) SetCoW(pfn PFN, cow bool) { p.frame(pfn).cow = cow }

// Page returns the frame's backing bytes: a window into the shared arena,
// capped at the frame boundary. Callers must treat CoW frames as read-only;
// guest writes go through the hypervisor's fault path.
func (p *Phys) Page(pfn PFN) []byte {
	p.frame(pfn)
	return p.pageAt(pfn)
}

// ReadLine returns the i-th 64B line of the frame.
func (p *Phys) ReadLine(pfn PFN, i int) []byte {
	if i < 0 || i >= LinesPerPage {
		panic(fmt.Sprintf("mem: line index %d out of range", i))
	}
	return p.Page(pfn)[i*LineSize : (i+1)*LineSize]
}

// CopyPage copies the contents of frame src into frame dst.
func (p *Phys) CopyPage(dst, src PFN) {
	p.frame(dst)
	p.frame(src)
	copy(p.pageAt(dst), p.pageAt(src))
}

// samePages reports content equality and the bytes examined until the first
// divergence, word-at-a-time with a byte count identical to the byte loop.
func samePages(pa, pb []byte) (bool, int) {
	for off := 0; off < PageSize; off += 8 {
		wa := binary.LittleEndian.Uint64(pa[off : off+8])
		wb := binary.LittleEndian.Uint64(pb[off : off+8])
		if wa != wb {
			// Little-endian load: the lowest differing byte of the word is
			// the first differing byte of the page.
			return false, off + bits.TrailingZeros64(wa^wb)/8 + 1
		}
	}
	return true, PageSize
}

// comparePages is the word-at-a-time three-way comparison: same traversal
// as samePages, with the memcmp sign taken from the first differing byte.
func comparePages(pa, pb []byte) (int, int) {
	for off := 0; off < PageSize; off += 8 {
		wa := binary.LittleEndian.Uint64(pa[off : off+8])
		wb := binary.LittleEndian.Uint64(pb[off : off+8])
		if wa != wb {
			i := off + bits.TrailingZeros64(wa^wb)/8
			if pa[i] < pb[i] {
				return -1, i + 1
			}
			return 1, i + 1
		}
	}
	return 0, PageSize
}

func samePagesByte(pa, pb []byte) (bool, int) {
	for i := 0; i < PageSize; i++ {
		if pa[i] != pb[i] {
			return false, i + 1
		}
	}
	return true, PageSize
}

func comparePagesByte(pa, pb []byte) (int, int) {
	for i := 0; i < PageSize; i++ {
		if pa[i] != pb[i] {
			if pa[i] < pb[i] {
				return -1, i + 1
			}
			return 1, i + 1
		}
	}
	return 0, PageSize
}

// SamePage reports whether two frames have byte-identical contents, along
// with the number of bytes that were compared before the verdict (the cost
// a software comparator would pay: compare until first divergence).
func (p *Phys) SamePage(a, b PFN) (bool, int) {
	pa, pb := p.Page(a), p.Page(b)
	if p.cmpMode == CompareByte {
		return samePagesByte(pa, pb)
	}
	return samePages(pa, pb)
}

// ComparePage is a three-way content comparison (memcmp order), returning
// <0, 0, >0 and the number of bytes examined. Content-indexed tree search
// uses the sign to branch left or right.
func (p *Phys) ComparePage(a, b PFN) (int, int) {
	pa, pb := p.Page(a), p.Page(b)
	if p.cmpMode == CompareByte {
		return comparePagesByte(pa, pb)
	}
	return comparePages(pa, pb)
}

// FirstNonZero scans b for its first nonzero byte word-at-a-time, returning
// its index or -1 when b is all zeroes. The byte index matches what a
// byte-wise scan would report, so zero-check cost accounting is unchanged.
func FirstNonZero(b []byte) int {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		if w := binary.LittleEndian.Uint64(b[i : i+8]); w != 0 {
			return i + bits.TrailingZeros64(w)/8
		}
	}
	for ; i < len(b); i++ {
		if b[i] != 0 {
			return i
		}
	}
	return -1
}

// ContentKey is a 64-bit FNV-1a digest of the frame's full contents, used
// by verification tooling to group frames by content cheaply. Equal pages
// have equal keys; distinct keys imply distinct contents (collisions are
// possible in principle but negligible at simulated scales).
func (p *Phys) ContentKey(pfn PFN) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range p.Page(pfn) {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}

// IsZero reports whether the frame is all zeroes.
func (p *Phys) IsZero(pfn PFN) bool {
	return FirstNonZero(p.Page(pfn)) < 0
}
