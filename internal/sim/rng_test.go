package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identically-seeded generators diverged")
		}
	}
}

func TestRNGSeedsDecorrelated(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck generator")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		nn := int(n%1000) + 1
		r := NewRNG(seed)
		v := r.Intn(nn)
		return v >= 0 && v < nn
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if math.Abs(mean-10) > 0.2 {
		t.Fatalf("Exp(10) sample mean = %g, want ~10", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var o Online
	for i := 0; i < n; i++ {
		o.Add(r.Normal(3, 2))
	}
	if math.Abs(o.Mean()-3) > 0.05 {
		t.Fatalf("Normal mean = %g, want ~3", o.Mean())
	}
	if math.Abs(o.Stddev()-2) > 0.05 {
		t.Fatalf("Normal stddev = %g, want ~2", o.Stddev())
	}
}

func TestLogNormalMean(t *testing.T) {
	r := NewRNG(11)
	const n = 400000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormal(50, 1.0)
	}
	mean := sum / n
	if math.Abs(mean-50)/50 > 0.03 {
		t.Fatalf("LogNormal(50, cv=1) mean = %g, want ~50", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto below xm: %g", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestFillBytesCoversTail(t *testing.T) {
	r := NewRNG(4)
	for _, n := range []int{0, 1, 7, 8, 9, 63, 64, 65} {
		b := make([]byte, n)
		r.FillBytes(b)
		if n >= 16 {
			allZero := true
			for _, v := range b {
				if v != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				t.Fatalf("FillBytes(%d) produced all zeros", n)
			}
		}
	}
}

func TestForkIndependent(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Fork()
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("forked stream mirrors parent")
	}
}
