// Package sim provides the deterministic discrete-event simulation kernel
// used by every other substrate in the PageForge reproduction: a cycle
// clock, an event heap, a seedable pseudo-random number generator, and
// streaming statistics collectors.
//
// All simulated time is expressed in processor cycles (uint64). The modeled
// machine runs at 2 GHz, so helpers are provided to convert wall-clock
// durations used by the paper (e.g. KSM's sleep_millisecs) into cycles.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Cycle is a point in simulated time, measured in processor clock cycles.
type Cycle = uint64

// CyclesPerSecond is the modeled core frequency (Table 2: 2 GHz).
const CyclesPerSecond = 2_000_000_000

// MillisToCycles converts milliseconds of simulated wall-clock time to cycles.
func MillisToCycles(ms float64) Cycle {
	return Cycle(math.Round(ms * CyclesPerSecond / 1e3))
}

// MicrosToCycles converts microseconds of simulated wall-clock time to cycles.
func MicrosToCycles(us float64) Cycle {
	return Cycle(math.Round(us * CyclesPerSecond / 1e6))
}

// CyclesToMillis converts cycles to milliseconds of simulated time.
func CyclesToMillis(c Cycle) float64 {
	return float64(c) * 1e3 / CyclesPerSecond
}

// CyclesToSeconds converts cycles to seconds of simulated time.
func CyclesToSeconds(c Cycle) float64 {
	return float64(c) / CyclesPerSecond
}

// Event is a callback scheduled to fire at a specific cycle.
type Event struct {
	when Cycle
	seq  uint64 // tie-breaker: FIFO among events at the same cycle
	fn   func(now Cycle)
	dead bool
}

// When reports the cycle at which the event is scheduled to fire.
func (e *Event) When() Cycle { return e.when }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired is a no-op.
func (e *Event) Cancel() { e.dead = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. Events scheduled for
// the same cycle fire in FIFO order, which makes runs fully deterministic.
type Engine struct {
	now    Cycle
	seq    uint64
	events eventHeap
	fired  uint64
}

// NewEngine returns an engine with the clock at cycle 0 and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// Fired reports how many events have been executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued (including canceled ones that
// have not been reaped yet).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute cycle when. Scheduling in the past
// panics: it always indicates a modeling bug.
func (e *Engine) At(when Cycle, fn func(now Cycle)) *Event {
	if when < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d, before now=%d", when, e.now))
	}
	ev := &Event{when: when, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func(now Cycle)) *Event {
	return e.At(e.now+delay, fn)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.when
		e.fired++
		ev.fn(e.now)
		return true
	}
	return false
}

// RunUntil fires events until the clock would pass the deadline cycle or the
// queue drains. The clock is left at min(deadline, last event time). Events
// scheduled exactly at the deadline do fire.
func (e *Engine) RunUntil(deadline Cycle) {
	for len(e.events) > 0 {
		// Peek.
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			continue
		}
		if next.when > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// Advance moves the clock forward by delta without firing events. It panics
// if a pending event would be skipped; it exists for simple open-loop models
// that interleave event-driven and analytic phases.
func (e *Engine) Advance(delta Cycle) {
	target := e.now + delta
	for len(e.events) > 0 {
		next := e.events[0]
		if next.dead {
			heap.Pop(&e.events)
			continue
		}
		if next.when <= target {
			panic("sim: Advance would skip a pending event; use RunUntil")
		}
		break
	}
	e.now = target
}
