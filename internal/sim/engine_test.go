package sim

import (
	"testing"
)

func TestEngineFiresInTimestampOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func(Cycle) { order = append(order, 3) })
	e.At(10, func(Cycle) { order = append(order, 1) })
	e.At(20, func(Cycle) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Cycle) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Cycle
	e.At(100, func(now Cycle) {
		e.After(50, func(now Cycle) { at = now })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Cycle) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Cycle) {})
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func(Cycle) { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Cycle
	e.At(10, func(now Cycle) { fired = append(fired, now) })
	e.At(20, func(now Cycle) { fired = append(fired, now) })
	e.At(30, func(now Cycle) { fired = append(fired, now) })
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10 and 20 only", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %d, want 20", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %v", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100 (deadline past last event)", e.Now())
	}
}

func TestAdvanceRejectsSkippingEvents(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Cycle) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Advance skipped a pending event without panicking")
		}
	}()
	e.Advance(20)
}

func TestAdvanceMovesClock(t *testing.T) {
	e := NewEngine()
	e.Advance(123)
	if e.Now() != 123 {
		t.Fatalf("clock = %d, want 123", e.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	if got := MillisToCycles(5); got != 10_000_000 {
		t.Errorf("MillisToCycles(5) = %d, want 10e6", got)
	}
	if got := MicrosToCycles(1); got != 2_000 {
		t.Errorf("MicrosToCycles(1) = %d, want 2000", got)
	}
	if got := CyclesToMillis(2_000_000); got != 1 {
		t.Errorf("CyclesToMillis(2e6) = %g, want 1", got)
	}
	if got := CyclesToSeconds(CyclesPerSecond); got != 1 {
		t.Errorf("CyclesToSeconds(1s) = %g, want 1", got)
	}
}

func TestEngineCascadedEvents(t *testing.T) {
	// An event chain where each event schedules the next; exercises heap
	// growth during Step.
	e := NewEngine()
	count := 0
	var step func(now Cycle)
	step = func(now Cycle) {
		count++
		if count < 1000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	e.Run()
	if count != 1000 {
		t.Fatalf("chain fired %d times, want 1000", count)
	}
	if e.Now() != 999 {
		t.Fatalf("clock = %d, want 999", e.Now())
	}
	if e.Fired() != 1000 {
		t.Fatalf("Fired() = %d, want 1000", e.Fired())
	}
}
