package sim

// State exposes the generator's raw xorshift state so a checkpoint can
// capture the stream position and a restore can resume it bit-exactly.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the generator's state with a previously captured
// value. A zero state would wedge xorshift; it is mapped to the same
// fallback Seed uses.
func (r *RNG) SetState(s uint64) {
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	r.state = s
}

// OnlineState is the plain-data image of an Online accumulator, used by the
// checkpoint codec (gob needs exported fields).
type OnlineState struct {
	N    uint64
	Mean float64
	M2   float64
	Min  float64
	Max  float64
}

// State captures the accumulator.
func (o *Online) State() OnlineState {
	return OnlineState{N: o.n, Mean: o.mean, M2: o.m2, Min: o.min, Max: o.max}
}

// SetState restores a previously captured accumulator image.
func (o *Online) SetState(s OnlineState) {
	o.n, o.mean, o.m2, o.min, o.max = s.N, s.Mean, s.M2, s.Min, s.Max
}
