package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineMoments(t *testing.T) {
	var o Online
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.N() != 8 {
		t.Fatalf("N = %d, want 8", o.N())
	}
	if o.Mean() != 5 {
		t.Fatalf("Mean = %g, want 5", o.Mean())
	}
	// Sample variance of the classic dataset is 32/7.
	if math.Abs(o.Var()-32.0/7) > 1e-12 {
		t.Fatalf("Var = %g, want %g", o.Var(), 32.0/7)
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g, want 2/9", o.Min(), o.Max())
	}
}

func TestOnlineEmptyAndReset(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Var() != 0 || o.Stddev() != 0 {
		t.Fatal("empty Online must report zeros")
	}
	o.Add(5)
	o.Reset()
	if o.N() != 0 || o.Mean() != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestOnlineMatchesDirectComputation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var o Online
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
			o.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		v := 0.0
		for _, x := range xs {
			v += (x - mean) * (x - mean)
		}
		v /= float64(n - 1)
		return math.Abs(o.Mean()-mean) < 1e-9 && math.Abs(o.Var()-v) < 1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	s := NewSample(0)
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("P0 = %g, want 1", got)
	}
	if got := s.Percentile(100); got != 100 {
		t.Errorf("P100 = %g, want 100", got)
	}
	if got := s.Percentile(50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("P50 = %g, want 50.5", got)
	}
	if got := s.P95(); math.Abs(got-95.05) > 1e-9 {
		t.Errorf("P95 = %g, want 95.05", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("Mean = %g, want 50.5", got)
	}
	if got := s.Max(); got != 100 {
		t.Errorf("Max = %g, want 100", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	s := NewSample(4)
	if s.Percentile(95) != 0 || s.Mean() != 0 || s.Max() != 0 {
		t.Fatal("empty Sample must report zeros")
	}
}

func TestSampleAddAfterSortStaysCorrect(t *testing.T) {
	s := NewSample(0)
	s.Add(10)
	_ = s.Percentile(50) // forces a sort
	s.Add(1)
	if got := s.Percentile(0); got != 1 {
		t.Fatalf("min after post-sort Add = %g, want 1", got)
	}
}

func TestSamplePercentileMonotone(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		s := NewSample(0)
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			s.Add(r.Float64() * 1000)
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := s.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10)
	h.Add(0)
	h.Add(5)
	h.Add(9.999)
	h.Add(10)
	h.Add(25)
	if h.Bucket(3) != 3 {
		t.Fatalf("bucket [0,10) = %d, want 3", h.Bucket(3))
	}
	if h.Bucket(10) != 1 {
		t.Fatalf("bucket [10,20) = %d, want 1", h.Bucket(10))
	}
	if h.Bucket(29) != 1 {
		t.Fatalf("bucket [20,30) = %d, want 1", h.Bucket(29))
	}
	if h.N() != 5 {
		t.Fatalf("N = %d, want 5", h.N())
	}
	if h.String() == "" {
		t.Fatal("String() empty for populated histogram")
	}
}

func TestHistogramRejectsBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0) did not panic")
		}
	}()
	NewHistogram(0)
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("reads", 3)
	c.Inc("reads", 2)
	c.Inc("writes", 1)
	if c.Get("reads") != 5 || c.Get("writes") != 1 || c.Get("absent") != 0 {
		t.Fatal("counter arithmetic wrong")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "reads" || names[1] != "writes" {
		t.Fatalf("Names = %v", names)
	}
	c.Reset()
	if c.Get("reads") != 0 {
		t.Fatal("Reset did not zero counters")
	}
}
