package sim

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates streaming mean and variance (Welford's algorithm)
// without retaining samples. Used for high-volume counters such as
// per-access latencies.
type Online struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds a sample into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N reports the number of samples.
func (o *Online) N() uint64 { return o.n }

// Mean reports the sample mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Min reports the smallest sample (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max reports the largest sample (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Var reports the sample variance (0 with fewer than 2 samples).
func (o *Online) Var() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Stddev reports the sample standard deviation.
func (o *Online) Stddev() float64 { return math.Sqrt(o.Var()) }

// Reset discards all accumulated state.
func (o *Online) Reset() { *o = Online{} }

// Sample retains every observation so exact percentiles can be reported.
// Latency distributions in the paper are characterized by their mean and
// 95th percentile; tail accuracy matters, so no sketching is used.
type Sample struct {
	xs     []float64
	sorted bool
}

// NewSample returns a collector with capacity preallocated for hint samples.
func NewSample(hint int) *Sample {
	return &Sample{xs: make([]float64, 0, hint)}
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean reports the arithmetic mean (0 when empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Percentile reports the p-th percentile (p in [0,100]) using linear
// interpolation between closest ranks. Empty collectors report 0.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 100 {
		return s.xs[len(s.xs)-1]
	}
	rank := p / 100 * float64(len(s.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s.xs[lo]
	}
	frac := rank - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// P95 reports the 95th percentile, the paper's tail-latency metric.
func (s *Sample) P95() float64 { return s.Percentile(95) }

// Max reports the largest observation (0 when empty).
func (s *Sample) Max() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

// Reset discards all observations but keeps the backing array.
func (s *Sample) Reset() {
	s.xs = s.xs[:0]
	s.sorted = false
}

// Histogram is a fixed-width-bucket histogram for coarse distribution
// summaries (e.g. bandwidth over time windows).
type Histogram struct {
	BucketWidth float64
	buckets     map[int]uint64
	n           uint64
}

// NewHistogram returns a histogram with the given bucket width.
func NewHistogram(width float64) *Histogram {
	if width <= 0 {
		panic("sim: histogram bucket width must be positive")
	}
	return &Histogram{BucketWidth: width, buckets: make(map[int]uint64)}
}

// Add folds an observation into its bucket.
func (h *Histogram) Add(x float64) {
	h.buckets[int(math.Floor(x/h.BucketWidth))]++
	h.n++
}

// N reports the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Bucket reports the count in the bucket containing x.
func (h *Histogram) Bucket(x float64) uint64 {
	return h.buckets[int(math.Floor(x/h.BucketWidth))]
}

// String renders the non-empty buckets in ascending order.
func (h *Histogram) String() string {
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("[%g,%g): %d\n", float64(k)*h.BucketWidth, float64(k+1)*h.BucketWidth, h.buckets[k])
	}
	return out
}

// Counters is a named bag of monotonically increasing uint64 counters, the
// lingua franca for per-module statistics.
type Counters struct {
	m map[string]uint64
}

// NewCounters returns an empty counter bag.
func NewCounters() *Counters { return &Counters{m: make(map[string]uint64)} }

// Inc adds delta to the named counter.
func (c *Counters) Inc(name string, delta uint64) { c.m[name] += delta }

// Get reports the value of the named counter (0 if never incremented).
func (c *Counters) Get(name string) uint64 { return c.m[name] }

// Names reports all counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for k := range c.m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every counter.
func (c *Counters) Reset() { c.m = make(map[string]uint64) }
