package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 seeding an xorshift64* state). The simulator cannot use
// math/rand's global state: reproducibility across runs and across
// subsystems requires every component to own an explicitly-seeded stream.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with splitmix64(seed) so that nearby
// integer seeds still produce decorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to a state derived from seed.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step: guarantees a non-zero, well-mixed xorshift state.
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z = z ^ (z >> 31)
	if z == 0 {
		z = 0x9E3779B97F4A7C15
	}
	r.state = z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Fork derives an independent child stream; the parent advances once.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Normal returns a normally distributed value (Box-Muller).
func (r *RNG) Normal(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// LogNormal returns a log-normally distributed value parameterized by the
// desired mean and coefficient of variation (stddev/mean) of the *result*.
// Service-time distributions of latency-critical services are heavy-tailed;
// log-normal is the standard choice.
func (r *RNG) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(r.Normal(mu, math.Sqrt(sigma2)))
}

// Pareto returns a bounded Pareto-distributed value with minimum xm and
// shape alpha. Used for occasional heavy-tail injections.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillBytes fills b with pseudo-random bytes.
func (r *RNG) FillBytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}
