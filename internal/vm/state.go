package vm

import (
	"fmt"

	"repro/internal/mem"
)

// Checkpoint support: plain-data images of the virtualization layer. The
// rmap is captured verbatim — entry order within a frame's mapper list is
// history-dependent (removal is swap-with-last), and merge candidate
// iteration observes that order, so restoring it element-for-element is
// required for bit-exact resume.

// MappingState is the exported image of one page-table entry.
type MappingState struct {
	PFN       uint64
	Present   bool
	WriteProt bool
	Mergeable bool
}

// HugeRangeState is the exported image of one huge mapping.
type HugeRangeState struct {
	Start GFN
	N     int
}

// VMState is the serialized image of one VM.
type VMState struct {
	Table      []MappingState
	Huge       []HugeRangeState
	SoftFaults uint64
	CoWBreaks  uint64
	HugeBreaks uint64
}

// HypervisorState is the serialized image of the hypervisor (excluding
// physical memory, which mem.PhysState covers, and the observer/reclaim
// hooks, which are wiring re-established by the restorer).
type HypervisorState struct {
	VMs         []VMState
	Rmap        [][]PageID
	Merges      uint64
	Unmerges    uint64
	AllocStalls uint64
}

// State captures the hypervisor's VM tables, rmap, and counters.
func (h *Hypervisor) State() HypervisorState {
	st := HypervisorState{
		VMs:         make([]VMState, len(h.vms)),
		Rmap:        make([][]PageID, len(h.rmap)),
		Merges:      h.Merges,
		Unmerges:    h.Unmerges,
		AllocStalls: h.AllocStalls,
	}
	for i, v := range h.vms {
		vs := VMState{
			Table:      make([]MappingState, len(v.table)),
			SoftFaults: v.SoftFaults,
			CoWBreaks:  v.CoWBreaks,
			HugeBreaks: v.HugeBreaks,
		}
		for g, e := range v.table {
			vs.Table[g] = MappingState{
				PFN:       uint64(e.pfn),
				Present:   e.present,
				WriteProt: e.writeProt,
				Mergeable: e.mergeable,
			}
		}
		for _, r := range v.huge {
			vs.Huge = append(vs.Huge, HugeRangeState{Start: r.start, N: r.n})
		}
		st.VMs[i] = vs
	}
	for pfn, ids := range h.rmap {
		if len(ids) > 0 {
			st.Rmap[pfn] = append([]PageID(nil), ids...)
		}
	}
	return st
}

// SetState restores a previously captured image in place. Per-VM table
// sizes must match for VMs that exist on both sides (a VM's guest size is
// configuration, not state), but the VM *count* may differ: live workload
// events spawn and the snapshot machinery restores across them. A snapshot
// with fewer VMs truncates the live list (the extra VMs were spawned after
// the checkpoint; their frames are already gone from the restored arena and
// rmap); a snapshot with more VMs creates fresh ones sized from their
// captured tables (restoring a post-spawn world into a fresh runtime). The
// OnWrite/OnRelease/Reclaim hooks are left untouched — the restorer owns
// their wiring.
func (h *Hypervisor) SetState(st HypervisorState) error {
	if len(st.VMs) < len(h.vms) {
		h.vms = h.vms[:len(st.VMs)]
	}
	for len(h.vms) < len(st.VMs) {
		h.NewVM(uint64(len(st.VMs[len(h.vms)].Table)) * mem.PageSize)
	}
	if len(st.Rmap) != len(h.rmap) {
		return fmt.Errorf("vm: restore rmap-size mismatch (have %d, snapshot %d)", len(h.rmap), len(st.Rmap))
	}
	for i, vs := range st.VMs {
		v := h.vms[i]
		if len(vs.Table) != len(v.table) {
			return fmt.Errorf("vm: restore table-size mismatch for VM %d (have %d, snapshot %d)",
				i, len(v.table), len(vs.Table))
		}
		for g, ms := range vs.Table {
			v.table[g] = mapping{
				pfn:       mem.PFN(ms.PFN),
				present:   ms.Present,
				writeProt: ms.WriteProt,
				mergeable: ms.Mergeable,
			}
		}
		v.huge = v.huge[:0]
		for _, r := range vs.Huge {
			v.huge = append(v.huge, hugeRange{start: r.Start, n: r.N})
		}
		v.SoftFaults = vs.SoftFaults
		v.CoWBreaks = vs.CoWBreaks
		v.HugeBreaks = vs.HugeBreaks
	}
	for pfn := range h.rmap {
		h.rmap[pfn] = h.rmap[pfn][:0]
		h.rmap[pfn] = append(h.rmap[pfn], st.Rmap[pfn]...)
	}
	h.Merges = st.Merges
	h.Unmerges = st.Unmerges
	h.AllocStalls = st.AllocStalls
	return nil
}

// BalloonState is the serialized image of a balloon device.
type BalloonState struct {
	Next      int
	Inflated  uint64
	Reclaimed uint64
}

// State captures the balloon's cursor and counters.
func (b *Balloon) State() BalloonState {
	return BalloonState{Next: b.next, Inflated: b.Inflated, Reclaimed: b.Reclaimed}
}

// SetState restores the balloon's cursor and counters.
func (b *Balloon) SetState(st BalloonState) {
	b.next = st.Next
	b.Inflated = st.Inflated
	b.Reclaimed = st.Reclaimed
}
