package vm

import (
	"bytes"
	"testing"

	"repro/internal/mem"
)

func TestMapHugeBlocksMerging(t *testing.T) {
	h := NewHypervisor(64 * mem.PageSize)
	a := h.NewVM(8 * mem.PageSize)
	b := h.NewVM(8 * mem.PageSize)
	content := bytes.Repeat([]byte{7}, mem.PageSize)
	a.Write(0, 0, content)
	b.Write(0, 0, content)
	if err := a.MapHuge(0, 4); err != nil {
		t.Fatal(err)
	}
	if !a.InHuge(0) || !a.InHuge(3) || a.InHuge(4) {
		t.Fatal("huge range membership wrong")
	}
	dst, _ := b.Resolve(0)
	if _, err := h.Merge(PageID{a.ID, 0}, dst); err != ErrHugeMapped {
		t.Fatalf("merge under huge mapping: err = %v, want ErrHugeMapped", err)
	}
	// Breaking the mapping unblocks the merge.
	if !a.BreakHuge(0) {
		t.Fatal("BreakHuge found nothing")
	}
	if a.HugeBreaks != 1 {
		t.Fatalf("HugeBreaks = %d", a.HugeBreaks)
	}
	if _, err := h.Merge(PageID{a.ID, 0}, dst); err != nil {
		t.Fatalf("merge after break: %v", err)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d", h.Phys.AllocatedFrames())
	}
}

func TestMapHugeRejectsOverlapAndShared(t *testing.T) {
	h := NewHypervisor(64 * mem.PageSize)
	a := h.NewVM(16 * mem.PageSize)
	b := h.NewVM(16 * mem.PageSize)
	if err := a.MapHuge(0, 8); err != nil {
		t.Fatal(err)
	}
	if err := a.MapHuge(4, 8); err == nil {
		t.Fatal("overlapping huge region accepted")
	}
	// A shared (merged) page cannot be promoted to huge.
	content := bytes.Repeat([]byte{9}, mem.PageSize)
	a.Write(10, 0, content)
	b.Write(0, 0, content)
	dst, _ := b.Resolve(0)
	if _, err := h.Merge(PageID{a.ID, 10}, dst); err != nil {
		t.Fatal(err)
	}
	if err := a.MapHuge(10, 2); err == nil {
		t.Fatal("huge promotion over a shared page accepted")
	}
}

func TestBreakAllHuge(t *testing.T) {
	h := NewHypervisor(64 * mem.PageSize)
	v := h.NewVM(16 * mem.PageSize)
	v.MapHuge(0, 4)
	v.MapHuge(8, 4)
	if n := v.BreakAllHuge(); n != 2 {
		t.Fatalf("broke %d regions, want 2", n)
	}
	if v.InHuge(0) || v.InHuge(9) {
		t.Fatal("regions survived BreakAllHuge")
	}
	if v.BreakHuge(0) {
		t.Fatal("BreakHuge found a region after BreakAllHuge")
	}
}
