package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

func newHV(frames int) *Hypervisor {
	return NewHypervisor(uint64(frames) * mem.PageSize)
}

func TestSoftFaultZeroFill(t *testing.T) {
	h := newHV(8)
	v := h.NewVM(4 * mem.PageSize)
	if v.Present(0) {
		t.Fatal("untouched page present")
	}
	buf := make([]byte, 16)
	if err := v.Read(0, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatal("first-touch page not zeroed")
	}
	if v.SoftFaults != 1 {
		t.Fatalf("SoftFaults = %d, want 1", v.SoftFaults)
	}
	if !v.Present(0) {
		t.Fatal("page not present after fault")
	}
	// Second access: no new fault.
	if err := v.Touch(0); err != nil {
		t.Fatal(err)
	}
	if v.SoftFaults != 1 {
		t.Fatal("repeat touch faulted again")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	h := newHV(8)
	v := h.NewVM(4 * mem.PageSize)
	data := []byte("pageforge")
	if _, err := v.Write(2, 100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := v.Read(2, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q", got)
	}
}

func TestMergeSharesFrame(t *testing.T) {
	h := newHV(16)
	a := h.NewVM(2 * mem.PageSize)
	b := h.NewVM(2 * mem.PageSize)
	content := bytes.Repeat([]byte{0xAB}, mem.PageSize)
	a.Write(0, 0, content)
	b.Write(0, 0, content)
	if h.Phys.AllocatedFrames() != 2 {
		t.Fatalf("frames before merge = %d", h.Phys.AllocatedFrames())
	}
	dst, _ := b.Resolve(0)
	n, err := h.Merge(PageID{a.ID, 0}, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != mem.PageSize {
		t.Fatalf("final compare examined %d bytes, want full page", n)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames after merge = %d, want 1", h.Phys.AllocatedFrames())
	}
	pa, _ := a.Resolve(0)
	pb, _ := b.Resolve(0)
	if pa != pb {
		t.Fatal("pages not mapped to the same frame")
	}
	if !a.WriteProtected(0) || !b.WriteProtected(0) {
		t.Fatal("merged mappings not write-protected")
	}
	if !h.Phys.Get(pa).CoW() {
		t.Fatal("merged frame not CoW")
	}
	if h.Merges != 1 {
		t.Fatalf("Merges = %d", h.Merges)
	}
	frames, mappers := h.SharedFrames()
	if frames != 1 || mappers != 2 {
		t.Fatalf("SharedFrames = %d/%d", frames, mappers)
	}
}

func TestMergeDetectsRacingWrite(t *testing.T) {
	h := newHV(16)
	a := h.NewVM(mem.PageSize)
	b := h.NewVM(mem.PageSize)
	content := bytes.Repeat([]byte{7}, mem.PageSize)
	a.Write(0, 0, content)
	b.Write(0, 0, content)
	// Diverge b after the engine decided to merge but before Merge runs.
	pb, _ := b.Resolve(0)
	h.Phys.Page(pb)[0] = 99
	pa, _ := a.Resolve(0)
	_ = pa
	if _, err := h.Merge(PageID{a.ID, 0}, pb); err != ErrContentChanged {
		t.Fatalf("err = %v, want ErrContentChanged", err)
	}
	if h.Phys.AllocatedFrames() != 2 {
		t.Fatal("failed merge changed allocation")
	}
	// The candidate must be writable again (it was not merged).
	if a.WriteProtected(0) {
		t.Fatal("candidate left write-protected after aborted merge")
	}
}

func TestCoWBreakOnWriteToMergedPage(t *testing.T) {
	h := newHV(16)
	a := h.NewVM(mem.PageSize)
	b := h.NewVM(mem.PageSize)
	content := bytes.Repeat([]byte{0x55}, mem.PageSize)
	a.Write(0, 0, content)
	b.Write(0, 0, content)
	dst, _ := b.Resolve(0)
	if _, err := h.Merge(PageID{a.ID, 0}, dst); err != nil {
		t.Fatal(err)
	}
	// Guest A writes: must get a private copy; B's view unchanged.
	broke, err := a.Write(0, 0, []byte{1})
	if err != nil {
		t.Fatal(err)
	}
	if !broke {
		t.Fatal("write to merged page did not break CoW")
	}
	pa, _ := a.Resolve(0)
	pb, _ := b.Resolve(0)
	if pa == pb {
		t.Fatal("CoW break did not allocate a private frame")
	}
	bb := make([]byte, 1)
	b.Read(0, 0, bb)
	if bb[0] != 0x55 {
		t.Fatal("sharer's data corrupted by CoW break")
	}
	ab := make([]byte, 2)
	a.Read(0, 0, ab)
	if ab[0] != 1 || ab[1] != 0x55 {
		t.Fatalf("writer sees %v, want private modified copy", ab)
	}
	if a.CoWBreaks != 1 || h.Unmerges != 1 {
		t.Fatalf("CoWBreaks=%d Unmerges=%d", a.CoWBreaks, h.Unmerges)
	}
}

func TestCoWBreakSoleMapperReusesFrame(t *testing.T) {
	h := newHV(16)
	a := h.NewVM(mem.PageSize)
	b := h.NewVM(mem.PageSize)
	content := bytes.Repeat([]byte{3}, mem.PageSize)
	a.Write(0, 0, content)
	b.Write(0, 0, content)
	dst, _ := b.Resolve(0)
	h.Merge(PageID{a.ID, 0}, dst)
	// B breaks away first (copy), then A is the sole mapper and its write
	// should reuse the frame in place without allocating.
	b.Write(0, 0, []byte{9})
	allocs := h.Phys.Allocs
	broke, _ := a.Write(0, 0, []byte{8})
	if !broke {
		t.Fatal("sole-mapper write on protected page did not report CoW")
	}
	if h.Phys.Allocs != allocs {
		t.Fatal("sole mapper CoW break allocated a frame needlessly")
	}
	if a.WriteProtected(0) {
		t.Fatal("protection not dropped for sole mapper")
	}
}

func TestThreeWayMergeRefcounts(t *testing.T) {
	h := newHV(16)
	content := bytes.Repeat([]byte{0xEE}, mem.PageSize)
	vms := []*VM{h.NewVM(mem.PageSize), h.NewVM(mem.PageSize), h.NewVM(mem.PageSize)}
	for _, v := range vms {
		v.Write(0, 0, content)
	}
	dst, _ := vms[0].Resolve(0)
	for _, v := range vms[1:] {
		if _, err := h.Merge(PageID{v.ID, 0}, dst); err != nil {
			t.Fatal(err)
		}
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", h.Phys.AllocatedFrames())
	}
	if h.Phys.Get(dst).Refs() != 3 {
		t.Fatalf("refs = %d, want 3", h.Phys.Get(dst).Refs())
	}
	frames, mappers := h.SharedFrames()
	if frames != 1 || mappers != 3 {
		t.Fatalf("SharedFrames = %d/%d", frames, mappers)
	}
}

func TestReleaseDropsFrame(t *testing.T) {
	h := newHV(8)
	v := h.NewVM(2 * mem.PageSize)
	v.Write(1, 0, []byte{1})
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatal("setup failed")
	}
	v.Release(1)
	if h.Phys.AllocatedFrames() != 0 {
		t.Fatal("Release did not free the frame")
	}
	if v.Present(1) {
		t.Fatal("page still present after Release")
	}
	// Releasing an absent page is a no-op.
	v.Release(1)
}

func TestMadviseFlags(t *testing.T) {
	h := newHV(8)
	v := h.NewVM(8 * mem.PageSize)
	v.Madvise(2, 3, true)
	for g := GFN(0); g < 8; g++ {
		want := g >= 2 && g < 5
		if v.Mergeable(g) != want {
			t.Fatalf("gfn %d mergeable = %v, want %v", g, v.Mergeable(g), want)
		}
	}
	v.Madvise(3, 1, false)
	if v.Mergeable(3) {
		t.Fatal("un-advise failed")
	}
}

func TestMergeAlreadyMergedIsNoop(t *testing.T) {
	h := newHV(8)
	a := h.NewVM(mem.PageSize)
	b := h.NewVM(mem.PageSize)
	c := bytes.Repeat([]byte{4}, mem.PageSize)
	a.Write(0, 0, c)
	b.Write(0, 0, c)
	dst, _ := b.Resolve(0)
	h.Merge(PageID{a.ID, 0}, dst)
	n, err := h.Merge(PageID{a.ID, 0}, dst)
	if err != nil || n != 0 {
		t.Fatalf("re-merge: n=%d err=%v", n, err)
	}
	if h.Merges != 1 {
		t.Fatal("no-op merge counted")
	}
}

func TestMergeUnbackedCandidate(t *testing.T) {
	h := newHV(8)
	a := h.NewVM(mem.PageSize)
	b := h.NewVM(mem.PageSize)
	b.Write(0, 0, []byte{1})
	dst, _ := b.Resolve(0)
	if _, err := h.Merge(PageID{a.ID, 0}, dst); err != ErrNotPresent {
		t.Fatalf("err = %v, want ErrNotPresent", err)
	}
}

// Property: after any sequence of writes/merges/CoW breaks, each VM reads
// back exactly what it last wrote to each page (isolation), and refcounts
// equal rmap sizes.
func TestIsolationUnderRandomMergeTraffic(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		h := newHV(256)
		const nVM, nPg = 3, 4
		var vms []*VM
		shadow := map[PageID]byte{} // last byte written at offset 0
		for i := 0; i < nVM; i++ {
			vms = append(vms, h.NewVM(nPg*mem.PageSize))
		}
		full := func(val byte) []byte { return bytes.Repeat([]byte{val}, mem.PageSize) }
		for op := 0; op < 80; op++ {
			v := vms[r.Intn(nVM)]
			g := GFN(r.Intn(nPg))
			id := PageID{v.ID, g}
			switch {
			case r.Bool(0.6): // write a full page of some small value
				val := byte(r.Intn(4))
				if _, err := v.Write(g, 0, full(val)); err != nil {
					return false
				}
				shadow[id] = val
			default: // try to merge with any other content-equal page
				for _, o := range vms {
					for og := GFN(0); og < nPg; og++ {
						oid := PageID{o.ID, og}
						if oid == id {
							continue
						}
						// Re-resolve each time: a successful merge frees
						// the candidate's old frame.
						src, ok := v.Resolve(g)
						if !ok {
							continue
						}
						dst, ok2 := o.Resolve(og)
						if !ok2 || dst == src {
							continue
						}
						if same, _ := h.Phys.SamePage(src, dst); same {
							if _, err := h.Merge(id, dst); err != nil {
								return false
							}
						}
					}
				}
			}
		}
		// Isolation check.
		buf := make([]byte, 1)
		for id, want := range shadow {
			if err := vms[id.VM].Read(id.GFN, 0, buf); err != nil {
				return false
			}
			if buf[0] != want {
				return false
			}
		}
		// Refcount/rmap consistency.
		for _, v := range vms {
			for g := GFN(0); g < nPg; g++ {
				if pfn, ok := v.Resolve(g); ok {
					if h.Phys.Get(pfn).Refs() != len(h.Mappers(pfn)) {
						return false
					}
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
