package vm

// Balloon is a deterministic balloon device: under memory pressure the
// hypervisor "inflates" it inside victim VMs, forcing the guests to release
// pages whose frames the host can hand to whoever is stalling on an empty
// freelist. The victim policy is fixed so same-seed runs reclaim the same
// pages in the same order: VMs are visited round-robin (the cursor advances
// one VM per Reclaim call so no single guest bears every storm), and within
// a VM pages are swept from the top guest frame downward — allocation
// bursts land in the high-GFN region, so storm pages are evicted before the
// resident image.
//
// Only sole-mapper frames are taken: a shared frame (or one held by a dedup
// engine's stable/unstable tree) would survive the release, costing the
// guest a page without freeing a frame.
type Balloon struct {
	hv   *Hypervisor
	next int // round-robin VM cursor

	// Inflated counts guest pages released into the balloon; Reclaimed
	// counts physical frames those releases freed. Under the sole-mapper
	// policy every release frees exactly one frame, so the two advance in
	// lockstep — they are kept separate because the invariant is worth
	// asserting, not assuming.
	Inflated  uint64
	Reclaimed uint64
}

// NewBalloon builds a balloon over the hypervisor's VMs.
func NewBalloon(h *Hypervisor) *Balloon { return &Balloon{hv: h} }

// Reclaim releases guest pages from victim VMs until it has freed frames
// physical frames or swept every VM, and returns the count actually freed.
// It must not be called inside a deferred-free window: the frames it frees
// are needed by the stalling allocator immediately.
func (b *Balloon) Reclaim(frames int) int {
	n := len(b.hv.vms)
	if frames <= 0 || n == 0 {
		return 0
	}
	freed := 0
	for i := 0; i < n && freed < frames; i++ {
		freed += b.reclaimFrom(b.hv.vms[(b.next+i)%n], frames-freed)
	}
	b.next = (b.next + 1) % n
	b.Reclaimed += uint64(freed)
	return freed
}

// reclaimFrom sweeps one VM from the top guest frame downward, releasing up
// to want sole-mapper base pages.
func (b *Balloon) reclaimFrom(v *VM, want int) int {
	freed := 0
	for g := GFN(len(v.table)); g > 0 && freed < want; {
		g--
		e := &v.table[g]
		if !e.present || v.InHuge(g) {
			continue
		}
		if b.hv.Phys.Get(e.pfn).Refs() != 1 {
			continue // shared or engine-held: releasing frees nothing
		}
		v.Release(g)
		b.Inflated++
		freed++
	}
	return freed
}
