// Package vm models the virtualization substrate the paper's evaluation
// runs on: a hypervisor owning host physical memory, per-VM guest-physical
// to host-physical page tables, lazy zero-fill soft faults, madvise
// MERGEABLE hints, and the copy-on-write remapping that same-page merging
// relies on (Figure 1 of the paper).
package vm

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/mem"
)

// GFN is a guest frame number (guest-physical page index within one VM).
type GFN uint64

// PageID names one guest page globally: the VM and the guest frame.
type PageID struct {
	VM  int
	GFN GFN
}

// String renders the ID for diagnostics.
func (p PageID) String() string { return fmt.Sprintf("vm%d:gfn%d", p.VM, p.GFN) }

// mapping is one guest page-table entry.
type mapping struct {
	pfn       mem.PFN
	present   bool
	writeProt bool // write-protected: guest writes fault (CoW)
	mergeable bool // inside a madvise(MADV_MERGEABLE) region
}

// VM is one virtual machine instance.
type VM struct {
	ID    int
	table []mapping
	hv    *Hypervisor

	// SoftFaults counts zero-fill first-touch faults.
	SoftFaults uint64
	// CoWBreaks counts write faults on shared pages.
	CoWBreaks uint64
	// HugeBreaks counts huge mappings split into base pages.
	HugeBreaks uint64

	huge []hugeRange
}

// Pages reports the guest-physical size of the VM in pages.
func (v *VM) Pages() int { return len(v.table) }

// Hypervisor owns physical memory and the VMs, and implements the
// page-merging primitives the dedup engines (KSM, PageForge driver) call.
type Hypervisor struct {
	Phys *mem.Phys
	vms  []*VM

	// rmap maps each shared-or-shareable frame to every guest page mapping
	// it. It is the reverse mapping KSM needs to write-protect all sharers.
	// Indexed by PFN (not a map) so that sharded scan workers, which only
	// ever touch frames of their own content shard, mutate disjoint
	// elements without a shared map header to race on.
	rmap [][]PageID

	// Merges counts successful page merges; Unmerges counts CoW breaks of
	// merged frames.
	Merges   uint64
	Unmerges uint64

	// OnWrite, when non-nil, observes every guest write after it has landed
	// (including any CoW break it triggered). Verification tooling uses it
	// to maintain a shadow copy of page contents; it must not mutate
	// simulation state.
	OnWrite func(id PageID, off int, data []byte)

	// OnRelease, when non-nil, observes every guest page release (balloon
	// inflation, sandbox teardown) after the mapping is gone. Verification
	// tooling uses it to keep shadow contents coherent: a released page
	// that is later re-touched reads zero-fill, not its old bytes.
	OnRelease func(id PageID)

	// OnEvict, when non-nil, observes a guest page release before the
	// mapping is torn down, while the backing frame is still known — the
	// provenance ledger needs the (id, pfn) pair that OnRelease can no
	// longer see. It must not mutate simulation state.
	OnEvict func(id PageID, pfn mem.PFN)

	// OnCoWBreak, when non-nil, observes every copy-on-write break: the
	// writing mapping left frame old for frame fresh (fresh == old on the
	// sole-mapper path, which just drops the protection in place). It must
	// not mutate simulation state.
	OnCoWBreak func(id PageID, old, fresh mem.PFN)

	// Reclaim, when non-nil, is consulted when a guest-path frame
	// allocation finds the arena exhausted: the platform's pressure layer
	// stalls the faulting vCPU (bounded backoff in simulated ticks) and
	// balloon-reclaims frames from victim VMs. attempt counts the failures
	// of the current allocation, starting at 1; returning false stops the
	// retry loop and lets the typed exhaustion error propagate.
	Reclaim func(attempt int) bool

	// AllocStalls counts guest-path allocation failures that entered the
	// stall-and-retry path (one per failed attempt, not per allocation).
	AllocStalls uint64
}

// NewHypervisor creates a hypervisor with the given physical capacity.
func NewHypervisor(physBytes uint64) *Hypervisor {
	p := mem.New(physBytes)
	return &Hypervisor{
		Phys: p,
		rmap: make([][]PageID, p.TotalFrames()),
	}
}

// NewVM creates a VM with the given guest-physical memory size. Guest pages
// are unbacked until first touch.
func (h *Hypervisor) NewVM(memBytes uint64) *VM {
	v := &VM{ID: len(h.vms), table: make([]mapping, memBytes/mem.PageSize), hv: h}
	h.vms = append(h.vms, v)
	return v
}

// VM returns the VM with the given ID.
func (h *Hypervisor) VM(id int) *VM { return h.vms[id] }

// NumVMs reports the number of VMs.
func (h *Hypervisor) NumVMs() int { return len(h.vms) }

// ErrNotPresent is returned when an operation needs a backed page.
var ErrNotPresent = errors.New("vm: guest page not present")

// ErrHugeMapped is returned when a merge targets a page under a huge
// mapping; the mapping must be broken into base pages first.
var ErrHugeMapped = errors.New("vm: page is under a huge mapping")

func (v *VM) entry(g GFN) *mapping {
	if int(g) >= len(v.table) {
		panic(fmt.Sprintf("vm: GFN %d out of range for VM %d (%d pages)", g, v.ID, len(v.table)))
	}
	return &v.table[g]
}

// Madvise marks [start, start+n) mergeable or not, mirroring the
// MADV_MERGEABLE hint a guest's deployment gives KSM.
func (v *VM) Madvise(start GFN, n int, mergeable bool) {
	for g := start; g < start+GFN(n); g++ {
		v.entry(g).mergeable = mergeable
	}
}

// Mergeable reports whether the guest page is in a mergeable region.
func (v *VM) Mergeable(g GFN) bool { return v.entry(g).mergeable }

// Present reports whether the guest page is backed by a frame.
func (v *VM) Present(g GFN) bool { return v.entry(g).present }

// WriteProtected reports whether guest writes to the page would fault.
func (v *VM) WriteProtected(g GFN) bool { return v.entry(g).writeProt }

// Resolve returns the frame backing the guest page.
func (v *VM) Resolve(g GFN) (mem.PFN, bool) {
	e := v.entry(g)
	return e.pfn, e.present
}

// allocFrame runs one guest-path allocation through the stall-and-retry
// protocol: on exhaustion it hands control to the Reclaim hook (which
// stalls the vCPU and balloon-reclaims frames) and retries until the hook
// gives up, at which point the typed mem.ErrOutOfFrames propagates.
func (h *Hypervisor) allocFrame(alloc func() (mem.PFN, error)) (mem.PFN, error) {
	pfn, err := alloc()
	for attempt := 1; err != nil && h.Reclaim != nil; attempt++ {
		h.AllocStalls++
		if !h.Reclaim(attempt) {
			break
		}
		pfn, err = alloc()
	}
	return pfn, err
}

// fault backs an unbacked page with a zeroed frame (the hypervisor's
// zero-fill soft fault: "picks a page, zeroes it out to avoid information
// leakage, and provides it to the guest OS").
func (v *VM) fault(g GFN) (*mapping, error) {
	e := v.entry(g)
	if e.present {
		return e, nil
	}
	pfn, err := v.hv.allocFrame(v.hv.Phys.Alloc)
	if err != nil {
		return nil, err
	}
	e.pfn = pfn
	e.present = true
	e.writeProt = false
	v.SoftFaults++
	v.hv.rmapAdd(pfn, PageID{v.ID, g})
	return e, nil
}

// Touch ensures the page is backed (a guest read of an untouched page).
func (v *VM) Touch(g GFN) error {
	_, err := v.fault(g)
	return err
}

// Read copies page bytes at [off, off+len(dst)) into dst, faulting the page
// in if needed.
func (v *VM) Read(g GFN, off int, dst []byte) error {
	e, err := v.fault(g)
	if err != nil {
		return err
	}
	copy(dst, v.hv.Phys.Page(e.pfn)[off:off+len(dst)])
	return nil
}

// Page returns a read-only view of the page contents (faulting it in).
func (v *VM) Page(g GFN) ([]byte, error) {
	e, err := v.fault(g)
	if err != nil {
		return nil, err
	}
	return v.hv.Phys.Page(e.pfn), nil
}

// Write stores src at [off, off+len(src)), handling the soft fault and any
// CoW break. It reports whether a CoW break occurred.
func (v *VM) Write(g GFN, off int, src []byte) (cowBroke bool, err error) {
	e, err := v.fault(g)
	if err != nil {
		return false, err
	}
	if e.writeProt {
		if err := v.breakCoW(g, e); err != nil {
			return false, err
		}
		cowBroke = true
	}
	copy(v.hv.Phys.Page(e.pfn)[off:], src)
	if v.hv.OnWrite != nil {
		v.hv.OnWrite(PageID{v.ID, g}, off, src)
	}
	return cowBroke, nil
}

// breakCoW gives the writing guest a private copy of a protected page.
func (v *VM) breakCoW(g GFN, e *mapping) error {
	old := e.pfn
	if v.hv.Phys.Get(old).Refs() == 1 {
		// Sole mapper: just drop the protection (Linux reuse_ksm_page path).
		e.writeProt = false
		v.hv.Phys.SetCoW(old, false)
		v.hv.Unmerges++
		if v.hv.OnCoWBreak != nil {
			v.hv.OnCoWBreak(PageID{v.ID, g}, old, old)
		}
		return nil
	}
	// The fresh frame is fully overwritten by the copy, so skip the
	// zero-fill a plain Alloc would pay (and would miscount as demand-zero).
	fresh, err := v.hv.allocFrame(v.hv.Phys.AllocForCopy)
	if err != nil {
		return err
	}
	v.hv.Phys.CopyPage(fresh, old)
	v.hv.rmapRemove(old, PageID{v.ID, g})
	v.hv.Phys.DecRef(old)
	e.pfn = fresh
	e.writeProt = false
	v.hv.rmapAdd(fresh, PageID{v.ID, g})
	v.CoWBreaks++
	v.hv.Unmerges++
	if v.hv.OnCoWBreak != nil {
		v.hv.OnCoWBreak(PageID{v.ID, g}, old, fresh)
	}
	return nil
}

// Release unmaps the guest page, dropping its frame reference.
func (v *VM) Release(g GFN) {
	e := v.entry(g)
	if !e.present {
		return
	}
	if v.hv.OnEvict != nil {
		v.hv.OnEvict(PageID{v.ID, g}, e.pfn)
	}
	v.hv.rmapRemove(e.pfn, PageID{v.ID, g})
	v.hv.Phys.DecRef(e.pfn)
	*e = mapping{mergeable: e.mergeable}
	if v.hv.OnRelease != nil {
		v.hv.OnRelease(PageID{v.ID, g})
	}
}

func (h *Hypervisor) rmapAdd(pfn mem.PFN, id PageID) {
	h.rmap[pfn] = append(h.rmap[pfn], id)
}

func (h *Hypervisor) rmapRemove(pfn mem.PFN, id PageID) {
	refs := h.rmap[pfn]
	for i, r := range refs {
		if r == id {
			refs[i] = refs[len(refs)-1]
			h.rmap[pfn] = refs[:len(refs)-1]
			return
		}
	}
	panic(fmt.Sprintf("vm: rmap entry %v for frame %d missing", id, pfn))
}

// Mappers returns the guest pages currently mapping the frame.
func (h *Hypervisor) Mappers(pfn mem.PFN) []PageID {
	out := make([]PageID, len(h.rmap[pfn]))
	copy(out, h.rmap[pfn])
	return out
}

// Resolve resolves a global page ID to its backing frame.
func (h *Hypervisor) Resolve(id PageID) (mem.PFN, bool) {
	return h.vms[id.VM].Resolve(id.GFN)
}

// WriteProtect write-protects every mapping of the frame and marks it CoW.
// Same-page merging does this before the final "racing writes" comparison.
func (h *Hypervisor) WriteProtect(pfn mem.PFN) {
	for _, id := range h.rmap[pfn] {
		h.vms[id.VM].entry(id.GFN).writeProt = true
	}
	h.Phys.SetCoW(pfn, true)
}

// Unprotect removes write protection from every mapping of the frame and
// clears its CoW mark — the abort path when a pre-merge verification finds
// the candidate was raced by a guest write.
func (h *Hypervisor) Unprotect(pfn mem.PFN) {
	for _, id := range h.rmap[pfn] {
		h.vms[id.VM].entry(id.GFN).writeProt = false
	}
	h.Phys.SetCoW(pfn, false)
}

// ErrContentChanged is returned by Merge when the final write-protected
// comparison finds the pages no longer identical.
var ErrContentChanged = errors.New("vm: page contents diverged before merge")

// Merge folds the candidate guest page into the frame dst, following KSM's
// safety protocol: write-protect both frames, re-compare exhaustively, and
// only then remap the candidate's mapping to dst and free its old frame.
// It returns the number of bytes compared by the final check.
func (h *Hypervisor) Merge(candidate PageID, dst mem.PFN) (int, error) {
	v := h.vms[candidate.VM]
	if v.InHuge(candidate.GFN) {
		return 0, ErrHugeMapped
	}
	e := v.entry(candidate.GFN)
	if !e.present {
		return 0, ErrNotPresent
	}
	src := e.pfn
	if src == dst {
		return 0, nil // already merged
	}
	// Write-protect first so a racing guest write faults rather than
	// slipping in between the compare and the remap.
	h.WriteProtect(src)
	h.WriteProtect(dst)
	same, n := h.Phys.SamePage(src, dst)
	if !same {
		// Leave dst protected (it is or will be a stable page); undo the
		// candidate's protection since it is not being merged.
		for _, id := range h.rmap[src] {
			h.vms[id.VM].entry(id.GFN).writeProt = false
		}
		h.Phys.SetCoW(src, false)
		return n, ErrContentChanged
	}
	h.rmapRemove(src, candidate)
	h.Phys.DecRef(src)
	e.pfn = dst
	e.writeProt = true
	h.Phys.IncRef(dst)
	h.rmapAdd(dst, candidate)
	// Atomic: sharded scan workers merge concurrently (only ever into
	// frames of their own content shard); the sum is order-independent.
	atomic.AddUint64(&h.Merges, 1)
	return n, nil
}

// SharedFrames reports frames mapped by more than one guest page, and the
// total number of guest pages mapping them; the difference is the paper's
// "memory savings" in pages.
func (h *Hypervisor) SharedFrames() (frames, mappers int) {
	for _, ids := range h.rmap {
		if len(ids) > 1 {
			frames++
			mappers += len(ids)
		}
	}
	return frames, mappers
}

// --- Huge-page regions (§7.3 of the paper) ---------------------------------
//
// Large pages and memory consolidation conflict: a 2MB guest mapping cannot
// share one 4KB-sized piece of its backing, so pages under a huge mapping
// are invisible to same-page merging until the hypervisor proactively
// breaks the mapping into base pages (Guo et al., VEE 2015). The model
// tracks huge regions as ranges; frames stay 4KB (the backing layout is
// unchanged, only remappability is constrained).

// hugeRange is one huge mapping: [start, start+n) guest pages.
type hugeRange struct {
	start GFN
	n     int
}

// HugePages is the base-page span of one huge mapping (2MB / 4KB).
const HugePages = 512

// MapHuge marks [start, start+n) as covered by huge mappings. Pages inside
// cannot be individually remapped (merged) until BreakHuge splits them.
// Regions must not overlap existing huge regions or shared pages.
func (v *VM) MapHuge(start GFN, n int) error {
	for g := start; g < start+GFN(n); g++ {
		if v.InHuge(g) {
			return fmt.Errorf("vm: huge region overlap at gfn %d", g)
		}
		e := v.entry(g)
		if e.present && e.writeProt {
			return fmt.Errorf("vm: gfn %d is shared; cannot promote to huge", g)
		}
	}
	v.huge = append(v.huge, hugeRange{start: start, n: n})
	return nil
}

// InHuge reports whether the guest page lies under a huge mapping.
func (v *VM) InHuge(g GFN) bool {
	for _, r := range v.huge {
		if g >= r.start && g < r.start+GFN(r.n) {
			return true
		}
	}
	return false
}

// BreakHuge splits the huge mapping containing g into base pages, making
// them individually remappable. It reports whether a mapping was broken.
func (v *VM) BreakHuge(g GFN) bool {
	for i, r := range v.huge {
		if g >= r.start && g < r.start+GFN(r.n) {
			v.huge = append(v.huge[:i], v.huge[i+1:]...)
			v.HugeBreaks++
			return true
		}
	}
	return false
}

// BreakAllHuge splits every huge mapping (proactive breaking for maximum
// sharing; Guo et al.'s policy), returning how many were broken.
func (v *VM) BreakAllHuge() int {
	n := len(v.huge)
	v.huge = nil
	v.HugeBreaks += uint64(n)
	return n
}
