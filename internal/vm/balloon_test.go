package vm

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

// TestBalloonReclaimOrder pins the deterministic victim policy: round-robin
// across VMs, top GFN downward within each, sole-mapper frames only.
func TestBalloonReclaimOrder(t *testing.T) {
	h := newHV(16)
	a := h.NewVM(4 * mem.PageSize)
	b := h.NewVM(4 * mem.PageSize)
	for g := GFN(0); g < 4; g++ {
		if err := a.Touch(g); err != nil {
			t.Fatal(err)
		}
		if err := b.Touch(g); err != nil {
			t.Fatal(err)
		}
	}
	bal := NewBalloon(h)
	freeBefore := h.Phys.FreeFrames()
	if got := bal.Reclaim(3); got != 3 {
		t.Fatalf("Reclaim(3) = %d", got)
	}
	if h.Phys.FreeFrames() != freeBefore+3 {
		t.Fatalf("free frames %d, want %d", h.Phys.FreeFrames(), freeBefore+3)
	}
	// First call starts at VM 0 and sweeps top-down: gfn 3, 2, 1 released.
	for g := GFN(1); g < 4; g++ {
		if a.Present(g) {
			t.Fatalf("vm0 gfn %d still present", g)
		}
	}
	if !a.Present(0) || !b.Present(3) {
		t.Fatal("balloon took more than asked")
	}
	// Cursor advanced: the next call starts at VM 1.
	if got := bal.Reclaim(1); got != 1 {
		t.Fatal("second reclaim failed")
	}
	if b.Present(3) {
		t.Fatal("round-robin cursor did not advance to vm1")
	}
	if bal.Inflated != 4 || bal.Reclaimed != 4 {
		t.Fatalf("inflated=%d reclaimed=%d, want 4/4", bal.Inflated, bal.Reclaimed)
	}
}

// TestBalloonSkipsSharedFrames: releasing a shared page frees nothing, so
// the balloon must pass over merged frames.
func TestBalloonSkipsSharedFrames(t *testing.T) {
	h := newHV(16)
	a := h.NewVM(2 * mem.PageSize)
	b := h.NewVM(2 * mem.PageSize)
	content := []byte("dup")
	if _, err := a.Write(1, 0, content); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(1, 0, content); err != nil {
		t.Fatal(err)
	}
	dst, _ := a.Resolve(1)
	if _, err := h.Merge(PageID{b.ID, 1}, dst); err != nil {
		t.Fatal(err)
	}
	bal := NewBalloon(h)
	if got := bal.Reclaim(8); got != 0 {
		t.Fatalf("reclaimed %d frames from a fully-shared fleet", got)
	}
	if !a.Present(1) || !b.Present(1) {
		t.Fatal("balloon released a shared page")
	}
}

// TestAllocStallRetry pins the stall-and-retry protocol: an exhausted
// guest-path allocation consults the Reclaim hook, retries after the
// balloon frees frames, and propagates the typed error once the hook gives
// up.
func TestAllocStallRetry(t *testing.T) {
	h := newHV(4)
	v := h.NewVM(8 * mem.PageSize)
	for g := GFN(0); g < 4; g++ {
		if err := v.Touch(g); err != nil {
			t.Fatal(err)
		}
	}
	// No hook: exhaustion is immediate and typed.
	if err := v.Touch(4); !errors.Is(err, mem.ErrOutOfFrames) {
		t.Fatalf("hookless exhaustion: err = %v", err)
	}
	if h.AllocStalls != 0 {
		t.Fatal("hookless failure counted a stall")
	}

	// Hook that balloons one frame per stall: the fault succeeds after one
	// retry.
	bal := NewBalloon(h)
	h.Reclaim = func(attempt int) bool { return bal.Reclaim(1) > 0 }
	if err := v.Touch(4); err != nil {
		t.Fatalf("fault with reclaim hook: %v", err)
	}
	if h.AllocStalls != 1 {
		t.Fatalf("AllocStalls = %d, want 1", h.AllocStalls)
	}

	// Hook that gives up after maxRetries: bounded, typed failure — the
	// no-deadlock guarantee.
	const maxRetries = 3
	calls := 0
	h.Reclaim = func(attempt int) bool { calls++; return attempt < maxRetries }
	free := h.Phys.FreeFrames()
	for g := GFN(5); ; g++ { // exhaust what the balloon freed
		if free == 0 {
			break
		}
		if err := v.Touch(g); err != nil {
			t.Fatal(err)
		}
		free--
	}
	stallsBefore := h.AllocStalls
	err := v.Touch(7)
	if !errors.Is(err, mem.ErrOutOfFrames) {
		t.Fatalf("exhausted retry: err = %v", err)
	}
	if calls != maxRetries {
		t.Fatalf("hook called %d times, want %d", calls, maxRetries)
	}
	if h.AllocStalls != stallsBefore+maxRetries {
		t.Fatalf("AllocStalls advanced by %d, want %d", h.AllocStalls-stallsBefore, maxRetries)
	}
}

// TestOnReleaseHook: every release path (balloon or direct) fires the hook
// after the mapping is gone.
func TestOnReleaseHook(t *testing.T) {
	h := newHV(8)
	v := h.NewVM(4 * mem.PageSize)
	var released []PageID
	h.OnRelease = func(id PageID) {
		if v.Present(id.GFN) {
			t.Fatalf("OnRelease(%v) fired with the page still present", id)
		}
		released = append(released, id)
	}
	if _, err := v.Write(2, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	v.Release(2)
	v.Release(2) // not present: no hook
	bal := NewBalloon(h)
	if err := v.Touch(3); err != nil {
		t.Fatal(err)
	}
	bal.Reclaim(1)
	want := []PageID{{0, 2}, {0, 3}}
	if len(released) != 2 || released[0] != want[0] || released[1] != want[1] {
		t.Fatalf("released = %v, want %v", released, want)
	}
}
