package dram

import (
	"testing"

	"repro/internal/sim"
)

func TestDecodeInterleavesChannels(t *testing.T) {
	d := New(DefaultConfig())
	g0 := d.Decode(0)
	g1 := d.Decode(64)
	if g0.Channel == g1.Channel {
		t.Fatal("adjacent lines on the same channel")
	}
	g2 := d.Decode(128)
	if g2.Channel != g0.Channel {
		t.Fatal("channel interleave not round-robin")
	}
	if g2.Bank == g0.Bank {
		t.Fatal("same-channel consecutive lines on the same bank")
	}
}

func TestDecodeRowProgression(t *testing.T) {
	d := New(DefaultConfig())
	cfg := d.Config()
	// Lines that map to the same channel+bank but consecutive rows.
	stride := uint64(cfg.Channels*cfg.RanksPerChan*cfg.BanksPerRank) * uint64(cfg.LineBytes)
	linesPerRow := uint64(cfg.RowBytes / cfg.LineBytes)
	a := uint64(0)
	b := stride * linesPerRow
	ga, gb := d.Decode(a), d.Decode(b)
	if ga.Channel != gb.Channel || ga.Bank != gb.Bank {
		t.Fatal("stride math wrong: different bank")
	}
	if gb.Row != ga.Row+1 {
		t.Fatalf("rows %d -> %d, want consecutive", ga.Row, gb.Row)
	}
}

func TestRowHitIsFasterThanConflict(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// First access: closed bank.
	lat1 := d.Access(0, 0, false, SrcCore)
	want1 := cfg.CtrlOverhead + cfg.TRCD + cfg.TCL + cfg.TBurst
	if lat1 != want1 {
		t.Fatalf("closed-bank latency = %d, want %d", lat1, want1)
	}
	// Same row, much later (no queueing): row hit.
	lat2 := d.Access(0, 10_000, false, SrcCore)
	want2 := cfg.CtrlOverhead + cfg.TCL + cfg.TBurst
	if lat2 != want2 {
		t.Fatalf("row-hit latency = %d, want %d", lat2, want2)
	}
	// Different row, same bank: conflict.
	stride := uint64(cfg.Channels*cfg.RanksPerChan*cfg.BanksPerRank) * uint64(cfg.LineBytes)
	linesPerRow := uint64(cfg.RowBytes / cfg.LineBytes)
	conflictAddr := stride * linesPerRow
	lat3 := d.Access(conflictAddr, 20_000, false, SrcCore)
	want3 := cfg.CtrlOverhead + cfg.TRP + cfg.TRCD + cfg.TCL + cfg.TBurst
	if lat3 != want3 {
		t.Fatalf("conflict latency = %d, want %d", lat3, want3)
	}
	if d.Stats.RowHits != 1 || d.Stats.RowMisses != 1 || d.Stats.RowCloseds != 1 {
		t.Fatalf("row stats %+v", d.Stats)
	}
}

func TestBankContentionQueues(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Two back-to-back requests to the same bank at the same cycle: the
	// second waits for the first.
	lat1 := d.Access(0, 0, false, SrcCore)
	lat2 := d.Access(0, 0, false, SrcCore)
	if lat2 <= lat1 {
		t.Fatalf("second same-bank request latency %d <= first %d", lat2, lat1)
	}
}

func TestChannelBusSerializesBursts(t *testing.T) {
	cfg := DefaultConfig()
	d := New(cfg)
	// Same channel, different banks, same arrival: bursts share one bus.
	banksPerChan := uint64(cfg.RanksPerChan * cfg.BanksPerRank)
	a := uint64(0)
	b := uint64(cfg.Channels) * uint64(cfg.LineBytes) // next bank, same channel
	if d.Decode(a).Channel != d.Decode(b).Channel {
		t.Fatal("setup: different channels")
	}
	_ = banksPerChan
	lat1 := d.Access(a, 0, false, SrcCore)
	lat2 := d.Access(b, 0, false, SrcCore)
	if lat2 != lat1+cfg.TBurst {
		t.Fatalf("bus conflict latency = %d, want %d", lat2, lat1+cfg.TBurst)
	}
	// Different channel: no bus interaction.
	c := uint64(cfg.LineBytes) // channel 1
	lat3 := d.Access(c, 0, false, SrcCore)
	if lat3 != lat1 {
		t.Fatalf("independent channel latency = %d, want %d", lat3, lat1)
	}
}

func TestBandwidthWindows(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowCycles = 1000
	d := New(cfg)
	d.Access(0, 0, false, SrcKSM)
	d.Access(64, 0, false, SrcKSM)
	d.Access(128, 500, false, SrcCore)
	d.Access(192, 1500, false, SrcKSM) // second window
	if got := d.WindowBandwidth(SrcKSM, 0); got != 128 {
		t.Fatalf("window 0 KSM bytes = %d, want 128", got)
	}
	if got := d.WindowBandwidth(SrcCore, 0); got != 64 {
		t.Fatalf("window 0 core bytes = %d, want 64", got)
	}
	if got := d.WindowBandwidth(SrcKSM, 1); got != 64 {
		t.Fatalf("window 1 KSM bytes = %d, want 64", got)
	}
	w, bySrc, ok := d.PeakWindow(SrcKSM)
	if !ok || w != 0 {
		t.Fatalf("peak window = %d ok=%v, want 0", w, ok)
	}
	if bySrc[SrcKSM] != 128 || bySrc[SrcCore] != 64 {
		t.Fatalf("peak window bytes %v", bySrc)
	}
}

func TestGBpsConversion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowCycles = 2_000_000 // 1ms
	d := New(cfg)
	// 2 GB/s = 2e9 bytes/s = 2e6 bytes per 1ms window.
	if got := d.GBps(2_000_000); got < 1.99 || got > 2.01 {
		t.Fatalf("GBps(2MB per 1ms) = %g, want ~2", got)
	}
}

func TestTotalBytesAndRowHitRate(t *testing.T) {
	d := New(DefaultConfig())
	r := sim.NewRNG(1)
	for i := 0; i < 1000; i++ {
		d.Access(uint64(r.Intn(1<<20))*64, uint64(i*10), r.Bool(0.3), SrcPageForge)
	}
	if d.TotalBytes(SrcPageForge) != 64000 {
		t.Fatalf("TotalBytes = %d", d.TotalBytes(SrcPageForge))
	}
	hr := d.RowHitRate()
	if hr < 0 || hr > 1 {
		t.Fatalf("row hit rate %g out of range", hr)
	}
	if d.Stats.Reads+d.Stats.Writes != 1000 {
		t.Fatal("read/write accounting wrong")
	}
}

func TestSequentialStreamMostlyRowHits(t *testing.T) {
	// A dense sequential sweep within one bank's row should mostly hit.
	cfg := DefaultConfig()
	d := New(cfg)
	stride := uint64(cfg.Channels*cfg.RanksPerChan*cfg.BanksPerRank) * uint64(cfg.LineBytes)
	now := uint64(0)
	for i := uint64(0); i < 64; i++ { // 64 lines within the same row
		d.Access(i*stride%((uint64(cfg.RowBytes/cfg.LineBytes))*stride), now, false, SrcCore)
		now += 100
	}
	if d.RowHitRate() < 0.9 {
		t.Fatalf("row hit rate %g for single-row sweep", d.RowHitRate())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	New(Config{})
}
