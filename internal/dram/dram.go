// Package dram models the main memory of Table 2: 16GB over 2 channels,
// 8 ranks/channel, 8 banks/rank, DDR at 1GHz (2 CPU cycles per memory
// cycle), with per-bank row buffers and open-page policy. Requests are
// serviced in arrival order; queueing delay emerges from bank and channel
// bus occupancy, which is the first-order behaviour an FR-FCFS controller
// exposes to a small number of outstanding streams.
//
// The model also keeps per-source bandwidth accounting in fixed windows,
// which is what Figure 11 of the paper plots (bandwidth during the most
// memory-intensive phase of page deduplication).
package dram

import "fmt"

// Source attributes DRAM traffic for bandwidth accounting.
type Source int

// Traffic sources.
const (
	SrcCore      Source = iota // demand traffic from the cores/caches
	SrcKSM                     // software page-deduplication traffic
	SrcPageForge               // PageForge engine traffic
	SrcScrub                   // patrol-scrub background traffic
	numSources
)

// Sources lists every traffic source, for per-source accounting walks
// (the observability layer's bandwidth breakdowns).
func Sources() []Source {
	return []Source{SrcCore, SrcKSM, SrcPageForge, SrcScrub}
}

// String renders the source.
func (s Source) String() string {
	switch s {
	case SrcCore:
		return "core"
	case SrcKSM:
		return "ksm"
	case SrcPageForge:
		return "pageforge"
	case SrcScrub:
		return "scrub"
	default:
		return "?"
	}
}

// Config describes the memory system geometry and timing. All timing is in
// CPU cycles (2 GHz core, 1 GHz DDR memory clock: one memory cycle is two
// CPU cycles).
type Config struct {
	Channels     int
	RanksPerChan int
	BanksPerRank int
	RowBytes     int    // row-buffer size per bank
	LineBytes    int    // transfer granularity (cache line)
	TRCD         uint64 // activate-to-read, CPU cycles
	TRP          uint64 // precharge, CPU cycles
	TCL          uint64 // CAS latency, CPU cycles
	TBurst       uint64 // data burst occupancy of the channel bus
	WindowCycles uint64 // bandwidth accounting window
	CtrlOverhead uint64 // fixed controller/queue overhead per access
}

// DefaultConfig is the Table 2 memory system with DDR-1GHz-class timing.
func DefaultConfig() Config {
	return Config{
		Channels:     2,
		RanksPerChan: 8,
		BanksPerRank: 8,
		RowBytes:     8 << 10,
		LineBytes:    64,
		TRCD:         28,
		TRP:          28,
		TCL:          28,
		TBurst:       8,
		WindowCycles: 2_000_000, // 1ms at 2GHz
		CtrlOverhead: 12,
	}
}

type bank struct {
	openRow  int64 // -1: closed
	nextFree uint64
	bgOwned  bool // the pending occupancy belongs to background traffic
}

type channel struct {
	busFree uint64
	bgOwned bool
}

// Stats summarizes DRAM activity.
type Stats struct {
	Reads      uint64
	Writes     uint64
	RowHits    uint64
	RowMisses  uint64 // row conflict: precharge + activate
	RowCloseds uint64 // activate on a closed bank
	BytesBySrc [numSources]uint64
	// Queueing decomposition, per source: cycles spent waiting for a busy
	// bank and for the channel data bus.
	BankWaitBySrc [numSources]uint64
	BusWaitBySrc  [numSources]uint64
	AccessBySrc   [numSources]uint64
}

// DRAM is the memory system model.
type DRAM struct {
	cfg   Config
	banks [][]bank // [channel][rank*banksPerRank]
	chans []channel

	Stats Stats
	// windows[src] maps window index -> bytes transferred in that window.
	windows [numSources]map[uint64]uint64
	// Per-bank accounting for the observability layer: accesses and
	// row-buffer hits, indexed [channel][rank*banksPerRank+bank].
	bankAccess  [][]uint64
	bankRowHits [][]uint64
}

// New builds an idle memory system.
func New(cfg Config) *DRAM {
	if cfg.Channels < 1 || cfg.BanksPerRank < 1 || cfg.RanksPerChan < 1 {
		panic(fmt.Sprintf("dram: bad config %+v", cfg))
	}
	d := &DRAM{cfg: cfg, chans: make([]channel, cfg.Channels)}
	for c := 0; c < cfg.Channels; c++ {
		banks := make([]bank, cfg.RanksPerChan*cfg.BanksPerRank)
		for i := range banks {
			banks[i].openRow = -1
		}
		d.banks = append(d.banks, banks)
		d.bankAccess = append(d.bankAccess, make([]uint64, len(banks)))
		d.bankRowHits = append(d.bankRowHits, make([]uint64, len(banks)))
	}
	for i := range d.windows {
		d.windows[i] = make(map[uint64]uint64)
	}
	return d
}

// Geometry describes where an address lands.
type Geometry struct {
	Channel int
	Bank    int // rank*banksPerRank + bank, within the channel
	Row     int64
}

// Decode maps a physical address to channel/bank/row. Consecutive lines
// interleave across channels first, then across banks, so streams spread
// over the whole memory system (the interleaving the paper describes).
func (d *DRAM) Decode(addr uint64) Geometry {
	lineN := addr / uint64(d.cfg.LineBytes)
	ch := int(lineN % uint64(d.cfg.Channels))
	rest := lineN / uint64(d.cfg.Channels)
	banksPerChan := uint64(d.cfg.RanksPerChan * d.cfg.BanksPerRank)
	bankIdx := int(rest % banksPerChan)
	rowInBank := rest / banksPerChan
	linesPerRow := uint64(d.cfg.RowBytes / d.cfg.LineBytes)
	return Geometry{Channel: ch, Bank: bankIdx, Row: int64(rowInBank / linesPerRow)}
}

// Access services one line-sized request arriving at cycle now and returns
// its latency in CPU cycles.
//
// The controller schedules with demand priority: requests from the cores
// (and the KSM kthread, which *is* a core thread) preempt queued background
// traffic from the PageForge engine, waiting only for the non-preemptible
// residual of an in-flight background access (TCL+TBurst at the bank, one
// burst on the bus). Background reservations are pushed back rather than
// canceled. This is what keeps PageForge's aggressive streaming from
// inflating demand latency (§3.2.2's request buffers + §6.3's ~10%
// overhead); without priority, the engine's near-continuous line fetches
// would starve the cores.
func (d *DRAM) Access(addr uint64, now uint64, write bool, src Source) uint64 {
	g := d.Decode(addr)
	bk := &d.banks[g.Channel][g.Bank]
	chn := &d.chans[g.Channel]
	// Core and KSM traffic is demand-class; PageForge and the patrol
	// scrubber are background-class and yield to it.
	demand := src == SrcCore || src == SrcKSM

	start := now + d.cfg.CtrlOverhead
	if bk.nextFree > start {
		wait := bk.nextFree - start
		if demand && bk.bgOwned {
			if res := d.cfg.TCL + d.cfg.TBurst; wait > res {
				wait = res
			}
		}
		d.Stats.BankWaitBySrc[src] += wait
		start += wait
	}
	d.Stats.AccessBySrc[src]++
	d.bankAccess[g.Channel][g.Bank]++

	var access uint64
	switch {
	case bk.openRow == g.Row:
		d.Stats.RowHits++
		d.bankRowHits[g.Channel][g.Bank]++
		access = d.cfg.TCL
	case bk.openRow == -1:
		d.Stats.RowCloseds++
		access = d.cfg.TRCD + d.cfg.TCL
	default:
		d.Stats.RowMisses++
		access = d.cfg.TRP + d.cfg.TRCD + d.cfg.TCL
	}
	bk.openRow = g.Row

	dataReady := start + access
	// The channel bus must be free for the burst.
	if chn.busFree > dataReady {
		wait := chn.busFree - dataReady
		if demand && chn.bgOwned && wait > d.cfg.TBurst {
			wait = d.cfg.TBurst
		}
		d.Stats.BusWaitBySrc[src] += wait
		dataReady += wait
	}
	done := dataReady + d.cfg.TBurst
	// Preempted background reservations are pushed back, not canceled; the
	// tail of the reservation then still belongs to background traffic, so
	// ownership only changes when this access extends the reservation.
	if done > chn.busFree {
		chn.busFree = done
		chn.bgOwned = !demand
	} else {
		chn.busFree += d.cfg.TBurst
	}
	if done > bk.nextFree {
		bk.nextFree = done
		bk.bgOwned = !demand
	} else {
		bk.nextFree += d.cfg.TCL
	}

	if write {
		d.Stats.Writes++
	} else {
		d.Stats.Reads++
	}
	bytes := uint64(d.cfg.LineBytes)
	d.Stats.BytesBySrc[src] += bytes
	d.windows[src][now/d.cfg.WindowCycles] += bytes

	return done - now
}

// WindowBandwidth reports the bytes transferred by a source during the
// given window index.
func (d *DRAM) WindowBandwidth(src Source, window uint64) uint64 {
	return d.windows[src][window]
}

// GBps converts bytes-in-one-window to GB/s.
func (d *DRAM) GBps(bytes uint64) float64 {
	seconds := float64(d.cfg.WindowCycles) / 2e9
	return float64(bytes) / 1e9 / seconds
}

// PeakWindow finds the window with the highest total traffic from the
// given sources, returning its index and the per-source bytes in it.
// Figure 11 reports bandwidth in "the most memory-intensive phase of page
// deduplication": the peak window of dedup traffic.
func (d *DRAM) PeakWindow(srcs ...Source) (window uint64, bySrc [numSources]uint64, ok bool) {
	var best uint64
	for _, s := range srcs {
		for w, b := range d.windows[s] {
			total := b
			for _, s2 := range srcs {
				if s2 != s {
					total += d.windows[s2][w]
				}
			}
			if total > best {
				best = total
				window = w
				ok = true
			}
		}
	}
	if ok {
		for s := Source(0); s < numSources; s++ {
			bySrc[s] = d.windows[s][window]
		}
	}
	return window, bySrc, ok
}

// ResetBandwidthWindows clears the per-window accounting (but not the bank
// and bus state). Measurement phases call this after warm-up so peak-window
// statistics cover only the measured region.
func (d *DRAM) ResetBandwidthWindows() {
	for i := range d.windows {
		d.windows[i] = make(map[uint64]uint64)
	}
}

// TotalBytes reports all bytes transferred for a source.
func (d *DRAM) TotalBytes(src Source) uint64 { return d.Stats.BytesBySrc[src] }

// RowHitRate reports the fraction of accesses that hit an open row.
func (d *DRAM) RowHitRate() float64 {
	t := d.Stats.RowHits + d.Stats.RowMisses + d.Stats.RowCloseds
	if t == 0 {
		return 0
	}
	return float64(d.Stats.RowHits) / float64(t)
}

// Config returns the configuration (read-only use).
func (d *DRAM) Config() Config { return d.cfg }

// BankAccesses reports per-bank access counts, indexed
// [channel][rank*banksPerRank+bank]. The returned slices are the live
// accounting arrays — read-only for callers.
func (d *DRAM) BankAccesses() [][]uint64 { return d.bankAccess }

// BankRowHits reports per-bank row-buffer hit counts, same indexing as
// BankAccesses.
func (d *DRAM) BankRowHits() [][]uint64 { return d.bankRowHits }
