package dram

import (
	"fmt"
	"sort"
)

// Checkpoint support. Bank row-buffer contents and occupancy reservations
// determine every later access's latency, so they are captured exactly;
// the per-window bandwidth maps are serialized as sorted slices to keep
// the encoding deterministic.

// BankState is the serialized image of one bank.
type BankState struct {
	OpenRow  int64
	NextFree uint64
	BgOwned  bool
}

// ChannelState is the serialized image of one channel bus.
type ChannelState struct {
	BusFree uint64
	BgOwned bool
}

// WindowEntry is one bandwidth-accounting window's byte count.
type WindowEntry struct {
	Window uint64
	Bytes  uint64
}

// DRAMState is the serialized image of a DRAM.
type DRAMState struct {
	Banks       [][]BankState
	Chans       []ChannelState
	Stats       Stats
	Windows     [][]WindowEntry // indexed by Source
	BankAccess  [][]uint64
	BankRowHits [][]uint64
}

// State captures the memory system.
func (d *DRAM) State() DRAMState {
	st := DRAMState{
		Banks:       make([][]BankState, len(d.banks)),
		Chans:       make([]ChannelState, len(d.chans)),
		Stats:       d.Stats,
		Windows:     make([][]WindowEntry, len(d.windows)),
		BankAccess:  make([][]uint64, len(d.bankAccess)),
		BankRowHits: make([][]uint64, len(d.bankRowHits)),
	}
	for c, banks := range d.banks {
		st.Banks[c] = make([]BankState, len(banks))
		for i, b := range banks {
			st.Banks[c][i] = BankState{OpenRow: b.openRow, NextFree: b.nextFree, BgOwned: b.bgOwned}
		}
		st.BankAccess[c] = append([]uint64(nil), d.bankAccess[c]...)
		st.BankRowHits[c] = append([]uint64(nil), d.bankRowHits[c]...)
	}
	for c, ch := range d.chans {
		st.Chans[c] = ChannelState{BusFree: ch.busFree, BgOwned: ch.bgOwned}
	}
	for s := range d.windows {
		entries := make([]WindowEntry, 0, len(d.windows[s]))
		for w, b := range d.windows[s] {
			entries = append(entries, WindowEntry{Window: w, Bytes: b})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].Window < entries[j].Window })
		st.Windows[s] = entries
	}
	return st
}

// SetState restores the memory system in place. Geometry must match the
// live configuration.
func (d *DRAM) SetState(st DRAMState) error {
	if len(st.Banks) != len(d.banks) || len(st.Chans) != len(d.chans) || len(st.Windows) != len(d.windows) {
		return fmt.Errorf("dram: restore geometry mismatch")
	}
	for c, banks := range st.Banks {
		if len(banks) != len(d.banks[c]) {
			return fmt.Errorf("dram: restore bank-count mismatch on channel %d", c)
		}
		for i, b := range banks {
			d.banks[c][i] = bank{openRow: b.OpenRow, nextFree: b.NextFree, bgOwned: b.BgOwned}
		}
		copy(d.bankAccess[c], st.BankAccess[c])
		copy(d.bankRowHits[c], st.BankRowHits[c])
	}
	for c, ch := range st.Chans {
		d.chans[c] = channel{busFree: ch.BusFree, bgOwned: ch.BgOwned}
	}
	d.Stats = st.Stats
	for s := range d.windows {
		d.windows[s] = make(map[uint64]uint64, len(st.Windows[s]))
		for _, e := range st.Windows[s] {
			d.windows[s][e.Window] = e.Bytes
		}
	}
	return nil
}
