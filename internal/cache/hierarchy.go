package cache

import "fmt"

// Level identifies where an access was serviced.
type Level int

// Service levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelRemote // another core's private cache (dirty snoop hit)
	LevelMemory
)

// String renders the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	case LevelRemote:
		return "remote"
	case LevelMemory:
		return "memory"
	default:
		return "?"
	}
}

// HierarchyConfig sizes the hierarchy (defaults follow Table 2).
type HierarchyConfig struct {
	Cores     int
	L1        Config
	L2        Config
	L3        Config
	L1Latency uint64 // round-trip cycles
	L2Latency uint64
	L3Latency uint64
	// MemLatency is used when no memory-controller callback is installed.
	MemLatency uint64
}

// DefaultHierarchyConfig is the Table 2 machine: 10 cores, 32KB/8w L1,
// 256KB/8w L2, 32MB/20w shared L3; 2/6/20-cycle round trips.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		Cores:      10,
		L1:         Config{SizeBytes: 32 << 10, Ways: 8},
		L2:         Config{SizeBytes: 256 << 10, Ways: 8},
		L3:         Config{SizeBytes: 32 << 20, Ways: 20},
		L1Latency:  2,
		L2Latency:  6,
		L3Latency:  20,
		MemLatency: 120,
	}
}

// AccessResult describes one serviced access.
type AccessResult struct {
	Level   Level
	Latency uint64
}

// SourceClass attributes L3 traffic for Table 4's analysis.
type SourceClass int

// Traffic classes.
const (
	SrcApp SourceClass = iota
	SrcKSM
	numSources
)

// Hierarchy is the full on-chip cache system.
type Hierarchy struct {
	cfg HierarchyConfig
	l1  []*Cache
	l2  []*Cache
	l3  *Cache

	// MemAccess, when set, is invoked for every DRAM-level access (line
	// fill or write-back) and returns its latency in cycles. The platform
	// wires this to the memory controller model.
	MemAccess func(addr uint64, write bool) uint64

	// L3AccessBySource / L3MissBySource attribute shared-cache pressure.
	L3AccessBySource [numSources]uint64
	L3MissBySource   [numSources]uint64
	// Writebacks counts dirty lines pushed to memory.
	Writebacks uint64
	// NetworkProbes / NetworkProbeHits count PageForge's coherence probes.
	NetworkProbes    uint64
	NetworkProbeHits uint64
}

// NewHierarchy builds an empty hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	if cfg.Cores < 1 || cfg.Cores > 16 {
		panic(fmt.Sprintf("cache: unsupported core count %d", cfg.Cores))
	}
	h := &Hierarchy{cfg: cfg, l3: NewCache(cfg.L3)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1 = append(h.l1, NewCache(cfg.L1))
		h.l2 = append(h.l2, NewCache(cfg.L2))
	}
	return h
}

// L1 returns core i's L1 (for tests and stats).
func (h *Hierarchy) L1(i int) *Cache { return h.l1[i] }

// L2 returns core i's L2.
func (h *Hierarchy) L2(i int) *Cache { return h.l2[i] }

// L3 returns the shared cache.
func (h *Hierarchy) L3() *Cache { return h.l3 }

// Cores reports the core count.
func (h *Hierarchy) Cores() int { return h.cfg.Cores }

func (h *Hierarchy) memAccess(addr uint64, write bool) uint64 {
	if h.MemAccess != nil {
		return h.MemAccess(addr, write)
	}
	return h.cfg.MemLatency
}

// Access performs a coherent load or store by core, filling caches along
// the way, and returns where it was serviced and its latency.
func (h *Hierarchy) Access(core int, addr uint64, write bool, src SourceClass) AccessResult {
	lat := h.cfg.L1Latency
	if l := h.l1[core].Lookup(addr); l != nil {
		if write {
			if l.state == Shared {
				// Upgrade: invalidate other sharers.
				lat += h.cfg.L3Latency
				h.invalidateOthers(core, addr)
			}
			h.markDirty(core, addr)
		}
		return AccessResult{LevelL1, lat}
	}
	lat += h.cfg.L2Latency
	if l := h.l2[core].Lookup(addr); l != nil {
		state := l.state
		if write {
			if state == Shared {
				lat += h.cfg.L3Latency
				h.invalidateOthers(core, addr)
				state = Modified
			}
		}
		h.fillPrivate(core, addr, state, 1) // promote into L1
		if write {
			h.markDirty(core, addr)
		}
		return AccessResult{LevelL2, lat}
	}

	// Private miss: go to the shared L3 (directory).
	lat += h.cfg.L3Latency
	h.L3AccessBySource[src]++
	l3line := h.l3.Lookup(addr)
	level := LevelL3
	if l3line == nil {
		// L3 miss: fetch from memory, fill L3.
		h.L3MissBySource[src]++
		lat += h.memAccess(addr, false)
		level = LevelMemory
		ev := h.l3.Insert(addr, Exclusive)
		h.handleL3Eviction(ev)
		l3line = h.l3.Peek(addr)
	} else if l3line.privM {
		// Dirty in some private cache: snoop it back (cache-to-cache).
		lat += h.cfg.L3Latency
		level = LevelRemote
		h.recallDirty(core, addr, l3line)
	}

	state := Shared
	if l3line.sharers == 0 || l3line.sharers == 1<<uint(core) {
		state = Exclusive
	}
	if write {
		h.invalidateOthers(core, addr)
		l3line = h.l3.Peek(addr) // invalidateOthers updates sharer bits
		state = Modified
		l3line.privM = true
		l3line.sharers = 1 << uint(core)
	} else {
		if state == Shared {
			// Downgrade any exclusive/modified holder.
			h.downgradeOthers(core, addr)
			l3line = h.l3.Peek(addr)
		}
		l3line.sharers |= 1 << uint(core)
	}
	h.fillPrivate(core, addr, state, 2)
	if write {
		h.markDirty(core, addr)
	}
	return AccessResult{level, lat}
}

// fillPrivate inserts the line into the core's L1 (levels>=1) and L2
// (levels>=2), handling private-cache evictions (write back dirty victims
// to the L3 / memory and clear directory bits when the last copy leaves).
func (h *Hierarchy) fillPrivate(core int, addr uint64, state MESI, levels int) {
	caches := []*Cache{h.l1[core]}
	if levels >= 2 {
		caches = append(caches, h.l2[core])
	}
	for _, c := range caches {
		ev := c.Insert(addr, state)
		if ev.Valid {
			h.privateEvict(core, ev)
		}
	}
}

// privateEvict handles a line displaced from a private cache.
func (h *Hierarchy) privateEvict(core int, ev Eviction) {
	// If the twin copy is still in the other private level, the core still
	// holds the line; directory state is unchanged.
	if h.l1[core].Peek(ev.Addr) != nil || h.l2[core].Peek(ev.Addr) != nil {
		if ev.Dirty {
			// Keep dirtiness in the surviving copy.
			h.markDirty(core, ev.Addr)
		}
		return
	}
	l3line := h.l3.Peek(ev.Addr)
	if l3line == nil {
		// The L3 already evicted it (back-invalidation path); dirty data
		// goes straight to memory.
		if ev.Dirty {
			h.Writebacks++
			h.memAccess(ev.Addr, true)
		}
		return
	}
	l3line.sharers &^= 1 << uint(core)
	if ev.Dirty {
		l3line.dirty = true
		l3line.privM = false
	}
	if l3line.sharers == 0 {
		l3line.privM = false
	}
}

// handleL3Eviction back-invalidates private copies (inclusive L3) and
// writes back dirty victims.
func (h *Hierarchy) handleL3Eviction(ev Eviction) {
	if !ev.Valid {
		return
	}
	dirty := ev.Dirty
	for core := 0; core < h.cfg.Cores; core++ {
		if ev.Sharers&(1<<uint(core)) == 0 {
			continue
		}
		if p, d := h.l1[core].Invalidate(ev.Addr); p && d {
			dirty = true
		}
		if p, d := h.l2[core].Invalidate(ev.Addr); p && d {
			dirty = true
		}
	}
	if dirty {
		h.Writebacks++
		h.memAccess(ev.Addr, true)
	}
}

// invalidateOthers removes every other core's copy (write/RFO).
func (h *Hierarchy) invalidateOthers(core int, addr uint64) {
	l3line := h.l3.Peek(addr)
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core {
			continue
		}
		p1, d1 := h.l1[c].Invalidate(addr)
		p2, d2 := h.l2[c].Invalidate(addr)
		if l3line != nil {
			if p1 || p2 {
				l3line.sharers &^= 1 << uint(c)
			}
			if d1 || d2 {
				l3line.dirty = true // absorbed into L3
			}
		}
	}
	if l3line != nil {
		l3line.privM = false
	}
}

// downgradeOthers moves other cores' E/M copies to S, absorbing dirt.
func (h *Hierarchy) downgradeOthers(core int, addr uint64) {
	l3line := h.l3.Peek(addr)
	for c := 0; c < h.cfg.Cores; c++ {
		if c == core {
			continue
		}
		for _, pc := range []*Cache{h.l1[c], h.l2[c]} {
			if l := pc.Peek(addr); l != nil {
				if l.state == Modified || l.dirty {
					if l3line != nil {
						l3line.dirty = true
					}
					l.dirty = false
				}
				l.state = Shared
			}
		}
	}
	if l3line != nil {
		l3line.privM = false
	}
}

// recallDirty pulls a dirty private line back to the L3 when another core
// reads it.
func (h *Hierarchy) recallDirty(requestor int, addr uint64, l3line *line) {
	for c := 0; c < h.cfg.Cores; c++ {
		if c == requestor {
			continue
		}
		for _, pc := range []*Cache{h.l1[c], h.l2[c]} {
			if l := pc.Peek(addr); l != nil && (l.state == Modified || l.dirty) {
				l.state = Shared
				l.dirty = false
				l3line.dirty = true
			}
		}
	}
	l3line.privM = false
}

// markDirty sets the dirty bit + Modified state in the core's caches.
func (h *Hierarchy) markDirty(core int, addr uint64) {
	for _, pc := range []*Cache{h.l1[core], h.l2[core]} {
		if l := pc.Peek(addr); l != nil {
			l.dirty = true
			l.state = Modified
		}
	}
	if l3line := h.l3.Peek(addr); l3line != nil {
		l3line.privM = true
		l3line.sharers |= 1 << uint(core)
	}
}

// ProbeNetwork is PageForge's coherence interaction (Section 3.5): the
// memory controller issues the request on the on-chip network; if any cache
// holds the line, the network supplies the data and no DRAM access happens.
// PageForge has no cache, so probes never change cache state beyond the
// implicit downgrade of a dirty owner (which must supply the latest value).
func (h *Hierarchy) ProbeNetwork(addr uint64) bool {
	h.NetworkProbes++
	if l3line := h.l3.Peek(addr); l3line != nil {
		if l3line.privM {
			h.recallDirty(-1, addr, l3line)
		}
		h.NetworkProbeHits++
		return true
	}
	// Non-inclusive corner: a private copy without an L3 line cannot exist
	// in this model (inclusive), so an L3 miss means memory must supply it.
	return false
}

// L3MissRate reports the overall local L3 miss rate.
func (h *Hierarchy) L3MissRate() float64 { return h.l3.MissRate() }

// ResetStats clears all statistics (after warm-up) without disturbing
// cache contents.
func (h *Hierarchy) ResetStats() {
	for i := range h.l1 {
		h.l1[i].ResetStats()
		h.l2[i].ResetStats()
	}
	h.l3.ResetStats()
	h.L3AccessBySource = [numSources]uint64{}
	h.L3MissBySource = [numSources]uint64{}
	h.Writebacks = 0
	h.NetworkProbes, h.NetworkProbeHits = 0, 0
}
