package cache

import (
	"testing"

	"repro/internal/sim"
)

func dline(val byte) []byte {
	b := make([]byte, LineSize)
	for i := range b {
		b[i] = val
	}
	return b
}

func TestDedupSharesIdenticalLines(t *testing.T) {
	c := NewDedupCache(8, 4)
	// Four addresses, two distinct contents.
	c.Access(0, dline(1))
	c.Access(64, dline(1))
	c.Access(128, dline(2))
	c.Access(192, dline(2))
	if c.ResidentTags() != 4 || c.ResidentBlocks() != 2 {
		t.Fatalf("tags/blocks = %d/%d, want 4/2", c.ResidentTags(), c.ResidentBlocks())
	}
	if c.DedupShared != 2 {
		t.Fatalf("DedupShared = %d, want 2", c.DedupShared)
	}
	if f := c.EffectiveCapacityFactor(); f != 2 {
		t.Fatalf("capacity factor = %g, want 2", f)
	}
	// All four hit now.
	for _, a := range []uint64{0, 64, 128, 192} {
		if !c.Access(a, nil) {
			t.Fatalf("addr %d missed after fill", a)
		}
	}
}

func TestDedupStretchesCapacity(t *testing.T) {
	// 8 tags over 2 data blocks: 8 addresses of 2 contents all fit, which
	// a conventional 2-line cache could never do.
	c := NewDedupCache(8, 2)
	for i := uint64(0); i < 8; i++ {
		c.Access(i*64, dline(byte(i%2)))
	}
	if c.ResidentTags() != 8 || c.ResidentBlocks() != 2 {
		t.Fatalf("tags/blocks = %d/%d", c.ResidentTags(), c.ResidentBlocks())
	}
	hits := 0
	for i := uint64(0); i < 8; i++ {
		if c.Access(i*64, dline(byte(i%2))) {
			hits++
		}
	}
	if hits != 8 {
		t.Fatalf("re-access hits = %d, want 8", hits)
	}
}

func TestDedupUniqueContentEvicts(t *testing.T) {
	c := NewDedupCache(4, 2)
	// Three unique contents through a 2-block store: evictions required.
	c.Access(0, dline(1))
	c.Access(64, dline(2))
	c.Access(128, dline(3))
	if c.ResidentBlocks() > 2 {
		t.Fatalf("blocks = %d exceeds store", c.ResidentBlocks())
	}
	if c.DataEvicts == 0 {
		t.Fatal("no data eviction")
	}
}

func TestDedupRefcountKeepsSharedBlock(t *testing.T) {
	c := NewDedupCache(3, 2)
	c.Access(0, dline(7))
	c.Access(64, dline(7))
	c.Access(128, dline(8))
	// Force a tag eviction (insert a 4th tag): the LRU tag (addr 0) goes,
	// but its block survives via addr 64's reference.
	c.Access(192, dline(8))
	if c.TagEvicts == 0 {
		t.Fatal("no tag eviction")
	}
	if !c.Access(64, dline(7)) {
		t.Fatal("surviving sharer lost its line")
	}
}

func TestDedupHashCollisionDoesNotMergeDifferentContents(t *testing.T) {
	// Force the collision path by planting a block whose hash we then
	// reuse with different contents via the internal fill (white-box: we
	// simulate a collision by inserting two lines and corrupting the
	// content index).
	c := NewDedupCache(8, 4)
	c.Access(0, dline(1))
	// Graft a colliding index entry: content hash of dline(2) pointing at
	// dline(1)'s block would be a collision; emulate by rewriting the map.
	h := lineHash(dline(2))
	for id := range c.blocks {
		c.byContent[h] = id
	}
	c.Access(64, dline(2))
	// The fill must have detected the mismatch and allocated privately.
	if c.DedupShared != 0 {
		t.Fatal("collision merged different contents")
	}
	if c.ResidentBlocks() != 2 {
		t.Fatalf("blocks = %d, want 2", c.ResidentBlocks())
	}
}

func TestDedupOnVMImageTraffic(t *testing.T) {
	// Line traffic drawn from duplicate-heavy pages (the consolidated-VM
	// pattern): dedup LLC holds a working set a conventional one cannot.
	r := sim.NewRNG(5)
	contents := make([][]byte, 64) // 64 distinct line contents
	for i := range contents {
		contents[i] = make([]byte, LineSize)
		r.FillBytes(contents[i])
	}
	// 1024 line addresses, each mapped to one of the 64 contents.
	assign := make([]int, 1024)
	for i := range assign {
		assign[i] = r.Intn(64)
	}
	dedup := NewDedupCache(1024, 128)
	conv := NewDedupCache(128, 128) // tag-limited: behaves conventionally
	for pass := 0; pass < 3; pass++ {
		for i, ci := range assign {
			dedup.Access(uint64(i)*64, contents[ci])
			conv.Access(uint64(i)*64, contents[ci])
		}
	}
	if dedup.MissRate() >= conv.MissRate() {
		t.Fatalf("dedup LLC miss %.2f not below conventional %.2f",
			dedup.MissRate(), conv.MissRate())
	}
	if f := dedup.EffectiveCapacityFactor(); f < 4 {
		t.Fatalf("capacity factor %.1f on 16:1-duplicated traffic", f)
	}
}

func TestDedupBadGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewDedupCache(0, 0) },
		func() { NewDedupCache(2, 4) }, // fewer tags than blocks
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad geometry accepted")
				}
			}()
			fn()
		}()
	}
}
