// Package cache models the on-chip memory hierarchy of Table 2: per-core
// write-back L1 and L2 caches, a shared inclusive L3 with MESI coherence
// (directory state kept at the L3, behaviourally equivalent to the paper's
// snoopy MESI at L3), and per-source statistics.
//
// The cache model serves two purposes in the reproduction: it produces the
// L3 miss rates of Table 4 (KSM's streaming comparisons pollute the shared
// L3), and it answers PageForge's "issue the request to the on-chip network
// first" probes (Section 3.2.2) — a scanned line that is cached must be
// supplied by the network, not the DRAM.
package cache

import "fmt"

// MESI is the coherence state of a cached line.
type MESI uint8

// Coherence states.
const (
	Invalid MESI = iota
	Shared
	Exclusive
	Modified
)

// String renders the state.
func (s MESI) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return "?"
	}
}

// LineSize is the cache-line size in bytes (Table 2: 64B everywhere).
const LineSize = 64

// Config describes one cache array.
type Config struct {
	SizeBytes int
	Ways      int
}

// Sets reports the number of sets (rounded down for non-power-of-two
// organizations such as the 32MB 20-way L3).
func (c Config) Sets() int {
	s := c.SizeBytes / (LineSize * c.Ways)
	if s < 1 {
		s = 1
	}
	return s
}

type line struct {
	tag   uint64
	state MESI
	dirty bool
	lru   uint64
	// sharers is used only by the (inclusive) L3: a bitmap of cores whose
	// private caches may hold the line, plus whether one holds it dirty.
	sharers uint16
	privM   bool
}

// Cache is one set-associative write-back cache array.
type Cache struct {
	cfg  Config
	sets [][]line
	tick uint64

	Hits   uint64
	Misses uint64
}

// NewCache builds an empty cache.
func NewCache(cfg Config) *Cache {
	if cfg.Ways < 1 || cfg.SizeBytes < LineSize*cfg.Ways {
		panic(fmt.Sprintf("cache: bad config %+v", cfg))
	}
	sets := make([][]line, cfg.Sets())
	for i := range sets {
		sets[i] = make([]line, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}
}

// Sets reports the set count.
func (c *Cache) Sets() int { return len(c.sets) }

func (c *Cache) set(addr uint64) []line {
	return c.sets[(addr/LineSize)%uint64(len(c.sets))]
}

func lineTag(addr uint64) uint64 { return addr / LineSize }

// find returns the way holding the line, or nil.
func (c *Cache) find(addr uint64) *line {
	tag := lineTag(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == tag {
			return &set[i]
		}
	}
	return nil
}

// Lookup reports whether the line is present, updating hit/miss counters
// and LRU on hit.
func (c *Cache) Lookup(addr uint64) *line {
	l := c.find(addr)
	if l != nil {
		c.tick++
		l.lru = c.tick
		c.Hits++
		return l
	}
	c.Misses++
	return nil
}

// Peek is Lookup without statistics or LRU side effects (snoops).
func (c *Cache) Peek(addr uint64) *line { return c.find(addr) }

// Eviction describes a line displaced by Insert.
type Eviction struct {
	Addr    uint64
	Dirty   bool
	Sharers uint16
	Valid   bool
}

// Insert allocates the line in the given state, returning any eviction.
// The caller handles write-back of dirty victims and (for the inclusive
// L3) back-invalidation of the victim's private copies.
func (c *Cache) Insert(addr uint64, state MESI) Eviction {
	set := c.set(addr)
	victim := &set[0]
	for i := range set {
		if set[i].state == Invalid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	var ev Eviction
	if victim.state != Invalid {
		ev = Eviction{Addr: victim.tag * LineSize, Dirty: victim.dirty, Sharers: victim.sharers, Valid: true}
	}
	c.tick++
	*victim = line{tag: lineTag(addr), state: state, lru: c.tick}
	return ev
}

// Invalidate drops the line if present, reporting (present, wasDirty).
func (c *Cache) Invalidate(addr uint64) (bool, bool) {
	l := c.find(addr)
	if l == nil {
		return false, false
	}
	dirty := l.dirty
	*l = line{}
	return true, dirty
}

// Occupancy reports the fraction of ways holding valid lines; tests use it.
func (c *Cache) Occupancy() float64 {
	total, valid := 0, 0
	for _, set := range c.sets {
		for i := range set {
			total++
			if set[i].state != Invalid {
				valid++
			}
		}
	}
	return float64(valid) / float64(total)
}

// MissRate reports misses / (hits+misses), 0 when idle.
func (c *Cache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

// ResetStats zeroes the hit/miss counters (warm-up handling).
func (c *Cache) ResetStats() { c.Hits, c.Misses = 0, 0 }
