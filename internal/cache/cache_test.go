package cache

import (
	"testing"

	"repro/internal/sim"
)

func TestConfigSets(t *testing.T) {
	if s := (Config{SizeBytes: 32 << 10, Ways: 8}).Sets(); s != 64 {
		t.Fatalf("32KB/8w sets = %d, want 64", s)
	}
	if s := (Config{SizeBytes: 32 << 20, Ways: 20}).Sets(); s != 26214 {
		t.Fatalf("32MB/20w sets = %d, want 26214", s)
	}
}

func TestCacheHitMissLRU(t *testing.T) {
	c := NewCache(Config{SizeBytes: 4 * LineSize, Ways: 4}) // 1 set, 4 ways
	addrs := []uint64{0, 64, 128, 192}
	for _, a := range addrs {
		if c.Lookup(a) != nil {
			t.Fatal("hit in empty cache")
		}
		c.Insert(a, Exclusive)
	}
	for _, a := range addrs {
		if c.Lookup(a) == nil {
			t.Fatalf("miss on resident line %d", a)
		}
	}
	// Touch 0 to make it MRU, then insert a 5th line: victim must not be 0.
	c.Lookup(0)
	ev := c.Insert(256, Exclusive)
	if !ev.Valid {
		t.Fatal("full set insert produced no eviction")
	}
	if ev.Addr == 0 {
		t.Fatal("evicted the MRU line")
	}
	if c.Peek(0) == nil {
		t.Fatal("MRU line gone")
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(Config{SizeBytes: 2 * LineSize, Ways: 2})
	c.Insert(0, Modified)
	if l := c.Peek(0); l != nil {
		l.dirty = true
	}
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v/%v, want true/true", present, dirty)
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Fatal("double invalidate found the line")
	}
}

func TestCacheMissRateAndOccupancy(t *testing.T) {
	c := NewCache(Config{SizeBytes: 8 * LineSize, Ways: 2})
	c.Lookup(0) // miss
	c.Insert(0, Shared)
	c.Lookup(0) // hit
	if c.MissRate() != 0.5 {
		t.Fatalf("miss rate = %g, want 0.5", c.MissRate())
	}
	if c.Occupancy() != 1.0/8 {
		t.Fatalf("occupancy = %g, want 1/8", c.Occupancy())
	}
	c.ResetStats()
	if c.MissRate() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad config accepted")
		}
	}()
	NewCache(Config{SizeBytes: 32, Ways: 1})
}

func newH() *Hierarchy {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 4
	// Small caches so tests exercise evictions.
	cfg.L1 = Config{SizeBytes: 4 << 10, Ways: 4}
	cfg.L2 = Config{SizeBytes: 16 << 10, Ways: 4}
	cfg.L3 = Config{SizeBytes: 64 << 10, Ways: 8}
	return NewHierarchy(cfg)
}

func TestHierarchyFirstAccessGoesToMemory(t *testing.T) {
	h := newH()
	res := h.Access(0, 0x1000, false, SrcApp)
	if res.Level != LevelMemory {
		t.Fatalf("level = %v, want memory", res.Level)
	}
	if res.Latency < 2+6+20+120 {
		t.Fatalf("latency = %d, want at least full path", res.Latency)
	}
	// Second access: L1 hit.
	res = h.Access(0, 0x1000, false, SrcApp)
	if res.Level != LevelL1 || res.Latency != 2 {
		t.Fatalf("repeat access = %+v, want L1/2", res)
	}
}

func TestHierarchySharedReadThenL3Hit(t *testing.T) {
	h := newH()
	h.Access(0, 0x2000, false, SrcApp)
	res := h.Access(1, 0x2000, false, SrcApp)
	if res.Level != LevelL3 {
		t.Fatalf("second core level = %v, want L3", res.Level)
	}
	// Both cores now hit locally.
	if r := h.Access(0, 0x2000, false, SrcApp); r.Level != LevelL1 {
		t.Fatalf("core 0 = %v", r.Level)
	}
	if r := h.Access(1, 0x2000, false, SrcApp); r.Level != LevelL1 {
		t.Fatalf("core 1 = %v", r.Level)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := newH()
	h.Access(0, 0x3000, false, SrcApp)
	h.Access(1, 0x3000, false, SrcApp)
	// Core 2 writes: cores 0 and 1 lose their copies.
	h.Access(2, 0x3000, true, SrcApp)
	if h.L1(0).Peek(0x3000) != nil || h.L1(1).Peek(0x3000) != nil {
		t.Fatal("write did not invalidate sharers")
	}
	l := h.L1(2).Peek(0x3000)
	if l == nil || l.state != Modified {
		t.Fatal("writer does not hold the line Modified")
	}
}

func TestDirtyLineSuppliedToReader(t *testing.T) {
	h := newH()
	h.Access(0, 0x4000, true, SrcApp) // core 0 dirties the line
	res := h.Access(1, 0x4000, false, SrcApp)
	if res.Level != LevelRemote {
		t.Fatalf("reader serviced from %v, want remote cache", res.Level)
	}
	// Owner's copy is downgraded to Shared.
	if l := h.L1(0).Peek(0x4000); l == nil || l.state != Shared {
		t.Fatal("dirty owner not downgraded")
	}
}

func TestWriteUpgradeFromShared(t *testing.T) {
	h := newH()
	h.Access(0, 0x5000, false, SrcApp)
	h.Access(1, 0x5000, false, SrcApp) // both Shared
	h.Access(0, 0x5000, true, SrcApp)  // upgrade
	if h.L1(1).Peek(0x5000) != nil {
		t.Fatal("upgrade did not invalidate the other sharer")
	}
	if l := h.L1(0).Peek(0x5000); l == nil || l.state != Modified || !l.dirty {
		t.Fatal("upgrading writer not Modified+dirty")
	}
}

func TestL3EvictionBackInvalidatesPrivates(t *testing.T) {
	h := newH()
	// Fill one L3 set beyond capacity from core 0; inclusive L3 must purge
	// private copies of evicted lines.
	sets := uint64(h.L3().Sets())
	var addrs []uint64
	for i := uint64(0); i < 9; i++ { // 8 ways + 1
		addrs = append(addrs, i*sets*LineSize) // all map to set 0
	}
	for _, a := range addrs {
		h.Access(0, a, false, SrcApp)
	}
	evicted := 0
	for _, a := range addrs {
		if h.L3().Peek(a) == nil {
			evicted++
			if h.L1(0).Peek(a) != nil || h.L2(0).Peek(a) != nil {
				t.Fatal("inclusive L3 evicted a line still cached privately")
			}
		}
	}
	if evicted == 0 {
		t.Fatal("no L3 eviction occurred")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	h := newH()
	writebacks := 0
	h.MemAccess = func(addr uint64, write bool) uint64 {
		if write {
			writebacks++
		}
		return 100
	}
	sets := uint64(h.L3().Sets())
	// Dirty a line, then stream enough same-set lines to force it out.
	h.Access(0, 0, true, SrcApp)
	for i := uint64(1); i <= 16; i++ {
		h.Access(0, i*sets*LineSize, false, SrcApp)
	}
	if h.L3().Peek(0) != nil {
		t.Skip("victim unexpectedly survived; LRU kept it")
	}
	if writebacks == 0 {
		t.Fatal("dirty eviction did not write back to memory")
	}
}

func TestProbeNetwork(t *testing.T) {
	h := newH()
	if h.ProbeNetwork(0x6000) {
		t.Fatal("probe hit on uncached line")
	}
	h.Access(0, 0x6000, true, SrcApp)
	if !h.ProbeNetwork(0x6000) {
		t.Fatal("probe missed a cached (dirty) line")
	}
	// The dirty owner is downgraded so the supplied data is current.
	if l := h.L1(0).Peek(0x6000); l == nil || l.state == Modified {
		t.Fatal("probe did not downgrade dirty owner")
	}
	if h.NetworkProbes != 2 || h.NetworkProbeHits != 1 {
		t.Fatalf("probe stats %d/%d", h.NetworkProbes, h.NetworkProbeHits)
	}
	// Probes must not allocate anywhere.
	if h.L1(1).Peek(0x6000) != nil {
		t.Fatal("probe allocated in a cache")
	}
}

func TestL3SourceAttribution(t *testing.T) {
	h := newH()
	h.Access(0, 0x7000, false, SrcApp)
	h.Access(1, 0x8000, false, SrcKSM)
	if h.L3AccessBySource[SrcApp] != 1 || h.L3AccessBySource[SrcKSM] != 1 {
		t.Fatalf("access attribution %v", h.L3AccessBySource)
	}
	if h.L3MissBySource[SrcApp] != 1 || h.L3MissBySource[SrcKSM] != 1 {
		t.Fatalf("miss attribution %v", h.L3MissBySource)
	}
}

func TestStreamingPollutesL3(t *testing.T) {
	// An app with a small hot set hits in L3 until a KSM-like streaming
	// sweep displaces it: the mechanism behind Table 4's miss-rate rise.
	h := newH()
	hot := []uint64{0, 64, 128, 192, 256, 320}
	for _, a := range hot {
		h.Access(0, a, false, SrcApp)
	}
	// Verify residency.
	for _, a := range hot {
		if h.L3().Peek(a) == nil {
			t.Fatal("hot set not resident")
		}
	}
	// Stream 4x the L3 capacity from another core.
	capLines := uint64(64 << 10 / LineSize)
	for i := uint64(0); i < 4*capLines; i++ {
		h.Access(3, 0x100000+i*LineSize, false, SrcKSM)
	}
	resident := 0
	for _, a := range hot {
		if h.L3().Peek(a) != nil {
			resident++
		}
	}
	if resident == len(hot) {
		t.Fatal("streaming sweep displaced nothing")
	}
}

func TestCoherenceInvariantSingleWriter(t *testing.T) {
	// Property: after any random access sequence, a Modified line in one
	// core's cache implies no other core holds it.
	r := sim.NewRNG(7)
	h := newH()
	addrs := make([]uint64, 32)
	for i := range addrs {
		addrs[i] = uint64(i) * LineSize
	}
	for op := 0; op < 5000; op++ {
		core := r.Intn(4)
		addr := addrs[r.Intn(len(addrs))]
		h.Access(core, addr, r.Bool(0.3), SrcApp)
	}
	for _, a := range addrs {
		owners, holders := 0, 0
		for c := 0; c < 4; c++ {
			st := Invalid
			if l := h.L1(c).Peek(a); l != nil {
				st = l.state
			} else if l := h.L2(c).Peek(a); l != nil {
				st = l.state
			}
			if st != Invalid {
				holders++
			}
			if st == Modified || st == Exclusive {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("line %#x has %d exclusive owners", a, owners)
		}
		if owners == 1 && holders > 1 {
			t.Fatalf("line %#x exclusive but %d holders", a, holders)
		}
	}
}

func TestStateAndLevelStrings(t *testing.T) {
	for s, want := range map[MESI]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", MESI(9): "?"} {
		if s.String() != want {
			t.Errorf("MESI(%d) = %q, want %q", s, s.String(), want)
		}
	}
	for l, want := range map[Level]string{
		LevelL1: "L1", LevelL2: "L2", LevelL3: "L3",
		LevelRemote: "remote", LevelMemory: "memory", Level(9): "?",
	} {
		if l.String() != want {
			t.Errorf("Level(%d) = %q, want %q", l, l.String(), want)
		}
	}
}

func TestHierarchyStatsHelpers(t *testing.T) {
	h := newH()
	if h.Cores() != 4 {
		t.Fatalf("Cores = %d", h.Cores())
	}
	h.Access(0, 0x100, false, SrcApp) // L3 miss
	h.Access(1, 0x100, false, SrcApp) // L3 hit
	if mr := h.L3MissRate(); mr != 0.5 {
		t.Fatalf("L3MissRate = %g, want 0.5", mr)
	}
	h.NetworkProbes = 7
	h.Writebacks = 3
	h.ResetStats()
	if h.L3MissRate() != 0 || h.NetworkProbes != 0 || h.Writebacks != 0 {
		t.Fatal("ResetStats incomplete")
	}
	if h.L3AccessBySource[SrcApp] != 0 {
		t.Fatal("source attribution not reset")
	}
	// Contents survive the reset: still an L1 hit.
	if r := h.Access(0, 0x100, false, SrcApp); r.Level != LevelL1 {
		t.Fatalf("reset disturbed cache contents: %v", r.Level)
	}
}

func TestUnsupportedCoreCountPanics(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.Cores = 99
	defer func() {
		if recover() == nil {
			t.Fatal("99 cores accepted (sharer bitmap is 16-wide)")
		}
	}()
	NewHierarchy(cfg)
}

func TestWriteToL2ResidentSharedLine(t *testing.T) {
	// A line Shared in L1+L2 of two cores; one core's L1 evicts it (L2
	// keeps it); then that core writes: the L2-hit write path must upgrade
	// and invalidate the other core.
	h := newH()
	h.Access(0, 0x9000, false, SrcApp)
	h.Access(1, 0x9000, false, SrcApp)
	// Evict core 0's L1 copy by filling its set.
	l1sets := uint64(h.L1(0).Sets())
	for i := uint64(1); i <= 8; i++ {
		h.Access(0, 0x9000+i*l1sets*LineSize, false, SrcApp)
	}
	if h.L1(0).Peek(0x9000) != nil {
		t.Skip("L1 victim survived; LRU kept it")
	}
	if h.L2(0).Peek(0x9000) == nil {
		t.Skip("L2 copy also evicted")
	}
	res := h.Access(0, 0x9000, true, SrcApp)
	if res.Level != LevelL2 {
		t.Fatalf("write serviced at %v, want L2", res.Level)
	}
	if h.L1(1).Peek(0x9000) != nil || h.L2(1).Peek(0x9000) != nil {
		t.Fatal("L2-hit write upgrade did not invalidate the other sharer")
	}
	if l := h.L1(0).Peek(0x9000); l == nil || l.state != Modified {
		t.Fatal("writer not Modified after L2-hit write")
	}
}
