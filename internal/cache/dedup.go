package cache

import "repro/internal/hash"

// DedupCache models last-level-cache deduplication (Tian et al., ICS 2014),
// the paper's §7.1: identical cache *lines* share one data entry in the
// LLC, stretching its effective capacity. The paper notes this is
// orthogonal to PageForge — it deduplicates the cache, not main memory —
// and can be used alongside it.
//
// The model separates the tag store (more entries than a conventional
// cache of the same data size) from the data store (content-deduplicated,
// refcounted). A fill hashes the line's contents: a hit on an existing
// identical data block shares it; otherwise a data block is allocated,
// evicting (only) blocks whose last tag has gone.
type DedupCache struct {
	// tag store: line address -> data block id. Eviction is FIFO (a
	// deterministic stand-in for the pseudo-LRU real LLCs use).
	tags     map[uint64]*dedupTag
	fifo     []uint64
	tagOrder uint64
	maxTags  int

	// data store: content-deduplicated blocks.
	blocks    map[uint64]*dedupBlock // block id -> block
	byContent map[uint64]uint64      // content hash -> block id
	nextBlock uint64
	maxBlocks int

	Hits        uint64
	Misses      uint64
	DedupShared uint64 // fills that shared an existing data block
	TagEvicts   uint64
	DataEvicts  uint64
}

type dedupTag struct {
	block uint64
	lru   uint64
}

type dedupBlock struct {
	hash uint64
	refs int
	data []byte // retained to confirm matches (hash collisions must not merge)
}

// NewDedupCache builds a deduplicating LLC with the given tag and data
// store sizes (in lines). Tian et al.'s design provisions more tags than
// data blocks (e.g., 2x) so dedup can translate into extra capacity.
func NewDedupCache(maxTags, maxBlocks int) *DedupCache {
	if maxTags < 1 || maxBlocks < 1 || maxTags < maxBlocks {
		panic("cache: dedup cache needs maxTags >= maxBlocks >= 1")
	}
	return &DedupCache{
		tags:      make(map[uint64]*dedupTag),
		blocks:    make(map[uint64]*dedupBlock),
		byContent: make(map[uint64]uint64),
		maxTags:   maxTags,
		maxBlocks: maxBlocks,
	}
}

func lineHash(content []byte) uint64 {
	lo := hash.JHash2Bytes(content, 0x5bd1e995)
	hi := hash.JHash2Bytes(content, 0xc2b2ae35)
	return uint64(hi)<<32 | uint64(lo)
}

// Access performs a lookup-and-fill for the line at addr with the given
// contents, returning whether it hit. The caller provides contents on every
// access (the simulator's backing store always has them); they are only
// inspected on fills.
func (c *DedupCache) Access(addr uint64, content []byte) bool {
	addr &^= uint64(LineSize - 1)
	c.tagOrder++
	if t, ok := c.tags[addr]; ok {
		t.lru = c.tagOrder
		c.Hits++
		return true
	}
	c.Misses++
	c.fill(addr, content)
	return false
}

func (c *DedupCache) fill(addr uint64, content []byte) {
	// Tag eviction first.
	for len(c.tags) >= c.maxTags {
		c.evictOldestTag()
	}
	h := lineHash(content)
	if id, ok := c.byContent[h]; ok {
		b := c.blocks[id]
		if bytesEqual(b.data, content) {
			b.refs++
			c.tags[addr] = &dedupTag{block: id, lru: c.tagOrder}
			c.fifo = append(c.fifo, addr)
			c.DedupShared++
			return
		}
		// Hash collision with different contents: fall through and
		// allocate a private block outside the content index.
	}
	for len(c.blocks) >= c.maxBlocks {
		if !c.evictOldestTag() {
			break
		}
	}
	id := c.nextBlock
	c.nextBlock++
	cp := make([]byte, len(content))
	copy(cp, content)
	c.blocks[id] = &dedupBlock{hash: h, refs: 1, data: cp}
	if _, taken := c.byContent[h]; !taken {
		c.byContent[h] = id
	}
	c.tags[addr] = &dedupTag{block: id, lru: c.tagOrder}
	c.fifo = append(c.fifo, addr)
}

// evictOldestTag removes the oldest resident tag (FIFO), dropping its data
// block when the last reference goes. It reports whether anything was
// evicted.
func (c *DedupCache) evictOldestTag() bool {
	for len(c.fifo) > 0 {
		victim := c.fifo[0]
		c.fifo = c.fifo[1:]
		vt, ok := c.tags[victim]
		if !ok {
			continue // stale queue entry
		}
		delete(c.tags, victim)
		c.TagEvicts++
		b := c.blocks[vt.block]
		b.refs--
		if b.refs == 0 {
			if id, ok := c.byContent[b.hash]; ok && id == vt.block {
				delete(c.byContent, b.hash)
			}
			delete(c.blocks, vt.block)
			c.DataEvicts++
		}
		return true
	}
	return false
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ResidentTags reports how many line addresses are cached.
func (c *DedupCache) ResidentTags() int { return len(c.tags) }

// ResidentBlocks reports how many distinct data blocks back them.
func (c *DedupCache) ResidentBlocks() int { return len(c.blocks) }

// EffectiveCapacityFactor is the headline metric: cached lines per data
// block (1.0 means no dedup benefit).
func (c *DedupCache) EffectiveCapacityFactor() float64 {
	if len(c.blocks) == 0 {
		return 1
	}
	return float64(len(c.tags)) / float64(len(c.blocks))
}

// MissRate reports misses/(hits+misses).
func (c *DedupCache) MissRate() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}
