package ksm

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/vm"
)

// Options mirror the tunables the Linux KSM implementation grew after the
// paper's snapshot; they are optional extensions over Algorithm 1.
type Options struct {
	// UseZeroPages merges all-zero candidate pages with one dedicated zero
	// frame immediately, without tree searches (Linux's use_zero_pages).
	// The paper's Figure 7 shows ~5% of pages are zero at any instant, so
	// this removes them from the trees entirely.
	UseZeroPages bool
	// SmartScan skips candidates whose hash has been unchanged for several
	// consecutive passes, doubling the skip distance each time up to
	// SmartScanMaxSkip passes (Linux's smart_scan). Converged deployments
	// spend most scanning effort re-checking stable pages; this recovers
	// that effort at the cost of slower reaction to changes.
	SmartScan        bool
	SmartScanMaxSkip uint64
}

// DefaultSmartScanMaxSkip bounds the skip distance like the kernel does.
const DefaultSmartScanMaxSkip = 8

// SetOptions configures the optional behaviours (call before scanning).
func (a *Algorithm) SetOptions(o Options) {
	if o.SmartScan && o.SmartScanMaxSkip == 0 {
		o.SmartScanMaxSkip = DefaultSmartScanMaxSkip
	}
	a.opts = o
}

// Options reports the active options.
func (a *Algorithm) Options() Options { return a.opts }

// zeroFrame lazily allocates the dedicated zero frame (the analogue of the
// kernel's empty_zero_page) and takes a permanent hold on it.
func (a *Algorithm) zeroFrame() (mem.PFN, error) {
	if a.zeroPFN != nil {
		return *a.zeroPFN, nil
	}
	pfn, err := a.HV.Phys.Alloc()
	if err != nil {
		return 0, err
	}
	a.zeroPFN = &pfn
	return pfn, nil
}

// TryMergeZero checks whether the candidate is an all-zero page and, if so,
// merges it with the dedicated zero frame. It reports (merged, bytesScanned):
// the zero check reads the page up to its first non-zero byte.
func (a *Algorithm) TryMergeZero(id vm.PageID) (bool, int) {
	pfn, ok := a.HV.Resolve(id)
	if !ok {
		return false, 0
	}
	page := a.HV.Phys.Page(pfn)
	// Word-at-a-time zero scan; the reported byte count is identical to the
	// byte-wise loop (index of the first nonzero byte, plus one).
	if i := mem.FirstNonZero(page); i >= 0 {
		return false, i + 1
	}
	zf, err := a.zeroFrame()
	if err != nil {
		return false, len(page)
	}
	if pfn == zf {
		return false, len(page)
	}
	if _, err := a.HV.Merge(id, zf); err != nil {
		bump(&a.Stats.FailedMerges)
		return false, len(page)
	}
	bump(&a.Stats.ZeroMerges)
	return true, len(page)
}

// ZeroFramePFN returns the dedicated zero frame, allocating it on first
// use. The PageForge driver compares candidates against it in hardware.
func (a *Algorithm) ZeroFramePFN() (mem.PFN, error) { return a.zeroFrame() }

// ZeroPFN reports the dedicated zero frame if one has been allocated,
// without allocating it. Verification tooling uses it to account for the
// permanent reference the algorithm holds on that frame.
func (a *Algorithm) ZeroPFN() (mem.PFN, bool) {
	if a.zeroPFN == nil {
		return 0, false
	}
	return *a.zeroPFN, true
}

// MergeWithZeroFrame merges a candidate whose contents were verified (by
// hardware or software) to be zero into the dedicated zero frame.
func (a *Algorithm) MergeWithZeroFrame(id vm.PageID) bool {
	zf, err := a.zeroFrame()
	if err != nil {
		return false
	}
	if pfn, ok := a.HV.Resolve(id); !ok || pfn == zf {
		return false
	}
	if _, err := a.HV.Merge(id, zf); err != nil {
		bump(&a.Stats.FailedMerges)
		return false
	}
	bump(&a.Stats.ZeroMerges)
	return true
}

// SmartSkip reports whether smart scan wants to skip this candidate in the
// current pass, updating its bookkeeping.
func (a *Algorithm) SmartSkip(id vm.PageID) bool {
	if !a.opts.SmartScan {
		return false
	}
	it := a.item(id)
	if a.pass < it.skipUntilPass {
		bump(&a.Stats.SmartSkips)
		return true
	}
	return false
}

// noteHashOutcome feeds smart scan: an unchanged page extends its streak
// and earns a (bounded) exponential skip; a changed page resets it.
func (a *Algorithm) noteHashOutcome(id vm.PageID, changed bool) {
	if !a.opts.SmartScan {
		return
	}
	it := a.item(id)
	if changed {
		it.unchangedStreak = 0
		it.skipUntilPass = 0
		return
	}
	if it.unchangedStreak < 63 {
		it.unchangedStreak++
	}
	skip := uint64(1) << (it.unchangedStreak - 1)
	if skip > a.opts.SmartScanMaxSkip {
		skip = a.opts.SmartScanMaxSkip
	}
	it.skipUntilPass = a.pass + 1 + skip
}

// Sysfs renders the /sys/kernel/mm/ksm-style counters the kernel exposes,
// computed from live state.
func (a *Algorithm) Sysfs() map[string]uint64 {
	shared, sharing := a.SharingStats()
	zeroSharing := uint64(0)
	if a.zeroPFN != nil {
		zeroSharing = uint64(len(a.HV.Mappers(*a.zeroPFN)))
	}
	return map[string]uint64{
		"pages_shared":    uint64(shared),
		"pages_sharing":   uint64(sharing),
		"pages_unshared":  uint64(a.Unstable.Size()),
		"pages_scanned":   a.Stats.PagesScanned,
		"full_scans":      a.Stats.FullScans,
		"ksm_zero_pages":  zeroSharing,
		"pages_skipped":   a.Stats.SmartSkips,
		"stable_node_dup": 0, // no duplicate stable chains in this model
	}
}

// SysfsString renders the counters in sorted key order.
func (a *Algorithm) SysfsString() string {
	m := a.Sysfs()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += fmt.Sprintf("%-16s %d\n", k, m[k])
	}
	return out
}
