// Package ksm is a from-scratch implementation of RedHat's Kernel Same-page
// Merging (Algorithm 1 in the paper): a scanner that walks all mergeable
// guest pages in passes, searches a stable tree of merged (CoW) pages and
// an unstable tree of recently-unchanged pages — both indexed by page
// contents — and merges duplicates.
//
// The algorithmic state (trees, per-page tracking, merge bookkeeping) is
// factored into Algorithm so that two frontends can drive it:
//
//   - Scanner (this package): the software implementation, paying for every
//     byte compared and hashed with core cycles, exactly like the KSM
//     kthread the paper measures against.
//   - pageforge.Driver: the OS driver of the PageForge hardware, which
//     walks the same trees through the memory-controller Scan Table.
package ksm

import (
	"encoding/binary"
	"sync/atomic"

	"repro/internal/hash"
	"repro/internal/mem"
	"repro/internal/rbtree"
	"repro/internal/vm"
)

// Hasher computes the per-page hash key KSM uses to detect page changes
// between passes, and reports the number of page bytes a computation reads
// (the "memory footprint" of key generation the paper compares in §6.2).
type Hasher interface {
	PageKey(page []byte) uint32
	BytesRead() int
}

// JHasher is KSM's hash: jhash2 over the first 1KB of the page.
type JHasher struct{}

// PageKey implements Hasher.
func (JHasher) PageKey(page []byte) uint32 { return hash.PageHash(page) }

// BytesRead implements Hasher: jhash reads 1KB of consecutive page data.
func (JHasher) BytesRead() int { return hash.KSMDigestBytes }

// rmapItem is KSM's per-mergeable-page tracking state.
type rmapItem struct {
	id      vm.PageID
	oldHash uint32
	hasHash bool
	// unstableNode links the page to its node for the current pass only.
	unstableNode *rbtree.Node
	unstablePass uint64
	// Smart-scan state: consecutive unchanged passes and the pass to
	// resume scanning at.
	unchangedStreak uint64
	skipUntilPass   uint64
}

// stableItem is the payload of a stable-tree node: the tree holds one
// reference on the frame so node contents stay valid until pruned.
type stableItem struct {
	pfn mem.PFN
}

// Stats are the /sys/kernel/mm/ksm-style counters plus the instrumentation
// the paper's evaluation needs.
type Stats struct {
	FullScans      uint64 // completed passes over all mergeable pages
	PagesScanned   uint64 // candidate pages processed
	StableMerges   uint64 // merges into an existing stable page
	UnstableMerges uint64 // merges that promoted an unstable pair
	FailedMerges   uint64 // racing-write aborts
	HashMatches    uint64 // candidate hash equal to previous pass
	HashMismatches uint64 // candidate changed since previous pass (dropped)
	HashFirstSeen  uint64 // first scan of a page (no previous hash)
	StaleUnstable  uint64 // unstable matches invalidated before merge
	StablePruned   uint64 // stable nodes dropped after last sharer left
	ZeroMerges     uint64 // pages merged with the dedicated zero frame
	SmartSkips     uint64 // candidates skipped by smart scan
	FaultFallbacks uint64 // candidates completed in software after a hardware UE abort
}

// Algorithm is the engine-independent state of the KSM algorithm. The
// stable and unstable trees are sharded by a content-key prefix (ShardOf);
// the default single shard reproduces classic KSM exactly, while 2^k
// shards let a scan pass fan out across workers (Scanner.ScanPass) because
// every operation a candidate performs stays inside its own shard.
type Algorithm struct {
	HV       *vm.Hypervisor
	Stable   *rbtree.Sharded
	Unstable *rbtree.Sharded
	Hasher   Hasher

	items     map[vm.PageID]*rmapItem
	order     []vm.PageID // scan order over mergeable pages
	curs      int
	pass      uint64
	shardBits int
	maxCmp    []int // per-shard deepest-comparison tracker

	opts    Options
	zeroPFN *mem.PFN // dedicated zero frame (use_zero_pages)

	Stats Stats
}

// bump atomically increments a statistics counter. Scan workers of a
// sharded pass update the same Stats struct concurrently; sums of
// increments are order-independent, so totals stay bit-identical to a
// sequential pass.
func bump(ctr *uint64) { atomic.AddUint64(ctr, 1) }

// NewAlgorithm builds single-shard (classic KSM) algorithm state over a
// hypervisor. The scan order covers every currently-mergeable page of every
// VM; call RefreshOrder if madvise regions change later.
func NewAlgorithm(hv *vm.Hypervisor, h Hasher) *Algorithm {
	return NewAlgorithmSharded(hv, h, 0)
}

// NewAlgorithmSharded builds algorithm state with 2^shardBits content
// shards. shardBits 0 is exactly NewAlgorithm: one tree pair, identical
// shapes and counters.
func NewAlgorithmSharded(hv *vm.Hypervisor, h Hasher, shardBits int) *Algorithm {
	if shardBits < 0 || shardBits > 16 {
		panic("ksm: shardBits out of range")
	}
	n := 1 << shardBits
	a := &Algorithm{
		HV:        hv,
		Hasher:    h,
		items:     make(map[vm.PageID]*rmapItem),
		pass:      1,
		shardBits: shardBits,
		maxCmp:    make([]int, n),
	}
	mk := func(shard int) *rbtree.Tree {
		return rbtree.New(func(x, y mem.PFN) (int, int) {
			c, nb := hv.Phys.ComparePage(x, y)
			if nb > a.maxCmp[shard] {
				a.maxCmp[shard] = nb
			}
			return c, nb
		})
	}
	route := func(pfn mem.PFN) int { return a.ShardOf(pfn) }
	a.Stable = rbtree.NewSharded(n, route, mk)
	a.Unstable = rbtree.NewSharded(n, route, mk)
	a.RefreshOrder()
	return a
}

// ShardOf routes a frame to a shard by the top shardBits bits of its first
// 8 content bytes read big-endian — a memcmp-order-preserving prefix, so
// equal pages always share a shard and the shard order is the content
// order. All-zero pages (and the dedicated zero frame) route to shard 0.
func (a *Algorithm) ShardOf(pfn mem.PFN) int {
	if a.shardBits == 0 {
		return 0
	}
	key := binary.BigEndian.Uint64(a.HV.Phys.Page(pfn)[:8])
	return int(key >> (64 - uint(a.shardBits)))
}

// ShardBits reports log2 of the shard count.
func (a *Algorithm) ShardBits() int { return a.shardBits }

// TakeMaxCmp reports the deepest single comparison on the shard since the
// last call and resets the tracker. Software KSM keeps the candidate page
// cached, so the candidate's DRAM traffic per candidate is its deepest
// read, not the sum over every tree level.
func (a *Algorithm) TakeMaxCmp(shard int) int {
	m := a.maxCmp[shard]
	a.maxCmp[shard] = 0
	return m
}

// RefreshOrder rebuilds the list of mergeable pages to scan.
func (a *Algorithm) RefreshOrder() {
	a.order = a.order[:0]
	for i := 0; i < a.HV.NumVMs(); i++ {
		v := a.HV.VM(i)
		for g := vm.GFN(0); int(g) < v.Pages(); g++ {
			if v.Mergeable(g) {
				a.order = append(a.order, vm.PageID{VM: i, GFN: g})
			}
		}
	}
	if a.curs >= len(a.order) {
		a.curs = 0
	}
}

// MergeablePages reports how many pages are in the scan order.
func (a *Algorithm) MergeablePages() int { return len(a.order) }

// OrderSnapshot exposes the scan order for pass fan-out. Callers must treat
// it as read-only.
func (a *Algorithm) OrderSnapshot() []vm.PageID { return a.order }

// PrepareItems materializes tracking state for every page in the scan
// order. A parallel pass calls it before spawning workers so the items map
// is never written concurrently — workers then only read it.
func (a *Algorithm) PrepareItems() {
	for _, id := range a.order {
		a.item(id)
	}
}

// Pass reports the current pass number (starting at 1).
func (a *Algorithm) Pass() uint64 { return a.pass }

// NextCandidate advances the cursor and returns the next mergeable page to
// consider. It reports passEnded=true when the cursor wraps, at which point
// the caller must call EndPass before continuing (Algorithm 1 resets the
// unstable tree between passes).
func (a *Algorithm) NextCandidate() (id vm.PageID, passEnded bool, ok bool) {
	if len(a.order) == 0 {
		return vm.PageID{}, false, false
	}
	id = a.order[a.curs]
	a.curs++
	if a.curs == len(a.order) {
		a.curs = 0
		return id, true, true
	}
	return id, false, true
}

// EndPass destroys the unstable tree ("throw away and regenerate") and
// prunes stable nodes whose frames no longer have any guest mappers.
func (a *Algorithm) EndPass() {
	// Drop the per-node frame references held by the unstable tree.
	a.Unstable.InOrder(func(n *rbtree.Node) bool {
		a.HV.Phys.DecRef(n.PFN)
		return true
	})
	a.Unstable.Reset()

	// Prune stable nodes nobody maps anymore (their only reference is the
	// tree's own hold).
	var stale []*rbtree.Node
	a.Stable.InOrder(func(n *rbtree.Node) bool {
		if len(a.HV.Mappers(n.PFN)) == 0 {
			stale = append(stale, n)
		}
		return true
	})
	for _, n := range stale {
		a.Stable.Delete(n)
		a.HV.Phys.DecRef(n.PFN)
		bump(&a.Stats.StablePruned)
	}
	a.pass++
	bump(&a.Stats.FullScans)
}

// item returns (creating if needed) the tracking state for a page.
func (a *Algorithm) item(id vm.PageID) *rmapItem {
	it := a.items[id]
	if it == nil {
		it = &rmapItem{id: id}
		a.items[id] = it
	}
	return it
}

// SkipCandidate reports whether the candidate should be skipped outright:
// not present (never touched) or already a merged KSM page.
func (a *Algorithm) SkipCandidate(id vm.PageID) bool {
	if a.HV.VM(id.VM).InHuge(id.GFN) {
		return true // huge mappings cannot be remapped at 4KB granularity
	}
	pfn, ok := a.HV.Resolve(id)
	if !ok {
		return true
	}
	f := a.HV.Phys.Get(pfn)
	return f.CoW() && f.Refs() > 1 // already sharing a stable page
}

// HashOutcome classifies one hash change-detection check. The lifecycle
// ledger cares about the three-way split: only HashChanged is wasted work
// attributable to content churn (a first sighting is warm-up, not waste).
type HashOutcome uint8

const (
	HashFirst   HashOutcome = iota // first sighting: no previous key
	HashSame                       // key matches the previous pass
	HashChanged                    // key differs: the page churned
)

// Changed reports whether the outcome precludes an unstable-tree search.
func (o HashOutcome) Changed() bool { return o != HashSame }

// recordKey updates a page's hash-tracking state with a freshly computed
// key and classifies the check — the shared body of HashCheckOutcome and
// RecordHashOutcome.
func (a *Algorithm) recordKey(it *rmapItem, id vm.PageID, key uint32) HashOutcome {
	var out HashOutcome
	switch {
	case !it.hasHash:
		bump(&a.Stats.HashFirstSeen)
		out = HashFirst
	case it.oldHash == key:
		bump(&a.Stats.HashMatches)
		out = HashSame
	default:
		bump(&a.Stats.HashMismatches)
		out = HashChanged
	}
	it.oldHash = key
	it.hasHash = true
	a.noteHashOutcome(id, out.Changed())
	return out
}

// HashCheckOutcome computes the candidate's hash key and compares it with
// the key from the previous pass, recording the new key either way.
func (a *Algorithm) HashCheckOutcome(id vm.PageID) (HashOutcome, int) {
	pfn, ok := a.HV.Resolve(id)
	if !ok {
		return HashChanged, 0
	}
	key := a.Hasher.PageKey(a.HV.Phys.Page(pfn))
	return a.recordKey(a.item(id), id, key), a.Hasher.BytesRead()
}

// HashCheck computes the candidate's hash key and compares it with the key
// from the previous pass. It returns changed=false only when the page has a
// previous key and it matches — the precondition for searching the unstable
// tree. The new key is recorded either way.
func (a *Algorithm) HashCheck(id vm.PageID) (changed bool, bytesRead int) {
	o, n := a.HashCheckOutcome(id)
	return o.Changed(), n
}

// RecordHashOutcome stores an externally computed hash key (the PageForge
// driver receives the key from hardware instead of computing it) and
// classifies the change check.
func (a *Algorithm) RecordHashOutcome(id vm.PageID, key uint32) HashOutcome {
	return a.recordKey(a.item(id), id, key)
}

// RecordHash stores an externally computed hash key and reports whether the
// page changed since the last pass.
func (a *Algorithm) RecordHash(id vm.PageID, key uint32) (changed bool) {
	return a.RecordHashOutcome(id, key).Changed()
}

// MergeIntoStable merges the candidate with the stable node's frame.
func (a *Algorithm) MergeIntoStable(id vm.PageID, node *rbtree.Node) (bytes int, ok bool) {
	n, err := a.HV.Merge(id, node.PFN)
	if err != nil {
		bump(&a.Stats.FailedMerges)
		return n, false
	}
	bump(&a.Stats.StableMerges)
	return n, true
}

// ValidUnstableMatch checks that an unstable node still describes a live
// page mapping (the unstable tree is allowed to go stale).
func (a *Algorithm) ValidUnstableMatch(node *rbtree.Node) bool {
	it, _ := node.Item.(*rmapItem)
	if it == nil {
		return false
	}
	pfn, ok := a.HV.Resolve(it.id)
	return ok && pfn == node.PFN
}

// MergeWithUnstable merges the candidate with an unstable-tree match,
// promoting the merged frame into the stable tree (Algorithm 1 lines
// 14-17). On success the unstable node is removed.
func (a *Algorithm) MergeWithUnstable(id vm.PageID, node *rbtree.Node) (bytes int, ok bool) {
	if !a.ValidUnstableMatch(node) {
		bump(&a.Stats.StaleUnstable)
		a.removeUnstable(node)
		return 0, false
	}
	n, err := a.HV.Merge(id, node.PFN)
	if err != nil {
		bump(&a.Stats.FailedMerges)
		return n, false
	}
	pfn := node.PFN
	a.removeUnstable(node)
	// The stable tree takes its own reference so the node stays valid even
	// if every sharer later CoW-breaks away.
	a.HV.Phys.IncRef(pfn)
	a.Stable.Insert(pfn, stableItem{pfn: pfn})
	bump(&a.Stats.UnstableMerges)
	return n, true
}

func (a *Algorithm) removeUnstable(node *rbtree.Node) {
	if it, _ := node.Item.(*rmapItem); it != nil && it.unstableNode == node {
		it.unstableNode = nil
	}
	a.Unstable.Delete(node)
	a.HV.Phys.DecRef(node.PFN)
}

// UnstableInsert places the candidate into the unstable tree (no match was
// found during the caller's search). The tree holds a frame reference until
// the pass ends.
func (a *Algorithm) UnstableInsert(id vm.PageID) *rbtree.Node {
	pfn, ok := a.HV.Resolve(id)
	if !ok {
		return nil
	}
	it := a.item(id)
	a.HV.Phys.IncRef(pfn)
	n := a.Unstable.Insert(pfn, it)
	it.unstableNode = n
	it.unstablePass = a.pass
	return n
}

// UnstableSearchOrInsert is the software path: one tree descent that either
// finds a content-equal node or inserts the candidate.
func (a *Algorithm) UnstableSearchOrInsert(id vm.PageID) (match *rbtree.Node, inserted bool) {
	pfn, ok := a.HV.Resolve(id)
	if !ok {
		return nil, false
	}
	it := a.item(id)
	a.HV.Phys.IncRef(pfn)
	n, ins := a.Unstable.InsertOrGet(pfn, it)
	if !ins {
		// Not inserted: drop the speculative reference.
		a.HV.Phys.DecRef(pfn)
		return n, false
	}
	it.unstableNode = n
	it.unstablePass = a.pass
	return nil, true
}

// SharingStats reports pages_shared (stable frames with >1 mapper is the
// paper's merged state; we report frames referenced by the stable tree that
// have at least one mapper) and pages_sharing (guest pages mapping them).
func (a *Algorithm) SharingStats() (shared, sharing int) {
	a.Stable.InOrder(func(n *rbtree.Node) bool {
		m := len(a.HV.Mappers(n.PFN))
		if m > 0 {
			shared++
			sharing += m
		}
		return true
	})
	return shared, sharing
}
