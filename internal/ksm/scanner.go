package ksm

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/vm"
)

// Costs models what the software KSM kthread pays, in core cycles, for each
// primitive. The defaults are calibrated so that the per-candidate cycle
// breakdown matches Table 4 of the paper (on average ~52% of KSM cycles in
// page comparison, ~15% in hash generation, the rest in bookkeeping).
type Costs struct {
	// CyclesPerCompareByte is the cost of the byte-wise content comparison
	// including average memory stalls (comparison streams cold data).
	CyclesPerCompareByte float64
	// CyclesPerHashByte is the cost of jhash2 per input byte.
	CyclesPerHashByte float64
	// CandidateOverhead is the fixed per-candidate cost: rmap lookups,
	// locking, page-table walks, cursor advance.
	CandidateOverhead uint64
	// MergeOverhead is the fixed cost of a successful merge: remapping,
	// write protection, TLB shootdown.
	MergeOverhead uint64
}

// DefaultCosts reflects a 2 GHz OoO core running the KSM kthread over cold
// page data: both comparison and hashing are memory-stall dominated
// (~0.6 bytes/cycle/page for the dual-stream compare, ~0.5 B/cycle for
// jhash), and each candidate pays rmap lookups, locking, and page-table
// walks. With the evaluation's content profile this lands each candidate
// at roughly 52% compare / 15% hash / 33% bookkeeping and the kthread at
// ~6-7% of total machine cycles — Table 4's measured breakdown.
func DefaultCosts() Costs {
	return Costs{
		CyclesPerCompareByte: 2.0,
		CyclesPerHashByte:    4.4,
		CandidateOverhead:    6900,
		MergeOverhead:        4000,
	}
}

// CycleBreakdown attributes the scanner's core cycles to the categories
// Table 4 reports.
type CycleBreakdown struct {
	Compare uint64 // page comparisons (stable + unstable search + final)
	Hash    uint64 // hash key generation
	Other   uint64 // bookkeeping, merging overhead
}

// Total sums all categories.
func (c CycleBreakdown) Total() uint64 { return c.Compare + c.Hash + c.Other }

// Scanner is the software KSM frontend: it runs the algorithm on a core,
// charging cycles and cache footprint for every byte it touches.
type Scanner struct {
	Alg   *Algorithm
	Costs Costs

	// Trace receives merge events when enabled. The scanner has no wall
	// clock of its own — TraceNow supplies the platform's current cycle for
	// event timestamps (events are emitted untimed when it is nil).
	Trace    obs.Scope
	TraceNow func() uint64

	// Ledger receives merge-lifecycle events when enabled. Workers of a
	// parallel pass never touch it directly: events ride the per-shard
	// accumulators and flush in canonical shard order at the join, so the
	// sequence is deterministic at any worker count (shard-major under
	// ScanPass, scan-order under sequential ScanOne).
	Ledger *obs.Ledger

	// Cycles is the cumulative core-cycle consumption, broken down.
	Cycles CycleBreakdown
	// BytesTouched is the page data streamed through the core's caches
	// (compare + hash traffic) — the source of the L3 pollution the paper
	// measures in Table 4.
	BytesTouched uint64
	// DRAMBytes is the memory traffic the scan actually draws from DRAM:
	// tree pages are cold, but the candidate page stays cached between
	// comparisons, so it contributes only its deepest read, and the hash
	// reads only the part of its 1KB prefix the comparisons did not
	// already fetch.
	DRAMBytes uint64
}

// NewScanner wraps algorithm state with software cost accounting.
func NewScanner(alg *Algorithm, costs Costs) *Scanner {
	return &Scanner{Alg: alg, Costs: costs}
}

// scanAcct accumulates one candidate's (or one whole shard's) cost
// accounting. Sequential scanning applies it to the Scanner's totals after
// every candidate; a parallel pass gives each shard its own accumulator and
// merges them in shard order at the join, so totals are sums of the same
// per-candidate uint64 charges in both modes — bit-identical.
type scanAcct struct {
	cycles       CycleBreakdown
	bytesTouched uint64
	dramBytes    uint64
	events       []obs.LedgerEvent
}

// event buffers one lifecycle event for the flush at apply time.
func (ac *scanAcct) event(e obs.LedgerEvent) { ac.events = append(ac.events, e) }

// apply folds an accumulator into the scanner's cumulative counters and
// flushes its buffered lifecycle events.
func (s *Scanner) apply(ac *scanAcct) {
	s.Cycles.Compare += ac.cycles.Compare
	s.Cycles.Hash += ac.cycles.Hash
	s.Cycles.Other += ac.cycles.Other
	s.BytesTouched += ac.bytesTouched
	s.DRAMBytes += ac.dramBytes
	if len(ac.events) > 0 {
		s.Ledger.AppendAll(ac.events)
		ac.events = ac.events[:0]
	}
}

// BatchResult summarizes one work interval (pages_to_scan candidates) or
// one full ScanPass.
type BatchResult struct {
	Scanned   int
	Merged    int
	Cycles    CycleBreakdown
	Bytes     uint64
	PassEnded bool
}

// ScanBatch processes up to n candidate pages — one KSM work interval. The
// caller (the platform scheduler) charges the returned cycles to whichever
// core the kthread is running on.
func (s *Scanner) ScanBatch(n int) BatchResult {
	before := s.Cycles
	bytesBefore := s.BytesTouched
	var res BatchResult
	for i := 0; i < n; i++ {
		merged, passEnded, ok := s.ScanOne()
		if !ok {
			break
		}
		res.Scanned++
		if merged {
			res.Merged++
		}
		if passEnded {
			res.PassEnded = true
		}
	}
	res.Cycles = CycleBreakdown{
		Compare: s.Cycles.Compare - before.Compare,
		Hash:    s.Cycles.Hash - before.Hash,
		Other:   s.Cycles.Other - before.Other,
	}
	res.Bytes = s.BytesTouched - bytesBefore
	return res
}

// ScanOne processes a single candidate page through Algorithm 1.
func (s *Scanner) ScanOne() (merged, passEnded, ok bool) {
	a := s.Alg
	id, passEnded, ok := a.NextCandidate()
	if !ok {
		return false, false, false
	}
	if passEnded {
		defer a.EndPass()
	}
	var ac scanAcct
	merged = s.scanCandidate(id, &ac)
	s.apply(&ac)
	return merged, passEnded, true
}

// scanCandidate runs Algorithm 1 for one candidate, charging all costs to
// ac. It is the shared body of sequential ScanOne and parallel ScanPass
// workers; everything it touches beyond ac is either confined to the
// candidate's content shard or updated commutatively (atomic counters).
func (s *Scanner) scanCandidate(id vm.PageID, ac *scanAcct) (merged bool) {
	a := s.Alg
	bump(&a.Stats.PagesScanned)
	ac.cycles.Other += s.Costs.CandidateOverhead
	if s.Trace.Enabled() {
		defer func() {
			if merged {
				var ts uint64
				if s.TraceNow != nil {
					ts = s.TraceNow()
				}
				s.Trace.Instant(obs.TIDDriver, "merge", "merge", ts, "gfn", uint64(id.GFN))
			}
		}()
	}

	if a.SkipCandidate(id) {
		return false
	}
	if a.SmartSkip(id) {
		return false
	}
	ldg := s.Ledger.Enabled()
	var candPFN uint64
	if ldg {
		if p, rok := a.HV.Resolve(id); rok {
			candPFN = uint64(p)
			ac.event(obs.LedgerEvent{Kind: obs.LKScanned, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN})
		} else {
			ldg = false
		}
	}
	if a.Options().UseZeroPages {
		zeroMerged, scanned := a.TryMergeZero(id)
		s.chargeCompare(ac, uint64(scanned))
		if zeroMerged {
			ac.cycles.Other += s.Costs.MergeOverhead
			if ldg {
				zf, _ := a.ZeroPFN()
				ac.event(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN, Arg: uint64(zf)})
			}
			return true
		}
	}
	pfn, okr := a.HV.Resolve(id)
	if !okr {
		return false
	}

	// All tree work for this candidate happens on its content shard; the
	// shard's deepest-comparison tracker brackets it for DRAM accounting.
	shard := a.ShardOf(pfn)
	a.TakeMaxCmp(shard)
	hashed := 0
	defer func() {
		// Candidate-page DRAM contribution: deepest read, plus the part of
		// the hash prefix not covered by it.
		deepest := a.TakeMaxCmp(shard)
		ac.dramBytes += uint64(deepest)
		if hashed > deepest {
			ac.dramBytes += uint64(hashed - deepest)
		}
	}()

	// Search the stable tree (Algorithm 1 line 7).
	stable := a.Stable.Shard(shard)
	cmpBytes := stable.BytesCompared
	node := stable.Lookup(pfn)
	s.chargeCompare(ac, stable.BytesCompared-cmpBytes)

	if node != nil && node.PFN != pfn {
		stablePFN := uint64(node.PFN)
		n, mok := a.MergeIntoStable(id, node)
		s.chargeVerify(ac, uint64(n)) // the final write-protected compare
		if mok {
			ac.cycles.Other += s.Costs.MergeOverhead
			if ldg {
				ac.event(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN, Arg: stablePFN})
			}
			return true
		}
		if ldg {
			ac.event(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN, Arg: stablePFN})
		}
		return false
	}

	// Not in the stable tree: hash-based change detection (lines 11-12).
	outcome, bytesRead := a.HashCheckOutcome(id)
	hashed = bytesRead
	s.chargeHash(ac, uint64(bytesRead))
	if outcome.Changed() {
		// Modified since last pass (or first sighting): drop it (line 22).
		if ldg && outcome == HashChanged {
			ac.event(obs.LedgerEvent{Kind: obs.LKChurned, Cause: obs.CauseContentChurn, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN})
		}
		return false
	}

	// Search the unstable tree, inserting on miss (lines 13-20).
	unstable := a.Unstable.Shard(shard)
	cmpBytes = unstable.BytesCompared
	match, inserted := a.UnstableSearchOrInsert(id)
	s.chargeCompare(ac, unstable.BytesCompared-cmpBytes)
	if match != nil {
		matchPFN := uint64(match.PFN)
		n, mok := a.MergeWithUnstable(id, match)
		s.chargeVerify(ac, uint64(n))
		if mok {
			ac.cycles.Other += s.Costs.MergeOverhead
			if ldg {
				ac.event(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN, Arg: matchPFN})
				ac.event(obs.LedgerEvent{Kind: obs.LKStable, VM: -1, PFN: matchPFN})
			}
			return true
		}
		if ldg {
			ac.event(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN, Arg: matchPFN})
		}
		return false
	}
	if ldg && inserted {
		ac.event(obs.LedgerEvent{Kind: obs.LKUnstable, VM: id.VM, GFN: uint64(id.GFN), PFN: candPFN})
	}
	return false
}

// ScanPass processes one full pass over every mergeable page, fanning
// candidates out across the algorithm's content shards with a bounded
// worker pool, then ends the pass. The result is bit-identical to scanning
// the same pass sequentially at any worker count: every candidate's tree
// searches, merges, and frame updates are confined to its own content
// shard (merges only ever relate equal-content pages, and equal content
// routes to the same shard), per-shard candidate order follows scan order,
// and the only cross-shard state — statistics sums and the frame freelist —
// is commutative or flushed in canonical order at the join.
func (s *Scanner) ScanPass(workers int) BatchResult {
	a := s.Alg
	order := a.OrderSnapshot()
	if len(order) == 0 {
		return BatchResult{}
	}
	shards := a.Stable.NumShards()
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}

	// Partition candidates by shard in scan order. Routing reads page
	// content, which nothing mutates during a pass (merges remap pages,
	// guest churn happens between passes), so partition-time routes hold
	// for the whole pass. Unresolved candidates go to shard 0; they are
	// skipped with only fixed overhead, which any shard accounts alike.
	queues := make([][]vm.PageID, shards)
	for _, id := range order {
		shard := 0
		if pfn, ok := a.HV.Resolve(id); ok {
			shard = a.ShardOf(pfn)
		}
		queues[shard] = append(queues[shard], id)
	}

	// Workers must never mutate lazily-built shared state: materialize the
	// rmap-item map and the dedicated zero frame before fan-out. (If the
	// zero frame cannot be allocated, the freelist is empty and stays empty
	// while frees are deferred, so worker-side retries fail read-only.)
	a.PrepareItems()
	if a.Options().UseZeroPages {
		a.zeroFrame()
	}

	accts := make([]scanAcct, shards)
	mergedBy := make([]int, shards)
	phys := a.HV.Phys
	phys.BeginDeferredFrees()
	work := make(chan int, shards)
	for i := 0; i < shards; i++ {
		work <- i
	}
	close(work)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for shard := range work {
				for _, id := range queues[shard] {
					if s.scanCandidate(id, &accts[shard]) {
						mergedBy[shard]++
					}
				}
			}
		}()
	}
	wg.Wait()
	phys.EndDeferredFrees()

	res := BatchResult{Scanned: len(order), PassEnded: true}
	for i := range accts {
		s.apply(&accts[i])
		res.Cycles.Compare += accts[i].cycles.Compare
		res.Cycles.Hash += accts[i].cycles.Hash
		res.Cycles.Other += accts[i].cycles.Other
		res.Bytes += accts[i].bytesTouched
		res.Merged += mergedBy[i]
	}
	a.curs = 0
	a.EndPass()
	return res
}

func (s *Scanner) chargeCompare(ac *scanAcct, bytes uint64) {
	// Both pages are streamed, so the cache footprint is twice the bytes
	// examined on one page. Only the tree page's side is charged to DRAM
	// here; the candidate's side is accounted once per candidate.
	ac.cycles.Compare += uint64(float64(bytes) * s.Costs.CyclesPerCompareByte)
	ac.bytesTouched += 2 * bytes
	ac.dramBytes += bytes
}

// chargeVerify covers the final write-protected re-comparison before a
// merge: it costs core cycles, but both pages were just compared and sit
// in the cache hierarchy, so it draws (almost) nothing from DRAM.
func (s *Scanner) chargeVerify(ac *scanAcct, bytes uint64) {
	ac.cycles.Compare += uint64(float64(bytes) * s.Costs.CyclesPerCompareByte * 0.25)
	ac.bytesTouched += 2 * bytes
}

func (s *Scanner) chargeHash(ac *scanAcct, bytes uint64) {
	ac.cycles.Hash += uint64(float64(bytes) * s.Costs.CyclesPerHashByte)
	ac.bytesTouched += bytes
}

// RunToSteadyState drives full passes until a pass completes with no new
// merges, or maxPasses is reached. It returns the number of passes run.
// Memory-savings experiments (Figure 7) measure after this converges.
func (s *Scanner) RunToSteadyState(maxPasses int) int {
	return RunConvergence(s.Alg, maxPasses, func() bool {
		_, _, ok := s.ScanOne()
		return ok
	})
}
