package ksm

import "repro/internal/obs"

// Costs models what the software KSM kthread pays, in core cycles, for each
// primitive. The defaults are calibrated so that the per-candidate cycle
// breakdown matches Table 4 of the paper (on average ~52% of KSM cycles in
// page comparison, ~15% in hash generation, the rest in bookkeeping).
type Costs struct {
	// CyclesPerCompareByte is the cost of the byte-wise content comparison
	// including average memory stalls (comparison streams cold data).
	CyclesPerCompareByte float64
	// CyclesPerHashByte is the cost of jhash2 per input byte.
	CyclesPerHashByte float64
	// CandidateOverhead is the fixed per-candidate cost: rmap lookups,
	// locking, page-table walks, cursor advance.
	CandidateOverhead uint64
	// MergeOverhead is the fixed cost of a successful merge: remapping,
	// write protection, TLB shootdown.
	MergeOverhead uint64
}

// DefaultCosts reflects a 2 GHz OoO core running the KSM kthread over cold
// page data: both comparison and hashing are memory-stall dominated
// (~0.6 bytes/cycle/page for the dual-stream compare, ~0.5 B/cycle for
// jhash), and each candidate pays rmap lookups, locking, and page-table
// walks. With the evaluation's content profile this lands each candidate
// at roughly 52% compare / 15% hash / 33% bookkeeping and the kthread at
// ~6-7% of total machine cycles — Table 4's measured breakdown.
func DefaultCosts() Costs {
	return Costs{
		CyclesPerCompareByte: 2.0,
		CyclesPerHashByte:    4.4,
		CandidateOverhead:    6900,
		MergeOverhead:        4000,
	}
}

// CycleBreakdown attributes the scanner's core cycles to the categories
// Table 4 reports.
type CycleBreakdown struct {
	Compare uint64 // page comparisons (stable + unstable search + final)
	Hash    uint64 // hash key generation
	Other   uint64 // bookkeeping, merging overhead
}

// Total sums all categories.
func (c CycleBreakdown) Total() uint64 { return c.Compare + c.Hash + c.Other }

// Scanner is the software KSM frontend: it runs the algorithm on a core,
// charging cycles and cache footprint for every byte it touches.
type Scanner struct {
	Alg   *Algorithm
	Costs Costs

	// Trace receives merge events when enabled. The scanner has no wall
	// clock of its own — TraceNow supplies the platform's current cycle for
	// event timestamps (events are emitted untimed when it is nil).
	Trace    obs.Scope
	TraceNow func() uint64

	// Cycles is the cumulative core-cycle consumption, broken down.
	Cycles CycleBreakdown
	// BytesTouched is the page data streamed through the core's caches
	// (compare + hash traffic) — the source of the L3 pollution the paper
	// measures in Table 4.
	BytesTouched uint64
	// DRAMBytes is the memory traffic the scan actually draws from DRAM:
	// tree pages are cold, but the candidate page stays cached between
	// comparisons, so it contributes only its deepest read, and the hash
	// reads only the part of its 1KB prefix the comparisons did not
	// already fetch.
	DRAMBytes uint64
}

// NewScanner wraps algorithm state with software cost accounting.
func NewScanner(alg *Algorithm, costs Costs) *Scanner {
	return &Scanner{Alg: alg, Costs: costs}
}

// BatchResult summarizes one work interval (pages_to_scan candidates).
type BatchResult struct {
	Scanned   int
	Merged    int
	Cycles    CycleBreakdown
	Bytes     uint64
	PassEnded bool
}

// ScanBatch processes up to n candidate pages — one KSM work interval. The
// caller (the platform scheduler) charges the returned cycles to whichever
// core the kthread is running on.
func (s *Scanner) ScanBatch(n int) BatchResult {
	before := s.Cycles
	bytesBefore := s.BytesTouched
	var res BatchResult
	for i := 0; i < n; i++ {
		merged, passEnded, ok := s.ScanOne()
		if !ok {
			break
		}
		res.Scanned++
		if merged {
			res.Merged++
		}
		if passEnded {
			res.PassEnded = true
		}
	}
	res.Cycles = CycleBreakdown{
		Compare: s.Cycles.Compare - before.Compare,
		Hash:    s.Cycles.Hash - before.Hash,
		Other:   s.Cycles.Other - before.Other,
	}
	res.Bytes = s.BytesTouched - bytesBefore
	return res
}

// ScanOne processes a single candidate page through Algorithm 1.
func (s *Scanner) ScanOne() (merged, passEnded, ok bool) {
	a := s.Alg
	id, passEnded, ok := a.NextCandidate()
	if !ok {
		return false, false, false
	}
	if passEnded {
		defer a.EndPass()
	}
	a.TakeMaxCmp()
	hashed := 0
	defer func() {
		// Candidate-page DRAM contribution: deepest read, plus the part of
		// the hash prefix not covered by it.
		deepest := a.TakeMaxCmp()
		s.DRAMBytes += uint64(deepest)
		if hashed > deepest {
			s.DRAMBytes += uint64(hashed - deepest)
		}
	}()
	a.Stats.PagesScanned++
	s.Cycles.Other += s.Costs.CandidateOverhead
	if s.Trace.Enabled() {
		defer func() {
			if merged {
				var ts uint64
				if s.TraceNow != nil {
					ts = s.TraceNow()
				}
				s.Trace.Instant(obs.TIDDriver, "merge", "merge", ts, "gfn", uint64(id.GFN))
			}
		}()
	}

	if a.SkipCandidate(id) {
		return false, passEnded, true
	}
	if a.SmartSkip(id) {
		return false, passEnded, true
	}
	if a.Options().UseZeroPages {
		zeroMerged, scanned := a.TryMergeZero(id)
		s.chargeCompare(uint64(scanned))
		if zeroMerged {
			s.Cycles.Other += s.Costs.MergeOverhead
			return true, passEnded, true
		}
	}
	pfn, okr := a.HV.Resolve(id)
	if !okr {
		return false, passEnded, true
	}

	// Search the stable tree (Algorithm 1 line 7).
	cmpBytes := a.Stable.BytesCompared
	node := a.Stable.Lookup(pfn)
	s.chargeCompare(a.Stable.BytesCompared - cmpBytes)

	if node != nil && node.PFN != pfn {
		n, mok := a.MergeIntoStable(id, node)
		s.chargeVerify(uint64(n)) // the final write-protected compare
		if mok {
			s.Cycles.Other += s.Costs.MergeOverhead
			return true, passEnded, true
		}
		return false, passEnded, true
	}

	// Not in the stable tree: hash-based change detection (lines 11-12).
	changed, bytesRead := a.HashCheck(id)
	hashed = bytesRead
	s.chargeHash(uint64(bytesRead))
	if changed {
		// Modified since last pass (or first sighting): drop it (line 22).
		return false, passEnded, true
	}

	// Search the unstable tree, inserting on miss (lines 13-20).
	cmpBytes = a.Unstable.BytesCompared
	match, _ := a.UnstableSearchOrInsert(id)
	s.chargeCompare(a.Unstable.BytesCompared - cmpBytes)
	if match != nil {
		n, mok := a.MergeWithUnstable(id, match)
		s.chargeVerify(uint64(n))
		if mok {
			s.Cycles.Other += s.Costs.MergeOverhead
			return true, passEnded, true
		}
	}
	return false, passEnded, true
}

func (s *Scanner) chargeCompare(bytes uint64) {
	// Both pages are streamed, so the cache footprint is twice the bytes
	// examined on one page. Only the tree page's side is charged to DRAM
	// here; the candidate's side is accounted once per candidate.
	s.Cycles.Compare += uint64(float64(bytes) * s.Costs.CyclesPerCompareByte)
	s.BytesTouched += 2 * bytes
	s.DRAMBytes += bytes
}

// chargeVerify covers the final write-protected re-comparison before a
// merge: it costs core cycles, but both pages were just compared and sit
// in the cache hierarchy, so it draws (almost) nothing from DRAM.
func (s *Scanner) chargeVerify(bytes uint64) {
	s.Cycles.Compare += uint64(float64(bytes) * s.Costs.CyclesPerCompareByte * 0.25)
	s.BytesTouched += 2 * bytes
}

func (s *Scanner) chargeHash(bytes uint64) {
	s.Cycles.Hash += uint64(float64(bytes) * s.Costs.CyclesPerHashByte)
	s.BytesTouched += bytes
}

// RunToSteadyState drives full passes until a pass completes with no new
// merges, or maxPasses is reached. It returns the number of passes run.
// Memory-savings experiments (Figure 7) measure after this converges.
func (s *Scanner) RunToSteadyState(maxPasses int) int {
	return RunConvergence(s.Alg, maxPasses, func() bool {
		_, _, ok := s.ScanOne()
		return ok
	})
}
