package ksm

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/vm"
)

func TestUseZeroPagesMergesWithoutTrees(t *testing.T) {
	h := vm.NewHypervisor(64 * mem.PageSize)
	v := h.NewVM(6 * mem.PageSize)
	v.Madvise(0, 6, true)
	for g := vm.GFN(0); g < 6; g++ {
		v.Touch(g) // zero pages
	}
	s := newScanner(h)
	s.Alg.SetOptions(Options{UseZeroPages: true})
	s.ScanBatch(6) // single pass suffices: no hash gating for zero pages
	if s.Alg.Stats.ZeroMerges != 6 {
		t.Fatalf("ZeroMerges = %d, want 6", s.Alg.Stats.ZeroMerges)
	}
	// All six pages share the dedicated zero frame; nothing entered trees.
	if s.Alg.Stable.Size() != 0 || s.Alg.Unstable.Size() != 0 {
		t.Fatal("zero pages leaked into the trees")
	}
	// 6 guest pages + the dedicated frame's own allocation = 1 frame total
	// (the zero frame absorbed everything).
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", h.Phys.AllocatedFrames())
	}
	if s.Alg.Sysfs()["ksm_zero_pages"] != 6 {
		t.Fatalf("sysfs ksm_zero_pages = %d", s.Alg.Sysfs()["ksm_zero_pages"])
	}
}

func TestUseZeroPagesCoWBreak(t *testing.T) {
	h := vm.NewHypervisor(64 * mem.PageSize)
	v := h.NewVM(2 * mem.PageSize)
	v.Madvise(0, 2, true)
	v.Touch(0)
	v.Touch(1)
	s := newScanner(h)
	s.Alg.SetOptions(Options{UseZeroPages: true})
	s.ScanBatch(2)
	if s.Alg.Stats.ZeroMerges != 2 {
		t.Fatal("setup failed")
	}
	// A write breaks away from the zero frame; the other page keeps it.
	if _, err := v.Write(0, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	v.Read(1, 0, buf)
	if buf[0] != 0 {
		t.Fatal("zero sharer corrupted by CoW break")
	}
	if s.Alg.Sysfs()["ksm_zero_pages"] != 1 {
		t.Fatalf("ksm_zero_pages = %d after break", s.Alg.Sysfs()["ksm_zero_pages"])
	}
}

func TestZeroPagesOffKeepsOldBehaviour(t *testing.T) {
	h := vm.NewHypervisor(64 * mem.PageSize)
	v := h.NewVM(4 * mem.PageSize)
	v.Madvise(0, 4, true)
	for g := vm.GFN(0); g < 4; g++ {
		v.Touch(g)
	}
	s := newScanner(h)
	s.ScanBatch(4)
	s.ScanBatch(4)
	if s.Alg.Stats.ZeroMerges != 0 {
		t.Fatal("zero merges without the option")
	}
	// They still merge — through the trees, as before.
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d", h.Phys.AllocatedFrames())
	}
}

func TestSmartScanSkipsStablePages(t *testing.T) {
	h, _ := world(t, 128, []byte{1, 2, 3, 4}, []byte{5, 6, 7, 8})
	s := newScanner(h)
	s.Alg.SetOptions(Options{SmartScan: true})
	// Several passes over 8 unique, unchanging pages.
	for p := 0; p < 8; p++ {
		s.ScanBatch(8)
	}
	if s.Alg.Stats.SmartSkips == 0 {
		t.Fatal("smart scan never skipped")
	}
	// Skipped candidates do not hash: hash checks must be far below the
	// 8 pages x 8 passes a naive scanner would do.
	checks := s.Alg.Stats.HashMatches + s.Alg.Stats.HashMismatches + s.Alg.Stats.HashFirstSeen
	if checks >= 8*8 {
		t.Fatalf("hash checks = %d, smart scan saved nothing", checks)
	}
}

func TestSmartScanReactsToChanges(t *testing.T) {
	h, vms := world(t, 128, []byte{1}, []byte{2})
	s := newScanner(h)
	s.Alg.SetOptions(Options{SmartScan: true, SmartScanMaxSkip: 2})
	for p := 0; p < 6; p++ {
		s.ScanBatch(2)
	}
	// Page 0 now changes to match page 1's content; with the skip bound of
	// 2 passes the scanner notices within a few passes and merges.
	vms[0].Write(0, 0, bytes.Repeat([]byte{2}, mem.PageSize))
	for p := 0; p < 8 && h.Merges == 0; p++ {
		s.ScanBatch(2)
	}
	if h.Merges != 1 {
		t.Fatal("smart scan never caught the changed page")
	}
}

func TestSmartScanReducesSteadyStateCycles(t *testing.T) {
	// The point of the feature: converged deployments get cheaper passes.
	build := func(smart bool) uint64 {
		// Unique, unchanging pages: without smart scan every pass re-hashes
		// and re-inserts all of them into the unstable tree.
		h, _ := world(t, 512,
			[]byte{1, 2, 3, 4, 5, 6, 7, 8},
			[]byte{11, 12, 13, 14, 15, 16, 17, 18},
		)
		s := newScanner(h)
		if smart {
			s.Alg.SetOptions(Options{SmartScan: true})
		}
		s.RunToSteadyState(6)
		before := s.Cycles.Total()
		for p := 0; p < 6; p++ {
			s.ScanBatch(16)
		}
		return s.Cycles.Total() - before
	}
	plain := build(false)
	smart := build(true)
	if smart >= plain {
		t.Fatalf("smart scan steady-state cycles %d not below plain %d", smart, plain)
	}
}

func TestSysfsCounters(t *testing.T) {
	h, _ := world(t, 64, []byte{7}, []byte{7})
	s := newScanner(h)
	s.ScanBatch(2)
	s.ScanBatch(2)
	m := s.Alg.Sysfs()
	if m["pages_shared"] != 1 || m["pages_sharing"] != 2 {
		t.Fatalf("sysfs shared/sharing = %d/%d", m["pages_shared"], m["pages_sharing"])
	}
	if m["full_scans"] != 2 {
		t.Fatalf("full_scans = %d", m["full_scans"])
	}
	if m["pages_scanned"] != 4 {
		t.Fatalf("pages_scanned = %d", m["pages_scanned"])
	}
	out := s.Alg.SysfsString()
	if out == "" || len(out) < 50 {
		t.Fatal("SysfsString empty")
	}
}

func TestHugePagesBlockScanningUntilBroken(t *testing.T) {
	// Reproduces §7.3's tension: duplicate pages under huge mappings are
	// invisible to merging until the hypervisor proactively breaks them
	// (Guo et al., VEE 2015).
	h, vms := world(t, 128, []byte{7, 7, 7, 7}, []byte{7, 7, 7, 7})
	vms[0].MapHuge(0, 4)
	vms[1].MapHuge(0, 4)
	s := newScanner(h)
	s.RunToSteadyState(6)
	if h.Merges != 0 {
		t.Fatal("pages under huge mappings merged")
	}
	if h.Phys.AllocatedFrames() != 8 {
		t.Fatalf("frames = %d, want 8 (nothing mergeable)", h.Phys.AllocatedFrames())
	}
	// Proactive breaking recovers the full savings.
	vms[0].BreakAllHuge()
	vms[1].BreakAllHuge()
	s.RunToSteadyState(8)
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1 after breaking", h.Phys.AllocatedFrames())
	}
}
