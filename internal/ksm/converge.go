package ksm

// RunConvergence drives an engine through full scan passes until a pass
// completes with no new merges, or maxPasses is reached, returning the
// number of passes run. scanOne advances the engine by one candidate and
// reports whether a candidate was available; the engine's merge counters
// are read from alg. Both the software scanner and the PageForge driver
// converge through this loop so their pass-counting semantics cannot
// drift.
func RunConvergence(alg *Algorithm, maxPasses int, scanOne func() bool) int {
	for p := 0; p < maxPasses; p++ {
		mergesBefore := alg.Stats.StableMerges + alg.Stats.UnstableMerges
		pages := alg.MergeablePages()
		if pages == 0 {
			return p
		}
		for i := 0; i < pages; i++ {
			if !scanOne() {
				return p
			}
		}
		// The p > 0 guard: the first pass can finish with zero merges even
		// on a duplicate-rich image, because the unstable tree starts empty
		// and pass 0 only populates it — candidates meet their duplicates
		// no earlier than pass 1. "No new merges" therefore only means
		// converged after at least one populating pass has run.
		if alg.Stats.StableMerges+alg.Stats.UnstableMerges == mergesBefore && p > 0 {
			return p + 1
		}
	}
	return maxPasses
}
