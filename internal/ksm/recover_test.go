package ksm

import (
	"strings"
	"testing"

	"repro/internal/mem"
	"repro/internal/rbtree"
)

// fullPass runs one complete scan pass over every mergeable page.
func fullPass(s *Scanner) {
	for i := 0; i < s.Alg.MergeablePages(); i++ {
		s.ScanOne()
	}
}

// convergedWorld builds a world with two distinct duplicate groups, scans it
// to steady state, and returns the scanner.
func convergedWorld(t *testing.T) *Scanner {
	t.Helper()
	h, _ := world(t, 64, []byte{7, 8, 3}, []byte{7, 8, 5})
	s := newScanner(h)
	for p := 0; p < 3; p++ {
		fullPass(s)
	}
	if s.Alg.Stable.Size() < 2 {
		t.Fatalf("setup: stable size %d, want >= 2", s.Alg.Stable.Size())
	}
	return s
}

// stablePFNs collects the stable tree's frames in order.
func stablePFNs(a *Algorithm) []mem.PFN {
	var out []mem.PFN
	a.Stable.InOrder(func(n *rbtree.Node) bool { out = append(out, n.PFN); return true })
	return out
}

func TestVerifyRecoveredAcceptsHealthyState(t *testing.T) {
	s := convergedWorld(t)
	a := s.Alg

	// Snapshot everything the audit must not perturb.
	cmpBefore := a.Stable.Shard(0).Comparisons
	bytesBefore := a.Stable.Shard(0).BytesCompared
	statsBefore := a.Stats

	stats, err := a.VerifyRecovered()
	if err != nil {
		t.Fatalf("healthy state failed recovery verification: %v", err)
	}
	if stats.StableNodes != a.Stable.Size() {
		t.Fatalf("audited %d stable nodes, tree has %d", stats.StableNodes, a.Stable.Size())
	}
	if stats.HintGroups == 0 || stats.FramesAudited == 0 {
		t.Fatalf("audit did no work: %+v", stats)
	}

	// Counter neutrality: a verification must be free in simulated cost, or
	// a recovered run could never be bit-identical to an uninterrupted one.
	if a.Stable.Shard(0).Comparisons != cmpBefore || a.Stable.Shard(0).BytesCompared != bytesBefore {
		t.Fatalf("verification charged tree counters: %d/%d -> %d/%d",
			cmpBefore, bytesBefore, a.Stable.Shard(0).Comparisons, a.Stable.Shard(0).BytesCompared)
	}
	if a.Stats != statsBefore {
		t.Fatalf("verification perturbed scan stats: %+v -> %+v", statsBefore, a.Stats)
	}
}

func TestVerifyRecoveredDetectsFalseMergeState(t *testing.T) {
	s := convergedWorld(t)
	a := s.Alg
	pfns := stablePFNs(a)
	// Corrupt the "restored" state: two distinct stable nodes now carry
	// identical contents, so the next lookup would split a merge group. The
	// write goes straight to the arena, bypassing CoW — exactly what a
	// botched restore would produce. Equal contents pass the structural
	// order check (it only rejects inversions), so only the
	// hint-then-verify content audit can catch this.
	copy(a.HV.Phys.Page(pfns[1]), a.HV.Phys.Page(pfns[0]))

	_, err := a.VerifyRecovered()
	if err == nil {
		t.Fatal("duplicate stable contents passed recovery verification")
	}
	if !strings.Contains(err.Error(), "false merge state") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestVerifyRecoveredDetectsRefcountMismatch(t *testing.T) {
	s := convergedWorld(t)
	a := s.Alg
	a.HV.Phys.IncRef(stablePFNs(a)[0])

	_, err := a.VerifyRecovered()
	if err == nil {
		t.Fatal("refcount ledger imbalance passed recovery verification")
	}
	if !strings.Contains(err.Error(), "refcount ledger") {
		t.Fatalf("wrong error: %v", err)
	}
}

func TestVerifyRecoveredAfterStateRoundTrip(t *testing.T) {
	s := convergedWorld(t)
	a := s.Alg
	st, err := a.State()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SetState(st); err != nil {
		t.Fatal(err)
	}
	if _, err := a.VerifyRecovered(); err != nil {
		t.Fatalf("round-tripped state failed recovery verification: %v", err)
	}
}
