package ksm

import (
	"reflect"
	"testing"

	"repro/internal/mem"
	"repro/internal/rbtree"
	"repro/internal/tailbench"
)

// passState is a full-fidelity snapshot of everything a scan pass can
// affect: merge state, statistics, cost accounting, frame-allocator state,
// tree contents, and the page→frame mapping with content digests. Two runs
// are bit-identical iff their passStates are DeepEqual after every pass.
type passState struct {
	Merges       uint64
	Stats        Stats
	Cycles       CycleBreakdown
	BytesTouched uint64
	DRAMBytes    uint64

	Allocs, Frees, ZeroFills uint64
	Allocated, Peak, Free    int

	StableOrder   []mem.PFN
	UnstableOrder []mem.PFN
	Mapping       []mem.PFN
	Keys          []uint64
}

func snapshot(s *Scanner) passState {
	a := s.Alg
	p := a.HV.Phys
	st := passState{
		Merges:       a.HV.Merges,
		Stats:        a.Stats,
		Cycles:       s.Cycles,
		BytesTouched: s.BytesTouched,
		DRAMBytes:    s.DRAMBytes,
		Allocs:       p.Allocs,
		Frees:        p.Frees,
		ZeroFills:    p.ZeroFills,
		Allocated:    p.AllocatedFrames(),
		Peak:         p.PeakFrames(),
		Free:         p.FreeFrames(),
	}
	a.Stable.InOrder(func(n *rbtree.Node) bool {
		st.StableOrder = append(st.StableOrder, n.PFN)
		return true
	})
	a.Unstable.InOrder(func(n *rbtree.Node) bool {
		st.UnstableOrder = append(st.UnstableOrder, n.PFN)
		return true
	})
	for _, id := range a.OrderSnapshot() {
		pfn, ok := a.HV.Resolve(id)
		if !ok {
			st.Mapping = append(st.Mapping, ^mem.PFN(0))
			st.Keys = append(st.Keys, 0)
			continue
		}
		st.Mapping = append(st.Mapping, pfn)
		st.Keys = append(st.Keys, p.ContentKey(pfn))
	}
	return st
}

func buildDupWorld(t *testing.T, shardBits int) *Scanner {
	t.Helper()
	prof := tailbench.Profile{
		Name:       "scanpass",
		PagesPerVM: 96,
		DupFrac:    0.5,
		DupCopies:  4,
		ZeroFrac:   0.1,
	}
	img, err := tailbench.BuildImage(prof, 6, 6*prof.PagesPerVM*2, 99)
	if err != nil {
		t.Fatal(err)
	}
	return NewScanner(NewAlgorithmSharded(img.HV, JHasher{}, shardBits), DefaultCosts())
}

// churn applies a deterministic write schedule between passes: CoW breaks
// on previously merged duplicate pages plus fresh content on some unique
// pages, exercising unmerge, re-route, and the deferred-free machinery the
// same way in every world.
func churn(t *testing.T, s *Scanner, pass int) {
	t.Helper()
	a := s.Alg
	order := a.OrderSnapshot()
	buf := make([]byte, 16)
	for i := pass; i < len(order); i += 17 {
		id := order[i]
		for j := range buf {
			buf[j] = byte(i*31 + j + pass)
		}
		v := a.HV.VM(id.VM)
		if _, err := v.Write(id.GFN, 0, buf); err != nil {
			t.Fatal(err)
		}
	}
}

// TestScanPassBitIdenticalToSequential is the tentpole's core contract:
// a full pass through ScanPass at any worker count produces state
// bit-identical to ScanPass(1) and to the classic sequential ScanOne loop,
// pass after pass, with churn in between. Run with -race to also prove the
// fan-out is data-race-free.
func TestScanPassBitIdenticalToSequential(t *testing.T) {
	const shardBits = 3 // 8 shards
	seq := buildDupWorld(t, shardBits)
	one := buildDupWorld(t, shardBits)
	par := buildDupWorld(t, shardBits)

	runSeq := func(s *Scanner) {
		for {
			_, ended, ok := s.ScanOne()
			if !ok || ended {
				return
			}
		}
	}

	for pass := 0; pass < 4; pass++ {
		runSeq(seq)
		one.ScanPass(1)
		par.ScanPass(4)

		ss, so, sp := snapshot(seq), snapshot(one), snapshot(par)
		if !reflect.DeepEqual(ss, so) {
			t.Fatalf("pass %d: ScanPass(1) diverged from sequential ScanOne\nseq: %+v\none: %+v", pass, ss, so)
		}
		if !reflect.DeepEqual(ss, sp) {
			t.Fatalf("pass %d: ScanPass(4) diverged from sequential ScanOne\nseq: %+v\npar: %+v", pass, ss, sp)
		}
		if sp.DRAMBytes > sp.BytesTouched {
			t.Fatalf("pass %d: DRAMBytes %d > BytesTouched %d", pass, sp.DRAMBytes, sp.BytesTouched)
		}
		if pass == 3 {
			break
		}
		churn(t, seq, pass)
		churn(t, one, pass)
		churn(t, par, pass)
	}
	if seq.Alg.HV.Merges == 0 {
		t.Fatal("world produced no merges — test exercised nothing")
	}
	if snapshot(seq).Stats.FailedMerges == 0 && seq.Alg.Stats.StablePruned == 0 {
		// Not fatal: just make sure churn actually unmerged something.
		if seq.Alg.Stats.HashMismatches == 0 {
			t.Fatal("churn produced no content changes — schedule is dead")
		}
	}
}

// TestScanPassSingleShardDefault checks the degenerate configuration the
// platform uses by default (shardBits 0): ScanPass still works and matches
// the sequential loop exactly.
func TestScanPassSingleShardDefault(t *testing.T) {
	seq := buildDupWorld(t, 0)
	par := buildDupWorld(t, 0)
	for pass := 0; pass < 3; pass++ {
		for {
			_, ended, ok := seq.ScanOne()
			if !ok || ended {
				break
			}
		}
		par.ScanPass(8) // clamped to the single shard
		if ss, sp := snapshot(seq), snapshot(par); !reflect.DeepEqual(ss, sp) {
			t.Fatalf("pass %d: single-shard ScanPass diverged\nseq: %+v\npar: %+v", pass, ss, sp)
		}
	}
}
