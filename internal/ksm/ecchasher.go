package ksm

import "repro/internal/ecc"

// ECCHasher computes PageForge's ECC-based page key in software. It exists
// for head-to-head hash-quality experiments (Figure 8): same interface as
// JHasher, but reads only 256B of the page (4 sampled lines) instead of 1KB
// and derives the key from the lines' SECDED codes.
type ECCHasher struct {
	Offsets ecc.KeyOffsets
}

// NewECCHasher returns a hasher with the default sampling offsets.
func NewECCHasher() ECCHasher { return ECCHasher{Offsets: ecc.DefaultKeyOffsets} }

// PageKey implements Hasher.
func (h ECCHasher) PageKey(page []byte) uint32 { return ecc.PageKey(page, h.Offsets) }

// BytesRead implements Hasher: four 64B lines.
func (h ECCHasher) BytesRead() int { return ecc.Sections * ecc.LineSize }
