package ksm

import (
	"fmt"

	"repro/internal/mem"
	"repro/internal/rbtree"
)

// Post-crash recovery verification. A restored dedup index is only
// trustworthy if it cannot produce a false merge: every stable node must
// name a live frame, no two stable nodes may carry identical contents (the
// next lookup would route a candidate to whichever the descent finds
// first, silently splitting a merge group), and the refcount ledger must
// balance against the rmap plus the engine's own holds. The content check
// follows the ESX hint-then-verify discipline: cheap 64-bit content hints
// group the nodes, and only hint collisions pay a full software compare —
// the same fallback path PR 2 gave the driver.

// RecoveryStats summarizes one recovery verification.
type RecoveryStats struct {
	StableNodes   int    // stable-tree nodes audited
	HintGroups    int    // distinct content hints observed
	Verifies      int    // software page compares performed
	BytesVerified uint64 // bytes those compares examined
	FramesAudited int    // allocated frames whose refcounts were checked
}

// VerifyRecovered audits the algorithm state against physical memory after
// a restore. It is counter-neutral: the structural walk and the software
// verifies charge nothing to the trees' comparison counters or the
// per-shard deepest-comparison trackers, so running it cannot perturb a
// bit-exact resume. A non-nil error means the recovered index is corrupt
// and must not be resumed from.
func (a *Algorithm) VerifyRecovered() (RecoveryStats, error) {
	// Snapshot every counter the audit could touch: CheckInvariants descends
	// with the raw comparator, which feeds the maxCmp trackers, and the trees'
	// cost counters are simulation state.
	savedMax := append([]int(nil), a.maxCmp...)
	type treeCtrs struct{ cmp, bytes uint64 }
	save := func(s *rbtree.Sharded) []treeCtrs {
		out := make([]treeCtrs, s.NumShards())
		for i := range out {
			t := s.Shard(i)
			out[i] = treeCtrs{cmp: t.Comparisons, bytes: t.BytesCompared}
		}
		return out
	}
	restore := func(s *rbtree.Sharded, ctrs []treeCtrs) {
		for i, c := range ctrs {
			t := s.Shard(i)
			t.Comparisons, t.BytesCompared = c.cmp, c.bytes
		}
	}
	stableCtrs, unstableCtrs := save(a.Stable), save(a.Unstable)
	defer func() {
		copy(a.maxCmp, savedMax)
		restore(a.Stable, stableCtrs)
		restore(a.Unstable, unstableCtrs)
	}()

	var st RecoveryStats

	// 1. Structural integrity: red-black shape, per-shard content order,
	// cross-shard prefix routing.
	if err := a.Stable.CheckInvariants(); err != nil {
		return st, fmt.Errorf("ksm: recovered stable tree: %w", err)
	}
	if err := a.Unstable.CheckInvariants(); err != nil {
		return st, fmt.Errorf("ksm: recovered unstable tree: %w", err)
	}

	// 2. Hint-then-verify content audit of the stable index.
	phys := a.HV.Phys
	hints := map[uint64][]mem.PFN{}
	var walkErr error
	a.Stable.InOrder(func(n *rbtree.Node) bool {
		st.StableNodes++
		if !phys.Allocated(n.PFN) {
			walkErr = fmt.Errorf("ksm: stable node references unallocated frame %d", n.PFN)
			return false
		}
		h := phys.ContentKey(n.PFN)
		for _, other := range hints[h] {
			// Hint collision: resolve in software like the driver's fallback.
			same, nb := phys.SamePage(n.PFN, other)
			st.Verifies++
			st.BytesVerified += uint64(nb)
			if same {
				walkErr = fmt.Errorf("ksm: false merge state: stable frames %d and %d hold identical contents", other, n.PFN)
				return false
			}
		}
		hints[h] = append(hints[h], n.PFN)
		return true
	})
	if walkErr != nil {
		return st, walkErr
	}
	st.HintGroups = len(hints)

	// 3. Refcount ledger: every allocated frame's refcount must equal its
	// guest mappers plus the engine's holds (stable nodes, unstable nodes,
	// and the permanent zero-frame reference).
	holds := map[mem.PFN]int{}
	a.Stable.InOrder(func(n *rbtree.Node) bool { holds[n.PFN]++; return true })
	a.Unstable.InOrder(func(n *rbtree.Node) bool { holds[n.PFN]++; return true })
	if zf, ok := a.ZeroPFN(); ok {
		holds[zf]++
	}
	for pfn := mem.PFN(0); int(pfn) < phys.TotalFrames(); pfn++ {
		if !phys.Allocated(pfn) {
			continue
		}
		st.FramesAudited++
		want := len(a.HV.Mappers(pfn)) + holds[pfn]
		if got := phys.Get(pfn).Refs(); got != want {
			return st, fmt.Errorf("ksm: refcount ledger mismatch on frame %d: refs=%d, mappers+holds=%d",
				pfn, got, want)
		}
	}
	return st, nil
}
