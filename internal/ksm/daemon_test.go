package ksm

import (
	"testing"

	"repro/internal/sim"
)

func TestDaemonSchedulesIntervals(t *testing.T) {
	h, _ := world(t, 64, []byte{7, 8}, []byte{7, 9})
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	d.PagesToScan = 2 // half a pass per interval
	d.Start()

	// Run 10 sleep periods: 10 intervals = 5 full passes.
	e.RunUntil(10 * d.SleepCycles)
	if d.Intervals != 10 {
		t.Fatalf("intervals = %d, want 10", d.Intervals)
	}
	if s.Alg.Stats.FullScans != 5 {
		t.Fatalf("full scans = %d, want 5", s.Alg.Stats.FullScans)
	}
	// The duplicate pair merged along the way.
	if h.Merges != 1 {
		t.Fatalf("merges = %d, want 1", h.Merges)
	}
}

func TestDaemonWakeTimesAreExact(t *testing.T) {
	h, _ := world(t, 64, []byte{1}, []byte{2})
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	var wakes []sim.Cycle
	d.OnBatch = func(now sim.Cycle, res BatchResult) { wakes = append(wakes, now) }
	d.Start()
	e.RunUntil(3 * d.SleepCycles)
	if len(wakes) != 3 {
		t.Fatalf("%d wakes", len(wakes))
	}
	for i, w := range wakes {
		if want := sim.Cycle(i+1) * d.SleepCycles; w != want {
			t.Fatalf("wake %d at %d, want %d", i, w, want)
		}
	}
}

func TestDaemonStop(t *testing.T) {
	h, _ := world(t, 64, []byte{1}, []byte{2})
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	d.Start()
	e.RunUntil(d.SleepCycles) // one interval
	d.Stop()
	e.Run()
	if d.Intervals != 1 {
		t.Fatalf("intervals after stop = %d, want 1", d.Intervals)
	}
	// Restartable.
	d.Start()
	e.RunUntil(e.Now() + d.SleepCycles)
	if d.Intervals != 2 {
		t.Fatalf("intervals after restart = %d, want 2", d.Intervals)
	}
}

func TestDaemonExitsWithoutMergeablePages(t *testing.T) {
	h := newHVNoPages(t)
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	d.Start()
	e.Run() // drains: the daemon must not reschedule forever
	if d.Intervals != 0 {
		t.Fatalf("intervals = %d for empty scan order", d.Intervals)
	}
}

func TestDaemonDoubleStartIsIdempotent(t *testing.T) {
	h, _ := world(t, 64, []byte{1}, []byte{2})
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	d.Start()
	d.Start() // must not double-schedule
	e.RunUntil(d.SleepCycles)
	if d.Intervals != 1 {
		t.Fatalf("intervals = %d, double Start double-scheduled", d.Intervals)
	}
}

func TestGovernorConvergesToBudget(t *testing.T) {
	// Many unique pages (expensive per-page work) with a 20% core budget:
	// the governor must settle near the budget regardless of the starting
	// pages_to_scan.
	contents := make([][]byte, 4)
	for i := range contents {
		contents[i] = make([]byte, 64)
		for j := range contents[i] {
			contents[i][j] = byte(1 + i*64 + j)
		}
	}
	h, _ := world(t, 1024, contents...)
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	d.PagesToScan = 10_000 // way over budget initially
	Governor{TargetCoreFrac: 0.2, MinPages: 8, MaxPages: 1 << 20}.Attach(d)

	var lastShare float64
	orig := d.OnBatch
	d.OnBatch = func(now sim.Cycle, res BatchResult) {
		lastShare = float64(res.Cycles.Total()) / float64(d.SleepCycles)
		orig(now, res)
	}
	d.Start()
	e.RunUntil(40 * d.SleepCycles)
	if d.Intervals != 40 {
		t.Fatalf("intervals = %d", d.Intervals)
	}
	if lastShare > 0.4 || lastShare < 0.02 {
		t.Fatalf("governed core share %.2f, want near the 0.2 budget", lastShare)
	}
	if d.PagesToScan >= 10_000 {
		t.Fatal("governor never reduced pages_to_scan")
	}
}

func TestGovernorClamps(t *testing.T) {
	h, _ := world(t, 64, []byte{1}, []byte{2})
	s := newScanner(h)
	e := sim.NewEngine()
	d := NewDaemon(s, e)
	d.PagesToScan = 100
	Governor{TargetCoreFrac: 0.9, MinPages: 8, MaxPages: 64}.Attach(d)
	d.Start()
	e.RunUntil(10 * d.SleepCycles)
	if d.PagesToScan > 64 {
		t.Fatalf("pages_to_scan %d above MaxPages", d.PagesToScan)
	}
	if d.PagesToScan < 8 {
		t.Fatalf("pages_to_scan %d below MinPages", d.PagesToScan)
	}
}
