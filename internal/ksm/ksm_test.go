package ksm

import (
	"bytes"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/vm"
)

// world builds a hypervisor with one VM per content list; VM i's page j is
// filled with contents[i][j] repeated (0 means an untouched page remains
// untouched so it stays unbacked). All pages are madvised mergeable.
func world(t *testing.T, frames int, contents ...[]byte) (*vm.Hypervisor, []*vm.VM) {
	t.Helper()
	h := vm.NewHypervisor(uint64(frames) * mem.PageSize)
	var vms []*vm.VM
	for _, cs := range contents {
		v := h.NewVM(uint64(len(cs)) * mem.PageSize)
		v.Madvise(0, len(cs), true)
		for g, c := range cs {
			if c != 0 {
				if _, err := v.Write(vm.GFN(g), 0, bytes.Repeat([]byte{c}, mem.PageSize)); err != nil {
					t.Fatal(err)
				}
			}
		}
		vms = append(vms, v)
	}
	return h, vms
}

func newScanner(h *vm.Hypervisor) *Scanner {
	return NewScanner(NewAlgorithm(h, JHasher{}), DefaultCosts())
}

func TestTwoIdenticalPagesMergeInTwoPasses(t *testing.T) {
	h, _ := world(t, 64, []byte{7}, []byte{7})
	s := newScanner(h)
	if h.Phys.AllocatedFrames() != 2 {
		t.Fatal("setup")
	}
	// Pass 1: both pages first-seen, only hashes recorded.
	s.ScanBatch(2)
	if h.Merges != 0 {
		t.Fatal("merged on first sighting (hash must gate the unstable tree)")
	}
	// Pass 2: first page enters the unstable tree, second matches it.
	s.ScanBatch(2)
	if h.Merges != 1 {
		t.Fatalf("Merges = %d, want 1 after second pass", h.Merges)
	}
	// One data frame shared by both pages + the stable tree's held frame is
	// the same frame, so allocation drops from 2 to 1.
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", h.Phys.AllocatedFrames())
	}
	if s.Alg.Stable.Size() != 1 {
		t.Fatalf("stable tree size = %d, want 1", s.Alg.Stable.Size())
	}
	shared, sharing := s.Alg.SharingStats()
	if shared != 1 || sharing != 2 {
		t.Fatalf("sharing stats = %d/%d, want 1/2", shared, sharing)
	}
}

func TestThirdPageMergesViaStableTree(t *testing.T) {
	h, _ := world(t, 64, []byte{7}, []byte{7}, []byte{7})
	s := newScanner(h)
	s.ScanBatch(3) // pass 1: record hashes
	s.ScanBatch(3) // pass 2: unstable merge of first two, stable merge of third
	if h.Merges != 2 {
		t.Fatalf("Merges = %d, want 2", h.Merges)
	}
	if s.Alg.Stats.StableMerges != 1 || s.Alg.Stats.UnstableMerges != 1 {
		t.Fatalf("stable/unstable merges = %d/%d, want 1/1",
			s.Alg.Stats.StableMerges, s.Alg.Stats.UnstableMerges)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", h.Phys.AllocatedFrames())
	}
}

func TestDistinctPagesNeverMerge(t *testing.T) {
	h, _ := world(t, 64, []byte{1, 2}, []byte{3, 4})
	s := newScanner(h)
	for i := 0; i < 5; i++ {
		s.ScanBatch(4)
	}
	if h.Merges != 0 {
		t.Fatal("distinct pages merged")
	}
	if h.Phys.AllocatedFrames() != 4 {
		t.Fatalf("frames = %d, want 4", h.Phys.AllocatedFrames())
	}
}

func TestVolatilePageIsNeverMerged(t *testing.T) {
	h, vms := world(t, 64, []byte{9}, []byte{9})
	s := newScanner(h)
	// Rewrite VM 1's page between every scan interval with fresh content,
	// then back to 9: hash changes pass-to-pass, so it must stay dropped.
	for i := 0; i < 6; i++ {
		s.ScanBatch(1) // scans one page at a time
		val := byte(10 + i)
		vms[1].Write(0, 0, bytes.Repeat([]byte{val}, mem.PageSize))
	}
	if h.Merges != 0 {
		t.Fatal("volatile page merged")
	}
	if s.Alg.Stats.HashMismatches == 0 {
		t.Fatal("hash mismatches not observed for volatile page")
	}
}

func TestZeroPagesAllMergeToOneFrame(t *testing.T) {
	// Touched-but-never-written pages are zero and should collapse to a
	// single frame ("when zero pages are merged, they are all merged into a
	// single page").
	h := vm.NewHypervisor(64 * mem.PageSize)
	v := h.NewVM(8 * mem.PageSize)
	v.Madvise(0, 8, true)
	for g := vm.GFN(0); g < 8; g++ {
		v.Touch(g)
	}
	s := newScanner(h)
	s.ScanBatch(8)
	s.ScanBatch(8)
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1 shared zero frame", h.Phys.AllocatedFrames())
	}
	shared, sharing := s.Alg.SharingStats()
	if shared != 1 || sharing != 8 {
		t.Fatalf("sharing = %d/%d, want 1/8", shared, sharing)
	}
}

func TestCoWBreakThenRemerge(t *testing.T) {
	h, vms := world(t, 64, []byte{5}, []byte{5})
	s := newScanner(h)
	s.ScanBatch(2)
	s.ScanBatch(2)
	if h.Merges != 1 {
		t.Fatal("setup: pages did not merge")
	}
	// VM 0 writes different content, then writes the shared content again.
	vms[0].Write(0, 0, bytes.Repeat([]byte{6}, mem.PageSize))
	if h.Unmerges != 1 {
		t.Fatal("write did not unmerge")
	}
	vms[0].Write(0, 0, bytes.Repeat([]byte{5}, mem.PageSize))
	// Two more passes: hash settles, page re-merges into the stable frame.
	s.ScanBatch(2)
	s.ScanBatch(2)
	if h.Merges != 2 {
		t.Fatalf("Merges = %d, want re-merge after CoW break", h.Merges)
	}
	if h.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", h.Phys.AllocatedFrames())
	}
}

func TestStableNodePrunedAfterAllSharersLeave(t *testing.T) {
	h, vms := world(t, 64, []byte{5}, []byte{5})
	s := newScanner(h)
	s.ScanBatch(2)
	s.ScanBatch(2)
	if s.Alg.Stable.Size() != 1 {
		t.Fatal("setup: no stable node")
	}
	// Both sharers diverge to unique contents.
	vms[0].Write(0, 0, bytes.Repeat([]byte{1}, mem.PageSize))
	vms[1].Write(0, 0, bytes.Repeat([]byte{2}, mem.PageSize))
	// Complete a full pass so EndPass prunes.
	s.ScanBatch(2)
	if s.Alg.Stable.Size() != 0 {
		t.Fatalf("stable size = %d, want 0 after prune", s.Alg.Stable.Size())
	}
	if s.Alg.Stats.StablePruned != 1 {
		t.Fatalf("StablePruned = %d, want 1", s.Alg.Stats.StablePruned)
	}
	// The stable tree's held frame must have been released: only the two
	// private frames remain.
	if h.Phys.AllocatedFrames() != 2 {
		t.Fatalf("frames = %d, want 2", h.Phys.AllocatedFrames())
	}
}

func TestScanBatchAccounting(t *testing.T) {
	h, _ := world(t, 64, []byte{1, 1, 2}, []byte{1, 3, 2})
	s := newScanner(h)
	r1 := s.ScanBatch(6)
	if r1.Scanned != 6 || !r1.PassEnded {
		t.Fatalf("batch 1: scanned=%d passEnded=%v", r1.Scanned, r1.PassEnded)
	}
	if r1.Cycles.Hash == 0 || r1.Cycles.Other == 0 {
		t.Fatalf("pass 1 cycles: %+v (hash and overhead must be nonzero)", r1.Cycles)
	}
	r2 := s.ScanBatch(6)
	if r2.Cycles.Compare == 0 {
		t.Fatalf("pass 2 cycles: %+v (tree comparisons must be nonzero)", r2.Cycles)
	}
	if r2.Bytes == 0 {
		t.Fatal("no cache footprint recorded")
	}
	if got := s.Cycles.Total(); got != r1.Cycles.Total()+r2.Cycles.Total() {
		t.Fatalf("cumulative cycles %d != sum of batches", got)
	}
}

func TestHashGatingCountsMatches(t *testing.T) {
	h, _ := world(t, 64, []byte{1}, []byte{2})
	s := newScanner(h)
	s.ScanBatch(2) // first seen x2
	if s.Alg.Stats.HashFirstSeen != 2 {
		t.Fatalf("HashFirstSeen = %d, want 2", s.Alg.Stats.HashFirstSeen)
	}
	s.ScanBatch(2) // both unchanged
	if s.Alg.Stats.HashMatches != 2 {
		t.Fatalf("HashMatches = %d, want 2", s.Alg.Stats.HashMatches)
	}
}

func TestRunToSteadyStateConverges(t *testing.T) {
	// 4 VMs x 4 pages with heavy duplication across VMs.
	h, _ := world(t, 256,
		[]byte{10, 11, 12, 13},
		[]byte{10, 11, 12, 14},
		[]byte{10, 11, 15, 13},
		[]byte{10, 16, 12, 13},
	)
	s := newScanner(h)
	passes := s.RunToSteadyState(20)
	if passes >= 20 {
		t.Fatalf("did not converge in %d passes", passes)
	}
	// Duplicates: 10 x4 -> 1, 11 x3 -> 1, 12 x3 -> 1, 13 x3 -> 1; uniques
	// 14, 15, 16 stay. 16 pages -> 4 shared + 3 unique = 7 frames.
	if h.Phys.AllocatedFrames() != 7 {
		t.Fatalf("frames = %d, want 7", h.Phys.AllocatedFrames())
	}
	// A further pass changes nothing.
	merges := h.Merges
	s.ScanBatch(16)
	if h.Merges != merges {
		t.Fatal("steady state not stable")
	}
}

func TestUnmergedPagesNotScannedWithoutMadvise(t *testing.T) {
	h := vm.NewHypervisor(16 * mem.PageSize)
	v := h.NewVM(2 * mem.PageSize)
	v.Write(0, 0, bytes.Repeat([]byte{1}, mem.PageSize))
	v.Write(1, 0, bytes.Repeat([]byte{1}, mem.PageSize))
	// No madvise: nothing to scan.
	s := newScanner(h)
	if s.Alg.MergeablePages() != 0 {
		t.Fatal("non-advised pages in scan order")
	}
	if _, _, ok := s.ScanOne(); ok {
		t.Fatal("ScanOne succeeded with empty scan order")
	}
}

func TestRefreshOrderPicksUpNewRegions(t *testing.T) {
	h := vm.NewHypervisor(16 * mem.PageSize)
	v := h.NewVM(4 * mem.PageSize)
	s := newScanner(h)
	if s.Alg.MergeablePages() != 0 {
		t.Fatal("setup")
	}
	v.Madvise(0, 4, true)
	s.Alg.RefreshOrder()
	if s.Alg.MergeablePages() != 4 {
		t.Fatalf("MergeablePages = %d, want 4", s.Alg.MergeablePages())
	}
}

func TestLargeRandomDuplicationConsistency(t *testing.T) {
	// A randomized soup of duplicate/unique pages across 5 VMs: after
	// convergence, every set of byte-identical pages shares one frame, and
	// total content is preserved.
	r := sim.NewRNG(123)
	const nVM, nPg = 5, 12
	contents := make([][]byte, nVM)
	for i := range contents {
		contents[i] = make([]byte, nPg)
		for j := range contents[i] {
			contents[i][j] = byte(1 + r.Intn(6)) // heavy duplication
		}
	}
	h, vms := world(t, 1024, contents...)
	s := newScanner(h)
	s.RunToSteadyState(30)

	distinct := map[byte]bool{}
	for _, cs := range contents {
		for _, c := range cs {
			distinct[c] = true
		}
	}
	if got := h.Phys.AllocatedFrames(); got != len(distinct) {
		t.Fatalf("frames = %d, want %d distinct contents", got, len(distinct))
	}
	// Data integrity: every page still reads back its content.
	buf := make([]byte, 1)
	for i, cs := range contents {
		for j, c := range cs {
			vms[i].Read(vm.GFN(j), 0, buf)
			if buf[0] != c {
				t.Fatalf("vm%d page %d reads %d, want %d", i, j, buf[0], c)
			}
		}
	}
}

// newHVNoPages builds a hypervisor with no mergeable pages.
func newHVNoPages(t *testing.T) *vm.Hypervisor {
	t.Helper()
	h := vm.NewHypervisor(16 * mem.PageSize)
	h.NewVM(4 * mem.PageSize) // no madvise
	return h
}
