package ksm

import "repro/internal/sim"

// Daemon schedules a scanner the way the kernel schedules ksmd: wake every
// sleep_millisecs, scan pages_to_scan candidates, sleep again. It runs on a
// discrete-event engine so other simulated activity (workload events,
// churn) can interleave at exact cycle timestamps.
type Daemon struct {
	Scanner *Scanner
	Engine  *sim.Engine
	// SleepCycles is the wake period; PagesToScan the per-wake batch.
	SleepCycles uint64
	PagesToScan int
	// OnBatch, when set, observes every completed batch (for churn hooks
	// and instrumentation).
	OnBatch func(now sim.Cycle, res BatchResult)

	running bool
	stopped bool
	// Intervals counts completed work intervals.
	Intervals uint64
}

// NewDaemon wires a scanner onto an engine with the paper's tunables
// (sleep_millisecs=5, pages_to_scan=400) unless overridden.
func NewDaemon(s *Scanner, e *sim.Engine) *Daemon {
	return &Daemon{
		Scanner:     s,
		Engine:      e,
		SleepCycles: sim.MillisToCycles(5),
		PagesToScan: 400,
	}
}

// Start schedules the first wake-up. The daemon reschedules itself until
// Stop is called or no mergeable pages remain.
func (d *Daemon) Start() {
	if d.running {
		return
	}
	d.running = true
	d.stopped = false
	d.Engine.After(d.SleepCycles, d.wake)
}

// Stop prevents further wake-ups (the current one completes).
func (d *Daemon) Stop() {
	d.stopped = true
	d.running = false
}

func (d *Daemon) wake(now sim.Cycle) {
	if d.stopped {
		return
	}
	if d.Scanner.Alg.MergeablePages() == 0 {
		// "while mergeable pages > 0" — Algorithm 1's outer loop condition.
		d.running = false
		return
	}
	res := d.Scanner.ScanBatch(d.PagesToScan)
	d.Intervals++
	if d.OnBatch != nil {
		d.OnBatch(now, res)
	}
	d.Engine.After(d.SleepCycles, d.wake)
}

// --- UKSM-style CPU governor (§7.2) -----------------------------------------

// Governor adapts pages_to_scan so the daemon consumes a target fraction of
// one core, the way UKSM lets operators set a CPU budget instead of KSM's
// fixed sleep/pages knobs.
type Governor struct {
	// TargetCoreFrac is the allowed core share (e.g. 0.2 = 20% of a core).
	TargetCoreFrac float64
	// MinPages/MaxPages clamp the adaptation.
	MinPages int
	MaxPages int
}

// Attach installs the governor on a daemon: after every batch it rescales
// pages_to_scan toward the budget using the batch's measured cycle cost.
func (g Governor) Attach(d *Daemon) {
	if g.MinPages <= 0 {
		g.MinPages = 16
	}
	if g.MaxPages <= 0 {
		g.MaxPages = 1 << 16
	}
	prev := d.OnBatch
	d.OnBatch = func(now sim.Cycle, res BatchResult) {
		if prev != nil {
			prev(now, res)
		}
		if res.Scanned == 0 {
			return
		}
		perPage := float64(res.Cycles.Total()) / float64(res.Scanned)
		budget := g.TargetCoreFrac * float64(d.SleepCycles)
		want := int(budget / perPage)
		if want < g.MinPages {
			want = g.MinPages
		}
		if want > g.MaxPages {
			want = g.MaxPages
		}
		// Move halfway toward the target for stability.
		d.PagesToScan = (d.PagesToScan + want) / 2
		if d.PagesToScan < g.MinPages {
			d.PagesToScan = g.MinPages
		}
	}
}
