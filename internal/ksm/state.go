package ksm

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/rbtree"
	"repro/internal/vm"
)

// Checkpoint support. AlgorithmState is a plain-data image of the KSM
// engine state: per-page tracking items (sorted by PageID so the encoding
// is deterministic — the live map has no stable order), the scan order and
// cursor, pass number, statistics, the dedicated zero frame, the per-shard
// deepest-comparison trackers, and the exact structure of every tree shard.
//
// Capture is only legal at a pass boundary, where the unstable tree is
// empty (EndPass throws it away): mid-pass unstable nodes hold frame
// references whose item back-pointers cannot be rebuilt from plain data.

// ItemState is the exported image of one rmapItem.
type ItemState struct {
	ID              vm.PageID
	OldHash         uint32
	HasHash         bool
	UnstablePass    uint64
	UnchangedStreak uint64
	SkipUntilPass   uint64
}

// AlgorithmState is the serialized image of an Algorithm.
type AlgorithmState struct {
	Items    []ItemState
	Order    []vm.PageID
	Curs     int
	Pass     uint64
	Stats    Stats
	ZeroPFN  int64 // -1 when the dedicated zero frame is unallocated
	MaxCmp   []int
	Stable   []rbtree.TreeState
	Unstable []rbtree.TreeState
}

// State captures the algorithm at a pass boundary.
func (a *Algorithm) State() (AlgorithmState, error) {
	if n := a.Unstable.Size(); n != 0 {
		return AlgorithmState{}, fmt.Errorf("ksm: checkpoint mid-pass (%d unstable nodes)", n)
	}
	st := AlgorithmState{
		Items:    make([]ItemState, 0, len(a.items)),
		Order:    append([]vm.PageID(nil), a.order...),
		Curs:     a.curs,
		Pass:     a.pass,
		Stats:    a.Stats,
		ZeroPFN:  -1,
		MaxCmp:   append([]int(nil), a.maxCmp...),
		Stable:   a.Stable.Export(),
		Unstable: a.Unstable.Export(),
	}
	if a.zeroPFN != nil {
		st.ZeroPFN = int64(*a.zeroPFN)
	}
	for _, it := range a.items {
		st.Items = append(st.Items, ItemState{
			ID:              it.id,
			OldHash:         it.oldHash,
			HasHash:         it.hasHash,
			UnstablePass:    it.unstablePass,
			UnchangedStreak: it.unchangedStreak,
			SkipUntilPass:   it.skipUntilPass,
		})
	}
	sort.Slice(st.Items, func(i, j int) bool {
		a, b := st.Items[i].ID, st.Items[j].ID
		if a.VM != b.VM {
			return a.VM < b.VM
		}
		return a.GFN < b.GFN
	})
	return st, nil
}

// SetState restores a previously captured image in place. Shard count is
// configuration and must match; tree structures are imported verbatim so
// every later descent compares exactly the pages the uninterrupted run
// would have compared.
func (a *Algorithm) SetState(st AlgorithmState) error {
	if len(st.MaxCmp) != len(a.maxCmp) {
		return fmt.Errorf("ksm: restore shard-count mismatch (have %d, snapshot %d)",
			len(a.maxCmp), len(st.MaxCmp))
	}
	a.items = make(map[vm.PageID]*rmapItem, len(st.Items))
	for _, is := range st.Items {
		a.items[is.ID] = &rmapItem{
			id:              is.ID,
			oldHash:         is.OldHash,
			hasHash:         is.HasHash,
			unstablePass:    is.UnstablePass,
			unchangedStreak: is.UnchangedStreak,
			skipUntilPass:   is.SkipUntilPass,
		}
	}
	a.order = append(a.order[:0], st.Order...)
	a.curs = st.Curs
	a.pass = st.Pass
	a.Stats = st.Stats
	if st.ZeroPFN >= 0 {
		pfn := mem.PFN(st.ZeroPFN)
		a.zeroPFN = &pfn
	} else {
		a.zeroPFN = nil
	}
	copy(a.maxCmp, st.MaxCmp)
	a.Stable.Import(st.Stable, func(pfn mem.PFN) interface{} {
		return stableItem{pfn: pfn}
	})
	// The unstable tree is structurally empty at every legal capture point;
	// importing still restores each shard's cumulative comparison counters.
	a.Unstable.Import(st.Unstable, nil)
	return nil
}
