// Package placement implements Memory Buddies-style sharing-aware VM
// colocation (Wood et al., VEE 2009), the paper's §7.2: each VM's memory
// is fingerprinted with a Bloom filter of page-content hashes; the sharing
// potential of two VMs is estimated from their filters without comparing a
// single page; and a greedy packer colocates the VMs that would
// deduplicate best together — which is what decides how much memory a
// PageForge-equipped host actually recovers.
package placement

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/esx"
	"repro/internal/vm"
)

// Fingerprint is a Bloom-filter summary of one VM's page contents.
type Fingerprint struct {
	VMID  int
	Pages int // resident pages fingerprinted

	bits   []uint64
	m      uint64 // filter size in bits
	k      int    // hash functions
	setCnt int    // cached popcount
}

// NewFingerprint allocates an empty filter of m bits with k hashes.
// m must be a multiple of 64.
func NewFingerprint(vmID int, m uint64, k int) *Fingerprint {
	if m == 0 || m%64 != 0 || k < 1 {
		panic(fmt.Sprintf("placement: bad filter geometry m=%d k=%d", m, k))
	}
	return &Fingerprint{VMID: vmID, bits: make([]uint64, m/64), m: m, k: k}
}

// add inserts a page-content hash.
func (f *Fingerprint) add(h uint64) {
	h1, h2 := uint32(h), uint32(h>>32)
	for i := 0; i < f.k; i++ {
		// Kirsch-Mitzenmacher double hashing.
		pos := (uint64(h1) + uint64(i)*uint64(h2|1)) % f.m
		word, bit := pos/64, pos%64
		if f.bits[word]&(1<<bit) == 0 {
			f.bits[word] |= 1 << bit
			f.setCnt++
		}
	}
}

// contains is used by tests; Bloom filters have no false negatives.
func (f *Fingerprint) contains(h uint64) bool {
	h1, h2 := uint32(h), uint32(h>>32)
	for i := 0; i < f.k; i++ {
		pos := (uint64(h1) + uint64(i)*uint64(h2|1)) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// cardinality estimates how many distinct items a filter with t set bits
// holds: n ≈ -(m/k) ln(1 - t/m).
func cardinality(m uint64, k int, setBits int) float64 {
	t := float64(setBits)
	fm := float64(m)
	if t >= fm {
		t = fm - 1
	}
	return -fm / float64(k) * math.Log(1-t/fm)
}

// FingerprintVM summarizes a VM's resident mergeable pages.
func FingerprintVM(hv *vm.Hypervisor, vmID int, m uint64, k int) *Fingerprint {
	f := NewFingerprint(vmID, m, k)
	v := hv.VM(vmID)
	for g := vm.GFN(0); int(g) < v.Pages(); g++ {
		if !v.Mergeable(g) {
			continue
		}
		pfn, ok := v.Resolve(g)
		if !ok {
			continue
		}
		f.add(esx.PageHash64(hv.Phys.Page(pfn)))
		f.Pages++
	}
	return f
}

// EstimateSharedDistinct estimates the number of *distinct page contents*
// two VMs have in common: |A∩B| ≈ n(A) + n(B) − n(A∪B), each term from the
// filter-cardinality formula.
func EstimateSharedDistinct(a, b *Fingerprint) float64 {
	if a.m != b.m || a.k != b.k {
		panic("placement: incompatible fingerprints")
	}
	unionBits := 0
	for i := range a.bits {
		unionBits += bits.OnesCount64(a.bits[i] | b.bits[i])
	}
	na := cardinality(a.m, a.k, a.setCnt)
	nb := cardinality(b.m, b.k, b.setCnt)
	nu := cardinality(a.m, a.k, unionBits)
	est := na + nb - nu
	if est < 0 {
		return 0
	}
	return est
}

// ExactSharedDistinct counts the ground truth (distinct contents present
// in both VMs) for validating the estimator.
func ExactSharedDistinct(hv *vm.Hypervisor, aID, bID int) int {
	seen := map[uint64]bool{}
	va := hv.VM(aID)
	for g := vm.GFN(0); int(g) < va.Pages(); g++ {
		if pfn, ok := va.Resolve(g); ok && va.Mergeable(g) {
			seen[esx.PageHash64(hv.Phys.Page(pfn))] = true
		}
	}
	shared := map[uint64]bool{}
	vb := hv.VM(bID)
	for g := vm.GFN(0); int(g) < vb.Pages(); g++ {
		if pfn, ok := vb.Resolve(g); ok && vb.Mergeable(g) {
			if h := esx.PageHash64(hv.Phys.Page(pfn)); seen[h] {
				shared[h] = true
			}
		}
	}
	return len(shared)
}

// Assignment maps host index -> VM IDs placed there.
type Assignment [][]int

// Colocate packs the fingerprinted VMs onto hosts of the given capacity
// (VMs per host), greedily adding to each host the VM with the highest
// estimated sharing against the host's current occupants.
func Colocate(fps []*Fingerprint, perHost int) Assignment {
	if perHost < 1 {
		panic("placement: perHost must be >= 1")
	}
	remaining := append([]*Fingerprint(nil), fps...)
	// Deterministic seed order: largest VM first.
	sort.Slice(remaining, func(i, j int) bool {
		if remaining[i].Pages != remaining[j].Pages {
			return remaining[i].Pages > remaining[j].Pages
		}
		return remaining[i].VMID < remaining[j].VMID
	})
	var hosts Assignment
	for len(remaining) > 0 {
		// Seed a host with the biggest remaining VM.
		host := []*Fingerprint{remaining[0]}
		remaining = remaining[1:]
		for len(host) < perHost && len(remaining) > 0 {
			best, bestScore := 0, -1.0
			for i, cand := range remaining {
				score := 0.0
				for _, placed := range host {
					score += EstimateSharedDistinct(placed, cand)
				}
				if score > bestScore {
					best, bestScore = i, score
				}
			}
			host = append(host, remaining[best])
			remaining = append(remaining[:best], remaining[best+1:]...)
		}
		ids := make([]int, len(host))
		for i, f := range host {
			ids[i] = f.VMID
		}
		sort.Ints(ids)
		hosts = append(hosts, ids)
	}
	return hosts
}
