package placement

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/tailbench"
	"repro/internal/vm"
)

// build creates VMs whose pages carry the given content ids.
func build(t *testing.T, frames int, contents ...[]int) *vm.Hypervisor {
	t.Helper()
	h := vm.NewHypervisor(uint64(frames) * mem.PageSize)
	page := make([]byte, mem.PageSize)
	for _, cs := range contents {
		v := h.NewVM(uint64(len(cs)) * mem.PageSize)
		v.Madvise(0, len(cs), true)
		for g, c := range cs {
			for i := range page {
				page[i] = byte(c + i%7)
			}
			page[0] = byte(c)
			page[1] = byte(c >> 8)
			if _, err := v.Write(vm.GFN(g), 0, page); err != nil {
				t.Fatal(err)
			}
		}
	}
	return h
}

func TestBloomNoFalseNegatives(t *testing.T) {
	f := NewFingerprint(0, 1<<12, 4)
	r := sim.NewRNG(1)
	var hs []uint64
	for i := 0; i < 200; i++ {
		h := r.Uint64()
		hs = append(hs, h)
		f.add(h)
	}
	for _, h := range hs {
		if !f.contains(h) {
			t.Fatal("false negative")
		}
	}
}

func TestEstimatorTracksExactSharing(t *testing.T) {
	// VM0 and VM1 share 30 of 50 contents; VM2 shares nothing.
	mk := func(base, n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = base + i
		}
		return out
	}
	a := mk(1000, 50)
	b := append(mk(1000, 30), mk(5000, 20)...)
	c := mk(9000, 50)
	h := build(t, 512, a, b, c)

	fps := []*Fingerprint{
		FingerprintVM(h, 0, 1<<14, 4),
		FingerprintVM(h, 1, 1<<14, 4),
		FingerprintVM(h, 2, 1<<14, 4),
	}
	estAB := EstimateSharedDistinct(fps[0], fps[1])
	exactAB := float64(ExactSharedDistinct(h, 0, 1))
	if math.Abs(estAB-exactAB) > 0.2*exactAB+3 {
		t.Fatalf("estimate %g vs exact %g", estAB, exactAB)
	}
	estAC := EstimateSharedDistinct(fps[0], fps[2])
	if estAC > 5 {
		t.Fatalf("disjoint VMs estimated to share %g pages", estAC)
	}
}

func TestColocateGroupsByAppImage(t *testing.T) {
	// Six VMs: 0,1,2 run app X (identical library pages), 3,4,5 app Y.
	mk := func(base int) []int {
		out := make([]int, 40)
		for i := range out {
			out[i] = base + i
		}
		return out
	}
	h := build(t, 1024, mk(100), mk(100), mk(100), mk(700), mk(700), mk(700))
	var fps []*Fingerprint
	for i := 0; i < 6; i++ {
		fps = append(fps, FingerprintVM(h, i, 1<<14, 4))
	}
	hosts := Colocate(fps, 3)
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	// Each host must hold one whole app group.
	for _, host := range hosts {
		base := host[0] / 3
		for _, id := range host {
			if id/3 != base {
				t.Fatalf("mixed placement: %v", hosts)
			}
		}
	}
}

func TestColocateOnTailbenchImages(t *testing.T) {
	// Two different application deployments in one pool: the packer should
	// pair same-app VMs (their library pages are identical).
	appA := *tailbench.ProfileByName("img_dnn")
	appA.PagesPerVM = 120
	appB := *tailbench.ProfileByName("silo")
	appB.PagesPerVM = 120

	// Build a pool hypervisor manually: 2 VMs of each app's image, by
	// copying the images' page contents into fresh VMs of one hypervisor.
	imgA, err := tailbench.BuildImage(appA, 2, 2*120*2, 4)
	if err != nil {
		t.Fatal(err)
	}
	imgB, err := tailbench.BuildImage(appB, 2, 2*120*2, 9)
	if err != nil {
		t.Fatal(err)
	}
	pool := vm.NewHypervisor(4 * 120 * 2 * mem.PageSize)
	copyVM := func(src *vm.Hypervisor, id int) {
		v := pool.NewVM(120 * mem.PageSize)
		v.Madvise(0, 120, true)
		for g := vm.GFN(0); g < 120; g++ {
			if pfn, ok := src.VM(id).Resolve(g); ok {
				if _, err := v.Write(g, 0, src.Phys.Page(pfn)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	copyVM(imgA.HV, 0) // pool VM 0: app A
	copyVM(imgB.HV, 0) // pool VM 1: app B
	copyVM(imgA.HV, 1) // pool VM 2: app A
	copyVM(imgB.HV, 1) // pool VM 3: app B

	var fps []*Fingerprint
	for i := 0; i < 4; i++ {
		fps = append(fps, FingerprintVM(pool, i, 1<<15, 4))
	}
	hosts := Colocate(fps, 2)
	if len(hosts) != 2 {
		t.Fatalf("hosts = %v", hosts)
	}
	for _, host := range hosts {
		if (host[0]%2 == 0) != (host[1]%2 == 0) {
			t.Fatalf("sharing-oblivious placement: %v", hosts)
		}
	}
}

func TestColocateHandlesOddCounts(t *testing.T) {
	h := build(t, 256, []int{1}, []int{2}, []int{3})
	var fps []*Fingerprint
	for i := 0; i < 3; i++ {
		fps = append(fps, FingerprintVM(h, i, 1<<10, 3))
	}
	hosts := Colocate(fps, 2)
	total := 0
	for _, host := range hosts {
		total += len(host)
		if len(host) > 2 {
			t.Fatalf("host over capacity: %v", hosts)
		}
	}
	if total != 3 {
		t.Fatalf("VMs lost: %v", hosts)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewFingerprint(0, 100, 4) }, // not multiple of 64
		func() { NewFingerprint(0, 0, 4) },
		func() { NewFingerprint(0, 128, 0) },
		func() { Colocate(nil, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad input accepted")
				}
			}()
			fn()
		}()
	}
}

func TestIncompatibleFingerprintsPanic(t *testing.T) {
	a := NewFingerprint(0, 128, 2)
	b := NewFingerprint(1, 256, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("incompatible filters accepted")
		}
	}()
	EstimateSharedDistinct(a, b)
}

func TestFingerprintSkipsUnbacked(t *testing.T) {
	h := vm.NewHypervisor(16 * mem.PageSize)
	v := h.NewVM(4 * mem.PageSize)
	v.Madvise(0, 4, true)
	v.Write(0, 0, bytes.Repeat([]byte{1}, mem.PageSize))
	f := FingerprintVM(h, 0, 1<<10, 3)
	if f.Pages != 1 {
		t.Fatalf("Pages = %d, want 1", f.Pages)
	}
}
