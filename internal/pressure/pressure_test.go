package pressure

import (
	"reflect"
	"testing"
)

// TestWatermarkHysteresis drives the controller across the thresholds and
// pins that escalation is immediate while de-escalation needs the
// hysteresis gap cleared.
func TestWatermarkHysteresis(t *testing.T) {
	cfg := DefaultConfig() // Low .25 / Min .10 / Critical .03, hysteresis .04
	c := NewController(cfg)
	steps := []struct {
		free int // out of 100
		want Level
	}{
		{50, LevelNone},
		{24, LevelLow},     // crossed low going down: immediate
		{9, LevelMin},      // crossed min
		{2, LevelCritical}, // crossed critical
		{4, LevelCritical}, // above critical but inside the +4% gap: holds
		{8, LevelMin},      // 8% clears 3%+4%: drops to the raw level for 8% free
		{12, LevelMin},     // above min but inside gap (10%+4%): holds
		{15, LevelLow},     // 15% clears 14%: drops to low's band
		{26, LevelLow},     // above low but inside gap (25%+4%): holds
		{30, LevelNone},    // clear of 29%: fully recovered
		{1, LevelCritical}, // re-escalation skips intermediate rungs
		// De-escalation is not streak-based (the ladder handles dwell
		// time): a single clearly-healthy reading drops the level.
		{99, LevelNone},
	}
	for i, s := range steps {
		if got := c.ObserveFree(s.free, 100); got != s.want {
			t.Fatalf("step %d (free=%d): level = %v, want %v", i, s.free, got, s.want)
		}
	}
}

// TestLatencyThrottleHysteresis pins the latency backpressure: trip above
// LatTrip, clear below LatClear, and suspension at critical pressure.
func TestLatencyThrottleHysteresis(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LatAlpha = 1 // raw samples drive the ratio directly
	c := NewController(cfg)
	c.ObserveLatency(100) // baseline
	if c.Throttled() {
		t.Fatal("throttled at baseline")
	}
	c.ObserveLatency(140) // ratio 1.4 < 1.5: no trip
	if c.Throttled() {
		t.Fatal("tripped below LatTrip")
	}
	c.ObserveLatency(160) // 1.6 > 1.5: trip
	if !c.Throttled() {
		t.Fatal("did not trip above LatTrip")
	}
	c.ObserveLatency(130) // 1.3: inside band, holds
	if !c.Throttled() {
		t.Fatal("cleared inside the hysteresis band")
	}
	c.ObserveLatency(110) // 1.1 < 1.15: clears
	if c.Throttled() {
		t.Fatal("did not clear below LatClear")
	}

	// At critical pressure the throttle is suspended: reclaim outranks tail
	// latency when the next allocation would fail.
	c.ObserveFree(1, 100)
	c.ObserveLatency(300)
	if c.Throttled() {
		t.Fatal("throttled at critical pressure")
	}
	c.ObserveFree(90, 100) // pressure clears...
	c.ObserveLatency(300)  // ...and the same latency now trips
	if !c.Throttled() {
		t.Fatal("throttle stayed suspended after pressure cleared")
	}
}

// TestScanScaling pins the budget/worker outputs in each controller state.
func TestScanScaling(t *testing.T) {
	cfg := DefaultConfig() // boost 2x, shed 0.5x, +2 workers
	c := NewController(cfg)
	if got := c.ScanBudget(400); got != 400 {
		t.Fatalf("healthy budget = %d", got)
	}
	if got := c.ScanWorkers(2); got != 2 {
		t.Fatalf("healthy workers = %d", got)
	}
	c.ObserveFree(5, 100) // min pressure
	if got := c.ScanBudget(400); got != 800 {
		t.Fatalf("boosted budget = %d, want 800", got)
	}
	if got := c.ScanWorkers(2); got != 4 {
		t.Fatalf("boosted workers = %d, want 4", got)
	}
	if got := c.ScanWorkers(0); got != 0 {
		t.Fatal("worker boost switched on parallel scanning implicitly")
	}
	// Latency throttling overrides the boost.
	c.ObserveLatency(100)
	c.ObserveLatency(100_000)
	if !c.Throttled() {
		t.Fatal("not throttled")
	}
	if got := c.ScanBudget(400); got != 200 {
		t.Fatalf("shed budget = %d, want 200", got)
	}
	if got := c.ScanBudget(1); got != 1 {
		t.Fatal("shed budget dropped below 1")
	}
	if got := c.ScanWorkers(2); got != 2 {
		t.Fatalf("throttled workers = %d, want base", got)
	}
}

// TestLadderTableDriven scripts full down-and-back trajectories through
// the ladder and pins every transition.
func TestLadderTableDriven(t *testing.T) {
	cfg := LadderConfig{
		UETrip: 0.01, UEClear: 0.001,
		FailTrip: 0.02, FailClear: 0.01,
		LatTrip: 2.0, LatClear: 1.25,
		Alpha:       1, // raw fail rates drive the signal directly
		ClearPasses: 2,
	}
	healthy := Signal{LatRatio: 1}
	failing := Signal{FailRate: 0.5, LatRatio: 1}
	cases := []struct {
		name    string
		signals []Signal
		want    []Transition
		final   State
	}{
		{
			name:    "storm escalates one rung per window to the floor",
			signals: []Signal{failing, failing, failing, failing, failing},
			want: []Transition{
				{0, Healthy, Throttled, "alloc-fail"},
				{1, Throttled, KSMFallback, "alloc-fail"},
				{2, KSMFallback, ScanPaused, "alloc-fail"},
				// rungs exhausted: further tripped windows hold ScanPaused
			},
			final: ScanPaused,
		},
		{
			name: "recovery climbs back one rung per ClearPasses streak",
			signals: []Signal{
				failing, failing, failing, // down to ScanPaused
				healthy, healthy, // streak 2 → KSMFallback
				healthy, healthy, // → Throttled
				healthy, healthy, // → Healthy
			},
			want: []Transition{
				{0, Healthy, Throttled, "alloc-fail"},
				{1, Throttled, KSMFallback, "alloc-fail"},
				{2, KSMFallback, ScanPaused, "alloc-fail"},
				{4, ScanPaused, KSMFallback, "recovered"},
				{6, KSMFallback, Throttled, "recovered"},
				{8, Throttled, Healthy, "recovered"},
			},
			final: Healthy,
		},
		{
			name: "hysteresis band holds the rung and resets the streak",
			signals: []Signal{
				failing,                        // → Throttled
				healthy,                        // streak 1
				{FailRate: 0.015, LatRatio: 1}, // between clear and trip: hold, reset
				healthy, healthy,               // fresh streak 2 → Healthy
			},
			want: []Transition{
				{0, Healthy, Throttled, "alloc-fail"},
				{4, Throttled, Healthy, "recovered"},
			},
			final: Healthy,
		},
		{
			name: "signal priority names the worst cause",
			signals: []Signal{
				{UERate: 0.5, LatRatio: 1},              // ue-rate
				{LatRatio: 5},                           // latency
				{FailRate: 0.5, UERate: 1, LatRatio: 9}, // alloc-fail wins
			},
			want: []Transition{
				{0, Healthy, Throttled, "ue-rate"},
				{1, Throttled, KSMFallback, "latency"},
				{2, KSMFallback, ScanPaused, "alloc-fail"},
			},
			final: ScanPaused,
		},
		{
			name:    "healthy run records nothing",
			signals: []Signal{healthy, healthy, healthy},
			want:    nil,
			final:   Healthy,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l := NewLadder(cfg)
			for p, sig := range tc.signals {
				l.Observe(p, sig)
			}
			if l.State() != tc.final {
				t.Fatalf("final state = %v, want %v", l.State(), tc.final)
			}
			if !reflect.DeepEqual(l.Transitions(), tc.want) {
				t.Fatalf("transitions = %v, want %v", l.Transitions(), tc.want)
			}
		})
	}
}

// TestLadderPath pins the trajectory rendering.
func TestLadderPath(t *testing.T) {
	l := NewLadder(LadderConfig{FailTrip: 0.02, FailClear: 0.01, Alpha: 1, ClearPasses: 1,
		UETrip: 1, UEClear: 0.5, LatTrip: 10, LatClear: 5})
	if l.Path() != "healthy" {
		t.Fatalf("idle path = %q", l.Path())
	}
	l.Observe(0, Signal{FailRate: 1})
	l.Observe(1, Signal{})
	if l.Path() != "healthy→throttled→healthy" {
		t.Fatalf("path = %q", l.Path())
	}
}

// TestLadderDeterminism: identical observation sequences produce deeply
// equal transition lists.
func TestLadderDeterminism(t *testing.T) {
	run := func() []Transition {
		l := NewLadder(DefaultLadderConfig())
		sigs := []Signal{
			{FailRate: 0.4, LatRatio: 1}, {FailRate: 0.3, LatRatio: 1.1},
			{LatRatio: 1}, {LatRatio: 1}, {LatRatio: 1}, {LatRatio: 1},
			{LatRatio: 1}, {LatRatio: 1}, {LatRatio: 1}, {LatRatio: 1},
		}
		for p, s := range sigs {
			l.Observe(p, s)
		}
		return l.Transitions()
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("same observations produced different transitions")
	}
}
