// Package pressure implements the memory-pressure resilience policy layer:
// free-frame watermark levels, a scan-backpressure controller that trades
// merge throughput against demand-path tail latency, and a reversible
// degradation ladder driven by EWMA health signals. Everything here is pure
// policy over plain numbers — no simulation state, no randomness, no wall
// clock — so identical observation sequences produce identical decisions,
// which is what lets the platform pin same-seed runs bit-identical while
// ballooning and throttling are active.
package pressure

import "fmt"

// Level is the free-frame pressure level derived from the watermarks.
type Level int

// Pressure levels, ordered by severity. The names follow the kernel's zone
// watermark vocabulary: below the low watermark background reclaim (more
// aggressive scanning — merging is reclaim) kicks in; below min, demand
// allocations start stalling; below critical, the balloon reclaims
// proactively and latency-shedding is suspended (freeing frames outranks
// tail latency when the next allocation would fail).
const (
	LevelNone Level = iota
	LevelLow
	LevelMin
	LevelCritical
)

// String renders the level.
func (l Level) String() string {
	switch l {
	case LevelNone:
		return "none"
	case LevelLow:
		return "low"
	case LevelMin:
		return "min"
	case LevelCritical:
		return "critical"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Watermarks are free-frame fraction thresholds: the level escalates the
// moment the free fraction falls below a threshold, but de-escalates only
// once it exceeds the threshold plus Hysteresis — allocation and reclaim
// race around the watermark, and the gap keeps the level from flapping
// every pass.
type Watermarks struct {
	Low      float64
	Min      float64
	Critical float64
	// Hysteresis is the extra free fraction required before a level drops.
	Hysteresis float64
}

// DefaultWatermarks places the thresholds at 25% / 10% / 3% free with a 4%
// re-arm gap.
func DefaultWatermarks() Watermarks {
	return Watermarks{Low: 0.25, Min: 0.10, Critical: 0.03, Hysteresis: 0.04}
}

// levelOf maps a free fraction to its raw (hysteresis-free) level.
func (w Watermarks) levelOf(freeFrac float64) Level {
	switch {
	case freeFrac < w.Critical:
		return LevelCritical
	case freeFrac < w.Min:
		return LevelMin
	case freeFrac < w.Low:
		return LevelLow
	default:
		return LevelNone
	}
}

// Config carries every knob of the resilience layer, plus the storm the
// platform synthesizes to exercise it. The zero value disables everything.
type Config struct {
	// Enabled arms the layer: overcommitted arena sizing, the stall/balloon
	// reclaim path, watermark backpressure, and the degradation ladder.
	Enabled bool

	// OvercommitRatio is guest demand (resident image + burst region) over
	// host frame capacity; > 1 sizes the arena below demand. 0 or 1 keeps
	// the default (comfortable) arena sizing.
	OvercommitRatio float64

	// Allocation-burst storm schedule, in convergence passes: starting at
	// pass BurstStart, every VM writes BurstPages fresh pages per pass for
	// BurstPasses passes (serverless cold-start: near-identical sandboxes
	// spiking allocation), then tears the burst region down. BurstDupFrac
	// of the writes draw contents from a small shared pool — duplicates the
	// scanner can merge away, which is exactly the reclaim race the paper's
	// consolidation story is about.
	BurstStart   int
	BurstPasses  int
	BurstPages   int
	BurstDupFrac float64

	Watermarks Watermarks

	// BoostBudget multiplies the per-interval scan-page budget while the
	// level is at or above LevelMin (merging is reclaim); ShedBudget
	// multiplies it while the controller is latency-throttled or the ladder
	// sits on its throttled rung. BoostWorkers adds scan-pass workers under
	// the same high-pressure condition.
	BoostBudget  float64
	ShedBudget   float64
	BoostWorkers int

	// Demand-path p99 latency backpressure: the smoothed p99, as a ratio
	// over the first measured baseline, trips throttling above LatTrip and
	// clears below LatClear (LatClear < LatTrip gives the hysteresis band).
	LatAlpha float64
	LatTrip  float64
	LatClear float64

	// Stall-and-retry policy for failed guest-path allocations: each retry
	// costs StallCycles of simulated backoff and one balloon reclaim of up
	// to BalloonBatch frames; after MaxStallRetries the failure propagates
	// as an error (the run aborts rather than hangs — boundedness is the
	// no-deadlock guarantee).
	StallCycles     uint64
	MaxStallRetries int
	BalloonBatch    int

	Ladder LadderConfig
}

// DefaultConfig returns the policy defaults with Enabled left false; the
// caller arms it and sets the overcommit/storm shape.
func DefaultConfig() Config {
	return Config{
		Watermarks:      DefaultWatermarks(),
		BoostBudget:     2,
		ShedBudget:      0.5,
		BoostWorkers:    2,
		LatAlpha:        0.4,
		LatTrip:         1.5,
		LatClear:        1.15,
		StallCycles:     20_000,
		MaxStallRetries: 8,
		// One balloon batch covers the next BalloonBatch-1 allocations, so
		// under persistent exhaustion the alloc-failure rate settles near
		// 1/BalloonBatch; 16 keeps that comfortably above FailTrip, so a
		// storm that leans on the balloon every pass is visible to the
		// ladder rather than laundered away by huge reclaim batches.
		BalloonBatch: 16,
		Ladder:       DefaultLadderConfig(),
	}
}

// Controller folds free-frame and latency observations into the two
// backpressure outputs: the watermark level (with de-escalation hysteresis)
// and the latency-throttle flag. The two signals pull the scan budget in
// opposite directions — pressure wants more scanning, latency wants less —
// and the tie-break is severity: at LevelCritical the throttle is
// suspended, because a failed allocation costs more than a slow one.
type Controller struct {
	cfg Config

	level     Level
	throttled bool

	latBase   float64
	latEWMA   float64
	latSeeded bool

	// Throttles counts observation points spent in the throttled state.
	Throttles uint64
}

// NewController builds a controller over the config's watermark and
// latency policy.
func NewController(cfg Config) *Controller { return &Controller{cfg: cfg} }

// ObserveFree feeds one free-frame observation and returns the (possibly
// escalated or de-escalated) level. Escalation is immediate; de-escalation
// requires the free fraction to clear the current level's threshold by the
// hysteresis gap.
func (c *Controller) ObserveFree(free, total int) Level {
	if total <= 0 {
		return c.level
	}
	f := float64(free) / float64(total)
	raw := c.cfg.Watermarks.levelOf(f)
	if raw >= c.level {
		c.level = raw
		return c.level
	}
	// Pretend we have Hysteresis less free than we do: only if even that
	// pessimistic reading sits below the current level does the level drop.
	pess := c.cfg.Watermarks.levelOf(f - c.cfg.Watermarks.Hysteresis)
	if pess < c.level {
		c.level = pess
	}
	return c.level
}

// ObserveLatency feeds one demand-path p99 sample (cycles). The first
// sample seeds the baseline; later samples update the EWMA and flip the
// throttle with hysteresis. Zero samples (empty histogram) are ignored.
func (c *Controller) ObserveLatency(p99 float64) {
	if p99 <= 0 {
		return
	}
	if !c.latSeeded {
		c.latBase, c.latEWMA, c.latSeeded = p99, p99, true
		return
	}
	c.latEWMA += c.cfg.LatAlpha * (p99 - c.latEWMA)
	r := c.latEWMA / c.latBase
	switch {
	case !c.throttled && r > c.cfg.LatTrip && c.level < LevelCritical:
		c.throttled = true
	case c.throttled && (r < c.cfg.LatClear || c.level >= LevelCritical):
		c.throttled = false
	}
	if c.throttled {
		c.Throttles++
	}
}

// Level reports the current watermark level.
func (c *Controller) Level() Level { return c.level }

// Throttled reports whether the latency backpressure is shedding scan work.
func (c *Controller) Throttled() bool { return c.throttled }

// LatRatio reports the smoothed p99 over the baseline (1 before seeding).
func (c *Controller) LatRatio() float64 {
	if !c.latSeeded || c.latBase <= 0 {
		return 1
	}
	return c.latEWMA / c.latBase
}

// ScanBudget scales a per-interval page budget: shed under latency
// throttling, boost at LevelMin and above, unchanged otherwise. The result
// never drops below 1 — a starving scanner can't reclaim anything.
func (c *Controller) ScanBudget(base int) int {
	if base <= 0 {
		return base
	}
	switch {
	case c.throttled:
		b := int(float64(base) * c.cfg.ShedBudget)
		if b < 1 {
			b = 1
		}
		return b
	case c.level >= LevelMin:
		return int(float64(base) * c.cfg.BoostBudget)
	default:
		return base
	}
}

// ScanWorkers scales a scan-pass worker count: extra workers at LevelMin
// and above (unless throttled). A base of 0 (sequential scanning) is
// preserved — worker fan-out never switches on implicitly, because the
// parallel pass is bit-identical but a different code path.
func (c *Controller) ScanWorkers(base int) int {
	if base <= 0 {
		return base
	}
	if c.level >= LevelMin && !c.throttled {
		return base + c.cfg.BoostWorkers
	}
	return base
}
