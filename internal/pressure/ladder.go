package pressure

import "fmt"

// State is a rung of the degradation ladder. It generalizes the one-way
// PageForge→KSM trip of faults.Trip into a four-rung, fully reversible
// state machine:
//
//	Healthy → Throttled → KSMFallback → ScanPaused
//
// Each escalation sheds one more capability: Throttled halves the scan
// budget, KSMFallback demotes the hardware engine to the software scanner
// (same algorithm state, like the RAS trip), ScanPaused stops scanning
// entirely. Every rung is reversible: after ClearPasses consecutive
// all-clear observation windows the ladder steps back up one rung.
type State int

// Ladder rungs, ordered by severity.
const (
	Healthy State = iota
	Throttled
	KSMFallback
	ScanPaused
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Throttled:
		return "throttled"
	case KSMFallback:
		return "ksm-fallback"
	case ScanPaused:
		return "scan-paused"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// LadderConfig is the transition policy: per-signal trip/clear thresholds
// (clear < trip gives each signal a hysteresis band) and the re-arm streak
// length.
type LadderConfig struct {
	// UETrip/UEClear bound the smoothed uncorrectable-error rate (the
	// faults.RateTracker estimate, already EWMA-smoothed).
	UETrip  float64
	UEClear float64
	// FailTrip/FailClear bound the alloc-failure rate: the fraction of
	// guest-path frame allocations that entered the stall path, smoothed
	// here with Alpha.
	FailTrip  float64
	FailClear float64
	// LatTrip/LatClear bound the p99 demand-latency ratio over baseline
	// (the controller's EWMA ratio).
	LatTrip  float64
	LatClear float64
	// Alpha is the EWMA weight for the alloc-failure signal.
	Alpha float64
	// ClearPasses is the number of consecutive all-clear windows required
	// per de-escalation rung.
	ClearPasses int
}

// DefaultLadderConfig mirrors the faults.DefaultTrip UE policy and adds
// the allocation and latency signals.
func DefaultLadderConfig() LadderConfig {
	return LadderConfig{
		UETrip: 0.01, UEClear: 0.001,
		FailTrip: 0.02, FailClear: 0.01,
		LatTrip: 2.0, LatClear: 1.25,
		Alpha:       0.6,
		ClearPasses: 2,
	}
}

// Signal is one observation window's health inputs.
type Signal struct {
	UERate   float64 // smoothed UEs per fetch
	FailRate float64 // raw alloc-failure fraction this window
	LatRatio float64 // smoothed p99 over baseline
}

// Transition records one ladder move, stamped with the converge pass (or
// measure interval offset) that drove it. Cause names the signal that
// forced an escalation, or "recovered" for a de-escalation.
type Transition struct {
	Pass  int
	From  State
	To    State
	Cause string
}

// String renders the transition.
func (t Transition) String() string {
	return fmt.Sprintf("pass %d: %s→%s (%s)", t.Pass, t.From, t.To, t.Cause)
}

// Ladder is the degradation state machine. Observe drives it one window at
// a time; it moves at most one rung per window in either direction, so a
// storm's escalation depth and the recovery path are both readable off the
// transition list.
type Ladder struct {
	cfg LadderConfig

	state       State
	failEWMA    float64
	failSeeded  bool
	clearStreak int
	transitions []Transition
}

// NewLadder builds a ladder in the Healthy state.
func NewLadder(cfg LadderConfig) *Ladder {
	if cfg.ClearPasses <= 0 {
		cfg.ClearPasses = DefaultLadderConfig().ClearPasses
	}
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		cfg.Alpha = DefaultLadderConfig().Alpha
	}
	return &Ladder{cfg: cfg}
}

// Observe feeds one window and returns the (possibly changed) state.
// Escalation: any signal above its trip threshold moves one rung down the
// ladder and resets the recovery streak. De-escalation: all signals below
// their clear thresholds for ClearPasses consecutive windows moves one
// rung back up. Windows in a signal's hysteresis band (between clear and
// trip) hold the current rung and reset the streak — partial health is not
// recovery.
func (l *Ladder) Observe(pass int, sig Signal) State {
	if !l.failSeeded {
		l.failEWMA = sig.FailRate
		l.failSeeded = true
	} else {
		l.failEWMA += l.cfg.Alpha * (sig.FailRate - l.failEWMA)
	}

	cause := ""
	switch {
	case l.failEWMA > l.cfg.FailTrip:
		cause = "alloc-fail"
	case sig.UERate > l.cfg.UETrip:
		cause = "ue-rate"
	case sig.LatRatio > l.cfg.LatTrip:
		cause = "latency"
	}
	if cause != "" {
		l.clearStreak = 0
		if l.state < ScanPaused {
			l.move(pass, l.state+1, cause)
		}
		return l.state
	}

	clear := l.failEWMA < l.cfg.FailClear &&
		sig.UERate < l.cfg.UEClear &&
		sig.LatRatio < l.cfg.LatClear
	if !clear {
		l.clearStreak = 0
		return l.state
	}
	if l.state == Healthy {
		return l.state
	}
	l.clearStreak++
	if l.clearStreak >= l.cfg.ClearPasses {
		l.clearStreak = 0
		l.move(pass, l.state-1, "recovered")
	}
	return l.state
}

func (l *Ladder) move(pass int, to State, cause string) {
	l.transitions = append(l.transitions, Transition{Pass: pass, From: l.state, To: to, Cause: cause})
	l.state = to
}

// State reports the current rung.
func (l *Ladder) State() State { return l.state }

// FailEWMA reports the smoothed alloc-failure rate.
func (l *Ladder) FailEWMA() float64 { return l.failEWMA }

// Transitions returns the recorded moves in order.
func (l *Ladder) Transitions() []Transition { return l.transitions }

// Path renders the full trajectory compactly, e.g.
// "healthy→throttled→ksm-fallback→throttled→healthy".
func (l *Ladder) Path() string {
	s := Healthy.String()
	for _, t := range l.transitions {
		s += "→" + t.To.String()
	}
	return s
}

// Report is the pressure layer's end-of-run summary, embedded in
// platform.Result. All fields are plain data: two same-seed runs must
// produce deeply-equal Reports (the acceptance bar for determinism).
type Report struct {
	Enabled bool

	// Transitions is the full ladder trajectory with pass stamps; Final is
	// the rung at end of run; Path is the human-readable trajectory.
	Transitions []Transition
	Final       State
	Path        string
	// Recovered reports a run that left Healthy and returned to it.
	Recovered bool

	// AllocStalls counts guest-path allocation failures that entered the
	// stall/reclaim path; BalloonInflated is guest pages the balloon
	// released from victim VMs; BalloonReclaimed is frames those releases
	// actually freed.
	AllocStalls      uint64
	BalloonInflated  uint64
	BalloonReclaimed uint64

	// ThrottledPoints counts observation windows spent latency-throttled;
	// PausedPasses counts scan passes skipped on the ScanPaused rung;
	// BurstPages is the total storm pages written.
	ThrottledPoints uint64
	PausedPasses    uint64
	BurstPages      uint64

	// TotalFrames is the (possibly overcommitted) arena size;
	// MinFreeFrames is the low-water mark of the freelist; FinalLevel the
	// watermark level at end of run.
	TotalFrames   int
	MinFreeFrames int
	FinalLevel    Level
}
