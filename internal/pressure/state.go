package pressure

// Checkpoint support: both policy objects are pure state machines over
// plain numbers, so their images are field-for-field copies.

// ControllerState is the serialized image of a Controller.
type ControllerState struct {
	Level     Level
	Throttled bool
	LatBase   float64
	LatEWMA   float64
	LatSeeded bool
	Throttles uint64
}

// State captures the controller.
func (c *Controller) State() ControllerState {
	return ControllerState{
		Level:     c.level,
		Throttled: c.throttled,
		LatBase:   c.latBase,
		LatEWMA:   c.latEWMA,
		LatSeeded: c.latSeeded,
		Throttles: c.Throttles,
	}
}

// SetState restores the controller in place.
func (c *Controller) SetState(st ControllerState) {
	c.level = st.Level
	c.throttled = st.Throttled
	c.latBase = st.LatBase
	c.latEWMA = st.LatEWMA
	c.latSeeded = st.LatSeeded
	c.Throttles = st.Throttles
}

// LadderState is the serialized image of a Ladder.
type LadderState struct {
	State       State
	FailEWMA    float64
	FailSeeded  bool
	ClearStreak int
	Transitions []Transition
}

// State captures the ladder.
func (l *Ladder) CaptureState() LadderState {
	return LadderState{
		State:       l.state,
		FailEWMA:    l.failEWMA,
		FailSeeded:  l.failSeeded,
		ClearStreak: l.clearStreak,
		Transitions: append([]Transition(nil), l.transitions...),
	}
}

// SetState restores the ladder in place.
func (l *Ladder) SetState(st LadderState) {
	l.state = st.State
	l.failEWMA = st.FailEWMA
	l.failSeeded = st.FailSeeded
	l.clearStreak = st.ClearStreak
	l.transitions = append(l.transitions[:0], st.Transitions...)
}

// Force moves the ladder directly to the given rung, recording the
// transition with the supplied cause. Crash recovery uses it when the
// restored dedup index cannot be verified and the platform demotes to the
// software scanner outside the normal signal-driven path. A no-op when the
// ladder is already on that rung.
func (l *Ladder) Force(pass int, to State, cause string) State {
	if to == l.state {
		return l.state
	}
	l.clearStreak = 0
	l.move(pass, to, cause)
	return l.state
}
