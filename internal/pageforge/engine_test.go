package pageforge

import (
	"bytes"
	"testing"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// rig is a memory controller + physical memory test fixture.
type rig struct {
	phys *mem.Phys
	mc   *memctrl.Controller
	eng  *Engine
}

func newRig(frames int) *rig {
	phys := mem.New(uint64(frames) * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	return &rig{phys: phys, mc: mc, eng: NewEngine(mc)}
}

// page allocates a frame with every byte set to id, except pages[0]=seq to
// make contents ordered by (id, seq).
func (r *rig) page(id byte) mem.PFN {
	pfn, err := r.phys.Alloc()
	if err != nil {
		panic(err)
	}
	pg := r.phys.Page(pfn)
	for i := range pg {
		pg[i] = id
	}
	return pfn
}

// run triggers and waits for completion, mimicking one OS poll cycle.
func (r *rig) run(now uint64) (PFEInfo, uint64) {
	r.eng.Trigger(now)
	done := r.eng.DoneAt()
	return r.eng.GetPFEInfo(done), done
}

func TestSingleEntryDuplicateDetected(t *testing.T) {
	r := newRig(8)
	cand := r.page(5)
	other := r.page(5)
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, true, 0)
	info, _ := r.run(0)
	if !info.Scanned || !info.Duplicate {
		t.Fatalf("info = %v, want S+D", info)
	}
	if info.Ptr != 0 {
		t.Fatalf("Ptr = %d, want matched entry 0", info.Ptr)
	}
	if r.eng.Duplicates != 1 || r.eng.PagesCompared != 1 {
		t.Fatalf("stats dup=%d cmp=%d", r.eng.Duplicates, r.eng.PagesCompared)
	}
}

func TestSingleEntryMismatchSetsOnlyScanned(t *testing.T) {
	r := newRig(8)
	cand := r.page(5)
	other := r.page(9)
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, true, 0)
	info, _ := r.run(0)
	if !info.Scanned || info.Duplicate {
		t.Fatalf("info = %v, want S only", info)
	}
	// 5 < 9: traversal followed Less, which is invalid.
	if info.Ptr != InvalidIndex {
		t.Fatalf("Ptr = %d, want InvalidIndex", info.Ptr)
	}
}

func TestTreeTraversalFollowsLessMore(t *testing.T) {
	// Figure 2's example: a tree with the candidate matching a node two
	// levels down. Layout entries as the Scan Table in Figure 2(b).
	r := newRig(16)
	cand := r.page(40) // equal to "Page 4"
	p3 := r.page(30)
	p1 := r.page(10)
	p5 := r.page(50)
	p0 := r.page(5)
	p2 := r.page(20)
	p4 := r.page(40)
	// Entries: 0:P3(root) 1:P1 2:P5 3:P0 4:P2 5:P4
	r.eng.InsertPPN(0, p3, 1, 2)
	r.eng.InsertPPN(1, p1, 3, 4)
	r.eng.InsertPPN(2, p5, 5, InvalidIndex)
	r.eng.InsertPPN(3, p0, InvalidIndex, InvalidIndex)
	r.eng.InsertPPN(4, p2, InvalidIndex, InvalidIndex)
	r.eng.InsertPPN(5, p4, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, true, 0)
	info, _ := r.run(0)
	if !info.Duplicate || info.Ptr != 5 {
		t.Fatalf("info = %v, want duplicate at entry 5", info)
	}
	// Path: P3 (greater -> More=2), P5 (smaller -> Less=5), P4 (match).
	if r.eng.PagesCompared != 3 {
		t.Fatalf("compared %d pages, want 3", r.eng.PagesCompared)
	}
}

func TestSentinelPtrReportedForOutOfTableChild(t *testing.T) {
	r := newRig(8)
	cand := r.page(50)
	root := r.page(30)
	r.eng.InsertPPN(0, root, InvalidIndex, 77) // More = software sentinel
	r.eng.InsertPFE(cand, false, 0)
	info, _ := r.run(0)
	if info.Duplicate {
		t.Fatal("false duplicate")
	}
	if info.Ptr != 77 {
		t.Fatalf("Ptr = %d, want the sentinel 77", info.Ptr)
	}
}

func TestHashKeyGeneratedInBackground(t *testing.T) {
	r := newRig(8)
	cand := r.page(7)
	other := r.page(7)
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, false, 0)
	info, _ := r.run(0)
	// Duplicate found: hash completion is forced even without Last Refill.
	if !info.HashReady {
		t.Fatal("hash not ready after duplicate")
	}
	want := ecc.PageKey(r.phys.Page(cand), r.eng.Offsets())
	if info.Hash != want {
		t.Fatalf("hash = %#x, want %#x (ECC page key)", info.Hash, want)
	}
}

func TestHashForcedByLastRefillOnEmptyTable(t *testing.T) {
	r := newRig(8)
	cand := r.page(3)
	r.eng.InsertPFE(cand, true, InvalidIndex)
	info, done := r.run(0)
	if !info.Scanned || info.Duplicate {
		t.Fatalf("info = %v", info)
	}
	if !info.HashReady {
		t.Fatal("Last Refill did not force hash completion")
	}
	if done == 0 {
		t.Fatal("hash generation consumed no time")
	}
	// Exactly the four sampled lines were fetched.
	if r.eng.LinesFetched != ecc.Sections {
		t.Fatalf("fetched %d lines, want %d", r.eng.LinesFetched, ecc.Sections)
	}
}

func TestHashNotReadyWithoutLastRefill(t *testing.T) {
	r := newRig(8)
	cand := r.page(3)
	other := r.page(9) // diverges at line 0: almost no key progress
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, false, 0)
	info, _ := r.run(0)
	if info.HashReady {
		t.Fatal("hash ready after a single line-0 comparison without L")
	}
	// Refill with L set: the missing lines are fetched.
	r.eng.UpdatePFE(true, InvalidIndex)
	info, _ = r.run(r.eng.DoneAt())
	if !info.HashReady {
		t.Fatal("refill with L did not complete the hash")
	}
}

func TestHashPersistsAcrossUpdatePFE(t *testing.T) {
	r := newRig(8)
	cand := r.page(1)
	r.eng.InsertPFE(cand, true, InvalidIndex)
	info1, done := r.run(0)
	r.eng.UpdatePFE(false, InvalidIndex)
	info2, _ := r.run(done)
	if !info2.HashReady || info2.Hash != info1.Hash {
		t.Fatal("update_PFE lost the generated hash")
	}
	// insert_PFE for a new candidate resets it.
	r.eng.InsertPFE(r.page(2), false, InvalidIndex)
	info3, _ := r.run(r.eng.DoneAt())
	if info3.HashReady {
		t.Fatal("insert_PFE did not reset the hash assembler")
	}
}

func TestBusyVisibility(t *testing.T) {
	r := newRig(8)
	cand := r.page(5)
	other := r.page(5)
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, true, 0)
	r.eng.Trigger(100)
	if !r.eng.Busy(100) {
		t.Fatal("engine not busy right after trigger")
	}
	mid := (100 + r.eng.DoneAt()) / 2
	if info := r.eng.GetPFEInfo(mid); info.Scanned {
		t.Fatal("status bits visible before completion")
	}
	if info := r.eng.GetPFEInfo(r.eng.DoneAt()); !info.Scanned {
		t.Fatal("status bits not visible at completion")
	}
}

func TestTriggerWhileBusyPanics(t *testing.T) {
	r := newRig(8)
	r.eng.InsertPFE(r.page(1), true, InvalidIndex)
	r.eng.Trigger(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double trigger")
		}
	}()
	r.eng.Trigger(0)
}

func TestTriggerWithoutPFEPanics(t *testing.T) {
	r := newRig(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without insert_PFE")
		}
	}()
	r.eng.Trigger(0)
}

func TestInsertPPNBoundsPanics(t *testing.T) {
	r := newRig(8)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range index")
		}
	}()
	r.eng.InsertPPN(NumOtherPages, 0, InvalidIndex, InvalidIndex)
}

func TestUpdateECCOffset(t *testing.T) {
	r := newRig(8)
	bad := ecc.KeyOffsets{0, 0, 99, 0}
	if err := r.eng.UpdateECCOffset(bad); err == nil {
		t.Fatal("invalid offsets accepted")
	}
	good := ecc.KeyOffsets{1, 2, 3, 4}
	if err := r.eng.UpdateECCOffset(good); err != nil {
		t.Fatal(err)
	}
	if r.eng.Offsets() != good {
		t.Fatal("offsets not applied")
	}
	// Keys now come from the new offsets.
	cand := r.page(9)
	r.eng.InsertPFE(cand, true, InvalidIndex)
	info, _ := r.run(0)
	if info.Hash != ecc.PageKey(r.phys.Page(cand), good) {
		t.Fatal("hash does not reflect new offsets")
	}
}

func TestDivergenceStopsLineFetches(t *testing.T) {
	r := newRig(8)
	cand := r.page(5)
	other := r.page(5)
	// Diverge at line 2 (byte 128).
	r.phys.Page(other)[2*mem.LineSize] = 0xFF
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, false, 0)
	r.run(0)
	// Lines 0,1,2 of each page were fetched: 6 total.
	if r.eng.LinesFetched != 6 {
		t.Fatalf("fetched %d lines, want 6 (stop at divergence)", r.eng.LinesFetched)
	}
}

func TestFullCompareFetchesWholePages(t *testing.T) {
	r := newRig(8)
	cand := r.page(5)
	other := r.page(5)
	r.eng.InsertPPN(0, other, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(cand, false, 0)
	info, _ := r.run(0)
	if !info.Duplicate {
		t.Fatal("identical pages not detected")
	}
	if r.eng.LinesFetched != 2*mem.LinesPerPage {
		t.Fatalf("fetched %d lines, want %d", r.eng.LinesFetched, 2*mem.LinesPerPage)
	}
	if r.eng.BatchCycles.N() != 1 || r.eng.BatchCycles.Mean() <= 0 {
		t.Fatal("batch timing not recorded")
	}
}

func TestScanTableReset(t *testing.T) {
	var st ScanTable
	st.PFE = PFE{Valid: true, PPN: 3}
	st.Other[0] = OtherPage{Valid: true, PPN: 4}
	st.Reset()
	if st.PFE.Valid || st.Other[0].Valid {
		t.Fatal("Reset left valid entries")
	}
}

func TestLockstepOffsetsReused(t *testing.T) {
	// The paper: "PageForge reuses the offset for the two pages" — both
	// fetches of a pair target the same line index. Indirectly verified by
	// the data actually compared: construct pages identical except at a
	// known line and confirm comparison order via fetch counts.
	r := newRig(8)
	a := r.page(1)
	b := r.page(1)
	// Equal pages; make line 63 differ so the comparison runs to the end.
	r.phys.Page(b)[mem.PageSize-1] = 2
	r.eng.InsertPPN(0, b, InvalidIndex, InvalidIndex)
	r.eng.InsertPFE(a, false, 0)
	info, _ := r.run(0)
	if info.Duplicate {
		t.Fatal("pages differing in last byte reported duplicate")
	}
	if r.eng.LinesFetched != 2*mem.LinesPerPage {
		t.Fatalf("fetched %d, want full lockstep walk", r.eng.LinesFetched)
	}
	if info.Ptr != InvalidIndex {
		t.Fatalf("Ptr = %d (1 < 2 should follow Less)", info.Ptr)
	}
}

func TestBatchTimingScalesWithWork(t *testing.T) {
	// A full-page duplicate comparison takes much longer than a first-line
	// divergence.
	r1 := newRig(8)
	a1, b1 := r1.page(1), r1.page(1)
	r1.eng.InsertPPN(0, b1, InvalidIndex, InvalidIndex)
	r1.eng.InsertPFE(a1, false, 0)
	_, longDone := r1.run(0)

	r2 := newRig(8)
	a2, b2 := r2.page(1), r2.page(9)
	r2.eng.InsertPPN(0, b2, InvalidIndex, InvalidIndex)
	r2.eng.InsertPFE(a2, false, 0)
	_, shortDone := r2.run(0)

	if longDone <= shortDone*4 {
		t.Fatalf("full compare %d cycles vs early divergence %d: expected >> 4x", longDone, shortDone)
	}
}

func TestRandomTreeSearchMatchesSoftware(t *testing.T) {
	// Property: hardware table traversal over a software-built search
	// layout finds a duplicate exactly when a content-equal page exists.
	r := newRig(128)
	rng := sim.NewRNG(42)
	for trial := 0; trial < 10; trial++ {
		ids := rng.Perm(20)
		pages := make([]mem.PFN, 0, 8)
		for i := 0; i < 8; i++ {
			pages = append(pages, r.page(byte(10+ids[i]*2))) // even ids
		}
		// Build a balanced BST layout over sorted contents.
		sorted := make([]mem.PFN, len(pages))
		copy(sorted, pages)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if bytes.Compare(r.phys.Page(sorted[j]), r.phys.Page(sorted[i])) < 0 {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		type node struct{ lo, hi int }
		idx := map[int]int{} // sorted position -> table index
		var order []node
		var queue = []node{{0, len(sorted)}}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if n.lo >= n.hi {
				continue
			}
			mid := (n.lo + n.hi) / 2
			idx[mid] = len(order)
			order = append(order, n)
			queue = append(queue, node{n.lo, mid}, node{mid + 1, n.hi})
		}
		for mid, ti := range idx {
			n := order[ti]
			childIdx := func(lo, hi int) int {
				if lo >= hi {
					return InvalidIndex
				}
				return idx[(lo+hi)/2]
			}
			r.eng.InsertPPN(ti, sorted[mid], childIdx(n.lo, mid), childIdx(mid+1, n.hi))
		}
		// Probe with an equal page and an absent (odd id) page.
		dup := r.page(byte(10 + ids[3]*2))
		r.eng.InsertPFE(dup, true, 0)
		info, done := r.run(r.eng.DoneAt())
		if !info.Duplicate {
			t.Fatalf("trial %d: duplicate not found", trial)
		}
		miss := r.page(byte(11 + ids[4]*2))
		r.eng.InsertPFE(miss, true, 0)
		info, _ = r.run(done)
		if info.Duplicate {
			t.Fatalf("trial %d: phantom duplicate", trial)
		}
	}
}
