// Package pageforge implements the paper's primary contribution: the
// PageForge hardware module placed in one memory controller, consisting of
// the Scan Table (one PFE entry plus 31 Other Pages entries), the pairwise
// page-comparison state machine, background ECC-based hash-key generation,
// and the five-function software interface of Table 1. An OS driver that
// runs the KSM algorithm on top of the hardware (Section 3.4) lives in
// driver.go.
package pageforge

import (
	"fmt"

	"repro/internal/mem"
)

// NumOtherPages is the number of Other Pages entries in the Scan Table
// (Table 2: 31 Other Pages + 1 PFE, ~260B of state).
const NumOtherPages = 31

// InvalidIndex marks a Less/More pointer with no in-table target. Values in
// [NumOtherPages, 256) act as software-defined sentinels: the hardware
// treats them all as invalid, but reports them in Ptr so the OS can tell
// *where* the traversal left the table (which subtree to load next).
const InvalidIndex = -1

// OtherPage is one Scan Table comparison entry: a page to compare with the
// candidate and the two successor indices.
type OtherPage struct {
	Valid bool
	PPN   mem.PFN
	// Less is the next entry when the candidate's data is smaller than
	// this page's; More when it is larger.
	Less int
	More int
}

// PFE is the PageForge Entry describing the candidate page and the
// hardware status bits.
type PFE struct {
	Valid bool
	PPN   mem.PFN
	Hash  uint32
	Ptr   int
	// Status/control bits: Scanned (S), Duplicate (D), Hash Key Ready (H),
	// Last Refill (L), Fault (F).
	Scanned    bool
	Duplicate  bool
	HashReady  bool
	LastRefill bool
	// Fault is set when the batch aborted on an uncorrectable memory
	// error that bounded re-reads could not heal. Duplicate and HashReady
	// are then unreliable for this candidate; the OS must fall back to a
	// software path.
	Fault bool
}

// ScanTable is the hardware table the OS fills through the API.
type ScanTable struct {
	PFE   PFE
	Other [NumOtherPages]OtherPage
}

// Reset invalidates every entry.
func (t *ScanTable) Reset() {
	t.PFE = PFE{}
	for i := range t.Other {
		t.Other[i] = OtherPage{}
	}
}

// inTable reports whether idx addresses a valid Other Pages entry.
func (t *ScanTable) inTable(idx int) bool {
	return idx >= 0 && idx < NumOtherPages && t.Other[idx].Valid
}

// PFEInfo is what get_PFE_info returns to the OS.
type PFEInfo struct {
	Hash      uint32
	Ptr       int
	Scanned   bool
	Duplicate bool
	HashReady bool
	// Fault mirrors the PFE Fault bit: the batch aborted on an
	// uncorrectable memory error.
	Fault bool
}

func (i PFEInfo) String() string {
	return fmt.Sprintf("hash=%#x ptr=%d S=%v D=%v H=%v F=%v",
		i.Hash, i.Ptr, i.Scanned, i.Duplicate, i.HashReady, i.Fault)
}
