package pageforge

import (
	"bytes"
	"testing"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/vm"
)

// driverRig builds a hypervisor with VMs and a PageForge driver over it.
type driverRig struct {
	hv  *vm.Hypervisor
	vms []*vm.VM
	drv *Driver
}

func newDriverRig(t *testing.T, frames int, contents ...[]byte) *driverRig {
	t.Helper()
	hv := vm.NewHypervisor(uint64(frames) * mem.PageSize)
	var vms []*vm.VM
	for _, cs := range contents {
		v := hv.NewVM(uint64(len(cs)) * mem.PageSize)
		v.Madvise(0, len(cs), true)
		for g, c := range cs {
			if c != 0 {
				if _, err := v.Write(vm.GFN(g), 0, bytes.Repeat([]byte{c}, mem.PageSize)); err != nil {
					t.Fatal(err)
				}
			}
		}
		vms = append(vms, v)
	}
	mc := memctrl.New(dram.New(dram.DefaultConfig()), hv.Phys, nil)
	alg := ksm.NewAlgorithm(hv, ksm.NewECCHasher())
	drv := NewDriver(alg, NewEngine(mc), DefaultDriverConfig())
	return &driverRig{hv: hv, vms: vms, drv: drv}
}

func TestDriverMergesIdenticalPages(t *testing.T) {
	r := newDriverRig(t, 64, []byte{7}, []byte{7})
	// Pass 1: hashes recorded (hardware-generated ECC keys). Pass 2: merge.
	var now uint64
	_, m1, now := r.drv.ScanBatch(2, now)
	if m1 != 0 {
		t.Fatal("merged on first pass")
	}
	_, m2, _ := r.drv.ScanBatch(2, now)
	if m2 != 1 {
		t.Fatalf("merged %d on second pass, want 1", m2)
	}
	if r.hv.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", r.hv.Phys.AllocatedFrames())
	}
}

func TestDriverMatchesSoftwareScannerOutcome(t *testing.T) {
	// The same workload processed by software KSM and by the PageForge
	// driver must converge to identical memory layouts (same frame count,
	// same sharing stats) — the paper's "identical savings" claim.
	layout := [][]byte{
		{10, 11, 12, 13, 10},
		{10, 11, 12, 14, 15},
		{10, 11, 16, 13, 15},
		{17, 11, 12, 13, 10},
	}
	sw := func() (int, int, int) {
		hv := vm.NewHypervisor(512 * mem.PageSize)
		for _, cs := range layout {
			v := hv.NewVM(uint64(len(cs)) * mem.PageSize)
			v.Madvise(0, len(cs), true)
			for g, c := range cs {
				v.Write(vm.GFN(g), 0, bytes.Repeat([]byte{c}, mem.PageSize))
			}
		}
		s := ksm.NewScanner(ksm.NewAlgorithm(hv, ksm.JHasher{}), ksm.DefaultCosts())
		s.RunToSteadyState(20)
		sh, sg := s.Alg.SharingStats()
		return hv.Phys.AllocatedFrames(), sh, sg
	}
	hwFrames, hwShared, hwSharing := func() (int, int, int) {
		r := newDriverRig(t, 512, layout...)
		r.drv.RunToSteadyState(20)
		sh, sg := r.drv.Alg.SharingStats()
		return r.hv.Phys.AllocatedFrames(), sh, sg
	}()
	swFrames, swShared, swSharing := sw()
	if hwFrames != swFrames || hwShared != swShared || hwSharing != swSharing {
		t.Fatalf("hardware (%d frames, %d/%d sharing) != software (%d frames, %d/%d)",
			hwFrames, hwShared, hwSharing, swFrames, swShared, swSharing)
	}
}

func TestDriverDeepTreeMultiBatchSearch(t *testing.T) {
	// Enough distinct pages that the stable tree exceeds one Scan Table
	// batch (31 entries), forcing sentinel-based refills.
	r := sim.NewRNG(5)
	var contents [][]byte
	// 3 VMs x 40 pages: 120 pages over ~60 distinct values; every value
	// appears at least twice across VMs so the stable tree grows large.
	for v := 0; v < 3; v++ {
		cs := make([]byte, 40)
		for i := range cs {
			cs[i] = byte(1 + (i*3+v*40+r.Intn(2))%120)
		}
		contents = append(contents, cs)
	}
	rig := newDriverRig(t, 2048, contents...)
	rig.drv.RunToSteadyState(30)

	// Independent verification: group pages by content, count frames.
	distinct := map[byte]bool{}
	for _, cs := range contents {
		for _, c := range cs {
			distinct[c] = true
		}
	}
	if got := rig.hv.Phys.AllocatedFrames(); got != len(distinct) {
		t.Fatalf("frames = %d, want %d distinct contents", got, len(distinct))
	}
	if rig.drv.Batches == 0 || rig.drv.Polls == 0 {
		t.Fatal("hardware was never used")
	}
}

func TestDriverHashGatingWithECCKeys(t *testing.T) {
	r := newDriverRig(t, 64, []byte{3}, []byte{4})
	var now uint64
	_, _, now = r.drv.ScanBatch(2, now)
	if r.drv.Alg.Stats.HashFirstSeen != 2 {
		t.Fatalf("HashFirstSeen = %d", r.drv.Alg.Stats.HashFirstSeen)
	}
	_, _, now = r.drv.ScanBatch(2, now)
	if r.drv.Alg.Stats.HashMatches != 2 {
		t.Fatalf("HashMatches = %d, want 2 (pages unchanged)", r.drv.Alg.Stats.HashMatches)
	}
	// Change a page between passes in a *sampled* line so the ECC key
	// catches it (section 0 samples line DefaultKeyOffsets[0]).
	r.vms[0].Write(0, ecc.DefaultKeyOffsets.LineIndex(0)*64, []byte{99})
	_, _, _ = r.drv.ScanBatch(2, now)
	if r.drv.Alg.Stats.HashMismatches == 0 {
		t.Fatal("ECC key missed a sampled-line change")
	}
}

func TestDriverVolatilePageNotMerged(t *testing.T) {
	r := newDriverRig(t, 64, []byte{9}, []byte{9})
	var now uint64
	for i := 0; i < 6; i++ {
		_, _, now = r.drv.ScanBatch(1, now)
		// Touch a sampled line each interval so the key flips.
		r.vms[1].Write(0, 0, []byte{byte(20 + i)})
	}
	if r.hv.Merges != 0 {
		t.Fatal("volatile page merged")
	}
}

func TestDriverCoreCyclesAreSmall(t *testing.T) {
	// The whole point of PageForge: the OS core time is a tiny fraction of
	// the wall-clock the hardware spends scanning.
	r := newDriverRig(t, 512,
		[]byte{1, 2, 3, 4, 5, 6, 7, 8},
		[]byte{1, 2, 3, 4, 5, 6, 7, 8},
	)
	var now uint64
	_, _, now = r.drv.ScanBatch(16, 0)
	_, _, now = r.drv.ScanBatch(16, now)
	if now == 0 {
		t.Fatal("no wall-clock progress")
	}
	frac := float64(r.drv.CoreCycles) / float64(now)
	if frac > 0.10 {
		t.Fatalf("driver core cycles are %.1f%% of wall clock; hardware offload broken", frac*100)
	}
}

func TestDriverRecoversAfterCoWBreak(t *testing.T) {
	r := newDriverRig(t, 64, []byte{5}, []byte{5})
	var now uint64
	_, _, now = r.drv.ScanBatch(2, now)
	_, _, now = r.drv.ScanBatch(2, now)
	if r.hv.Merges != 1 {
		t.Fatal("setup merge failed")
	}
	r.vms[0].Write(0, 0, bytes.Repeat([]byte{6}, mem.PageSize))
	r.vms[0].Write(0, 0, bytes.Repeat([]byte{5}, mem.PageSize))
	_, _, now = r.drv.ScanBatch(2, now)
	_, _, _ = r.drv.ScanBatch(2, now)
	if r.hv.Merges != 2 {
		t.Fatalf("Merges = %d, want re-merge", r.hv.Merges)
	}
}

func TestDriverEmptyScanOrder(t *testing.T) {
	hv := vm.NewHypervisor(16 * mem.PageSize)
	hv.NewVM(4 * mem.PageSize) // no madvise
	mc := memctrl.New(dram.New(dram.DefaultConfig()), hv.Phys, nil)
	drv := NewDriver(ksm.NewAlgorithm(hv, ksm.NewECCHasher()), NewEngine(mc), DefaultDriverConfig())
	if _, _, ok := drv.ScanOne(0); ok {
		t.Fatal("ScanOne succeeded with nothing to scan")
	}
}

func TestDriverWallClockAdvancesByPolls(t *testing.T) {
	r := newDriverRig(t, 64, []byte{1}, []byte{2})
	_, t1, ok := r.drv.ScanOne(0)
	if !ok {
		t.Fatal("scan failed")
	}
	if t1%r.drv.Cfg.PollInterval != 0 {
		t.Fatalf("completion %d not quantized to poll interval", t1)
	}
	if t1 == 0 {
		t.Fatal("no time consumed")
	}
}

func TestDriverUseZeroPages(t *testing.T) {
	hv := vm.NewHypervisor(64 * mem.PageSize)
	v := hv.NewVM(4 * mem.PageSize)
	v.Madvise(0, 4, true)
	for g := vm.GFN(0); g < 4; g++ {
		v.Touch(g) // zero pages
	}
	mc := memctrl.New(dram.New(dram.DefaultConfig()), hv.Phys, nil)
	alg := ksm.NewAlgorithm(hv, ksm.NewECCHasher())
	alg.SetOptions(ksm.Options{UseZeroPages: true})
	drv := NewDriver(alg, NewEngine(mc), DefaultDriverConfig())
	// One pass suffices: zero merging does not wait for hash stability.
	var now uint64
	_, merged, _ := drv.ScanBatch(4, now)
	if merged != 4 {
		t.Fatalf("merged %d zero pages, want 4", merged)
	}
	if alg.Stats.ZeroMerges != 4 {
		t.Fatalf("ZeroMerges = %d", alg.Stats.ZeroMerges)
	}
	// Everything shares the dedicated zero frame.
	if hv.Phys.AllocatedFrames() != 1 {
		t.Fatalf("frames = %d, want 1", hv.Phys.AllocatedFrames())
	}
}

func TestDriverSmartScanSkips(t *testing.T) {
	r := newDriverRig(t, 64, []byte{1, 2}, []byte{3, 4})
	r.drv.Alg.SetOptions(ksm.Options{SmartScan: true})
	var now uint64
	for p := 0; p < 8; p++ {
		_, _, now = r.drv.ScanBatch(4, now)
	}
	if r.drv.Alg.Stats.SmartSkips == 0 {
		t.Fatal("driver never smart-skipped")
	}
	// Skipped candidates consume no hardware batches; batch count is far
	// below 8 passes x 4 pages x (2 searches).
	if r.drv.Batches >= 8*4*2 {
		t.Fatalf("batches = %d, smart scan saved no hardware work", r.drv.Batches)
	}
}

func TestDriverZeroPageOptionMatchesScannerOutcome(t *testing.T) {
	build := func() (*vm.Hypervisor, *vm.VM) {
		hv := vm.NewHypervisor(64 * mem.PageSize)
		v := hv.NewVM(6 * mem.PageSize)
		v.Madvise(0, 6, true)
		for g := vm.GFN(0); g < 3; g++ {
			v.Touch(g)
		}
		for g := vm.GFN(3); g < 6; g++ {
			v.Write(g, 0, bytes.Repeat([]byte{byte(g)}, mem.PageSize))
		}
		return hv, v
	}
	hvSW, _ := build()
	sw := ksm.NewScanner(ksm.NewAlgorithm(hvSW, ksm.JHasher{}), ksm.DefaultCosts())
	sw.Alg.SetOptions(ksm.Options{UseZeroPages: true})
	sw.RunToSteadyState(8)

	hvHW, _ := build()
	mc := memctrl.New(dram.New(dram.DefaultConfig()), hvHW.Phys, nil)
	alg := ksm.NewAlgorithm(hvHW, ksm.NewECCHasher())
	alg.SetOptions(ksm.Options{UseZeroPages: true})
	drv := NewDriver(alg, NewEngine(mc), DefaultDriverConfig())
	drv.RunToSteadyState(8)

	if hvSW.Phys.AllocatedFrames() != hvHW.Phys.AllocatedFrames() {
		t.Fatalf("software %d frames vs hardware %d",
			hvSW.Phys.AllocatedFrames(), hvHW.Phys.AllocatedFrames())
	}
	if sw.Alg.Stats.ZeroMerges != alg.Stats.ZeroMerges {
		t.Fatalf("zero merges differ: sw %d vs hw %d",
			sw.Alg.Stats.ZeroMerges, alg.Stats.ZeroMerges)
	}
}

// The central claim, property-tested: over random deployments and churn,
// the hardware driver and the software scanner converge to identical
// memory layouts (same frame count, same sharing statistics).
func TestDriverScannerEquivalenceQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	for seed := uint64(1); seed <= 12; seed++ {
		r := sim.NewRNG(seed)
		const nVM = 4
		nPg := 6 + r.Intn(10)
		contents := make([][]byte, nVM)
		for i := range contents {
			contents[i] = make([]byte, nPg)
			for j := range contents[i] {
				contents[i][j] = byte(1 + r.Intn(8))
			}
		}
		build := func() (*vm.Hypervisor, []*vm.VM) {
			hv := vm.NewHypervisor(uint64(nVM*nPg*4) * mem.PageSize)
			var vms []*vm.VM
			for _, cs := range contents {
				v := hv.NewVM(uint64(len(cs)) * mem.PageSize)
				v.Madvise(0, len(cs), true)
				for g, c := range cs {
					v.Write(vm.GFN(g), 0, bytes.Repeat([]byte{c}, mem.PageSize))
				}
				vms = append(vms, v)
			}
			return hv, vms
		}

		// Identical churn schedules on both sides.
		churn := func(vms []*vm.VM, rng *sim.RNG) {
			for k := 0; k < 3; k++ {
				v := vms[rng.Intn(nVM)]
				g := vm.GFN(rng.Intn(nPg))
				v.Write(g, 0, bytes.Repeat([]byte{byte(1 + rng.Intn(8))}, mem.PageSize))
			}
		}

		hvSW, vmsSW := build()
		sw := ksm.NewScanner(ksm.NewAlgorithm(hvSW, ksm.JHasher{}), ksm.DefaultCosts())
		rngSW := sim.NewRNG(seed * 7)
		for p := 0; p < 6; p++ {
			for i := 0; i < sw.Alg.MergeablePages(); i++ {
				sw.ScanOne()
			}
			churn(vmsSW, rngSW)
		}
		// Two clean passes to settle after the last churn.
		for p := 0; p < 2; p++ {
			for i := 0; i < sw.Alg.MergeablePages(); i++ {
				sw.ScanOne()
			}
		}

		hvHW, vmsHW := build()
		mc := memctrl.New(dram.New(dram.DefaultConfig()), hvHW.Phys, nil)
		drv := NewDriver(ksm.NewAlgorithm(hvHW, ksm.NewECCHasher()), NewEngine(mc), DefaultDriverConfig())
		rngHW := sim.NewRNG(seed * 7)
		var now uint64
		for p := 0; p < 6; p++ {
			for i := 0; i < drv.Alg.MergeablePages(); i++ {
				_, tt, ok := drv.ScanOne(now)
				if !ok {
					break
				}
				now = tt
			}
			churn(vmsHW, rngHW)
		}
		for p := 0; p < 2; p++ {
			for i := 0; i < drv.Alg.MergeablePages(); i++ {
				_, tt, ok := drv.ScanOne(now)
				if !ok {
					break
				}
				now = tt
			}
		}

		if hvSW.Phys.AllocatedFrames() != hvHW.Phys.AllocatedFrames() {
			t.Fatalf("seed %d: software %d frames vs hardware %d",
				seed, hvSW.Phys.AllocatedFrames(), hvHW.Phys.AllocatedFrames())
		}
		s1, g1 := sw.Alg.SharingStats()
		s2, g2 := drv.Alg.SharingStats()
		if s1 != s2 || g1 != g2 {
			t.Fatalf("seed %d: sharing stats sw %d/%d vs hw %d/%d", seed, s1, g1, s2, g2)
		}
		// Data integrity on the hardware side.
		buf := make([]byte, 1)
		for i, cs := range contents {
			_ = cs
			for g := 0; g < nPg; g++ {
				vmsHW[i].Read(vm.GFN(g), 0, buf)
				vmsSW[i].Read(vm.GFN(g), 0, buf)
			}
		}
	}
}
