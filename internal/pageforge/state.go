package pageforge

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/sim"
)

// Checkpoint support. The engine image covers the Scan Table, the busy
// window, and the statistics; the key assembler is deliberately excluded —
// it is reset by insert_PFE at the start of every candidate, and captures
// only happen at pass boundaries where no candidate is in flight. The ECC
// offsets are configuration, re-established by the restorer's wiring.

// EngineState is the serialized image of an Engine.
type EngineState struct {
	Table  ScanTable
	Busy   bool
	DoneAt uint64

	BatchCycles       sim.OnlineState
	LinesFetched      uint64
	PagesCompared     uint64
	Duplicates        uint64
	KeysGenerated     uint64
	BusyCycles        uint64
	CompareEarlyExits uint64
	LineRetries       uint64
	RetriesHealed     uint64
	FaultAborts       uint64
}

// State captures the engine.
func (e *Engine) State() EngineState {
	return EngineState{
		Table:             e.Table,
		Busy:              e.busy,
		DoneAt:            e.doneAt,
		BatchCycles:       e.BatchCycles.State(),
		LinesFetched:      e.LinesFetched,
		PagesCompared:     e.PagesCompared,
		Duplicates:        e.Duplicates,
		KeysGenerated:     e.KeysGenerated,
		BusyCycles:        e.BusyCycles,
		CompareEarlyExits: e.CompareEarlyExits,
		LineRetries:       e.LineRetries,
		RetriesHealed:     e.RetriesHealed,
		FaultAborts:       e.FaultAborts,
	}
}

// SetState restores the engine in place.
func (e *Engine) SetState(st EngineState) {
	e.Table = st.Table
	e.busy = st.Busy
	e.doneAt = st.DoneAt
	e.BatchCycles.SetState(st.BatchCycles)
	e.LinesFetched = st.LinesFetched
	e.PagesCompared = st.PagesCompared
	e.Duplicates = st.Duplicates
	e.KeysGenerated = st.KeysGenerated
	e.BusyCycles = st.BusyCycles
	e.CompareEarlyExits = st.CompareEarlyExits
	e.LineRetries = st.LineRetries
	e.RetriesHealed = st.RetriesHealed
	e.FaultAborts = st.FaultAborts
	e.keyAsm.Reset()
}

// DriverState is the serialized image of a Driver: counters plus the
// quarantine set in sorted frame order (the live set is a map).
type DriverState struct {
	CoreCycles      uint64
	Batches         uint64
	Polls           uint64
	SWFallbacks     uint64
	QuarantineSkips uint64
	Quarantine      []mem.PFN
}

// State captures the driver.
func (d *Driver) State() DriverState {
	st := DriverState{
		CoreCycles:      d.CoreCycles,
		Batches:         d.Batches,
		Polls:           d.Polls,
		SWFallbacks:     d.SWFallbacks,
		QuarantineSkips: d.QuarantineSkips,
	}
	for pfn := range d.quarantine {
		st.Quarantine = append(st.Quarantine, pfn)
	}
	sort.Slice(st.Quarantine, func(i, j int) bool { return st.Quarantine[i] < st.Quarantine[j] })
	return st
}

// SetState restores the driver in place.
func (d *Driver) SetState(st DriverState) {
	d.CoreCycles = st.CoreCycles
	d.Batches = st.Batches
	d.Polls = st.Polls
	d.SWFallbacks = st.SWFallbacks
	d.QuarantineSkips = st.QuarantineSkips
	d.quarantine = make(map[mem.PFN]struct{}, len(st.Quarantine))
	for _, pfn := range st.Quarantine {
		d.quarantine[pfn] = struct{}{}
	}
}
