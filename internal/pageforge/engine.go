package pageforge

import (
	"bytes"
	"fmt"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/obs"
	"repro/internal/sim"
)

// CompareCycles is the ALU time to compare one 64B line pair already
// buffered in the module (the 64-bit comparator walks eight words).
const CompareCycles = 8

// MaxLineRetries bounds how many times the FSM re-reads a line whose
// fetch came back poisoned before aborting the batch. Transient upsets
// heal on a re-read; stuck-at cells and in-progress bursts do not, and
// unbounded retries against those would wedge the engine.
const MaxLineRetries = 2

// LineFetcher is the service the hosting memory controller provides to the
// module. *memctrl.Controller implements it; the platform's multi-controller
// router does too (PageForge requests to pages homed on the other
// controller cross the interconnect, Section 4.1).
type LineFetcher interface {
	FetchLine(pfn mem.PFN, lineIdx int, now uint64, src dram.Source) memctrl.FetchResult
}

// Engine is the PageForge hardware module inside one memory controller.
// The OS drives it exclusively through the Table 1 API (InsertPPN,
// InsertPFE, UpdatePFE, GetPFEInfo, UpdateECCOffset) plus Trigger.
type Engine struct {
	MC      LineFetcher
	Table   ScanTable
	offsets ecc.KeyOffsets
	keyAsm  *ecc.KeyAssembler

	busy bool
	// doneAt is the cycle at which the current batch finishes processing;
	// the OS's periodic GetPFEInfo polls before that time see stale
	// (not-Scanned) state, just like real asynchronous hardware.
	doneAt uint64

	// Trace receives per-batch and RAS incident events when enabled (the
	// zero Scope is off and costs one branch per batch).
	Trace obs.Scope

	// Statistics.
	BatchCycles   sim.Online // per-batch processing time (Table 5)
	LinesFetched  uint64
	PagesCompared uint64
	Duplicates    uint64
	KeysGenerated uint64
	BusyCycles    uint64
	// CompareEarlyExits counts page comparisons that stopped before the
	// last line pair — the divergence-detection shortcut whose frequency
	// governs how much of each candidate the engine actually streams.
	CompareEarlyExits uint64
	// RAS statistics: poisoned-line re-reads issued, retries that came
	// back clean, and batches aborted on an unhealable poisoned line.
	LineRetries   uint64
	RetriesHealed uint64
	FaultAborts   uint64
}

// NewEngine builds a PageForge module attached to a memory controller.
func NewEngine(mc LineFetcher) *Engine {
	return &Engine{
		MC:      mc,
		offsets: ecc.DefaultKeyOffsets,
		keyAsm:  ecc.NewKeyAssembler(ecc.DefaultKeyOffsets),
	}
}

// --- Table 1 software interface -----------------------------------------

// InsertPPN fills an Other Pages entry (function insert_PPN).
func (e *Engine) InsertPPN(index int, ppn mem.PFN, less, more int) {
	if index < 0 || index >= NumOtherPages {
		panic(fmt.Sprintf("pageforge: insert_PPN index %d out of range", index))
	}
	e.Table.Other[index] = OtherPage{Valid: true, PPN: ppn, Less: less, More: more}
}

// InsertPFE fills the PFE entry for a new candidate page (insert_PFE).
// Starting a new candidate resets the hash assembler: the key is generated
// in the background across this candidate's batches.
func (e *Engine) InsertPFE(ppn mem.PFN, lastRefill bool, ptr int) {
	e.Table.PFE = PFE{Valid: true, PPN: ppn, LastRefill: lastRefill, Ptr: ptr}
	e.keyAsm.Reset()
}

// UpdatePFE re-arms the PFE for another batch against the same candidate
// (update_PFE): new Ptr, new Last Refill flag, status bits cleared. The
// partially-built hash key is preserved.
func (e *Engine) UpdatePFE(lastRefill bool, ptr int) {
	p := &e.Table.PFE
	p.LastRefill = lastRefill
	p.Ptr = ptr
	p.Scanned = false
	p.Duplicate = false
	p.Fault = false
}

// GetPFEInfo reports the hash key, Ptr, and the S/D/H bits (get_PFE_info)
// as visible at cycle now. While the hardware is still processing, the OS
// sees Scanned=false and polls again later.
func (e *Engine) GetPFEInfo(now uint64) PFEInfo {
	if e.busy && now >= e.doneAt {
		e.busy = false
	}
	if e.busy {
		return PFEInfo{Ptr: e.Table.PFE.Ptr} // in-flight: status bits unset
	}
	p := e.Table.PFE
	return PFEInfo{Hash: p.Hash, Ptr: p.Ptr, Scanned: p.Scanned, Duplicate: p.Duplicate, HashReady: p.HashReady, Fault: p.Fault}
}

// UpdateECCOffset reconfigures which line in each 1KB section feeds the
// hash key (update_ECC_offset). Offsets are rarely changed and take effect
// for subsequent candidates.
func (e *Engine) UpdateECCOffset(offsets ecc.KeyOffsets) error {
	if err := offsets.Validate(); err != nil {
		return err
	}
	e.offsets = offsets
	e.keyAsm = ecc.NewKeyAssembler(offsets)
	return nil
}

// Offsets reports the active hash-key offsets.
func (e *Engine) Offsets() ecc.KeyOffsets { return e.offsets }

// Busy reports whether a batch is still processing at cycle now.
func (e *Engine) Busy(now uint64) bool { return e.busy && now < e.doneAt }

// DoneAt reports when the current batch completes (valid while busy).
func (e *Engine) DoneAt() uint64 { return e.doneAt }

// --- The comparison state machine ----------------------------------------

// Trigger starts processing the Scan Table at cycle now. The model runs the
// whole batch eagerly, computing the cycle at which the hardware would
// finish; status bits become visible to GetPFEInfo only at that time.
// It panics if triggered while busy or without a valid PFE — both are
// driver bugs, not recoverable hardware states.
func (e *Engine) Trigger(now uint64) {
	if e.Busy(now) {
		panic("pageforge: Trigger while busy")
	}
	p := &e.Table.PFE
	if !p.Valid {
		panic("pageforge: Trigger without insert_PFE")
	}
	clock := now
	comparedBefore := e.PagesCompared

	// Walk the table from Ptr, comparing the candidate page line-by-line
	// in lockstep with each table page.
	for e.Table.inTable(p.Ptr) {
		entry := e.Table.Other[p.Ptr]
		cmp, faulted := e.comparePages(p.PPN, entry.PPN, &clock)
		e.PagesCompared++
		if faulted {
			// A line stayed poisoned through the retry budget: corrupted
			// data must not decide a merge, so the batch aborts and the
			// Fault bit tells the OS to take its software path.
			p.Fault = true
			e.FaultAborts++
			break
		}
		if cmp == 0 {
			p.Duplicate = true
			e.Duplicates++
			break
		}
		if cmp < 0 {
			p.Ptr = entry.Less
		} else {
			p.Ptr = entry.More
		}
	}
	p.Scanned = true

	// The last batch (Last Refill set, or a duplicate found) forces the
	// hash key to completion (Section 3.3.1). A faulted batch skips it:
	// the candidate is headed for software fallback anyway, and a key
	// built around a poisoned page is worthless.
	if !p.Fault && (p.LastRefill || p.Duplicate) && !p.HashReady {
		for _, li := range e.keyAsm.Missing() {
			res, done := e.fetchLine(p.PPN, li, clock)
			clock = done
			if res.Poisoned {
				p.Fault = true
				e.FaultAborts++
				break
			}
			e.keyAsm.Observe(li, res.Code)
		}
	}
	if !p.Fault && e.keyAsm.Ready() && !p.HashReady {
		p.Hash = e.keyAsm.Key()
		p.HashReady = true
		e.KeysGenerated++
	}

	e.busy = true
	e.doneAt = clock
	spent := clock - now
	e.BusyCycles += spent
	e.BatchCycles.Add(float64(spent))
	if e.Trace.Enabled() {
		name := "batch"
		switch {
		case p.Fault:
			name = "batch_fault"
		case p.Duplicate:
			name = "batch_duplicate"
		}
		e.Trace.Complete(obs.TIDEngine, "pfe", name, now, spent, "compared", e.PagesCompared-comparedBefore)
	}
}

// fetchLine issues one line fetch with bounded poison retries, each
// re-read issued when the previous one completes. It returns the final
// result and its completion cycle; a result still Poisoned after the
// retry budget is unhealable at this time (stuck-at cells, an active
// burst) and the caller must abort.
func (e *Engine) fetchLine(pfn mem.PFN, li int, start uint64) (memctrl.FetchResult, uint64) {
	res := e.MC.FetchLine(pfn, li, start, dram.SrcPageForge)
	e.LinesFetched++
	done := start + res.Latency
	if res.Poisoned && e.Trace.Enabled() {
		e.Trace.Instant(obs.TIDRAS, "ras", "poison", done, "pfn", uint64(pfn))
	}
	for r := 0; res.Poisoned && r < MaxLineRetries; r++ {
		e.LineRetries++
		res = e.MC.FetchLine(pfn, li, done, dram.SrcPageForge)
		e.LinesFetched++
		done += res.Latency
		if !res.Poisoned {
			e.RetriesHealed++
			if e.Trace.Enabled() {
				e.Trace.Instant(obs.TIDRAS, "ras", "retry_healed", done, "pfn", uint64(pfn))
			}
		}
	}
	if res.Poisoned && e.Trace.Enabled() {
		e.Trace.Instant(obs.TIDRAS, "ras", "poison_unhealed", done, "pfn", uint64(pfn))
	}
	return res, done
}

// comparePages compares the candidate with one table page line-by-line in
// lockstep, advancing the hardware clock with each fetched pair, snatching
// candidate-line ECC codes for the background hash key, and stopping at
// the first divergent line. faulted reports that a line of either page
// stayed poisoned through the retry budget; the comparison verdict is
// then meaningless and the caller must abort the batch. Poisoned codes
// never reach the key assembler.
func (e *Engine) comparePages(cand, other mem.PFN, clock *uint64) (cmp int, faulted bool) {
	for li := 0; li < mem.LinesPerPage; li++ {
		// The offset is computed once and reused for both pages; the two
		// line reads are issued together (retries serialize after them).
		resA, doneA := e.fetchLine(cand, li, *clock)
		resB, doneB := e.fetchLine(other, li, *clock)
		done := doneA
		if doneB > done {
			done = doneB
		}
		*clock = done + CompareCycles
		if !resA.Poisoned {
			e.keyAsm.Observe(li, resA.Code)
		}
		if resA.Poisoned || resB.Poisoned {
			return 0, true
		}
		if c := bytes.Compare(resA.Data, resB.Data); c != 0 {
			if li < mem.LinesPerPage-1 {
				e.CompareEarlyExits++
			}
			return c, false
		}
	}
	return 0, false
}
