package pageforge

import (
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/rbtree"
	"repro/internal/vm"
)

// sentinelBase is the first Less/More value used to mark out-of-batch
// children. The hardware treats any index >= NumOtherPages as invalid but
// reports it in Ptr, letting the OS identify which subtree to load next.
const sentinelBase = NumOtherPages + 1

// DriverConfig tunes the OS side of PageForge.
type DriverConfig struct {
	// PollInterval is how often the OS checks the Scan Table (Table 5:
	// 12,000 cycles).
	PollInterval uint64
	// PollCost is the core cycles one get_PFE_info check consumes.
	PollCost uint64
	// BatchSetupCost is the core cycles to fill the table for one batch
	// (up to 31 insert_PPN calls plus the PFE update).
	BatchSetupCost uint64
	// MergeCost is the core cycles of the hypervisor remap on a merge.
	MergeCost uint64
	// BatchEntries caps how many Other Pages entries the driver loads per
	// batch (0 or > NumOtherPages means the full table). Smaller values
	// model a cheaper Scan Table (§4's design-space discussion).
	BatchEntries int
	// FallbackCost is the core cycles of the software path taken when the
	// hardware aborts a candidate on an uncorrectable error: re-reading
	// the page through the core and running the software compare/jhash.
	FallbackCost uint64
}

// DefaultDriverConfig follows Table 5.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{
		PollInterval:   12_000,
		PollCost:       60,
		BatchSetupCost: 250,
		MergeCost:      3_000,
		FallbackCost:   12_000,
	}
}

// batchEntries resolves the configured batch size.
func (c DriverConfig) batchEntries() int {
	if c.BatchEntries <= 0 || c.BatchEntries > NumOtherPages {
		return NumOtherPages
	}
	return c.BatchEntries
}

// Driver is the OS/hypervisor side of PageForge: it implements the KSM
// algorithm (Section 3.4) but delegates page comparison, tree traversal,
// and hash-key generation to the hardware engine. Its own core-cycle
// consumption — the overhead the paper shows to be minimal — is tracked in
// CoreCycles.
type Driver struct {
	Alg *ksm.Algorithm
	HW  *Engine
	Cfg DriverConfig

	// Trace receives per-search and per-merge events when enabled.
	Trace obs.Scope

	// Ledger receives merge-lifecycle events when enabled. The driver is
	// strictly sequential, so it appends directly.
	Ledger *obs.Ledger

	// CoreCycles is the total processor time consumed by the driver
	// (polls, table refills, merge bookkeeping).
	CoreCycles uint64
	// Batches counts Scan Table loads; Polls counts get_PFE_info checks.
	Batches uint64
	Polls   uint64
	// SWFallbacks counts candidates completed on the software path after
	// the hardware aborted on an uncorrectable error; QuarantineSkips
	// counts candidates skipped because their frame is quarantined.
	SWFallbacks     uint64
	QuarantineSkips uint64

	// quarantine holds physical frames the UE policy has withdrawn from
	// hardware scanning and merging. Quarantine is by frame — the faulty
	// cells are physical — so it survives frame reuse, like kernel page
	// offlining.
	quarantine map[mem.PFN]struct{}
}

// NewDriver builds a driver over shared KSM algorithm state and a hardware
// engine. The Algorithm's Hasher is used only on the UE fallback path (the
// hardware generates ECC keys); pass ksm.JHasher{} or ECCHasher.
func NewDriver(alg *ksm.Algorithm, hw *Engine, cfg DriverConfig) *Driver {
	return &Driver{Alg: alg, HW: hw, Cfg: cfg, quarantine: make(map[mem.PFN]struct{})}
}

// Quarantined reports whether the frame is excluded from hardware
// scanning and merging.
func (d *Driver) Quarantined(pfn mem.PFN) bool {
	_, ok := d.quarantine[pfn]
	return ok
}

// QuarantinedFrames reports how many frames the UE policy has withdrawn.
func (d *Driver) QuarantinedFrames() int { return len(d.quarantine) }

func (d *Driver) quarantinePFN(pfn mem.PFN) {
	d.quarantine[pfn] = struct{}{}
}

// searchResult is the outcome of one hardware tree search.
type searchResult struct {
	match *rbtree.Node // non-nil when the hardware found a duplicate
	now   uint64       // wall-clock cycle after the search completed
	fault bool         // the hardware aborted on an uncorrectable error
}

// loadBatch fills the Scan Table with the BFS expansion of the subtree at
// root and returns the sentinel mapping for out-of-batch children, plus
// whether the whole subtree fit (no sentinels ⇒ this batch can be final).
func (d *Driver) loadBatch(root *rbtree.Node) (batch []*rbtree.Node, sentinels map[int]*rbtree.Node) {
	batch = rbtree.BFS(root, d.Cfg.batchEntries())
	pos := make(map[*rbtree.Node]int, len(batch))
	for i, n := range batch {
		pos[n] = i
	}
	sentinels = make(map[int]*rbtree.Node)
	next := sentinelBase
	link := func(child *rbtree.Node) int {
		if child == nil {
			return InvalidIndex
		}
		if i, ok := pos[child]; ok {
			return i
		}
		sentinels[next] = child
		next++
		return next - 1
	}
	for i, n := range batch {
		d.HW.InsertPPN(i, n.PFN, link(n.Left()), link(n.Right()))
	}
	d.Batches++
	d.CoreCycles += d.Cfg.BatchSetupCost
	return batch, sentinels
}

// runBatch triggers the hardware and polls until Scanned, advancing the
// wall clock in PollInterval steps (the OS checks the table periodically;
// Table 5 shows the batch is typically done by the first check).
func (d *Driver) runBatch(now uint64) (PFEInfo, uint64) {
	d.HW.Trigger(now)
	for {
		now += d.Cfg.PollInterval
		d.Polls++
		d.CoreCycles += d.Cfg.PollCost
		info := d.HW.GetPFEInfo(now)
		if info.Scanned {
			return info, now
		}
	}
}

// searchTree drives the hardware search of one red-black tree. first marks
// the first batch for this candidate (insert_PFE resets the background
// hash); finishKey marks the search during which the hash key must
// complete (the stable-tree search per Section 3.4).
func (d *Driver) searchTree(cand mem.PFN, root *rbtree.Node, now uint64, first, finishKey bool) (res searchResult, notFound bool) {
	start, batchesBefore := now, d.Batches
	defer func() {
		if d.Trace.Enabled() {
			name := "stable_search"
			if !finishKey {
				name = "unstable_search"
			}
			d.Trace.Complete(obs.TIDDriver, "scan", name, start, res.now-start, "batches", d.Batches-batchesBefore)
		}
	}()
	node := root
	for node != nil {
		batch, sentinels := d.loadBatch(node)
		last := finishKey && len(sentinels) == 0
		if first {
			d.HW.InsertPFE(cand, last, 0)
			first = false
		} else {
			d.HW.UpdatePFE(last, 0)
		}
		info, t := d.runBatch(now)
		now = t
		if info.Fault {
			return searchResult{now: now, fault: true}, true
		}
		if info.Duplicate {
			if info.Ptr < 0 || info.Ptr >= len(batch) {
				panic("pageforge: hardware reported duplicate at invalid Ptr")
			}
			return searchResult{match: batch[info.Ptr], now: now}, false
		}
		if child, ok := sentinels[info.Ptr]; ok {
			node = child // traversal left the table: continue in that subtree
			continue
		}
		break // genuine leaf edge: not in this tree
	}
	if node == nil && root == nil && first {
		// Empty tree and the PFE was never inserted: insert it so the hash
		// machinery has a candidate to work on.
		d.HW.InsertPFE(cand, false, InvalidIndex)
	}
	// Key must be finished even if the search ended early or the tree was
	// empty: one empty reload with Last Refill forces it (Section 3.3.1).
	if finishKey && !d.HW.GetPFEInfo(now).HashReady {
		d.HW.UpdatePFE(true, InvalidIndex)
		info, t := d.runBatch(now)
		now = t
		if info.Fault {
			return searchResult{now: now, fault: true}, true
		}
	}
	return searchResult{now: now}, true
}

// verifyMatch re-runs the comparison of candidate and match in hardware
// after both pages have been write-protected — the algorithm's "second
// comparison ... to protect against racing writes" — using a single-entry
// Scan Table batch. It reports whether the pages are still identical.
func (d *Driver) verifyMatch(id vm.PageID, cand, match mem.PFN, now uint64) (bool, uint64) {
	d.Alg.HV.WriteProtect(cand)
	d.Alg.HV.WriteProtect(match)
	d.HW.InsertPPN(0, match, InvalidIndex, InvalidIndex)
	d.HW.UpdatePFE(false, 0)
	info, t := d.runBatch(now)
	if info.Fault {
		// The hardware cannot verify: the kernel re-compares in software
		// (demand reads go through their own correction/retry path) and
		// the candidate frame is quarantined from future hardware passes.
		d.SWFallbacks++
		d.Alg.Stats.FaultFallbacks++
		d.quarantinePFN(cand)
		if d.Ledger.Enabled() {
			d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKQuarantined, Cause: obs.CauseFaultRetry, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(cand)})
		}
		d.CoreCycles += d.Cfg.FallbackCost
		same, _ := d.Alg.HV.Phys.SamePage(cand, match)
		if !same {
			d.Alg.HV.Unprotect(cand)
		}
		return same, t + d.Cfg.FallbackCost
	}
	if !info.Duplicate {
		// Raced: the candidate is not being merged, so it must become
		// writable again (the match keeps its protection, as in software
		// KSM's abort path).
		d.Alg.HV.Unprotect(cand)
	}
	return info.Duplicate, t
}

// faultFallback completes a candidate whose hardware batch aborted on an
// uncorrectable error. The kernel takes over in software — re-reading the
// page through the core's corrected demand path, probing the stable tree
// with the software comparator, and (when recordHash is set) running
// jhash so the pass's change-detection state stays coherent — and then
// quarantines the frame from future hardware scanning. Unstable-tree
// participation is skipped: a frame that just poisoned the engine is not
// worth advertising as a merge target.
func (d *Driver) faultFallback(id vm.PageID, pfn mem.PFN, recordHash bool, now uint64) (bool, uint64) {
	d.SWFallbacks++
	d.Alg.Stats.FaultFallbacks++
	d.quarantinePFN(pfn)
	ldg := d.Ledger.Enabled()
	if ldg {
		d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKQuarantined, Cause: obs.CauseFaultRetry, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn)})
	}
	d.CoreCycles += d.Cfg.FallbackCost
	now += d.Cfg.FallbackCost
	if d.Trace.Enabled() {
		d.Trace.Instant(obs.TIDRAS, "ras", "sw_fallback", now, "pfn", uint64(pfn))
	}
	a := d.Alg
	if node := a.Stable.Lookup(pfn); node != nil && node.PFN != pfn {
		// Merging into stable releases the suspect frame: its mappers are
		// repointed at the stable copy and the bad cells leave service.
		stablePFN := uint64(node.PFN)
		if _, mok := a.MergeIntoStable(id, node); mok {
			d.CoreCycles += d.Cfg.MergeCost
			if ldg {
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: stablePFN})
			}
			return true, now
		}
		if ldg {
			d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseFaultRetry, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: stablePFN})
		}
		return false, now
	}
	if recordHash {
		a.HashCheck(id)
	}
	return false, now
}

// ScanOne processes one candidate page, mirroring ksm.Scanner.ScanOne but
// with every comparison and hash executed by the hardware. It returns the
// wall-clock cycle when the candidate is finished.
func (d *Driver) ScanOne(now uint64) (merged bool, doneAt uint64, ok bool) {
	a := d.Alg
	id, passEnded, ok := a.NextCandidate()
	if !ok {
		return false, now, false
	}
	if passEnded {
		defer a.EndPass()
	}
	a.Stats.PagesScanned++
	d.CoreCycles += d.Cfg.PollCost // candidate selection bookkeeping
	if d.Trace.Enabled() {
		defer func() {
			if merged {
				d.Trace.Instant(obs.TIDDriver, "merge", "merge", doneAt, "gfn", uint64(id.GFN))
			}
		}()
	}

	if a.SkipCandidate(id) {
		return false, now, true
	}
	if a.SmartSkip(id) {
		return false, now, true
	}
	pfn, okr := a.HV.Resolve(id)
	if !okr {
		return false, now, true
	}
	if d.Quarantined(pfn) {
		// The UE policy withdrew this frame from hardware scanning.
		d.QuarantineSkips++
		return false, now, true
	}
	ldg := d.Ledger.Enabled()
	if ldg {
		d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKScanned, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn)})
	}

	first := true
	if a.Options().UseZeroPages {
		// Compare against the dedicated zero frame first, in hardware: one
		// single-entry batch. Its candidate-line fetches already feed the
		// background ECC key.
		if zf, err := a.ZeroFramePFN(); err == nil && zf != pfn {
			d.HW.InsertPPN(0, zf, InvalidIndex, InvalidIndex)
			d.HW.InsertPFE(pfn, false, 0)
			first = false
			info, t := d.runBatch(now)
			now = t
			if info.Fault {
				merged, t := d.faultFallback(id, pfn, true, now)
				return merged, t, true
			}
			if info.Duplicate {
				if a.MergeWithZeroFrame(id) {
					d.CoreCycles += d.Cfg.MergeCost
					if ldg {
						d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: uint64(zf)})
					}
					return true, now, true
				}
				if ldg {
					d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: uint64(zf)})
				}
			}
		}
	}

	// Stable-tree search in hardware; the ECC hash key is generated in the
	// background during this search.
	res, notFound := d.searchTree(pfn, a.Stable.For(pfn).Root(), now, first, true)
	now = res.now
	if res.fault {
		merged, t := d.faultFallback(id, pfn, true, now)
		return merged, t, true
	}
	if !notFound && res.match.PFN != pfn {
		stablePFN := uint64(res.match.PFN)
		same, t := d.verifyMatch(id, pfn, res.match.PFN, now)
		now = t
		if !same {
			a.Stats.FailedMerges++
			if ldg {
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: stablePFN})
			}
			return false, now, true
		}
		if _, mok := a.MergeIntoStable(id, res.match); mok {
			d.CoreCycles += d.Cfg.MergeCost
			if ldg {
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: stablePFN})
			}
			return true, now, true
		}
		if ldg {
			d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: stablePFN})
		}
		return false, now, true
	}

	// Not in the stable tree: compare the hardware-generated key with the
	// previous pass's key.
	info := d.HW.GetPFEInfo(now)
	if info.Fault {
		merged, t := d.faultFallback(id, pfn, true, now)
		return merged, t, true
	}
	if !info.HashReady {
		panic("pageforge: hash key not ready after stable search")
	}
	if outcome := a.RecordHashOutcome(id, info.Hash); outcome.Changed() {
		if ldg && outcome == ksm.HashChanged {
			d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKChurned, Cause: obs.CauseContentChurn, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn)})
		}
		return false, now, true
	}

	// Unstable-tree search in hardware.
	res, notFound = d.searchTree(pfn, a.Unstable.For(pfn).Root(), now, false, false)
	now = res.now
	if res.fault {
		merged, t := d.faultFallback(id, pfn, false, now)
		return merged, t, true
	}
	if !notFound {
		matchPFN := uint64(res.match.PFN)
		if !a.ValidUnstableMatch(res.match) {
			a.Stats.StaleUnstable++
			if ldg {
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: matchPFN})
			}
			return false, now, true
		}
		same, t := d.verifyMatch(id, pfn, res.match.PFN, now)
		now = t
		if !same {
			a.Stats.FailedMerges++
			if ldg {
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: matchPFN})
			}
			return false, now, true
		}
		if _, mok := a.MergeWithUnstable(id, res.match); mok {
			d.CoreCycles += d.Cfg.MergeCost
			if ldg {
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMerged, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: matchPFN})
				d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKStable, VM: -1, PFN: matchPFN})
			}
			return true, now, true
		}
		if ldg {
			d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKMergeFailed, Cause: obs.CauseChecksumInstability, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn), Arg: matchPFN})
		}
		return false, now, true
	}
	if a.UnstableInsert(id) != nil && ldg {
		d.Ledger.Append(obs.LedgerEvent{Kind: obs.LKUnstable, VM: id.VM, GFN: uint64(id.GFN), PFN: uint64(pfn)})
	}
	return false, now, true
}

// ScanBatch processes up to n candidates starting at cycle now — one work
// interval of pages_to_scan pages. It returns the number merged and the
// cycle at which the interval's work completed.
func (d *Driver) ScanBatch(n int, now uint64) (scanned, mergedCount int, doneAt uint64) {
	for i := 0; i < n; i++ {
		merged, t, ok := d.ScanOne(now)
		if !ok {
			break
		}
		now = t
		scanned++
		if merged {
			mergedCount++
		}
	}
	return scanned, mergedCount, now
}

// RunToSteadyState drives full passes until a pass completes no new merges
// (or maxPasses), sharing ksm.RunConvergence's pass-counting semantics
// with the software scanner.
func (d *Driver) RunToSteadyState(maxPasses int) int {
	now := uint64(0)
	return ksm.RunConvergence(d.Alg, maxPasses, func() bool {
		_, t, ok := d.ScanOne(now)
		if ok {
			now = t
		}
		return ok
	})
}
