package pageforge

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/faults"
	"repro/internal/ksm"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/vm"
)

// End-to-end fault injection: the ECC engine PageForge repurposes for hash
// keys still has its day job. Single-bit DRAM errors under the scan stream
// are corrected transparently; uncorrectable errors poison the fetch,
// bounded retries heal the transient ones, and anything else aborts the
// batch with the Fault bit — never a wrong verdict, never a dirty minikey.

func TestScanUnderSingleBitFaults(t *testing.T) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	rng := sim.NewRNG(77)
	// Every 5th fetched line suffers a random single-bit flip on the wire.
	count := 0
	mc.Faults = memctrl.FaultFunc(func(addr uint64, line []byte) {
		count++
		if count%5 == 0 {
			line[rng.Intn(len(line))] ^= 1 << uint(rng.Intn(8))
		}
	})
	eng := NewEngine(mc)

	a, _ := phys.Alloc()
	b, _ := phys.Alloc()
	rng.FillBytes(phys.Page(a))
	phys.CopyPage(b, a)

	eng.InsertPPN(0, b, InvalidIndex, InvalidIndex)
	eng.InsertPFE(a, true, 0)
	eng.Trigger(0)
	info := eng.GetPFEInfo(eng.DoneAt())
	if !info.Duplicate {
		t.Fatal("single-bit faults broke the duplicate detection (SECDED should correct)")
	}
	if info.Fault {
		t.Fatal("correctable faults raised the Fault bit")
	}
	if mc.Stats.ECCCorrected == 0 {
		t.Fatal("no corrections recorded despite injected faults")
	}
	if mc.Stats.ECCUncorrectable != 0 {
		t.Fatalf("%d uncorrectable errors from single-bit faults", mc.Stats.ECCUncorrectable)
	}
	// The hash key is computed from clean (corrected) data.
	if info.Hash != ecc.PageKey(phys.Page(a), eng.Offsets()) {
		t.Fatal("hash key corrupted by correctable faults")
	}
}

func TestScanAbortsOnPersistentDoubleBitFaults(t *testing.T) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	// Every line suffers a double-bit flip within one 64-bit word on every
	// read: uncorrectable and unhealable — the batch must abort.
	mc.Faults = memctrl.FaultFunc(func(addr uint64, line []byte) { line[0] ^= 0x03 })
	eng := NewEngine(mc)

	a, _ := phys.Alloc()
	b, _ := phys.Alloc()
	eng.InsertPPN(0, b, InvalidIndex, InvalidIndex)
	eng.InsertPFE(a, true, 0)
	eng.Trigger(0)
	info := eng.GetPFEInfo(eng.DoneAt())
	if mc.Stats.ECCUncorrectable == 0 {
		t.Fatal("double-bit errors not detected")
	}
	if mc.Stats.ECCCorrected != 0 {
		t.Fatal("double-bit errors miscounted as corrected")
	}
	if !info.Scanned || !info.Fault {
		t.Fatalf("batch did not abort with Fault: %v", info)
	}
	if info.Duplicate {
		t.Fatal("poisoned comparison produced a duplicate verdict")
	}
	if info.HashReady || info.Hash != 0 {
		t.Fatalf("poisoned candidate produced a hash key: %v", info)
	}
	if eng.FaultAborts == 0 {
		t.Fatal("fault abort not counted")
	}
	if eng.LineRetries == 0 || eng.RetriesHealed != 0 {
		t.Fatalf("retries=%d healed=%d; want retries issued, none healed",
			eng.LineRetries, eng.RetriesHealed)
	}
}

func TestTransientPoisonHealsByRetry(t *testing.T) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	// Every line's first read is uncorrectable; re-reads come back clean —
	// the transient-upset shape the bounded retry exists for.
	seen := map[uint64]bool{}
	mc.Faults = memctrl.FaultFunc(func(addr uint64, line []byte) {
		if !seen[addr] {
			seen[addr] = true
			line[0] ^= 0x03
		}
	})
	eng := NewEngine(mc)

	rng := sim.NewRNG(5)
	a, _ := phys.Alloc()
	b, _ := phys.Alloc()
	rng.FillBytes(phys.Page(a))
	phys.CopyPage(b, a)

	eng.InsertPPN(0, b, InvalidIndex, InvalidIndex)
	eng.InsertPFE(a, true, 0)
	eng.Trigger(0)
	info := eng.GetPFEInfo(eng.DoneAt())
	if info.Fault {
		t.Fatal("transient poison was not healed by retry")
	}
	if !info.Duplicate {
		t.Fatal("healed comparison lost the duplicate")
	}
	if eng.LineRetries == 0 || eng.LineRetries != eng.RetriesHealed {
		t.Fatalf("retries=%d healed=%d; want all retries healed",
			eng.LineRetries, eng.RetriesHealed)
	}
	// The key assembled from healed lines matches the clean reference:
	// only post-correction codes reached the assembler.
	if !info.HashReady || info.Hash != ecc.PageKey(phys.Page(a), eng.Offsets()) {
		t.Fatalf("hash after healed retries: %v", info)
	}
}

// TestUELinesNeverFeedMinikeys is the regression test for the audit
// satellite: a line that decodes uncorrectably must never contribute a
// minikey to the key assembler — the candidate ends Fault-flagged with no
// hash instead.
func TestUELinesNeverFeedMinikeys(t *testing.T) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	eng := NewEngine(mc)

	a, _ := phys.Alloc()
	rng := sim.NewRNG(9)
	rng.FillBytes(phys.Page(a))

	// Persistently poison exactly the key-offset lines of the candidate.
	keyLines := map[uint64]bool{}
	for s := 0; s < ecc.Sections; s++ {
		keyLines[uint64(a.LineAddr(eng.Offsets().LineIndex(s)))] = true
	}
	mc.Faults = memctrl.FaultFunc(func(addr uint64, line []byte) {
		if keyLines[addr] {
			line[0] ^= 0x03
		}
	})

	// Empty table, Last Refill set: the engine goes straight to the forced
	// hash finish — the only line traffic is the key-offset fetches.
	eng.InsertPFE(a, true, InvalidIndex)
	eng.Trigger(0)
	info := eng.GetPFEInfo(eng.DoneAt())
	if !info.Fault {
		t.Fatal("poisoned key lines did not raise Fault")
	}
	if info.HashReady {
		t.Fatal("hash reported ready over poisoned key lines")
	}
	if info.Hash != 0 {
		t.Fatalf("poisoned key lines leaked minikeys into hash %#x", info.Hash)
	}
	if eng.KeysGenerated != 0 {
		t.Fatal("key counted as generated despite poisoned lines")
	}
}

// buildFaultWorld assembles VMs whose pages mix exact duplicates,
// near-duplicates (one byte differs deep in the page), and unique
// content — the layouts where a corrupted compare or hash could plausibly
// produce a false merge.
func buildFaultWorld(seed uint64) (*vm.Hypervisor, []*vm.VM) {
	const (
		vms        = 3
		pagesPerVM = 8
	)
	hv := vm.NewHypervisor(256 * mem.PageSize)
	rng := sim.NewRNG(seed)
	base := make([][]byte, pagesPerVM)
	for i := range base {
		base[i] = make([]byte, mem.PageSize)
		rng.FillBytes(base[i])
	}
	var out []*vm.VM
	for v := 0; v < vms; v++ {
		m := hv.NewVM(pagesPerVM * mem.PageSize)
		m.Madvise(0, pagesPerVM, true)
		for g := 0; g < pagesPerVM; g++ {
			page := make([]byte, mem.PageSize)
			copy(page, base[g])
			switch {
			case g < 4:
				// Exact duplicate across all VMs.
			case g < 6:
				// Near-duplicate: a single byte deep in the page differs
				// per VM — the hardest case for a corrupted comparator.
				page[3000+g] = byte(0xA0 + v)
			default:
				// Unique content.
				rng.FillBytes(page)
			}
			if _, err := m.Write(vm.GFN(g), 0, page); err != nil {
				panic(err)
			}
		}
		out = append(out, m)
	}
	return hv, out
}

// TestNoFalseMergeAcrossFaultRates is the tentpole invariant: at any
// injected fault rate — zero, realistic, pathological, always-UE — no
// guest page's contents may change as a result of scanning and merging.
// A false merge would silently alias two different pages; snapshotting
// every page before the run and re-reading after catches exactly that.
func TestNoFalseMergeAcrossFaultRates(t *testing.T) {
	cases := []struct {
		name string
		cfg  faults.Config
	}{
		{"clean", faults.Config{}},
		{"transient", faults.Config{Seed: 21, TransientPerRead: 0.05}},
		{"mixed", faults.Config{Seed: 22, TransientPerRead: 0.1, DoubleBitPerRead: 0.01}},
		{"hard", faults.Config{Seed: 23, DoubleBitPerRead: 0.05, StuckUEWords: 8, StuckCells: 16, Frames: 256}},
		{"bursty", faults.Config{Seed: 24, DoubleBitPerRead: 0.02, BurstMeanCycles: 200_000, BurstCycles: 50_000, Frames: 256}},
		{"always-ue", faults.Config{Seed: 25, DoubleBitPerRead: 1}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			hv, vms := buildFaultWorld(101)
			mc := memctrl.New(dram.New(dram.DefaultConfig()), hv.Phys, nil)
			if tc.cfg.Enabled() {
				mc.Faults = faults.NewModel(tc.cfg)
			}
			drv := NewDriver(ksm.NewAlgorithm(hv, ksm.NewECCHasher()), NewEngine(mc), DefaultDriverConfig())

			// Snapshot every guest page's contents before scanning.
			want := map[string][]byte{}
			for vi, m := range vms {
				for g := 0; g < m.Pages(); g++ {
					pg, err := m.Page(vm.GFN(g))
					if err != nil {
						t.Fatal(err)
					}
					want[fmt.Sprintf("%d/%d", vi, g)] = append([]byte(nil), pg...)
				}
			}

			drv.RunToSteadyState(8)

			for vi, m := range vms {
				for g := 0; g < m.Pages(); g++ {
					pg, err := m.Page(vm.GFN(g))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(pg, want[fmt.Sprintf("%d/%d", vi, g)]) {
						t.Fatalf("FALSE MERGE: VM %d page %d contents changed", vi, g)
					}
				}
			}
			if tc.name == "clean" {
				// The clean run must actually merge: 3 VMs sharing 4 exact
				// duplicates each collapse 12 frames to 4.
				if frames, mappers := hv.SharedFrames(); frames == 0 || mappers == 0 {
					t.Fatal("clean run merged nothing; the invariant test is vacuous")
				}
			}
			if tc.name == "always-ue" {
				if drv.SWFallbacks == 0 && drv.QuarantineSkips == 0 {
					t.Fatal("always-UE run never took the fallback path")
				}
			}
		})
	}
}

func TestDriverConvergesUnderFaultyDIMM(t *testing.T) {
	// A realistically flaky DIMM (rare single-bit errors) must not change
	// the deduplication outcome at all.
	layout := [][]byte{{9, 8, 7}, {9, 8, 6}}
	r := newDriverRig(t, 128, layout...)
	rng := sim.NewRNG(3)
	n := 0
	// Attach fault injection to the rig's controller.
	mcOf(r.drv).Faults = memctrl.FaultFunc(func(addr uint64, line []byte) {
		n++
		if n%97 == 0 {
			line[rng.Intn(len(line))] ^= 1 << uint(rng.Intn(8))
		}
	})
	r.drv.RunToSteadyState(10)
	// Contents 9 and 8 each appear twice; 7 and 6 once: 4 frames.
	if got := r.hv.Phys.AllocatedFrames(); got != 4 {
		t.Fatalf("frames = %d, want 4", got)
	}
	if mcOf(r.drv).Stats.ECCCorrected == 0 {
		t.Fatal("faults never triggered (injection misconfigured)")
	}
}

// mcOf digs the memory controller out of a driver's engine (test helper).
func mcOf(d *Driver) *memctrl.Controller {
	return d.HW.MC.(*memctrl.Controller)
}
