package pageforge

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/ecc"
	"repro/internal/mem"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// End-to-end fault injection: the ECC engine PageForge repurposes for hash
// keys still has its day job. Single-bit DRAM errors under the scan stream
// are corrected transparently; double-bit errors are detected.

func TestScanUnderSingleBitFaults(t *testing.T) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	rng := sim.NewRNG(77)
	// Every 5th fetched line suffers a random single-bit flip on the wire.
	count := 0
	mc.FaultInject = func(addr uint64, line []byte) {
		count++
		if count%5 == 0 {
			line[rng.Intn(len(line))] ^= 1 << uint(rng.Intn(8))
		}
	}
	eng := NewEngine(mc)

	a, _ := phys.Alloc()
	b, _ := phys.Alloc()
	rng.FillBytes(phys.Page(a))
	phys.CopyPage(b, a)

	eng.InsertPPN(0, b, InvalidIndex, InvalidIndex)
	eng.InsertPFE(a, true, 0)
	eng.Trigger(0)
	info := eng.GetPFEInfo(eng.DoneAt())
	if !info.Duplicate {
		t.Fatal("single-bit faults broke the duplicate detection (SECDED should correct)")
	}
	if mc.Stats.ECCCorrected == 0 {
		t.Fatal("no corrections recorded despite injected faults")
	}
	if mc.Stats.ECCUncorrectable != 0 {
		t.Fatalf("%d uncorrectable errors from single-bit faults", mc.Stats.ECCUncorrectable)
	}
	// The hash key is computed from clean (corrected) data.
	if info.Hash != ecc.PageKey(phys.Page(a), eng.Offsets()) {
		t.Fatal("hash key corrupted by correctable faults")
	}
}

func TestScanDetectsDoubleBitFaults(t *testing.T) {
	phys := mem.New(16 * mem.PageSize)
	mc := memctrl.New(dram.New(dram.DefaultConfig()), phys, nil)
	// Every line suffers a double-bit flip within one 64-bit word:
	// uncorrectable, must be flagged for software.
	mc.FaultInject = func(addr uint64, line []byte) { line[0] ^= 0x03 }
	eng := NewEngine(mc)

	a, _ := phys.Alloc()
	b, _ := phys.Alloc()
	eng.InsertPPN(0, b, InvalidIndex, InvalidIndex)
	eng.InsertPFE(a, true, 0)
	eng.Trigger(0)
	eng.GetPFEInfo(eng.DoneAt())
	if mc.Stats.ECCUncorrectable == 0 {
		t.Fatal("double-bit errors not detected")
	}
	if mc.Stats.ECCCorrected != 0 {
		t.Fatal("double-bit errors miscounted as corrected")
	}
}

func TestDriverConvergesUnderFaultyDIMM(t *testing.T) {
	// A realistically flaky DIMM (rare single-bit errors) must not change
	// the deduplication outcome at all.
	layout := [][]byte{{9, 8, 7}, {9, 8, 6}}
	r := newDriverRig(t, 128, layout...)
	rng := sim.NewRNG(3)
	n := 0
	// Attach fault injection to the rig's controller.
	mcOf(r.drv).FaultInject = func(addr uint64, line []byte) {
		n++
		if n%97 == 0 {
			line[rng.Intn(len(line))] ^= 1 << uint(rng.Intn(8))
		}
	}
	r.drv.RunToSteadyState(10)
	// Contents 9 and 8 each appear twice; 7 and 6 once: 4 frames.
	if got := r.hv.Phys.AllocatedFrames(); got != 4 {
		t.Fatalf("frames = %d, want 4", got)
	}
	if mcOf(r.drv).Stats.ECCCorrected == 0 {
		t.Fatal("faults never triggered (injection misconfigured)")
	}
}

// mcOf digs the memory controller out of a driver's engine (test helper).
func mcOf(d *Driver) *memctrl.Controller {
	return d.HW.MC.(*memctrl.Controller)
}
