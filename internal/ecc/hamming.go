// Package ecc implements the memory-controller ECC substrate that PageForge
// repurposes for hash-key generation: a SECDED (72,64) Hamming code (single
// error correction, double error detection), per-64B-line ECC codes, and the
// ECC-based page hash keys of Section 3.3 of the paper.
//
// Commercial DDR DIMMs store 8 ECC bits per 64 data bits in a spare chip; a
// 64B cache line therefore carries an 8B ECC code, one byte per 64-bit word.
package ecc

// The (72,64) code is a truncated Hamming code plus an overall parity bit,
// exactly the construction the paper names ("a truncated version of the
// (127,120) Hamming code with the addition of a parity bit").
//
// Codeword positions are numbered 1..71. Positions that are powers of two
// (1,2,4,8,16,32,64) hold the 7 Hamming check bits; the remaining 64
// positions hold data bits in ascending order. Check bit p_i is the XOR of
// all positions whose index has bit i set. The 8th ECC bit is the overall
// parity of all 71 codeword bits, which upgrades single-error correction to
// double-error detection.

const (
	codewordBits = 71 // 64 data + 7 Hamming check bits
	checkBits    = 7
)

// dataPos[i] is the codeword position (1-based) of data bit i.
// posData[p] is the data bit stored at codeword position p, or -1.
var (
	dataPos [64]int
	posData [codewordBits + 1]int
	// checkMask[c] has bit i set when data bit i participates in check bit c.
	// Precomputing the masks makes Encode seven 64-bit AND+popcount-parity
	// operations, mirroring the XOR-tree a hardware encoder would use.
	checkMask [checkBits]uint64
)

func init() {
	for p := range posData {
		posData[p] = -1
	}
	d := 0
	for p := 1; p <= codewordBits; p++ {
		if p&(p-1) == 0 { // power of two: a check-bit position
			continue
		}
		dataPos[d] = p
		posData[p] = d
		d++
	}
	if d != 64 {
		panic("ecc: (72,64) construction must place exactly 64 data bits")
	}
	for c := 0; c < checkBits; c++ {
		for i := 0; i < 64; i++ {
			if dataPos[i]&(1<<c) != 0 {
				checkMask[c] |= 1 << i
			}
		}
	}
}

// parity64 reports the XOR-fold (parity) of all bits in v.
func parity64(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// hammingChecks computes the 7 Hamming check bits for a data word.
func hammingChecks(data uint64) uint8 {
	var code uint8
	for c := 0; c < checkBits; c++ {
		code |= uint8(parity64(data&checkMask[c])) << c
	}
	return code
}

// Encode computes the 8-bit SECDED code for a 64-bit data word. Bits 0..6
// are the Hamming check bits p1,p2,p4,...,p64; bit 7 is the overall parity
// of the 71-bit codeword (data bits plus check bits).
func Encode(data uint64) uint8 {
	code := hammingChecks(data)
	overall := parity64(data) ^ parity64(uint64(code))
	return code | uint8(overall)<<7
}

// Status classifies the outcome of decoding a (data, code) pair.
type Status int

const (
	// OK: no error detected.
	OK Status = iota
	// CorrectedData: a single-bit error in the data word was corrected.
	CorrectedData
	// CorrectedCheck: a single-bit error in the stored ECC code itself was
	// detected (the data word is intact).
	CorrectedCheck
	// DetectedDouble: a double-bit error was detected; the data cannot be
	// trusted and software must be notified.
	DetectedDouble
)

// String renders the status for diagnostics.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case CorrectedData:
		return "corrected-data"
	case CorrectedCheck:
		return "corrected-check"
	case DetectedDouble:
		return "detected-double"
	default:
		return "unknown"
	}
}

// Decode checks a data word against its stored SECDED code, returning the
// (possibly corrected) data word and the error classification.
//
// The syndrome is the XOR of the recomputed and stored Hamming check bits.
// The overall-parity check must be evaluated over the *received* codeword —
// the data word plus the stored check bits plus the stored parity bit — so
// that any single flipped bit (data, check, or parity) shows up as exactly
// one parity violation.
func Decode(data uint64, stored uint8) (uint64, Status) {
	recomputed := hammingChecks(data)
	syndrome := (recomputed ^ stored) & 0x7F
	received := parity64(data) ^ parity64(uint64(stored)) // parity of data + 7 check bits + parity bit
	parityMismatch := received != 0

	switch {
	case syndrome == 0 && !parityMismatch:
		return data, OK
	case syndrome == 0 && parityMismatch:
		// The overall parity bit itself flipped; data is intact.
		return data, CorrectedCheck
	case parityMismatch:
		// Single-bit error at codeword position == syndrome.
		p := int(syndrome)
		if p > codewordBits {
			// Syndrome points outside the truncated codeword: the pattern is
			// not a correctable single error.
			return data, DetectedDouble
		}
		if d := posData[p]; d >= 0 {
			return data ^ (1 << uint(d)), CorrectedData
		}
		// The error hit one of the stored check bits.
		return data, CorrectedCheck
	default:
		// Non-zero syndrome with matching overall parity: two bits flipped.
		return data, DetectedDouble
	}
}

// FlipBit returns data with bit i toggled; a test/fault-injection helper.
func FlipBit(data uint64, i uint) uint64 {
	return data ^ (1 << (i & 63))
}
