package ecc

import (
	"testing"
	"testing/quick"
)

func TestDecodeCleanWord(t *testing.T) {
	for _, d := range []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0xDEADBEEFCAFEBABE, 1 << 63} {
		code := Encode(d)
		got, st := Decode(d, code)
		if st != OK || got != d {
			t.Fatalf("Decode(clean %#x) = %#x, %v", d, got, st)
		}
	}
}

func TestEverySingleDataBitErrorCorrected(t *testing.T) {
	words := []uint64{0, 0xFFFFFFFFFFFFFFFF, 0xA5A5A5A5A5A5A5A5, 0x0123456789ABCDEF}
	for _, d := range words {
		code := Encode(d)
		for i := uint(0); i < 64; i++ {
			corrupted := FlipBit(d, i)
			got, st := Decode(corrupted, code)
			if st != CorrectedData {
				t.Fatalf("word %#x bit %d: status %v, want CorrectedData", d, i, st)
			}
			if got != d {
				t.Fatalf("word %#x bit %d: corrected to %#x, want original", d, i, got)
			}
		}
	}
}

func TestEverySingleCheckBitErrorFlagged(t *testing.T) {
	d := uint64(0x0F0F0F0F12345678)
	code := Encode(d)
	for i := uint(0); i < 8; i++ {
		corrupted := code ^ (1 << i)
		got, st := Decode(d, corrupted)
		if st != CorrectedCheck {
			t.Fatalf("check bit %d: status %v, want CorrectedCheck", i, st)
		}
		if got != d {
			t.Fatalf("check bit %d: data altered to %#x", i, got)
		}
	}
}

func TestEveryDoubleDataBitErrorDetected(t *testing.T) {
	d := uint64(0xCAFED00D8BADF00D)
	code := Encode(d)
	for i := uint(0); i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			corrupted := FlipBit(FlipBit(d, i), j)
			got, st := Decode(corrupted, code)
			if st != DetectedDouble {
				t.Fatalf("bits %d,%d: status %v, want DetectedDouble", i, j, st)
			}
			if got != corrupted {
				t.Fatalf("bits %d,%d: double error must not be 'corrected'", i, j)
			}
		}
	}
}

func TestDataPlusCheckBitDoubleErrorDetected(t *testing.T) {
	// One data bit and one check bit flipped: must not miscorrect.
	d := uint64(0x1122334455667788)
	code := Encode(d)
	misclassified := 0
	for i := uint(0); i < 64; i++ {
		for c := uint(0); c < 8; c++ {
			_, st := Decode(FlipBit(d, i), code^(1<<c))
			// SECDED guarantees detection of any two flips; correction
			// attempts must never silently return OK.
			if st == OK {
				misclassified++
			}
		}
	}
	if misclassified != 0 {
		t.Fatalf("%d data+check double errors decoded as OK", misclassified)
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	if err := quick.Check(func(d uint64) bool {
		got, st := Decode(d, Encode(d))
		return st == OK && got == d
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleErrorCorrectionQuick(t *testing.T) {
	if err := quick.Check(func(d uint64, bit uint8) bool {
		i := uint(bit) % 64
		got, st := Decode(FlipBit(d, i), Encode(d))
		return st == CorrectedData && got == d
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIsDeterministicAndSensitive(t *testing.T) {
	if Encode(0x12345678) != Encode(0x12345678) {
		t.Fatal("Encode not deterministic")
	}
	// Flipping any single bit must change the code (distance >= 3).
	d := uint64(0x5555AAAA3333CCCC)
	base := Encode(d)
	for i := uint(0); i < 64; i++ {
		if Encode(FlipBit(d, i)) == base {
			t.Fatalf("bit %d flip left the ECC code unchanged", i)
		}
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{
		OK:             "ok",
		CorrectedData:  "corrected-data",
		CorrectedCheck: "corrected-check",
		DetectedDouble: "detected-double",
		Status(99):     "unknown",
	} {
		if st.String() != want {
			t.Errorf("Status(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestParity64(t *testing.T) {
	cases := map[uint64]uint64{
		0:                  0,
		1:                  1,
		3:                  0,
		7:                  1,
		0xFFFFFFFFFFFFFFFF: 0,
		1 << 63:            1,
	}
	for in, want := range cases {
		if got := parity64(in); got != want {
			t.Errorf("parity64(%#x) = %d, want %d", in, got, want)
		}
	}
}
