package ecc

import (
	"encoding/binary"
	"fmt"
)

// LineSize is the cache-line size of the modeled machine (Table 2: 64B).
const LineSize = 64

// WordsPerLine is the number of 64-bit ECC codewords per cache line.
const WordsPerLine = LineSize / 8

// LineCode is the 8-byte ECC code of a 64B line: one SECDED byte per 64-bit
// word, stored in the DIMM's spare chip alongside the line.
type LineCode [WordsPerLine]uint8

// Uint64 packs the line code as a little-endian 64-bit value; the paper's
// minikey is "the least-significant 8 bits of the ECC codes", i.e. byte 0.
func (c LineCode) Uint64() uint64 {
	var b [8]byte
	copy(b[:], c[:])
	return binary.LittleEndian.Uint64(b[:])
}

// EncodeLine computes the ECC code of a 64-byte line. It panics if the line
// is not exactly LineSize bytes: partial lines never reach the ECC engine.
func EncodeLine(line []byte) LineCode {
	if len(line) != LineSize {
		panic(fmt.Sprintf("ecc: EncodeLine on %d bytes, want %d", len(line), LineSize))
	}
	var code LineCode
	for w := 0; w < WordsPerLine; w++ {
		code[w] = Encode(binary.LittleEndian.Uint64(line[w*8 : w*8+8]))
	}
	return code
}

// DecodeLine verifies a line against its stored code, correcting single-bit
// errors in place (on a copy) and reporting the worst status across words.
func DecodeLine(line []byte, stored LineCode) ([]byte, Status) {
	if len(line) != LineSize {
		panic(fmt.Sprintf("ecc: DecodeLine on %d bytes, want %d", len(line), LineSize))
	}
	out := make([]byte, LineSize)
	copy(out, line)
	worst := OK
	for w := 0; w < WordsPerLine; w++ {
		word := binary.LittleEndian.Uint64(out[w*8 : w*8+8])
		fixed, st := Decode(word, stored[w])
		if st == CorrectedData {
			binary.LittleEndian.PutUint64(out[w*8:w*8+8], fixed)
		}
		if st > worst {
			worst = st
		}
	}
	return out, worst
}

// Minikey extracts the paper's 8-bit minikey from a line code: the
// least-significant byte of the 8B ECC code, i.e. the SECDED byte of the
// line's first 64-bit word.
func (c LineCode) Minikey() uint8 { return c[0] }
