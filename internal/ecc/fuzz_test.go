package ecc

import (
	"encoding/binary"
	"testing"
)

// FuzzDecode checks the SECDED contract over arbitrary codewords: with the
// 72-bit codeword (64 data bits + 7 check bits + overall parity) suffering
// zero, one, or two bit flips, the decoder must report OK, correct back to
// the original word, or detect the double — never silently return wrong
// data as clean or "corrected".
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0), uint8(0), uint8(0))
	f.Add(^uint64(0), uint8(3), uint8(70))
	f.Add(uint64(0xDEADBEEFCAFEF00D), uint8(63), uint8(64))
	f.Fuzz(func(t *testing.T, data uint64, p1, p2 uint8) {
		const codewordBits = 64 + 8
		stored := Encode(data)

		// 0 flips: clean decode.
		if got, st := Decode(data, stored); st != OK || got != data {
			t.Fatalf("clean decode: %v, %#x", st, got)
		}

		flip := func(d uint64, c uint8, p uint8) (uint64, uint8) {
			if p < 64 {
				return d ^ 1<<p, c
			}
			return d, c ^ 1<<(p-64)
		}

		// 1 flip anywhere in the codeword: corrected, data intact.
		a := p1 % codewordBits
		d1, c1 := flip(data, stored, a)
		got, st := Decode(d1, c1)
		if st != CorrectedData && st != CorrectedCheck {
			t.Fatalf("single flip at %d: status %v", a, st)
		}
		if got != data {
			t.Fatalf("single flip at %d: decoded %#x, want %#x", a, got, data)
		}

		// 2 distinct flips: always detected, never miscorrected into a
		// "clean" or "corrected" verdict.
		b := p2 % codewordBits
		if a == b {
			b = (b + 1) % codewordBits
		}
		d2, c2 := flip(d1, c1, b)
		if _, st := Decode(d2, c2); st != DetectedDouble {
			t.Fatalf("double flip at %d,%d: status %v, want detected-double", a, b, st)
		}
	})
}

// FuzzPageKey checks the hash-key contract over arbitrary page contents:
// the software-reference PageKey, the incremental KeyAssembler fed encoded
// line codes (in reverse order, as hardware may observe them), and the
// invariant that only the four sampled lines influence the key.
func FuzzPageKey(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{0xFF, 0x01}, uint8(7), uint8(200))
	f.Fuzz(func(t *testing.T, seed []byte, pickLine, pickByte uint8) {
		page := make([]byte, PageSize)
		for i := 0; i+8 <= len(page); i += 8 {
			x := uint64(i) * 0x9E3779B97F4A7C15
			for _, b := range seed {
				x = (x ^ uint64(b)) * 0x100000001B3
			}
			binary.LittleEndian.PutUint64(page[i:], x)
		}
		copy(page, seed) // let the fuzzer control leading bytes directly

		key := PageKey(page, DefaultKeyOffsets)

		// The assembler converges to the same key from per-line codes,
		// regardless of observation order or duplicate observations.
		a := NewKeyAssembler(DefaultKeyOffsets)
		for s := Sections - 1; s >= 0; s-- {
			li := DefaultKeyOffsets.LineIndex(s)
			code := EncodeLine(page[li*LineSize : (li+1)*LineSize])
			a.Observe(li, code)
			a.Observe(li, code)
		}
		if !a.Ready() {
			t.Fatal("assembler not ready after all sampled lines")
		}
		if a.Key() != key {
			t.Fatalf("assembled key %#x != reference %#x", a.Key(), key)
		}

		// Mutating any non-sampled line must not change the key.
		li := int(pickLine) % (PageSize / LineSize)
		sampled := false
		for s := 0; s < Sections; s++ {
			if DefaultKeyOffsets.LineIndex(s) == li {
				sampled = true
			}
		}
		if !sampled {
			page[li*LineSize+int(pickByte)%LineSize] ^= 0x5A
			if got := PageKey(page, DefaultKeyOffsets); got != key {
				t.Fatalf("unsampled line %d changed key %#x -> %#x", li, key, got)
			}
		}
	})
}
