package ecc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func randLine(r *sim.RNG) []byte {
	b := make([]byte, LineSize)
	r.FillBytes(b)
	return b
}

func TestEncodeLineRoundTrip(t *testing.T) {
	r := sim.NewRNG(1)
	for i := 0; i < 100; i++ {
		line := randLine(r)
		code := EncodeLine(line)
		out, st := DecodeLine(line, code)
		if st != OK {
			t.Fatalf("clean line decoded with status %v", st)
		}
		if !bytes.Equal(out, line) {
			t.Fatal("clean decode altered the line")
		}
	}
}

func TestDecodeLineCorrectsSingleBit(t *testing.T) {
	r := sim.NewRNG(2)
	line := randLine(r)
	code := EncodeLine(line)
	for byteIdx := 0; byteIdx < LineSize; byteIdx += 7 {
		for bit := uint(0); bit < 8; bit += 3 {
			corrupted := make([]byte, LineSize)
			copy(corrupted, line)
			corrupted[byteIdx] ^= 1 << bit
			out, st := DecodeLine(corrupted, code)
			if st != CorrectedData {
				t.Fatalf("byte %d bit %d: status %v", byteIdx, bit, st)
			}
			if !bytes.Equal(out, line) {
				t.Fatalf("byte %d bit %d: correction failed", byteIdx, bit)
			}
		}
	}
}

func TestDecodeLineDetectsDoubleInSameWord(t *testing.T) {
	r := sim.NewRNG(3)
	line := randLine(r)
	code := EncodeLine(line)
	corrupted := make([]byte, LineSize)
	copy(corrupted, line)
	corrupted[0] ^= 0x03 // two bits in word 0
	_, st := DecodeLine(corrupted, code)
	if st != DetectedDouble {
		t.Fatalf("status %v, want DetectedDouble", st)
	}
}

func TestDecodeLineCorrectsIndependentWords(t *testing.T) {
	// One bit flipped in each of two different words: both corrected,
	// because each word has its own SECDED code.
	r := sim.NewRNG(4)
	line := randLine(r)
	code := EncodeLine(line)
	corrupted := make([]byte, LineSize)
	copy(corrupted, line)
	corrupted[0] ^= 0x10  // word 0
	corrupted[32] ^= 0x01 // word 4
	out, st := DecodeLine(corrupted, code)
	if st != CorrectedData {
		t.Fatalf("status %v, want CorrectedData", st)
	}
	if !bytes.Equal(out, line) {
		t.Fatal("per-word correction failed")
	}
}

func TestEncodeLinePanicsOnWrongSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EncodeLine(63 bytes) did not panic")
		}
	}()
	EncodeLine(make([]byte, 63))
}

func TestLineCodeUint64AndMinikey(t *testing.T) {
	var code LineCode
	for i := range code {
		code[i] = uint8(i + 1)
	}
	if code.Uint64() != 0x0807060504030201 {
		t.Fatalf("Uint64 = %#x", code.Uint64())
	}
	if code.Minikey() != 1 {
		t.Fatalf("Minikey = %d, want LSB byte (word 0 code)", code.Minikey())
	}
}

func TestPageKeyMatchesAssembler(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := sim.NewRNG(seed)
		page := make([]byte, PageSize)
		r.FillBytes(page)
		want := PageKey(page, DefaultKeyOffsets)

		// Feed every line of the page to the assembler in a random order.
		a := NewKeyAssembler(DefaultKeyOffsets)
		for _, li := range r.Perm(PageSize / LineSize) {
			a.Observe(li, EncodeLine(page[li*LineSize:(li+1)*LineSize]))
		}
		return a.Ready() && a.Key() == want
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyAssemblerMissingAndReset(t *testing.T) {
	a := NewKeyAssembler(DefaultKeyOffsets)
	if len(a.Missing()) != Sections {
		t.Fatalf("fresh assembler missing %v", a.Missing())
	}
	page := make([]byte, PageSize)
	li := DefaultKeyOffsets.LineIndex(2)
	a.Observe(li, EncodeLine(page[li*LineSize:(li+1)*LineSize]))
	m := a.Missing()
	if len(m) != Sections-1 {
		t.Fatalf("missing after one observe: %v", m)
	}
	for _, idx := range m {
		if idx == li {
			t.Fatal("observed line still reported missing")
		}
	}
	a.Reset()
	if a.Ready() || a.Key() != 0 || len(a.Missing()) != Sections {
		t.Fatal("Reset did not clear assembler")
	}
}

func TestKeyAssemblerIgnoresUnsampledAndDuplicates(t *testing.T) {
	page := make([]byte, PageSize)
	for i := range page {
		page[i] = byte(i * 7)
	}
	a := NewKeyAssembler(DefaultKeyOffsets)
	// Unsampled line: no progress.
	other := DefaultKeyOffsets.LineIndex(0) + 1
	a.Observe(other, EncodeLine(page[other*LineSize:(other+1)*LineSize]))
	if len(a.Missing()) != Sections {
		t.Fatal("unsampled line advanced the key")
	}
	// Duplicate observations of a sampled line must not corrupt the key.
	li := DefaultKeyOffsets.LineIndex(0)
	code := EncodeLine(page[li*LineSize : (li+1)*LineSize])
	a.Observe(li, code)
	k1 := a.Key()
	a.Observe(li, code)
	if a.Key() != k1 {
		t.Fatal("duplicate observation changed the key")
	}
}

func TestPageKeyDiffersAcrossContent(t *testing.T) {
	r := sim.NewRNG(42)
	pageA := make([]byte, PageSize)
	pageB := make([]byte, PageSize)
	r.FillBytes(pageA)
	r.FillBytes(pageB)
	if PageKey(pageA, DefaultKeyOffsets) == PageKey(pageB, DefaultKeyOffsets) {
		t.Fatal("independent random pages produced the same key (1/2^32 chance)")
	}
}

func TestPageKeyInsensitiveToUnsampledBytes(t *testing.T) {
	// This is the source of the paper's extra false positives (Figure 8):
	// changes outside the sampled lines do not change the key.
	page := make([]byte, PageSize)
	k1 := PageKey(page, DefaultKeyOffsets)
	page[DefaultKeyOffsets.LineIndex(0)*LineSize+LineSize] ^= 0xFF // line right after sampled one
	if PageKey(page, DefaultKeyOffsets) != k1 {
		t.Fatal("unsampled byte changed the key")
	}
	// But a sampled byte must change it.
	page[DefaultKeyOffsets.LineIndex(0)*LineSize] ^= 0xFF
	if PageKey(page, DefaultKeyOffsets) == k1 {
		t.Fatal("sampled byte did not change the key")
	}
}

func TestKeyOffsetsValidate(t *testing.T) {
	if err := DefaultKeyOffsets.Validate(); err != nil {
		t.Fatalf("default offsets invalid: %v", err)
	}
	bad := KeyOffsets{0, 0, LinesPerSection, 0}
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range offset accepted")
	}
	neg := KeyOffsets{-1, 0, 0, 0}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestKeyOffsetsLineIndex(t *testing.T) {
	o := KeyOffsets{0, 5, 10, 15}
	want := []int{0, 21, 42, 63}
	for s, w := range want {
		if got := o.LineIndex(s); got != w {
			t.Errorf("LineIndex(%d) = %d, want %d", s, got, w)
		}
	}
}
