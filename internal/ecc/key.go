package ecc

import "fmt"

// PageSize is the virtual-memory page size of the modeled machine (4KB).
const PageSize = 4096

// Sections is the number of 1KB sections a page is logically divided into
// for hash-key generation (Figure 6 of the paper).
const Sections = 4

// SectionSize is the size of each hash-key section.
const SectionSize = PageSize / Sections

// LinesPerSection is the number of 64B lines in a 1KB section.
const LinesPerSection = SectionSize / LineSize

// KeyOffsets selects which line inside each 1KB section contributes its
// minikey to the page hash key. The paper exposes these via the
// update_ECC_offset API call; they are "rarely changed" and set after
// profiling. Offsets are line indices within the section, in [0,16).
type KeyOffsets [Sections]int

// DefaultKeyOffsets spreads the sampled lines across each section. KSM's
// jhash covers the *first* 1KB of the page; sampling one line per 1KB
// section gives the ECC key whole-page coverage with only 256B of traffic.
// Section 0 samples line 4 rather than line 0: profiling (the paper's
// update_ECC_offset flow) shows leading lines are dominated by zeroed
// headers and long shared prefixes, so they contribute no discriminating
// bits, while line 4 sits inside the frequently-written header region and
// catches partial writes.
var DefaultKeyOffsets = KeyOffsets{4, 5, 10, 15}

// Validate reports an error if any offset is outside its section.
func (o KeyOffsets) Validate() error {
	for i, off := range o {
		if off < 0 || off >= LinesPerSection {
			return fmt.Errorf("ecc: key offset[%d]=%d outside [0,%d)", i, off, LinesPerSection)
		}
	}
	return nil
}

// LineIndex reports the page-relative line index sampled for section s.
func (o KeyOffsets) LineIndex(s int) int {
	return s*LinesPerSection + o[s]
}

// PageKey computes the 32-bit ECC-based hash key of a 4KB page by
// concatenating the minikeys of the four sampled lines (section 0 in the
// least-significant byte). This is the software-reference implementation;
// the PageForge hardware assembles the same value incrementally as lines
// flow through the memory controller.
func PageKey(page []byte, offsets KeyOffsets) uint32 {
	if len(page) != PageSize {
		panic(fmt.Sprintf("ecc: PageKey on %d bytes, want %d", len(page), PageSize))
	}
	var key uint32
	for s := 0; s < Sections; s++ {
		li := offsets.LineIndex(s)
		line := page[li*LineSize : (li+1)*LineSize]
		key |= uint32(EncodeLine(line).Minikey()) << (8 * s)
	}
	return key
}

// KeyAssembler builds a page key incrementally from line ECC codes as they
// are observed, the way the PageForge control logic snatches codes from the
// ECC engine (Section 3.3.2). Lines may arrive in any order and more than
// once; only the sampled offsets contribute.
type KeyAssembler struct {
	offsets KeyOffsets
	key     uint32
	have    [Sections]bool
}

// NewKeyAssembler returns an assembler for one candidate page.
func NewKeyAssembler(offsets KeyOffsets) *KeyAssembler {
	return &KeyAssembler{offsets: offsets}
}

// Observe records the ECC code of the page line with index lineIdx (0..63).
// It returns true if the observation completed the key.
func (a *KeyAssembler) Observe(lineIdx int, code LineCode) bool {
	s := lineIdx / LinesPerSection
	if s < 0 || s >= Sections || a.offsets.LineIndex(s) != lineIdx || a.have[s] {
		return a.Ready()
	}
	a.key |= uint32(code.Minikey()) << (8 * s)
	a.have[s] = true
	return a.Ready()
}

// Ready reports whether all four minikeys have been observed.
func (a *KeyAssembler) Ready() bool {
	return a.have[0] && a.have[1] && a.have[2] && a.have[3]
}

// Missing reports the page-relative line indices still needed to finish the
// key; the hardware fetches exactly these on a Last-Refill forced finish.
func (a *KeyAssembler) Missing() []int {
	var m []int
	for s := 0; s < Sections; s++ {
		if !a.have[s] {
			m = append(m, a.offsets.LineIndex(s))
		}
	}
	return m
}

// Key reports the assembled key; valid only when Ready.
func (a *KeyAssembler) Key() uint32 { return a.key }

// Reset clears the assembler for a new candidate page.
func (a *KeyAssembler) Reset() {
	a.key = 0
	a.have = [Sections]bool{}
}
